package rxview_test

// Chaos tests of the resilience layer: a seeded fault schedule injected
// into the durability seams during a mixed workload, with a per-write
// verdict ledger proving verdict honesty (no write is both rejected to
// the client and present in recovered state, no acknowledged write is
// lost), plus the degraded→recovered transition with its generation-
// monotonicity guarantee. Fault injection is process-wide, so nothing
// here runs in parallel.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"rxview"
)

func chaosIns(cno string) rxview.Update {
	return rxview.Insert(`.`, "course", rxview.Str(cno), rxview.Str("Chaos"))
}

// recoverDegraded retries View.Recover until the view is read-write again.
// Bounded: recovery itself can be fault-injected (the checkpoint seal), so
// a few attempts may legitimately fail before one lands.
func recoverDegraded(t *testing.T, v *rxview.View) {
	t.Helper()
	for i := 0; v.Degraded(); i++ {
		if i > 10 {
			t.Fatal("recovery did not converge in 10 attempts")
		}
		if err := v.Recover(); err != nil {
			t.Logf("recovery attempt %d: %v", i, err)
		}
	}
}

// TestChaosSoakMatchesOracle runs a seeded schedule of every cataloged
// fault kind against a durable view while an in-memory oracle applies
// exactly the writes the live view reported applied. Zero divergence is
// required at three points: live state after the soak, recovered state
// after reopen, and the per-write ledger (definite rejections absent,
// acknowledged writes present).
func TestChaosSoakMatchesOracle(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	v := mustDurableView(t, dir)

	atg, db, err := rxview.NewRegistrar()
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := rxview.Open(atg, db)
	if err != nil {
		t.Fatal(err)
	}

	// One rule per cataloged point, offset so they fire at different
	// depths of the workload. after= counts hits of that point alone, so
	// the schedule is deterministic for a fixed write sequence.
	spec := strings.Join([]string{
		"wal.slow-io:latency=2ms,every=5,count=2",
		"storage.apply:after=2,count=1",
		"wal.crash-after-fsync:after=6,count=1",
		"wal.append:after=9,count=1",
		"wal.disk-full:after=12,count=1",
		"wal.crash-before-fsync:after=15,count=1",
		"wal.fsync:after=18,count=1",
		"wal.checkpoint:count=2",
	}, ";")
	if err := rxview.EnableChaos(spec, 7); err != nil {
		t.Fatal(err)
	}
	defer rxview.DisableChaos()

	// The ledger: course numbers by verdict class. An indeterminate
	// verdict (DegradedError with Applied true) is "applied in memory but
	// not durable" — recovery checkpoints the in-memory state, so those
	// writes are expected in the recovered view, same as successes.
	var successes, rejects, indeterminate []string
	applyToOracle := func(u rxview.Update) {
		if _, oerr := oracle.Apply(ctx, u); oerr != nil {
			t.Fatalf("oracle apply: %v", oerr)
		}
	}
	const writes = 40
	for i := 0; i < writes; i++ {
		cno := fmt.Sprintf("CH%03d", i)
		if i%10 == 9 {
			// Mixed workload: every tenth write is an atomic group. Atomic
			// commits sink before touching memory, so a WAL fault rolls
			// them back cleanly — never indeterminate.
			tx, err := v.Begin(ctx)
			if err != nil {
				rejects = append(rejects, cno)
				if v.Degraded() {
					recoverDegraded(t, v)
				}
				continue
			}
			u := chaosIns(cno)
			if _, err := tx.Stage(ctx, u); err != nil {
				t.Fatalf("stage %s: %v", cno, err)
			}
			if err := tx.Commit(ctx); err != nil {
				rejects = append(rejects, cno)
			} else {
				successes = append(successes, cno)
				applyToOracle(u)
			}
		} else {
			u := chaosIns(cno)
			rep, err := v.Apply(ctx, u)
			applied := rep != nil && rep.Applied
			if applied {
				applyToOracle(u)
			}
			var de *rxview.DegradedError
			switch {
			case err == nil:
				if !applied {
					t.Fatalf("write %s: nil error but report not applied", cno)
				}
				successes = append(successes, cno)
			case errors.As(err, &de) && de.Applied:
				if !applied {
					t.Fatalf("write %s: indeterminate verdict but report not applied", cno)
				}
				indeterminate = append(indeterminate, cno)
			default:
				// Definite rejection: the error contract guarantees the
				// write did not reach the view.
				if applied {
					t.Fatalf("write %s: rejected (%v) but report says applied", cno, err)
				}
				rejects = append(rejects, cno)
			}
		}
		// Reads interleave with the faulted writes; degraded or not, they
		// must keep serving.
		if i%3 == 0 {
			if _, err := v.Query(ctx, `//course`); err != nil {
				t.Fatalf("read at write %d: %v", i, err)
			}
		}
		if v.Degraded() {
			recoverDegraded(t, v)
		}
	}

	// The schedule must actually have exercised breadth: at least six
	// distinct fault kinds fired.
	fires := rxview.ChaosFires()
	distinct := 0
	for _, n := range fires {
		if n > 0 {
			distinct++
		}
	}
	if distinct < 6 {
		t.Fatalf("only %d distinct fault kinds fired: %v", distinct, fires)
	}
	if len(successes) == 0 || len(rejects) == 0 || len(indeterminate) == 0 {
		t.Fatalf("ledger lacks a verdict class: %d success, %d reject, %d indeterminate",
			len(successes), len(rejects), len(indeterminate))
	}
	t.Logf("soak: %d success, %d reject, %d indeterminate; fires=%v",
		len(successes), len(rejects), len(indeterminate), fires)

	rxview.DisableChaos()
	recoverDegraded(t, v)

	// The soak ends read-write: a fresh write must succeed.
	final := chaosIns("CHFIN")
	if _, err := v.Apply(ctx, final); err != nil {
		t.Fatalf("post-soak write: %v", err)
	}
	applyToOracle(final)
	successes = append(successes, "CHFIN")

	if got, want := fingerprint(t, v), fingerprint(t, oracle); got != want {
		t.Fatalf("live state diverged from oracle:\n%s\nvs\n%s", got, want)
	}
	if err := v.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	v2 := mustDurableView(t, dir)
	defer v2.Close()
	if got, want := fingerprint(t, v2), fingerprint(t, oracle); got != want {
		t.Fatalf("recovered state diverged from oracle:\n%s\nvs\n%s", got, want)
	}
	if err := v2.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Verdict honesty, spelled out per write: every definite rejection is
	// absent from the recovered state, every acknowledged (and every
	// indeterminate, post-recovery) write is present exactly once.
	for _, cno := range rejects {
		if nodes := mustQuery(t, v2, fmt.Sprintf(`//course[cno=%q]`, cno)); len(nodes) != 0 {
			t.Fatalf("rejected write %s present in recovered state", cno)
		}
	}
	for _, cno := range append(successes, indeterminate...) {
		if nodes := mustQuery(t, v2, fmt.Sprintf(`//course[cno=%q]`, cno)); len(nodes) != 1 {
			t.Fatalf("acknowledged write %s: %d matches in recovered state, want 1", cno, len(nodes))
		}
	}
}

func mustQuery(t *testing.T, v *rxview.View, path string) []rxview.Node {
	t.Helper()
	nodes, err := v.Query(context.Background(), path)
	if err != nil {
		t.Fatalf("query %s: %v", path, err)
	}
	return nodes
}

// TestDegradedRecoveryGenerationMonotonic walks the degraded-mode state
// machine one deterministic step at a time: an injected disk-full flips
// the view read-only with an indeterminate verdict, the guard rejects
// further writes without moving the generation, reads keep serving the
// in-memory state, and recovery restores read-write at exactly the
// generation degradation froze — the next write is old+1, never a reset.
func TestDegradedRecoveryGenerationMonotonic(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	v := mustDurableView(t, dir)
	defer rxview.DisableChaos()

	if _, err := v.Apply(ctx, chaosIns("CD100")); err != nil {
		t.Fatal(err)
	}
	if err := rxview.EnableChaos("wal.disk-full:count=1", 1); err != nil {
		t.Fatal(err)
	}

	// The faulted write: applied in memory, refused by the log.
	rep, err := v.Apply(ctx, chaosIns("CD101"))
	var de *rxview.DegradedError
	if !errors.As(err, &de) || !de.Applied {
		t.Fatalf("faulted write: got %v, want DegradedError with Applied=true", err)
	}
	if !errors.Is(err, rxview.ErrDegraded) {
		t.Fatalf("faulted write error does not match ErrDegraded: %v", err)
	}
	if rep == nil || !rep.Applied {
		t.Fatalf("faulted write report = %+v, want applied", rep)
	}
	if !v.Degraded() {
		t.Fatal("view not degraded after disk failure")
	}
	frozen := v.Generation()

	// The guard: typed, guaranteed-unapplied rejection; no generation
	// movement; reads flow.
	_, err = v.Apply(ctx, chaosIns("CD102"))
	if !errors.Is(err, rxview.ErrDegraded) {
		t.Fatalf("write while degraded: got %v, want ErrDegraded", err)
	}
	var guard *rxview.DegradedError
	if !errors.As(err, &guard) || guard.Applied {
		t.Fatalf("guard rejection = %v, want DegradedError with Applied=false", err)
	}
	if g := v.Generation(); g != frozen {
		t.Fatalf("guard rejection moved generation %d → %d", frozen, g)
	}
	if nodes := mustQuery(t, v, `//course[cno="CD101"]`); len(nodes) != 1 {
		t.Fatalf("degraded read: %d matches for in-memory write, want 1", len(nodes))
	}

	if err := v.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if v.Degraded() {
		t.Fatal("still degraded after Recover")
	}
	if g := v.Generation(); g != frozen {
		t.Fatalf("recovery moved generation %d → %d", frozen, g)
	}

	// Post-recovery write: exactly one step past where degradation froze.
	if _, err := v.Apply(ctx, chaosIns("CD103")); err != nil {
		t.Fatalf("post-recovery write: %v", err)
	}
	if g := v.Generation(); g != frozen+1 {
		t.Fatalf("post-recovery generation %d, want %d", g, frozen+1)
	}
	want := fingerprint(t, v)
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}

	v2 := mustDurableView(t, dir)
	defer v2.Close()
	if g := v2.Generation(); g != frozen+1 {
		t.Fatalf("reopened generation %d, want %d", g, frozen+1)
	}
	if got := fingerprint(t, v2); got != want {
		t.Fatalf("reopened state differs:\n%s\nvs\n%s", got, want)
	}
	if err := v2.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
