package main

// The tx experiment measures what the transactional API costs and buys:
// k insertions applied as one atomic Tx.Commit vs the same k as sequential
// View.Apply calls vs the non-atomic View.Batch, across view sizes. Commit
// and Batch share the deferred ∆(M,L) flush, so their per-update cost
// should track each other and undercut sequential Apply; the atomic mode's
// extra price is the Begin-time copy of L (and nothing else on the
// insert-only path — M is copied lazily and only when a deletion stages).
//
//	benchrunner -exp tx -sizes 250,2500,25000 -json BENCH_PR5.json

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	"rxview"
)

// txPoint is one row of BENCH_PR5.json.
type txPoint struct {
	NC       int   `json:"nc"`
	Nodes    int   `json:"nodes"`
	K        int   `json:"k"`                   // updates per group
	SeqNS    int64 `json:"seq_apply_ns_per_op"` // k sequential View.Apply, per update
	BatchNS  int64 `json:"batch_ns_per_op"`     // non-atomic View.Batch, per update
	TxNS     int64 `json:"tx_commit_ns_per_op"` // Begin + k stages + Commit, per update
	BeginNS  int64 `json:"tx_begin_ns"`         // the Begin-time rollback-state capture
	CommitNS int64 `json:"tx_commit_total_ns"`  // the Commit call itself (flush + seal)
}

type txFile struct {
	Seed   int64     `json:"seed"`
	Points []txPoint `json:"points"`
}

func txExp(sizes []int) {
	fmt.Println("== Tx: atomic commit vs sequential Apply vs non-atomic Batch (k inserts, per-update ns) ==")
	w := newTab()
	fmt.Fprintln(w, "|C|\tnodes\tk\tseq apply\tbatch\ttx commit\tbegin\tcommit")
	out := txFile{Seed: *seedFlag}
	for _, nc := range sizes {
		pt, err := measureTx(nc, *seedFlag)
		if err != nil {
			log.Fatal(err)
		}
		out.Points = append(out.Points, pt)
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			pt.NC, pt.Nodes, pt.K, pt.SeqNS, pt.BatchNS, pt.TxNS, pt.BeginNS, pt.CommitNS)
	}
	w.Flush()
	fmt.Println()
	if *jsonFlag != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonFlag, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonFlag)
	}
}

// txView opens a fresh synthetic view and returns the insert workload: k
// fresh subtrees under one published root (|r[[p]]| = 1 per update) — the
// shape where the deferred flush pays.
func txView(nc int, seed int64, k int) (*rxview.View, []rxview.Update, error) {
	syn, err := rxview.NewSynthetic(rxview.SyntheticConfig{NC: nc, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	view, err := rxview.Open(syn.ATG, syn.DB, rxview.WithForceSideEffects())
	if err != nil {
		return nil, nil, err
	}
	roots := syn.Roots()
	if len(roots) == 0 {
		return nil, nil, fmt.Errorf("tx: synthetic dataset has no roots")
	}
	target := fmt.Sprintf(`//C[key="%d"]/sub`, roots[0])
	updates := make([]rxview.Update, 0, k)
	for _, key := range syn.FreshKeys(k) {
		updates = append(updates, rxview.Insert(target, "C",
			rxview.Int(key), rxview.Str(fmt.Sprintf("tx%d", key))))
	}
	return view, updates, nil
}

func measureTx(nc int, seed int64) (txPoint, error) {
	ctx := context.Background()
	const k = 64
	pt := txPoint{NC: nc, K: k}

	// Sequential Apply.
	view, updates, err := txView(nc, seed, k)
	if err != nil {
		return pt, err
	}
	pt.Nodes = view.Stats().Nodes
	t0 := time.Now()
	for _, u := range updates {
		if _, err := view.Apply(ctx, u); err != nil {
			return pt, fmt.Errorf("tx seq at |C|=%d: %w", nc, err)
		}
	}
	pt.SeqNS = time.Since(t0).Nanoseconds() / k

	// Non-atomic Batch.
	view, updates, err = txView(nc, seed, k)
	if err != nil {
		return pt, err
	}
	t0 = time.Now()
	if _, err := view.Batch(ctx, updates...); err != nil {
		return pt, fmt.Errorf("tx batch at |C|=%d: %w", nc, err)
	}
	pt.BatchNS = time.Since(t0).Nanoseconds() / k

	// Atomic transaction.
	view, updates, err = txView(nc, seed, k)
	if err != nil {
		return pt, err
	}
	t0 = time.Now()
	tx, err := view.Begin(ctx)
	if err != nil {
		return pt, err
	}
	pt.BeginNS = time.Since(t0).Nanoseconds()
	for _, u := range updates {
		if _, err := tx.Stage(ctx, u); err != nil {
			return pt, fmt.Errorf("tx stage at |C|=%d: %w", nc, err)
		}
	}
	tc := time.Now()
	if err := tx.Commit(ctx); err != nil {
		return pt, fmt.Errorf("tx commit at |C|=%d: %w", nc, err)
	}
	now := time.Now()
	pt.CommitNS = now.Sub(tc).Nanoseconds()
	pt.TxNS = now.Sub(t0).Nanoseconds() / k
	return pt, nil
}
