package main

// The chaos experiment prices the resilience layer: with the apply loop
// pinned by injected slow I/O and a pool of concurrent writers flooding
// the queue, it measures the shed rate at the admission watermark and the
// read tail latency that the wait-free path must hold through the
// overload; separately it measures the degraded→read-write recovery time
// (log reopen + full-state checkpoint), which scales with view size.
//
//	benchrunner -exp chaos -sizes 1000 -dur 500ms -json BENCH_PR9.json
//
// The headline bar is read_p99_ns: reads are wait-free by construction,
// so their tail must not move with the writer stalled — benchdiff tracks
// it against the committed baseline.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"rxview"
	"rxview/server"
)

// chaosPoint is one row of BENCH_PR9.json.
type chaosPoint struct {
	NC        int     `json:"nc"`
	Readers   int     `json:"readers"`
	Writers   int     `json:"writers"`
	Reads     int64   `json:"reads"`
	Writes    int64   `json:"writes"`        // applied under overload
	Shed      uint64  `json:"shed"`          // refused by admission control
	ShedPct   float64 `json:"shed_rate_pct"` // shed / (shed + applied)
	ReadP99NS int64   `json:"read_p99_ns"`   // wait-free read tail during the stall
	ReadQPS   float64 `json:"read_qps"`
	RecoverNS int64   `json:"recover_ns"` // degraded → read-write: reopen + checkpoint
}

type chaosFile struct {
	Seed       int64        `json:"seed"`
	DurationMS float64      `json:"duration_ms"`
	Points     []chaosPoint `json:"points"`
}

func chaosExp(sizes []int) {
	fmt.Printf("== Chaos: overload shedding and degraded-mode recovery (%v/point) ==\n", *durFlag)
	out := chaosFile{Seed: *seedFlag, DurationMS: float64(durFlag.Microseconds()) / 1000}
	w := newTab()
	fmt.Fprintln(w, "|C|\treaders\twriters\treads\twrites\tshed\tshed%\tread p99\tqps\trecover")
	for _, nc := range sizes {
		pt, err := measureChaos(nc, *seedFlag)
		if err != nil {
			log.Fatal(err)
		}
		out.Points = append(out.Points, pt)
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%.1f\t%s\t%.0f\t%s\n",
			pt.NC, pt.Readers, pt.Writers, pt.Reads, pt.Writes, pt.Shed, pt.ShedPct,
			time.Duration(pt.ReadP99NS), pt.ReadQPS, ms(time.Duration(pt.RecoverNS)))
	}
	w.Flush()
	fmt.Println()

	if *jsonFlag != "" && *expFlag == "chaos" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonFlag, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonFlag)
	}
}

func measureChaos(nc int, seed int64) (chaosPoint, error) {
	pt := chaosPoint{NC: nc, Readers: 8, Writers: 8}
	if err := measureOverload(nc, seed, &pt); err != nil {
		return pt, err
	}
	if err := measureRecovery(nc, seed, &pt); err != nil {
		return pt, err
	}
	return pt, nil
}

// measureOverload pins the apply loop with a slow-I/O rule on every append
// and floods it from a writer pool while a read-only LoadGen measures the
// wait-free path. Shed rate comes from the engine's own counter: every
// admission refusal, including ones the writers see as ErrOverloaded.
func measureOverload(nc int, seed int64, pt *chaosPoint) error {
	dir, err := os.MkdirTemp("", "rxview-chaos-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	syn, err := rxview.NewSynthetic(rxview.SyntheticConfig{NC: nc, Seed: seed})
	if err != nil {
		return err
	}
	view, err := rxview.Open(syn.ATG, syn.DB, rxview.WithForceSideEffects(),
		rxview.WithDurability(dir), rxview.WithFsync(rxview.FsyncOff))
	if err != nil {
		return err
	}
	eng := server.New(view, server.WithQueueDepth(8), server.WithShedWatermark(4))
	defer eng.Close()

	if err := rxview.EnableChaos("wal.slow-io:latency=2ms,every=1", seed); err != nil {
		return err
	}
	defer rxview.DisableChaos()

	roots := syn.Roots()
	if len(roots) == 0 {
		return fmt.Errorf("chaos: synthetic dataset has no roots")
	}
	target := fmt.Sprintf(`//C[key="%d"]/sub`, roots[0])
	var updates []rxview.Update
	for i, k := range syn.FreshKeys(16) {
		updates = append(updates,
			rxview.Insert(target, "C", rxview.Int(k), rxview.Str(fmt.Sprintf("c%d", i))),
			rxview.Delete(fmt.Sprintf(`//C[key="%d"]`, k)))
	}

	runCtx, cancel := context.WithTimeout(context.Background(), *durFlag)
	defer cancel()
	var (
		wg      sync.WaitGroup
		applied atomic.Int64
	)
	writeErr := make(chan error, pt.Writers)
	for wtr := 0; wtr < pt.Writers; wtr++ {
		wg.Add(1)
		go func(wtr int) {
			defer wg.Done()
			for n := wtr; runCtx.Err() == nil; n++ {
				_, err := eng.Update(runCtx, updates[n%len(updates)])
				switch {
				case err == nil:
					applied.Add(1)
				case errors.Is(err, server.ErrOverloaded):
					// Shed: back off one scheduler beat and keep flooding —
					// the engine's counter tallies the refusal.
					time.Sleep(100 * time.Microsecond)
				case runCtx.Err() != nil || errors.Is(err, server.ErrClosed):
					return
				default:
					writeErr <- fmt.Errorf("chaos writer: %w", err)
					return
				}
			}
		}(wtr)
	}

	lg := server.LoadGen{
		Engine:   eng,
		Readers:  pt.Readers,
		Duration: *durFlag,
		Paths:    []string{`//C[sub/C]`, `//C`},
	}
	res, err := lg.Run(runCtx)
	wg.Wait()
	if err != nil {
		return err
	}
	select {
	case werr := <-writeErr:
		return werr
	default:
	}

	rxview.DisableChaos()
	st := eng.Stats()
	pt.Reads, pt.ReadP99NS, pt.ReadQPS = res.Reads, res.P99NS, res.QPS
	pt.Writes = applied.Load()
	pt.Shed = st.WritesShed
	if total := float64(pt.Shed) + float64(pt.Writes); total > 0 {
		pt.ShedPct = 100 * float64(pt.Shed) / total
	}
	eng.Close()
	return view.Close()
}

// measureRecovery flips a durable view into degraded mode with one
// injected disk-full and times the recovery transition: log reopen plus
// the full-state checkpoint that heals the memory-vs-disk divergence.
func measureRecovery(nc int, seed int64, pt *chaosPoint) error {
	dir, err := os.MkdirTemp("", "rxview-chaos-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	syn, err := rxview.NewSynthetic(rxview.SyntheticConfig{NC: nc, Seed: seed})
	if err != nil {
		return err
	}
	view, err := rxview.Open(syn.ATG, syn.DB, rxview.WithForceSideEffects(),
		rxview.WithDurability(dir), rxview.WithFsync(rxview.FsyncOff))
	if err != nil {
		return err
	}
	roots := syn.Roots()
	if len(roots) == 0 {
		return fmt.Errorf("chaos: synthetic dataset has no roots")
	}
	target := fmt.Sprintf(`//C[key="%d"]/sub`, roots[0])
	keys := syn.FreshKeys(2)
	ctx := context.Background()
	if _, err := view.Apply(ctx, rxview.Insert(target, "C", rxview.Int(keys[0]), rxview.Str("pre"))); err != nil {
		return err
	}

	if err := rxview.EnableChaos("wal.disk-full:count=1", seed); err != nil {
		return err
	}
	defer rxview.DisableChaos()
	_, err = view.Apply(ctx, rxview.Insert(target, "C", rxview.Int(keys[1]), rxview.Str("boom")))
	var de *rxview.DegradedError
	if !errors.As(err, &de) {
		return fmt.Errorf("chaos: injected disk-full did not degrade the view: %w", err)
	}
	rxview.DisableChaos()

	t0 := time.Now()
	if err := view.Recover(); err != nil {
		return fmt.Errorf("chaos recovery at |C|=%d: %w", nc, err)
	}
	pt.RecoverNS = time.Since(t0).Nanoseconds()
	return view.Close()
}
