package main

// The snapshot experiment measures epoch publication — the serving layer's
// per-write cost of freezing a readable snapshot — for the copy-on-write
// seal (O(Δ)) against the full deep clone (O(n)), across view sizes; plus
// end-to-end write throughput with one publication per write under both
// schemes, and served-query latency through the engine's read caches (the
// per-epoch result memo hit vs the evaluating miss).
//
//	benchrunner -exp snapshot -sizes 250,2500,25000 -json BENCH_PR4.json
//
// Sizes are |C|; the synthetic generator yields roughly 4.4 DAG nodes per
// C tuple, so 250/2500/25000 cover the 1k → 10k → 100k-node sweep. The
// publication acceptance bar: cow ns/op stays flat (within 2×) across the
// sweep while clone ns/op grows with the view.

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"rxview"
	"rxview/server"
)

// snapPoint is one row of BENCH_PR4.json.
type snapPoint struct {
	NC             int     `json:"nc"`
	Nodes          int     `json:"nodes"`
	PublishCOWNS   int64   `json:"publish_cow_ns_per_op"`
	PublishCloneNS int64   `json:"publish_clone_ns_per_op"`
	WriteCOWSec    float64 `json:"write_throughput_cow_per_sec"`
	WriteCloneSec  float64 `json:"write_throughput_clone_per_sec"`
	QueryMissNS    int64   `json:"query_miss_ns"`
	QueryHitNS     int64   `json:"query_hit_ns"`
}

// snapFile is the BENCH_PR4.json layout.
type snapFile struct {
	Seed   int64       `json:"seed"`
	Points []snapPoint `json:"points"`
}

func snapshotExp(sizes []int) {
	fmt.Println("== Snapshot publication: copy-on-write seal vs full clone ==")
	w := newTab()
	fmt.Fprintln(w, "|C|\tnodes\tpublish cow\tpublish clone\tclone/cow\twrites/s cow\twrites/s clone\tquery miss\tquery hit")
	out := snapFile{Seed: *seedFlag}
	for _, nc := range sizes {
		pt, err := measureSnapshot(nc, *seedFlag)
		if err != nil {
			log.Fatal(err)
		}
		out.Points = append(out.Points, pt)
		ratio := float64(pt.PublishCloneNS) / float64(max(pt.PublishCOWNS, 1))
		fmt.Fprintf(w, "%d\t%d\t%s\t%s\t%.1fx\t%.0f\t%.0f\t%s\t%s\n",
			pt.NC, pt.Nodes,
			time.Duration(pt.PublishCOWNS), time.Duration(pt.PublishCloneNS), ratio,
			pt.WriteCOWSec, pt.WriteCloneSec,
			time.Duration(pt.QueryMissNS), time.Duration(pt.QueryHitNS))
	}
	w.Flush()
	fmt.Println()
	// Strict -exp guard (like serve): under -exp all the -json file belongs
	// to the perf experiment and must not be overwritten.
	if *jsonFlag != "" && *expFlag == "snapshot" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonFlag, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonFlag)
	}
}

func measureSnapshot(nc int, seed int64) (snapPoint, error) {
	ctx := context.Background()
	pt := snapPoint{NC: nc}

	syn, err := rxview.NewSynthetic(rxview.SyntheticConfig{NC: nc, Seed: seed})
	if err != nil {
		return pt, err
	}
	view, err := rxview.Open(syn.ATG, syn.DB, rxview.WithForceSideEffects())
	if err != nil {
		return pt, err
	}
	pt.Nodes = view.Stats().Nodes
	roots := syn.Roots()
	if len(roots) == 0 {
		return pt, fmt.Errorf("snapshot: synthetic dataset has no roots")
	}
	target := fmt.Sprintf(`//C[key="%d"]/sub`, roots[0])

	// Write script: insert/delete pairs on fresh keys under one published
	// root. Every pair restores the base state, so Δ per write stays small
	// and constant across view sizes — exactly the regime in which an O(Δ)
	// publication must stay flat while an O(n) one grows.
	keys := syn.FreshKeys(64)
	mkWrites := func() []rxview.Update {
		var ws []rxview.Update
		for i, k := range keys {
			ws = append(ws,
				rxview.Insert(target, "C", rxview.Int(k), rxview.Str(fmt.Sprintf("s%d", i))),
				rxview.Delete(fmt.Sprintf(`//C[key="%d"]`, k)))
		}
		return ws
	}

	// Publication cost: after every applied write, seal a snapshot, timing
	// the publication alone. The seal sees exactly one write of dirt (it
	// reseals per write, like the engine's publish). The COW and clone
	// passes run separately — the clone's O(n) allocation churn triggers
	// GC pauses that would otherwise bleed into the COW timings.
	var cowTotal, cloneTotal time.Duration
	writes := mkWrites()
	runtime.GC()
	for _, u := range writes {
		if _, err := view.Apply(ctx, u); err != nil {
			return pt, fmt.Errorf("snapshot: apply %s: %w", u, err)
		}
		t0 := time.Now()
		view.Snapshot()
		cowTotal += time.Since(t0)
	}
	runtime.GC()
	for _, u := range mkWrites() {
		if _, err := view.Apply(ctx, u); err != nil {
			return pt, fmt.Errorf("snapshot: apply %s: %w", u, err)
		}
		t0 := time.Now()
		view.CloneSnapshot()
		cloneTotal += time.Since(t0)
	}
	n := int64(len(writes))
	pt.PublishCOWNS = cowTotal.Nanoseconds() / n
	pt.PublishCloneNS = cloneTotal.Nanoseconds() / n

	// Write throughput with one publication per write, COW vs clone.
	t0 := time.Now()
	for _, u := range mkWrites() {
		if _, err := view.Apply(ctx, u); err != nil {
			return pt, err
		}
		view.Snapshot()
	}
	pt.WriteCOWSec = float64(n) / time.Since(t0).Seconds()
	t0 = time.Now()
	for _, u := range mkWrites() {
		if _, err := view.Apply(ctx, u); err != nil {
			return pt, err
		}
		view.CloneSnapshot()
	}
	pt.WriteCloneSec = float64(n) / time.Since(t0).Seconds()

	// Served-query latency through the engine's caches: the first read of a
	// path on an epoch evaluates (memo miss), repeats are memo hits.
	eng := server.New(view)
	defer eng.Close()
	missPaths := []string{`//C[sub/C]`, `//C`, `/db/C`, `//C/sub/C`}
	var missTotal time.Duration
	for _, q := range missPaths {
		t0 = time.Now()
		if _, err := eng.Query(ctx, q); err != nil {
			return pt, err
		}
		missTotal += time.Since(t0)
	}
	pt.QueryMissNS = missTotal.Nanoseconds() / int64(len(missPaths))
	const hits = 256
	t0 = time.Now()
	for i := 0; i < hits; i++ {
		if _, err := eng.Query(ctx, missPaths[i%len(missPaths)]); err != nil {
			return pt, err
		}
	}
	pt.QueryHitNS = time.Since(t0).Nanoseconds() / hits
	return pt, nil
}
