package main

// The obs experiment prices the telemetry subsystem itself. The same query
// and commit workloads run through the serving engine twice — once with
// instrumentation live (the default) and once with obs.SetEnabled(false)
// stripping every timing collection — and the relative overhead is the
// headline number: the tentpole's budget is ≤ 3% on both hot paths.
//
//	benchrunner -exp obs -sizes 1000 -json BENCH_PR8.json
//
// Reported overhead percentages are floored at 1%: differences below a
// point are run-to-run noise, not signal, and the floor keeps benchdiff's
// ratio check meaningful — a committed baseline of 1% with -factor 3 warns
// exactly when a fresh run measures more than the 3% budget.

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	"rxview"
	"rxview/obs"
	"rxview/server"
)

// obsPoint is one row of BENCH_PR8.json: ns/op on each hot path with
// instrumentation on and off, and the relative overhead.
type obsPoint struct {
	NC                int     `json:"nc"`
	QueryOnNS         int64   `json:"query_instrumented_ns_per_op"`
	QueryOffNS        int64   `json:"query_stripped_ns_per_op"`
	CommitOnNS        int64   `json:"commit_instrumented_ns_per_op"`
	CommitOffNS       int64   `json:"commit_stripped_ns_per_op"`
	QueryOverheadPct  float64 `json:"obs_query_overhead_pct"`
	CommitOverheadPct float64 `json:"obs_commit_overhead_pct"`
}

type obsFile struct {
	Seed   int64      `json:"seed"`
	Points []obsPoint `json:"points"`
}

func obsExp(sizes []int) {
	fmt.Println("== Obs: telemetry overhead, instrumented vs stripped ==")
	w := newTab()
	fmt.Fprintln(w, "|C|\tquery on\tquery off\toverhead\tcommit on\tcommit off\toverhead")
	out := obsFile{Seed: *seedFlag}
	for _, nc := range sizes {
		pt, err := measureObs(nc, *seedFlag)
		if err != nil {
			log.Fatal(err)
		}
		out.Points = append(out.Points, pt)
		fmt.Fprintf(w, "%d\t%dns\t%dns\t%.1f%%\t%dns\t%dns\t%.1f%%\n",
			pt.NC, pt.QueryOnNS, pt.QueryOffNS, pt.QueryOverheadPct,
			pt.CommitOnNS, pt.CommitOffNS, pt.CommitOverheadPct)
	}
	w.Flush()
	fmt.Println()
	if *jsonFlag != "" && *expFlag == "obs" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonFlag, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonFlag)
	}
}

// measureObs times both hot paths at one size. The instrumented and
// stripped configurations run in alternation (on, off, on, off, ...) on
// fresh views, and each side keeps its best pass — interleaving cancels
// the slow machine drift (thermals, GC heritage) that a sequential A-then-B
// comparison would book as overhead.
func measureObs(nc int, seed int64) (obsPoint, error) {
	pt := obsPoint{NC: nc}
	const passes = 3

	best := func(curr, v int64) int64 {
		if curr == 0 || v < curr {
			return v
		}
		return curr
	}
	defer obs.SetEnabled(true)
	for p := 0; p < passes; p++ {
		for _, on := range []bool{true, false} {
			obs.SetEnabled(on)
			q, c, err := obsPass(nc, seed)
			if err != nil {
				return pt, err
			}
			if on {
				pt.QueryOnNS, pt.CommitOnNS = best(pt.QueryOnNS, q), best(pt.CommitOnNS, c)
			} else {
				pt.QueryOffNS, pt.CommitOffNS = best(pt.QueryOffNS, q), best(pt.CommitOffNS, c)
			}
		}
	}

	pt.QueryOverheadPct = overheadPct(pt.QueryOnNS, pt.QueryOffNS)
	pt.CommitOverheadPct = overheadPct(pt.CommitOnNS, pt.CommitOffNS)
	return pt, nil
}

// overheadPct is the relative slowdown of the instrumented path, floored
// at 1% (see the package comment for why the floor exists).
func overheadPct(on, off int64) float64 {
	if off <= 0 {
		return 1.0
	}
	pct := 100 * float64(on-off) / float64(off)
	if pct < 1.0 {
		return 1.0
	}
	return pct
}

// obsPass measures one engine's query and commit ns/op under whatever the
// current obs.Enabled() state is.
func obsPass(nc int, seed int64) (queryNS, commitNS int64, err error) {
	ctx := context.Background()
	syn, err := rxview.NewSynthetic(rxview.SyntheticConfig{NC: nc, Seed: seed})
	if err != nil {
		return 0, 0, err
	}
	view, err := rxview.Open(syn.ATG, syn.DB, rxview.WithForceSideEffects())
	if err != nil {
		return 0, 0, err
	}
	eng := server.New(view)
	defer eng.Close()

	roots := syn.Roots()
	if len(roots) == 0 {
		return 0, 0, fmt.Errorf("obs: synthetic dataset has no roots")
	}

	// Query hot path: the served read — epoch load, memo lookup, snapshot
	// evaluation on a miss. Rotating paths against a stable epoch means
	// memo hits dominate, which is the WORST case for relative overhead
	// (the instrumented share of a cheap hit is the largest).
	paths := []string{`//C[sub/C]`, `//C`}
	const qn = 4000
	for i := 0; i < 64; i++ { // warm the memo and the path cache
		if _, err := eng.Query(ctx, paths[i%len(paths)]); err != nil {
			return 0, 0, err
		}
	}
	t0 := time.Now()
	for i := 0; i < qn; i++ {
		if _, err := eng.Query(ctx, paths[i%len(paths)]); err != nil {
			return 0, 0, err
		}
	}
	queryNS = time.Since(t0).Nanoseconds() / qn

	// Commit hot path: the full served write — submit, pipeline, deliver,
	// publish. Insert/delete pairs on fresh keys return the view to its
	// base state every cycle, so the workload is stable for any length.
	target := fmt.Sprintf(`//C[key="%d"]/sub`, roots[0])
	keys := syn.FreshKeys(16)
	const cn = 400
	t0 = time.Now()
	for i := 0; i < cn/2; i++ {
		k := keys[i%len(keys)]
		ins := rxview.Insert(target, "C", rxview.Int(k), rxview.Str("obs"))
		if _, err := eng.Update(ctx, ins); err != nil {
			return 0, 0, err
		}
		if _, err := eng.Update(ctx, rxview.Delete(fmt.Sprintf(`//C[key="%d"]`, k))); err != nil {
			return 0, 0, err
		}
	}
	commitNS = time.Since(t0).Nanoseconds() / cn
	return queryNS, commitNS, nil
}
