package main

// The repl experiment prices the replication subsystem: how fast a cold
// follower catches up through the change-log stream, how far a steady-state
// follower trails a primary under write load, and what aggregate read
// throughput a fleet of followers adds. Writes are submitted to a follower
// first, so every point also exercises the 421-redirect path clients use.
//
//	benchrunner -exp repl -sizes 1000 -dur 500ms -json BENCH_PR10.json

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	"rxview"
	"rxview/server"
)

// replCatchupRecords is the generation count a cold follower replays for
// the catch-up measurement.
const replCatchupRecords = 256

var replFollowerCounts = []int{1, 2, 4}

// replPoint is one follower-fleet load measurement. The follower count
// doubles as the point's "nc" key — it is the sweep dimension benchdiff
// matches baseline points by, and the flatness bar across it says the
// per-follower read tail must not grow with fleet size.
type replPoint struct {
	Followers int `json:"followers"`
	NC        int `json:"nc"` // = Followers; benchdiff point key
	server.LoadResult
}

// replFile is the BENCH_PR10.json layout.
type replFile struct {
	Seed       int64   `json:"seed"`
	Size       int     `json:"size"`
	DurationMS float64 `json:"duration_ms"`
	// CatchupRecords streamed generations a cold follower replayed, and the
	// replay rate end to end (checkpoint fetch included).
	CatchupRecords    int64   `json:"catchup_records"`
	CatchupRecsPerSec float64 `json:"catchup_records_per_sec"`
	// SteadyLagP99 is the p99 of the follower's generation lag sampled while
	// a writer churns the primary.
	SteadyLagP99 float64     `json:"steady_lag_p99_gens"`
	Points       []replPoint `json:"points"` // read QPS at 1/2/4 followers
}

func replExp(sizes []int) {
	nc := sizes[len(sizes)-1]
	fmt.Printf("== Repl: follower catch-up, steady lag, and read scale-out (|C| = %d, %v/point) ==\n",
		nc, *durFlag)
	out := replFile{Seed: *seedFlag, Size: nc, DurationMS: float64(durFlag.Microseconds()) / 1000}

	p, err := newReplPrimary(nc)
	if err != nil {
		log.Fatal(err)
	}
	defer p.close()

	// Catch-up: churn the primary first, then boot a cold follower and time
	// its convergence. The checkpoint is pinned at the genesis generation,
	// so every record arrives through the stream.
	if err := p.churn(replCatchupRecords); err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	f := p.follower()
	target := p.src.Generation()
	for f.Status().Generation < target {
		time.Sleep(200 * time.Microsecond)
	}
	catchup := time.Since(t0)
	out.CatchupRecords = int64(target)
	out.CatchupRecsPerSec = float64(target) / catchup.Seconds()
	fmt.Printf("catch-up: %d records in %v (%.0f records/s)\n",
		target, catchup.Round(time.Millisecond), out.CatchupRecsPerSec)

	// Steady state: sample the follower's lag while a writer churns the
	// primary through the engine.
	lagDone := make(chan []float64, 1)
	sampleCtx, stopSampling := context.WithCancel(context.Background())
	go func() {
		var samples []float64
		for sampleCtx.Err() == nil {
			samples = append(samples, float64(f.Status().Lag))
			time.Sleep(500 * time.Microsecond)
		}
		lagDone <- samples
	}()
	lg := server.LoadGen{Engine: p.eng, Readers: 1, Duration: *durFlag, Paths: []string{`//C`}, Updates: p.churnUpdates()}
	if _, err := lg.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	stopSampling()
	out.SteadyLagP99 = p99(<-lagDone)
	fmt.Printf("steady lag p99 under write churn: %.0f generation(s)\n", out.SteadyLagP99)
	f.Close()

	// Read scale-out: at each fleet size the readers are spread across the
	// followers while the writer submits to a follower and follows the 421
	// redirect to the primary — the full client routing path.
	w := newTab()
	fmt.Fprintln(w, "followers\treads\tqps\tp50\tp95\tp99\twrites\tredirects")
	for _, n := range replFollowerCounts {
		res, err := p.fleetPoint(n)
		if err != nil {
			log.Fatal(err)
		}
		out.Points = append(out.Points, replPoint{Followers: n, NC: n, LoadResult: res})
		fmt.Fprintf(w, "%d\t%d\t%.0f\t%s\t%s\t%s\t%d\t%d\n", n, res.Reads, res.QPS,
			time.Duration(res.P50NS), time.Duration(res.P95NS), time.Duration(res.P99NS),
			res.Writes, res.Redirects)
	}
	w.Flush()
	fmt.Println()

	if *jsonFlag != "" && *expFlag == "repl" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonFlag, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonFlag)
	}
}

// replPrimary bundles the durable primary under test: view, engine, HTTP
// surface with the replication endpoints, and the churn workload.
type replPrimary struct {
	nc   int
	syn  *rxview.Synthetic
	view *rxview.View
	eng  *server.Engine
	src  *rxview.ReplSource
	srv  *httptest.Server
	dir  string
}

func newReplPrimary(nc int) (*replPrimary, error) {
	dir, err := os.MkdirTemp("", "benchrepl")
	if err != nil {
		return nil, err
	}
	syn, err := rxview.NewSynthetic(rxview.SyntheticConfig{NC: nc, Seed: *seedFlag})
	if err != nil {
		return nil, err
	}
	pol, err := rxview.ParseFsyncPolicy("off") // measuring replication, not the disk
	if err != nil {
		return nil, err
	}
	view, err := rxview.Open(syn.ATG, syn.DB,
		rxview.WithForceSideEffects(),
		rxview.WithDurability(dir),
		rxview.WithFsync(pol),
		rxview.WithCheckpointEvery(1<<20)) // keep catch-up on the stream, not a checkpoint
	if err != nil {
		return nil, err
	}
	src, err := view.ReplSource()
	if err != nil {
		return nil, err
	}
	eng := server.New(view)
	p := &replPrimary{nc: nc, syn: syn, view: view, eng: eng, src: src, dir: dir}
	p.srv = httptest.NewServer(server.NewHandler(eng, server.HandlerOptions{
		Repl:         src,
		StreamWindow: 100 * time.Millisecond,
	}))
	return p, nil
}

func (p *replPrimary) close() {
	p.srv.Close()
	p.eng.Close()
	p.view.Close()
	os.RemoveAll(p.dir)
}

// follower boots a cold replica following the primary's HTTP surface.
func (p *replPrimary) follower() *server.Replica {
	syn, err := rxview.NewSynthetic(rxview.SyntheticConfig{NC: p.nc, Seed: *seedFlag})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := rxview.OpenReplica(syn.ATG, syn.DB, rxview.WithForceSideEffects())
	if err != nil {
		log.Fatal(err)
	}
	return server.NewReplica(rep, p.srv.URL,
		server.WithPollWindow(50*time.Millisecond),
		server.WithFollowBackoff(time.Millisecond, 50*time.Millisecond))
}

// churnUpdates is a sustainable insert/delete pair cycle on fresh keys.
func (p *replPrimary) churnUpdates() []rxview.Update {
	roots := p.syn.Roots()
	target := fmt.Sprintf(`//C[key="%d"]/sub`, roots[0])
	var ups []rxview.Update
	for i, k := range p.syn.FreshKeys(16) {
		ups = append(ups,
			rxview.Insert(target, "C", rxview.Int(k), rxview.Str(fmt.Sprintf("r%d", i))),
			rxview.Delete(fmt.Sprintf(`//C[key="%d"]`, k)))
	}
	return ups
}

// churn applies n updates through the engine.
func (p *replPrimary) churn(n int) error {
	ups := p.churnUpdates()
	ctx := context.Background()
	for i := 0; i < n; i++ {
		if _, err := p.eng.Update(ctx, ups[i%len(ups)]); err != nil {
			return err
		}
	}
	return nil
}

// fleetPoint spins n fresh followers, waits for convergence, then drives
// readers across the fleet with the writer redirecting 421s to the primary.
func (p *replPrimary) fleetPoint(n int) (server.LoadResult, error) {
	followers := make([]*server.Replica, n)
	engines := make([]*server.Engine, n)
	for i := range followers {
		followers[i] = p.follower()
		engines[i] = followers[i].Engine()
	}
	defer func() {
		for _, f := range followers {
			f.Close()
		}
	}()
	target := p.src.Generation()
	for _, f := range followers {
		for f.Status().Generation < target {
			time.Sleep(200 * time.Microsecond)
		}
	}
	lg := server.LoadGen{
		Engine:   engines[0], // submit to a follower: exercises the 421 redirect
		Engines:  engines,
		Lookup:   func(string) *server.Engine { return p.eng },
		Readers:  8,
		Duration: *durFlag,
		Paths:    []string{`//C[sub/C]`, `//C`},
		Updates:  p.churnUpdates(),
	}
	return lg.Run(context.Background())
}

// p99 is the 99th percentile of a sample set (0 when empty).
func p99(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sort.Float64s(samples)
	return samples[int(0.99*float64(len(samples)-1))]
}
