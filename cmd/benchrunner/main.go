// benchrunner regenerates the tables and figures of the paper's evaluation
// (§5) as text tables: Fig.10(b) dataset statistics, Fig.11(a)–(f) update
// performance per workload class, Fig.11(g)–(h) sensitivity sweeps, Table 1
// (incremental maintenance vs recomputation), and the ablations.
//
// Usage:
//
//	benchrunner -exp all -sizes 1000,5000,20000 -ops 10
//
// The perf experiment additionally measures end-to-end ns/op for the four
// hot paths (query, apply, batch, maintain) and, with -json, writes them to
// a machine-readable file (CI stores BENCH_PR2.json per run, accumulating
// the perf trajectory):
//
//	benchrunner -exp perf -sizes 1000 -json BENCH_PR2.json
//
// The serve experiment drives the concurrent serving subsystem (readers
// against snapshots, a background writer through the apply loop) and, with
// -json, writes BENCH_PR3.json:
//
//	benchrunner -exp serve -sizes 1000 -dur 500ms -json BENCH_PR3.json
//
// The snapshot experiment measures epoch publication (copy-on-write seal
// vs full clone), write throughput under per-write publication, and
// served-query cache hit/miss latency, writing BENCH_PR4.json:
//
//	benchrunner -exp snapshot -sizes 250,2500,25000 -json BENCH_PR4.json
//
// The tx experiment compares an atomic Tx.Commit of k inserts against the
// same k as sequential Applies and as one non-atomic Batch, writing
// BENCH_PR5.json:
//
//	benchrunner -exp tx -sizes 250,2500,25000 -json BENCH_PR5.json
//
// The wal experiment prices durability: per-update commit latency at each
// fsync policy vs the in-memory baseline, and recovery time vs log length,
// writing BENCH_PR7.json:
//
//	benchrunner -exp wal -sizes 250,2500 -json BENCH_PR7.json
//
// The obs experiment prices the telemetry subsystem: query and commit
// ns/op with instrumentation live vs stripped (obs.SetEnabled(false)),
// writing BENCH_PR8.json; the budget is ≤ 3% overhead on both paths:
//
//	benchrunner -exp obs -sizes 1000 -json BENCH_PR8.json
//
// The chaos experiment prices the resilience layer: shed rate and read
// tail latency with the apply loop pinned by injected slow I/O and a
// writer pool flooding the admission queue, plus the degraded→read-write
// recovery time, writing BENCH_PR9.json:
//
//	benchrunner -exp chaos -sizes 1000 -dur 500ms -json BENCH_PR9.json
//
// The repl experiment prices the replication subsystem: cold-follower
// catch-up rate through the change-log stream, steady-state lag p99 under
// write churn, and aggregate read throughput at 1/2/4 followers (writes
// submitted to a follower and 421-redirected to the primary), writing
// BENCH_PR10.json:
//
//	benchrunner -exp repl -sizes 1000 -dur 500ms -json BENCH_PR10.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"rxview"
)

var (
	expFlag  = flag.String("exp", "all", "experiment: all|fig10b|fig11del|fig11ins|fig11g|fig11h|table1|ablation|perf|serve|snapshot|tx|wal|obs|chaos|repl")
	sizesStr = flag.String("sizes", "1000,5000,20000", "comma-separated |C| values")
	opsFlag  = flag.Int("ops", 10, "operations per workload class (the paper uses 10)")
	seedFlag = flag.Int64("seed", 42, "generator seed")
	jsonFlag = flag.String("json", "", "write the perf experiment's ns/op summary to this file")
)

func main() {
	flag.Parse()
	sizes, err := parseSizes(*sizesStr)
	if err != nil {
		log.Fatal(err)
	}
	run := func(name string, fn func([]int)) {
		if *expFlag == "all" || *expFlag == name {
			fn(sizes)
		}
	}
	run("fig10b", fig10b)
	run("fig11del", fig11del)
	run("fig11ins", fig11ins)
	run("fig11g", fig11g)
	run("fig11h", fig11h)
	run("table1", table1)
	run("ablation", ablation)
	run("perf", perf)
	run("serve", serveExp)
	run("snapshot", snapshotExp)
	run("tx", txExp)
	run("wal", walExp)
	run("obs", obsExp)
	run("chaos", chaosExp)
	run("repl", replExp)
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %w", part, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func newTab() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
}

func fig10b(sizes []int) {
	fmt.Println("== Fig.10(b): dataset statistics ==")
	w := newTab()
	fmt.Fprintln(w, "|C|\trows\tDAG nodes\tDAG edges\ttree |T|\tcompr.\tshared\t|L|\t|M|\tbuild")
	for _, nc := range sizes {
		st, took, err := rxview.DatasetStats(nc, *seedFlag)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%.0f\t%.2fx\t%.1f%%\t%d\t%d\t%v\n",
			nc, st.BaseRows, st.Nodes, st.Edges, st.TreeSize, st.Compression,
			100*st.SharedFrac, st.TopoLen, st.MatrixPairs, took.Round(time.Millisecond))
	}
	w.Flush()
	fmt.Println()
}

func fig11(sizes []int, deletes bool) {
	kind := "insertions (Fig.11 d–f)"
	if deletes {
		kind = "deletions (Fig.11 a–c)"
	}
	fmt.Printf("== Fig.11: %s — per-op phase times ==\n", kind)
	w := newTab()
	fmt.Fprintln(w, "|C|\tclass\tops\tapplied\t(a) eval\t(b) translate+exec\t(c) maintain\ttotal")
	for _, nc := range sizes {
		for _, class := range []rxview.WorkloadClass{rxview.W1, rxview.W2, rxview.W3} {
			res, err := rxview.RunWorkload(nc, class, deletes, *opsFlag, *seedFlag)
			if err != nil {
				log.Fatal(err)
			}
			n := time.Duration(res.Ops)
			if n == 0 {
				continue
			}
			fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%s\t%s\t%s\t%s\n",
				nc, class, res.Ops, res.Applied,
				ms(res.Phases.Eval/n), ms(res.Phases.Translate()/n),
				ms(res.Phases.Maintain/n), ms(res.Phases.Total()/n))
		}
	}
	w.Flush()
	fmt.Println()
}

func fig11del(sizes []int) { fig11(sizes, true) }
func fig11ins(sizes []int) { fig11(sizes, false) }

func fig11g(sizes []int) {
	nc := sizes[len(sizes)-1]
	fmt.Printf("== Fig.11(g): varying |r[[p]]| / |Ep(r)| at |C| = %d ==\n", nc)
	targets := []int{1, 2, 4, 8, 16, 32, 64}
	points, err := rxview.VarySelection(nc, targets, *seedFlag)
	if err != nil {
		log.Fatal(err)
	}
	w := newTab()
	fmt.Fprintln(w, "target\t|r[[p]]|\t|Ep|\tXdelete\tdelete\t∆(M,L)del\tXinsert\tinsert\t∆(M,L)ins")
	for _, p := range points {
		fmt.Fprintf(w, "%d\t%d\t%d\t%s\t%s\t%s\t%s\t%s\t%s\n",
			p.Targets, p.RP, p.EP,
			ms(p.Del.XToDV), ms(p.Del.DVToDR), ms(p.Del.Maintain),
			ms(p.Ins.XToDV), ms(p.Ins.DVToDR), ms(p.Ins.Maintain))
	}
	w.Flush()
	fmt.Println()
}

func fig11h(sizes []int) {
	nc := sizes[len(sizes)-1]
	fmt.Printf("== Fig.11(h): varying |ST(A,t)| at |C| = %d, |r[[p]]| = |Ep(r)| = 1 ==\n", nc)
	fanouts := []int{0, 2, 4, 8, 16, 32}
	points, err := rxview.VarySubtree(nc, fanouts, *seedFlag)
	if err != nil {
		log.Fatal(err)
	}
	w := newTab()
	fmt.Fprintln(w, "|ST| edges\tXinsert\tinsert\t∆(M,L)ins\tXdelete\tdelete\t∆(M,L)del")
	for _, p := range points {
		fmt.Fprintf(w, "%d\t%s\t%s\t%s\t%s\t%s\t%s\n",
			p.STEdges,
			ms(p.Ins.XToDV), ms(p.Ins.DVToDR), ms(p.Ins.Maintain),
			ms(p.Del.XToDV), ms(p.Del.DVToDR), ms(p.Del.Maintain))
	}
	w.Flush()
	fmt.Println()
}

func table1(sizes []int) {
	fmt.Println("== Table 1: incremental maintenance of L and M vs recomputation ==")
	w := newTab()
	fmt.Fprintln(w, "|C|\tincr. insertion\tincr. deletion\trecompute L\trecompute M")
	for _, nc := range sizes {
		res, err := rxview.MaintenanceTable(nc, *seedFlag)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%d\t%s\t%s\t%s\t%s\n",
			nc, ms(res.IncrInsert), ms(res.IncrDelete), ms(res.RecomputeL), ms(res.RecomputeM))
	}
	w.Flush()
	fmt.Println()
}

func ablation(sizes []int) {
	nc := sizes[len(sizes)-1]
	fmt.Printf("== Ablations at |C| = %d ==\n", nc)

	fig4, naive, pairs, err := rxview.ReachAblation(nc, *seedFlag)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Algorithm Reach (Fig.4): %v vs per-node DFS: %v  (|M| = %d)\n",
		fig4.Round(time.Microsecond), naive.Round(time.Microsecond), pairs)

	bitset, sparse, mpairs, err := rxview.MatrixAblation(nc, *seedFlag)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("M representation: bitset rows %v vs sparse relation %v  (|M| = %d)\n",
		bitset.Round(time.Microsecond), sparse.Round(time.Microsecond), mpairs)

	smaller := nc
	if smaller > 5000 {
		smaller = 5000 // the unfolded tree explodes beyond this
	}
	dagT, treeT, dagN, treeN, err := rxview.DAGvsTree(smaller, *seedFlag)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("XPath on DAG (%d nodes): %v vs on unfolded tree (%d nodes): %v  [|C| = %d]\n",
		dagN, dagT.Round(time.Microsecond), treeN, treeT.Round(time.Microsecond), smaller)

	full, fast, err := rxview.SideEffectAblation(nc, *seedFlag)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("XPath eval with exact side-effect detection: %v vs selection-only: %v\n",
		full.Round(time.Microsecond), fast.Round(time.Microsecond))

	nfaT, frT, err := rxview.EvalStrategyAblation(nc, *seedFlag)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Evaluation strategy: NFA state-sets %v vs frontier-with-M (paper-literal) %v\n",
		nfaT.Round(time.Microsecond), frT.Round(time.Microsecond))

	gT, eT, gN, eN, err := rxview.MinDeleteAblation(nc, *seedFlag)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Minimal deletion: greedy %v (|ΔR| = %d) vs exact branch&bound %v (|ΔR| = %d)\n",
		gT.Round(time.Microsecond), gN, eT.Round(time.Microsecond), eN)
	fmt.Println()
}

// perfPoint is one row of the machine-readable perf summary: end-to-end
// ns/op for the hot paths at one dataset size.
type perfPoint struct {
	Size     int   `json:"size"`
	Query    int64 `json:"query_ns_per_op"`    // //-heavy XPath evaluation
	Apply    int64 `json:"apply_ns_per_op"`    // full single-update pipeline (W2 inserts)
	Batch    int64 `json:"batch_ns_per_op"`    // per update inside View.Batch
	Maintain int64 `json:"maintain_ns_per_op"` // ∆(M,L) share of the apply pipeline
}

// perfFile is the BENCH_PR2.json layout.
type perfFile struct {
	Seed   int64       `json:"seed"`
	Points []perfPoint `json:"points"`
}

func perf(sizes []int) {
	fmt.Println("== Perf summary: end-to-end ns/op ==")
	w := newTab()
	fmt.Fprintln(w, "|C|\tquery\tapply\tbatch\tmaintain")
	out := perfFile{Seed: *seedFlag}
	for _, nc := range sizes {
		pt, err := measurePerf(nc, *seedFlag)
		if err != nil {
			log.Fatal(err)
		}
		out.Points = append(out.Points, pt)
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\n", pt.Size, pt.Query, pt.Apply, pt.Batch, pt.Maintain)
	}
	w.Flush()
	fmt.Println()
	if *jsonFlag != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonFlag, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonFlag)
	}
}

func measurePerf(nc int, seed int64) (perfPoint, error) {
	ctx := context.Background()
	pt := perfPoint{Size: nc}

	syn, err := rxview.NewSynthetic(rxview.SyntheticConfig{NC: nc, Seed: seed})
	if err != nil {
		return pt, err
	}
	view, err := rxview.Open(syn.ATG, syn.DB, rxview.WithForceSideEffects())
	if err != nil {
		return pt, err
	}

	// Query: a //-heavy recursive selection, the path the reachability
	// matrix accelerates.
	const qn = 32
	t0 := time.Now()
	for i := 0; i < qn; i++ {
		if _, err := view.Query(ctx, `//C[sub/C]`); err != nil {
			return pt, err
		}
	}
	pt.Query = time.Since(t0).Nanoseconds() / qn

	// Apply + maintain: the full single-update pipeline over a W2 insert
	// workload; maintain is its ∆(M,L) share per the phase reports.
	stmts := syn.InsertWorkload(rxview.W2, *opsFlag, seed+200)
	if len(stmts) == 0 {
		return pt, fmt.Errorf("perf: empty insert workload at |C| = %d", nc)
	}
	var maintain time.Duration
	t0 = time.Now()
	for _, s := range stmts {
		rep, err := view.Execute(ctx, s)
		if err != nil {
			return pt, fmt.Errorf("%s: %w", s, err)
		}
		maintain += rep.Timings.Maintain
	}
	pt.Apply = time.Since(t0).Nanoseconds() / int64(len(stmts))
	pt.Maintain = maintain.Nanoseconds() / int64(len(stmts))

	// Batch: the same insertion shape through View.Batch on a fresh view —
	// fresh keys under one published root, the deferred-flush fast path.
	syn2, err := rxview.NewSynthetic(rxview.SyntheticConfig{NC: nc, Seed: seed})
	if err != nil {
		return pt, err
	}
	view2, err := rxview.Open(syn2.ATG, syn2.DB, rxview.WithForceSideEffects())
	if err != nil {
		return pt, err
	}
	roots := syn2.Roots()
	if len(roots) == 0 {
		return pt, fmt.Errorf("perf: synthetic dataset has no roots")
	}
	target := fmt.Sprintf(`//C[key="%d"]/sub`, roots[0])
	const bn = 64
	updates := make([]rxview.Update, 0, bn)
	for _, k := range syn2.FreshKeys(bn) {
		updates = append(updates, rxview.Insert(target, "C",
			rxview.Int(k), rxview.Str(fmt.Sprintf("b%d", k))))
	}
	t0 = time.Now()
	if _, err := view2.Batch(ctx, updates...); err != nil {
		return pt, err
	}
	pt.Batch = time.Since(t0).Nanoseconds() / bn
	return pt, nil
}
