package main

// The wal experiment prices durability: per-update commit latency with the
// write-ahead log at each fsync policy against the in-memory baseline, and
// recovery time (checkpoint load + log replay) as a function of log length.
// FsyncOff shows the pure logging overhead (serialization + write(2)),
// FsyncBatch the group-commit compromise, FsyncAlways the full
// survives-power-loss price — on the insert workload the gap between Off
// and the baseline is the cost every durable commit pays, and the gap
// between Always and Off is pure fsync.
//
//	benchrunner -exp wal -sizes 250,2500 -json BENCH_PR7.json

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	"rxview"
)

// walPoint is one commit-latency row of BENCH_PR7.json.
type walPoint struct {
	NC       int   `json:"nc"`
	Nodes    int   `json:"nodes"`
	K        int   `json:"k"`                   // updates applied
	BaseNS   int64 `json:"base_ns_per_op"`      // in-memory view, no durability
	OffNS    int64 `json:"fsync_off_ns_per_op"` // log written, never synced
	BatchNS  int64 `json:"fsync_batch_ns_per_op"`
	AlwaysNS int64 `json:"fsync_always_ns_per_op"`
}

// walRecoveryPoint is one recovery-time row of BENCH_PR7.json.
type walRecoveryPoint struct {
	NC        int   `json:"nc"`
	Records   int   `json:"records"`      // log records replayed on boot
	RecoverNS int64 `json:"recover_ns"`   // durable Open: checkpoint + replay
	ColdNS    int64 `json:"cold_open_ns"` // non-durable Open: full publication
	LogBytes  int64 `json:"log_bytes"`    // size of the replayed suffix
}

type walFile struct {
	Seed     int64              `json:"seed"`
	Points   []walPoint         `json:"points"`
	Recovery []walRecoveryPoint `json:"recovery"`
}

func walExp(sizes []int) {
	fmt.Println("== WAL: durable commit latency per fsync policy (k inserts, per-update ns) ==")
	w := newTab()
	fmt.Fprintln(w, "|C|\tnodes\tk\tbase\tfsync=off\tfsync=batch\tfsync=always")
	out := walFile{Seed: *seedFlag}
	for _, nc := range sizes {
		pt, err := measureWalCommit(nc, *seedFlag)
		if err != nil {
			log.Fatal(err)
		}
		out.Points = append(out.Points, pt)
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			pt.NC, pt.Nodes, pt.K, pt.BaseNS, pt.OffNS, pt.BatchNS, pt.AlwaysNS)
	}
	w.Flush()
	fmt.Println()

	fmt.Println("== WAL: recovery time vs log length (|C| fixed at the first size) ==")
	w = newTab()
	fmt.Fprintln(w, "|C|\trecords\tlog bytes\trecover\tcold open")
	nc := sizes[0]
	for _, records := range []int{16, 64, 256} {
		pt, err := measureWalRecovery(nc, *seedFlag, records)
		if err != nil {
			log.Fatal(err)
		}
		out.Recovery = append(out.Recovery, pt)
		fmt.Fprintf(w, "%d\t%d\t%d\t%s\t%s\n", pt.NC, pt.Records, pt.LogBytes,
			ms(time.Duration(pt.RecoverNS)), ms(time.Duration(pt.ColdNS)))
	}
	w.Flush()
	fmt.Println()

	if *jsonFlag != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonFlag, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonFlag)
	}
}

// walView opens a synthetic view (durable when dir is non-empty) and returns
// the same insert workload the tx experiment uses, so the per-op numbers are
// directly comparable to BENCH_PR5.
func walView(nc int, seed int64, k int, opts ...rxview.Option) (*rxview.View, []rxview.Update, error) {
	syn, err := rxview.NewSynthetic(rxview.SyntheticConfig{NC: nc, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	view, err := rxview.Open(syn.ATG, syn.DB, append([]rxview.Option{rxview.WithForceSideEffects()}, opts...)...)
	if err != nil {
		return nil, nil, err
	}
	roots := syn.Roots()
	if len(roots) == 0 {
		return nil, nil, fmt.Errorf("wal: synthetic dataset has no roots")
	}
	target := fmt.Sprintf(`//C[key="%d"]/sub`, roots[0])
	updates := make([]rxview.Update, 0, k)
	for _, key := range syn.FreshKeys(k) {
		updates = append(updates, rxview.Insert(target, "C",
			rxview.Int(key), rxview.Str(fmt.Sprintf("wal%d", key))))
	}
	return view, updates, nil
}

func applyTimed(view *rxview.View, updates []rxview.Update) (int64, error) {
	ctx := context.Background()
	t0 := time.Now()
	for _, u := range updates {
		if _, err := view.Apply(ctx, u); err != nil {
			return 0, err
		}
	}
	return time.Since(t0).Nanoseconds() / int64(len(updates)), nil
}

func measureWalCommit(nc int, seed int64) (walPoint, error) {
	const k = 64
	pt := walPoint{NC: nc, K: k}

	view, updates, err := walView(nc, seed, k)
	if err != nil {
		return pt, err
	}
	pt.Nodes = view.Stats().Nodes
	if pt.BaseNS, err = applyTimed(view, updates); err != nil {
		return pt, fmt.Errorf("wal base at |C|=%d: %w", nc, err)
	}

	for _, pol := range []struct {
		policy rxview.FsyncPolicy
		slot   *int64
		name   string
	}{
		{rxview.FsyncOff, &pt.OffNS, "off"},
		{rxview.FsyncBatch, &pt.BatchNS, "batch"},
		{rxview.FsyncAlways, &pt.AlwaysNS, "always"},
	} {
		dir, err := os.MkdirTemp("", "rxview-wal-")
		if err != nil {
			return pt, err
		}
		view, updates, err := walView(nc, seed, k,
			rxview.WithDurability(dir), rxview.WithFsync(pol.policy))
		if err != nil {
			os.RemoveAll(dir)
			return pt, err
		}
		ns, err := applyTimed(view, updates)
		if err == nil {
			err = view.Close()
		}
		os.RemoveAll(dir)
		if err != nil {
			return pt, fmt.Errorf("wal fsync=%s at |C|=%d: %w", pol.name, nc, err)
		}
		*pol.slot = ns
	}
	return pt, nil
}

func measureWalRecovery(nc int, seed int64, records int) (walRecoveryPoint, error) {
	pt := walRecoveryPoint{NC: nc, Records: records}
	dir, err := os.MkdirTemp("", "rxview-wal-")
	if err != nil {
		return pt, err
	}
	defer os.RemoveAll(dir)

	// Build a log of the requested length: no Close, so the next Open must
	// replay every record onto the genesis checkpoint.
	view, updates, err := walView(nc, seed, records,
		rxview.WithDurability(dir), rxview.WithFsync(rxview.FsyncOff),
		rxview.WithCheckpointEvery(1<<30))
	if err != nil {
		return pt, err
	}
	ctx := context.Background()
	for _, u := range updates {
		if _, err := view.Apply(ctx, u); err != nil {
			return pt, fmt.Errorf("wal recovery workload at |C|=%d: %w", nc, err)
		}
	}
	info, err := rxview.InspectWAL(dir)
	if err != nil {
		return pt, err
	}
	for _, s := range info.Segments {
		for _, r := range s.Records {
			pt.LogBytes += int64(r.Bytes)
		}
	}

	syn, err := rxview.NewSynthetic(rxview.SyntheticConfig{NC: nc, Seed: seed})
	if err != nil {
		return pt, err
	}
	t0 := time.Now()
	recovered, err := rxview.Open(syn.ATG, syn.DB, rxview.WithForceSideEffects(),
		rxview.WithDurability(dir), rxview.WithFsync(rxview.FsyncOff))
	if err != nil {
		return pt, fmt.Errorf("wal recovery open at |C|=%d: %w", nc, err)
	}
	pt.RecoverNS = time.Since(t0).Nanoseconds()
	if err := recovered.Close(); err != nil {
		return pt, err
	}

	// The cold baseline: publish the same dataset from scratch, no log.
	syn, err = rxview.NewSynthetic(rxview.SyntheticConfig{NC: nc, Seed: seed})
	if err != nil {
		return pt, err
	}
	t0 = time.Now()
	if _, err := rxview.Open(syn.ATG, syn.DB, rxview.WithForceSideEffects()); err != nil {
		return pt, err
	}
	pt.ColdNS = time.Since(t0).Nanoseconds()
	return pt, nil
}
