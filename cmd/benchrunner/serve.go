package main

// The serve experiment measures the concurrent view-serving subsystem:
// aggregate read throughput and latency percentiles at increasing reader
// counts with a background writer churning the view, against a sequential
// 1-reader/no-writer baseline. The headline number is read retention —
// reads are snapshot-isolated, so piling on readers and a writer should
// not collapse read throughput below the uncontended baseline.
//
//	benchrunner -exp serve -sizes 1000 -dur 500ms -json BENCH_PR3.json

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"rxview"
	"rxview/server"
)

var durFlag = flag.Duration("dur", 500*time.Millisecond, "serve experiment: load duration per point")

var serveReaderCounts = []int{1, 8, 64}

// serveFile is the BENCH_PR3.json layout.
type serveFile struct {
	Seed        int64               `json:"seed"`
	Size        int                 `json:"size"`
	DurationMS  float64             `json:"duration_ms"`
	BaselineQPS float64             `json:"baseline_qps"` // 1 reader, no writer
	Points      []server.LoadResult `json:"points"`       // with background writer
	// Retention64 = aggregate read QPS at 64 readers (with writer) divided
	// by the sequential baseline QPS: ≥ 0.8 is the acceptance bar — adding
	// readers and a writer must not collapse read throughput.
	Retention64 float64 `json:"read_retention_64"`
}

func serveExp(sizes []int) {
	nc := sizes[len(sizes)-1]
	fmt.Printf("== Serve: snapshot-isolated reads under a background writer (|C| = %d, %v/point) ==\n",
		nc, *durFlag)

	out := serveFile{Seed: *seedFlag, Size: nc, DurationMS: float64(durFlag.Microseconds()) / 1000}

	base, err := runServePoint(nc, 1, false)
	if err != nil {
		log.Fatal(err)
	}
	out.BaselineQPS = base.QPS

	w := newTab()
	fmt.Fprintln(w, "readers\twriter\treads\twrites\tqps\tp50\tp95\tp99\twp50\twp95\twp99")
	fmt.Fprintf(w, "%d\tno\t%d\t-\t%.0f\t%s\t%s\t%s\t-\t-\t-\n", base.Readers, base.Reads, base.QPS,
		time.Duration(base.P50NS), time.Duration(base.P95NS), time.Duration(base.P99NS))
	for _, readers := range serveReaderCounts {
		res, err := runServePoint(nc, readers, true)
		if err != nil {
			log.Fatal(err)
		}
		out.Points = append(out.Points, res)
		fmt.Fprintf(w, "%d\tyes\t%d\t%d\t%.0f\t%s\t%s\t%s\t%s\t%s\t%s\n", res.Readers, res.Reads, res.Writes,
			res.QPS, time.Duration(res.P50NS), time.Duration(res.P95NS), time.Duration(res.P99NS),
			time.Duration(res.WP50NS), time.Duration(res.WP95NS), time.Duration(res.WP99NS))
		if readers == 64 && out.BaselineQPS > 0 {
			out.Retention64 = res.QPS / out.BaselineQPS
		}
	}
	w.Flush()
	fmt.Printf("read retention at 64 readers vs sequential baseline: %.2fx\n\n", out.Retention64)

	if *jsonFlag != "" && *expFlag == "serve" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonFlag, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonFlag)
	}
}

// runServePoint opens a fresh view + engine and drives it for one point;
// each point gets its own state so earlier churn cannot skew later ones.
func runServePoint(nc, readers int, withWriter bool) (server.LoadResult, error) {
	syn, err := rxview.NewSynthetic(rxview.SyntheticConfig{NC: nc, Seed: *seedFlag})
	if err != nil {
		return server.LoadResult{}, err
	}
	view, err := rxview.Open(syn.ATG, syn.DB, rxview.WithForceSideEffects())
	if err != nil {
		return server.LoadResult{}, err
	}
	eng := server.New(view)
	defer eng.Close()

	roots := syn.Roots()
	if len(roots) == 0 {
		return server.LoadResult{}, fmt.Errorf("serve: synthetic dataset has no roots")
	}
	lg := server.LoadGen{
		Engine:   eng,
		Readers:  readers,
		Duration: *durFlag,
		Paths:    []string{`//C[sub/C]`, `//C`},
	}
	if withWriter {
		// The writer cycles insert/delete pairs on fresh keys under one
		// published root: every pair returns the view to its base state, so
		// the churn is sustainable for any duration.
		target := fmt.Sprintf(`//C[key="%d"]/sub`, roots[0])
		for i, k := range syn.FreshKeys(16) {
			lg.Updates = append(lg.Updates,
				rxview.Insert(target, "C", rxview.Int(k), rxview.Str(fmt.Sprintf("w%d", i))),
				rxview.Delete(fmt.Sprintf(`//C[key="%d"]`, k)))
		}
	}
	return lg.Run(context.Background())
}
