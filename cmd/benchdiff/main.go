// benchdiff compares a freshly measured BENCH_PR4.json against the
// committed baseline and warns when snapshot-publication cost regressed
// beyond the allowed factor. It is wired into the non-gating CI bench job:
// a regression prints a GitHub warning annotation and exits non-zero so the
// step fails loudly, without gating the build (the job continues on error).
//
//	benchdiff -baseline BENCH_PR4.json -current BENCH_PR4.new.json -factor 2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type point struct {
	NC           int   `json:"nc"`
	Nodes        int   `json:"nodes"`
	PublishCOWNS int64 `json:"publish_cow_ns_per_op"`
}

type file struct {
	Points []point `json:"points"`
}

func load(path string) (file, error) {
	var f file
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	return f, json.Unmarshal(data, &f)
}

func main() {
	baseline := flag.String("baseline", "BENCH_PR4.json", "committed baseline")
	current := flag.String("current", "", "freshly measured file")
	factor := flag.Float64("factor", 2, "allowed regression factor")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -current is required")
		os.Exit(2)
	}
	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	baseByNC := map[int]point{}
	for _, p := range base.Points {
		baseByNC[p.NC] = p
	}
	regressed, compared := false, 0
	for _, c := range cur.Points {
		b, ok := baseByNC[c.NC]
		if !ok || b.PublishCOWNS <= 0 {
			fmt.Printf("benchdiff: nc=%d not in baseline, skipping\n", c.NC)
			continue
		}
		compared++
		ratio := float64(c.PublishCOWNS) / float64(b.PublishCOWNS)
		fmt.Printf("nc=%d publish_cow: baseline %dns, current %dns (%.2fx)\n",
			c.NC, b.PublishCOWNS, c.PublishCOWNS, ratio)
		if ratio > *factor {
			// GitHub annotation: visible on the run summary even though the
			// bench job is non-gating. Absolute ns across machines is noisy
			// (the baseline was measured elsewhere), which is one reason
			// this check warns instead of gating; the flatness check below
			// is the machine-independent signal.
			fmt.Printf("::warning title=snapshot publication regression::nc=%d publish_cow_ns %d -> %d (%.2fx > %.1fx allowed)\n",
				c.NC, b.PublishCOWNS, c.PublishCOWNS, ratio, *factor)
			regressed = true
		}
	}
	if compared == 0 {
		// A guard that compares nothing must not pass green: this happens
		// when ci.yml's -sizes drifts from the committed baseline or the
		// current file is empty/truncated.
		fmt.Println("::warning title=benchdiff inert::no points compared — baseline and current share no nc sizes")
		os.Exit(2)
	}
	// Machine-independent acceptance bar: within ONE run, publish_cow must
	// stay flat (within factor) across the size sweep. This flags an O(n)
	// component sneaking back into the seal even when the runner's absolute
	// speed differs wildly from the baseline machine's.
	lo, hi := int64(1<<62), int64(0)
	for _, c := range cur.Points {
		if c.PublishCOWNS > 0 {
			lo, hi = min(lo, c.PublishCOWNS), max(hi, c.PublishCOWNS)
		}
	}
	if hi > 0 {
		flat := float64(hi) / float64(lo)
		fmt.Printf("publish_cow flatness across sizes: %.2fx (max %dns / min %dns)\n", flat, hi, lo)
		if flat > *factor {
			fmt.Printf("::warning title=snapshot publication not flat::publish_cow_ns varies %.2fx across view sizes (> %.1fx): an O(n) component is back in the seal\n",
				flat, *factor)
			regressed = true
		}
	}
	if regressed {
		os.Exit(1)
	}
}
