// benchdiff compares a freshly measured benchmark summary against the
// committed baseline and warns when the chosen metric regressed beyond the
// allowed factor. It is wired into the non-gating CI bench job: a
// regression prints a GitHub warning annotation and exits non-zero so the
// step fails loudly, without gating the build (the job continues on error).
//
//	benchdiff -baseline BENCH_PR4.json -current BENCH_PR4.new.json -factor 2
//	benchdiff -baseline BENCH_PR5.json -current BENCH_PR5.new.json \
//	          -factor 3 -metric tx_commit_ns_per_op -flat=false
//
// Points are matched by their "nc" size. With -flat (the default, meant for
// snapshot publication) the metric must also stay within the factor across
// the size sweep of one run — the machine-independent signal that an O(n)
// component sneaked back in; disable it for metrics that legitimately grow
// with view size, like per-update transaction cost.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type file struct {
	Points []map[string]any `json:"points"`
}

func load(path string) (file, error) {
	var f file
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	return f, json.Unmarshal(data, &f)
}

// field reads a numeric field of a point; JSON numbers decode as float64.
func field(p map[string]any, name string) (float64, bool) {
	v, ok := p[name].(float64)
	return v, ok
}

func main() {
	baseline := flag.String("baseline", "BENCH_PR4.json", "committed baseline")
	current := flag.String("current", "", "freshly measured file")
	factor := flag.Float64("factor", 2, "allowed regression factor")
	metric := flag.String("metric", "publish_cow_ns_per_op", "point field to compare")
	flat := flag.Bool("flat", true, "also require the metric to stay within factor across sizes in the current run")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -current is required")
		os.Exit(2)
	}
	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	baseByNC := map[float64]map[string]any{}
	for _, p := range base.Points {
		if nc, ok := field(p, "nc"); ok {
			baseByNC[nc] = p
		}
	}
	regressed, compared := false, 0
	for _, c := range cur.Points {
		nc, ok := field(c, "nc")
		if !ok {
			continue
		}
		cv, cok := field(c, *metric)
		b, ok := baseByNC[nc]
		if !ok || !cok {
			fmt.Printf("benchdiff: nc=%v not comparable, skipping\n", nc)
			continue
		}
		bv, bok := field(b, *metric)
		if !bok || bv <= 0 {
			fmt.Printf("benchdiff: nc=%v has no baseline %s, skipping\n", nc, *metric)
			continue
		}
		compared++
		ratio := cv / bv
		fmt.Printf("nc=%v %s: baseline %.0fns, current %.0fns (%.2fx)\n", nc, *metric, bv, cv, ratio)
		if ratio > *factor {
			// GitHub annotation: visible on the run summary even though the
			// bench job is non-gating. Absolute ns across machines is noisy
			// (the baseline was measured elsewhere), which is one reason
			// this check warns instead of gating; the flatness check below
			// is the machine-independent signal.
			fmt.Printf("::warning title=%s regression::nc=%v %s %.0f -> %.0f (%.2fx > %.1fx allowed)\n",
				*metric, nc, *metric, bv, cv, ratio, *factor)
			regressed = true
		}
	}
	if compared == 0 {
		// A guard that compares nothing must not pass green: this happens
		// when ci.yml's -sizes drifts from the committed baseline or the
		// current file is empty/truncated.
		fmt.Printf("::warning title=benchdiff inert::no points compared — baseline and current share no nc sizes with %s\n", *metric)
		os.Exit(2)
	}
	// Machine-independent acceptance bar: within ONE run, the metric must
	// stay flat (within factor) across the size sweep. For snapshot
	// publication this flags an O(n) component sneaking back into the seal
	// even when the runner's absolute speed differs wildly from the
	// baseline machine's.
	if *flat {
		lo, hi := 0.0, 0.0
		for _, c := range cur.Points {
			if v, ok := field(c, *metric); ok && v > 0 {
				if lo == 0 || v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
		}
		if hi > 0 {
			f := hi / lo
			fmt.Printf("%s flatness across sizes: %.2fx (max %.0fns / min %.0fns)\n", *metric, f, hi, lo)
			if f > *factor {
				fmt.Printf("::warning title=%s not flat::%s varies %.2fx across view sizes (> %.1fx): an O(n) component is back\n",
					*metric, *metric, f, *factor)
				regressed = true
			}
		}
	}
	if regressed {
		os.Exit(1)
	}
}
