package main

// End-to-end replication: build the daemon, run a durable primary plus two
// -replica-of followers as real processes, SIGKILL one follower mid-stream,
// restart it, and require both followers to converge to the primary's exact
// state (same generation, same query results). A second test hosts three
// named views in one -views process — two primaries and a follower of the
// first through the /v/ prefix — and checks routing plus generation
// isolation over the wire.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// buildDaemon compiles the daemon binary once per test.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "xviewd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building xviewd: %v", err)
	}
	return bin
}

// startDaemon launches the binary and waits for readiness — which for a
// follower also means caught up to within the follow watermark.
func startDaemon(t *testing.T, bin string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

func getJSON(t *testing.T, addr, path string, out any) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("GET %s: %s: %s", path, resp.Status, buf.String())
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// nodeState fingerprints a serving node over the wire: its generation and
// the result counts of a query set.
func nodeState(t *testing.T, addr, prefix string, paths []string) string {
	t.Helper()
	var st struct {
		Generation uint64 `json:"generation"`
	}
	getJSON(t, addr, prefix+"/stats", &st)
	out := fmt.Sprintf("gen=%d", st.Generation)
	for _, q := range paths {
		var got struct {
			Count int `json:"count"`
		}
		postJSON(t, addr, prefix+"/query", map[string]string{"path": q}, &got)
		out += fmt.Sprintf(" %s=%d", q, got.Count)
	}
	return out
}

func TestReplicationPrimaryTwoFollowersKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills daemon binaries")
	}
	bin := buildDaemon(t)
	primaryAddr := freePort(t)
	primary := startDaemon(t, bin, "-addr", primaryAddr, "-data", t.TempDir(), "-fsync", "off")
	defer func() {
		primary.Process.Signal(syscall.SIGTERM)
		primary.Wait()
	}()
	waitHealthy(t, primaryAddr)

	insert := func(i int) map[string]any {
		return map[string]any{
			"kind": "insert", "type": "student",
			"path":   `//course[cno="CS650"]/takenBy`,
			"values": []string{fmt.Sprintf("SE%d", i), "E2E"},
		}
	}
	for i := 0; i < 6; i++ {
		postJSON(t, primaryAddr, "/update", insert(i), nil)
	}

	primaryURL := "http://" + primaryAddr
	followerArgs := func(addr string) []string {
		return []string{"-addr", addr, "-replica-of", primaryURL, "-follow-watermark", "0"}
	}
	f1Addr, f2Addr := freePort(t), freePort(t)
	f1 := startDaemon(t, bin, followerArgs(f1Addr)...)
	defer func() { f1.Process.Kill(); f1.Wait() }()
	f2 := startDaemon(t, bin, followerArgs(f2Addr)...)
	defer func() {
		f2.Process.Signal(syscall.SIGTERM)
		f2.Wait()
	}()
	// Readiness doubles as the catch-up barrier: with watermark 0 a
	// follower answers 200 only at zero lag.
	waitHealthy(t, f1Addr)
	waitHealthy(t, f2Addr)

	paths := []string{`//course[cno="CS650"]/takenBy/student`, `//student`, `//course`}
	want := nodeState(t, primaryAddr, "", paths)
	for _, fa := range []string{f1Addr, f2Addr} {
		if got := nodeState(t, fa, "", paths); got != want {
			t.Fatalf("follower %s diverged: %s, primary %s", fa, got, want)
		}
	}

	// A write against a follower is misdirected back to the primary.
	body, _ := json.Marshal(insert(100))
	resp, err := http.Post("http://"+f1Addr+"/update", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("follower /update = %s, want 421", resp.Status)
	}
	if got := resp.Header.Get("X-Xview-Primary"); got != primaryURL {
		t.Fatalf("X-Xview-Primary = %q, want %q", got, primaryURL)
	}

	// Kill follower 1 the hard way, keep writing, then restart it on the
	// same flags: it must re-sync from the primary's checkpoint + stream
	// and converge to the exact post-kill state.
	if err := f1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	f1.Wait()
	for i := 6; i < 14; i++ {
		postJSON(t, primaryAddr, "/update", insert(i), nil)
	}
	f1b := startDaemon(t, bin, followerArgs(f1Addr)...)
	defer func() {
		f1b.Process.Signal(syscall.SIGTERM)
		f1b.Wait()
	}()
	waitHealthy(t, f1Addr)
	waitHealthy(t, f2Addr)

	want = nodeState(t, primaryAddr, "", paths)
	for _, fa := range []string{f1Addr, f2Addr} {
		if got := nodeState(t, fa, "", paths); got != want {
			t.Fatalf("follower %s after kill/restart: %s, primary %s", fa, got, want)
		}
	}
}

func TestViewsMultiTenantDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := buildDaemon(t)
	addr := freePort(t)
	spec := fmt.Sprintf(`[
	  {"name": "alpha", "data": %q, "fsync": "off"},
	  {"name": "beta", "dataset": "synthetic", "nc": 50, "seed": 7},
	  {"name": "mirror", "replica_of": "http://%s/v/alpha"}
	]`, t.TempDir(), addr)
	cfg := filepath.Join(t.TempDir(), "views.json")
	if err := os.WriteFile(cfg, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := startDaemon(t, bin, "-addr", addr, "-views", cfg, "-follow-watermark", "0")
	defer func() {
		cmd.Process.Signal(syscall.SIGTERM)
		cmd.Wait()
	}()
	waitHealthy(t, addr) // aggregate: 200 only once every tenant is ready

	var views struct {
		Views []struct {
			Name  string `json:"name"`
			State string `json:"state"`
		} `json:"views"`
	}
	getJSON(t, addr, "/views", &views)
	if len(views.Views) != 3 {
		t.Fatalf("/views listed %d tenants, want 3: %+v", len(views.Views), views)
	}

	for i := 0; i < 4; i++ {
		postJSON(t, addr, "/v/alpha/update", map[string]any{
			"kind": "insert", "type": "student",
			"path":   `//course[cno="CS650"]/takenBy`,
			"values": []string{fmt.Sprintf("SV%d", i), "Tenant"},
		}, nil)
	}

	var alpha, beta struct {
		Generation uint64 `json:"generation"`
	}
	getJSON(t, addr, "/v/alpha/stats", &alpha)
	getJSON(t, addr, "/v/beta/stats", &beta)
	if alpha.Generation != 4 || beta.Generation != 0 {
		t.Fatalf("generation isolation: alpha=%d beta=%d, want 4 and 0", alpha.Generation, beta.Generation)
	}

	// The mirror follows alpha through the registry's own /v/ prefix;
	// poll until it reports the primary's generation, then compare states.
	paths := []string{`//course[cno="CS650"]/takenBy/student`, `//student`}
	want := nodeState(t, addr, "/v/alpha", paths)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if got := nodeState(t, addr, "/v/mirror", paths); got == want {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("mirror never converged: %s, alpha %s", got, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
