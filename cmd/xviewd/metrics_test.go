package main

// End-to-end observability: run the daemon with durability on, drive a
// small workload over HTTP, scrape GET /metrics, and require the output
// to be valid Prometheus text exposition covering all four instrumented
// layers — the update pipeline, the serving engine, the compiled-path
// cache, and the WAL. The scrape is parsed with the same obs parser
// xviewctl uses, so every family the daemon emits must round-trip.

import (
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"rxview/obs"
)

func TestMetricsScrapeCoversAllLayers(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "xviewd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building xviewd: %v", err)
	}

	addr := freePort(t)
	cmd := exec.Command(bin, "-addr", addr, "-data", t.TempDir(),
		"-fsync", "off", "-slow-threshold", "1ns")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Signal(syscall.SIGTERM)
		cmd.Wait()
	}()
	waitHealthy(t, addr)

	// A workload touching every layer: writes exercise the pipeline and
	// (with -data) the WAL, queries exercise the engine and the path cache.
	postJSON(t, addr, "/update", map[string]any{
		"kind": "insert", "type": "course",
		"values": []string{"CS870", "Scrape"}, "path": ".",
	}, nil)
	for i := 0; i < 3; i++ {
		postJSON(t, addr, "/query", map[string]string{"path": `//course[cno="CS870"]`}, nil)
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type %q is not Prometheus text exposition", ct)
	}

	// ParseExposition fails on any malformed line, so a successful parse
	// vouches for every family the daemon emitted, not just the ones the
	// layer checks below name.
	fams, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("scrape does not parse: %v", err)
	}
	byName := make(map[string]obs.ParsedFamily, len(fams))
	for _, f := range fams {
		if f.Type == "" {
			t.Errorf("family %s has no TYPE line", f.Name)
		}
		if len(f.Samples) == 0 {
			t.Errorf("family %s has no samples", f.Name)
		}
		byName[f.Name] = f
	}

	layers := map[string]string{
		"pipeline": "xview_pipeline_phase_seconds",
		"engine":   "xview_engine_queries_total",
		"cache":    "xview_path_cache_hits_total",
		"wal":      "xview_wal_appends_total",
	}
	for layer, fam := range layers {
		if _, ok := byName[fam]; !ok {
			t.Errorf("layer %s: family %s missing from scrape", layer, fam)
		}
	}

	// The workload above must be visible in the counters: one applied
	// update appended to the WAL, three served queries.
	if f, ok := byName["xview_engine_queries_total"]; ok && f.Samples[0].Value < 3 {
		t.Errorf("engine_queries_total = %v, want >= 3", f.Samples[0].Value)
	}
	if f, ok := byName["xview_wal_appends_total"]; ok && f.Samples[0].Value < 1 {
		t.Errorf("wal_appends_total = %v, want >= 1", f.Samples[0].Value)
	}
}
