// xviewd is the view-serving daemon: it publishes a dataset as a recursive
// XML view and exposes it over HTTP/JSON, with snapshot-isolated reads and
// a single-writer apply loop (see the server package for the consistency
// model).
//
// Usage:
//
//	xviewd [-addr :8080] [-dataset registrar|synthetic] [-nc 1000]
//	       [-seed 42] [-force] [-timeout 10s] [-queue 256]
//	       [-shed-watermark N]
//	       [-data DIR] [-fsync always|batch|off] [-checkpoint-every 256]
//	       [-replica-of URL] [-follow-watermark N]
//	       [-views FILE]
//	       [-slow-threshold 100ms] [-debug-addr ADDR]
//	       [-chaos SPEC] [-chaos-seed N]
//
// With -data, the view is durable: committed updates are logged to DIR
// before their verdict is returned, and a restart pointing at the same DIR
// recovers every committed generation (newest checkpoint plus log replay).
// A durable primary also serves the replication endpoints (GET
// /repl/checkpoint, /repl/stream, /repl/info), so followers can attach
// without further configuration.
//
// With -replica-of URL, the process is a read-only follower of the durable
// primary at URL: it boots from the primary's newest checkpoint, applies
// the streamed change log, and serves the same read endpoints one
// write-history prefix behind. Writes answer 421 with the primary's
// address; /healthz answers 503 state "following" until the follower is
// within -follow-watermark generations of the primary. A follower is not
// durable itself (-data is rejected) — a restarted follower re-syncs from
// the primary's checkpoint.
//
// With -views FILE, the process hosts many named views (see replication.go
// for the JSON schema) behind /v/{name}/... routing — each with its own
// writer loop, optional durability directory or replica-of upstream, and a
// private metric registry, so tenants are isolated end to end.
//
// Endpoints:
//
//	POST /query   {"path": "//course"}
//	POST /update  {"kind":"insert","type":"student","values":["S1","Ann"],
//	               "path":"//course[cno=\"CS650\"]/takenBy"}
//	POST /batch   {"updates":[...]}
//	GET  /stats
//	GET  /healthz      readiness: 503 with the recovery state while boot
//	                   replay is running or a checkpoint is in flight
//	GET  /livez        liveness: 200 as soon as the process listens
//	GET  /metrics      Prometheus text exposition (all layers)
//	GET  /debug/vars   the same metrics as JSON
//	GET  /debug/slow   slow-query/slow-commit ring buffer
//
// The listener starts before the view loads: /healthz answers 503 (state
// "loading" or "recovering") until recovery finishes, so load balancers
// keep a replaying node out of rotation without killing it. After a disk
// failure /healthz answers 503 with state "degraded" — writes are refused
// while snapshot reads keep serving, and the recovery prober restores
// "ready" without a restart. Writes beyond the shed watermark answer 429
// with a Retry-After estimate instead of queuing. -debug-addr additionally
// serves net/http/pprof on a separate, normally-private address.
//
// -chaos arms the deterministic fault-injection framework (resilience
// testing only — never in production): a semicolon-separated list of fault
// points with options, e.g. "wal.fsync:after=100,count=1" or
// "wal.slow-io:latency=5ms,every=10"; see rxview.EnableChaos for the
// grammar and rxview.FaultPoints for the catalog. -chaos-seed makes
// probabilistic rules reproducible.
//
// SIGINT/SIGTERM triggers a graceful shutdown: in-flight requests drain,
// then the apply loop stops; a durable view seals a final checkpoint so the
// next boot recovers without replay.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"syscall"
	"time"

	"rxview"
	"rxview/server"
)

var (
	addr    = flag.String("addr", ":8080", "listen address")
	dataset = flag.String("dataset", "registrar", "registrar or synthetic")
	nc      = flag.Int("nc", 1000, "synthetic dataset size |C|")
	seed    = flag.Int64("seed", 42, "synthetic generator seed")
	force   = flag.Bool("force", false, "carry out updates with XML side effects (revised semantics)")
	timeout = flag.Duration("timeout", 10*time.Second, "per-request timeout (0 = none)")
	queue   = flag.Int("queue", 256, "apply-loop queue depth")
	shedAt  = flag.Int("shed-watermark", 0,
		"queue depth at which writes are shed with 429 (0 = the queue depth itself)")

	dataDir   = flag.String("data", "", "durability directory (empty = in-memory only)")
	fsync     = flag.String("fsync", "always", "log sync policy: always, batch or off")
	ckptEvery = flag.Int("checkpoint-every", 0, "commits between checkpoints (0 = default)")

	replicaOf = flag.String("replica-of", "",
		"follow the durable primary at this base URL (read-only replica mode)")
	followMark = flag.Uint64("follow-watermark", 8,
		"generations a follower may lag and still report ready")
	viewsCfg = flag.String("views", "",
		"JSON view-set file: host many named views behind /v/{name}/... (multi-tenant mode)")

	slowThresh = flag.Duration("slow-threshold", 100*time.Millisecond,
		"queries/commits slower than this land in /debug/slow (0 = disabled)")
	debugAddr = flag.String("debug-addr", "",
		"serve net/http/pprof on this extra address (empty = no pprof)")

	chaosSpec = flag.String("chaos", "",
		"arm deterministic fault injection (resilience testing only): point[:opt,...][;point...]")
	chaosSeed = flag.Int64("chaos-seed", 1, "fault-injection PRNG seed")
)

func main() {
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *debugAddr != "" {
		go serveDebug(*debugAddr)
	}

	var err error
	switch {
	case *viewsCfg != "" && *replicaOf != "":
		err = fmt.Errorf("xviewd: -views and -replica-of are mutually exclusive (a view set names its upstreams per entry)")
	case *viewsCfg != "":
		err = runViews(ctx, stop)
	case *replicaOf != "":
		err = runFollower(ctx, stop)
	default:
		err = runPrimary(ctx, stop)
	}
	if err != nil {
		log.Fatal(err)
	}
	log.Print("xviewd: shut down cleanly")
}

// runPrimary is the classic single-view mode: one view, one engine, the
// full read-write API. Durable primaries additionally serve /repl/* so
// followers can attach.
func runPrimary(ctx context.Context, stop context.CancelFunc) error {
	// Listen before loading: health probes answer immediately, with
	// readiness gated until the view (and its recovery, if durable) is up.
	gate := server.NewGate("loading")
	errc := make(chan error, 1)
	go func() { errc <- server.ServeGated(ctx, *addr, gate) }()
	log.Printf("xviewd: listening on %s (readiness gated until the view is up)", *addr)

	if *dataDir != "" {
		gate.SetState("recovering")
	}
	view, err := open()
	if err != nil {
		stop()
		<-errc
		return err
	}
	if *dataDir != "" {
		log.Printf("xviewd: durable at %s (fsync=%s), recovered generation %d",
			*dataDir, *fsync, view.Generation())
	}
	log.Printf("xviewd: %s view loaded — %s", *dataset, view.Stats())

	// Arm chaos only after boot recovery: the injected faults target the
	// serving path, not the replay of a directory that is already healthy.
	if *chaosSpec != "" {
		if err := rxview.EnableChaos(*chaosSpec, *chaosSeed); err != nil {
			stop()
			<-errc
			return fmt.Errorf("xviewd: -chaos: %w", err)
		}
		log.Printf("xviewd: CHAOS ARMED (seed %d): %s — injected faults are live, do not use in production",
			*chaosSeed, *chaosSpec)
	}

	hopts := server.HandlerOptions{
		Timeout:       *timeout,
		Checkpointing: view.Checkpointing,
	}
	if *dataDir != "" {
		src, err := view.ReplSource()
		if err != nil {
			stop()
			<-errc
			return fmt.Errorf("xviewd: replication source: %w", err)
		}
		hopts.Repl = src
		log.Printf("xviewd: replication source on /repl (durable generation %d)", src.Generation())
	}
	eng := server.New(view, engineOptions()...)
	eng.SetSlowThreshold(*slowThresh)
	gate.SetReady(eng, hopts)
	log.Print("xviewd: ready")

	if err := <-errc; err != nil {
		return err
	}
	// The engine has stopped: seal the final epoch so the next boot
	// recovers without replaying the log.
	if err := view.Close(); err != nil {
		return fmt.Errorf("xviewd: final checkpoint: %w", err)
	}
	return nil
}

// engineOptions translates the shared engine flags.
func engineOptions() []server.Option {
	opts := []server.Option{server.WithQueueDepth(*queue)}
	if *shedAt > 0 {
		opts = append(opts, server.WithShedWatermark(*shedAt))
	}
	return opts
}

// serveDebug mounts the pprof handlers on their own listener — profiling
// stays off the public API address and off unless asked for.
func serveDebug(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	log.Printf("xviewd: pprof on %s", addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Printf("xviewd: pprof server: %v", err)
	}
}

func open() (*rxview.View, error) {
	var opts []rxview.Option
	if *force {
		opts = append(opts, rxview.WithForceSideEffects())
	}
	if *dataDir != "" {
		pol, err := rxview.ParseFsyncPolicy(*fsync)
		if err != nil {
			return nil, err
		}
		opts = append(opts,
			rxview.WithDurability(*dataDir),
			rxview.WithFsync(pol),
			rxview.WithRecoveryWarn(func(msg string) { log.Printf("xviewd: %s", msg) }))
		if *ckptEvery > 0 {
			opts = append(opts, rxview.WithCheckpointEvery(*ckptEvery))
		}
	}
	atg, db, err := sources(*dataset, *nc, *seed)
	if err != nil {
		return nil, err
	}
	return rxview.Open(atg, db, opts...)
}

// sources builds the schema and base relations for a named dataset.
func sources(ds string, nc int, seed int64) (*rxview.ATG, *rxview.DB, error) {
	switch ds {
	case "", "registrar":
		return rxview.NewRegistrar()
	case "synthetic":
		syn, err := rxview.NewSynthetic(rxview.SyntheticConfig{NC: nc, Seed: seed})
		if err != nil {
			return nil, nil, err
		}
		return syn.ATG, syn.DB, nil
	default:
		return nil, nil, fmt.Errorf("unknown dataset %q", ds)
	}
}
