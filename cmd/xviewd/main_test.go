package main

// End-to-end durability: build the daemon, run it against a data directory,
// kill it with SIGKILL partway through an acknowledged workload, restart it
// on the same directory, and require every acknowledged update to be
// visible — the recovered query results must match an in-process oracle
// that applied the same updates.

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"rxview"
)

// freePort reserves an ephemeral port and releases it for the daemon.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitHealthy(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("daemon did not become healthy")
}

func postJSON(t *testing.T, addr, path string, body any, out any) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("POST %s: %s: %s", path, resp.Status, buf.String())
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

func TestKillDashNineRecoversAcknowledgedUpdates(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills the daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "xviewd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building xviewd: %v", err)
	}

	dataDir := t.TempDir()
	addr := freePort(t)
	start := func() *exec.Cmd {
		cmd := exec.Command(bin, "-addr", addr, "-data", dataDir, "-fsync", "off")
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		waitHealthy(t, addr)
		return cmd
	}

	cmd := start()
	defer cmd.Process.Kill()

	// The workload: every update below is acknowledged (the response
	// arrived) before the kill, so all of them must survive it.
	type upd struct {
		Kind   string   `json:"kind"`
		Type   string   `json:"type"`
		Values []string `json:"values,omitempty"`
		Path   string   `json:"path"`
	}
	workload := []upd{
		{Kind: "insert", Type: "course", Values: []string{"CS860", "Crash"}, Path: `.`},
		{Kind: "insert", Type: "student", Values: []string{"S91", "Gus"}, Path: `//course[cno="CS860"]/takenBy`},
		{Kind: "insert", Type: "course", Values: []string{"CS861", "Course"}, Path: `//course[cno="CS860"]/prereq`},
		{Kind: "insert", Type: "student", Values: []string{"S92", "Hal"}, Path: `//course[cno="CS861"]/takenBy`},
	}
	for _, u := range workload {
		postJSON(t, addr, "/update", u, nil)
	}

	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// The oracle: the same updates against an in-process view.
	atg, db, err := rxview.NewRegistrar()
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := rxview.Open(atg, db)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, u := range workload {
		vals := make([]rxview.Value, len(u.Values))
		for i, s := range u.Values {
			vals[i] = rxview.Str(s)
		}
		if _, err := oracle.Apply(ctx, rxview.Insert(u.Path, u.Type, vals...)); err != nil {
			t.Fatal(err)
		}
	}

	cmd2 := start()
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		cmd2.Wait()
	}()
	for _, q := range []string{`//course[cno="CS860"]//student`, `//course`, `//student`} {
		var got struct {
			Count int `json:"count"`
		}
		postJSON(t, addr, "/query", map[string]string{"path": q}, &got)
		want, err := oracle.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if got.Count != len(want) {
			t.Fatalf("query %s after kill -9: %d nodes, oracle has %d", q, got.Count, len(want))
		}
	}
}

func TestFsyncFlagRejectsUnknownPolicy(t *testing.T) {
	if _, err := rxview.ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("unknown fsync policy accepted")
	}
	for _, s := range []string{"always", "batch", "off"} {
		if _, err := rxview.ParseFsyncPolicy(s); err != nil {
			t.Fatalf("policy %q rejected: %v", s, err)
		}
	}
}
