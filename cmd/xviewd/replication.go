package main

// Follower and multi-tenant modes.
//
// -replica-of URL turns the process into a read-only follower of the
// durable primary at URL (runFollower). -views FILE hosts a set of named
// views in one process behind /v/{name}/... (runViews); the file is a JSON
// array of entries:
//
//	[
//	  {"name": "reg",  "dataset": "registrar", "data": "/var/xview/reg"},
//	  {"name": "syn",  "dataset": "synthetic", "nc": 500, "seed": 7},
//	  {"name": "mirr", "replica_of": "http://primary:8080/v/reg"}
//	]
//
// Every entry gets its own writer loop, its own optional durability
// directory or upstream, and a private metric registry: /v/{name}/metrics
// shows only that view's engine families, while the top-level /metrics
// serves the process-wide shared families.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"

	"rxview"
	"rxview/server"
)

// runFollower serves a read-only replica converging on -replica-of.
func runFollower(ctx context.Context, stop context.CancelFunc) error {
	if *dataDir != "" {
		return errors.New("xviewd: a follower is not durable itself; drop -data (it re-syncs from the primary's checkpoint on restart)")
	}
	gate := server.NewGate("loading")
	errc := make(chan error, 1)
	var fp atomic.Pointer[server.Replica]
	go func() {
		errc <- server.ServeHandler(ctx, *addr, gate, func() {
			if f := fp.Load(); f != nil {
				f.Close()
			}
		})
	}()
	log.Printf("xviewd: follower of %s listening on %s (readiness gated on catch-up)", *replicaOf, *addr)

	rep, err := openReplica(*dataset, *nc, *seed, *force)
	if err != nil {
		stop()
		<-errc
		return err
	}
	f := server.NewReplica(rep, *replicaOf,
		server.WithFollowWatermark(*followMark),
		server.WithFollowLog(log.Printf),
		server.WithEngineOptions(engineOptions()...))
	fp.Store(f)
	f.Engine().SetSlowThreshold(*slowThresh)
	gate.SetReady(f.Engine(), server.HandlerOptions{
		Timeout: *timeout,
		Follow:  f.Status,
	})
	log.Printf("xviewd: following %s (ready once lag ≤ %d)", *replicaOf, *followMark)
	err = <-errc
	f.Close() // idempotent — covers a shutdown that raced ahead of the store
	return err
}

// openReplica builds the follower's empty state over the primary's schema.
func openReplica(ds string, nc int, seed int64, force bool) (*rxview.Replica, error) {
	atg, db, err := sources(ds, nc, seed)
	if err != nil {
		return nil, err
	}
	var opts []rxview.Option
	if force {
		opts = append(opts, rxview.WithForceSideEffects())
	}
	return rxview.OpenReplica(atg, db, opts...)
}

// viewSpec is one entry of the -views file.
type viewSpec struct {
	Name            string `json:"name"`
	Dataset         string `json:"dataset"` // registrar (default) or synthetic
	NC              int    `json:"nc"`
	Seed            int64  `json:"seed"`
	Force           bool   `json:"force"`
	Data            string `json:"data"` // durability directory; also enables /repl
	Fsync           string `json:"fsync"`
	CheckpointEvery int    `json:"checkpoint_every"`
	ReplicaOf       string `json:"replica_of"` // follow this primary instead of taking writes
}

// runViews hosts every entry of the -views file behind one listener.
func runViews(ctx context.Context, stop context.CancelFunc) error {
	raw, err := os.ReadFile(*viewsCfg)
	if err != nil {
		return fmt.Errorf("xviewd: -views: %w", err)
	}
	var specs []viewSpec
	if err := json.Unmarshal(raw, &specs); err != nil {
		return fmt.Errorf("xviewd: -views %s: %w", *viewsCfg, err)
	}
	if len(specs) == 0 {
		return fmt.Errorf("xviewd: -views %s: no views defined", *viewsCfg)
	}

	// Mount every gate up front so /views lists the whole set — entries
	// still booting report their loading state — then serve, then bring the
	// views up one by one.
	reg := server.NewRegistry()
	gates := make(map[string]*server.Gate, len(specs))
	for _, spec := range specs {
		g := server.NewGate("loading")
		if err := reg.Add(spec.Name, g); err != nil {
			return fmt.Errorf("xviewd: -views: %w", err)
		}
		gates[spec.Name] = g
	}

	// Shutdown tears tenants down in reverse boot order; the mutex orders
	// late boot appends against a shutdown racing in on ctx cancel.
	var (
		closeMu sync.Mutex
		closers []func() error
	)
	addCloser := func(fn func() error) {
		closeMu.Lock()
		closers = append(closers, fn)
		closeMu.Unlock()
	}
	shutdown := func() {
		closeMu.Lock()
		defer closeMu.Unlock()
		for i := len(closers) - 1; i >= 0; i-- {
			if err := closers[i](); err != nil {
				log.Printf("xviewd: shutdown: %v", err)
			}
		}
		closers = nil
	}

	errc := make(chan error, 1)
	go func() { errc <- server.ServeHandler(ctx, *addr, reg, shutdown) }()
	log.Printf("xviewd: hosting %d views on %s", len(specs), *addr)

	for _, spec := range specs {
		if err := bootSpec(spec, gates[spec.Name], addCloser); err != nil {
			stop()
			<-errc
			return fmt.Errorf("xviewd: view %q: %w", spec.Name, err)
		}
	}
	log.Print("xviewd: all views ready")
	return <-errc
}

// bootSpec opens one tenant — primary or follower — and opens its gate.
func bootSpec(spec viewSpec, gate *server.Gate, addCloser func(func() error)) error {
	hopts := server.HandlerOptions{
		Timeout:            *timeout,
		PrivateMetricsOnly: true, // tenant isolation: /v/{name}/metrics shows only this view
	}

	if spec.ReplicaOf != "" {
		if spec.Data != "" {
			return errors.New("a follower entry cannot also set data")
		}
		rep, err := openReplica(spec.Dataset, spec.NC, spec.Seed, spec.Force)
		if err != nil {
			return err
		}
		f := server.NewReplica(rep, spec.ReplicaOf,
			server.WithFollowWatermark(*followMark),
			server.WithFollowLog(log.Printf),
			server.WithEngineOptions(engineOptions()...))
		f.Engine().SetSlowThreshold(*slowThresh)
		addCloser(func() error { f.Close(); return nil })
		hopts.Follow = f.Status
		gate.SetReady(f.Engine(), hopts)
		log.Printf("xviewd: view %q following %s", spec.Name, spec.ReplicaOf)
		return nil
	}

	var opts []rxview.Option
	if spec.Force {
		opts = append(opts, rxview.WithForceSideEffects())
	}
	if spec.Data != "" {
		pol, err := rxview.ParseFsyncPolicy(cmpOr(spec.Fsync, "always"))
		if err != nil {
			return err
		}
		opts = append(opts,
			rxview.WithDurability(spec.Data),
			rxview.WithFsync(pol),
			rxview.WithRecoveryWarn(func(msg string) { log.Printf("xviewd: view %q: %s", spec.Name, msg) }))
		if spec.CheckpointEvery > 0 {
			opts = append(opts, rxview.WithCheckpointEvery(spec.CheckpointEvery))
		}
		gate.SetState("recovering")
	}
	atg, db, err := sources(spec.Dataset, spec.NC, spec.Seed)
	if err != nil {
		return err
	}
	view, err := rxview.Open(atg, db, opts...)
	if err != nil {
		return err
	}
	if spec.Data != "" {
		src, err := view.ReplSource()
		if err != nil {
			view.Close()
			return err
		}
		hopts.Repl = src
		hopts.Checkpointing = view.Checkpointing
	}
	eng := server.New(view, engineOptions()...)
	eng.SetSlowThreshold(*slowThresh)
	addCloser(func() error {
		eng.Close()
		return view.Close() // seal the final checkpoint per tenant
	})
	gate.SetReady(eng, hopts)
	log.Printf("xviewd: view %q ready at generation %d", spec.Name, view.Generation())
	return nil
}

// cmpOr returns a if non-empty, else b.
func cmpOr(a, b string) string {
	if a != "" {
		return a
	}
	return b
}
