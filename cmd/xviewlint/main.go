// Command xviewlint runs the repository's analyzer suite (see
// internal/lint): the mechanical form of the COW-epoch, single-writer,
// error-contract, context-flow, API-boundary and telemetry-hot-path
// conventions.
//
// Two modes, selected automatically:
//
//	xviewlint ./...                   # direct: load packages, analyze, report
//	go vet -vettool=$(which xviewlint) ./...   # vettool: unitchecker protocol
//
// Direct mode loads packages with `go list -export`, so it works offline
// and analyzes test files too. Exit status is 1 if any finding is
// reported, 0 otherwise. Findings are suppressed line by line with
//
//	//lint:ignore xviewlint/<analyzer> <justification>
//
// where the justification is mandatory (see README, "Static analysis").
package main

import (
	"fmt"
	"os"
	"strings"

	"rxview/internal/lint"
	"rxview/internal/lint/driver"
	"rxview/internal/lint/loader"
	"rxview/internal/lint/unitchecker"
)

func main() {
	args := os.Args[1:]
	// The go command probes -V=full and -flags first, then hands over a
	// single unit.cfg; anything else is a direct invocation.
	for _, a := range args {
		if strings.HasPrefix(a, "-V") || a == "-flags" || a == "--flags" ||
			strings.HasSuffix(a, ".cfg") {
			unitchecker.Main("xviewlint", lint.All(), args)
			return
		}
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load(dir, patterns)
	if err != nil {
		fatal(err)
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "xviewlint: %s: type error: %v\n", p.ImportPath, terr)
		}
	}
	findings, err := driver.Run(pkgs, lint.All())
	if err != nil {
		fatal(err)
	}
	for _, f := range findings {
		fmt.Printf("%s: %s: %s\n", f.Pos, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xviewlint:", err)
	os.Exit(2)
}
