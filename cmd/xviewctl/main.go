// xviewctl is an interactive shell over a published XML view: run XPath
// queries and XML updates (translated to relational updates per the paper)
// against the registrar example or a synthetic dataset.
//
// Usage:
//
//	xviewctl [-dataset registrar|synthetic] [-nc 1000] [-force]
//
// Commands (one per line on stdin):
//
//	query <xpath>                  evaluate and list r[[p]]
//	insert <type>(f=v, ...) into <xpath>
//	delete <xpath>
//	xml                            print the (unfolded) view
//	stats                          view + auxiliary structure statistics
//	check                          verify ΔX(T) = σ(ΔR(I)) and index health
//	tables                         row counts of the base relations
//	help | quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"rxview/internal/core"
	"rxview/internal/workload"
)

var (
	dataset = flag.String("dataset", "registrar", "registrar or synthetic")
	nc      = flag.Int("nc", 1000, "synthetic dataset size |C|")
	seed    = flag.Int64("seed", 42, "synthetic generator seed")
	force   = flag.Bool("force", false, "carry out updates with XML side effects (revised semantics)")
)

func main() {
	flag.Parse()
	sys, err := open()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rxview: %s view loaded — %s\n", *dataset, sys.Stats())
	fmt.Println(`type "help" for commands`)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			break
		}
		if err := dispatch(sys, line); err != nil {
			fmt.Println("error:", err)
		}
	}
}

func open() (*core.System, error) {
	opts := core.Options{ForceSideEffects: *force}
	switch *dataset {
	case "registrar":
		reg, err := workload.NewRegistrar()
		if err != nil {
			return nil, err
		}
		return core.Open(reg.ATG, reg.DB, opts)
	case "synthetic":
		syn, err := workload.NewSynthetic(workload.SyntheticConfig{NC: *nc, Seed: *seed})
		if err != nil {
			return nil, err
		}
		return core.Open(syn.ATG, syn.DB, opts)
	default:
		return nil, fmt.Errorf("unknown dataset %q", *dataset)
	}
}

func dispatch(sys *core.System, line string) error {
	switch {
	case line == "help":
		fmt.Println(`  query <xpath>
  insert <type>(field=value, ...) into <xpath>
  delete <xpath>
  xml | stats | check | tables | quit`)
		return nil
	case line == "xml":
		xml, err := sys.XML(200000)
		if err != nil {
			return err
		}
		fmt.Print(xml)
		return nil
	case line == "stats":
		fmt.Println(" ", sys.Stats())
		return nil
	case line == "check":
		if err := sys.CheckConsistency(); err != nil {
			return err
		}
		fmt.Println("  consistent: view equals a fresh publication; L and M verified")
		return nil
	case line == "tables":
		for _, name := range sys.DB.Schema.TableNames() {
			fmt.Printf("  %-12s %d rows\n", name, sys.DB.Rel(name).Len())
		}
		return nil
	case strings.HasPrefix(line, "query "):
		ids, err := sys.Query(strings.TrimSpace(strings.TrimPrefix(line, "query")))
		if err != nil {
			return err
		}
		fmt.Printf("  %d node(s)\n", len(ids))
		for i, id := range ids {
			if i == 20 {
				fmt.Printf("  ... and %d more\n", len(ids)-20)
				break
			}
			fmt.Printf("  %s%s\n", sys.DAG.Type(id), sys.DAG.Attr(id))
		}
		return nil
	case strings.HasPrefix(line, "insert ") || strings.HasPrefix(line, "delete "):
		rep, err := sys.Execute(line)
		if err != nil {
			return err
		}
		if !rep.Applied {
			fmt.Println("  no-op (nothing matched or edge already present)")
			return nil
		}
		fmt.Printf("  applied: |r[[p]]|=%d |Ep|=%d ΔV+%d/-%d gc=%d side-effects=%v\n",
			rep.RP, rep.EP, rep.DVInserts, rep.DVDeletes, rep.Removed, rep.SideEffects)
		for _, m := range rep.DR {
			fmt.Println("  ΔR:", m)
		}
		fmt.Printf("  timings: eval=%v translate=%v apply=%v maintain=%v\n",
			rep.Timings.Eval, rep.Timings.Translate, rep.Timings.Apply, rep.Timings.Maintain)
		return nil
	default:
		return fmt.Errorf("unknown command %q (try help)", line)
	}
}
