// xviewctl is an interactive shell over a published XML view: run XPath
// queries and XML updates (translated to relational updates per the paper)
// against the registrar example or a synthetic dataset.
//
// Usage:
//
//	xviewctl [-dataset registrar|synthetic] [-nc 1000] [-force] [-e "<cmd>"]
//	         [-serve <addr>]
//
// With -serve the view is exposed over HTTP instead of the REPL: xviewctl
// starts the xviewd daemon's handler in-process, so both front ends share
// one dispatch path (the server package's Engine + NewHandler).
//
// Commands (one per line on stdin, or semicolon-separated via -e):
//
//	query <xpath>                  evaluate and list r[[p]]
//	insert <type>(f=v, ...) into <xpath>
//	delete <xpath>
//	begin                          open an atomic transaction; insert/delete
//	                               now stage speculatively (query reads the
//	                               staged state)
//	stage <insert|delete stmt>     explicit staging form of the above
//	commit | rollback              finish the transaction (all-or-nothing)
//	tx                             staged-transaction status
//	xml                            print the (unfolded) view
//	stats                          view + auxiliary structure statistics
//	check                          verify ΔX(T) = σ(ΔR(I)) and index health
//	tables                         row counts of the base relations
//	wal inspect <dir>              list a durability directory: checkpoints,
//	                               log segments, per-record sizes (offline,
//	                               read-only)
//	checkpoint <dir>               describe the newest readable checkpoint —
//	                               the sealed epoch a recovery would boot from
//	metrics <addr>                 scrape a running daemon's /metrics and
//	                               summarize every family (counters, gauges,
//	                               histogram p50/p95/p99)
//	slow <addr>                    dump a running daemon's slow-query/commit
//	                               ring buffer (/debug/slow)
//	health <addr>                  probe a running daemon's /healthz and
//	                               render its serving state; as a one-shot
//	                               command the exit code scripts cleanly:
//	                               0 ready, 2 starting/checkpointing,
//	                               3 degraded (read-only), 1 errors
//	repl status <addr>             probe a node's /repl/info: primaries
//	                               report the durable watermark and oldest
//	                               streamable generation, followers their
//	                               lag; one-shot exit codes: 0 caught up or
//	                               primary, 3 lagging beyond the follow
//	                               watermark, 1 errors
//	help | quit
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rxview"
	"rxview/server"
)

var (
	dataset = flag.String("dataset", "registrar", "registrar or synthetic")
	nc      = flag.Int("nc", 1000, "synthetic dataset size |C|")
	seed    = flag.Int64("seed", 42, "synthetic generator seed")
	force   = flag.Bool("force", false, "carry out updates with XML side effects (revised semantics)")
	exec    = flag.String("e", "", "one-shot mode: execute the given command(s) (semicolon-separated) and exit")
	serve   = flag.String("serve", "", "serve the view over HTTP on this address (xviewd's handler in-process) instead of the REPL")
)

func main() {
	flag.Parse()
	view, err := open()
	if err != nil {
		log.Fatal(err)
	}

	if *serve != "" {
		log.Printf("xviewctl: %s view loaded — %s", *dataset, view.Stats())
		eng := server.New(view)
		log.Printf("xviewctl: serving on %s", *serve)
		ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		defer stop()
		if err := server.ListenAndServe(ctx, *serve, eng, server.HandlerOptions{Timeout: 10 * time.Second}); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *exec != "" {
		if err := runOneShot(view, os.Stdout, *exec); err != nil {
			fatal(err)
		}
		return
	}

	// Positional arguments are a single one-shot command, so subcommand
	// invocations (`xviewctl metrics :8080`, `xviewctl wal inspect dir`)
	// work without -e instead of being silently ignored.
	if flag.NArg() > 0 {
		if err := runOneShot(view, os.Stdout, strings.Join(flag.Args(), " ")); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("rxview: %s view loaded — %s\n", *dataset, view.Stats())
	fmt.Println(`type "help" for commands`)
	if err := runREPL(view, os.Stdin, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// fatal exits with a command's scripting exit code when it carries one
// (health reports 2/3 for not-ready/degraded), the generic failure 1
// otherwise.
func fatal(err error) {
	var xe *exitCodeError
	if errors.As(err, &xe) {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(xe.code)
	}
	log.Fatal(err)
}

// session is one REPL/one-shot conversation: the view plus the transaction
// currently being staged, if any.
type session struct {
	view *rxview.View
	tx   *rxview.Tx
}

// finish abandons an open transaction at end of input, restoring the
// pre-Begin state — an unfinished group must not half-exist.
func (s *session) finish(out io.Writer) {
	if s.tx == nil {
		return
	}
	_ = s.tx.Rollback()
	s.tx = nil
	fmt.Fprintln(out, "  open transaction rolled back (no commit before end of input)")
}

// runOneShot executes the -e argument: semicolon-separated commands, stopping
// at the first failure. An uncommitted transaction is rolled back at the end.
func runOneShot(view *rxview.View, out io.Writer, cmds string) error {
	s := &session{view: view}
	defer s.finish(out)
	for _, cmd := range splitCommands(cmds) {
		if err := s.dispatch(out, cmd); err != nil {
			return fmt.Errorf("%s: %w", cmd, err)
		}
	}
	return nil
}

// runREPL reads commands line by line until EOF or quit. Command failures
// are reported to out and the loop continues; a reader (scanner) failure
// ends the loop and is returned. An uncommitted transaction is rolled back
// on exit.
func runREPL(view *rxview.View, in io.Reader, out io.Writer) error {
	s := &session{view: view}
	defer s.finish(out)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Fprint(out, prompt(s))
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			break
		}
		if err := s.dispatch(out, line); err != nil {
			fmt.Fprintln(out, "error:", err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("reading input: %w", err)
	}
	return nil
}

// prompt reminds the user when commands stage into an open transaction.
func prompt(s *session) string {
	if s.tx != nil {
		return "tx> "
	}
	return "> "
}

// splitCommands splits a -e argument on semicolons, except inside quoted
// strings — the XPath grammar accepts both '...' and "..." literals, and
// update statements take arbitrary quoted values.
func splitCommands(s string) []string {
	var out []string
	var quote rune // the open quote character, or 0
	start := 0
	flush := func(end int) {
		if cmd := strings.TrimSpace(s[start:end]); cmd != "" {
			out = append(out, cmd)
		}
	}
	for i, r := range s {
		switch {
		case quote != 0:
			if r == quote {
				quote = 0
			}
		case r == '"' || r == '\'':
			quote = r
		case r == ';':
			flush(i)
			start = i + 1
		}
	}
	flush(len(s))
	return out
}

func open() (*rxview.View, error) {
	var opts []rxview.Option
	if *force {
		opts = append(opts, rxview.WithForceSideEffects())
	}
	switch *dataset {
	case "registrar":
		atg, db, err := rxview.NewRegistrar()
		if err != nil {
			return nil, err
		}
		return rxview.Open(atg, db, opts...)
	case "synthetic":
		syn, err := rxview.NewSynthetic(rxview.SyntheticConfig{NC: *nc, Seed: *seed})
		if err != nil {
			return nil, err
		}
		return rxview.Open(syn.ATG, syn.DB, opts...)
	default:
		return nil, fmt.Errorf("unknown dataset %q", *dataset)
	}
}

func (s *session) dispatch(out io.Writer, line string) error {
	ctx := context.Background()
	view := s.view
	switch {
	case line == "help":
		fmt.Fprintln(out, `  query <xpath>
  insert <type>(field=value, ...) into <xpath>
  delete <xpath>
  begin | stage <stmt> | commit | rollback | tx
  xml | stats | check | tables | quit
  wal inspect <dir> | checkpoint <dir>
  metrics <addr> | slow <addr> | health <addr>
  repl status <addr>`)
		return nil
	case line == "begin":
		if s.tx != nil {
			return fmt.Errorf("a transaction is already open (%d staged); commit or rollback first", len(s.tx.Reports()))
		}
		tx, err := view.Begin(ctx)
		if err != nil {
			return err
		}
		s.tx = tx
		fmt.Fprintln(out, "  transaction open: insert/delete now stage speculatively; query reads staged state")
		return nil
	case line == "commit":
		if s.tx == nil {
			return fmt.Errorf("no open transaction (begin first)")
		}
		tx := s.tx
		s.tx = nil
		if err := tx.Commit(ctx); err != nil {
			// Only a group rejection (the Validate error) guarantees the
			// clean unwind; any other commit error speaks for itself — an
			// unwind failure explicitly means state was NOT restored.
			if verr := tx.Validate(); verr != nil && err == verr {
				fmt.Fprintln(out, "  rejected: all staged updates rolled back")
			}
			return err
		}
		fmt.Fprintf(out, "  committed: %d update(s) applied atomically, generation now %d\n",
			tx.Applied(), view.Generation())
		return nil
	case line == "rollback":
		if s.tx == nil {
			return fmt.Errorf("no open transaction (begin first)")
		}
		tx := s.tx
		s.tx = nil
		if err := tx.Rollback(); err != nil {
			return err
		}
		fmt.Fprintln(out, "  rolled back: view, database, L and M restored to pre-begin state")
		return nil
	case line == "tx":
		if s.tx == nil {
			fmt.Fprintln(out, "  no open transaction")
			return nil
		}
		reps := s.tx.Reports()
		fmt.Fprintf(out, "  open transaction: %d staged, %d applied\n", len(reps), s.tx.Applied())
		for _, rep := range reps {
			state := "no-op"
			if rep.Applied {
				state = "staged"
			}
			fmt.Fprintf(out, "    [%s] %s\n", state, rep.Op)
		}
		if err := s.tx.Validate(); err != nil {
			fmt.Fprintln(out, "  DOOMED (commit will roll back):", err)
		}
		return nil
	case line == "xml":
		xml, err := view.XML(200000)
		if err != nil {
			return err
		}
		fmt.Fprint(out, xml)
		return nil
	case line == "stats":
		fmt.Fprintln(out, " ", view.Stats())
		return nil
	case line == "check":
		if s.tx != nil {
			return fmt.Errorf("check is unavailable inside a transaction (M maintenance is deferred until commit)")
		}
		if err := view.CheckConsistency(); err != nil {
			return err
		}
		fmt.Fprintln(out, "  consistent: view equals a fresh publication; L and M verified")
		return nil
	case line == "tables":
		for _, t := range view.DB().Tables() {
			fmt.Fprintf(out, "  %-12s %d rows\n", t.Name, t.Rows)
		}
		return nil
	case strings.HasPrefix(line, "wal inspect "):
		return walInspect(out, strings.TrimSpace(strings.TrimPrefix(line, "wal inspect")))
	case strings.HasPrefix(line, "checkpoint "):
		return checkpointDescribe(out, strings.TrimSpace(strings.TrimPrefix(line, "checkpoint")))
	case strings.HasPrefix(line, "metrics "):
		return metricsScrape(out, strings.TrimSpace(strings.TrimPrefix(line, "metrics")))
	case strings.HasPrefix(line, "slow "):
		return slowDump(out, strings.TrimSpace(strings.TrimPrefix(line, "slow")))
	case strings.HasPrefix(line, "health "):
		return healthCheck(out, strings.TrimSpace(strings.TrimPrefix(line, "health")))
	case strings.HasPrefix(line, "repl "):
		return replCommand(out, strings.TrimSpace(strings.TrimPrefix(line, "repl")))
	case strings.HasPrefix(line, "query "):
		nodes, err := view.Query(ctx, strings.TrimSpace(strings.TrimPrefix(line, "query")))
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  %d node(s)\n", len(nodes))
		for i, n := range nodes {
			if i == 20 {
				fmt.Fprintf(out, "  ... and %d more\n", len(nodes)-20)
				break
			}
			fmt.Fprintf(out, "  %s%s\n", n.Type, n.Attr)
		}
		return nil
	case strings.HasPrefix(line, "stage "):
		if s.tx == nil {
			return fmt.Errorf("no open transaction (begin first)")
		}
		return s.execute(ctx, out, strings.TrimSpace(strings.TrimPrefix(line, "stage")))
	case strings.HasPrefix(line, "insert ") || strings.HasPrefix(line, "delete "):
		return s.execute(ctx, out, line)
	default:
		return fmt.Errorf("unknown command %q (try help)", line)
	}
}

// walInspect lists a durability directory: every checkpoint with its
// validity, every log segment with per-record generation and size. It is
// read-only and safe against the live directory of a running process.
func walInspect(out io.Writer, dir string) error {
	if dir == "" {
		return fmt.Errorf("usage: wal inspect <dir>")
	}
	info, err := rxview.InspectWAL(dir)
	if err != nil {
		return err
	}
	if len(info.Checkpoints) == 0 && len(info.Segments) == 0 {
		fmt.Fprintln(out, "  empty durability directory")
		return nil
	}
	for _, c := range info.Checkpoints {
		status := "ok"
		if c.Err != "" {
			status = c.Err
		}
		fmt.Fprintf(out, "  checkpoint gen=%d %s (%d bytes state) [%s]\n",
			c.Gen, c.Path, c.Bytes, status)
	}
	for _, s := range info.Segments {
		var ops, muts, bytes int
		for _, r := range s.Records {
			ops += r.DeltaOps
			muts += r.Mutations
			bytes += r.Bytes
		}
		fmt.Fprintf(out, "  segment start=%d %s: %d record(s), ΔV ops=%d ΔR=%d (%d bytes)\n",
			s.Start, s.Path, len(s.Records), ops, muts, bytes)
		for _, r := range s.Records {
			fmt.Fprintf(out, "    gen=%d ΔV=%d ΔR=%d %d bytes\n", r.Gen, r.DeltaOps, r.Mutations, r.Bytes)
		}
		if s.Note != "" {
			fmt.Fprintf(out, "    note: %s\n", s.Note)
		}
	}
	return nil
}

// checkpointDescribe decodes the newest readable checkpoint in a durability
// directory — the sealed epoch a recovery would boot from.
func checkpointDescribe(out io.Writer, dir string) error {
	if dir == "" {
		return fmt.Errorf("usage: checkpoint <dir>")
	}
	det, err := rxview.InspectCheckpoint(dir)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  checkpoint %s\n", det.Path)
	fmt.Fprintf(out, "  sealed at generation %d (%d bytes state)\n", det.Gen, det.StateBytes)
	fmt.Fprintf(out, "  DAG: %d live node(s) of %d, %d edge(s); |L|=%d\n",
		det.LiveNodes, det.Nodes, det.Edges, det.OrderLen)
	for _, t := range det.Tables {
		fmt.Fprintf(out, "  %-12s %d rows\n", t.Name, t.Rows)
	}
	return nil
}

// execute runs one update statement — directly against the view, or staged
// into the open transaction.
func (s *session) execute(ctx context.Context, out io.Writer, stmt string) error {
	var rep *rxview.Report
	var err error
	verb := "applied"
	if s.tx != nil {
		rep, err = s.tx.Execute(ctx, stmt)
		verb = "staged"
	} else {
		rep, err = s.view.Execute(ctx, stmt)
	}
	if err != nil {
		return err
	}
	if !rep.Applied {
		fmt.Fprintln(out, "  no-op (nothing matched or edge already present)")
		return nil
	}
	fmt.Fprintf(out, "  %s: |r[[p]]|=%d |Ep|=%d ΔV+%d/-%d gc=%d side-effects=%v\n",
		verb, rep.Targets, rep.Edges, rep.DVInserts, rep.DVDeletes, rep.Removed, rep.SideEffects)
	for _, m := range rep.Changes {
		fmt.Fprintln(out, "  ΔR:", m)
	}
	fmt.Fprintf(out, "  timings: eval=%v translate=%v apply=%v maintain=%v\n",
		rep.Timings.Eval, rep.Timings.Translate, rep.Timings.Apply, rep.Timings.Maintain)
	return nil
}
