package main

// Remote introspection: scrape a running daemon's telemetry endpoints and
// render them for a terminal. Both commands are read-only HTTP GETs against
// the same surface Prometheus and curl use — xviewctl adds no privileged
// channel.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"time"

	"rxview/obs"
)

// baseURL normalizes an address argument: "localhost:8080", ":8080" and
// "http://host:8080" are all accepted.
func baseURL(addr string) string {
	if strings.HasPrefix(addr, "http://") || strings.HasPrefix(addr, "https://") {
		return strings.TrimRight(addr, "/")
	}
	if strings.HasPrefix(addr, ":") {
		addr = "localhost" + addr
	}
	return "http://" + addr
}

func fetch(addr, path string) (io.ReadCloser, error) {
	cl := &http.Client{Timeout: 10 * time.Second}
	resp, err := cl.Get(baseURL(addr) + path)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		return nil, fmt.Errorf("GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	return resp.Body, nil
}

// metricsScrape fetches /metrics and summarizes each family: plain value
// for counters and gauges, count/sum plus interpolated p50/p95/p99 for
// histograms.
func metricsScrape(out io.Writer, addr string) error {
	if addr == "" {
		return fmt.Errorf("usage: metrics <addr>")
	}
	body, err := fetch(addr, "/metrics")
	if err != nil {
		return err
	}
	defer body.Close()
	fams, err := obs.ParseExposition(body)
	if err != nil {
		return fmt.Errorf("parsing exposition: %w", err)
	}
	for _, f := range fams {
		switch f.Type {
		case "histogram":
			printHistFamily(out, f)
		default:
			for _, s := range f.Samples {
				fmt.Fprintf(out, "  %-44s %s\n", s.Name+labelSuffix(s.Labels, ""), fmtValue(s.Value))
			}
		}
	}
	return nil
}

// scrapedHist is one histogram series reassembled from its cumulative
// _bucket/_sum/_count exposition lines.
type scrapedHist struct {
	bounds []float64
	cum    []float64
	count  float64
	sum    float64
}

// printHistFamily regroups a histogram family's _bucket/_sum/_count series
// by label set and prints one summary line per series.
func printHistFamily(out io.Writer, f obs.ParsedFamily) {
	series := map[string]*scrapedHist{}
	var order []string
	get := func(labels map[string]string) *scrapedHist {
		key := labelSuffix(labels, "le")
		h, ok := series[key]
		if !ok {
			h = &scrapedHist{}
			series[key] = h
			order = append(order, key)
		}
		return h
	}
	for _, s := range f.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			h := get(s.Labels)
			le := s.Labels["le"]
			if le == "+Inf" {
				continue // the +Inf bucket equals _count
			}
			var bound float64
			fmt.Sscanf(le, "%g", &bound)
			h.bounds = append(h.bounds, bound)
			h.cum = append(h.cum, s.Value)
		case strings.HasSuffix(s.Name, "_sum"):
			get(s.Labels).sum = s.Value
		case strings.HasSuffix(s.Name, "_count"):
			get(s.Labels).count = s.Value
		}
	}
	for _, key := range order {
		h := series[key]
		fmt.Fprintf(out, "  %-44s count=%s sum=%s p50=%s p95=%s p99=%s\n",
			f.Name+key, fmtValue(h.count), fmtValue(h.sum),
			fmtValue(quantile(h, 0.50)), fmtValue(quantile(h, 0.95)), fmtValue(quantile(h, 0.99)))
	}
}

// quantile interpolates within the first cumulative bucket reaching rank
// q·count — the same estimate obs histograms report locally.
func quantile(h *scrapedHist, q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := q * h.count
	var prevCum, prevBound float64
	for i, c := range h.cum {
		if c >= rank {
			if c == prevCum {
				return h.bounds[i]
			}
			return prevBound + (h.bounds[i]-prevBound)*(rank-prevCum)/(c-prevCum)
		}
		prevCum, prevBound = c, h.bounds[i]
	}
	if n := len(h.bounds); n > 0 {
		return h.bounds[n-1] // rank lies in +Inf: clamp to the last bound
	}
	return 0
}

// labelSuffix renders a label set as {k="v",...}, skipping one key (the
// histogram's le); empty sets render as nothing.
func labelSuffix(labels map[string]string, skip string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != skip {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return ""
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, labels[k])
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func fmtValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.6g", v)
}

// slowEntryJSON mirrors the wire shape of /debug/slow entries.
type slowEntryJSON struct {
	At       time.Time `json:"at"`
	Kind     string    `json:"kind"`
	Detail   string    `json:"detail"`
	Duration int64     `json:"duration_ns"`
	Gen      uint64    `json:"gen"`
}

type slowJSON struct {
	ThresholdNS int64           `json:"threshold_ns"`
	Dropped     uint64          `json:"dropped"`
	Entries     []slowEntryJSON `json:"entries"`
}

// slowDump fetches /debug/slow and prints the ring buffer, newest first.
func slowDump(out io.Writer, addr string) error {
	if addr == "" {
		return fmt.Errorf("usage: slow <addr>")
	}
	body, err := fetch(addr, "/debug/slow")
	if err != nil {
		return err
	}
	defer body.Close()
	var in slowJSON
	if err := json.NewDecoder(body).Decode(&in); err != nil {
		return fmt.Errorf("decoding /debug/slow: %w", err)
	}
	if in.ThresholdNS <= 0 {
		fmt.Fprintln(out, "  slow log disabled (start xviewd with -slow-threshold)")
		return nil
	}
	fmt.Fprintf(out, "  threshold %v, %d dropped, %d entr%s\n",
		time.Duration(in.ThresholdNS), in.Dropped, len(in.Entries), plural(len(in.Entries), "y", "ies"))
	for _, e := range in.Entries {
		fmt.Fprintf(out, "  %s %-7s gen=%-6d %-10v %s\n",
			e.At.Format(time.RFC3339), e.Kind, e.Gen, time.Duration(e.Duration), e.Detail)
	}
	return nil
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
