package main

// Remote introspection: scrape a running daemon's telemetry endpoints and
// render them for a terminal. Both commands are read-only HTTP GETs against
// the same surface Prometheus and curl use — xviewctl adds no privileged
// channel.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"rxview/obs"
)

// baseURL normalizes an address argument: "localhost:8080", ":8080" and
// "http://host:8080" are all accepted.
func baseURL(addr string) string {
	if strings.HasPrefix(addr, "http://") || strings.HasPrefix(addr, "https://") {
		return strings.TrimRight(addr, "/")
	}
	if strings.HasPrefix(addr, ":") {
		addr = "localhost" + addr
	}
	return "http://" + addr
}

// fetch GETs a daemon endpoint, retrying overload and not-ready responses
// (429, 503) a few times with jittered exponential backoff. A Retry-After
// header, when the daemon sends one, overrides the backoff — the server
// knows its queue better than the client does.
func fetch(addr, path string) (io.ReadCloser, error) {
	cl := &http.Client{Timeout: 10 * time.Second}
	backoff := 100 * time.Millisecond
	for attempt := 0; ; attempt++ {
		resp, err := cl.Get(baseURL(addr) + path)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusOK {
			return resp.Body, nil
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		retryable := resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable
		if !retryable || attempt >= 3 {
			return nil, fmt.Errorf("GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
		}
		d := backoff
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
				d = time.Duration(secs) * time.Second
			}
		}
		time.Sleep(d/2 + time.Duration(rand.Int63n(int64(d)/2+1)))
		backoff *= 2
	}
}

// exitCodeError carries a scripting exit code through the one-shot command
// path: main exits with code instead of the generic failure 1.
type exitCodeError struct {
	code int
	msg  string
}

func (e *exitCodeError) Error() string { return e.msg }

// healthCheck fetches /healthz and renders the node's serving state with
// scripting-friendly exit codes: 0 ready, 2 starting or stalled (loading,
// recovering, checkpointing), 3 degraded (read-only after a disk failure),
// 1 transport or usage errors. Unlike the other scrapes it never retries —
// a health probe reports the state it found, it does not wait one out.
func healthCheck(out io.Writer, addr string) error {
	if addr == "" {
		return fmt.Errorf("usage: health <addr>")
	}
	cl := &http.Client{Timeout: 10 * time.Second}
	resp, err := cl.Get(baseURL(addr) + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var in struct {
		OK         bool   `json:"ok"`
		State      string `json:"state"`
		Generation uint64 `json:"generation"`
		QueueDepth int64  `json:"queue_depth"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&in); err != nil {
		return fmt.Errorf("decoding /healthz: %w", err)
	}
	fmt.Fprintf(out, "  state=%s generation=%d queue_depth=%d (HTTP %d)\n",
		in.State, in.Generation, in.QueueDepth, resp.StatusCode)
	switch {
	case in.OK:
		return nil
	case in.State == "degraded":
		fmt.Fprintln(out, "  writes are refused while degraded; snapshot reads keep serving,"+
			" and the recovery prober restores read-write automatically")
		return &exitCodeError{code: 3, msg: "node is degraded (read-only)"}
	default:
		return &exitCodeError{code: 2, msg: "node is not ready: " + in.State}
	}
}

// metricsScrape fetches /metrics and summarizes each family: plain value
// for counters and gauges, count/sum plus interpolated p50/p95/p99 for
// histograms.
func metricsScrape(out io.Writer, addr string) error {
	if addr == "" {
		return fmt.Errorf("usage: metrics <addr>")
	}
	body, err := fetch(addr, "/metrics")
	if err != nil {
		return err
	}
	defer body.Close()
	fams, err := obs.ParseExposition(body)
	if err != nil {
		return fmt.Errorf("parsing exposition: %w", err)
	}
	for _, f := range fams {
		switch f.Type {
		case "histogram":
			printHistFamily(out, f)
		default:
			for _, s := range f.Samples {
				fmt.Fprintf(out, "  %-44s %s\n", s.Name+labelSuffix(s.Labels, ""), fmtValue(s.Value))
			}
		}
	}
	return nil
}

// scrapedHist is one histogram series reassembled from its cumulative
// _bucket/_sum/_count exposition lines.
type scrapedHist struct {
	bounds []float64
	cum    []float64
	count  float64
	sum    float64
}

// printHistFamily regroups a histogram family's _bucket/_sum/_count series
// by label set and prints one summary line per series.
func printHistFamily(out io.Writer, f obs.ParsedFamily) {
	series := map[string]*scrapedHist{}
	var order []string
	get := func(labels map[string]string) *scrapedHist {
		key := labelSuffix(labels, "le")
		h, ok := series[key]
		if !ok {
			h = &scrapedHist{}
			series[key] = h
			order = append(order, key)
		}
		return h
	}
	for _, s := range f.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			h := get(s.Labels)
			le := s.Labels["le"]
			if le == "+Inf" {
				continue // the +Inf bucket equals _count
			}
			var bound float64
			fmt.Sscanf(le, "%g", &bound)
			h.bounds = append(h.bounds, bound)
			h.cum = append(h.cum, s.Value)
		case strings.HasSuffix(s.Name, "_sum"):
			get(s.Labels).sum = s.Value
		case strings.HasSuffix(s.Name, "_count"):
			get(s.Labels).count = s.Value
		}
	}
	for _, key := range order {
		h := series[key]
		fmt.Fprintf(out, "  %-44s count=%s sum=%s p50=%s p95=%s p99=%s\n",
			f.Name+key, fmtValue(h.count), fmtValue(h.sum),
			fmtValue(quantile(h, 0.50)), fmtValue(quantile(h, 0.95)), fmtValue(quantile(h, 0.99)))
	}
}

// quantile interpolates within the first cumulative bucket reaching rank
// q·count — the same estimate obs histograms report locally.
func quantile(h *scrapedHist, q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := q * h.count
	var prevCum, prevBound float64
	for i, c := range h.cum {
		if c >= rank {
			if c == prevCum {
				return h.bounds[i]
			}
			return prevBound + (h.bounds[i]-prevBound)*(rank-prevCum)/(c-prevCum)
		}
		prevCum, prevBound = c, h.bounds[i]
	}
	if n := len(h.bounds); n > 0 {
		return h.bounds[n-1] // rank lies in +Inf: clamp to the last bound
	}
	return 0
}

// labelSuffix renders a label set as {k="v",...}, skipping one key (the
// histogram's le); empty sets render as nothing.
func labelSuffix(labels map[string]string, skip string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != skip {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return ""
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, labels[k])
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func fmtValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.6g", v)
}

// slowEntryJSON mirrors the wire shape of /debug/slow entries.
type slowEntryJSON struct {
	At       time.Time `json:"at"`
	Kind     string    `json:"kind"`
	Detail   string    `json:"detail"`
	Duration int64     `json:"duration_ns"`
	Gen      uint64    `json:"gen"`
}

type slowJSON struct {
	ThresholdNS int64           `json:"threshold_ns"`
	Dropped     uint64          `json:"dropped"`
	Entries     []slowEntryJSON `json:"entries"`
}

// slowDump fetches /debug/slow and prints the ring buffer, newest first.
func slowDump(out io.Writer, addr string) error {
	if addr == "" {
		return fmt.Errorf("usage: slow <addr>")
	}
	body, err := fetch(addr, "/debug/slow")
	if err != nil {
		return err
	}
	defer body.Close()
	var in slowJSON
	if err := json.NewDecoder(body).Decode(&in); err != nil {
		return fmt.Errorf("decoding /debug/slow: %w", err)
	}
	if in.ThresholdNS <= 0 {
		fmt.Fprintln(out, "  slow log disabled (start xviewd with -slow-threshold)")
		return nil
	}
	fmt.Fprintf(out, "  threshold %v, %d dropped, %d entr%s\n",
		time.Duration(in.ThresholdNS), in.Dropped, len(in.Entries), plural(len(in.Entries), "y", "ies"))
	for _, e := range in.Entries {
		fmt.Fprintf(out, "  %s %-7s gen=%-6d %-10v %s\n",
			e.At.Format(time.RFC3339), e.Kind, e.Gen, time.Duration(e.Duration), e.Detail)
	}
	return nil
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
