package main

// Replication introspection: `repl status <addr>` probes a node's
// /repl/info and reports its role and position with scripting-friendly
// exit codes, so a deploy script can block until a follower has caught up:
//
//	until xviewctl repl status follower:8081; do sleep 1; done

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// replCommand dispatches the `repl ...` subcommands.
func replCommand(out io.Writer, args string) error {
	fields := strings.Fields(args)
	if len(fields) != 2 || fields[0] != "status" {
		return fmt.Errorf("usage: repl status <addr>")
	}
	return replStatus(out, fields[1])
}

// replStatus fetches /repl/info and renders the node's replication
// position. Exit codes as a one-shot command: 0 primary or caught-up
// follower, 3 follower lagging beyond its watermark (or never contacted),
// 1 transport/usage errors. Like health, it never retries — a status probe
// reports the state it found.
func replStatus(out io.Writer, addr string) error {
	cl := &http.Client{Timeout: 10 * time.Second}
	resp, err := cl.Get(baseURL(addr) + "/repl/info")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return fmt.Errorf("GET /repl/info: %s — the node serves no replication endpoints (not durable, not a follower)", resp.Status)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("GET /repl/info: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var in struct {
		Role              string `json:"role"`
		Generation        uint64 `json:"generation"`
		Oldest            uint64 `json:"oldest"`
		Primary           string `json:"primary"`
		PrimaryGeneration uint64 `json:"primary_generation"`
		Lag               uint64 `json:"lag"`
		Watermark         uint64 `json:"watermark"`
		Following         bool   `json:"following"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&in); err != nil {
		return fmt.Errorf("decoding /repl/info: %w", err)
	}
	switch in.Role {
	case "primary":
		fmt.Fprintf(out, "  role=primary durable_generation=%d oldest_streamable=%d\n",
			in.Generation, in.Oldest)
		return nil
	case "follower":
		fmt.Fprintf(out, "  role=follower primary=%s generation=%d primary_generation=%d lag=%d watermark=%d\n",
			in.Primary, in.Generation, in.PrimaryGeneration, in.Lag, in.Watermark)
		if !in.Following {
			return &exitCodeError{code: 3,
				msg: fmt.Sprintf("follower lags %d generation(s) behind %s (watermark %d)", in.Lag, in.Primary, in.Watermark)}
		}
		fmt.Fprintln(out, "  caught up (within the follow watermark)")
		return nil
	default:
		return fmt.Errorf("/repl/info: unexpected role %q", in.Role)
	}
}
