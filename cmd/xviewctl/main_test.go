package main

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"rxview"
	"rxview/server"
)

func testView(t *testing.T) *rxview.View {
	t.Helper()
	atg, db, err := rxview.NewRegistrar()
	if err != nil {
		t.Fatal(err)
	}
	view, err := rxview.Open(atg, db, rxview.WithForceSideEffects())
	if err != nil {
		t.Fatal(err)
	}
	return view
}

func TestSplitCommands(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{";;;", nil},
		{"stats", []string{"stats"}},
		{"stats; check", []string{"stats", "check"}},
		{`query //course[cno="CS650"]; stats`,
			[]string{`query //course[cno="CS650"]`, "stats"}},
		// Semicolons inside quotes must not split.
		{`query //course[cno="a;b"]; check`,
			[]string{`query //course[cno="a;b"]`, "check"}},
		{`query //course[cno='x;y;z']`,
			[]string{`query //course[cno='x;y;z']`}},
		// A double quote inside single quotes does not open a string.
		{`query //course[cno='a"b;c']; stats`,
			[]string{`query //course[cno='a"b;c']`, "stats"}},
		// Unterminated quote: the rest is one command.
		{`insert course(cno="C1; stats`, []string{`insert course(cno="C1; stats`}},
	}
	for _, tc := range cases {
		if got := splitCommands(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("splitCommands(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestRunOneShot(t *testing.T) {
	view := testView(t)
	var out strings.Builder
	err := runOneShot(view, &out,
		`query //course[cno="CS650"]; insert student(ssn="S77", name="Test") into //course[cno="CS650"]/takenBy; check`)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"1 node(s)", "applied:", "consistent"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunOneShotStopsAtFirstError(t *testing.T) {
	view := testView(t)
	var out strings.Builder
	err := runOneShot(view, &out, "bogus; stats")
	if err == nil {
		t.Fatal("bogus command accepted")
	}
	if !strings.Contains(err.Error(), "bogus") {
		t.Errorf("error %q does not name the failing command", err)
	}
	if strings.Contains(out.String(), "rows=") {
		t.Error("commands after the failure still ran")
	}
}

func TestRunREPL(t *testing.T) {
	view := testView(t)
	var out strings.Builder
	in := strings.NewReader("stats\nnonsense\ntables\nquit\nstats\n")
	if err := runREPL(view, in, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "rows=") {
		t.Error("stats output missing")
	}
	if !strings.Contains(got, "error:") {
		t.Error("command failure not reported to the output")
	}
	if !strings.Contains(got, "course") && !strings.Contains(got, "rows\n") {
		t.Errorf("tables output missing:\n%s", got)
	}
	// Everything after quit is unread.
	if strings.Count(got, "rows=") != 1 {
		t.Error("REPL continued past quit")
	}
}

// errReader fails after yielding its content — the scanner must surface the
// read error instead of treating it as EOF.
type errReader struct {
	data string
	err  error
	done bool
}

func (r *errReader) Read(p []byte) (int, error) {
	if !r.done {
		r.done = true
		return copy(p, r.data), nil
	}
	return 0, r.err
}

func TestRunREPLReportsScannerError(t *testing.T) {
	view := testView(t)
	var out strings.Builder
	boom := errors.New("disk on fire")
	err := runREPL(view, &errReader{data: "stats\n", err: boom}, &out)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	if !strings.Contains(err.Error(), "reading input") {
		t.Errorf("error %q lacks the reading-input context", err)
	}
	if !strings.Contains(out.String(), "rows=") {
		t.Error("lines before the failure were not processed")
	}
}

// Plain EOF (no trailing newline) is a clean exit, not an error.
func TestRunREPLCleanEOF(t *testing.T) {
	view := testView(t)
	var out strings.Builder
	if err := runREPL(view, strings.NewReader("check"), &out); err != nil {
		t.Fatalf("clean EOF returned %v", err)
	}
	if !strings.Contains(out.String(), "consistent") {
		t.Error("final unterminated line was not processed")
	}
}

// TestServeSharesDaemonDispatchPath checks the -serve mode serves exactly
// the xviewd handler: the REPL's view, wrapped in a server.Engine, answers
// the daemon's HTTP surface in-process.
func TestServeSharesDaemonDispatchPath(t *testing.T) {
	view := testView(t)
	eng := server.New(view)
	defer eng.Close()
	ts := httptest.NewServer(server.NewHandler(eng, server.HandlerOptions{Timeout: 5 * time.Second}))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/query", "application/json",
		strings.NewReader(`{"path": "//course[cno=\"CS650\"]"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/query status = %d", resp.StatusCode)
	}
	var out struct {
		Count int `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 1 {
		t.Errorf("CS650 count = %d, want 1", out.Count)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status = %d", resp.StatusCode)
	}
}

// The REPL transaction flow: begin/stage/commit applies atomically (one
// generation), rollback restores, and an unfinished transaction is rolled
// back at end of input.
func TestRunREPLTransactionCommit(t *testing.T) {
	view := testView(t)
	var out strings.Builder
	in := strings.NewReader(strings.Join([]string{
		"begin",
		`insert course(cno="CS111", title="Intro") into .`,
		`stage insert course(cno="CS112", title="II") into //course[cno="CS111"]/prereq`,
		`query //course[cno="CS112"]`, // read-your-writes before commit
		"tx",
		"commit",
		"check",
		"quit",
	}, "\n") + "\n")
	if err := runREPL(view, in, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"transaction open", "staged:", "1 node(s)", "2 staged, 2 applied",
		"committed: 2 update(s) applied atomically, generation now 1", "consistent",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if view.Generation() != 1 {
		t.Fatalf("generation = %d, want 1", view.Generation())
	}
}

func TestRunREPLTransactionRollbackAndGuards(t *testing.T) {
	view := testView(t)
	var out strings.Builder
	in := strings.NewReader(strings.Join([]string{
		"commit", // no open tx: error, loop continues
		"begin",
		"begin", // double begin: error
		"check", // unavailable inside a tx: error
		`insert course(cno="CS111", title="Intro") into .`,
		"rollback",
		`query //course[cno="CS111"]`, // gone
		"check",
		"quit",
	}, "\n") + "\n")
	if err := runREPL(view, in, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"no open transaction", "already open", "unavailable inside a transaction",
		"rolled back: view, database, L and M restored", "0 node(s)", "consistent",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if view.Generation() != 0 {
		t.Fatalf("generation = %d, want 0 after rollback", view.Generation())
	}
	if !strings.Contains(got, "tx> ") {
		t.Error("prompt does not indicate the open transaction")
	}
}

func TestRunREPLUnfinishedTransactionRolledBackAtEOF(t *testing.T) {
	view := testView(t)
	var out strings.Builder
	in := strings.NewReader("begin\ninsert course(cno=\"CS111\", title=\"Intro\") into .\n")
	if err := runREPL(view, in, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "open transaction rolled back") {
		t.Errorf("EOF with open tx not reported:\n%s", out.String())
	}
	if view.Generation() != 0 {
		t.Fatal("unfinished transaction leaked state")
	}
	// The view's write path is released.
	if _, err := view.Execute(context.Background(), `insert course(cno="CS113", title="x") into .`); err != nil {
		t.Fatalf("view still locked after EOF rollback: %v", err)
	}
}

func TestRunOneShotTransactionDoomedGroup(t *testing.T) {
	view := testView(t) // ForceSideEffects is on in testView: use a parse failure to doom
	var out strings.Builder
	err := runOneShot(view, &out,
		`begin; insert course(cno="CS111", title="Intro") into .; delete ///[; commit`)
	if err == nil {
		t.Fatal("doomed transaction committed")
	}
	if !strings.Contains(err.Error(), "delete ///[") {
		t.Errorf("error does not name the malformed statement: %v", err)
	}
	if view.Generation() != 0 {
		t.Fatal("doomed group left state applied")
	}
}

func TestWalInspectAndCheckpointSubcommands(t *testing.T) {
	// Build a real durability directory: one committed update, clean close.
	dir := t.TempDir()
	atg, db, err := rxview.NewRegistrar()
	if err != nil {
		t.Fatal(err)
	}
	dv, err := rxview.Open(atg, db, rxview.WithDurability(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dv.Apply(context.Background(),
		rxview.Insert(`//course[cno="CS650"]/takenBy`, "student", rxview.Str("S77"), rxview.Str("Wal"))); err != nil {
		t.Fatal(err)
	}
	if err := dv.Close(); err != nil {
		t.Fatal(err)
	}

	view := testView(t)
	var out strings.Builder
	if err := runOneShot(view, &out, "wal inspect "+dir); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"checkpoint gen=", "segment start=", "gen=1"} {
		if !strings.Contains(got, want) {
			t.Errorf("wal inspect output missing %q:\n%s", want, got)
		}
	}

	out.Reset()
	if err := runOneShot(view, &out, "checkpoint "+dir); err != nil {
		t.Fatal(err)
	}
	got = out.String()
	for _, want := range []string{"sealed at generation 1", "DAG:", "student"} {
		if !strings.Contains(got, want) {
			t.Errorf("checkpoint output missing %q:\n%s", want, got)
		}
	}
}

func TestWalInspectUsageAndErrors(t *testing.T) {
	view := testView(t)
	var out strings.Builder
	if err := runOneShot(view, &out, "wal inspect"); err == nil {
		t.Fatal("bare 'wal inspect' accepted")
	}
	out.Reset()
	if err := runOneShot(view, &out, "checkpoint "+t.TempDir()); err == nil {
		t.Fatal("checkpoint on an empty directory succeeded")
	}
	out.Reset()
	// An empty durability directory inspects cleanly.
	if err := runOneShot(view, &out, "wal inspect "+t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "empty durability directory") {
		t.Errorf("empty dir not reported:\n%s", out.String())
	}
}

// replInfoServer serves a canned /repl/info document, 404 elsewhere —
// the wire shape the repl status subcommand parses.
func replInfoServer(t *testing.T, doc map[string]any) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/repl/info" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(doc)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestReplStatusSubcommand(t *testing.T) {
	view := testView(t)

	primary := replInfoServer(t, map[string]any{
		"role": "primary", "generation": 12, "oldest": 3,
	})
	var out strings.Builder
	if err := runOneShot(view, &out, "repl status "+primary.URL); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "role=primary durable_generation=12 oldest_streamable=3") {
		t.Errorf("primary status missing:\n%s", out.String())
	}

	caught := replInfoServer(t, map[string]any{
		"role": "follower", "primary": "http://p:8080", "generation": 9,
		"primary_generation": 10, "lag": 1, "watermark": 8, "following": true,
	})
	out.Reset()
	if err := runOneShot(view, &out, "repl status "+caught.URL); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"role=follower", "lag=1", "caught up"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("caught-up status missing %q:\n%s", want, out.String())
		}
	}
}

func TestReplStatusLaggingExitCode(t *testing.T) {
	view := testView(t)
	lagging := replInfoServer(t, map[string]any{
		"role": "follower", "primary": "http://p:8080", "generation": 2,
		"primary_generation": 42, "lag": 40, "watermark": 8, "following": false,
	})
	var out strings.Builder
	err := runOneShot(view, &out, "repl status "+lagging.URL)
	var xe *exitCodeError
	if !errors.As(err, &xe) || xe.code != 3 {
		t.Fatalf("lagging follower error = %v, want exit code 3", err)
	}
	if !strings.Contains(out.String(), "lag=40") {
		t.Errorf("lag missing from output:\n%s", out.String())
	}
}

func TestReplStatusUsageAndNonReplNode(t *testing.T) {
	view := testView(t)
	var out strings.Builder
	if err := runOneShot(view, &out, "repl bogus"); err == nil || !strings.Contains(err.Error(), "usage: repl status") {
		t.Fatalf("bad subcommand error = %v, want usage", err)
	}
	plain := httptest.NewServer(http.NotFoundHandler())
	defer plain.Close()
	err := runOneShot(view, &out, "repl status "+plain.URL)
	if err == nil || !strings.Contains(err.Error(), "no replication endpoints") {
		t.Fatalf("non-repl node error = %v, want endpoint explanation", err)
	}
	var xe *exitCodeError
	if errors.As(err, &xe) {
		t.Fatalf("transport-level failure carried exit code %d, want generic 1", xe.code)
	}
}
