package rxview

import (
	"context"
	"errors"
	"fmt"

	"rxview/internal/core"
	"rxview/internal/update"
)

// Tx is an atomic group of view updates: stage any number of insertions and
// deletions, query the staged state, then Commit all of them or none.
//
// Staging is speculative execution over the live view — the machinery
// DryRun uses for one update, extended to survive across staged operations:
// each Stage runs the full pipeline (DTD validation, XPath evaluation with
// side-effect detection, ΔX→ΔV→ΔR translation, ΔR against the database, ΔV
// against the view, eager maintenance of L) so the next Stage and Tx.Query
// read the transaction's own writes. The closure maintenance of M is
// deferred transaction-wide and flushed once at Commit (or before a staged
// deletion, which reads M).
//
// Commit is all-or-nothing. Any rejection — a parse failure, a DTD
// violation, an XML side effect, an untranslatable ΔV — dooms the group:
// the rejected update is unwound immediately, later stages are refused with
// the same error, and Commit (or Rollback) restores the view, the database,
// L and M exactly to their pre-Begin state. A successful Commit runs the
// one deferred flush and advances View.Generation by exactly 1, however
// many updates the transaction staged — one transaction, one epoch.
//
// A Tx is not safe for concurrent use, and neither is its View: between
// Begin and Commit/Rollback the transaction owns the view's write path
// (direct Apply/Batch/Execute return ErrTxOpen), while View.Query and
// DryRun remain available and observe the staged state, like Tx.Query.
// Always finish a transaction: an abandoned open Tx keeps the view's write
// path locked. For serialized transactions over a shared view, use the
// server package's Engine.Tx.
type Tx struct {
	v       *View
	t       *core.Txn
	err     error   // the doom error, in public (wrapped) form
	failRep *Report // unapplied report for an update that failed to compile
}

// Begin opens a transaction on the view. Only one transaction may be open
// at a time; a second Begin before Commit/Rollback returns ErrTxOpen.
func (v *View) Begin(ctx context.Context) (*Tx, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if v.degraded.Load() {
		return nil, &DegradedError{Cause: v.degradedCause}
	}
	t, err := v.sys.Begin(true)
	if err != nil {
		return nil, wrapErr("begin", err)
	}
	return &Tx{v: v, t: t}, nil
}

// Stage queues one update by applying it speculatively: on a nil error the
// update's full effect (including its relational translation ΔR) is visible
// to Tx.Query and later stages, pending Commit. The report and error are
// exactly what View.Apply would produce against the same state.
//
// A rejection dooms the transaction (see Tx). Cancellation does not: the
// canceled stage is unwound alone and may be retried.
func (tx *Tx) Stage(ctx context.Context, u Update) (*Report, error) {
	op, err := u.compile()
	return tx.stage(ctx, u.String(), op, err)
}

// Execute parses and stages one textual update statement:
//
//	insert type(field=value, ...) into xpath
//	delete xpath
func (tx *Tx) Execute(ctx context.Context, stmt string) (*Report, error) {
	op, err := update.ParseStatement(tx.v.sys.ATG, stmt)
	if err != nil {
		err = parseErr(stmt, err)
	}
	return tx.stage(ctx, stmt, op, err)
}

// stage is the shared tail of Stage and Execute: lifecycle checks, the
// compile-failure doom path, and the speculative apply with doom sync.
func (tx *Tx) stage(ctx context.Context, opName string, op *update.Op, compileErr error) (*Report, error) {
	if !tx.t.Open() {
		return &Report{Op: opName}, ErrTxDone
	}
	if tx.err != nil {
		return &Report{Op: opName}, tx.err
	}
	if compileErr != nil {
		compileErr = withOp(compileErr, opName)
		tx.t.Fail(opName, compileErr)
		tx.err = compileErr
		tx.failRep = &Report{Op: opName}
		return tx.failRep, compileErr
	}
	rep, serr := tx.t.Stage(ctx, op)
	werr := wrapErr(op.String(), serr)
	if tx.t.Err() != nil && tx.err == nil {
		tx.err = werr
	}
	return reportOf(rep), werr
}

// Query evaluates an XPath expression over the transaction's view of the
// data: the live view plus every staged-but-uncommitted write — read your
// writes, before anyone else can.
func (tx *Tx) Query(ctx context.Context, path string) ([]Node, error) {
	return tx.v.Query(ctx, path)
}

// Validate answers the updatability question for the staged group: nil
// means every staged update applied speculatively, so the combined effect
// is exactly the staged state and Commit will succeed; otherwise it returns
// the rejection that doomed the group (the same error Commit will return).
func (tx *Tx) Validate() error { return tx.err }

// Applied returns the number of staged updates that applied (no-ops and
// skips stage successfully without applying).
func (tx *Tx) Applied() int { return tx.t.Applied() }

// Reports returns the per-update reports in stage order, ending — like
// View.Batch's — with an unapplied report for an update that failed to
// compile, if one doomed the group. Call it after Commit for final timings:
// the deferred maintenance flush is folded into the last insertion's
// Maintain at commit time.
func (tx *Tx) Reports() []*Report {
	out := reportsOf(tx.t.Reports())
	if tx.failRep != nil {
		out = append(out, tx.failRep)
	}
	return out
}

// Commit makes the staged group final — or none of it: if any stage was
// rejected, or ctx is already canceled, the whole group is unwound to the
// pre-Begin state and the cause returned. On success the deferred
// maintenance flushes once and View.Generation advances by exactly 1 (not
// at all for a transaction whose stages were all no-ops).
func (tx *Tx) Commit(ctx context.Context) error {
	err := tx.t.Commit(ctx)
	switch {
	case err == nil:
		return nil
	case errors.Is(err, core.ErrTxDone):
		return ErrTxDone
	case tx.err != nil && err == tx.t.Err():
		return tx.err // the group rejection: state restored to pre-Begin
	case tx.err != nil:
		// The unwind itself failed — the undo log and the live state
		// disagree. Never mask this behind the original rejection: the
		// pre-Begin state was NOT restored.
		return fmt.Errorf("rxview: %w (while unwinding rejected group: %w)", err, tx.err)
	case tx.t.ErrOp() != "":
		return wrapErr(tx.t.ErrOp(), err)
	default:
		return err // cancellation at commit time: unwound, nothing committed
	}
}

// Rollback abandons the transaction, restoring the view, the database, L
// and M exactly to their pre-Begin state. Idempotent; rolling back a
// finished transaction is a no-op.
func (tx *Tx) Rollback() error { return tx.t.Rollback() }

// withOp stamps a ParseError with the update it belongs to, so a compile
// failure inside a group names its member like the runtime rejections do.
func withOp(err error, op string) error {
	var pe *ParseError
	if errors.As(err, &pe) {
		return &ParseError{Op: op, Input: pe.Input, Err: pe.Err}
	}
	return err
}
