// Package rxview is a from-scratch Go implementation of "Updating Recursive
// XML Views of Relations" (Choi, Cong, Fan, Viglas; ICDE 2007 / JCST 2008):
// schema-directed XML publishing of relational data (ATGs) with DAG
// compression, XPath evaluation with side-effect detection over the DAG,
// and translation of XML view updates to relational updates under key
// preservation (PTIME deletions, SAT-based insertions).
//
// This root package is the public API. Open publishes a database through an
// ATG and returns a View; View.Query, View.Apply, View.DryRun and View.Batch
// are the context-aware entry points to the paper's pipeline, with
// functional options (WithForceSideEffects, WithMaskLimit,
// WithSideEffectPolicy) and typed errors (ErrSideEffect, ErrNotUpdatable,
// ErrParse, ErrTxOpen, ErrTxDone). NewRegistrar and NewSynthetic bundle
// the paper's datasets; Builder defines new views from scratch.
//
// Updates are transactional. View.Begin opens an atomic group (Tx): each
// staged update executes speculatively against the live view — Tx.Query and
// later stages read the transaction's own writes — and Tx.Commit applies
// all of it or none, restoring the view, the database and the auxiliary
// structures L and M exactly to the pre-Begin state on rejection or
// Rollback. A committed transaction runs one deferred maintenance flush and
// advances View.Generation by exactly 1, however many updates it staged, so
// snapshot readers step from group to group and never observe a
// mid-transaction state. Apply, Execute and Batch are one-shot transactions
// over the same machinery; Batch keeps its documented non-atomic prefix
// semantics (one generation per applied update) and coalesces the
// maintenance of L and M across consecutive insertions.
//
// The reachability matrix M — the structure behind // evaluation,
// side-effect detection and the ∆(M,L) maintenance algorithms — is stored as
// per-node bitset rows ([]uint64 over dense node ids) rather than the
// paper's sparse M(anc, desc) relation: closure building, the insert outer
// product and the delete subtraction are word-level row unions and masked
// subtracts. The worst-case memory is 2·n² bits, i.e. n²/4 bytes (rows
// truncate at their highest set word); the sparse layout is kept as a test
// oracle behind
// reach.NewSparse. See README.md ("The reachability matrix M") for the
// break-even analysis.
//
// A View is not safe for concurrent use: the pipeline mutates the DAG and
// the auxiliary structures in place. Two primitives support the concurrent
// serving layer built on top (package rxview/server): View.Snapshot seals
// the current state into an immutable epoch whose Query/Stats/XML are safe
// for any number of goroutines, and View.Generation counts applied
// mutations, so every snapshot identifies the exact write-history prefix it
// reflects. Sealing is copy-on-write — O(Δ) in what changed since the last
// snapshot, not O(n) in the view — so a serving layer can afford one epoch
// per applied write; View.CloneSnapshot is the deep-copy equivalent, kept
// as the differential baseline and aliasing-test oracle. Reads served from
// snapshots are snapshot-consistent — they observe the view after some
// prefix of the applied updates, never a partial one — while writes stay
// serialized on the live View. Query texts compile once through a
// process-wide compiled-path cache shared by View.Query, Snapshot.Query
// and the server handlers.
//
// Views are in-memory by default; WithDurability(dir) adds a write-ahead
// log of committed write units plus sealed-epoch checkpoints, and Open then
// recovers the newest durable state from dir (checkpoint + log replay,
// re-verified with CheckConsistency) before serving. Every commit — an
// Apply, a Batch member, a whole Begin/Commit group — is in the log before
// its verdict returns, under the fsync policy of WithFsync; View.Close
// seals a final checkpoint so the next Open replays nothing. Damage
// surfaces as ErrCorruptLog or ErrCheckpointMismatch (a torn final record
// is truncated with a WithRecoveryWarn warning instead). Views opened
// without WithDurability pay nothing for any of this.
//
// Failures while serving are part of the contract, not panics. A disk
// failure mid-commit flips a durable view into degraded (read-only) mode
// instead of crashing: writes are refused with ErrDegraded, reads keep
// serving, and View.Recover (log reopen + a fresh checkpoint of the
// in-memory state) restores read-write at exactly the generation
// degradation froze. Every write verdict is honest about application:
// a DegradedError with Applied false is guaranteed unapplied (safe to
// retry), Applied true means the write is in memory but not durable
// until recovery checkpoints it — callers must not blindly retry those.
// EnableChaos arms the deterministic fault-injection framework behind
// the WAL and storage seams (FaultPoints lists the catalog) so exactly
// these paths are testable on demand; see README.md ("Resilience").
//
// A durable view's log doubles as a replication change log.
// View.ReplSource streams the gen-contiguous CommitRecord suffix
// (sealed WAL segments, then a live in-memory tail) and hands out the
// newest checkpoint; OpenReplica builds the follower side, whose
// Restore and ApplyRecord replay that stream through the same
// machinery boot recovery uses — one generation per record, refusing
// gaps (ErrCheckpointMismatch) and pruned-past positions
// (ErrReplicaStale) so a follower re-syncs rather than replay into a
// wrong state. The HTTP transport, the read-only follower engine
// (421 + primary address on writes) and multi-tenant hosting live in
// rxview/server; see README.md ("Replication & multi-tenancy").
//
// The whole stack is instrumented through the rxview/obs telemetry core:
// the pipeline's per-phase timings (Timings carries the same split, publish
// included), the compiled-path cache, the WAL and the serving engine record
// into atomic counters and fixed-bucket latency histograms cheap enough for
// the hot paths (≤3% measured overhead, strippable with obs.SetEnabled).
// The server exposes it all as Prometheus text on GET /metrics; see
// README.md ("Observability").
//
// The implementation lives under internal/; internal/core wires it together
// behind this package. See README.md for a tour and for how to run the
// benchmarks. The root bench_test.go regenerates every table and figure of
// the paper's evaluation:
//
//	go test -bench=. -benchmem .
package rxview
