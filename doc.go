// Package rxview is a from-scratch Go implementation of "Updating Recursive
// XML Views of Relations" (Choi, Cong, Fan, Viglas; ICDE 2007 / JCST 2008):
// schema-directed XML publishing of relational data (ATGs) with DAG
// compression, XPath evaluation with side-effect detection over the DAG,
// and translation of XML view updates to relational updates under key
// preservation (PTIME deletions, SAT-based insertions).
//
// The implementation lives under internal/; internal/core is the facade.
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the reproduction of the paper's evaluation. The root
// bench_test.go regenerates every table and figure:
//
//	go test -bench=. -benchmem .
package rxview
