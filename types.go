package rxview

import (
	"fmt"
	"time"

	"rxview/internal/core"
	"rxview/internal/dag"
	"rxview/internal/relational"
)

// Node is one node of the DAG-compressed view, as returned by View.Query: a
// shared subtree occurs once, however many times the unfolded XML tree
// repeats it.
type Node struct {
	// Type is the element type (DTD tag).
	Type string
	// Attr renders the node's attribute tuple, e.g. ("CS320", "Compilers").
	Attr string
	// Text is the node's text content, if the element type carries PCDATA.
	Text string
}

// String renders the node.
func (n Node) String() string {
	if n.Text != "" {
		return fmt.Sprintf("%s%s=%q", n.Type, n.Attr, n.Text)
	}
	return n.Type + n.Attr
}

// Mutation is one base-table change; the translation ΔR of an update is a
// []Mutation. The json tags are the stable wire names used by the server's
// /update, /batch and /tx payloads.
type Mutation struct {
	Table  string  `json:"table"`
	Insert bool    `json:"insert"` // true = insert, false = delete
	Tuple  []Value `json:"tuple"`
}

// String renders the mutation for logs and reports.
func (m Mutation) String() string {
	op := "delete"
	if m.Insert {
		op = "insert"
	}
	return fmt.Sprintf("%s %s %s", op, m.Table, tupleOf(m.Tuple))
}

func mutationsOf(dr []relational.Mutation) []Mutation {
	if len(dr) == 0 {
		return nil
	}
	out := make([]Mutation, len(dr))
	for i, m := range dr {
		out[i] = Mutation{Table: m.Table, Insert: m.Insert, Tuple: valuesOf(m.Tuple)}
	}
	return out
}

// Timings breaks an update into the phases the paper's Fig.11 reports:
// (a) XPath evaluation, (b) translation ΔX→ΔV→ΔR plus execution, and
// (c) maintenance of the auxiliary structures (background in the paper) —
// plus, beyond the paper, the publication phase of the serving layer.
// Durations marshal as integer nanoseconds; the _ns tags make that explicit
// in the wire names.
type Timings struct {
	Validate  time.Duration `json:"validate_ns"`
	Eval      time.Duration `json:"eval_ns"`      // (a)
	Translate time.Duration `json:"translate_ns"` // (b): ΔX→ΔV and ΔV→ΔR (= XToDV + DVToDR)
	XToDV     time.Duration `json:"x_to_dv_ns"`   // Algorithm Xinsert / Xdelete (Figs.5–6)
	DVToDR    time.Duration `json:"dv_to_dr_ns"`  // Algorithm insert / delete (§4)
	Apply     time.Duration `json:"apply_ns"`     // (b): executing ΔR and ΔV
	Maintain  time.Duration `json:"maintain_ns"`  // (c): ∆(M,L)insert / ∆(M,L)delete
	// Publish is the epoch-publication cost (sealing the copy-on-write
	// snapshot plus the pointer swap). It is stamped by the serving layer
	// on the report of the write unit that triggered the publication;
	// library-level Apply/Batch/Execute leave it zero (they publish no
	// epochs).
	Publish time.Duration `json:"publish_ns"`
}

// Total sums all phases (XToDV and DVToDR are sub-phases of Translate and
// are not added again).
func (t Timings) Total() time.Duration {
	return t.Validate + t.Eval + t.Translate + t.Apply + t.Maintain + t.Publish
}

func timingsOf(t core.Timings) Timings {
	return Timings{
		Validate:  t.Validate,
		Eval:      t.Eval,
		Translate: t.Translate,
		XToDV:     t.XToDV,
		DVToDR:    t.DVToDR,
		Apply:     t.Apply,
		Maintain:  t.Maintain,
	}
}

// Report describes one processed update. The json tags are the stable wire
// names shared with the server's /update, /batch and /tx payloads.
type Report struct {
	Op          string     `json:"op"`                // the update, rendered
	Applied     bool       `json:"applied"`           // false for no-ops and rejections
	Targets     int        `json:"targets"`           // |r[[p]]|, nodes selected by the path
	Edges       int        `json:"edges"`             // |Ep(r)|, parent-child edges selected
	SideEffects bool       `json:"side_effects"`      // the update touched a shared subtree
	DVInserts   int        `json:"dv_inserts"`        // edges added to the view's edge relations
	DVDeletes   int        `json:"dv_deletes"`        // edges removed (including the GC cascade)
	Changes     []Mutation `json:"changes,omitempty"` // the relational translation ΔR, as executed
	Removed     int        `json:"removed"`           // garbage-collected nodes
	Timings     Timings    `json:"timings"`
}

func reportOf(r *core.Report) *Report {
	if r == nil {
		return nil
	}
	return &Report{
		Op:          r.Op,
		Applied:     r.Applied,
		Targets:     r.RP,
		Edges:       r.EP,
		SideEffects: r.SideEffects,
		DVInserts:   r.DVInserts,
		DVDeletes:   r.DVDeletes,
		Changes:     mutationsOf(r.DR),
		Removed:     r.Removed,
		Timings:     timingsOf(r.Timings),
	}
}

func reportsOf(rs []*core.Report) []*Report {
	out := make([]*Report, len(rs))
	for i, r := range rs {
		out[i] = reportOf(r)
	}
	return out
}

// Stats summarizes the view and its auxiliary structures — the quantities of
// Fig.10(b) in the paper: DAG size, uncompressed tree size, sharing, |L|
// and |M|.
type Stats struct {
	BaseRows    int     `json:"base_rows"`    // total tuples in the published database
	Nodes       int     `json:"nodes"`        // DAG nodes (n)
	Edges       int     `json:"edges"`        // DAG edges (|V|, the size of the relational views)
	TreeSize    float64 `json:"tree_size"`    // uncompressed |T|
	Compression float64 `json:"compression"`  // TreeSize / Nodes
	SharedNodes int     `json:"shared_nodes"` // nodes with >1 parent
	SharedFrac  float64 `json:"shared_frac"`  // SharedNodes / Nodes
	TopoLen     int     `json:"topo_len"`     // |L|
	MatrixPairs int     `json:"matrix_pairs"` // |M|
}

// String renders the statistics in a Fig.10(b)-style line.
func (st Stats) String() string {
	return fmt.Sprintf(
		"rows=%d nodes=%d edges=%d tree=%.0f compression=%.2fx shared=%.1f%% |L|=%d |M|=%d",
		st.BaseRows, st.Nodes, st.Edges, st.TreeSize, st.Compression,
		100*st.SharedFrac, st.TopoLen, st.MatrixPairs)
}

func statsOf(st core.Stats) Stats {
	return Stats{
		BaseRows:    st.BaseRows,
		Nodes:       st.Nodes,
		Edges:       st.Edges,
		TreeSize:    st.TreeSize,
		Compression: st.Compression,
		SharedNodes: st.SharedNodes,
		SharedFrac:  st.SharedFrac,
		TopoLen:     st.TopoLen,
		MatrixPairs: st.MatrixPairs,
	}
}

// nodeOf renders a DAG node through the view's accessors.
func nodeOf(d dag.Reader, text func(dag.NodeID) (string, bool), id dag.NodeID) Node {
	n := Node{Type: d.Type(id), Attr: d.Attr(id).String()}
	if text != nil {
		if s, ok := text(id); ok {
			n.Text = s
		}
	}
	return n
}

// nodesOf renders a selection r[[p]] — shared by the live View and its
// frozen Snapshots so the two query paths can never diverge.
func nodesOf(d dag.Reader, text func(dag.NodeID) (string, bool), ids []dag.NodeID) []Node {
	out := make([]Node, len(ids))
	for i, id := range ids {
		out[i] = nodeOf(d, text, id)
	}
	return out
}
