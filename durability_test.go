package rxview_test

// Tests of the durability layer: fresh-directory genesis, recovery with and
// without a clean Close, the crash-point property (a log cut at every byte
// recovers exactly the last durable generation), checkpoint rotation, the
// error taxonomy, and the zero-overhead contract for non-durable views.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rxview"
)

func mustDurableView(t *testing.T, dir string, opts ...rxview.Option) *rxview.View {
	t.Helper()
	atg, db, err := rxview.NewRegistrar()
	if err != nil {
		t.Fatal(err)
	}
	view, err := rxview.Open(atg, db, append([]rxview.Option{rxview.WithDurability(dir)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return view
}

// fingerprint captures the externally observable state: the serialized
// view, the base-table row counts, and the generation.
func fingerprint(t *testing.T, v *rxview.View) string {
	t.Helper()
	xml, err := v.XML(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "gen=%d\n", v.Generation())
	for _, ti := range v.DB().Tables() {
		fmt.Fprintf(&sb, "%s=%d\n", ti.Name, ti.Rows)
	}
	sb.WriteString(xml)
	return sb.String()
}

func TestDurableCleanShutdownAndReopen(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	v := mustDurableView(t, dir)
	if v.Generation() != 0 {
		t.Fatalf("genesis generation %d", v.Generation())
	}
	if _, err := v.Apply(ctx, rxview.Insert(`.`, "course", rxview.Str("CS800"), rxview.Str("Durable"))); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Apply(ctx, rxview.Insert(`//course[cno="CS800"]/takenBy`, "student", rxview.Str("S80"), rxview.Str("Dee"))); err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, v)
	if err := v.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Close is idempotent and leaves the view usable in memory.
	if err := v.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}

	v2 := mustDurableView(t, dir)
	defer v2.Close()
	if got := fingerprint(t, v2); got != want {
		t.Fatalf("reopened state differs:\n%s\nvs\n%s", got, want)
	}
	if err := v2.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// A clean shutdown sealed everything in the checkpoint: recovery must
	// not have replayed any records.
	info, err := rxview.InspectWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	newest := info.Checkpoints[len(info.Checkpoints)-1]
	if newest.Gen != 2 {
		t.Fatalf("newest checkpoint at generation %d, want 2", newest.Gen)
	}
}

func TestDurableRecoveryWithoutClose(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	v := mustDurableView(t, dir)
	if _, err := v.Apply(ctx, rxview.Insert(`.`, "course", rxview.Str("CS810"), rxview.Str("Unclosed"))); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Batch(ctx,
		rxview.Insert(`//course[cno="CS810"]/takenBy`, "student", rxview.Str("S81"), rxview.Str("Ann")),
		rxview.Insert(`//course[cno="CS810"]/takenBy`, "student", rxview.Str("S82"), rxview.Str("Bob")),
	); err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, v)
	// No Close: the next Open replays the log suffix onto the genesis
	// checkpoint.
	v2 := mustDurableView(t, dir)
	defer v2.Close()
	if v2.Generation() != 3 {
		t.Fatalf("recovered generation %d, want 3", v2.Generation())
	}
	if got := fingerprint(t, v2); got != want {
		t.Fatalf("recovered state differs:\n%s\nvs\n%s", got, want)
	}
}

func TestDurableAtomicTxRecovery(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	v := mustDurableView(t, dir)
	tx, err := v.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []rxview.Update{
		rxview.Insert(`.`, "course", rxview.Str("CS111"), rxview.Str("Intro")),
		rxview.Insert(`//course[cno="CS111"]/prereq`, "course", rxview.Str("CS112"), rxview.Str("Intro II")),
		rxview.Delete(`//course[cno="CS320"]//student[ssn="S02"]`),
	} {
		if _, err := tx.Stage(ctx, u); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if v.Generation() != 1 {
		t.Fatalf("atomic group advanced generation to %d, want 1", v.Generation())
	}
	want := fingerprint(t, v)

	v2 := mustDurableView(t, dir)
	defer v2.Close()
	if got := fingerprint(t, v2); got != want {
		t.Fatalf("recovered state differs:\n%s\nvs\n%s", got, want)
	}
	// The whole group is one record.
	info, err := rxview.InspectWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	var recs int
	for _, s := range info.Segments {
		recs += len(s.Records)
	}
	if recs != 1 {
		t.Fatalf("atomic group produced %d records, want 1", recs)
	}
}

// crashStep is one committed unit (or, for batch, one unit per member) of
// the deterministic crash workload.
type crashStep struct {
	kind string // apply, tx, batch
	ups  []rxview.Update
}

func crashSteps() []crashStep {
	return []crashStep{
		{"apply", []rxview.Update{rxview.Insert(`.`, "course", rxview.Str("CS800"), rxview.Str("Alpha"))}},
		{"apply", []rxview.Update{rxview.Insert(`//course[cno="CS800"]/prereq`, "course", rxview.Str("CS801"), rxview.Str("Beta"))}},
		{"batch", []rxview.Update{
			rxview.Insert(`//course[cno="CS650"]/takenBy`, "student", rxview.Str("S71"), rxview.Str("One")),
			rxview.Insert(`//course[cno="CS650"]/takenBy`, "student", rxview.Str("S72"), rxview.Str("Two")),
			rxview.Insert(`//course[cno="CS800"]/takenBy`, "student", rxview.Str("S73"), rxview.Str("Three")),
		}},
		{"tx", []rxview.Update{
			rxview.Insert(`.`, "course", rxview.Str("CS111"), rxview.Str("Intro")),
			rxview.Insert(`//course[cno="CS111"]/prereq`, "course", rxview.Str("CS112"), rxview.Str("Intro II")),
			rxview.Delete(`//course[cno="CS320"]//student[ssn="S02"]`),
		}},
		{"apply", []rxview.Update{rxview.Delete(`//course[cno="CS800"]//course[cno="CS801"]`)}},
		{"batch", []rxview.Update{
			rxview.Insert(`.`, "course", rxview.Str("CS901"), rxview.Str("Gamma")),
			rxview.Insert(`//course[cno="CS901"]/prereq`, "course", rxview.Str("CS902"), rxview.Str("Delta")),
			rxview.Insert(`//course[cno="CS902"]/takenBy`, "student", rxview.Str("S99"), rxview.Str("Last")),
		}},
		{"apply", []rxview.Update{rxview.Delete(`//course[cno="CS901"]`)}},
	}
}

// runCrashStep executes one step on a view, committing through the same
// code path the durable run uses.
func runCrashStep(t *testing.T, ctx context.Context, v *rxview.View, s crashStep) {
	t.Helper()
	switch s.kind {
	case "apply":
		if _, err := v.Apply(ctx, s.ups[0]); err != nil {
			t.Fatalf("apply %v: %v", s.ups[0], err)
		}
	case "batch":
		if _, err := v.Batch(ctx, s.ups...); err != nil {
			t.Fatalf("batch: %v", err)
		}
	case "tx":
		tx, err := v.Begin(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range s.ups {
			if _, err := tx.Stage(ctx, u); err != nil {
				t.Fatalf("stage %v: %v", u, err)
			}
		}
		if err := tx.Commit(ctx); err != nil {
			t.Fatalf("commit: %v", err)
		}
	}
}

// oracleFingerprints replays the workload on a plain in-memory view,
// capturing the fingerprint after every generation: batch members advance
// one generation each (batch state equals the same sequence of Applies),
// an atomic group advances exactly one.
func oracleFingerprints(t *testing.T) []string {
	t.Helper()
	ctx := context.Background()
	atg, db, err := rxview.NewRegistrar()
	if err != nil {
		t.Fatal(err)
	}
	v, err := rxview.Open(atg, db)
	if err != nil {
		t.Fatal(err)
	}
	fps := []string{fingerprint(t, v)} // generation 0
	for _, s := range crashSteps() {
		switch s.kind {
		case "apply", "batch":
			for _, u := range s.ups {
				if _, err := v.Apply(ctx, u); err != nil {
					t.Fatalf("oracle apply %v: %v", u, err)
				}
				fps = append(fps, fingerprint(t, v))
			}
		case "tx":
			runCrashStep(t, ctx, v, s)
			fps = append(fps, fingerprint(t, v))
		}
	}
	return fps
}

// TestCrashPointRecovery is the crash-point property test: run the workload
// durably, then cut the log at every byte, recover, and require the result
// to equal the in-memory oracle at the last durable generation.
func TestCrashPointRecovery(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	// Huge checkpoint interval: the whole workload lands in one segment
	// after the genesis checkpoint.
	v := mustDurableView(t, dir, rxview.WithFsync(rxview.FsyncOff), rxview.WithCheckpointEvery(1<<30))
	for _, s := range crashSteps() {
		runCrashStep(t, ctx, v, s)
	}
	finalGen := v.Generation()
	// No Close, no final checkpoint: the process "dies" here with the
	// whole history in the log.

	oracle := oracleFingerprints(t)
	if uint64(len(oracle)) != finalGen+1 {
		t.Fatalf("oracle has %d states for final generation %d", len(oracle), finalGen)
	}

	info, err := rxview.InspectWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Segments) != 1 || len(info.Checkpoints) != 1 {
		t.Fatalf("expected 1 segment + 1 checkpoint, got %+v", info)
	}
	seg := info.Segments[0]
	if uint64(len(seg.Records)) != finalGen {
		t.Fatalf("log has %d records for %d generations", len(seg.Records), finalGen)
	}
	whole, err := os.ReadFile(seg.Path)
	if err != nil {
		t.Fatal(err)
	}
	// End offset of each record: the segment is header + records, so walk
	// the published sizes back from the file end.
	total := 0
	for _, r := range seg.Records {
		total += r.Bytes
	}
	recEnd := make([]int, len(seg.Records)) // recEnd[i] = bytes that fully contain records 0..i
	off := len(whole) - total
	for i, r := range seg.Records {
		off += r.Bytes
		recEnd[i] = off
	}
	ckptBytes, err := os.ReadFile(info.Checkpoints[0].Path)
	if err != nil {
		t.Fatal(err)
	}

	cuts := make([]int, 0, len(whole)+1)
	if testing.Short() {
		// Record boundaries ±1 plus frame midpoints.
		seen := map[int]bool{}
		add := func(c int) {
			if c >= 0 && c <= len(whole) && !seen[c] {
				seen[c] = true
				cuts = append(cuts, c)
			}
		}
		prev := 0
		for _, e := range recEnd {
			add(e - 1)
			add(e)
			add(e + 1)
			add((prev + e) / 2)
			prev = e
		}
		add(0)
		add(len(whole))
	} else {
		for c := 0; c <= len(whole); c++ {
			cuts = append(cuts, c)
		}
	}

	for _, cut := range cuts {
		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, filepath.Base(seg.Path)), whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(sub, filepath.Base(info.Checkpoints[0].Path)), ckptBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		wantGen := uint64(0)
		for i, e := range recEnd {
			if e <= cut {
				wantGen = uint64(i + 1)
			}
		}
		rv := mustDurableView(t, sub)
		if rv.Generation() != wantGen {
			t.Fatalf("cut at %d: recovered generation %d, want %d", cut, rv.Generation(), wantGen)
		}
		if got := fingerprint(t, rv); got != oracle[wantGen] {
			t.Fatalf("cut at %d (generation %d): recovered state differs from oracle:\n%s\nvs\n%s",
				cut, wantGen, got, oracle[wantGen])
		}
		if err := rv.CheckConsistency(); err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if err := rv.Close(); err != nil {
			t.Fatalf("cut at %d: close: %v", cut, err)
		}
	}
}

func TestCheckpointEveryRotatesAndPrunes(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	v := mustDurableView(t, dir, rxview.WithCheckpointEvery(2))
	for i := 0; i < 7; i++ {
		u := rxview.Insert(`//course[cno="CS650"]/takenBy`, "student",
			rxview.Str(fmt.Sprintf("S6%02d", i)), rxview.Str("X"))
		if _, err := v.Apply(ctx, u); err != nil {
			t.Fatal(err)
		}
	}
	info, err := rxview.InspectWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	// 7 commits at every-2 → automatic checkpoints fired; pruning keeps 2.
	if len(info.Checkpoints) != 2 {
		t.Fatalf("kept %d checkpoints: %+v", len(info.Checkpoints), info.Checkpoints)
	}
	newest := info.Checkpoints[1]
	if newest.Gen < 4 {
		t.Fatalf("newest checkpoint at generation %d", newest.Gen)
	}
	want := fingerprint(t, v)
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	v2 := mustDurableView(t, dir)
	defer v2.Close()
	if got := fingerprint(t, v2); got != want {
		t.Fatalf("recovered state differs after rotation:\n%s\nvs\n%s", got, want)
	}
}

func TestCorruptLogErrorRoundTrip(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	v := mustDurableView(t, dir)
	if _, err := v.Apply(ctx, rxview.Insert(`.`, "course", rxview.Str("CS820"), rxview.Str("Doomed"))); err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	// Damage every checkpoint: recovery has nothing to boot from.
	info, err := rxview.InspectWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range info.Checkpoints {
		b, err := os.ReadFile(c.Path)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)-1] ^= 0xff
		if err := os.WriteFile(c.Path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	atg, db, err := rxview.NewRegistrar()
	if err != nil {
		t.Fatal(err)
	}
	_, err = rxview.Open(atg, db, rxview.WithDurability(dir))
	if err == nil {
		t.Fatal("open over corrupt checkpoints succeeded")
	}
	if !errors.Is(err, rxview.ErrCorruptLog) {
		t.Fatalf("errors.Is(err, ErrCorruptLog) = false for %v", err)
	}
	var cle *rxview.CorruptLogError
	if !errors.As(err, &cle) {
		t.Fatalf("errors.As *CorruptLogError failed for %v", err)
	}
	if cle.Dir != dir || cle.Unwrap() == nil {
		t.Fatalf("error detail incomplete: %+v", cle)
	}
	if errors.Is(err, rxview.ErrCheckpointMismatch) {
		t.Fatal("corrupt log also matches ErrCheckpointMismatch")
	}
}

func TestCheckpointMismatchErrorRoundTrip(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	v := mustDurableView(t, dir, rxview.WithFsync(rxview.FsyncOff), rxview.WithCheckpointEvery(1<<30))
	for i := 0; i < 3; i++ {
		u := rxview.Insert(`//course[cno="CS650"]/takenBy`, "student",
			rxview.Str(fmt.Sprintf("S9%02d", i)), rxview.Str("Gap"))
		if _, err := v.Apply(ctx, u); err != nil {
			t.Fatal(err)
		}
	}
	// Splice the middle record out of the segment: the frames around it
	// stay valid, so the log reads cleanly but generation 2 is missing.
	info, err := rxview.InspectWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	seg := info.Segments[0]
	if len(seg.Records) != 3 {
		t.Fatalf("expected 3 records, got %+v", seg.Records)
	}
	b, err := os.ReadFile(seg.Path)
	if err != nil {
		t.Fatal(err)
	}
	total := seg.Records[0].Bytes + seg.Records[1].Bytes + seg.Records[2].Bytes
	start1 := len(b) - total + seg.Records[0].Bytes // start of record for generation 2
	end1 := start1 + seg.Records[1].Bytes
	spliced := append(append([]byte{}, b[:start1]...), b[end1:]...)
	if err := os.WriteFile(seg.Path, spliced, 0o644); err != nil {
		t.Fatal(err)
	}
	atg, db, err := rxview.NewRegistrar()
	if err != nil {
		t.Fatal(err)
	}
	_, err = rxview.Open(atg, db, rxview.WithDurability(dir))
	if err == nil {
		t.Fatal("open over a generation gap succeeded")
	}
	if !errors.Is(err, rxview.ErrCheckpointMismatch) {
		t.Fatalf("errors.Is(err, ErrCheckpointMismatch) = false for %v", err)
	}
	var cme *rxview.CheckpointMismatchError
	if !errors.As(err, &cme) {
		t.Fatalf("errors.As *CheckpointMismatchError failed for %v", err)
	}
	if cme.Dir != dir || cme.Unwrap() == nil {
		t.Fatalf("error detail incomplete: %+v", cme)
	}
	if errors.Is(err, rxview.ErrCorruptLog) {
		t.Fatal("mismatch also matches ErrCorruptLog")
	}
}

func TestRecoveryWarnSurfacesTornTail(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	v := mustDurableView(t, dir, rxview.WithFsync(rxview.FsyncOff), rxview.WithCheckpointEvery(1<<30))
	for i := 0; i < 2; i++ {
		u := rxview.Insert(`//course[cno="CS650"]/takenBy`, "student",
			rxview.Str(fmt.Sprintf("S8%02d", i)), rxview.Str("Torn"))
		if _, err := v.Apply(ctx, u); err != nil {
			t.Fatal(err)
		}
	}
	info, err := rxview.InspectWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	seg := info.Segments[0]
	b, err := os.ReadFile(seg.Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg.Path, b[:len(b)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	var warnings []string
	atg, db, err := rxview.NewRegistrar()
	if err != nil {
		t.Fatal(err)
	}
	v2, err := rxview.Open(atg, db, rxview.WithDurability(dir),
		rxview.WithRecoveryWarn(func(msg string) { warnings = append(warnings, msg) }))
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	if v2.Generation() != 1 {
		t.Fatalf("recovered generation %d, want 1 (torn final record dropped)", v2.Generation())
	}
	if len(warnings) == 0 {
		t.Fatal("torn tail produced no warning")
	}
}

func TestNonDurableViewHasNoDurabilitySurface(t *testing.T) {
	ctx := context.Background()
	view := mustView(t)
	if _, err := view.Apply(ctx, rxview.Insert(`.`, "course", rxview.Str("CS830"), rxview.Str("Plain"))); err != nil {
		t.Fatal(err)
	}
	// Checkpoint and Close are explicit no-ops without WithDurability.
	if err := view.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint on non-durable view: %v", err)
	}
	if err := view.Close(); err != nil {
		t.Fatalf("Close on non-durable view: %v", err)
	}
	// The view stays fully usable.
	if _, err := view.Apply(ctx, rxview.Insert(`.`, "course", rxview.Str("CS831"), rxview.Str("Still"))); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointDuringOpenTxRefused(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	v := mustDurableView(t, dir)
	defer v.Close()
	tx, err := v.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Checkpoint(); !errors.Is(err, rxview.ErrTxOpen) {
		t.Fatalf("Checkpoint during open tx: %v, want ErrTxOpen", err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := v.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint after rollback: %v", err)
	}
}

func TestInspectCheckpointDetail(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	v := mustDurableView(t, dir)
	if _, err := v.Apply(ctx, rxview.Insert(`.`, "course", rxview.Str("CS840"), rxview.Str("Meta"))); err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	det, err := rxview.InspectCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if det.Gen != 1 {
		t.Fatalf("checkpoint generation %d, want 1", det.Gen)
	}
	if det.LiveNodes == 0 || det.Edges == 0 || det.OrderLen != det.LiveNodes {
		t.Fatalf("implausible detail: %+v", det)
	}
	var courseRows int
	for _, tb := range det.Tables {
		if tb.Name == "course" {
			courseRows = tb.Rows
		}
	}
	if courseRows == 0 {
		t.Fatalf("no course rows in %+v", det.Tables)
	}
}
