package rxview

import "rxview/internal/relational"

// Column describes one attribute of a base table.
type Column struct {
	Name string
	Type Kind
	// Domain enumerates the column's finite domain, if any. A nil Domain
	// means the domain is (conceptually) infinite: the insertion
	// translator may then always pick a fresh value for an unconstrained
	// variable (§4.3, case (b)). Bool columns have an implicit
	// {false, true} domain.
	Domain []Value
}

// Table describes a base relation: its columns and primary key (the paper's
// key-preservation condition is stated over primary keys).
type Table struct {
	Name    string
	Columns []Column
	// Key names the primary-key columns; they must exist in Columns.
	Key []string
}

// Schema is a relational schema R: a set of tables.
type Schema struct {
	s *relational.Schema
}

// NewSchema builds and validates a schema.
func NewSchema(tables ...Table) (*Schema, error) {
	ts := make([]*relational.TableSchema, len(tables))
	for i, t := range tables {
		cols := make([]relational.Column, len(t.Columns))
		for j, c := range t.Columns {
			cols[j] = relational.Column{
				Name:   c.Name,
				Type:   relational.Kind(c.Type),
				Domain: tupleOf(c.Domain),
			}
		}
		s, err := relational.NewTableSchema(t.Name, cols, t.Key...)
		if err != nil {
			return nil, err
		}
		ts[i] = s
	}
	s, err := relational.NewSchema(ts...)
	if err != nil {
		return nil, err
	}
	return &Schema{s: s}, nil
}

// MustSchema is NewSchema that panics on error.
func MustSchema(tables ...Table) *Schema {
	s, err := NewSchema(tables...)
	if err != nil {
		panic(err)
	}
	return s
}

// Tables lists the schema's table names in sorted order.
func (s *Schema) Tables() []string { return s.s.TableNames() }

// Operand is a term of an SPJ query: a column reference, a constant, or a
// parameter bound at evaluation time.
type Operand struct {
	o relational.Operand
}

// Col references column col of the tab-th FROM entry (both 0-based).
func Col(tab, col int) Operand { return Operand{relational.Col(tab, col)} }

// Const embeds a constant.
func Const(v Value) Operand { return Operand{relational.Const(v.v)} }

// Param references the i-th query parameter (the parent's attribute fields
// in an ATG query rule).
func Param(i int) Operand { return Operand{relational.Param(i)} }

// Pred is an equality predicate Left = Right; SPJ queries use conjunctions
// of equalities (conjunctive queries).
type Pred struct {
	Left, Right Operand
}

// Eq builds an equality predicate.
func Eq(l, r Operand) Pred { return Pred{Left: l, Right: r} }

// Sel is one projected column of a query.
type Sel struct {
	As  string
	Src Operand
}

// Query is a select-project-join query
//
//	SELECT Select FROM From WHERE conjunction-of-equalities
//
// with Params parameters bound at evaluation time — exactly the query class
// the paper's ATGs and relational views use.
type Query struct {
	Name   string
	Params int
	From   []string // table names; repeat a table for self-joins
	Where  []Pred
	Select []Sel
}

// spj converts the query to its internal form.
func (q Query) spj() *relational.SPJ {
	from := make([]relational.TableRef, len(q.From))
	for i, t := range q.From {
		from[i] = relational.TableRef{Table: t}
	}
	where := make([]relational.EqPred, len(q.Where))
	for i, p := range q.Where {
		where[i] = relational.EqPred{Left: p.Left.o, Right: p.Right.o}
	}
	sel := make([]relational.SelectItem, len(q.Select))
	for i, s := range q.Select {
		sel[i] = relational.SelectItem{As: s.As, Src: s.Src.o}
	}
	return &relational.SPJ{
		Name:    q.Name,
		NParams: q.Params,
		From:    from,
		Where:   where,
		Selects: sel,
	}
}
