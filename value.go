package rxview

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"

	"rxview/internal/relational"
)

// Kind identifies the runtime type of a Value.
type Kind uint8

// Value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindBool
	KindString
)

// String returns the name of the kind.
func (k Kind) String() string { return relational.Kind(k).String() }

// Value is a single relational value: the typed constants that fill tuples,
// column domains and query predicates. The zero Value is NULL.
type Value struct {
	v relational.Value
}

// Str returns a string value.
func Str(s string) Value { return Value{relational.Str(s)} }

// Int returns an integer value.
func Int(n int64) Value { return Value{relational.Int(n)} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{relational.Bool(b)} }

// Null returns the NULL value.
func Null() Value { return Value{} }

// Kind reports the value's runtime type.
func (v Value) Kind() Kind { return Kind(v.v.K) }

// Text returns the payload of a string value ("" for other kinds).
func (v Value) Text() string {
	if v.v.K == relational.KindString {
		return v.v.S
	}
	return ""
}

// Num returns the payload of an int or bool value (0 for other kinds).
func (v Value) Num() int64 {
	switch v.v.K {
	case relational.KindInt, relational.KindBool:
		return v.v.I
	}
	return 0
}

// String renders the value.
func (v Value) String() string { return v.v.String() }

// MarshalJSON renders the value in its native JSON form: null, a number, a
// boolean or a string — the same mapping the server's wire format uses, so
// a marshaled Mutation round-trips.
func (v Value) MarshalJSON() ([]byte, error) {
	switch v.v.K {
	case relational.KindInt:
		return json.Marshal(v.v.I)
	case relational.KindBool:
		return json.Marshal(v.v.I != 0)
	case relational.KindString:
		return json.Marshal(v.v.S)
	default:
		return []byte("null"), nil
	}
}

// UnmarshalJSON accepts the same forms MarshalJSON emits. Numbers must be
// exact integers (the value model has no floats) and are parsed as full
// int64 — not through float64, which would corrupt magnitudes ≥ 2⁵³.
func (v *Value) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var raw any
	if err := dec.Decode(&raw); err != nil {
		return err
	}
	switch x := raw.(type) {
	case nil:
		*v = Null()
	case bool:
		*v = Bool(x)
	case string:
		*v = Str(x)
	case json.Number:
		n, err := strconv.ParseInt(string(x), 10, 64)
		if err != nil {
			return fmt.Errorf("rxview: number %s is not an exact int64", x)
		}
		*v = Int(n)
	default:
		return fmt.Errorf("rxview: unsupported JSON value %T", raw)
	}
	return nil
}

// tupleOf converts public values to an internal tuple.
func tupleOf(vals []Value) relational.Tuple {
	t := make(relational.Tuple, len(vals))
	for i, v := range vals {
		t[i] = v.v
	}
	return t
}

// valuesOf converts an internal tuple to public values.
func valuesOf(t relational.Tuple) []Value {
	out := make([]Value, len(t))
	for i, v := range t {
		out[i] = Value{v}
	}
	return out
}
