package rxview_test

// Tests of the public API surface: the typed-error taxonomy, the
// side-effect policy hook, context cancellation, and the equivalence of
// Batch with sequential Apply.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"rxview"
)

func mustView(t *testing.T, opts ...rxview.Option) *rxview.View {
	t.Helper()
	atg, db, err := rxview.NewRegistrar()
	if err != nil {
		t.Fatal(err)
	}
	view, err := rxview.Open(atg, db, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return view
}

// sharedInsert targets the CS320 occurrence below CS650 only; CS320's
// subtree is shared with the top level, so the update has an XML side
// effect (the quickstart's Example 1 situation).
var sharedInsert = rxview.Insert(`course[cno="CS650"]//course[cno="CS320"]/prereq`,
	"course", rxview.Str("CS777"), rxview.Str("Sharing"))

func TestErrSideEffectRoundTrip(t *testing.T) {
	ctx := context.Background()
	view := mustView(t)

	rep, err := view.Apply(ctx, sharedInsert)
	if err == nil {
		t.Fatal("side-effecting insert applied without error")
	}
	if !errors.Is(err, rxview.ErrSideEffect) {
		t.Fatalf("errors.Is(err, ErrSideEffect) = false for %v", err)
	}
	var se *rxview.SideEffectError
	if !errors.As(err, &se) {
		t.Fatalf("errors.As *SideEffectError failed for %v", err)
	}
	if se.Witnesses == 0 {
		t.Error("side-effect error carries no witnesses")
	}
	if rep == nil || !rep.SideEffects {
		t.Error("report does not flag side effects")
	}
	if rep.Applied {
		t.Error("rejected update reported as applied")
	}
	// The same update must be distinguishable from the other sentinels.
	if errors.Is(err, rxview.ErrNotUpdatable) || errors.Is(err, rxview.ErrParse) {
		t.Errorf("side-effect error matches unrelated sentinels: %v", err)
	}
	// DryRun returns exactly the same class of error.
	if _, err := view.DryRun(ctx, sharedInsert); !errors.Is(err, rxview.ErrSideEffect) {
		t.Errorf("DryRun error = %v, want ErrSideEffect", err)
	}
	// Forcing applies it.
	forced := mustView(t, rxview.WithForceSideEffects())
	if rep, err := forced.Apply(ctx, sharedInsert); err != nil || !rep.Applied {
		t.Fatalf("forced apply: rep=%+v err=%v", rep, err)
	}
}

func TestErrNotUpdatableRoundTrip(t *testing.T) {
	ctx := context.Background()
	view := mustView(t, rxview.WithForceSideEffects())
	// EE100 exists in the base data with dept=EE; publishing it at the
	// top level of the CS view would require changing base data the
	// update did not ask for — the translation rejects it (§4).
	_, err := view.Apply(ctx, rxview.Insert(`.`, "course", rxview.Str("EE100"), rxview.Str("Circuits")))
	if !errors.Is(err, rxview.ErrNotUpdatable) {
		t.Fatalf("errors.Is(err, ErrNotUpdatable) = false for %v", err)
	}
	var nu *rxview.NotUpdatableError
	if !errors.As(err, &nu) || nu.Reason == "" {
		t.Fatalf("errors.As *NotUpdatableError failed for %v", err)
	}
}

func TestErrParseRoundTrip(t *testing.T) {
	ctx := context.Background()
	view := mustView(t)
	if _, err := view.Query(ctx, `//course[`); !errors.Is(err, rxview.ErrParse) {
		t.Errorf("Query parse error = %v, want ErrParse", err)
	}
	if _, err := view.Apply(ctx, rxview.Delete(`//course[`)); !errors.Is(err, rxview.ErrParse) {
		t.Errorf("Apply parse error = %v, want ErrParse", err)
	}
	if _, err := view.Execute(ctx, `frobnicate //course`); !errors.Is(err, rxview.ErrParse) {
		t.Errorf("Execute parse error = %v, want ErrParse", err)
	}
}

func TestSideEffectPolicySkip(t *testing.T) {
	ctx := context.Background()
	var consulted []rxview.SideEffectInfo
	view := mustView(t, rxview.WithSideEffectPolicy(func(info rxview.SideEffectInfo) rxview.Decision {
		consulted = append(consulted, info)
		return rxview.Skip
	}))
	before, err := view.XML(100000)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := view.Apply(ctx, sharedInsert)
	if err != nil {
		t.Fatalf("Skip decision must not error: %v", err)
	}
	if rep.Applied {
		t.Error("skipped update reported as applied")
	}
	if len(consulted) != 1 || consulted[0].Witnesses == 0 || consulted[0].Delete {
		t.Errorf("policy consultation = %+v", consulted)
	}
	after, err := view.XML(100000)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Error("skipped update changed the view")
	}
}

func TestContextCancellation(t *testing.T) {
	view := mustView(t, rxview.WithForceSideEffects())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before, _ := view.XML(100000)

	if _, err := view.Query(ctx, `//course`); !errors.Is(err, context.Canceled) {
		t.Errorf("Query under cancelled ctx = %v", err)
	}
	u := rxview.Insert(`//course[cno="CS650"]/takenBy`, "student", rxview.Str("S41"), rxview.Str("Zed"))
	if _, err := view.Apply(ctx, u); !errors.Is(err, context.Canceled) {
		t.Errorf("Apply under cancelled ctx = %v", err)
	}
	if _, err := view.Batch(ctx, u, u); !errors.Is(err, context.Canceled) {
		t.Errorf("Batch under cancelled ctx = %v", err)
	}
	after, _ := view.XML(100000)
	if before != after {
		t.Error("cancelled updates changed the view")
	}
	if err := view.CheckConsistency(); err != nil {
		t.Errorf("view inconsistent after cancellations: %v", err)
	}
}

// stateCancelCtx is a context.Context whose Err flips to Canceled as soon as
// the probe reports true — used to cancel a Batch deterministically between
// two of its updates (the probe observes view state only the first update
// changes).
type stateCancelCtx struct {
	context.Context
	probe func() bool
}

func (c *stateCancelCtx) Err() error {
	if c.probe() {
		return context.Canceled
	}
	return nil
}

// TestBatchCancellationOpAttribution asserts that a cancelled Batch reports
// the update that did NOT run and wraps the error with that op — not with
// the last update that succeeded, and not with nothing when cancelled before
// the first op.
func TestBatchCancellationOpAttribution(t *testing.T) {
	u1 := rxview.Insert(`//course[cno="CS650"]/takenBy`, "student", rxview.Str("S51"), rxview.Str("One"))
	u2 := rxview.Insert(`//course[cno="CS650"]/takenBy`, "student", rxview.Str("S52"), rxview.Str("Two"))

	t.Run("cancelled before the first op", func(t *testing.T) {
		view := mustView(t, rxview.WithForceSideEffects())
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		reps, err := view.Batch(ctx, u1, u2)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if len(reps) != 1 || reps[0].Op != u1.String() || reps[0].Applied {
			t.Fatalf("reports = %+v, want one unapplied report for %q", reps, u1)
		}
		if !strings.Contains(err.Error(), u1.String()) {
			t.Errorf("error %q does not name the unprocessed op %q", err, u1)
		}
	})

	t.Run("cancelled mid-batch", func(t *testing.T) {
		view := mustView(t, rxview.WithForceSideEffects())
		rows := func() int {
			n := 0
			for _, tb := range view.DB().Tables() {
				n += tb.Rows
			}
			return n
		}
		before := rows()
		// Cancel once the database has grown — true only after u1's ΔR has
		// executed, so the first cancellation check that fires is the one
		// guarding u2.
		ctx := &stateCancelCtx{Context: context.Background(), probe: func() bool { return rows() > before }}
		reps, err := view.Batch(ctx, u1, u2)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if len(reps) != 2 {
			t.Fatalf("got %d reports, want 2 (applied u1 + unapplied u2)", len(reps))
		}
		if !reps[0].Applied || reps[0].Op != u1.String() {
			t.Errorf("first report = %+v, want applied %q", reps[0], u1)
		}
		if reps[1].Applied || reps[1].Op != u2.String() {
			t.Errorf("last report = %+v, want unapplied %q", reps[1], u2)
		}
		if !strings.Contains(err.Error(), u2.String()) {
			t.Errorf("error %q attributes the cancellation to the wrong op (want %q)", err, u2)
		}
		if strings.Contains(err.Error(), u1.String()) {
			t.Errorf("error %q names the successful op %q", err, u1)
		}
		// The applied prefix must have left consistent auxiliary structures.
		if err := view.CheckConsistency(); err != nil {
			t.Errorf("view inconsistent after mid-batch cancellation: %v", err)
		}
	})
}

// TestBatchEquivalence checks that Batch(u1..uN) produces exactly the final
// state of Apply(u1)..Apply(uN) — including through a mid-batch deletion,
// which forces the deferred maintenance to flush — and that the auxiliary
// structures come out exact (CheckConsistency recomputes L and M from
// scratch and compares).
func TestBatchEquivalence(t *testing.T) {
	ctx := context.Background()
	var updates []rxview.Update
	for i := 0; i < 20; i++ {
		updates = append(updates, rxview.Insert(`//course[cno="CS650"]/takenBy`,
			"student", rxview.Str(fmt.Sprintf("S6%02d", i)), rxview.Str(fmt.Sprintf("N%d", i))))
	}
	updates = append(updates,
		rxview.Insert(`.`, "course", rxview.Str("CS901"), rxview.Str("Batching")),
		rxview.Insert(`//course[cno="CS901"]/prereq`, "course", rxview.Str("CS902"), rxview.Str("Flushing")),
		rxview.Delete(`//course[cno="CS650"]//student[ssn="S602"]`),
		rxview.Insert(`//course[cno="CS902"]/takenBy`, "student", rxview.Str("S699"), rxview.Str("Last")),
	)

	seq := mustView(t, rxview.WithForceSideEffects())
	for i, u := range updates {
		if _, err := seq.Apply(ctx, u); err != nil {
			t.Fatalf("sequential update %d (%s): %v", i, u, err)
		}
	}

	bat := mustView(t, rxview.WithForceSideEffects())
	reports, err := bat.Batch(ctx, updates...)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(reports) != len(updates) {
		t.Fatalf("batch reports = %d, want %d", len(reports), len(updates))
	}
	for i, r := range reports {
		if !r.Applied {
			t.Errorf("batch update %d (%s) not applied", i, updates[i])
		}
	}

	if err := bat.CheckConsistency(); err != nil {
		t.Fatalf("batched view inconsistent: %v", err)
	}
	sx, err := seq.XML(1000000)
	if err != nil {
		t.Fatal(err)
	}
	bx, err := bat.XML(1000000)
	if err != nil {
		t.Fatal(err)
	}
	if sx != bx {
		t.Errorf("batch and sequential views differ:\n--- sequential ---\n%s\n--- batch ---\n%s", sx, bx)
	}
	if s, b := seq.Stats(), bat.Stats(); s != b {
		t.Errorf("stats differ: sequential %v vs batch %v", s, b)
	}
}

// TestBatchStopsAtFirstError checks the documented prefix semantics.
func TestBatchStopsAtFirstError(t *testing.T) {
	ctx := context.Background()
	view := mustView(t) // no forcing: the shared insert fails mid-batch
	good := rxview.Insert(`//course[cno="CS650"]/takenBy`, "student", rxview.Str("S71"), rxview.Str("Pre"))
	never := rxview.Insert(`//course[cno="CS240"]/takenBy`, "student", rxview.Str("S72"), rxview.Str("Post"))

	reports, err := view.Batch(ctx, good, sharedInsert, never)
	if !errors.Is(err, rxview.ErrSideEffect) {
		t.Fatalf("batch error = %v, want ErrSideEffect", err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %d, want 2 (applied prefix + failed update)", len(reports))
	}
	if !reports[0].Applied || reports[1].Applied {
		t.Errorf("prefix semantics violated: %+v", reports)
	}
	if err := view.CheckConsistency(); err != nil {
		t.Fatalf("view inconsistent after failed batch: %v", err)
	}
	if got, _ := view.Query(ctx, `//student[ssn="S71"]`); len(got) == 0 {
		t.Error("prefix update was rolled back")
	}
	if got, _ := view.Query(ctx, `//student[ssn="S72"]`); len(got) != 0 {
		t.Error("suffix update ran after the failure")
	}

	// A malformed update mid-batch behaves the same way: the prefix before
	// it applies, the rest does not.
	pre := rxview.Insert(`//course[cno="CS650"]/takenBy`, "student", rxview.Str("S73"), rxview.Str("Pre2"))
	reports, err = view.Batch(ctx, pre, rxview.Delete(`//course[`), never)
	if !errors.Is(err, rxview.ErrParse) {
		t.Fatalf("batch with malformed update error = %v, want ErrParse", err)
	}
	if len(reports) != 2 || !reports[0].Applied || reports[1].Applied {
		t.Fatalf("parse-failure prefix semantics violated: %+v", reports)
	}
	if got, _ := view.Query(ctx, `//student[ssn="S73"]`); len(got) == 0 {
		t.Error("prefix update before the malformed one was not applied")
	}
	if err := view.CheckConsistency(); err != nil {
		t.Fatalf("view inconsistent after parse-failed batch: %v", err)
	}
}

// TestBatchMaintainCheaper asserts the performance contract directionally:
// the summed maintenance time of a batch of inserts must not exceed the
// sequential cost (the batch benchmark in bench_test.go quantifies the win;
// here we only guard against the deferred path being pathologically slower).
func TestBatchMaintainCheaper(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	ctx := context.Background()
	const n = 100
	mk := func() []rxview.Update {
		us := make([]rxview.Update, n)
		for i := range us {
			us[i] = rxview.Insert(`//course[cno="CS650"]/takenBy`, "student",
				rxview.Str(fmt.Sprintf("S8%03d", i)), rxview.Str("T"))
		}
		return us
	}
	var seqM, batM int64
	// Three rounds to smooth scheduler noise; 2x headroom on the assert.
	for round := 0; round < 3; round++ {
		seq := mustView(t, rxview.WithForceSideEffects())
		for _, u := range mk() {
			rep, err := seq.Apply(ctx, u)
			if err != nil {
				t.Fatal(err)
			}
			seqM += rep.Timings.Maintain.Nanoseconds()
		}
		bat := mustView(t, rxview.WithForceSideEffects())
		reps, err := bat.Batch(ctx, mk()...)
		if err != nil {
			t.Fatal(err)
		}
		for _, rep := range reps {
			batM += rep.Timings.Maintain.Nanoseconds()
		}
	}
	t.Logf("maintain: sequential=%dns batch=%dns", seqM, batM)
	if batM > 2*seqM {
		t.Errorf("batched maintenance (%dns) far exceeds sequential (%dns)", batM, seqM)
	}
}
