package rxview

import (
	"fmt"

	"rxview/internal/core"
)

// Option configures a View at Open time.
type Option func(*config)

type config struct {
	opts core.Options

	// Durability (see WithDurability): zero values mean "not durable".
	durDir    string
	fsync     FsyncPolicy
	ckptEvery int
	warn      func(msg string)
}

// FsyncPolicy selects when committed records reach stable storage; see
// WithFsync.
type FsyncPolicy int

const (
	// FsyncAlways syncs the log after every commit: a returned verdict
	// implies the transaction survives power loss. The slowest policy.
	FsyncAlways FsyncPolicy = iota
	// FsyncBatch syncs the log every few commits (group commit) and on
	// checkpoint and Close. A crash can lose the last unsynced commits,
	// never an interior subset.
	FsyncBatch
	// FsyncOff never syncs explicitly: records still reach the kernel on
	// every commit, so a process kill loses nothing, but an OS crash or
	// power loss can lose the tail.
	FsyncOff
)

// ParseFsyncPolicy parses the textual policy names used by the command-line
// tools: "always", "batch" or "off".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "batch":
		return FsyncBatch, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("rxview: unknown fsync policy %q (want always, batch or off)", s)
}

// WithDurability makes the view durable: committed write units are appended
// to a write-ahead log in dir before their verdict is returned, sealed
// epochs are checkpointed periodically, and Open recovers the newest
// durable state from dir — the checkpoint plus a replay of the log suffix —
// before serving. The caller-provided DB supplies the schema; on recovery
// its contents are replaced by the durable instance. Views opened without
// this option have no durability overhead at all.
func WithDurability(dir string) Option {
	return func(c *config) { c.durDir = dir }
}

// WithFsync sets the log sync policy; the default is FsyncAlways.
func WithFsync(p FsyncPolicy) Option {
	return func(c *config) { c.fsync = p }
}

// WithCheckpointEvery sets how many committed generations elapse between
// automatic checkpoints (default 256). A checkpoint bounds both recovery
// time and log growth: the log prefix it seals is pruned. Smaller values
// checkpoint (and pay full-state serialization) more often.
func WithCheckpointEvery(n int) Option {
	return func(c *config) { c.ckptEvery = n }
}

// WithRecoveryWarn installs a sink for non-fatal durability findings: a
// torn final record truncated during recovery, a corrupt newest checkpoint
// skipped in favor of an older one, a periodic checkpoint that failed (the
// log keeps growing until one succeeds). Without it the findings are
// dropped.
func WithRecoveryWarn(fn func(msg string)) Option {
	return func(c *config) { c.warn = fn }
}

// WithForceSideEffects carries out updates that have XML side effects under
// the revised semantics of §2.1: the change applies to every occurrence of
// the affected shared subtree. Without it (and without a policy) such
// updates fail with ErrSideEffect so the caller can consult the user.
func WithForceSideEffects() Option {
	return func(c *config) { c.opts.ForceSideEffects = true }
}

// WithMaskLimit bounds the per-node state-set count in XPath side-effect
// detection; 0 means the built-in default. Raising it trades memory for
// exactness on views with very heavy sharing.
func WithMaskLimit(n int) Option {
	return func(c *config) { c.opts.MaskLimit = n }
}

// Decision is a side-effect policy's verdict on one update.
type Decision int

// Policy decisions.
const (
	// Reject refuses the update with ErrSideEffect.
	Reject Decision = iota
	// ApplyEverywhere carries the update out at every occurrence of the
	// shared subtree (the revised semantics of §2.1).
	ApplyEverywhere
	// Skip drops the update silently: no error, nothing applied.
	Skip
)

// SideEffectInfo describes a detected XML side effect: applying the update
// to the r[[p]] selected occurrences would also change Witnesses unselected
// occurrences of the same shared subtree.
type SideEffectInfo struct {
	Op        string // the update, rendered
	Delete    bool   // deletion (vs insertion)
	Targets   int    // |r[[p]]|, the selected occurrences
	Witnesses int    // unselected occurrences that would change
}

// WithSideEffectPolicy installs a programmable update strategy: instead of
// the all-or-nothing WithForceSideEffects, the policy decides each
// side-effecting update individually — reject it, apply it everywhere, or
// skip it. The policy takes precedence over WithForceSideEffects. It is
// consulted on Apply, Batch and DryRun alike, so a DryRun predicts exactly
// what Apply would do under the same policy.
func WithSideEffectPolicy(policy func(SideEffectInfo) Decision) Option {
	return func(c *config) {
		c.opts.SideEffectPolicy = func(info core.SideEffectInfo) core.Decision {
			switch policy(SideEffectInfo{
				Op:        info.Op,
				Delete:    info.Delete,
				Targets:   info.Targets,
				Witnesses: info.Witnesses,
			}) {
			case ApplyEverywhere:
				return core.DecisionApply
			case Skip:
				return core.DecisionSkip
			default:
				return core.DecisionReject
			}
		}
	}
}
