package rxview

import "rxview/internal/core"

// Option configures a View at Open time.
type Option func(*config)

type config struct {
	opts core.Options
}

// WithForceSideEffects carries out updates that have XML side effects under
// the revised semantics of §2.1: the change applies to every occurrence of
// the affected shared subtree. Without it (and without a policy) such
// updates fail with ErrSideEffect so the caller can consult the user.
func WithForceSideEffects() Option {
	return func(c *config) { c.opts.ForceSideEffects = true }
}

// WithMaskLimit bounds the per-node state-set count in XPath side-effect
// detection; 0 means the built-in default. Raising it trades memory for
// exactness on views with very heavy sharing.
func WithMaskLimit(n int) Option {
	return func(c *config) { c.opts.MaskLimit = n }
}

// Decision is a side-effect policy's verdict on one update.
type Decision int

// Policy decisions.
const (
	// Reject refuses the update with ErrSideEffect.
	Reject Decision = iota
	// ApplyEverywhere carries the update out at every occurrence of the
	// shared subtree (the revised semantics of §2.1).
	ApplyEverywhere
	// Skip drops the update silently: no error, nothing applied.
	Skip
)

// SideEffectInfo describes a detected XML side effect: applying the update
// to the r[[p]] selected occurrences would also change Witnesses unselected
// occurrences of the same shared subtree.
type SideEffectInfo struct {
	Op        string // the update, rendered
	Delete    bool   // deletion (vs insertion)
	Targets   int    // |r[[p]]|, the selected occurrences
	Witnesses int    // unselected occurrences that would change
}

// WithSideEffectPolicy installs a programmable update strategy: instead of
// the all-or-nothing WithForceSideEffects, the policy decides each
// side-effecting update individually — reject it, apply it everywhere, or
// skip it. The policy takes precedence over WithForceSideEffects. It is
// consulted on Apply, Batch and DryRun alike, so a DryRun predicts exactly
// what Apply would do under the same policy.
func WithSideEffectPolicy(policy func(SideEffectInfo) Decision) Option {
	return func(c *config) {
		c.opts.SideEffectPolicy = func(info core.SideEffectInfo) core.Decision {
			switch policy(SideEffectInfo{
				Op:        info.Op,
				Delete:    info.Delete,
				Targets:   info.Targets,
				Witnesses: info.Witnesses,
			}) {
			case ApplyEverywhere:
				return core.DecisionApply
			case Skip:
				return core.DecisionSkip
			default:
				return core.DecisionReject
			}
		}
	}
}
