package rxview_test

// End-to-end integration tests: long, randomized update sequences over both
// datasets, with the full system invariant ΔX(T) = σ(ΔR(I)) (re-publish and
// compare; L and M revalidated) checked along the way.

import (
	"fmt"
	"math/rand"
	"testing"

	"rxview/internal/core"
	"rxview/internal/workload"
)

func TestIntegrationRegistrarRandomSequences(t *testing.T) {
	courses := []string{"CS650", "CS320", "CS240", "CS501", "CS502", "CS503"}
	students := []string{"S01", "S02", "S11", "S12"}

	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			reg := workload.MustRegistrar()
			sys, err := core.Open(reg.ATG, reg.DB, core.Options{ForceSideEffects: true})
			if err != nil {
				t.Fatal(err)
			}
			applied, rejected := 0, 0
			for step := 0; step < 30; step++ {
				var stmt string
				c := courses[rng.Intn(len(courses))]
				c2 := courses[rng.Intn(len(courses))]
				s := students[rng.Intn(len(students))]
				switch rng.Intn(6) {
				case 0:
					stmt = fmt.Sprintf(`insert course(cno="%s", title="T%s") into .`, c, c)
				case 1:
					stmt = fmt.Sprintf(`insert course(cno="%s", title="T%s") into //course[cno="%s"]/prereq`, c, c, c2)
				case 2:
					stmt = fmt.Sprintf(`insert student(ssn="%s", name="N%s") into //course[cno="%s"]/takenBy`, s, s, c)
				case 3:
					stmt = fmt.Sprintf(`delete //course[cno="%s"]/prereq/course[cno="%s"]`, c2, c)
				case 4:
					stmt = fmt.Sprintf(`delete //course[cno="%s"]//student[ssn="%s"]`, c, s)
				case 5:
					stmt = fmt.Sprintf(`delete //course[cno="%s"]`, c)
				}
				rep, err := sys.Execute(stmt)
				switch {
				case err == nil:
					if rep.Applied {
						applied++
					}
				case core.IsRejected(err):
					rejected++ // legitimate: the update is untranslatable
				default:
					// Structural rejections (cycles, pre-existing titles
					// with different attrs) are fine too; anything else is
					// a bug.
					if !isBenign(err) {
						t.Fatalf("step %d (%s): %v", step, stmt, err)
					}
				}
				if err := sys.CheckConsistency(); err != nil {
					t.Fatalf("step %d (%s): invariant broken: %v", step, stmt, err)
				}
			}
			if applied == 0 {
				t.Error("sequence applied nothing")
			}
			t.Logf("applied=%d rejected=%d", applied, rejected)
		})
	}
}

func isBenign(err error) bool {
	for _, sub := range []string{"cycle", "cannot insert", "attribute has"} {
		if containsStr(err.Error(), sub) {
			return true
		}
	}
	return false
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestIntegrationSyntheticLongSequence(t *testing.T) {
	if testing.Short() {
		t.Skip("long sequence")
	}
	syn, err := workload.NewSynthetic(workload.SyntheticConfig{NC: 220, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.Open(syn.ATG, syn.DB, core.Options{ForceSideEffects: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	applied := 0
	for round := 0; round < 8; round++ {
		var ops []workload.Op
		class := workload.Class(1 + rng.Intn(3))
		if rng.Intn(2) == 0 {
			ops = syn.DeleteWorkload(class, 2, rng.Int63())
		} else {
			ops = syn.InsertWorkload(class, 2, rng.Int63())
		}
		for _, op := range ops {
			rep, err := sys.Execute(op.Stmt)
			if err != nil && !core.IsRejected(err) {
				t.Fatalf("%s: %v", op.Stmt, err)
			}
			if err == nil && rep.Applied {
				applied++
			}
		}
		if err := sys.CheckConsistency(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if applied == 0 {
		t.Error("nothing applied")
	}
}

func TestIntegrationDeleteEverything(t *testing.T) {
	// Tear the whole registrar view down course by course; the database
	// and auxiliary structures must stay consistent at each step, ending
	// with an empty view.
	reg := workload.MustRegistrar()
	sys, err := core.Open(reg.ATG, reg.DB, core.Options{ForceSideEffects: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, cno := range []string{"CS650", "CS320", "CS240"} {
		if _, err := sys.Execute(fmt.Sprintf(`delete //course[cno="%s"]`, cno)); err != nil {
			t.Fatalf("delete %s: %v", cno, err)
		}
		if err := sys.CheckConsistency(); err != nil {
			t.Fatalf("after %s: %v", cno, err)
		}
	}
	if got, _ := sys.Query(`//course`); len(got) != 0 {
		t.Errorf("courses left: %v", got)
	}
	st := sys.Stats()
	if st.Nodes != 1 { // just the root
		t.Errorf("nodes left = %d", st.Nodes)
	}
	// Rebuild on the emptied view.
	if _, err := sys.Execute(`insert course(cno="CS900", title="Rebirth") into .`); err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if got, _ := sys.Query(`//course`); len(got) != 1 {
		t.Errorf("rebuild failed: %v", got)
	}
}
