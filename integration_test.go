package rxview_test

// End-to-end integration tests: long, randomized update sequences over both
// datasets, with the full system invariant ΔX(T) = σ(ΔR(I)) (re-publish and
// compare; L and M revalidated) checked along the way. Everything here goes
// through the public rxview API.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"rxview"
)

func TestIntegrationRegistrarRandomSequences(t *testing.T) {
	ctx := context.Background()
	courses := []string{"CS650", "CS320", "CS240", "CS501", "CS502", "CS503"}
	students := []string{"S01", "S02", "S11", "S12"}

	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			atg, db := rxview.MustRegistrar()
			view, err := rxview.Open(atg, db, rxview.WithForceSideEffects())
			if err != nil {
				t.Fatal(err)
			}
			applied, rejected := 0, 0
			for step := 0; step < 30; step++ {
				var stmt string
				c := courses[rng.Intn(len(courses))]
				c2 := courses[rng.Intn(len(courses))]
				s := students[rng.Intn(len(students))]
				switch rng.Intn(6) {
				case 0:
					stmt = fmt.Sprintf(`insert course(cno="%s", title="T%s") into .`, c, c)
				case 1:
					stmt = fmt.Sprintf(`insert course(cno="%s", title="T%s") into //course[cno="%s"]/prereq`, c, c, c2)
				case 2:
					stmt = fmt.Sprintf(`insert student(ssn="%s", name="N%s") into //course[cno="%s"]/takenBy`, s, s, c)
				case 3:
					stmt = fmt.Sprintf(`delete //course[cno="%s"]/prereq/course[cno="%s"]`, c2, c)
				case 4:
					stmt = fmt.Sprintf(`delete //course[cno="%s"]//student[ssn="%s"]`, c, s)
				case 5:
					stmt = fmt.Sprintf(`delete //course[cno="%s"]`, c)
				}
				rep, err := view.Execute(ctx, stmt)
				switch {
				case err == nil:
					if rep.Applied {
						applied++
					}
				case errors.Is(err, rxview.ErrNotUpdatable):
					rejected++ // legitimate: the update is untranslatable
				default:
					// Structural rejections (cycles, pre-existing titles
					// with different attrs) are fine too; anything else is
					// a bug.
					if !isBenign(err) {
						t.Fatalf("step %d (%s): %v", step, stmt, err)
					}
				}
				if err := view.CheckConsistency(); err != nil {
					t.Fatalf("step %d (%s): invariant broken: %v", step, stmt, err)
				}
			}
			if applied == 0 {
				t.Error("sequence applied nothing")
			}
			t.Logf("applied=%d rejected=%d", applied, rejected)
		})
	}
}

func isBenign(err error) bool {
	for _, sub := range []string{"cycle", "cannot insert", "attribute has"} {
		if strings.Contains(err.Error(), sub) {
			return true
		}
	}
	return false
}

func TestIntegrationSyntheticLongSequence(t *testing.T) {
	if testing.Short() {
		t.Skip("long sequence")
	}
	ctx := context.Background()
	syn, err := rxview.NewSynthetic(rxview.SyntheticConfig{NC: 220, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	view, err := rxview.Open(syn.ATG, syn.DB, rxview.WithForceSideEffects())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	applied := 0
	for round := 0; round < 8; round++ {
		var stmts []string
		class := rxview.WorkloadClass(1 + rng.Intn(3))
		if rng.Intn(2) == 0 {
			stmts = syn.DeleteWorkload(class, 2, rng.Int63())
		} else {
			stmts = syn.InsertWorkload(class, 2, rng.Int63())
		}
		for _, stmt := range stmts {
			rep, err := view.Execute(ctx, stmt)
			if err != nil && !errors.Is(err, rxview.ErrNotUpdatable) {
				t.Fatalf("%s: %v", stmt, err)
			}
			if err == nil && rep.Applied {
				applied++
			}
		}
		if err := view.CheckConsistency(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if applied == 0 {
		t.Error("nothing applied")
	}
}

func TestIntegrationDeleteEverything(t *testing.T) {
	// Tear the whole registrar view down course by course; the database
	// and auxiliary structures must stay consistent at each step, ending
	// with an empty view.
	ctx := context.Background()
	atg, db := rxview.MustRegistrar()
	view, err := rxview.Open(atg, db, rxview.WithForceSideEffects())
	if err != nil {
		t.Fatal(err)
	}
	for _, cno := range []string{"CS650", "CS320", "CS240"} {
		if _, err := view.Apply(ctx, rxview.Delete(fmt.Sprintf(`//course[cno="%s"]`, cno))); err != nil {
			t.Fatalf("delete %s: %v", cno, err)
		}
		if err := view.CheckConsistency(); err != nil {
			t.Fatalf("after %s: %v", cno, err)
		}
	}
	if got, _ := view.Query(ctx, `//course`); len(got) != 0 {
		t.Errorf("courses left: %v", got)
	}
	st := view.Stats()
	if st.Nodes != 1 { // just the root
		t.Errorf("nodes left = %d", st.Nodes)
	}
	// Rebuild on the emptied view.
	if _, err := view.Apply(ctx, rxview.Insert(`.`, "course", rxview.Str("CS900"), rxview.Str("Rebirth"))); err != nil {
		t.Fatal(err)
	}
	if err := view.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if got, _ := view.Query(ctx, `//course`); len(got) != 1 {
		t.Errorf("rebuild failed: %v", got)
	}
}
