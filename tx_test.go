package rxview_test

// Tests of the transactional update API: atomic commit, read-your-writes
// staging, exact rollback, generation semantics, and the wire-stability of
// the public value types.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	"rxview"
)

// viewFingerprint captures everything the public surface exposes of the
// view + database state: the serialized view, the statistics line (|L|,
// |M|, base rows included), the per-table row counts and the generation.
func viewFingerprint(t *testing.T, v *rxview.View) string {
	t.Helper()
	xml, err := v.XML(500000)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "gen=%d\nstats=%s\n", v.Generation(), v.Stats())
	for _, tb := range v.DB().Tables() {
		fmt.Fprintf(&b, "table %s=%d\n", tb.Name, tb.Rows)
	}
	b.WriteString(xml)
	return b.String()
}

// txGroup is a group exercising insert deferral, flush-before-delete and
// the GC cascade: a fresh course, a prereq under it, a deletion of an
// enrolled student occurrence, and a student under the fresh prereq.
func txGroup() []rxview.Update {
	return []rxview.Update{
		rxview.Insert(`.`, "course", rxview.Str("CS111"), rxview.Str("Intro")),
		rxview.Insert(`//course[cno="CS111"]/prereq`, "course", rxview.Str("CS112"), rxview.Str("Intro II")),
		rxview.Delete(`//course[cno="CS320"]//student[ssn="S02"]`),
		rxview.Insert(`//course[cno="CS112"]/takenBy`, "student", rxview.Str("S09"), rxview.Str("Ida")),
	}
}

func TestTxCommitIsOneGenerationAndStateEqualsApplies(t *testing.T) {
	ctx := context.Background()
	txView, seqView := mustView(t), mustView(t)
	group := txGroup()

	tx, err := txView.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range group {
		rep, err := tx.Stage(ctx, u)
		if err != nil {
			t.Fatalf("stage %d (%s): %v", i, u, err)
		}
		if !rep.Applied {
			t.Fatalf("stage %d (%s) did not apply", i, u)
		}
	}
	// Read-your-writes before Commit: the staged course is selectable.
	nodes, err := tx.Query(ctx, `//course[cno="CS111"]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 {
		t.Fatalf("staged write invisible to Tx.Query: %v", nodes)
	}
	if err := tx.Validate(); err != nil {
		t.Fatalf("Validate = %v, want nil", err)
	}
	if txView.Generation() != 0 {
		t.Fatalf("generation moved before Commit: %d", txView.Generation())
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if txView.Generation() != 1 {
		t.Fatalf("generation = %d after Commit, want exactly 1", txView.Generation())
	}
	if got := len(tx.Reports()); got != len(group) {
		t.Fatalf("reports = %d, want %d", got, len(group))
	}

	for _, u := range group {
		if _, err := seqView.Apply(ctx, u); err != nil {
			t.Fatalf("apply %s: %v", u, err)
		}
	}
	txFP := strings.Replace(viewFingerprint(t, txView), "gen=1\n", "gen=*\n", 1)
	seqFP := strings.Replace(viewFingerprint(t, seqView), fmt.Sprintf("gen=%d\n", len(group)), "gen=*\n", 1)
	if txFP != seqFP {
		t.Fatalf("transaction state differs from sequential applies:\n--- tx ---\n%s\n--- seq ---\n%s", txFP, seqFP)
	}
	if err := txView.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestTxSyntheticWorkloadDifferential(t *testing.T) {
	ctx := context.Background()
	mk := func() *rxview.View {
		syn, err := rxview.NewSynthetic(rxview.SyntheticConfig{NC: 150, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		v, err := rxview.Open(syn.ATG, syn.DB, rxview.WithForceSideEffects())
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	txView, seqView := mk(), mk()
	syn, err := rxview.NewSynthetic(rxview.SyntheticConfig{NC: 150, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	stmts := append(syn.InsertWorkload(rxview.W2, 6, 99), syn.DeleteWorkload(rxview.W1, 2, 17)...)

	tx, err := txView.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	staged := 0
	for _, stmt := range stmts {
		if _, err := tx.Execute(ctx, stmt); err != nil {
			t.Fatalf("stage %q: %v", stmt, err)
		}
		staged++
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	for _, stmt := range stmts {
		if _, err := seqView.Execute(ctx, stmt); err != nil {
			t.Fatalf("apply %q: %v", stmt, err)
		}
	}
	txFP := viewFingerprint(t, txView)
	seqFP := viewFingerprint(t, seqView)
	txFP = txFP[strings.Index(txFP, "stats="):]
	seqFP = seqFP[strings.Index(seqFP, "stats="):]
	if txFP != seqFP {
		t.Fatalf("synthetic differential mismatch after %d staged ops:\n--- tx ---\n%.600s\n--- seq ---\n%.600s", staged, txFP, seqFP)
	}
	if err := txView.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if err := seqView.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestTxMiddleRejectionRestoresPreBeginState(t *testing.T) {
	ctx := context.Background()
	view := mustView(t) // side effects NOT forced: sharedInsert is rejected
	want := viewFingerprint(t, view)
	group := txGroup()

	tx, err := view.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Stage(ctx, group[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Stage(ctx, group[2]); err != nil { // a delete: M is mutated, then restored
		t.Fatal(err)
	}
	if _, err := tx.Stage(ctx, sharedInsert); !errors.Is(err, rxview.ErrSideEffect) {
		t.Fatalf("staging the shared insert = %v, want ErrSideEffect", err)
	}
	if err := tx.Validate(); !errors.Is(err, rxview.ErrSideEffect) {
		t.Fatalf("Validate = %v, want the group rejection", err)
	}
	// Later stages are refused with the same rejection.
	if _, err := tx.Stage(ctx, group[3]); !errors.Is(err, rxview.ErrSideEffect) {
		t.Fatalf("stage after doom = %v", err)
	}
	if err := tx.Commit(ctx); !errors.Is(err, rxview.ErrSideEffect) {
		t.Fatalf("Commit = %v, want the group rejection", err)
	}
	if got := viewFingerprint(t, view); got != want {
		t.Fatalf("state after rejected Commit differs from pre-Begin:\n--- got ---\n%.600s\n--- want ---\n%.600s", got, want)
	}
	if err := view.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestTxRollbackRestoresPreBeginState(t *testing.T) {
	ctx := context.Background()
	view := mustView(t, rxview.WithForceSideEffects())
	want := viewFingerprint(t, view)

	tx, err := view.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range txGroup() {
		if _, err := tx.Stage(ctx, u); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := viewFingerprint(t, view); got != want {
		t.Fatal("state after Rollback differs from pre-Begin")
	}
	if err := view.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal("Rollback must be idempotent")
	}
	// The write path is released: a direct Apply works again.
	if _, err := view.Apply(ctx, txGroup()[0]); err != nil {
		t.Fatal(err)
	}
}

func TestTxParseFailureDoomsGroup(t *testing.T) {
	ctx := context.Background()
	view := mustView(t)
	want := viewFingerprint(t, view)

	tx, err := view.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Stage(ctx, txGroup()[0]); err != nil {
		t.Fatal(err)
	}
	bad := rxview.Delete("///[")
	if _, err := tx.Stage(ctx, bad); !errors.Is(err, rxview.ErrParse) {
		t.Fatalf("stage malformed = %v, want ErrParse", err)
	}
	var pe *rxview.ParseError
	if err := tx.Validate(); !errors.As(err, &pe) || pe.Op != bad.String() {
		t.Fatalf("Validate = %v, want ParseError naming %q", err, bad.String())
	}
	if err := tx.Commit(ctx); !errors.Is(err, rxview.ErrParse) {
		t.Fatalf("Commit = %v, want ErrParse", err)
	}
	if got := viewFingerprint(t, view); got != want {
		t.Fatal("doomed parse transaction left state changed")
	}
}

func TestTxLifecycleAndGuards(t *testing.T) {
	ctx := context.Background()
	view := mustView(t)
	tx, err := view.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := view.Begin(ctx); !errors.Is(err, rxview.ErrTxOpen) {
		t.Fatalf("second Begin = %v, want ErrTxOpen", err)
	}
	if _, err := view.Apply(ctx, txGroup()[0]); !errors.Is(err, rxview.ErrTxOpen) {
		t.Fatalf("Apply during tx = %v, want ErrTxOpen", err)
	}
	if _, err := view.Batch(ctx, txGroup()...); !errors.Is(err, rxview.ErrTxOpen) {
		t.Fatalf("Batch during tx = %v, want ErrTxOpen", err)
	}
	if _, err := view.Execute(ctx, `delete //course[cno="CS999"]`); !errors.Is(err, rxview.ErrTxOpen) {
		t.Fatalf("Execute during tx = %v, want ErrTxOpen", err)
	}
	// Reads stay available and see the staged state.
	if _, err := tx.Stage(ctx, txGroup()[0]); err != nil {
		t.Fatal(err)
	}
	if nodes, err := view.Query(ctx, `//course[cno="CS111"]`); err != nil || len(nodes) != 1 {
		t.Fatalf("View.Query during tx = %v, %v", nodes, err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(ctx); !errors.Is(err, rxview.ErrTxDone) {
		t.Fatalf("double Commit = %v, want ErrTxDone", err)
	}
	if _, err := tx.Stage(ctx, txGroup()[1]); !errors.Is(err, rxview.ErrTxDone) {
		t.Fatalf("Stage after Commit = %v, want ErrTxDone", err)
	}
	if _, err := tx.Execute(ctx, `delete //x`); !errors.Is(err, rxview.ErrTxDone) {
		t.Fatalf("Execute after Commit = %v, want ErrTxDone", err)
	}
}

func TestTxNoOpGroupDoesNotAdvanceGeneration(t *testing.T) {
	ctx := context.Background()
	view := mustView(t)
	tx, err := view.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Selects nothing: stages as a no-op, not an error.
	rep, err := tx.Stage(ctx, rxview.Delete(`//course[cno="NOPE"]`))
	if err != nil || rep.Applied {
		t.Fatalf("no-op stage = %+v, %v", rep, err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if view.Generation() != 0 {
		t.Fatalf("no-op transaction advanced generation to %d", view.Generation())
	}
}

// Snapshot during an open transaction must fail loudly and clearly: an
// epoch can never expose staged-but-uncommitted state.
func TestSnapshotDuringTxPanicsClearly(t *testing.T) {
	ctx := context.Background()
	view := mustView(t)
	tx, err := view.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	if _, err := tx.Stage(ctx, txGroup()[0]); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Snapshot during open transaction did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "transaction") {
			t.Fatalf("panic message does not explain the cause: %v", r)
		}
	}()
	view.Snapshot()
}

// Values must round-trip through JSON across the full int64 range: decoding
// goes through json.Number, not float64.
func TestValueJSONRoundTripLargeInt(t *testing.T) {
	for _, v := range []rxview.Value{
		rxview.Int(1 << 60), rxview.Int(-(1 << 60) - 7), rxview.Int(0),
		rxview.Str("x"), rxview.Bool(true), rxview.Null(),
	} {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		var back rxview.Value
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back.Kind() != v.Kind() || back.Num() != v.Num() || back.Text() != v.Text() {
			t.Fatalf("round-trip %s: got %s (%v)", v, back, back.Kind())
		}
	}
	var v rxview.Value
	if err := json.Unmarshal([]byte("1.5"), &v); err == nil {
		t.Fatal("fractional number accepted")
	}
}

// Satellite: a malformed update must be attributed to its member wherever
// it sits in the batch — leading included.
func TestBatchCompileErrorAttribution(t *testing.T) {
	ctx := context.Background()
	bad := rxview.Delete("///[")

	t.Run("leading", func(t *testing.T) {
		view := mustView(t)
		reps, err := view.Batch(ctx, bad, txGroup()[0])
		if !errors.Is(err, rxview.ErrParse) {
			t.Fatalf("err = %v, want ErrParse", err)
		}
		var pe *rxview.ParseError
		if !errors.As(err, &pe) || pe.Op != bad.String() {
			t.Fatalf("ParseError.Op = %v, want %q", err, bad.String())
		}
		if !strings.Contains(err.Error(), bad.String()) {
			t.Fatalf("error does not name the update: %v", err)
		}
		if len(reps) != 1 || reps[0].Op != bad.String() || reps[0].Applied {
			t.Fatalf("reports = %+v, want one unapplied report naming the bad update", reps)
		}
		if view.Generation() != 0 {
			t.Fatal("nothing should have applied")
		}
	})

	t.Run("mid-batch", func(t *testing.T) {
		view := mustView(t)
		good := txGroup()[0]
		reps, err := view.Batch(ctx, good, bad, txGroup()[1])
		if !errors.Is(err, rxview.ErrParse) {
			t.Fatalf("err = %v, want ErrParse", err)
		}
		var pe *rxview.ParseError
		if !errors.As(err, &pe) || pe.Op != bad.String() {
			t.Fatalf("ParseError.Op = %v, want %q", err, bad.String())
		}
		if len(reps) != 2 || reps[0].Op != good.String() || !reps[0].Applied {
			t.Fatalf("prefix reports = %+v", reps)
		}
		if reps[1].Op != bad.String() || reps[1].Applied {
			t.Fatalf("failing report = %+v", reps[1])
		}
		if view.Generation() != 1 {
			t.Fatalf("prefix not applied: generation = %d", view.Generation())
		}
	})
}

// Satellite: the wire names of Report, Timings and Mutation are stable
// documented json tags (Stats already had them).
func TestReportJSONFieldNames(t *testing.T) {
	ctx := context.Background()
	view := mustView(t)
	rep, err := view.Apply(ctx, txGroup()[0])
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"op", "applied", "targets", "edges", "side_effects",
		"dv_inserts", "dv_deletes", "changes", "removed", "timings"} {
		if _, ok := m[key]; !ok {
			t.Errorf("Report JSON missing %q: %s", key, data)
		}
	}
	timings, ok := m["timings"].(map[string]any)
	if !ok {
		t.Fatalf("timings not an object: %s", data)
	}
	for _, key := range []string{"validate_ns", "eval_ns", "translate_ns",
		"x_to_dv_ns", "dv_to_dr_ns", "apply_ns", "maintain_ns"} {
		if _, ok := timings[key]; !ok {
			t.Errorf("Timings JSON missing %q: %s", key, data)
		}
	}
	changes, ok := m["changes"].([]any)
	if !ok || len(changes) == 0 {
		t.Fatalf("changes missing from %s", data)
	}
	mut, ok := changes[0].(map[string]any)
	if !ok {
		t.Fatal("mutation not an object")
	}
	for _, key := range []string{"table", "insert", "tuple"} {
		if _, ok := mut[key]; !ok {
			t.Errorf("Mutation JSON missing %q: %s", key, data)
		}
	}
	// Values marshal in native JSON form and round-trip.
	var back rxview.Mutation
	raw, _ := json.Marshal(rep.Changes[0])
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.String() != rep.Changes[0].String() {
		t.Fatalf("mutation round-trip: %s != %s", back.String(), rep.Changes[0].String())
	}
}
