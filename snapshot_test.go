package rxview_test

// Tests of the snapshot/generation surface that the server package builds
// on: isolation (a snapshot never observes later writes), generation
// attribution (one bump per applied mutation, none for rejections and
// no-ops), and equality of a snapshot's answers with the live view's at the
// same generation.

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"rxview"
)

func TestSnapshotIsolation(t *testing.T) {
	ctx := context.Background()
	view := mustView(t, rxview.WithForceSideEffects())

	const q = `//course[cno="CS650"]/takenBy/student`
	before, err := view.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	snap := view.Snapshot()
	gen0 := view.Generation()
	if snap.Generation() != gen0 {
		t.Fatalf("snapshot generation %d != view generation %d", snap.Generation(), gen0)
	}

	// Write through the live view: the snapshot must not move.
	u := rxview.Insert(`//course[cno="CS650"]/takenBy`, "student", rxview.Str("S90"), rxview.Str("Iso"))
	if rep, err := view.Apply(ctx, u); err != nil || !rep.Applied {
		t.Fatalf("apply: rep=%+v err=%v", rep, err)
	}
	if view.Generation() != gen0+1 {
		t.Fatalf("generation after one applied update = %d, want %d", view.Generation(), gen0+1)
	}
	if snap.Generation() != gen0 {
		t.Error("snapshot generation moved with the live view")
	}

	after, err := view.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before)+1 {
		t.Fatalf("live view result = %d nodes, want %d", len(after), len(before)+1)
	}
	frozen, err := snap.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(frozen) != len(before) {
		t.Errorf("snapshot result = %d nodes, want the pre-write %d", len(frozen), len(before))
	}

	// A fresh snapshot sees the write; stats and XML agree with the live view.
	snap2 := view.Snapshot()
	if snap2.Generation() != gen0+1 {
		t.Errorf("fresh snapshot generation = %d, want %d", snap2.Generation(), gen0+1)
	}
	if vs, ss := view.Stats(), snap2.Stats(); vs != ss {
		t.Errorf("stats differ: view %v vs snapshot %v", vs, ss)
	}
	vx, err := view.XML(100000)
	if err != nil {
		t.Fatal(err)
	}
	sx, err := snap2.XML(100000)
	if err != nil {
		t.Fatal(err)
	}
	if vx != sx {
		t.Error("snapshot XML differs from the live view at the same generation")
	}
}

func TestGenerationDoesNotCountNonMutations(t *testing.T) {
	ctx := context.Background()
	view := mustView(t) // side effects rejected
	gen0 := view.Generation()

	if _, err := view.Apply(ctx, sharedInsert); !errors.Is(err, rxview.ErrSideEffect) {
		t.Fatalf("want side-effect rejection, got %v", err)
	}
	if _, err := view.DryRun(ctx, rxview.Insert(`//course[cno="CS650"]/takenBy`,
		"student", rxview.Str("S91"), rxview.Str("Dry"))); err != nil {
		t.Fatalf("dry run: %v", err)
	}
	if rep, err := view.Apply(ctx, rxview.Delete(`//course[cno="NOPE"]`)); err != nil || rep.Applied {
		t.Fatalf("no-op delete: rep=%+v err=%v", rep, err)
	}
	if view.Generation() != gen0 {
		t.Errorf("generation moved to %d without an applied mutation (was %d)", view.Generation(), gen0)
	}
}

func TestGenerationCountsBatchMembers(t *testing.T) {
	ctx := context.Background()
	view := mustView(t, rxview.WithForceSideEffects())
	gen0 := view.Generation()
	var updates []rxview.Update
	for i := 0; i < 5; i++ {
		updates = append(updates, rxview.Insert(`//course[cno="CS650"]/takenBy`,
			"student", rxview.Str(fmt.Sprintf("S92%d", i)), rxview.Str("Gen")))
	}
	reps, err := view.Batch(ctx, updates...)
	if err != nil {
		t.Fatal(err)
	}
	applied := 0
	for _, r := range reps {
		if r.Applied {
			applied++
		}
	}
	if got := view.Generation(); got != gen0+uint64(applied) {
		t.Errorf("generation = %d after %d applied batch members (started at %d)", got, applied, gen0)
	}
	// The snapshot taken after the batch answers exactly like the view.
	snap := view.Snapshot()
	vq, err := view.Query(ctx, `//student`)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := snap.Query(ctx, `//student`)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(vq) != fmt.Sprint(sq) {
		t.Errorf("snapshot query differs from view query at same generation:\n%v\n%v", sq, vq)
	}
}

func TestSnapshotQueryErrors(t *testing.T) {
	ctx := context.Background()
	snap := mustView(t).Snapshot()
	if _, err := snap.Query(ctx, `//course[`); !errors.Is(err, rxview.ErrParse) {
		t.Errorf("snapshot parse error = %v, want ErrParse", err)
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := snap.Query(cctx, `//course`); !errors.Is(err, context.Canceled) {
		t.Errorf("snapshot query under cancelled ctx = %v, want Canceled", err)
	}
}
