module rxview

go 1.24
