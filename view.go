package rxview

import (
	"context"
	"io"
	"sync/atomic"

	"rxview/internal/core"
	"rxview/internal/update"
	"rxview/internal/wal"
)

// View is a published recursive XML view of a relational database, with
// update support: the full pipeline of the paper — DAG-compressed
// publication (§2.3), XPath evaluation with side-effect detection (§3),
// ΔX→ΔV→ΔR update translation (§4), and incremental maintenance of the
// auxiliary structures L and M (§3.4).
//
// A View is not safe for concurrent use.
type View struct {
	sys *core.System
	db  *DB

	// Durability state; all nil/zero on a view opened without
	// WithDurability.
	log       *wal.Log
	warn      func(msg string)
	ckptEvery uint64      // commits between automatic checkpoints
	ckptGen   uint64      // generation of the newest checkpoint
	ckptBusy  atomic.Bool // a checkpoint is being written right now

	// Degraded (read-only) mode, entered when the log refuses a commit
	// record: writes are rejected with ErrDegraded until Recover succeeds,
	// reads keep serving. degradedCause is written and read only on the
	// writer's goroutine; the flag itself is readable from anywhere (health
	// probes), like Checkpointing.
	degraded      atomic.Bool
	degradedCause error
}

// Open publishes σ(I): it evaluates the ATG over the database, compresses
// the result into a DAG, builds the auxiliary structures L (topological
// order) and M (reachability matrix) and the translator's source index, and
// returns the live view. The database stays attached: updates applied to the
// view execute their relational translation ΔR against it.
//
// With WithDurability, Open instead recovers the durable state from the log
// directory (the caller-provided DB supplies the schema; its contents are
// replaced by the recovered instance), verifies it with CheckConsistency,
// and makes every subsequent commit durable before its verdict is returned.
func Open(a *ATG, db *DB, opts ...Option) (*View, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.durDir != "" {
		return openDurable(a, db, &cfg)
	}
	sys, err := core.Open(a.c, db.db, cfg.opts)
	if err != nil {
		return nil, err
	}
	return &View{sys: sys, db: db}, nil
}

// DB returns the database instance the view publishes.
func (v *View) DB() *DB { return v.db }

// Query evaluates an XPath expression over the view and returns the selected
// nodes r[[p]]. Supported: child and descendant-or-self axes, wildcards,
// and predicates on attribute fields / text content, per the fragment of
// §2.1.
func (v *View) Query(ctx context.Context, path string) ([]Node, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p, err := core.ParsePath(path)
	if err != nil {
		return nil, parseErr(path, err)
	}
	res, err := v.sys.Eval(p)
	if err != nil {
		return nil, err
	}
	return nodesOf(v.sys.DAG, v.sys.ATG.Text(v.sys.DAG), res.Selected), nil
}

// Apply runs the full pipeline for one update: DTD validation, XPath
// evaluation with side-effect detection, ΔX→ΔV→ΔR translation, execution of
// ΔR against the database and ΔV against the view, and maintenance of L and
// M. Cancellation is honored between the phases; once ΔR has executed the
// update is carried through, so a cancelled context never leaves the
// auxiliary structures stale. It is a one-shot transaction — for a single
// update, atomicity and prefix semantics coincide; for an all-or-nothing
// group use Begin.
//
// The error, if any, matches ErrParse, ErrSideEffect or ErrNotUpdatable
// under errors.Is when the update was rejected for the corresponding
// reason (ErrTxOpen while a Begin transaction is open); the report is
// always returned with whatever phases completed.
func (v *View) Apply(ctx context.Context, u Update) (*Report, error) {
	op, err := u.compile()
	if err != nil {
		return &Report{Op: u.String()}, err
	}
	if v.degraded.Load() {
		return &Report{Op: op.String()}, &DegradedError{Cause: v.degradedCause}
	}
	rep, err := v.sys.ApplyCtx(ctx, op)
	out := reportOf(rep)
	err = wrapErr(op.String(), err)
	if out != nil && out.Applied {
		err = degradedApplied(err)
	}
	return out, err
}

// DryRun answers the updatability question for one update without changing
// anything: it runs validation, evaluation, side-effect detection and the
// full relational translation, then rolls everything back. The report shows
// what Apply would have done (including ΔR) and the error is exactly what
// Apply would have returned — the paper's updatability problem (§4.1) as an
// API.
func (v *View) DryRun(ctx context.Context, u Update) (*Report, error) {
	op, err := u.compile()
	if err != nil {
		return &Report{Op: u.String()}, err
	}
	rep, err := v.sys.DryRunCtx(ctx, op)
	return reportOf(rep), wrapErr(op.String(), err)
}

// Batch applies a sequence of updates with a single deferred maintenance
// pass over L and M: each update is validated, evaluated and translated
// individually (the result state is identical to the same sequence of Apply
// calls), but the closure maintenance of M for consecutive insertions is
// coalesced and flushed once, which is substantially cheaper than paying
// ∆(M,L)insert per update. It is a one-shot non-atomic transaction; for an
// all-or-nothing group use Begin.
//
// The batch is not atomic: it stops at the first failing update, with every
// earlier update already applied and the auxiliary structures repaired. The
// returned reports cover the processed prefix, ending with a report for the
// update that failed — on cancellation that is an unapplied report for the
// first update that did not run — and the error names that update, never
// the last one that succeeded; a malformed update is named the same way,
// wherever it sits in the batch. Summing Timings.Maintain over the reports
// gives the batch's true total maintenance cost.
func (v *View) Batch(ctx context.Context, updates ...Update) ([]*Report, error) {
	if v.degraded.Load() {
		return nil, &DegradedError{Cause: v.degradedCause}
	}
	// Compile up to the first malformed update: the prefix before it still
	// runs, preserving the Apply-sequence equivalence.
	ops := make([]*update.Op, 0, len(updates))
	var compileErr error
	var failed Update
	for _, u := range updates {
		op, err := u.compile()
		if err != nil {
			compileErr, failed = err, u
			break
		}
		ops = append(ops, op)
	}
	reps, err := v.sys.ApplyBatch(ctx, ops)
	out := reportsOf(reps)
	if err != nil {
		// The failing update is the last processed one; attribute the error
		// to it. An empty prefix means the batch could not start at all
		// (e.g. an open transaction owns the write path).
		if len(out) > 0 {
			err = wrapErr(out[len(out)-1].Op, err)
			if out[len(out)-1].Applied {
				// A durability failure at the batch commit: the processed
				// prefix is applied in memory but not on disk.
				err = degradedApplied(err)
			}
		} else {
			err = wrapErr("batch", err)
		}
		return out, err
	}
	if compileErr != nil {
		// One consistent shape wherever the malformed update sits — leading
		// included: the reports end with an unapplied report for it and the
		// error names it, exactly like a runtime rejection.
		return append(out, &Report{Op: failed.String()}), withOp(compileErr, failed.String())
	}
	return out, nil
}

// Execute parses and applies one textual update statement, as a one-shot
// transaction like Apply:
//
//	insert type(field=value, ...) into xpath
//	delete xpath
func (v *View) Execute(ctx context.Context, stmt string) (*Report, error) {
	op, err := update.ParseStatement(v.sys.ATG, stmt)
	if err != nil {
		return &Report{Op: stmt}, parseErr(stmt, err)
	}
	if v.degraded.Load() {
		return &Report{Op: op.String()}, &DegradedError{Cause: v.degradedCause}
	}
	rep, err := v.sys.ApplyCtx(ctx, op)
	out := reportOf(rep)
	err = wrapErr(op.String(), err)
	if out != nil && out.Applied {
		err = degradedApplied(err)
	}
	return out, err
}

// Stats computes current view statistics.
func (v *View) Stats() Stats { return statsOf(v.sys.Stats()) }

// CheckConsistency verifies the system invariant ΔX(T) = σ(ΔR(I)): the
// incrementally maintained DAG must equal a fresh publication of the current
// database, L must be a valid topological order, and M the exact transitive
// closure.
func (v *View) CheckConsistency() error { return v.sys.CheckConsistency() }

// WriteXML serializes the unfolded XML view; maxNodes bounds the tree size
// (recursive views can be exponentially larger than their DAG).
func (v *View) WriteXML(w io.Writer, maxNodes int) error {
	return v.sys.WriteXML(w, maxNodes)
}

// XML returns the serialized view, or an error if it exceeds the budget.
func (v *View) XML(maxNodes int) (string, error) { return v.sys.XML(maxNodes) }
