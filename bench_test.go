package rxview_test

// One benchmark per table/figure of the paper's evaluation (§5). Each
// reports the phase breakdown of Fig.11 as custom metrics (ms/op):
//
//	(a) eval-ms        XPath evaluation on the DAG
//	(b) translate-ms   ΔX→ΔV→ΔR translation + execution
//	(c) maintain-ms    ∆(M,L) maintenance (background in the paper)
//
// Sizes default to laptop scale; cmd/benchrunner sweeps larger sizes and
// prints paper-style tables (use -sizes up to 1000000).

import (
	"context"
	"fmt"
	"testing"
	"time"

	"rxview"
)

var benchSizes = []int{1000, 5000, 20000}

func reportPhases(b *testing.B, p rxview.Phases, ops int) {
	if ops == 0 {
		return
	}
	n := float64(ops)
	b.ReportMetric(float64(p.Eval.Microseconds())/1000/n, "eval-ms")
	b.ReportMetric(float64(p.Translate().Microseconds())/1000/n, "translate-ms")
	b.ReportMetric(float64(p.Maintain.Microseconds())/1000/n, "maintain-ms")
}

// BenchmarkFig10bStats regenerates the dataset statistics of Fig.10(b).
func BenchmarkFig10bStats(b *testing.B) {
	for _, nc := range benchSizes {
		b.Run(fmt.Sprintf("C=%d", nc), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st, _, err := rxview.DatasetStats(nc, 42)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(st.Nodes), "dag-nodes")
					b.ReportMetric(st.TreeSize, "tree-nodes")
					b.ReportMetric(float64(st.MatrixPairs), "M-pairs")
					b.ReportMetric(100*st.SharedFrac, "shared-pct")
				}
			}
		})
	}
}

func benchWorkload(b *testing.B, deletes bool) {
	for _, nc := range benchSizes {
		for _, class := range []rxview.WorkloadClass{rxview.W1, rxview.W2, rxview.W3} {
			b.Run(fmt.Sprintf("C=%d/%s", nc, class), func(b *testing.B) {
				var last rxview.RunResult
				for i := 0; i < b.N; i++ {
					res, err := rxview.RunWorkload(nc, class, deletes, 5, int64(42+i))
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				reportPhases(b, last.Phases, last.Ops)
			})
		}
	}
}

// BenchmarkFig11Delete regenerates Fig.11(a)–(c): deletion cost per workload
// class as the database grows.
func BenchmarkFig11Delete(b *testing.B) { benchWorkload(b, true) }

// BenchmarkFig11Insert regenerates Fig.11(d)–(f): insertion cost per
// workload class as the database grows.
func BenchmarkFig11Insert(b *testing.B) { benchWorkload(b, false) }

// BenchmarkFig11gVarySelection regenerates Fig.11(g): runtime as a function
// of |r[[p]]| / |Ep(r)| at fixed |C|.
func BenchmarkFig11gVarySelection(b *testing.B) {
	nc := benchSizes[len(benchSizes)-1]
	for _, target := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("targets=%d", target), func(b *testing.B) {
			var pts []rxview.SelectionPoint
			for i := 0; i < b.N; i++ {
				out, err := rxview.VarySelection(nc, []int{target}, int64(42+i))
				if err != nil {
					b.Fatal(err)
				}
				pts = out
			}
			p := pts[0]
			b.ReportMetric(float64(p.EP), "Ep-edges")
			b.ReportMetric(float64(p.Del.DVToDR.Microseconds())/1000, "delete-ms")
			b.ReportMetric(float64(p.Ins.DVToDR.Microseconds())/1000, "insert-ms")
			b.ReportMetric(float64(p.Del.Maintain.Microseconds())/1000, "maintainDel-ms")
			b.ReportMetric(float64(p.Ins.Maintain.Microseconds())/1000, "maintainIns-ms")
		})
	}
}

// BenchmarkFig11hVarySubtree regenerates Fig.11(h): runtime as a function of
// |ST(A,t)| with |r[[p]]| = |Ep(r)| = 1.
func BenchmarkFig11hVarySubtree(b *testing.B) {
	nc := benchSizes[len(benchSizes)-1]
	for _, fanout := range []int{0, 8, 32} {
		b.Run(fmt.Sprintf("fanout=%d", fanout), func(b *testing.B) {
			var pts []rxview.SubtreePoint
			for i := 0; i < b.N; i++ {
				out, err := rxview.VarySubtree(nc, []int{fanout}, int64(42+i))
				if err != nil {
					b.Fatal(err)
				}
				pts = out
			}
			p := pts[0]
			b.ReportMetric(float64(p.STEdges), "ST-edges")
			b.ReportMetric(float64(p.Ins.XToDV.Microseconds())/1000, "Xinsert-ms")
			b.ReportMetric(float64(p.Ins.Maintain.Microseconds())/1000, "maintainIns-ms")
			b.ReportMetric(float64(p.Del.Maintain.Microseconds())/1000, "maintainDel-ms")
		})
	}
}

// BenchmarkTable1Incremental regenerates Table 1: incremental maintenance of
// L and M vs recomputation.
func BenchmarkTable1Incremental(b *testing.B) {
	for _, nc := range benchSizes {
		b.Run(fmt.Sprintf("C=%d", nc), func(b *testing.B) {
			var last rxview.MaintenanceResult
			for i := 0; i < b.N; i++ {
				res, err := rxview.MaintenanceTable(nc, int64(42+i))
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.IncrInsert.Microseconds())/1000, "incrIns-ms")
			b.ReportMetric(float64(last.IncrDelete.Microseconds())/1000, "incrDel-ms")
			b.ReportMetric(float64(last.RecomputeL.Microseconds())/1000, "recompL-ms")
			b.ReportMetric(float64(last.RecomputeM.Microseconds())/1000, "recompM-ms")
		})
	}
}

// BenchmarkAblationReachVsNaive compares Algorithm Reach (Fig.4) with a
// per-node DFS transitive closure.
func BenchmarkAblationReachVsNaive(b *testing.B) {
	nc := benchSizes[0]
	b.Run(fmt.Sprintf("C=%d", nc), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fig4, naive, _, err := rxview.ReachAblation(nc, 42)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(fig4.Microseconds())/1000, "reach-ms")
				b.ReportMetric(float64(naive.Microseconds())/1000, "naive-ms")
			}
		}
	})
}

// BenchmarkAblationMatrixRepresentation compares building M with bitset rows
// (word-level unions) against the sparse relation layout (per-pair map
// inserts) on the synthetic DAG.
func BenchmarkAblationMatrixRepresentation(b *testing.B) {
	nc := benchSizes[0]
	b.Run(fmt.Sprintf("C=%d", nc), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bitset, sparse, pairs, err := rxview.MatrixAblation(nc, 42)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(bitset.Microseconds())/1000, "bitset-ms")
				b.ReportMetric(float64(sparse.Microseconds())/1000, "sparse-ms")
				b.ReportMetric(float64(pairs), "M-pairs")
			}
		}
	})
}

// BenchmarkAblationDAGvsTree compares XPath evaluation on the DAG
// compression against the unfolded tree (§2.3's motivation).
func BenchmarkAblationDAGvsTree(b *testing.B) {
	nc := benchSizes[0]
	b.Run(fmt.Sprintf("C=%d", nc), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dagT, treeT, dagN, treeN, err := rxview.DAGvsTree(nc, 42)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(dagT.Microseconds())/1000, "dag-ms")
				b.ReportMetric(float64(treeT.Microseconds())/1000, "tree-ms")
				b.ReportMetric(float64(treeN)/float64(dagN), "blowup-x")
			}
		}
	})
}

// BenchmarkAblationGreedyVsExactMinDelete compares the greedy and exact
// minimal-deletion algorithms (Theorem 3).
func BenchmarkAblationGreedyVsExactMinDelete(b *testing.B) {
	nc := benchSizes[0]
	b.Run(fmt.Sprintf("C=%d", nc), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gT, eT, _, _, err := rxview.MinDeleteAblation(nc, 42)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(gT.Microseconds())/1000, "greedy-ms")
				b.ReportMetric(float64(eT.Microseconds())/1000, "exact-ms")
			}
		}
	})
}

// BenchmarkAblationSideEffectDetection compares full evaluation (exact
// side-effect detection) against the selection-only fast path.
func BenchmarkAblationSideEffectDetection(b *testing.B) {
	nc := benchSizes[0]
	b.Run(fmt.Sprintf("C=%d", nc), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			full, fast, err := rxview.SideEffectAblation(nc, 42)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(full.Microseconds())/1000, "full-ms")
				b.ReportMetric(float64(fast.Microseconds())/1000, "selectOnly-ms")
			}
		}
	})
}

// BenchmarkAblationEvalStrategy compares the exact NFA evaluator with the
// paper-literal frontier evaluator (// expanded through M).
func BenchmarkAblationEvalStrategy(b *testing.B) {
	nc := benchSizes[0]
	b.Run(fmt.Sprintf("C=%d", nc), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nfa, frontier, err := rxview.EvalStrategyAblation(nc, 42)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(nfa.Microseconds())/1000, "nfa-ms")
				b.ReportMetric(float64(frontier.Microseconds())/1000, "frontierM-ms")
			}
		}
	})
}

// benchChainView opens a registrar view extended with a prereq chain of the
// given depth, so the insertion target sits under a long ancestor path (the
// regime where per-update ∆(M,L)insert is dominated by recomputing sorted
// ancestor sets).
func benchChainView(b *testing.B, depth int) *rxview.View {
	b.Helper()
	atg, db, err := rxview.NewRegistrar()
	if err != nil {
		b.Fatal(err)
	}
	view, err := rxview.Open(atg, db, rxview.WithForceSideEffects())
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, err := view.Apply(ctx, rxview.Insert(`.`, "course", rxview.Str("CH000"), rxview.Str("chain"))); err != nil {
		b.Fatal(err)
	}
	for i := 1; i < depth; i++ {
		u := rxview.Insert(fmt.Sprintf(`//course[cno="CH%03d"]/prereq`, i-1),
			"course", rxview.Str(fmt.Sprintf("CH%03d", i)), rxview.Str("chain"))
		if _, err := view.Apply(ctx, u); err != nil {
			b.Fatal(err)
		}
	}
	return view
}

func benchChainInserts(n int, tail string) []rxview.Update {
	us := make([]rxview.Update, n)
	for i := range us {
		us[i] = rxview.Insert(tail, "student",
			rxview.Str(fmt.Sprintf("B%03d", i)), rxview.Str(fmt.Sprintf("Bench %d", i)))
	}
	return us
}

// BenchmarkBatchVsSequential compares N single Apply calls against one
// Batch of the same N insertions: identical final state, but Batch pays the
// matrix half of ∆(M,L)insert once per flush instead of once per update.
// The reported metrics are the summed Timings.Maintain of the N updates.
func BenchmarkBatchVsSequential(b *testing.B) {
	const depth, n = 30, 100
	tail := fmt.Sprintf(`//course[cno="CH%03d"]/takenBy`, depth-1)

	for _, mode := range []string{"sequential", "batch"} {
		b.Run(fmt.Sprintf("%s/n=%d", mode, n), func(b *testing.B) {
			ctx := context.Background()
			var maintain, total time.Duration
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				view := benchChainView(b, depth)
				updates := benchChainInserts(n, tail)
				b.StartTimer()

				t0 := time.Now()
				if mode == "sequential" {
					for _, u := range updates {
						rep, err := view.Apply(ctx, u)
						if err != nil {
							b.Fatal(err)
						}
						maintain += rep.Timings.Maintain
					}
				} else {
					reps, err := view.Batch(ctx, updates...)
					if err != nil {
						b.Fatal(err)
					}
					for _, rep := range reps {
						maintain += rep.Timings.Maintain
					}
				}
				total += time.Since(t0)
			}
			b.ReportMetric(float64(maintain.Nanoseconds())/float64(b.N), "maintain-ns")
			b.ReportMetric(float64(total.Nanoseconds())/float64(b.N), "wall-ns")
		})
	}
}
