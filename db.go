package rxview

import (
	"fmt"

	"rxview/internal/relational"
)

// DB is a relational database instance I — the base data a view publishes.
// A DB stays attached to the View opened over it: update translations ΔR
// produced by Apply and Batch are executed against it in place.
type DB struct {
	db *relational.Database
}

// NewDB creates an empty instance of the schema.
func NewDB(s *Schema) *DB { return &DB{db: relational.NewDatabase(s.s)} }

// Insert adds a tuple (given column by column, in schema order) to the named
// table.
func (d *DB) Insert(table string, vals ...Value) error {
	return d.db.Insert(table, tupleOf(vals))
}

// MustInsert is Insert that panics on error; convenient when seeding.
func (d *DB) MustInsert(table string, vals ...Value) {
	if err := d.Insert(table, vals...); err != nil {
		panic(err)
	}
}

// Lookup finds the tuple with the given primary key in the named table.
func (d *DB) Lookup(table string, key ...Value) ([]Value, bool) {
	r := d.db.Rel(table)
	if r == nil {
		return nil, false
	}
	t, ok := r.LookupKey(tupleOf(key))
	if !ok {
		return nil, false
	}
	return valuesOf(t), true
}

// Rows returns the number of tuples in the named table (0 if absent).
func (d *DB) Rows(table string) int {
	r := d.db.Rel(table)
	if r == nil {
		return 0
	}
	return r.Len()
}

// TotalRows returns the number of tuples across all tables.
func (d *DB) TotalRows() int { return d.db.TotalRows() }

// TableInfo summarizes one base relation.
type TableInfo struct {
	Name string
	Rows int
}

// Tables lists every table with its current row count, sorted by name.
func (d *DB) Tables() []TableInfo {
	names := d.db.Schema.TableNames()
	out := make([]TableInfo, len(names))
	for i, n := range names {
		out[i] = TableInfo{Name: n, Rows: d.db.Rel(n).Len()}
	}
	return out
}

// Clone deep-copies the instance; useful for what-if runs against the same
// ATG.
func (d *DB) Clone() *DB { return &DB{db: d.db.Clone()} }

// String summarizes the instance.
func (d *DB) String() string {
	return fmt.Sprintf("db(%d tables, %d rows)", len(d.db.Schema.TableNames()), d.db.TotalRows())
}
