package wal

// Durability-layer telemetry, on the process-wide obs.Default registry.
// The log is single-writer (the view's apply path), so every recording
// site uses the atomic fast-path API; fsync and checkpoint latencies are
// behind obs.Enabled because they add time.Now pairs to the commit path.

import (
	"sync"

	"rxview/internal/obs"
)

type walMetrics struct {
	fsyncDur   *obs.Histogram
	fsyncs     *obs.Counter
	appends    *obs.Counter
	appendRecs *obs.Counter
	bytes      *obs.Counter
	segBytes   *obs.Gauge
	rotations  *obs.Counter

	ckptDur   *obs.Histogram
	ckptBytes *obs.Histogram
	ckpts     *obs.Counter

	replayRecs  *obs.Counter
	replaySegs  *obs.Counter
	replayWarns *obs.Counter
}

var (
	walOnce sync.Once
	wm      *walMetrics
)

func walmetrics() *walMetrics {
	walOnce.Do(func() {
		r := obs.Default()
		wm = &walMetrics{
			fsyncDur: r.NewHistogram("xview_wal_fsync_seconds",
				"fsync latency on the active WAL segment.", obs.LatencyBounds()),
			fsyncs: r.NewCounter("xview_wal_fsyncs_total",
				"fsyncs issued on the active WAL segment."),
			appends: r.NewCounter("xview_wal_appends_total",
				"Append calls (one per committed write unit batch)."),
			appendRecs: r.NewCounter("xview_wal_records_total",
				"Commit records appended to the log."),
			bytes: r.NewCounter("xview_wal_appended_bytes_total",
				"Framed bytes appended to WAL segments."),
			segBytes: r.NewGauge("xview_wal_segment_bytes",
				"Bytes written to the active segment since its rotation (header included)."),
			rotations: r.NewCounter("xview_wal_rotations_total",
				"Segment rotations (one per checkpoint)."),
			ckptDur: r.NewHistogram("xview_wal_checkpoint_seconds",
				"Checkpoint duration: state serialization excluded, sync+write+rename+rotate+prune included.",
				obs.LatencyBounds()),
			ckptBytes: r.NewHistogram("xview_wal_checkpoint_bytes",
				"Checkpoint file sizes.", obs.ExpBounds(1024, 4, 12)),
			ckpts: r.NewCounter("xview_wal_checkpoints_total",
				"Checkpoints written."),
			replayRecs: r.NewCounter("xview_wal_replay_records_total",
				"Commit records replayed during boot recovery."),
			replaySegs: r.NewCounter("xview_wal_replay_segments_total",
				"Segments read during boot recovery."),
			replayWarns: r.NewCounter("xview_wal_replay_warnings_total",
				"Non-fatal recovery findings (torn tails truncated, unreadable newest checkpoints skipped)."),
		}
	})
	return wm
}

// syncTimed wraps one fsync of the active segment with latency accounting.
func (l *Log) syncTimed() error {
	m := walmetrics()
	sp := obs.StartSpan(m.fsyncDur)
	err := l.f.Sync()
	sp.End()
	m.fsyncs.Inc()
	return err
}
