package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"rxview/internal/dag"
	"rxview/internal/relational"
)

// rec builds a distinguishable record for generation g.
func rec(g uint64) Record {
	return Record{
		Gen: g,
		Delta: []dag.DeltaOp{
			{Kind: dag.DeltaNodeAdd, Node: dag.NodeID(g), Type: fmt.Sprintf("t%d", g),
				Attr: relational.Tuple{relational.Str(fmt.Sprintf("a%d", g))}},
			{Kind: dag.DeltaEdgeAdd, Edge: dag.Edge{Parent: dag.NodeID(g), Child: dag.NodeID(g + 1)}},
		},
		DR: []relational.Mutation{
			{Table: "r1", Insert: true, Tuple: relational.Tuple{relational.Int(int64(g)), relational.Null()}},
		},
	}
}

func mustOpen(t *testing.T, dir string, opts Options) (*Log, *BootState) {
	t.Helper()
	l, boot, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, boot
}

func TestRecordRoundTrip(t *testing.T) {
	in := rec(7)
	payload := appendRecord(nil, in)
	out, err := decodeRecord(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip:\n in  %+v\n out %+v", in, out)
	}
	// Truncation at every byte must error, never panic or succeed.
	for i := 0; i < len(payload); i++ {
		if _, err := decodeRecord(payload[:i]); err == nil {
			t.Fatalf("decode of %d/%d bytes succeeded", i, len(payload))
		}
	}
}

func TestFreshDirThenReopen(t *testing.T) {
	dir := t.TempDir()
	l, boot := mustOpen(t, dir, Options{Policy: SyncOff})
	if boot != nil {
		t.Fatalf("fresh dir returned boot state %+v", boot)
	}
	if err := l.Append([]Record{rec(1)}); err == nil {
		t.Fatal("append before first checkpoint did not fail")
	}
	if err := l.WriteCheckpoint(0, []byte("genesis")); err != nil {
		t.Fatalf("genesis checkpoint: %v", err)
	}
	for g := uint64(1); g <= 5; g++ {
		if err := l.Append([]Record{rec(g)}); err != nil {
			t.Fatalf("append %d: %v", g, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	_, boot = mustOpen(t, dir, Options{Policy: SyncOff})
	if boot == nil {
		t.Fatal("no boot state after reopen")
	}
	if boot.Gen != 0 || string(boot.State) != "genesis" {
		t.Fatalf("boot gen=%d state=%q", boot.Gen, boot.State)
	}
	if len(boot.Records) != 5 {
		t.Fatalf("recovered %d records, want 5", len(boot.Records))
	}
	for i, r := range boot.Records {
		if !reflect.DeepEqual(r, rec(uint64(i+1))) {
			t.Fatalf("record %d: %+v", i, r)
		}
	}
	if len(boot.Warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", boot.Warnings)
	}
}

func TestCheckpointRotatesAndSkipsOldRecords(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Policy: SyncOff})
	if err := l.WriteCheckpoint(0, []byte("s0")); err != nil {
		t.Fatal(err)
	}
	for g := uint64(1); g <= 3; g++ {
		if err := l.Append([]Record{rec(g)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WriteCheckpoint(3, []byte("s3")); err != nil {
		t.Fatal(err)
	}
	for g := uint64(4); g <= 6; g++ {
		if err := l.Append([]Record{rec(g)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, boot := mustOpen(t, dir, Options{Policy: SyncOff})
	if boot.Gen != 3 || string(boot.State) != "s3" {
		t.Fatalf("boot gen=%d state=%q", boot.Gen, boot.State)
	}
	gens := recordGens(boot.Records)
	if !reflect.DeepEqual(gens, []uint64{4, 5, 6}) {
		t.Fatalf("recovered generations %v", gens)
	}
}

func recordGens(recs []Record) []uint64 {
	out := make([]uint64, len(recs))
	for i, r := range recs {
		out[i] = r.Gen
	}
	return out
}

func TestTornTailTruncatedAtEveryByte(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Policy: SyncOff})
	if err := l.WriteCheckpoint(0, []byte("s0")); err != nil {
		t.Fatal(err)
	}
	for g := uint64(1); g <= 3; g++ {
		if err := l.Append([]Record{rec(g)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segName(0))
	whole, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Find where the full-record prefixes end: offsets after the header and
	// each complete frame.
	valid := map[int]int{} // byte length -> records fully contained
	hdrLen := func() int {
		b := whole[len(segMagic):]
		_, rest, _ := readFrame(b)
		return len(whole) - len(rest)
	}()
	offs := []int{hdrLen}
	{
		off := hdrLen
		for n := 1; ; n++ {
			_, rest, res := readFrame(whole[off:])
			if res != frameOK {
				break
			}
			off = len(whole) - len(rest)
			offs = append(offs, off)
			valid[off] = n
		}
	}
	for cut := 0; cut <= len(whole); cut++ {
		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, segName(0)), whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		// Checkpoint must ride along.
		src, _ := os.ReadFile(filepath.Join(dir, ckptName(0)))
		if err := os.WriteFile(filepath.Join(sub, ckptName(0)), src, 0o644); err != nil {
			t.Fatal(err)
		}
		_, boot, err := Open(sub, Options{Policy: SyncOff})
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		wantRecs := 0
		for _, off := range offs {
			if off <= cut {
				wantRecs = valid[off]
			}
		}
		if len(boot.Records) != wantRecs {
			t.Fatalf("cut at %d: recovered %d records, want %d", cut, len(boot.Records), wantRecs)
		}
		// An empty file (cut 0) is a crash before the header write, not a
		// torn record — no warning expected there or at clean boundaries.
		if cut != 0 && cut < len(whole) && len(boot.Warnings) == 0 && !containsOffset(offs, cut) {
			t.Fatalf("cut at %d: no torn-tail warning", cut)
		}
		// The truncated file must now be a clean prefix: reopening again
		// must succeed without new warnings.
		if _, boot2, err := Open(sub, Options{Policy: SyncOff}); err != nil {
			t.Fatalf("cut at %d: second open: %v", cut, err)
		} else if len(boot2.Records) != wantRecs {
			t.Fatalf("cut at %d: second open recovered %d records", cut, len(boot2.Records))
		}
	}
}

func containsOffset(offs []int, x int) bool {
	for _, o := range offs {
		if o == x {
			return true
		}
	}
	return false
}

func TestMidSegmentCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Policy: SyncOff})
	if err := l.WriteCheckpoint(0, []byte("s0")); err != nil {
		t.Fatal(err)
	}
	for g := uint64(1); g <= 3; g++ {
		if err := l.Append([]Record{rec(g)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segName(0))
	b, _ := os.ReadFile(seg)
	// Flip a byte inside the first record's payload (well before the tail).
	hdrEnd := func() int {
		_, rest, _ := readFrame(b[len(segMagic):])
		return len(b) - len(rest)
	}()
	b[hdrEnd+8] ^= 0xff
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(dir, Options{Policy: SyncOff})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-segment corruption: err=%v, want ErrCorrupt", err)
	}
}

func TestCorruptNewestCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Policy: SyncOff})
	if err := l.WriteCheckpoint(0, []byte("s0")); err != nil {
		t.Fatal(err)
	}
	for g := uint64(1); g <= 2; g++ {
		if err := l.Append([]Record{rec(g)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WriteCheckpoint(2, []byte("s2")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]Record{rec(3)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Damage the newest checkpoint's state payload.
	ck := filepath.Join(dir, ckptName(2))
	b, _ := os.ReadFile(ck)
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(ck, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, boot := mustOpen(t, dir, Options{Policy: SyncOff})
	if boot.Gen != 0 || string(boot.State) != "s0" {
		t.Fatalf("fallback chose gen=%d state=%q", boot.Gen, boot.State)
	}
	// The suffix must now cover everything after gen 0, crossing segments.
	if g := recordGens(boot.Records); !reflect.DeepEqual(g, []uint64{1, 2, 3}) {
		t.Fatalf("fallback recovered generations %v", g)
	}
	if len(boot.Warnings) == 0 {
		t.Fatal("no warning about the skipped checkpoint")
	}
	// Damage the older one too: now nothing is recoverable.
	ck0 := filepath.Join(dir, ckptName(0))
	b0, _ := os.ReadFile(ck0)
	b0[len(b0)-1] ^= 0xff
	if err := os.WriteFile(ck0, b0, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{Policy: SyncOff}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("all checkpoints corrupt: err=%v, want ErrCorrupt", err)
	}
}

func TestGenerationGapRefused(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Policy: SyncOff})
	if err := l.WriteCheckpoint(0, []byte("s0")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]Record{rec(1)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]Record{rec(3)}); err != nil { // gap: 2 missing
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(dir, Options{Policy: SyncOff})
	if !errors.Is(err, ErrMismatch) {
		t.Fatalf("generation gap: err=%v, want ErrMismatch", err)
	}
}

func TestPruneKeepsTwoCheckpoints(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Policy: SyncOff})
	if err := l.WriteCheckpoint(0, []byte("s0")); err != nil {
		t.Fatal(err)
	}
	gen := uint64(0)
	for ck := 0; ck < 4; ck++ {
		for i := 0; i < 2; i++ {
			gen++
			if err := l.Append([]Record{rec(gen)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.WriteCheckpoint(gen, []byte(fmt.Sprintf("s%d", gen))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	ckpts, segs := listDir(dir)
	if !reflect.DeepEqual(ckpts, []uint64{6, 8}) {
		t.Fatalf("kept checkpoints %v, want [6 8]", ckpts)
	}
	if !reflect.DeepEqual(segs, []uint64{6, 8}) {
		t.Fatalf("kept segments %v, want [6 8]", segs)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, p := range []SyncPolicy{SyncAlways, SyncBatch, SyncOff} {
		dir := t.TempDir()
		l, _ := mustOpen(t, dir, Options{Policy: p, BatchEvery: 2})
		if err := l.WriteCheckpoint(0, []byte("s0")); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		for g := uint64(1); g <= 5; g++ {
			if err := l.Append([]Record{rec(g)}); err != nil {
				t.Fatalf("%v append %d: %v", p, g, err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatalf("%v close: %v", p, err)
		}
		_, boot := mustOpen(t, dir, Options{Policy: SyncOff})
		if len(boot.Records) != 5 {
			t.Fatalf("%v: recovered %d records", p, len(boot.Records))
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"batch", SyncBatch}, {"off", SyncOff}} {
		got, err := ParsePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("String() = %q", got.String())
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestInspect(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Policy: SyncOff})
	if err := l.WriteCheckpoint(0, []byte("state-zero")); err != nil {
		t.Fatal(err)
	}
	for g := uint64(1); g <= 3; g++ {
		if err := l.Append([]Record{rec(g)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Checkpoints) != 1 || info.Checkpoints[0].Gen != 0 ||
		info.Checkpoints[0].Bytes != len("state-zero") || info.Checkpoints[0].Err != "" {
		t.Fatalf("checkpoints: %+v", info.Checkpoints)
	}
	if len(info.Segments) != 1 || info.Segments[0].Start != 0 {
		t.Fatalf("segments: %+v", info.Segments)
	}
	recs := info.Segments[0].Records
	if len(recs) != 3 {
		t.Fatalf("records: %+v", recs)
	}
	for i, r := range recs {
		if r.Gen != uint64(i+1) || r.DeltaOps != 2 || r.Mutations != 1 || r.Bytes <= 0 {
			t.Fatalf("record %d: %+v", i, r)
		}
	}
	// Torn tail shows up as a note, not an error.
	seg := filepath.Join(dir, segName(0))
	b, _ := os.ReadFile(seg)
	if err := os.WriteFile(seg, b[:len(b)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	info, err = Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Segments[0].Note == "" || len(info.Segments[0].Records) != 2 {
		t.Fatalf("torn segment: %+v", info.Segments[0])
	}
	if _, err := Inspect(filepath.Join(dir, "nope")); err == nil {
		t.Fatal("missing dir accepted")
	}
}

func TestSegmentsWithoutCheckpointRefused(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName(0)), []byte(segMagic), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err=%v, want ErrCorrupt", err)
	}
}
