package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"rxview/internal/dag"
	"rxview/internal/relational"
)

// Record is one committed write unit in replayable form — the wal-side twin
// of core.CommitRecord (wal cannot import core: core owns the commit path
// and the root package glues the two together). Gen is the generation the
// unit produced; Delta is the chronological DAG delta; DR is the executed
// relational group update.
type Record struct {
	Gen   uint64
	Delta []dag.DeltaOp
	DR    []relational.Mutation
}

// castagnoli is the CRC-32C polynomial table; hardware-accelerated on the
// platforms that matter and a better error-detection polynomial than IEEE.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendRecord encodes the record payload (no framing).
func appendRecord(dst []byte, r Record) []byte {
	dst = binary.AppendUvarint(dst, r.Gen)
	dst = binary.AppendUvarint(dst, uint64(len(r.Delta)))
	for _, op := range r.Delta {
		dst = dag.AppendDelta(dst, op)
	}
	dst = binary.AppendUvarint(dst, uint64(len(r.DR)))
	for _, m := range r.DR {
		dst = relational.AppendMutation(dst, m)
	}
	return dst
}

// decodeRecord decodes one record payload; the payload must be consumed
// exactly.
func decodeRecord(b []byte) (Record, error) {
	var r Record
	gen, n := binary.Uvarint(b)
	if n <= 0 {
		return r, fmt.Errorf("wal: record: bad generation")
	}
	r.Gen = gen
	b = b[n:]
	nd, n := binary.Uvarint(b)
	if n <= 0 {
		return r, fmt.Errorf("wal: record: bad delta count")
	}
	b = b[n:]
	for i := uint64(0); i < nd; i++ {
		op, rest, err := dag.DecodeDelta(b)
		if err != nil {
			return r, fmt.Errorf("wal: record: delta[%d]: %w", i, err)
		}
		r.Delta = append(r.Delta, op)
		b = rest
	}
	nm, n := binary.Uvarint(b)
	if n <= 0 {
		return r, fmt.Errorf("wal: record: bad ΔR count")
	}
	b = b[n:]
	for i := uint64(0); i < nm; i++ {
		m, rest, err := relational.DecodeMutation(b)
		if err != nil {
			return r, fmt.Errorf("wal: record: ΔR[%d]: %w", i, err)
		}
		r.DR = append(r.DR, m)
		b = rest
	}
	if len(b) != 0 {
		return r, fmt.Errorf("wal: record: %d trailing bytes", len(b))
	}
	return r, nil
}

// appendFrame wraps a payload in the on-disk frame: uvarint length, 4-byte
// big-endian CRC-32C of the payload, payload. The length comes first so a
// reader can distinguish a torn write (file ends inside the announced
// frame) from corruption (complete frame, wrong checksum).
func appendFrame(dst, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = binary.BigEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// frameResult classifies one frame-read attempt.
type frameResult int

const (
	frameOK      frameResult = iota
	frameEOF                 // clean end: no bytes left
	frameTorn                // file ends inside a frame — an interrupted append
	frameCorrupt             // complete frame with a wrong checksum, or an unparseable header
)

// readFrame reads one frame from b. It returns the payload, the remaining
// bytes, and the classification. On frameTorn and frameCorrupt the remaining
// bytes are the unread suffix starting at the bad frame.
func readFrame(b []byte) (payload, rest []byte, res frameResult) {
	if len(b) == 0 {
		return nil, nil, frameEOF
	}
	size, n := binary.Uvarint(b)
	if n == 0 {
		// Uvarint ran out of bytes: a torn length prefix.
		return nil, b, frameTorn
	}
	if n < 0 || size > maxFrame {
		return nil, b, frameCorrupt
	}
	body := b[n:]
	if uint64(len(body)) < 4+size {
		return nil, b, frameTorn
	}
	sum := binary.BigEndian.Uint32(body)
	payload = body[4 : 4+size]
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, b, frameCorrupt
	}
	return payload, body[4+size:], frameOK
}

// maxFrame bounds a single frame payload (64 MiB) so a corrupted length
// prefix cannot make the reader treat the rest of the file as one frame.
const maxFrame = 64 << 20
