// Package wal is the durability layer under a view: an append-only,
// checksummed write-ahead log of committed transaction groups plus
// sealed-epoch checkpoints of the full view state.
//
// A log directory holds two kinds of files, both named by the generation
// they start at (zero-padded so lexicographic order is numeric order):
//
//	ckpt-<gen>.xvc  — a checkpoint: the complete state at <gen>, opaque to
//	                  this package (the root package serializes it), CRC'd,
//	                  written to a temp file and renamed into place.
//	wal-<gen>.xvl   — a log segment: the records of generations
//	                  (<gen>, next checkpoint], one CRC-framed record each.
//
// A checkpoint seals the epoch before it: writing ckpt-G rotates the log to
// a fresh segment wal-G and prunes everything older than the previous
// checkpoint (two checkpoints are kept so a corrupt newest checkpoint still
// recovers from the one before it plus its segments). Recovery reads the
// newest valid checkpoint and replays the segments at or after it; a torn
// final record — an append interrupted mid-write — is truncated away with a
// warning, while a checksum failure anywhere else refuses the log rather
// than resurrect a wrong state.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"rxview/internal/fault"
	"rxview/internal/obs"
)

// ErrCorrupt marks a log or checkpoint whose contents fail validation in a
// way recovery must not paper over (a bad checksum before the final record,
// an undecodable record, every checkpoint unreadable). Wrapped errors carry
// the file and offset.
var ErrCorrupt = errors.New("wal: corrupt")

// ErrMismatch marks a log directory whose files are individually valid but
// disagree with each other — a generation gap between the checkpoint and the
// records that should continue it. Replaying past a gap would resurrect a
// state that never existed, so recovery refuses.
var ErrMismatch = errors.New("wal: checkpoint and log disagree")

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: a commit verdict implies the
	// record survives power loss.
	SyncAlways SyncPolicy = iota
	// SyncBatch fsyncs every Options.BatchEvery appends (and on checkpoint
	// and close): group commit. A crash can lose the last unsynced batch,
	// never a prefix of it.
	SyncBatch
	// SyncOff never fsyncs: appends still reach the kernel via write(2), so
	// a process kill loses nothing, but an OS crash can lose the tail.
	SyncOff
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncBatch:
		return "batch"
	case SyncOff:
		return "off"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParsePolicy parses "always", "batch" or "off".
func ParsePolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "batch":
		return SyncBatch, nil
	case "off":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, batch or off)", s)
}

// Options configures a Log.
type Options struct {
	Policy     SyncPolicy
	BatchEvery int // SyncBatch: fsync every this many appends (default 32)
	Keep       int // checkpoints retained (default 2, minimum 1)
}

func (o *Options) norm() {
	if o.BatchEvery <= 0 {
		o.BatchEvery = 32
	}
	if o.Keep < 1 {
		o.Keep = 2
	}
}

// Log is an open write-ahead log: one active segment file being appended to,
// plus the checkpoint machinery. It is not internally locked; the view's
// single-writer discipline covers it.
type Log struct {
	dir  string
	opts Options

	f        *os.File // active segment
	segStart uint64   // generation the active segment starts after
	unsynced int      // appends since the last fsync (SyncBatch)
	buf      []byte   // frame scratch, reused across appends
	size     int64    // bytes in the active segment (offset attribution)
	dead     error    // first disk failure; non-nil refuses writes until Reopen
}

const (
	segMagic  = "XVL1"
	ckptMagic = "XVC1"
	segExt    = ".xvl"
	ckptExt   = ".xvc"
)

func segName(gen uint64) string  { return fmt.Sprintf("wal-%020d%s", gen, segExt) }
func ckptName(gen uint64) string { return fmt.Sprintf("ckpt-%020d%s", gen, ckptExt) }

// parseGen extracts the generation from a segment or checkpoint file name.
func parseGen(name, prefix, ext string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ext) {
		return 0, false
	}
	gen, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, prefix), ext), 10, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// create opens the log directory for appending; recovery (Open) chose the
// boot state first. The caller must follow with WriteCheckpoint to establish
// the invariant that the newest checkpoint and the active segment agree.
func create(dir string, opts Options) (*Log, error) {
	opts.norm()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create %s: %w", dir, err)
	}
	return &Log{dir: dir, opts: opts}, nil
}

// Append writes the records as one frame each, then syncs per policy. The
// records are durable (to the policy's guarantee) when Append returns nil.
//
// Append is all-or-nothing: any failure past the write — a short write, a
// failed fsync, an injected crash-before-fsync — truncates the batch back
// out of the segment and returns a *DiskFailureError, so a commit the
// caller rolls back can never resurface in a replay. After such a failure
// the log is dead (every write fails fast with the original cause) until
// Reopen; the single deliberate exception is the injected crash-after-
// fsync, where the record IS durable, this Append succeeds — failing it
// would reject a write that survives recovery — and only subsequent
// appends find the log dead.
//
// xviewlint:hot-path
func (l *Log) Append(recs []Record) error {
	if l.dead != nil {
		return l.diskErr("append", l.size, fmt.Errorf("log has failed: %w", l.dead))
	}
	if l.f == nil {
		return fmt.Errorf("wal: append before the first checkpoint")
	}
	if fault.Active() {
		_ = fault.Hit(fault.WALSlowIO) // latency rules stall, never fail
		if err := fault.Hit(fault.WALAppend); err != nil {
			return l.diskErr("append", l.size, err)
		}
		if err := fault.Hit(fault.WALDiskFull); err != nil {
			return l.diskErr("append", l.size, fmt.Errorf("no space left on device: %w", err))
		}
	}
	l.buf = l.buf[:0]
	for _, r := range recs {
		payload := appendRecord(nil, r)
		l.buf = appendFrame(l.buf, payload)
	}
	start := l.size
	if _, err := l.f.Write(l.buf); err != nil {
		l.failAppend(start, err)
		return l.diskErr("append", start, err)
	}
	l.size += int64(len(l.buf))
	m := walmetrics()
	m.appends.Inc()
	m.appendRecs.Add(uint64(len(recs)))
	m.bytes.Add(uint64(len(l.buf)))
	m.segBytes.Add(int64(len(l.buf)))
	if fault.Active() {
		if err := fault.Hit(fault.CrashBeforeFsync); err != nil {
			// The process "died" after write(2) but before fsync: the
			// record must not count as durable. Undo it and kill the log.
			l.failAppend(start, err)
			return l.diskErr("append", start, err)
		}
	}
	switch l.opts.Policy {
	case SyncAlways:
		if err := l.appendSync(start); err != nil {
			return err
		}
	case SyncBatch:
		l.unsynced++
		if l.unsynced >= l.opts.BatchEvery {
			if err := l.appendSync(start); err != nil {
				return err
			}
			l.unsynced = 0
		}
	}
	if fault.Active() {
		if err := fault.Hit(fault.CrashAfterFsync); err != nil {
			l.dead = err
		}
	}
	return nil
}

// appendSync is Append's policy fsync with fault injection and typed
// failure. An fsync that fails (really or injected) leaves the durability
// of the just-written batch unknown, and its commit is about to be
// rejected — so the batch is truncated away and the log dies, keeping the
// on-disk suffix equal to the acknowledged history.
func (l *Log) appendSync(start int64) error {
	if err := fault.Hit(fault.WALFsync); err != nil {
		l.failAppend(start, err)
		return l.diskErr("fsync", start, err)
	}
	if err := l.syncTimed(); err != nil {
		l.failAppend(start, err)
		return l.diskErr("fsync", start, err)
	}
	return nil
}

// failAppend makes a failed append all-or-nothing: the segment is truncated
// back to the batch's start offset and the log refuses further writes until
// Reopen. Truncation itself failing is tolerable — Reopen re-scans and
// repairs the segment tail before the log accepts appends again.
func (l *Log) failAppend(start int64, cause error) {
	if l.f != nil {
		if err := l.f.Truncate(start); err == nil {
			walmetrics().segBytes.Set(start)
		}
	}
	l.size = start
	l.dead = cause
}

// diskErr wraps a failure of the active segment into the typed
// *DiskFailureError, attributing the file and offset.
func (l *Log) diskErr(op string, off int64, err error) error {
	path := ""
	if l.f != nil {
		path = l.f.Name()
	}
	return &DiskFailureError{Path: path, Op: op, Offset: off, Err: err}
}

// Failed returns the first disk failure that killed the log, or nil while
// it is healthy. A dead log refuses Append, Sync and WriteCheckpoint with
// the original cause until Reopen.
func (l *Log) Failed() error { return l.dead }

// Reopen revives a dead log in place: it closes the stale descriptor
// (whose state after an I/O failure is unknown), clears the failure, and
// repairs whatever tail the failed append left in the newest segment —
// the same torn-tail tolerance boot recovery applies, legitimate here
// because only the physically last segment can hold an interrupted
// append. The caller must follow with WriteCheckpoint, exactly as after
// Open, to give the log an active segment again. The returned warning,
// when non-empty, describes a truncated tail.
func (l *Log) Reopen() (warning string, err error) {
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
	l.dead = nil
	l.unsynced = 0
	l.size = 0
	_, segs := listDir(l.dir)
	if len(segs) > 0 {
		g := segs[len(segs)-1]
		_, warning, err = readSegment(filepath.Join(l.dir, segName(g)), g, true)
		if err != nil {
			l.dead = err
			return warning, fmt.Errorf("wal: reopen %s: %w", l.dir, err)
		}
	}
	return warning, nil
}

// Sync flushes the active segment to stable storage regardless of policy.
func (l *Log) Sync() error {
	if l.dead != nil {
		return l.diskErr("fsync", l.size, fmt.Errorf("log has failed: %w", l.dead))
	}
	if l.f == nil {
		return nil
	}
	l.unsynced = 0
	if err := l.syncTimed(); err != nil {
		l.failAppend(l.size, err)
		return l.diskErr("fsync", l.size, err)
	}
	return nil
}

// WriteCheckpoint seals the epoch: it writes the full state at gen as
// ckpt-<gen> (temp file, fsync, rename, fsync the directory), rotates the
// log to a fresh segment wal-<gen>, and prunes files older than the Keep'th
// newest checkpoint.
func (l *Log) WriteCheckpoint(gen uint64, state []byte) error {
	if l.dead != nil {
		return l.diskErr("checkpoint", l.size, fmt.Errorf("log has failed: %w", l.dead))
	}
	if err := fault.Hit(fault.CheckpointWrite); err != nil {
		return &DiskFailureError{Path: filepath.Join(l.dir, ckptName(gen)), Op: "checkpoint", Offset: -1, Err: err}
	}
	m := walmetrics()
	sp := obs.StartSpan(m.ckptDur)
	// The log up to here must be stable before the checkpoint that
	// supersedes it claims the epoch is sealed.
	if l.f != nil {
		if err := l.Sync(); err != nil {
			return err
		}
	}
	// File layout: magic, one frame holding the generation, one frame
	// holding the (opaque) state.
	buf := append(make([]byte, 0, len(ckptMagic)+len(state)+32), ckptMagic...)
	buf = appendFrame(buf, u64bytes(gen))
	buf = appendFrame(buf, state)

	tmp, err := os.CreateTemp(l.dir, "ckpt-*.tmp")
	if err != nil {
		return fmt.Errorf("wal: checkpoint %d: %w", gen, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: checkpoint %d: %w", gen, err)
	}
	final := filepath.Join(l.dir, ckptName(gen))
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: checkpoint %d: %w", gen, err)
	}
	if err := syncDir(l.dir); err != nil {
		return fmt.Errorf("wal: checkpoint %d: %w", gen, err)
	}
	if err := l.rotate(gen); err != nil {
		return err
	}
	l.prune()
	m.ckpts.Inc()
	m.ckptBytes.ObserveValue(float64(len(buf)))
	sp.End()
	return nil
}

// rotate closes the active segment and starts wal-<gen>.
func (l *Log) rotate(gen uint64) error {
	if l.f != nil {
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: close segment: %w", err)
		}
		l.f = nil
	}
	path := filepath.Join(l.dir, segName(gen))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: stat segment %s: %w", path, err)
	}
	size := st.Size()
	if size == 0 {
		hdr := append([]byte(segMagic), nil...)
		hdr = appendFrame(hdr, u64bytes(gen))
		if _, err := f.Write(hdr); err != nil {
			f.Close()
			return fmt.Errorf("wal: segment header %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("wal: segment header %s: %w", path, err)
		}
		size = int64(len(hdr))
	}
	l.f, l.segStart, l.unsynced, l.size = f, gen, 0, size
	m := walmetrics()
	m.rotations.Inc()
	m.segBytes.Set(size)
	return nil
}

// prune removes checkpoints beyond the Keep newest and segments older than
// the oldest kept checkpoint. Best-effort: pruning failures leave garbage,
// never lose data.
func (l *Log) prune() {
	ckpts, segs := listDir(l.dir)
	if len(ckpts) <= l.opts.Keep {
		return
	}
	keepFrom := ckpts[len(ckpts)-l.opts.Keep]
	for _, g := range ckpts {
		if g < keepFrom {
			os.Remove(filepath.Join(l.dir, ckptName(g)))
		}
	}
	for _, g := range segs {
		if g < keepFrom {
			os.Remove(filepath.Join(l.dir, segName(g)))
		}
	}
}

// Close syncs and closes the active segment. The caller typically writes a
// final checkpoint first.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	if err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// listDir returns the checkpoint and segment generations present, ascending.
func listDir(dir string) (ckpts, segs []uint64) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil
	}
	for _, e := range ents {
		if g, ok := parseGen(e.Name(), "ckpt-", ckptExt); ok {
			ckpts = append(ckpts, g)
		} else if g, ok := parseGen(e.Name(), "wal-", segExt); ok {
			segs = append(segs, g)
		}
	}
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] < ckpts[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return ckpts, segs
}

func u64bytes(v uint64) []byte {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[7-i] = byte(v >> (8 * i))
	}
	return b[:]
}

func u64from(b []byte) (uint64, bool) {
	if len(b) != 8 {
		return 0, false
	}
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v, true
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
