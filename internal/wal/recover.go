package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
)

// BootState is what recovery found in a log directory: the chosen checkpoint
// and the log suffix that continues it. The caller replays Records onto the
// state decoded from State and resumes at the last record's generation.
type BootState struct {
	Gen      uint64   // generation of the chosen checkpoint
	State    []byte   // the checkpoint payload, opaque to this package
	Records  []Record // log suffix: the records of generations > Gen, in order
	Warnings []string // non-fatal findings: a truncated torn tail, a skipped corrupt checkpoint
}

// Open opens a log directory for appending, recovering whatever durable
// state it holds first. A fresh (or empty) directory returns a nil BootState:
// the caller establishes the genesis epoch with WriteCheckpoint before the
// first Append. Otherwise the newest readable checkpoint is chosen (a corrupt
// newest checkpoint falls back to the one before it, with a warning), the
// segments are replayed past it, and a torn final record — an append the
// crash interrupted — is truncated away with a warning. A checksum failure
// anywhere it cannot be a torn append wraps ErrCorrupt; a generation gap
// between checkpoint and records wraps ErrMismatch.
//
// The returned Log has no active segment yet: the caller must seal the
// recovered (or genesis) state with WriteCheckpoint, which also rotates to a
// fresh segment and prunes superseded files. Recovery itself never appends
// to an old segment.
func Open(dir string, opts Options) (*Log, *BootState, error) {
	l, err := create(dir, opts)
	if err != nil {
		return nil, nil, err
	}
	ckpts, segs := listDir(dir)
	if len(ckpts) == 0 {
		if len(segs) != 0 {
			return nil, nil, fmt.Errorf("wal: %s has %d log segment(s) but no checkpoint: %w", dir, len(segs), ErrCorrupt)
		}
		return l, nil, nil
	}

	boot := &BootState{}
	chosen := false
	for i := len(ckpts) - 1; i >= 0; i-- {
		g := ckpts[i]
		state, err := readCheckpoint(filepath.Join(dir, ckptName(g)), g)
		if err == nil {
			boot.Gen, boot.State, chosen = g, state, true
			break
		}
		boot.Warnings = append(boot.Warnings,
			fmt.Sprintf("checkpoint %d unreadable (%v); falling back", g, err))
	}
	if !chosen {
		return nil, nil, fmt.Errorf("wal: %s: every checkpoint unreadable: %w", dir, ErrCorrupt)
	}

	// Replay every segment in order, keeping the records past the chosen
	// checkpoint. Segments before it still parse (they were synced before
	// the checkpoint superseded them); their records are simply skipped, and
	// that also covers the fallback path, where the segment at the corrupt
	// newest checkpoint carries the suffix we need.
	m := walmetrics()
	prev := boot.Gen
	for i, g := range segs {
		path := filepath.Join(dir, segName(g))
		recs, warn, err := readSegment(path, g, i == len(segs)-1)
		if err != nil {
			return nil, nil, err
		}
		m.replaySegs.Inc()
		if warn != "" {
			boot.Warnings = append(boot.Warnings, warn)
		}
		for _, r := range recs {
			if r.Gen <= boot.Gen {
				continue
			}
			if r.Gen != prev+1 {
				return nil, nil, fmt.Errorf("wal: %s: record for generation %d follows generation %d: %w",
					filepath.Base(path), r.Gen, prev, ErrMismatch)
			}
			prev = r.Gen
			boot.Records = append(boot.Records, r)
			m.replayRecs.Inc()
		}
	}
	m.replayWarns.Add(uint64(len(boot.Warnings)))
	return l, boot, nil
}

// readCheckpoint reads and validates one checkpoint file, returning the
// opaque state payload. Checkpoints are renamed into place after an fsync,
// so any incompleteness or checksum failure is an error — the caller decides
// whether an older checkpoint can absorb it.
func readCheckpoint(path string, gen uint64) ([]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(b) < len(ckptMagic) || !bytes.Equal(b[:len(ckptMagic)], []byte(ckptMagic)) {
		return nil, fmt.Errorf("bad magic")
	}
	b = b[len(ckptMagic):]
	genPayload, rest, res := readFrame(b)
	if res != frameOK {
		return nil, fmt.Errorf("bad generation frame")
	}
	g, ok := u64from(genPayload)
	if !ok {
		return nil, fmt.Errorf("bad generation frame")
	}
	if g != gen {
		return nil, fmt.Errorf("header says generation %d, file name says %d", g, gen)
	}
	state, rest, res := readFrame(rest)
	if res != frameOK {
		return nil, fmt.Errorf("bad state frame")
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%d trailing bytes", len(rest))
	}
	return state, nil
}

// readSegment parses one log segment. In the physically last segment a torn
// tail — a frame the file ends inside, or a checksum failure on the very
// last frame — is truncated away on disk (so a later recovery does not
// re-judge it) and reported as a warning. Anywhere else, a bad frame wraps
// ErrCorrupt: fully synced segments have no torn appends, and a bad record
// with valid data after it is damage, not an interrupted write.
func readSegment(path string, gen uint64, last bool) (recs []Record, warning string, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, "", fmt.Errorf("wal: %s: %w", path, err)
	}
	name := filepath.Base(path)
	if len(b) == 0 {
		// A crash between segment creation and header write; nothing in it.
		return nil, "", nil
	}
	truncate := func(keep int, why string) (warn string, err error) {
		if !last {
			return "", fmt.Errorf("wal: %s: %s at offset %d: %w", name, why, keep, ErrCorrupt)
		}
		if terr := os.Truncate(path, int64(keep)); terr != nil {
			return "", fmt.Errorf("wal: %s: truncating %s at offset %d: %w", name, why, keep, terr)
		}
		return fmt.Sprintf("%s: truncated %s at offset %d (%d bytes dropped)", name, why, keep, len(b)-keep), nil
	}
	if len(b) < len(segMagic) || !bytes.Equal(b[:len(segMagic)], []byte(segMagic)) {
		if len(b) < len(segMagic) && last {
			warning, err = truncate(0, "torn segment header")
			return nil, warning, err
		}
		return nil, "", fmt.Errorf("wal: %s: bad magic: %w", name, ErrCorrupt)
	}
	off := len(segMagic)
	hdr, rest, res := readFrame(b[off:])
	if res != frameOK {
		// frameEOF here means the file ends right after the magic — the
		// header write itself was interrupted.
		if (res == frameTorn || res == frameEOF) && last {
			warning, err = truncate(0, "torn segment header")
			return nil, warning, err
		}
		return nil, "", fmt.Errorf("wal: %s: bad header frame: %w", name, ErrCorrupt)
	}
	g, ok := u64from(hdr)
	if !ok || g != gen {
		return nil, "", fmt.Errorf("wal: %s: header generation %d does not match file name: %w", name, g, ErrCorrupt)
	}
	off = len(b) - len(rest)
	for {
		payload, rest, res := readFrame(b[off:])
		switch res {
		case frameEOF:
			return recs, "", nil
		case frameTorn:
			warning, err = truncate(off, "torn record")
			return recs, warning, err
		case frameCorrupt:
			// A complete frame with a bad checksum can still be the torn
			// final append when nothing follows the announced frame end —
			// writeback reordering under SyncOff can complete the length
			// prefix without the payload. If parseable or garbage bytes
			// follow, it is damage.
			if last && tailEndsAt(b, off) {
				warning, err = truncate(off, "corrupt final record")
				return recs, warning, err
			}
			return nil, "", fmt.Errorf("wal: %s: corrupt record at offset %d: %w", name, off, ErrCorrupt)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			warn, terr := truncate(off, "undecodable record")
			if terr != nil {
				return nil, "", fmt.Errorf("%w (decode: %w)", terr, err)
			}
			return recs, warn, nil
		}
		recs = append(recs, rec)
		off = len(b) - len(rest)
	}
}

// tailEndsAt reports whether the frame starting at off is the last thing in
// the file: its announced end is at or beyond EOF once the checksum and
// length prefix are accounted for.
func tailEndsAt(b []byte, off int) bool {
	size, n := uvarintAt(b, off)
	if n <= 0 {
		return true
	}
	return off+n+4+int(size) >= len(b)
}

func uvarintAt(b []byte, off int) (uint64, int) {
	var v uint64
	var s uint
	for i := off; i < len(b); i++ {
		c := b[i]
		if c < 0x80 {
			return v | uint64(c)<<s, i - off + 1
		}
		v |= uint64(c&0x7f) << s
		s += 7
		if s > 63 {
			return 0, -1
		}
	}
	return 0, 0
}

// NewestCheckpoint returns the newest readable checkpoint in dir — the one
// recovery would choose — without touching the log segments or modifying
// anything.
func NewestCheckpoint(dir string) (gen uint64, state []byte, path string, err error) {
	ckpts, _ := listDir(dir)
	for i := len(ckpts) - 1; i >= 0; i-- {
		path = filepath.Join(dir, ckptName(ckpts[i]))
		if state, err = readCheckpoint(path, ckpts[i]); err == nil {
			return ckpts[i], state, path, nil
		}
	}
	if len(ckpts) == 0 {
		return 0, nil, "", fmt.Errorf("wal: %s: no checkpoint", dir)
	}
	return 0, nil, "", fmt.Errorf("wal: %s: every checkpoint unreadable (newest: %w): %w", dir, err, ErrCorrupt)
}

// RecordInfo summarizes one log record for inspection tooling.
type RecordInfo struct {
	Gen       uint64
	DeltaOps  int // DAG mutations (ΔV) in the record
	Mutations int // relational mutations (ΔR) in the record
	Bytes     int // framed size on disk
}

// SegmentInfo summarizes one log segment.
type SegmentInfo struct {
	Path    string
	Start   uint64 // generation the segment starts after
	Records []RecordInfo
	Note    string // non-empty when the tail is torn or a record undecodable
}

// CheckpointInfo summarizes one checkpoint file.
type CheckpointInfo struct {
	Path  string
	Gen   uint64
	Bytes int    // state payload size
	Err   string // non-empty when the file fails validation
}

// DirInfo is the inspection view of a log directory.
type DirInfo struct {
	Checkpoints []CheckpointInfo
	Segments    []SegmentInfo
}

// Inspect lists a log directory without recovering from it: every
// checkpoint with its validity, every segment with its records. It never
// modifies the directory and tolerates damage — findings land in the Err
// and Note fields instead of failing the listing.
func Inspect(dir string) (*DirInfo, error) {
	if _, err := os.Stat(dir); err != nil {
		return nil, fmt.Errorf("wal: inspect: %w", err)
	}
	ckpts, segs := listDir(dir)
	info := &DirInfo{}
	for _, g := range ckpts {
		path := filepath.Join(dir, ckptName(g))
		ci := CheckpointInfo{Path: path, Gen: g}
		if state, err := readCheckpoint(path, g); err != nil {
			ci.Err = err.Error()
		} else {
			ci.Bytes = len(state)
		}
		info.Checkpoints = append(info.Checkpoints, ci)
	}
	for _, g := range segs {
		path := filepath.Join(dir, segName(g))
		si := SegmentInfo{Path: path, Start: g}
		b, err := os.ReadFile(path)
		if err != nil {
			si.Note = err.Error()
			info.Segments = append(info.Segments, si)
			continue
		}
		si.Records, si.Note = scanRecords(b, g)
		info.Segments = append(info.Segments, si)
	}
	return info, nil
}

// scanRecords parses as many records as the segment bytes allow, reporting
// the first problem as a note rather than an error.
func scanRecords(b []byte, gen uint64) (recs []RecordInfo, note string) {
	if len(b) < len(segMagic) || !bytes.Equal(b[:len(segMagic)], []byte(segMagic)) {
		if len(b) == 0 {
			return nil, "empty (no header)"
		}
		return nil, "bad magic"
	}
	hdr, rest, res := readFrame(b[len(segMagic):])
	if res != frameOK {
		return nil, "bad header frame"
	}
	if g, ok := u64from(hdr); !ok || g != gen {
		return nil, fmt.Sprintf("header generation %d does not match file name", g)
	}
	off := len(b) - len(rest)
	for {
		payload, rest, res := readFrame(b[off:])
		switch res {
		case frameEOF:
			return recs, note
		case frameTorn:
			return recs, fmt.Sprintf("torn record at offset %d", off)
		case frameCorrupt:
			return recs, fmt.Sprintf("corrupt record at offset %d", off)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return recs, fmt.Sprintf("undecodable record at offset %d: %v", off, err)
		}
		framed := len(b) - len(rest) - off
		recs = append(recs, RecordInfo{Gen: rec.Gen, DeltaOps: len(rec.Delta), Mutations: len(rec.DR), Bytes: framed})
		off = len(b) - len(rest)
	}
}
