package wal

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// seedLog creates a durable dir with a genesis checkpoint and records 1..n.
func seedLog(t *testing.T, dir string, n uint64) *Log {
	t.Helper()
	l, _ := mustOpen(t, dir, Options{Policy: SyncOff})
	if err := l.WriteCheckpoint(0, []byte("genesis")); err != nil {
		t.Fatalf("genesis checkpoint: %v", err)
	}
	for g := uint64(1); g <= n; g++ {
		if err := l.Append([]Record{rec(g)}); err != nil {
			t.Fatalf("append %d: %v", g, err)
		}
	}
	return l
}

func TestFramedRecordWireRoundTrip(t *testing.T) {
	var wire []byte
	for g := uint64(1); g <= 4; g++ {
		wire = AppendFramedRecord(wire, rec(g))
	}
	fr := NewFrameReader(bytes.NewReader(wire))
	for g := uint64(1); g <= 4; g++ {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("Next %d: %v", g, err)
		}
		if !reflect.DeepEqual(got, rec(g)) {
			t.Fatalf("record %d:\n got  %+v\n want %+v", g, got, rec(g))
		}
	}
	if _, err := fr.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}
}

func TestFrameReaderTornAndCorrupt(t *testing.T) {
	wire := AppendFramedRecord(nil, rec(1))

	// Ends inside the frame: ErrUnexpectedEOF.
	fr := NewFrameReader(bytes.NewReader(wire[:len(wire)-3]))
	if _, err := fr.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn frame: %v, want ErrUnexpectedEOF", err)
	}

	// Flipped payload byte: ErrCorrupt.
	bad := append([]byte(nil), wire...)
	bad[len(bad)-1] ^= 0xff
	fr = NewFrameReader(bytes.NewReader(bad))
	if _, err := fr.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt frame: %v, want ErrCorrupt", err)
	}
}

func TestScanFromTail(t *testing.T) {
	dir := t.TempDir()
	l := seedLog(t, dir, 8)
	defer l.Close()

	recs, err := ScanFrom(dir, 3, 8)
	if err != nil {
		t.Fatalf("ScanFrom: %v", err)
	}
	if len(recs) != 5 {
		t.Fatalf("scanned %d records, want 5", len(recs))
	}
	for i, r := range recs {
		if !reflect.DeepEqual(r, rec(uint64(i+4))) {
			t.Fatalf("record %d: %+v", i, r)
		}
	}

	// The watermark gates emission: bytes past it stay invisible even
	// though they are in the segment.
	recs, err = ScanFrom(dir, 0, 2)
	if err != nil {
		t.Fatalf("ScanFrom capped: %v", err)
	}
	if len(recs) != 2 || recs[1].Gen != 2 {
		t.Fatalf("capped scan returned %d records", len(recs))
	}

	// Caught up: nothing to return.
	if recs, err := ScanFrom(dir, 8, 8); err != nil || len(recs) != 0 {
		t.Fatalf("caught-up scan: %d records, err %v", len(recs), err)
	}
}

func TestScanFromSpansCheckpoints(t *testing.T) {
	dir := t.TempDir()
	l := seedLog(t, dir, 3)
	defer l.Close()
	if err := l.WriteCheckpoint(3, []byte("at3")); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	for g := uint64(4); g <= 6; g++ {
		if err := l.Append([]Record{rec(g)}); err != nil {
			t.Fatalf("append %d: %v", g, err)
		}
	}
	recs, err := ScanFrom(dir, 1, 6)
	if err != nil {
		t.Fatalf("ScanFrom across rotation: %v", err)
	}
	if len(recs) != 5 || recs[0].Gen != 2 || recs[4].Gen != 6 {
		t.Fatalf("scan across rotation: %d records", len(recs))
	}
}

func TestScanFromPruned(t *testing.T) {
	dir := t.TempDir()
	l := seedLog(t, dir, 3)
	defer l.Close()
	// Two checkpoints on top of genesis: Keep=2 prunes wal-0, the segment
	// that held generations 1..3.
	if err := l.WriteCheckpoint(3, []byte("at3")); err != nil {
		t.Fatalf("checkpoint 3: %v", err)
	}
	if err := l.Append([]Record{rec(4)}); err != nil {
		t.Fatalf("append 4: %v", err)
	}
	if err := l.WriteCheckpoint(4, []byte("at4")); err != nil {
		t.Fatalf("checkpoint 4: %v", err)
	}

	if _, err := ScanFrom(dir, 1, 4); !errors.Is(err, ErrPruned) {
		t.Fatalf("scan from pruned generation: %v, want ErrPruned", err)
	}
	if oldest, err := Oldest(dir); err != nil || oldest != 3 {
		t.Fatalf("Oldest = %d, %v; want 3", oldest, err)
	}
	// From the oldest surviving segment the scan works.
	recs, err := ScanFrom(dir, 3, 4)
	if err != nil || len(recs) != 1 || recs[0].Gen != 4 {
		t.Fatalf("scan from oldest: %d records, err %v", len(recs), err)
	}
}

func TestScanFromToleratesTornActiveTail(t *testing.T) {
	dir := t.TempDir()
	l := seedLog(t, dir, 4)
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Chop into the final record: a concurrent reader seeing a half-written
	// append must treat it as end-of-available, not damage — and must not
	// repair the file (that is recovery's job, and only recovery's).
	seg := filepath.Join(dir, segName(0))
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, b[:len(b)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := ScanFrom(dir, 0, 4)
	if err != nil {
		t.Fatalf("ScanFrom over torn tail: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("scanned %d records over torn tail, want 3", len(recs))
	}
	after, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(b)-3 {
		t.Fatalf("read-only scan changed the segment: %d bytes, had %d", len(after), len(b)-3)
	}
}
