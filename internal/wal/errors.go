package wal

import (
	"errors"
	"fmt"
)

// ErrDiskFailure marks an I/O failure on the durability layer's own files —
// a failed append write, fsync or checkpoint write. The concrete type is
// *DiskFailureError. It is distinct from ErrCorrupt (the bytes on disk are
// wrong) and ErrMismatch (the files disagree with each other): a disk
// failure means the hardware refused the operation, and the log refuses
// further writes until Reopen so a half-durable state can never accrete.
var ErrDiskFailure = errors.New("wal: disk failure")

// DiskFailureError attributes one disk failure: the file, the operation
// ("append", "fsync" or "checkpoint"), and — for segment operations — the
// byte offset where the failing record batch started, so the damage can be
// located without re-parsing the segment. Offset is -1 when none applies
// (a checkpoint temp file).
type DiskFailureError struct {
	Path   string
	Op     string
	Offset int64
	Err    error
}

func (e *DiskFailureError) Error() string {
	if e.Offset >= 0 {
		return fmt.Sprintf("wal: disk failure: %s %s at offset %d: %v", e.Op, e.Path, e.Offset, e.Err)
	}
	return fmt.Sprintf("wal: disk failure: %s %s: %v", e.Op, e.Path, e.Err)
}

// Is matches ErrDiskFailure.
func (e *DiskFailureError) Is(target error) bool { return target == ErrDiskFailure }

// Unwrap exposes the underlying I/O (or injected) error.
func (e *DiskFailureError) Unwrap() error { return e.Err }
