package wal

// Streaming read path for replication. A primary's change-log source reads
// committed records back out of the log directory while the writer keeps
// appending to it, so everything here is strictly read-only: unlike boot
// recovery, a catch-up scan never truncates a torn tail — the tail of the
// active segment is simply where the available history ends (the writer may
// be mid-append, or about to roll the bytes back after a failed fsync).
// Callers bound what they emit by a durability watermark they track
// themselves; ScanFrom's max parameter is that gate.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// ErrPruned marks a catch-up request for generations the log no longer
// holds: checkpointing pruned the segments that carried them. The caller
// restarts from the newest checkpoint instead.
var ErrPruned = errors.New("wal: generations pruned")

// AppendFramedRecord appends r to dst in the exact on-disk frame format
// Append uses (uvarint length, CRC-32C, payload), so a follower can feed the
// bytes straight into a FrameReader.
func AppendFramedRecord(dst []byte, r Record) []byte {
	return appendFrame(dst, appendRecord(nil, r))
}

// FrameReader decodes a stream of CRC-framed records from r — the wire twin
// of a segment's record region. Next returns io.EOF at a clean stream end,
// io.ErrUnexpectedEOF when the stream ends inside a frame, and an error
// wrapping ErrCorrupt on a checksum or decode failure.
type FrameReader struct {
	r   *bufio.Reader
	buf []byte
}

// NewFrameReader wraps r (typically an HTTP response body).
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReader(r)}
}

// Next reads one framed record.
func (fr *FrameReader) Next() (Record, error) {
	size, err := binary.ReadUvarint(fr.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("wal: frame length: %w", err)
	}
	if size > maxFrame {
		return Record{}, fmt.Errorf("wal: frame of %d bytes exceeds limit: %w", size, ErrCorrupt)
	}
	need := 4 + int(size)
	if cap(fr.buf) < need {
		fr.buf = make([]byte, need)
	}
	b := fr.buf[:need]
	if _, err := io.ReadFull(fr.r, b); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return Record{}, err
	}
	sum := binary.BigEndian.Uint32(b)
	payload := b[4:]
	if crc32.Checksum(payload, castagnoli) != sum {
		return Record{}, fmt.Errorf("wal: frame checksum mismatch: %w", ErrCorrupt)
	}
	rec, err := decodeRecord(payload)
	if err != nil {
		return Record{}, fmt.Errorf("%w: %w", err, ErrCorrupt)
	}
	return rec, nil
}

// Oldest returns the oldest generation a catch-up scan of dir can start
// from: the start generation of the oldest retained segment. A follower at
// a generation below it must refetch the checkpoint.
func Oldest(dir string) (uint64, error) {
	_, segs := listDir(dir)
	if len(segs) == 0 {
		return 0, fmt.Errorf("wal: %s: no log segments", dir)
	}
	return segs[0], nil
}

// ScanFrom reads the records of generations in (from, max] out of dir
// without modifying anything — the replication catch-up path. The records
// come back gen-contiguous from from+1; a gap wraps ErrMismatch and damage
// in a sealed segment wraps ErrCorrupt, but a torn or corrupt tail of the
// physically last segment just ends the scan: the writer may be appending
// there concurrently, and max (the caller's durability watermark) is what
// separates committed history from in-flight bytes. When the segments that
// held from+1 have been pruned by checkpointing, ScanFrom wraps ErrPruned.
func ScanFrom(dir string, from, max uint64) ([]Record, error) {
	if max <= from {
		return nil, nil
	}
	_, segs := listDir(dir)
	if len(segs) == 0 {
		return nil, fmt.Errorf("wal: %s: no log segments: %w", dir, ErrPruned)
	}
	if from < segs[0] {
		return nil, fmt.Errorf("wal: %s: generation %d predates oldest segment %d: %w",
			dir, from+1, segs[0], ErrPruned)
	}
	var out []Record
	prev := from
	for i, g := range segs {
		// Segment wal-g holds generations in (g, next checkpoint]; when the
		// following segment starts at or before from, this one is entirely
		// behind the cursor.
		if i+1 < len(segs) && segs[i+1] <= from {
			continue
		}
		recs, err := scanSegment(filepath.Join(dir, segName(g)), g, i == len(segs)-1)
		if err != nil {
			return nil, err
		}
		for _, r := range recs {
			if r.Gen <= from {
				continue
			}
			if r.Gen > max {
				return out, nil
			}
			if r.Gen != prev+1 {
				return nil, fmt.Errorf("wal: %s: record for generation %d follows generation %d: %w",
					segName(g), r.Gen, prev, ErrMismatch)
			}
			prev = r.Gen
			out = append(out, r)
		}
	}
	return out, nil
}

// scanSegment is readSegment's read-only twin: same parse, no repair. In the
// physically last segment any tail problem — torn frame, checksum failure on
// the final frame, undecodable record — ends the scan silently (an append
// may be in flight there); anywhere else it wraps ErrCorrupt.
func scanSegment(path string, gen uint64, last bool) ([]Record, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: %s: %w", path, err)
	}
	name := filepath.Base(path)
	if len(b) == 0 {
		return nil, nil
	}
	if len(b) < len(segMagic) || !bytes.Equal(b[:len(segMagic)], []byte(segMagic)) {
		if len(b) < len(segMagic) && last {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: %s: bad magic: %w", name, ErrCorrupt)
	}
	hdr, rest, res := readFrame(b[len(segMagic):])
	if res != frameOK {
		if (res == frameTorn || res == frameEOF) && last {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: %s: bad header frame: %w", name, ErrCorrupt)
	}
	if g, ok := u64from(hdr); !ok || g != gen {
		return nil, fmt.Errorf("wal: %s: header generation %d does not match file name: %w", name, g, ErrCorrupt)
	}
	var recs []Record
	off := len(b) - len(rest)
	for {
		payload, rest, res := readFrame(b[off:])
		switch res {
		case frameEOF:
			return recs, nil
		case frameTorn:
			if last {
				return recs, nil
			}
			return nil, fmt.Errorf("wal: %s: torn record at offset %d: %w", name, off, ErrCorrupt)
		case frameCorrupt:
			if last && tailEndsAt(b, off) {
				return recs, nil
			}
			return nil, fmt.Errorf("wal: %s: corrupt record at offset %d: %w", name, off, ErrCorrupt)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			if last {
				return recs, nil
			}
			return nil, fmt.Errorf("wal: %s: undecodable record at offset %d: %w: %w", name, off, err, ErrCorrupt)
		}
		recs = append(recs, rec)
		off = len(b) - len(rest)
	}
}
