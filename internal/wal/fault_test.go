package wal

import (
	"errors"
	"path/filepath"
	"testing"

	"rxview/internal/fault"
)

// openForAppend opens a fresh log in a temp dir with its boot checkpoint
// written, ready for appends.
func openForAppend(t *testing.T, pol SyncPolicy) *Log {
	t.Helper()
	dir := t.TempDir()
	l, boot, err := Open(dir, Options{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	if boot != nil {
		t.Fatal("fresh dir returned boot state")
	}
	if err := l.WriteCheckpoint(0, []byte("state-0")); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func armed(t *testing.T, seed int64, rules ...fault.Rule) *fault.Plan {
	t.Helper()
	p, err := fault.NewPlan(seed, rules...)
	if err != nil {
		t.Fatal(err)
	}
	fault.Install(p)
	t.Cleanup(fault.Uninstall)
	return p
}

// TestDiskFailureRoundTrip: an injected fsync failure surfaces as a typed
// *DiskFailureError matching ErrDiskFailure under errors.Is, attributing
// the file and the failing batch's offset.
func TestDiskFailureRoundTrip(t *testing.T) {
	l := openForAppend(t, SyncAlways)
	if err := l.Append([]Record{rec(1)}); err != nil {
		t.Fatal(err)
	}
	wantOff := l.size

	armed(t, 1, fault.Rule{Point: fault.WALFsync, Count: 1})
	err := l.Append([]Record{rec(2)})
	if err == nil {
		t.Fatal("append with injected fsync failure succeeded")
	}
	if !errors.Is(err, ErrDiskFailure) {
		t.Fatalf("error does not match ErrDiskFailure: %v", err)
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("error does not unwrap to the injected cause: %v", err)
	}
	var dfe *DiskFailureError
	if !errors.As(err, &dfe) {
		t.Fatalf("errors.As(*DiskFailureError) failed: %v", err)
	}
	if dfe.Op != "fsync" || dfe.Offset != wantOff || dfe.Path == "" {
		t.Fatalf("attribution = %+v, want op=fsync offset=%d", dfe, wantOff)
	}

	// The log is dead now: the next append fails fast with the cause.
	if err := l.Append([]Record{rec(2)}); !errors.Is(err, ErrDiskFailure) {
		t.Fatalf("append on dead log: %v", err)
	}
	if l.Failed() == nil {
		t.Fatal("Failed() nil on a dead log")
	}
}

// TestFailedAppendNeverReplays: records whose append failed (fsync fault,
// crash-before-fsync) must be absent from a subsequent recovery, while
// records from successful appends survive — the durable-before-verdict
// contract under faults.
func TestFailedAppendNeverReplays(t *testing.T) {
	for _, point := range []fault.Point{fault.WALFsync, fault.CrashBeforeFsync} {
		t.Run(string(point), func(t *testing.T) {
			l := openForAppend(t, SyncAlways)
			dir := l.Dir()
			if err := l.Append([]Record{rec(1)}); err != nil {
				t.Fatal(err)
			}
			armed(t, 1, fault.Rule{Point: point, Count: 1})
			if err := l.Append([]Record{rec(2)}); err == nil {
				t.Fatal("injected failure did not fail the append")
			}
			fault.Uninstall()
			l.Close()

			_, boot, err := Open(dir, Options{Policy: SyncAlways})
			if err != nil {
				t.Fatal(err)
			}
			if boot == nil {
				t.Fatal("no boot state")
			}
			for _, r := range boot.Records {
				if r.Gen == 2 {
					t.Fatal("rejected record resurfaced in recovery")
				}
			}
			if len(boot.Records) != 1 || boot.Records[0].Gen != 1 {
				t.Fatalf("recovered records = %+v, want exactly gen 1", boot.Records)
			}
		})
	}
}

// TestCrashAfterFsyncKeepsVerdict: the crash-after-fsync point must NOT
// fail the append whose record is already durable — only later appends die.
func TestCrashAfterFsyncKeepsVerdict(t *testing.T) {
	l := openForAppend(t, SyncAlways)
	dir := l.Dir()
	armed(t, 1, fault.Rule{Point: fault.CrashAfterFsync, Count: 1})
	if err := l.Append([]Record{rec(1)}); err != nil {
		t.Fatalf("crash-after-fsync failed the durable append: %v", err)
	}
	if l.Failed() == nil {
		t.Fatal("log not dead after crash-after-fsync")
	}
	if err := l.Append([]Record{rec(2)}); !errors.Is(err, ErrDiskFailure) {
		t.Fatalf("append after crash-after-fsync: %v", err)
	}
	fault.Uninstall()
	l.Close() // Close on a dead log; recovery below must still see gen 1

	_, boot, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if boot == nil || len(boot.Records) != 1 || boot.Records[0].Gen != 1 {
		t.Fatalf("recovered records = %+v, want exactly the durable gen 1", boot)
	}
}

// TestReopenRevivesDeadLog: Reopen + WriteCheckpoint is the degraded-mode
// recovery path — after it the log accepts appends again and a fresh
// recovery sees the post-recovery history.
func TestReopenRevivesDeadLog(t *testing.T) {
	l := openForAppend(t, SyncAlways)
	dir := l.Dir()
	if err := l.Append([]Record{rec(1)}); err != nil {
		t.Fatal(err)
	}
	armed(t, 1, fault.Rule{Point: fault.WALFsync, Count: 1})
	if err := l.Append([]Record{rec(2)}); err == nil {
		t.Fatal("injected failure did not fail the append")
	}
	fault.Uninstall()

	if _, err := l.Reopen(); err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	if l.Failed() != nil {
		t.Fatalf("log still dead after Reopen: %v", l.Failed())
	}
	// Like boot: the caller checkpoints the authoritative state (here,
	// generation 1) to re-establish the active segment.
	if err := l.WriteCheckpoint(1, []byte("state-1")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]Record{rec(2)}); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	l.Close()

	_, boot, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if boot == nil || boot.Gen != 1 || len(boot.Records) != 1 || boot.Records[0].Gen != 2 {
		t.Fatalf("recovered to %+v, want checkpoint 1 + record 2", boot)
	}
}

// TestCheckpointWriteFault: an injected checkpoint failure is typed, names
// the target file, and leaves the log alive (appends keep working — the
// epoch just was not sealed).
func TestCheckpointWriteFault(t *testing.T) {
	l := openForAppend(t, SyncAlways)
	if err := l.Append([]Record{rec(1)}); err != nil {
		t.Fatal(err)
	}
	armed(t, 1, fault.Rule{Point: fault.CheckpointWrite, Count: 1})
	err := l.WriteCheckpoint(1, []byte("state-1"))
	if !errors.Is(err, ErrDiskFailure) {
		t.Fatalf("checkpoint fault: %v", err)
	}
	var dfe *DiskFailureError
	if !errors.As(err, &dfe) || dfe.Op != "checkpoint" || dfe.Offset != -1 {
		t.Fatalf("attribution = %+v", dfe)
	}
	if want := filepath.Join(l.Dir(), ckptName(1)); dfe.Path != want {
		t.Fatalf("path = %q, want %q", dfe.Path, want)
	}
	if err := l.Append([]Record{rec(2)}); err != nil {
		t.Fatalf("append after failed checkpoint: %v", err)
	}
}

// TestDiskFullAndWriteFaults: the remaining error points reject the append
// before anything is written, so the log survives without truncation.
func TestDiskFullAndWriteFaults(t *testing.T) {
	l := openForAppend(t, SyncAlways)
	armed(t, 1,
		fault.Rule{Point: fault.WALAppend, Count: 1},
		fault.Rule{Point: fault.WALDiskFull, Count: 1})
	if err := l.Append([]Record{rec(1)}); !errors.Is(err, ErrDiskFailure) {
		t.Fatalf("write fault: %v", err)
	}
	if err := l.Append([]Record{rec(1)}); !errors.Is(err, ErrDiskFailure) {
		t.Fatalf("disk-full fault: %v", err)
	}
	// Both fired before write(2): the log itself is still healthy.
	if l.Failed() != nil {
		t.Fatalf("pre-write faults killed the log: %v", l.Failed())
	}
	if err := l.Append([]Record{rec(1)}); err != nil {
		t.Fatalf("append after exhausted faults: %v", err)
	}
}
