package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLitBasics(t *testing.T) {
	p, n := Pos(3), Neg(3)
	if p.Var() != 3 || n.Var() != 3 {
		t.Error("Var")
	}
	if p.Negated() || !n.Negated() {
		t.Error("Negated")
	}
	if p.Not() != n || n.Not() != p {
		t.Error("Not")
	}
	assign := []bool{false, false, false, true}
	if !p.Satisfied(assign) || n.Satisfied(assign) {
		t.Error("Satisfied")
	}
	if p.String() != "x3" || n.String() != "¬x3" {
		t.Errorf("String: %s %s", p, n)
	}
}

func TestCNFBuilders(t *testing.T) {
	f := NewCNF()
	a, b, c := f.NewVar(), f.NewVar(), f.NewVar()
	f.AddExactlyOne(Pos(a), Pos(b), Pos(c))
	// 1 at-least-one + 3 pairwise at-most-one clauses
	if len(f.Clauses) != 4 {
		t.Fatalf("clauses = %d", len(f.Clauses))
	}
	if f.NumVars != 3 {
		t.Fatalf("NumVars = %d", f.NumVars)
	}
	if !f.Satisfied([]bool{true, false, false}) {
		t.Error("one-hot assignment should satisfy")
	}
	if f.Satisfied([]bool{true, true, false}) {
		t.Error("two-hot assignment should not satisfy")
	}
	if f.Satisfied([]bool{false, false, false}) {
		t.Error("zero-hot assignment should not satisfy")
	}
	g := f.Clone()
	g.AddClause(Neg(a))
	if len(f.Clauses) == len(g.Clauses) {
		t.Error("Clone aliases clause slice")
	}
	if f.String() == "" || NewCNF().String() != "⊤" {
		t.Error("String")
	}
	if (Clause{}).String() != "⊥" {
		t.Error("empty clause string")
	}
}

func TestCNFAddClauseGrowsVars(t *testing.T) {
	f := NewCNF()
	f.AddClause(Pos(9))
	if f.NumVars != 10 {
		t.Errorf("NumVars = %d", f.NumVars)
	}
}

func TestDPLLSimple(t *testing.T) {
	// (a ∨ b) ∧ (¬a ∨ b) ∧ (¬b ∨ c) — satisfiable, forces b, c.
	f := NewCNF()
	a, b, c := f.NewVar(), f.NewVar(), f.NewVar()
	f.AddClause(Pos(a), Pos(b))
	f.AddClause(Neg(a), Pos(b))
	f.AddClause(Neg(b), Pos(c))
	m, ok := DPLL(f)
	if !ok {
		t.Fatal("should be SAT")
	}
	if !f.Satisfied(m) {
		t.Fatal("model does not satisfy")
	}
	if !m[b] || !m[c] {
		t.Errorf("model = %v, want b,c true", m)
	}
}

func TestDPLLUnsat(t *testing.T) {
	// (a) ∧ (¬a)
	f := NewCNF()
	a := f.NewVar()
	f.AddClause(Pos(a))
	f.AddClause(Neg(a))
	if _, ok := DPLL(f); ok {
		t.Error("should be UNSAT")
	}
	// Empty clause.
	g := NewCNF()
	g.AddClause()
	if _, ok := DPLL(g); ok {
		t.Error("empty clause should be UNSAT")
	}
	// Pigeonhole PHP(2,1): two pigeons one hole.
	h := NewCNF()
	p1, p2 := h.NewVar(), h.NewVar()
	h.AddClause(Pos(p1))
	h.AddClause(Pos(p2))
	h.AddClause(Neg(p1), Neg(p2))
	if _, ok := DPLL(h); ok {
		t.Error("PHP should be UNSAT")
	}
}

func TestDPLLEmptyFormula(t *testing.T) {
	f := NewCNF()
	f.NumVars = 2
	if _, ok := DPLL(f); !ok {
		t.Error("empty formula should be SAT")
	}
}

func TestWalkSATFindsModels(t *testing.T) {
	f := NewCNF()
	vars := make([]int, 6)
	for i := range vars {
		vars[i] = f.NewVar()
	}
	// Chain of implications plus an exactly-one block.
	f.AddClause(Neg(vars[0]), Pos(vars[1]))
	f.AddClause(Neg(vars[1]), Pos(vars[2]))
	f.AddExactlyOne(Pos(vars[3]), Pos(vars[4]), Pos(vars[5]))
	m, ok := WalkSAT(f, WalkSATOptions{Seed: 1})
	if !ok {
		t.Fatal("WalkSAT failed on easy SAT instance")
	}
	if !f.Satisfied(m) {
		t.Fatal("WalkSAT returned non-model")
	}
}

func TestWalkSATTrivialAndContradiction(t *testing.T) {
	f := NewCNF()
	f.NumVars = 3
	if m, ok := WalkSAT(f, WalkSATOptions{Seed: 1}); !ok || len(m) != 3 {
		t.Error("empty formula should be SAT")
	}
	f.AddClause()
	if _, ok := WalkSAT(f, WalkSATOptions{Seed: 1}); ok {
		t.Error("empty clause should fail fast")
	}
}

// randomCNF generates a random 3-CNF with the given clause/variable ratio.
func randomCNF(rng *rand.Rand, nVars, nClauses int) *CNF {
	f := &CNF{NumVars: nVars}
	for i := 0; i < nClauses; i++ {
		c := make(Clause, 3)
		for j := range c {
			v := rng.Intn(nVars)
			if rng.Intn(2) == 0 {
				c[j] = Pos(v)
			} else {
				c[j] = Neg(v)
			}
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}

// Property: on random instances, WalkSAT never returns a wrong model, and
// whenever DPLL says SAT on an easy (underconstrained) instance, WalkSAT
// finds a model too.
func TestWalkSATAgreesWithDPLL(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := randomCNF(rng, 10, 25) // ratio 2.5: almost surely SAT
		mDPLL, satDPLL := DPLL(f)
		if satDPLL && !f.Satisfied(mDPLL) {
			return false
		}
		mWalk, satWalk := WalkSAT(f, WalkSATOptions{Seed: seed, MaxFlips: 20000, MaxRestarts: 20})
		if satWalk && !f.Satisfied(mWalk) {
			return false
		}
		if satWalk && !satDPLL {
			return false // WalkSAT found a model DPLL says cannot exist
		}
		if satDPLL && !satWalk {
			return false // easy instance: WalkSAT should find it
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWalkSATNeverClaimsUnsatModels(t *testing.T) {
	// Over-constrained instances: WalkSAT must never return ok with a
	// non-satisfying assignment.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		f := randomCNF(rng, 8, 60) // ratio 7.5: almost surely UNSAT
		m, ok := WalkSAT(f, WalkSATOptions{Seed: int64(i), MaxFlips: 2000, MaxRestarts: 3})
		if ok && !f.Satisfied(m) {
			t.Fatal("WalkSAT returned non-model")
		}
	}
}

func TestTautology(t *testing.T) {
	// x ∨ ¬x is a tautology.
	if !Tautology(1, [][]Lit{{Pos(0)}, {Neg(0)}}) {
		t.Error("x ∨ ¬x should be a tautology")
	}
	// x ∨ y is not.
	if Tautology(2, [][]Lit{{Pos(0)}, {Pos(1)}}) {
		t.Error("x ∨ y should not be a tautology")
	}
	// (x∧y) ∨ (¬x) ∨ (¬y) is a tautology.
	if !Tautology(2, [][]Lit{{Pos(0), Pos(1)}, {Neg(0)}, {Neg(1)}}) {
		t.Error("(x∧y) ∨ ¬x ∨ ¬y should be a tautology")
	}
	// (x∧y) ∨ (¬x∧¬y) is not (x=T,y=F escapes).
	if Tautology(2, [][]Lit{{Pos(0), Pos(1)}, {Neg(0), Neg(1)}}) {
		t.Error("xor-ish DNF should not be a tautology")
	}
}

func TestWalkSATOptionsDefaults(t *testing.T) {
	o := WalkSATOptions{}.withDefaults()
	if o.MaxFlips <= 0 || o.MaxRestarts <= 0 || o.Noise <= 0 || o.Noise > 1 {
		t.Errorf("bad defaults: %+v", o)
	}
	o = WalkSATOptions{Noise: 2}.withDefaults()
	if o.Noise != 0.5 {
		t.Errorf("out-of-range noise not clamped: %v", o.Noise)
	}
}
