// Package sat implements the propositional satisfiability machinery the
// paper's view-insertion translator needs (Section 4.3): a CNF
// representation, the WalkSAT local-search solver (the paper uses Selman &
// Kautz's Walksat [30]), and a complete DPLL solver used as an exact oracle
// in tests and for small instances.
package sat

import (
	"fmt"
	"strings"
)

// Lit is a literal: variable index v (0-based) encoded as v<<1, with the low
// bit set for negation.
type Lit int32

// Pos returns the positive literal of variable v.
func Pos(v int) Lit { return Lit(v << 1) }

// Neg returns the negative literal of variable v.
func Neg(v int) Lit { return Lit(v<<1 | 1) }

// Var returns the variable index of the literal.
func (l Lit) Var() int { return int(l >> 1) }

// Negated reports whether the literal is negative.
func (l Lit) Negated() bool { return l&1 == 1 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

// Satisfied reports whether the literal holds under the assignment.
func (l Lit) Satisfied(assign []bool) bool {
	return assign[l.Var()] != l.Negated()
}

func (l Lit) String() string {
	if l.Negated() {
		return fmt.Sprintf("¬x%d", l.Var())
	}
	return fmt.Sprintf("x%d", l.Var())
}

// Clause is a disjunction of literals.
type Clause []Lit

// Satisfied reports whether some literal of the clause holds.
func (c Clause) Satisfied(assign []bool) bool {
	for _, l := range c {
		if l.Satisfied(assign) {
			return true
		}
	}
	return false
}

func (c Clause) String() string {
	if len(c) == 0 {
		return "⊥"
	}
	parts := make([]string, len(c))
	for i, l := range c {
		parts[i] = l.String()
	}
	return "(" + strings.Join(parts, " ∨ ") + ")"
}

// CNF is a conjunction of clauses over NumVars variables.
type CNF struct {
	NumVars int
	Clauses []Clause
}

// NewCNF returns an empty formula.
func NewCNF() *CNF { return &CNF{} }

// NewVar allocates a fresh variable and returns its index.
func (f *CNF) NewVar() int {
	v := f.NumVars
	f.NumVars++
	return v
}

// AddClause appends a clause. Adding an empty clause makes the formula
// trivially unsatisfiable.
func (f *CNF) AddClause(lits ...Lit) {
	c := make(Clause, len(lits))
	copy(c, lits)
	f.Clauses = append(f.Clauses, c)
	for _, l := range lits {
		if l.Var() >= f.NumVars {
			f.NumVars = l.Var() + 1
		}
	}
}

// AddAtLeastOne adds (l1 ∨ ... ∨ ln).
func (f *CNF) AddAtLeastOne(lits ...Lit) { f.AddClause(lits...) }

// AddAtMostOne adds the pairwise encoding (¬li ∨ ¬lj) for i<j — the paper's
// "add conjuncts (p̄ ∨ p̄′)" step ensuring a variable takes one domain value.
func (f *CNF) AddAtMostOne(lits ...Lit) {
	for i := 0; i < len(lits); i++ {
		for j := i + 1; j < len(lits); j++ {
			f.AddClause(lits[i].Not(), lits[j].Not())
		}
	}
}

// AddExactlyOne combines AddAtLeastOne and AddAtMostOne.
func (f *CNF) AddExactlyOne(lits ...Lit) {
	f.AddAtLeastOne(lits...)
	f.AddAtMostOne(lits...)
}

// Satisfied reports whether every clause holds under the assignment.
func (f *CNF) Satisfied(assign []bool) bool {
	for _, c := range f.Clauses {
		if !c.Satisfied(assign) {
			return false
		}
	}
	return true
}

// Clone deep-copies the formula.
func (f *CNF) Clone() *CNF {
	out := &CNF{NumVars: f.NumVars, Clauses: make([]Clause, len(f.Clauses))}
	for i, c := range f.Clauses {
		out.Clauses[i] = append(Clause(nil), c...)
	}
	return out
}

func (f *CNF) String() string {
	if len(f.Clauses) == 0 {
		return "⊤"
	}
	parts := make([]string, len(f.Clauses))
	for i, c := range f.Clauses {
		parts[i] = c.String()
	}
	return strings.Join(parts, " ∧ ")
}
