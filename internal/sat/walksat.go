package sat

import "math/rand"

// WalkSATOptions tunes the local-search solver.
type WalkSATOptions struct {
	MaxFlips    int     // flips per try (default 10000)
	MaxRestarts int     // independent tries (default 10)
	Noise       float64 // probability of a random walk move (default 0.5)
	Seed        int64   // RNG seed; fixed for reproducibility
}

func (o WalkSATOptions) withDefaults() WalkSATOptions {
	if o.MaxFlips <= 0 {
		o.MaxFlips = 10000
	}
	if o.MaxRestarts <= 0 {
		o.MaxRestarts = 10
	}
	if o.Noise <= 0 || o.Noise > 1 {
		o.Noise = 0.5
	}
	return o
}

// WalkSAT runs the classic WalkSAT procedure (Selman, Kautz & Cohen): start
// from a random assignment; while some clause is unsatisfied, pick one at
// random and flip either a random variable in it (with probability Noise) or
// the variable with minimal "break count" (the number of currently satisfied
// clauses the flip would falsify).
//
// It returns a satisfying assignment and true, or nil and false if none was
// found within the budget. Like the paper's Walksat, it is incomplete: false
// does not prove unsatisfiability (the paper accepts this, rejecting the view
// update when the solver fails; §4.3).
func WalkSAT(f *CNF, opts WalkSATOptions) ([]bool, bool) {
	opts = opts.withDefaults()
	if len(f.Clauses) == 0 {
		return make([]bool, f.NumVars), true
	}
	for _, c := range f.Clauses {
		if len(c) == 0 {
			return nil, false
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	// occurrence lists: clauses containing each literal polarity
	occPos := make([][]int32, f.NumVars)
	occNeg := make([][]int32, f.NumVars)
	for ci, c := range f.Clauses {
		for _, l := range c {
			if l.Negated() {
				occNeg[l.Var()] = append(occNeg[l.Var()], int32(ci))
			} else {
				occPos[l.Var()] = append(occPos[l.Var()], int32(ci))
			}
		}
	}

	assign := make([]bool, f.NumVars)
	numSat := make([]int32, len(f.Clauses)) // satisfied-literal count per clause
	unsat := make([]int32, 0, len(f.Clauses))
	unsatPos := make([]int32, len(f.Clauses)) // position of clause in unsat, -1 if absent

	recompute := func() {
		unsat = unsat[:0]
		for ci, c := range f.Clauses {
			n := int32(0)
			for _, l := range c {
				if l.Satisfied(assign) {
					n++
				}
			}
			numSat[ci] = n
			if n == 0 {
				unsatPos[ci] = int32(len(unsat))
				unsat = append(unsat, int32(ci))
			} else {
				unsatPos[ci] = -1
			}
		}
	}

	// flip updates assignment and incremental clause state.
	flip := func(v int) {
		assign[v] = !assign[v]
		var nowTrue, nowFalse [][]int32
		if assign[v] {
			nowTrue, nowFalse = occPos, occNeg
		} else {
			nowTrue, nowFalse = occNeg, occPos
		}
		for _, ci := range nowTrue[v] {
			numSat[ci]++
			if numSat[ci] == 1 { // leaves unsat set
				p := unsatPos[ci]
				last := unsat[len(unsat)-1]
				unsat[p] = last
				unsatPos[last] = p
				unsat = unsat[:len(unsat)-1]
				unsatPos[ci] = -1
			}
		}
		for _, ci := range nowFalse[v] {
			numSat[ci]--
			if numSat[ci] == 0 { // enters unsat set
				unsatPos[ci] = int32(len(unsat))
				unsat = append(unsat, ci)
			}
		}
	}

	breakCount := func(v int) int {
		// Clauses that are satisfied only by v's current polarity would
		// break if we flip v.
		var satLits [][]int32
		if assign[v] {
			satLits = occPos
		} else {
			satLits = occNeg
		}
		b := 0
		for _, ci := range satLits[v] {
			if numSat[ci] == 1 {
				b++
			}
		}
		return b
	}

	for try := 0; try < opts.MaxRestarts; try++ {
		for v := range assign {
			assign[v] = rng.Intn(2) == 0
		}
		recompute()
		for fl := 0; fl < opts.MaxFlips; fl++ {
			if len(unsat) == 0 {
				out := make([]bool, len(assign))
				copy(out, assign)
				return out, true
			}
			c := f.Clauses[unsat[rng.Intn(len(unsat))]]
			var v int
			if rng.Float64() < opts.Noise {
				v = c[rng.Intn(len(c))].Var()
			} else {
				best, bestBreak := -1, int(^uint(0)>>1)
				for _, l := range c {
					if b := breakCount(l.Var()); b < bestBreak {
						best, bestBreak = l.Var(), b
					}
				}
				v = best
			}
			flip(v)
		}
	}
	return nil, false
}
