package sat

// DPLL is a complete SAT solver (Davis–Putnam–Logemann–Loveland with unit
// propagation and pure-literal elimination). It decides satisfiability
// exactly, unlike WalkSAT; the translator uses it as a fallback oracle for
// small encodings, and tests use it to verify WalkSAT answers and the
// paper's NP-completeness gadgets (Theorems 2 and 3).
func DPLL(f *CNF) ([]bool, bool) {
	assign := make([]int8, f.NumVars) // 0 unknown, 1 true, -1 false
	if !dpll(f.Clauses, assign) {
		return nil, false
	}
	out := make([]bool, f.NumVars)
	for i, a := range assign {
		out[i] = a == 1
	}
	return out, true
}

func dpll(clauses []Clause, assign []int8) bool {
	// Unit propagation + pure literal elimination to fixpoint.
	trail := []int{} // variables assigned at this level, for backtracking
	undo := func() {
		for _, v := range trail {
			assign[v] = 0
		}
	}
	set := func(l Lit) {
		v := l.Var()
		if l.Negated() {
			assign[v] = -1
		} else {
			assign[v] = 1
		}
		trail = append(trail, v)
	}
	litVal := func(l Lit) int8 {
		a := assign[l.Var()]
		if a == 0 {
			return 0
		}
		if l.Negated() {
			return -a
		}
		return a
	}

	for {
		changed := false
		// Unit propagation.
		for _, c := range clauses {
			var unit Lit
			unknown, satisfied := 0, false
			for _, l := range c {
				switch litVal(l) {
				case 1:
					satisfied = true
				case 0:
					unknown++
					unit = l
				}
				if satisfied {
					break
				}
			}
			if satisfied {
				continue
			}
			switch unknown {
			case 0:
				undo()
				return false // conflict
			case 1:
				set(unit)
				changed = true
			}
		}
		if changed {
			continue
		}
		// Pure literal elimination.
		seen := map[int]int8{} // var -> 1 pos only, -1 neg only, 2 both
		for _, c := range clauses {
			sat := false
			for _, l := range c {
				if litVal(l) == 1 {
					sat = true
					break
				}
			}
			if sat {
				continue
			}
			for _, l := range c {
				if litVal(l) != 0 {
					continue
				}
				pol := int8(1)
				if l.Negated() {
					pol = -1
				}
				if prev, ok := seen[l.Var()]; !ok {
					seen[l.Var()] = pol
				} else if prev != pol {
					seen[l.Var()] = 2
				}
			}
		}
		for v, pol := range seen {
			if pol == 1 {
				set(Pos(v))
				changed = true
			} else if pol == -1 {
				set(Neg(v))
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Find a branching variable among still-active clauses.
	branch := -1
	allSat := true
	for _, c := range clauses {
		sat := false
		for _, l := range c {
			if litVal(l) == 1 {
				sat = true
				break
			}
		}
		if sat {
			continue
		}
		allSat = false
		for _, l := range c {
			if litVal(l) == 0 {
				branch = l.Var()
				break
			}
		}
		if branch >= 0 {
			break
		}
	}
	if allSat {
		return true
	}
	if branch < 0 {
		undo()
		return false
	}
	for _, try := range []int8{1, -1} {
		assign[branch] = try
		if dpll(clauses, assign) {
			return true
		}
		assign[branch] = 0
	}
	undo()
	return false
}

// Tautology reports whether the DNF formula ⋁ cubes (each cube a conjunction
// of literals) is a tautology, by checking that its negation (a CNF) is
// unsatisfiable. Used by tests for Theorem 2's non-tautology reduction.
func Tautology(numVars int, cubes [][]Lit) bool {
	f := &CNF{NumVars: numVars}
	for _, cube := range cubes {
		neg := make(Clause, len(cube))
		for i, l := range cube {
			neg[i] = l.Not()
		}
		f.Clauses = append(f.Clauses, neg)
	}
	_, sat := DPLL(f)
	return !sat
}
