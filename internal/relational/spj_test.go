package relational

import (
	"strings"
	"testing"
)

// registrarDB builds the running example of the paper (Example 1).
func registrarDB(t *testing.T) (*Schema, *Database) {
	t.Helper()
	course := MustTableSchema("course", []Column{
		{Name: "cno", Type: KindString},
		{Name: "title", Type: KindString},
		{Name: "dept", Type: KindString},
	}, "cno")
	student := MustTableSchema("student", []Column{
		{Name: "ssn", Type: KindString},
		{Name: "name", Type: KindString},
	}, "ssn")
	enroll := MustTableSchema("enroll", []Column{
		{Name: "ssn", Type: KindString},
		{Name: "cno", Type: KindString},
	}, "ssn", "cno")
	prereq := MustTableSchema("prereq", []Column{
		{Name: "cno1", Type: KindString},
		{Name: "cno2", Type: KindString},
	}, "cno1", "cno2")
	s := MustSchema(course, student, enroll, prereq)
	db := NewDatabase(s)
	db.Rel("course").MustInsert(Str("CS650"), Str("Advanced Topics"), Str("CS"))
	db.Rel("course").MustInsert(Str("CS320"), Str("Databases"), Str("CS"))
	db.Rel("course").MustInsert(Str("CS240"), Str("Algorithms"), Str("CS"))
	db.Rel("course").MustInsert(Str("EE100"), Str("Circuits"), Str("EE"))
	db.Rel("prereq").MustInsert(Str("CS650"), Str("CS320"))
	db.Rel("prereq").MustInsert(Str("CS320"), Str("CS240"))
	db.Rel("student").MustInsert(Str("S01"), Str("Ann"))
	db.Rel("student").MustInsert(Str("S02"), Str("Bob"))
	db.Rel("enroll").MustInsert(Str("S01"), Str("CS650"))
	db.Rel("enroll").MustInsert(Str("S02"), Str("CS320"))
	db.Rel("enroll").MustInsert(Str("S02"), Str("CS240"))
	return s, db
}

// Q_db_course of Fig.2: select c.cno, c.title from course c where c.dept='CS'.
func qDBCourse() *SPJ {
	return &SPJ{
		Name: "Qdb_course",
		From: []TableRef{{Table: "course", Alias: "c"}},
		Where: []EqPred{
			{Left: Col(0, 2), Right: Const(Str("CS"))},
		},
		Selects: []SelectItem{
			{As: "cno", Src: Col(0, 0)},
			{As: "title", Src: Col(0, 1)},
		},
	}
}

// Q_prereq_course of Fig.2: select c.cno, c.title from prereq p, course c
// where p.cno1 = $1 and p.cno2 = c.cno.
func qPrereqCourse() *SPJ {
	return &SPJ{
		Name:    "Qprereq_course",
		NParams: 1,
		From:    []TableRef{{Table: "prereq", Alias: "p"}, {Table: "course", Alias: "c"}},
		Where: []EqPred{
			{Left: Col(0, 0), Right: Param(0)},
			{Left: Col(0, 1), Right: Col(1, 0)},
		},
		Selects: []SelectItem{
			{As: "cno", Src: Col(1, 0)},
			{As: "title", Src: Col(1, 1)},
		},
	}
}

func TestSPJSelectionAndProjection(t *testing.T) {
	s, db := registrarDB(t)
	q := qDBCourse()
	if err := q.Validate(s); err != nil {
		t.Fatal(err)
	}
	rows, err := q.Eval(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("CS courses = %v", rows)
	}
	for _, r := range rows {
		if r[0].S == "EE100" {
			t.Error("EE course leaked through selection")
		}
	}
}

func TestSPJParameterizedJoin(t *testing.T) {
	s, db := registrarDB(t)
	q := qPrereqCourse()
	if err := q.Validate(s); err != nil {
		t.Fatal(err)
	}
	rows, err := q.Eval(db, []Value{Str("CS650")})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].S != "CS320" {
		t.Fatalf("prereq(CS650) = %v", rows)
	}
	rows, err = q.Eval(db, []Value{Str("CS240")})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("prereq(CS240) = %v", rows)
	}
	if _, err := q.Eval(db, nil); err == nil {
		t.Error("missing params accepted")
	}
}

func TestSPJThreeWayJoin(t *testing.T) {
	_, db := registrarDB(t)
	// Students with their enrolled course titles:
	// select s.name, c.title from enroll e, student s, course c
	// where e.ssn = s.ssn and e.cno = c.cno
	q := &SPJ{
		Name: "q3",
		From: []TableRef{{Table: "enroll"}, {Table: "student"}, {Table: "course"}},
		Where: []EqPred{
			{Left: Col(0, 0), Right: Col(1, 0)},
			{Left: Col(0, 1), Right: Col(2, 0)},
		},
		Selects: []SelectItem{
			{As: "name", Src: Col(1, 1)},
			{As: "title", Src: Col(2, 1)},
		},
	}
	rows, err := q.Eval(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("join rows = %v", rows)
	}
}

func TestSPJSetSemantics(t *testing.T) {
	_, db := registrarDB(t)
	// Projecting only dept duplicates rows; result must be deduplicated.
	q := &SPJ{
		Name:    "depts",
		From:    []TableRef{{Table: "course"}},
		Selects: []SelectItem{{As: "dept", Src: Col(0, 2)}},
	}
	rows, err := q.Eval(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("distinct depts = %v", rows)
	}
}

func TestSPJCartesianAndConstPredicate(t *testing.T) {
	_, db := registrarDB(t)
	q := &SPJ{
		Name:    "cart",
		From:    []TableRef{{Table: "student"}, {Table: "student"}},
		Selects: []SelectItem{{As: "a", Src: Col(0, 0)}, {As: "b", Src: Col(1, 0)}},
	}
	rows, err := q.Eval(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("cartesian = %d rows", len(rows))
	}
	// A false constant predicate empties the result without scanning.
	q.Where = []EqPred{{Left: Const(Int(1)), Right: Const(Int(2))}}
	rows, err = q.Eval(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("false-const rows = %v", rows)
	}
	// A true constant predicate keeps them.
	q.Where = []EqPred{{Left: Const(Int(1)), Right: Const(Int(1))}}
	rows, _ = q.Eval(db, nil)
	if len(rows) != 4 {
		t.Fatalf("true-const rows = %d", len(rows))
	}
}

func TestSPJSelfJoinPrereqChain(t *testing.T) {
	_, db := registrarDB(t)
	// Second-level prerequisites: select p2.cno2 from prereq p1, prereq p2
	// where p1.cno2 = p2.cno1 and p1.cno1 = $0
	q := &SPJ{
		Name:    "chain",
		NParams: 1,
		From:    []TableRef{{Table: "prereq", Alias: "p1"}, {Table: "prereq", Alias: "p2"}},
		Where: []EqPred{
			{Left: Col(0, 1), Right: Col(1, 0)},
			{Left: Col(0, 0), Right: Param(0)},
		},
		Selects: []SelectItem{{As: "cno", Src: Col(1, 1)}},
	}
	rows, err := q.Eval(db, []Value{Str("CS650")})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].S != "CS240" {
		t.Fatalf("chain = %v", rows)
	}
}

func TestSPJValidateErrors(t *testing.T) {
	s, _ := registrarDB(t)
	cases := []*SPJ{
		{Name: "noFrom", Selects: []SelectItem{{As: "x", Src: Const(Int(1))}}},
		{Name: "badTable", From: []TableRef{{Table: "nope"}}, Selects: []SelectItem{{As: "x", Src: Const(Int(1))}}},
		{Name: "noSelect", From: []TableRef{{Table: "course"}}},
		{Name: "badCol", From: []TableRef{{Table: "course"}}, Selects: []SelectItem{{As: "x", Src: Col(0, 99)}}},
		{Name: "badTab", From: []TableRef{{Table: "course"}}, Selects: []SelectItem{{As: "x", Src: Col(5, 0)}}},
		{Name: "badParam", From: []TableRef{{Table: "course"}}, Selects: []SelectItem{{As: "x", Src: Param(0)}}},
		{Name: "badWhere", From: []TableRef{{Table: "course"}},
			Where:   []EqPred{{Left: Col(0, 99), Right: Const(Int(1))}},
			Selects: []SelectItem{{As: "x", Src: Col(0, 0)}}},
	}
	for _, q := range cases {
		if err := q.Validate(s); err == nil {
			t.Errorf("query %s: expected validation error", q.Name)
		}
	}
}

func TestSPJString(t *testing.T) {
	q := qPrereqCourse()
	str := q.String()
	for _, want := range []string{"select", "from prereq", "course", "where", "$0"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q missing %q", str, want)
		}
	}
}

func TestEqualityClosureDerivations(t *testing.T) {
	q := qPrereqCourse()
	cl := EqualityClosure(q)
	// c.cno (tab 1, col 0) is projected -> FromSelect 0.
	if d, ok := cl[[2]int{1, 0}]; !ok || d.Kind != FromSelect || d.Index != 0 {
		t.Errorf("c.cno derivation = %+v, %v", d, ok)
	}
	// p.cno1 (tab 0, col 0) = $0 -> FromParam 0.
	if d, ok := cl[[2]int{0, 0}]; !ok || d.Kind != FromParam || d.Index != 0 {
		t.Errorf("p.cno1 derivation = %+v, %v", d, ok)
	}
	// p.cno2 (tab 0, col 1) = c.cno -> derivable via closure.
	if d, ok := cl[[2]int{0, 1}]; !ok || d.Kind != FromSelect || d.Index != 0 {
		t.Errorf("p.cno2 derivation = %+v, %v", d, ok)
	}
	// course.dept (tab 1, col 2) is underivable.
	if _, ok := cl[[2]int{1, 2}]; ok {
		t.Error("dept should be underivable")
	}
}

func TestEqualityClosureConstSeed(t *testing.T) {
	q := qDBCourse()
	cl := EqualityClosure(q)
	if d, ok := cl[[2]int{0, 2}]; !ok || d.Kind != FromConst || d.Const.S != "CS" {
		t.Errorf("dept derivation = %+v, %v", d, ok)
	}
	if d := cl[[2]int{0, 0}]; d.Resolve(Tuple{Str("CS650"), Str("T")}, nil).S != "CS650" {
		t.Error("Resolve of select derivation")
	}
}

func TestCheckKeyPreservation(t *testing.T) {
	s, _ := registrarDB(t)
	// Qprereq_course is key preserving: prereq keys (cno1=$0, cno2=out0),
	// course key (cno=out0).
	kp, err := CheckKeyPreservation(s, qPrereqCourse())
	if err != nil {
		t.Fatal(err)
	}
	if !kp.Preserved() {
		t.Fatalf("Qprereq_course should be key preserving: %v", kp.Missing)
	}
	// Resolve the prereq key of a concrete view tuple.
	out := Tuple{Str("CS320"), Str("Databases")}
	params := []Value{Str("CS650")}
	k0 := kp.KeySources[0][0].Resolve(out, params)
	k1 := kp.KeySources[0][1].Resolve(out, params)
	if k0.S != "CS650" || k1.S != "CS320" {
		t.Errorf("prereq key = %v, %v", k0, k1)
	}

	// Q3 of Fig.2 without the e.cno extension is NOT key preserving:
	// select s.ssn, s.name from enroll e, student s where e.cno=$0 is absent
	// here — we drop the parameter equality to force a missing key.
	q3 := &SPJ{
		Name: "QtakenBy_student_broken",
		From: []TableRef{{Table: "enroll"}, {Table: "student"}},
		Where: []EqPred{
			{Left: Col(0, 0), Right: Col(1, 0)}, // e.ssn = s.ssn
		},
		Selects: []SelectItem{{As: "ssn", Src: Col(1, 0)}, {As: "name", Src: Col(1, 1)}},
	}
	kp, err = CheckKeyPreservation(s, q3)
	if err != nil {
		t.Fatal(err)
	}
	if kp.Preserved() {
		t.Error("broken Q3 should not be key preserving")
	}
	if miss := kp.Missing[0]; len(miss) != 1 || miss[0] != "cno" {
		t.Errorf("missing = %v", kp.Missing)
	}
	// The paper's fix: bind e.cno to the parameter (i.e. extend the query).
	q3.NParams = 1
	q3.Where = append(q3.Where, EqPred{Left: Col(0, 1), Right: Param(0)})
	kp, err = CheckKeyPreservation(s, q3)
	if err != nil {
		t.Fatal(err)
	}
	if !kp.Preserved() {
		t.Errorf("fixed Q3 should be key preserving: %v", kp.Missing)
	}
}

func TestDerivationSourceString(t *testing.T) {
	if (DerivationSource{Kind: FromSelect, Index: 2}).String() != "out[2]" {
		t.Error("FromSelect string")
	}
	if (DerivationSource{Kind: FromParam, Index: 1}).String() != "$1" {
		t.Error("FromParam string")
	}
	if (DerivationSource{Kind: FromConst, Const: Str("x")}).String() != "x" {
		t.Error("FromConst string")
	}
}
