package relational

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// naiveEval is a brute-force SPJ oracle: full cartesian product, then
// filter, project, deduplicate.
func naiveEval(db *Database, q *SPJ, params []Value) []Tuple {
	rels := make([][]Tuple, len(q.From))
	for i, ref := range q.From {
		db.Rel(ref.Table).Scan(func(t Tuple) bool {
			rels[i] = append(rels[i], t)
			return true
		})
	}
	valueOf := func(o Operand, rows []Tuple) Value {
		switch {
		case o.IsCol():
			return rows[o.Tab][o.Col]
		case o.IsConst():
			return o.Const
		default:
			return params[o.Param]
		}
	}
	var out []Tuple
	seen := map[string]bool{}
	rows := make([]Tuple, len(q.From))
	var rec func(level int)
	rec = func(level int) {
		if level == len(q.From) {
			for _, p := range q.Where {
				if !valueOf(p.Left, rows).Equal(valueOf(p.Right, rows)) {
					return
				}
			}
			t := make(Tuple, len(q.Selects))
			for i, it := range q.Selects {
				t[i] = valueOf(it.Src, rows)
			}
			if !seen[t.Encode()] {
				seen[t.Encode()] = true
				out = append(out, t)
			}
			return
		}
		for _, r := range rels[level] {
			rows[level] = r
			rec(level + 1)
		}
	}
	rec(0)
	return out
}

func sortTuples(ts []Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
}

// Property: the index-driven SPJ evaluator agrees with the brute-force
// oracle on random schemas, data, and queries.
func TestSPJEvalMatchesOracle(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))

		// Three tables with small-int columns to force join collisions.
		nTables := 2 + rng.Intn(2)
		tables := make([]*TableSchema, nTables)
		for i := range tables {
			cols := []Column{{Name: "k", Type: KindInt}}
			for c := 0; c < 1+rng.Intn(2); c++ {
				cols = append(cols, Column{Name: "a" + string(rune('0'+c)), Type: KindInt})
			}
			tables[i] = MustTableSchema("t"+string(rune('0'+i)), cols, "k")
		}
		schema := MustSchema(tables...)
		db := NewDatabase(schema)
		for i, ts := range tables {
			n := 3 + rng.Intn(8)
			for k := 0; k < n; k++ {
				row := Tuple{Int(int64(k))}
				for c := 1; c < len(ts.Columns); c++ {
					row = append(row, Int(int64(rng.Intn(4))))
				}
				db.Rel(tables[i].Name).Insert(row)
			}
		}

		// Random query over 1..3 FROM entries with random equalities.
		nFrom := 1 + rng.Intn(3)
		q := &SPJ{Name: "q", NParams: 1}
		for i := 0; i < nFrom; i++ {
			q.From = append(q.From, TableRef{Table: tables[rng.Intn(nTables)].Name})
		}
		colOf := func(tab int) int {
			ts := schema.Table(q.From[tab].Table)
			return rng.Intn(len(ts.Columns))
		}
		nPreds := rng.Intn(4)
		for p := 0; p < nPreds; p++ {
			lt := rng.Intn(nFrom)
			l := Col(lt, colOf(lt))
			var r Operand
			switch rng.Intn(3) {
			case 0:
				rt := rng.Intn(nFrom)
				r = Col(rt, colOf(rt))
			case 1:
				r = Const(Int(int64(rng.Intn(4))))
			default:
				r = Param(0)
			}
			q.Where = append(q.Where, EqPred{Left: l, Right: r})
		}
		nSel := 1 + rng.Intn(3)
		for s := 0; s < nSel; s++ {
			st := rng.Intn(nFrom)
			q.Selects = append(q.Selects, SelectItem{As: "o", Src: Col(st, colOf(st))})
		}
		params := []Value{Int(int64(rng.Intn(4)))}

		if err := q.Validate(schema); err != nil {
			return false
		}
		got, err := q.Eval(db, params)
		if err != nil {
			return false
		}
		want := naiveEval(db, q, params)
		sortTuples(got)
		sortTuples(want)
		if len(got) != len(want) {
			t.Logf("seed %d: got %d rows, want %d (query %s)", seed, len(got), len(want), q)
			return false
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Logf("seed %d: row %d: %v vs %v", seed, i, got[i], want[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
