package relational

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func studentSchema(t *testing.T) *TableSchema {
	t.Helper()
	ts, err := NewTableSchema("student",
		[]Column{{Name: "ssn", Type: KindString}, {Name: "name", Type: KindString}}, "ssn")
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestTableSchemaValidation(t *testing.T) {
	if _, err := NewTableSchema("", nil, "x"); err == nil {
		t.Error("empty table name accepted")
	}
	if _, err := NewTableSchema("t", []Column{{Name: "a", Type: KindInt}}); err == nil {
		t.Error("missing key accepted")
	}
	if _, err := NewTableSchema("t", []Column{{Name: "a", Type: KindInt}}, "b"); err == nil {
		t.Error("unknown key column accepted")
	}
	if _, err := NewTableSchema("t", []Column{{Name: "a", Type: KindInt}, {Name: "a", Type: KindInt}}, "a"); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := NewTableSchema("t", []Column{{Name: "", Type: KindInt}}, ""); err == nil {
		t.Error("empty column name accepted")
	}
}

func TestTableSchemaAccessors(t *testing.T) {
	ts := MustTableSchema("enroll",
		[]Column{{Name: "ssn", Type: KindString}, {Name: "cno", Type: KindString}}, "ssn", "cno")
	if got := ts.ColIndex("cno"); got != 1 {
		t.Errorf("ColIndex(cno) = %d", got)
	}
	if got := ts.ColIndex("nope"); got != -1 {
		t.Errorf("ColIndex(nope) = %d", got)
	}
	if !ts.IsKeyCol(0) || !ts.IsKeyCol(1) {
		t.Error("both columns should be key columns")
	}
	if got := ts.KeyNames(); !reflect.DeepEqual(got, []string{"ssn", "cno"}) {
		t.Errorf("KeyNames = %v", got)
	}
	if got := ts.String(); got != "enroll(ssn*, cno*)" {
		t.Errorf("String = %q", got)
	}
}

func TestRelationInsertLookupDelete(t *testing.T) {
	r := NewRelation(studentSchema(t))
	if err := r.Insert(Tuple{Str("S01"), Str("Ann")}); err != nil {
		t.Fatal(err)
	}
	if err := r.Insert(Tuple{Str("S02"), Str("Bob")}); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	if err := r.Insert(Tuple{Str("S01"), Str("Dup")}); err == nil {
		t.Error("duplicate key accepted")
	}
	if err := r.Insert(Tuple{Str("S03")}); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := r.Insert(Tuple{Int(3), Str("X")}); err == nil {
		t.Error("wrong kind accepted")
	}
	got, ok := r.LookupKey(Tuple{Str("S02")})
	if !ok || got[1].S != "Bob" {
		t.Errorf("LookupKey(S02) = %v, %v", got, ok)
	}
	if _, ok := r.LookupKey(Tuple{Str("S09")}); ok {
		t.Error("LookupKey(S09) should miss")
	}
	if !r.DeleteKey(Tuple{Str("S01")}) {
		t.Error("DeleteKey(S01) failed")
	}
	if r.DeleteKey(Tuple{Str("S01")}) {
		t.Error("double delete succeeded")
	}
	if r.Len() != 1 {
		t.Errorf("Len after delete = %d", r.Len())
	}
	// Slot reuse must not corrupt lookups.
	if err := r.Insert(Tuple{Str("S04"), Str("Eve")}); err != nil {
		t.Fatal(err)
	}
	got, ok = r.LookupKey(Tuple{Str("S04")})
	if !ok || got[1].S != "Eve" {
		t.Errorf("after reuse LookupKey(S04) = %v, %v", got, ok)
	}
}

func TestRelationDeleteTupleAndContains(t *testing.T) {
	r := NewRelation(studentSchema(t))
	tp := Tuple{Str("S01"), Str("Ann")}
	r.MustInsert(tp...)
	if !r.ContainsKeyOf(tp) {
		t.Error("ContainsKeyOf should be true")
	}
	if !r.DeleteTuple(tp) {
		t.Error("DeleteTuple failed")
	}
	if r.ContainsKeyOf(tp) {
		t.Error("ContainsKeyOf after delete")
	}
	if r.DeleteTuple(Tuple{Str("only-key")}) {
		t.Error("DeleteTuple with wrong arity succeeded")
	}
}

func TestRelationScanStopsEarly(t *testing.T) {
	r := NewRelation(studentSchema(t))
	r.MustInsert(Str("a"), Str("1"))
	r.MustInsert(Str("b"), Str("2"))
	r.MustInsert(Str("c"), Str("3"))
	n := 0
	r.Scan(func(t Tuple) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("scan visited %d, want 2", n)
	}
}

func TestRelationTuplesSortedAndClone(t *testing.T) {
	r := NewRelation(studentSchema(t))
	r.MustInsert(Str("b"), Str("2"))
	r.MustInsert(Str("a"), Str("1"))
	tps := r.Tuples()
	if len(tps) != 2 || tps[0][0].S != "a" {
		t.Errorf("Tuples = %v", tps)
	}
	c := r.Clone()
	c.MustInsert(Str("z"), Str("9"))
	if r.Len() != 2 || c.Len() != 3 {
		t.Errorf("clone not independent: %d %d", r.Len(), c.Len())
	}
}

func TestIndexLookupAndInvalidation(t *testing.T) {
	r := NewRelation(studentSchema(t))
	r.MustInsert(Str("S01"), Str("Ann"))
	r.MustInsert(Str("S02"), Str("Ann"))
	r.MustInsert(Str("S03"), Str("Bob"))
	if got := r.IndexLookup(1, Str("Ann")); len(got) != 2 {
		t.Errorf("IndexLookup(Ann) = %v", got)
	}
	r.MustInsert(Str("S04"), Str("Ann"))
	if got := r.IndexLookup(1, Str("Ann")); len(got) != 3 {
		t.Errorf("after insert IndexLookup(Ann) = %v", got)
	}
	r.DeleteKey(Tuple{Str("S01")})
	if got := r.IndexLookup(1, Str("Ann")); len(got) != 2 {
		t.Errorf("after delete IndexLookup(Ann) = %v", got)
	}
	if got := r.IndexLookup(1, Str("Zed")); len(got) != 0 {
		t.Errorf("IndexLookup(Zed) = %v", got)
	}
}

func TestDatabaseApplyRollback(t *testing.T) {
	s := MustSchema(studentSchema(t))
	db := NewDatabase(s)
	if err := db.Insert("student", Tuple{Str("S01"), Str("Ann")}); err != nil {
		t.Fatal(err)
	}
	// Second mutation fails (duplicate key): the first must be rolled back.
	err := db.Apply([]Mutation{
		{Table: "student", Insert: true, Tuple: Tuple{Str("S02"), Str("Bob")}},
		{Table: "student", Insert: true, Tuple: Tuple{Str("S01"), Str("Dup")}},
	})
	if err == nil {
		t.Fatal("Apply should fail")
	}
	if db.Rel("student").Len() != 1 {
		t.Errorf("rollback left %d rows", db.Rel("student").Len())
	}
	// A valid group update applies fully.
	err = db.Apply([]Mutation{
		{Table: "student", Insert: true, Tuple: Tuple{Str("S02"), Str("Bob")}},
		{Table: "student", Insert: false, Tuple: Tuple{Str("S01"), Str("Ann")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.Rel("student").Len() != 1 {
		t.Errorf("after apply %d rows", db.Rel("student").Len())
	}
	if _, ok := db.Rel("student").LookupKey(Tuple{Str("S02")}); !ok {
		t.Error("S02 missing after apply")
	}
	if db.TotalRows() != 1 {
		t.Errorf("TotalRows = %d", db.TotalRows())
	}
}

func TestDatabaseCloneIndependence(t *testing.T) {
	s := MustSchema(studentSchema(t))
	db := NewDatabase(s)
	db.Insert("student", Tuple{Str("S01"), Str("Ann")})
	c := db.Clone()
	c.Insert("student", Tuple{Str("S02"), Str("Bob")})
	if db.Rel("student").Len() != 1 || c.Rel("student").Len() != 2 {
		t.Error("clone shares state")
	}
}

func TestMutationString(t *testing.T) {
	m := Mutation{Table: "t", Insert: true, Tuple: Tuple{Int(1)}}
	if m.String() != "insert t (1)" {
		t.Errorf("String = %q", m.String())
	}
	m.Insert = false
	if m.String() != "delete t (1)" {
		t.Errorf("String = %q", m.String())
	}
}

// Property: a random interleaving of inserts and deletes keeps the key index
// consistent with a model map.
func TestRelationMatchesModel(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewRelation(MustTableSchema("t",
			[]Column{{Name: "k", Type: KindInt}, {Name: "v", Type: KindInt}}, "k"))
		model := map[int64]int64{}
		for op := 0; op < 200; op++ {
			k := int64(rng.Intn(30))
			if rng.Intn(2) == 0 {
				v := int64(rng.Intn(1000))
				err := r.Insert(Tuple{Int(k), Int(v)})
				if _, exists := model[k]; exists {
					if err == nil {
						return false // duplicate accepted
					}
				} else if err != nil {
					return false
				} else {
					model[k] = v
				}
			} else {
				got := r.DeleteKey(Tuple{Int(k)})
				_, exists := model[k]
				if got != exists {
					return false
				}
				delete(model, k)
			}
		}
		if r.Len() != len(model) {
			return false
		}
		for k, v := range model {
			row, ok := r.LookupKey(Tuple{Int(k)})
			if !ok || row[1].I != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTupleHelpers(t *testing.T) {
	a := Tuple{Int(1), Str("x")}
	b := a.Clone()
	b[0] = Int(2)
	if a[0].I != 1 {
		t.Error("Clone aliases storage")
	}
	if a.Equal(b) {
		t.Error("Equal on different tuples")
	}
	if !a.Equal(Tuple{Int(1), Str("x")}) {
		t.Error("Equal on same tuples")
	}
	if a.Equal(Tuple{Int(1)}) {
		t.Error("Equal on different arity")
	}
	if a.Compare(b) >= 0 {
		t.Error("Compare ordering")
	}
	if (Tuple{Int(1)}).Compare(Tuple{Int(1), Int(2)}) >= 0 {
		t.Error("shorter tuple should order first")
	}
	if !(Tuple{Var(1)}).HasVar() || (Tuple{Int(1)}).HasVar() {
		t.Error("HasVar")
	}
	if a.String() != "(1, x)" {
		t.Errorf("String = %q", a.String())
	}
	if a.Encode() == b.Encode() {
		t.Error("Encode not injective")
	}
	if a.EncodeCols([]int{1}) != b.EncodeCols([]int{1}) {
		t.Error("EncodeCols on equal projections differ")
	}
}

func TestSchemaAccessors(t *testing.T) {
	s := MustSchema(
		MustTableSchema("b", []Column{{Name: "k", Type: KindInt}}, "k"),
		MustTableSchema("a", []Column{{Name: "k", Type: KindInt}}, "k"),
	)
	if got := s.TableNames(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("TableNames = %v", got)
	}
	if s.Table("a") == nil || s.Table("zz") != nil {
		t.Error("Table lookup")
	}
	if _, err := NewSchema(s.Table("a"), s.Table("a")); err == nil {
		t.Error("duplicate table accepted")
	}
}

func TestColumnFiniteDomain(t *testing.T) {
	c := Column{Name: "b", Type: KindBool}
	d, ok := c.FiniteDomain()
	if !ok || len(d) != 2 {
		t.Errorf("bool domain = %v, %v", d, ok)
	}
	c = Column{Name: "i", Type: KindInt, Domain: []Value{Int(0), Int(1), Int(2)}}
	d, ok = c.FiniteDomain()
	if !ok || len(d) != 3 {
		t.Errorf("enum domain = %v, %v", d, ok)
	}
	c = Column{Name: "s", Type: KindString}
	if _, ok = c.FiniteDomain(); ok {
		t.Error("string domain should be infinite")
	}
}
