package relational

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Error("Null() should be null")
	}
	if Int(7).IsNull() {
		t.Error("Int(7) should not be null")
	}
	if v := Int(42); v.K != KindInt || v.I != 42 {
		t.Errorf("Int(42) = %+v", v)
	}
	if v := Str("x"); v.K != KindString || v.S != "x" {
		t.Errorf("Str(x) = %+v", v)
	}
	if v := Bool(true); !v.AsBool() {
		t.Error("Bool(true).AsBool() = false")
	}
	if v := Bool(false); v.AsBool() {
		t.Error("Bool(false).AsBool() = true")
	}
	if v := Var(3); !v.IsVar() || v.VarID() != 3 {
		t.Errorf("Var(3) = %+v", v)
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Int(1), Str("1"), false},
		{Str("a"), Str("a"), true},
		{Str("a"), Str("b"), false},
		{Bool(true), Bool(true), true},
		{Bool(true), Bool(false), false},
		{Null(), Null(), true},
		{Null(), Int(0), false},
		{Var(1), Var(1), true},
		{Var(1), Var(2), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompareTotalOrder(t *testing.T) {
	vals := []Value{Null(), Int(-5), Int(0), Int(5), Bool(false), Bool(true), Str(""), Str("a"), Str("ab")}
	for i, a := range vals {
		for j, b := range vals {
			c := a.Compare(b)
			switch {
			case i == j && c != 0:
				t.Errorf("Compare(%v,%v) = %d, want 0", a, b, c)
			case c != -b.Compare(a):
				t.Errorf("Compare not antisymmetric on %v,%v", a, b)
			}
		}
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(12), "12"},
		{Int(-3), "-3"},
		{Str("hello"), "hello"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Null(), "NULL"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestParseValueRoundTrip(t *testing.T) {
	for _, v := range []Value{Int(99), Int(-1), Str("abc"), Bool(true), Bool(false)} {
		got, err := ParseValue(v.K, v.String())
		if err != nil {
			t.Fatalf("ParseValue(%v, %q): %v", v.K, v.String(), err)
		}
		if !got.Equal(v) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
	if _, err := ParseValue(KindInt, "xyz"); err == nil {
		t.Error("ParseValue int xyz should fail")
	}
	if _, err := ParseValue(KindNull, "x"); err == nil {
		t.Error("ParseValue null should fail")
	}
}

// Property: the binary encoding is injective — equal encodings imply equal
// values. Uses testing/quick over randomized value pairs.
func TestValueEncodingInjective(t *testing.T) {
	gen := func(r *rand.Rand) Value {
		switch r.Intn(4) {
		case 0:
			return Int(int64(r.Intn(1000) - 500))
		case 1:
			return Str(string(rune('a' + r.Intn(26))))
		case 2:
			return Bool(r.Intn(2) == 0)
		default:
			return Null()
		}
	}
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(gen(r))
			args[1] = reflect.ValueOf(gen(r))
		},
	}
	prop := func(a, b Value) bool {
		ea := string(a.appendEncoded(nil))
		eb := string(b.appendEncoded(nil))
		return (ea == eb) == a.Equal(b)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNull: "null", KindInt: "int", KindBool: "bool", KindString: "string", KindVar: "var",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
