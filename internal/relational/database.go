package relational

import (
	"errors"
	"fmt"
)

// Database is an instance I of a schema R: one relation per table.
type Database struct {
	Schema *Schema
	rels   map[string]*Relation
}

// NewDatabase creates an empty instance of the schema.
func NewDatabase(s *Schema) *Database {
	db := &Database{Schema: s, rels: make(map[string]*Relation)}
	for _, name := range s.TableNames() {
		db.rels[name] = NewRelation(s.Table(name))
	}
	return db
}

// Rel returns the relation for the named table, or nil.
func (db *Database) Rel(name string) *Relation { return db.rels[name] }

// Insert adds a tuple to the named table.
func (db *Database) Insert(table string, t Tuple) error {
	r := db.rels[table]
	if r == nil {
		return fmt.Errorf("relational: no table %s", table)
	}
	return r.Insert(t)
}

// Delete removes the tuple with the same key as t from the named table.
func (db *Database) Delete(table string, t Tuple) bool {
	r := db.rels[table]
	if r == nil {
		return false
	}
	return r.DeleteTuple(t)
}

// Reset drops every tuple, leaving fresh empty relations over the same
// schema — the checkpoint-restore path replaces the instance contents
// wholesale while keeping the identity of the Database that callers hold.
func (db *Database) Reset() {
	for name := range db.rels {
		db.rels[name] = NewRelation(db.rels[name].Schema)
	}
}

// Clone deep-copies the database; used by what-if analyses and tests.
func (db *Database) Clone() *Database {
	out := &Database{Schema: db.Schema, rels: make(map[string]*Relation, len(db.rels))}
	for name, r := range db.rels {
		out.rels[name] = r.Clone()
	}
	return out
}

// TotalRows returns the number of tuples across all tables.
func (db *Database) TotalRows() int {
	n := 0
	for _, r := range db.rels {
		n += r.Len()
	}
	return n
}

// Mutation is a single base-table change; a group update ΔR is a []Mutation.
type Mutation struct {
	Table  string
	Insert bool // true = insert, false = delete
	Tuple  Tuple
}

// String renders the mutation for logs and reports.
func (m Mutation) String() string {
	op := "delete"
	if m.Insert {
		op = "insert"
	}
	return fmt.Sprintf("%s %s %s", op, m.Table, m.Tuple)
}

// ErrNoSuchTuple marks a deletion whose target tuple is absent.
var ErrNoSuchTuple = errors.New("relational: no such tuple")

// Apply performs a group update ΔR. It fails atomically: on error, already
// applied mutations are rolled back. The error names the index of the
// failing mutation within dr (and wraps the underlying cause), so a caller
// replaying a persisted ΔR — the write-ahead-log recovery path — can
// attribute a divergence to the exact record position.
func (db *Database) Apply(dr []Mutation) error {
	done := 0
	var err error
	for i, m := range dr {
		if m.Insert {
			err = db.Insert(m.Table, m.Tuple)
		} else if !db.Delete(m.Table, m.Tuple) {
			err = fmt.Errorf("delete %s %s: %w", m.Table, m.Tuple, ErrNoSuchTuple)
		}
		if err != nil {
			err = fmt.Errorf("relational: apply ΔR[%d] (%s): %w", i, m, err)
			done = i
			break
		}
	}
	if err == nil {
		return nil
	}
	for i := done - 1; i >= 0; i-- {
		m := dr[i]
		if m.Insert {
			db.Delete(m.Table, m.Tuple)
		} else if e := db.Insert(m.Table, m.Tuple); e != nil {
			return fmt.Errorf("relational: rollback failed after %w: %w", err, e)
		}
	}
	return err
}
