// Package relational implements the relational substrate the paper assumes:
// typed schemas with primary keys, in-memory instances with hash indexes, and
// an evaluator for select-project-join (SPJ) queries with parameter binding.
//
// The XML publishing mapping (ATG) of the paper is defined in terms of SPJ
// queries over this engine, and the view-update translators of Section 4
// operate on its relations.
package relational

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind identifies the runtime type of a Value.
type Kind uint8

// Value kinds. KindVar is used only during symbolic evaluation in the
// view-insertion translator (Appendix A of the paper): a tuple template may
// carry variables whose values the SAT phase chooses.
const (
	KindNull Kind = iota
	KindInt
	KindBool
	KindString
	KindVar
)

// String returns the name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindBool:
		return "bool"
	case KindString:
		return "string"
	case KindVar:
		return "var"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a compact tagged union holding a single relational value.
// The zero Value is NULL.
type Value struct {
	K Kind
	I int64  // payload for KindInt, KindBool (0/1) and KindVar (variable id)
	S string // payload for KindString
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{K: KindInt, I: v} }

// Str returns a string value.
func Str(s string) Value { return Value{K: KindString, S: s} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{K: KindBool, I: i}
}

// Var returns a symbolic variable value with the given id.
func Var(id int) Value { return Value{K: KindVar, I: int64(id)} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// IsVar reports whether v is a symbolic variable.
func (v Value) IsVar() bool { return v.K == KindVar }

// VarID returns the variable id of a KindVar value.
func (v Value) VarID() int { return int(v.I) }

// AsBool returns the boolean payload (false for non-bool values).
func (v Value) AsBool() bool { return v.K == KindBool && v.I != 0 }

// Equal reports whether two values are identical (same kind and payload).
// Comparing a variable to anything yields false; symbolic comparison is the
// job of the viewupdate package.
func (v Value) Equal(w Value) bool {
	if v.K != w.K {
		return false
	}
	switch v.K {
	case KindNull:
		return true
	case KindString:
		return v.S == w.S
	default:
		return v.I == w.I
	}
}

// Compare returns -1, 0 or +1 ordering values; kinds order before payloads so
// the ordering is total.
func (v Value) Compare(w Value) int {
	if v.K != w.K {
		if v.K < w.K {
			return -1
		}
		return 1
	}
	switch v.K {
	case KindNull:
		return 0
	case KindString:
		return strings.Compare(v.S, w.S)
	default:
		switch {
		case v.I < w.I:
			return -1
		case v.I > w.I:
			return 1
		}
		return 0
	}
}

// String renders the value for messages and XML text content.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KindString:
		return v.S
	case KindVar:
		return fmt.Sprintf("?z%d", v.I)
	default:
		return "?"
	}
}

// ParseValue parses a textual value into the given kind. It is the inverse of
// String for the concrete kinds and is used by the CLI and text filters.
func ParseValue(k Kind, s string) (Value, error) {
	switch k {
	case KindInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("relational: parse int %q: %w", s, err)
		}
		return Int(i), nil
	case KindBool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return Value{}, fmt.Errorf("relational: parse bool %q: %w", s, err)
		}
		return Bool(b), nil
	case KindString:
		return Str(s), nil
	default:
		return Value{}, fmt.Errorf("relational: cannot parse value of kind %v", k)
	}
}

// appendEncoded appends a self-delimiting binary encoding of v to dst. It is
// injective per kind, which is all key encoding needs.
func (v Value) appendEncoded(dst []byte) []byte {
	dst = append(dst, byte(v.K))
	switch v.K {
	case KindString:
		dst = append(dst, byte(len(v.S)>>24), byte(len(v.S)>>16), byte(len(v.S)>>8), byte(len(v.S)))
		dst = append(dst, v.S...)
	case KindNull:
	default:
		u := uint64(v.I)
		dst = append(dst,
			byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
			byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
	}
	return dst
}
