package relational

import (
	"fmt"
	"strings"
)

// Operand is one side of an equality predicate or a projection source: a
// column of a FROM entry, a constant, or a query parameter. Parameters carry
// the parent semantic attribute $A into ATG rule queries (§2.2).
type Operand struct {
	kind  opKind
	Tab   int   // FROM index for OpCol
	Col   int   // column index for OpCol
	Const Value // for OpConst
	Param int   // parameter index for OpParam
}

type opKind uint8

const (
	opCol opKind = iota
	opConst
	opParam
)

// Col references column col of the tab-th FROM entry.
func Col(tab, col int) Operand { return Operand{kind: opCol, Tab: tab, Col: col} }

// Const references a literal value.
func Const(v Value) Operand { return Operand{kind: opConst, Const: v} }

// Param references the i-th query parameter.
func Param(i int) Operand { return Operand{kind: opParam, Param: i} }

// IsCol reports whether the operand is a column reference.
func (o Operand) IsCol() bool { return o.kind == opCol }

// IsConst reports whether the operand is a constant.
func (o Operand) IsConst() bool { return o.kind == opConst }

// IsParam reports whether the operand is a parameter reference.
func (o Operand) IsParam() bool { return o.kind == opParam }

func (o Operand) String() string {
	switch o.kind {
	case opCol:
		return fmt.Sprintf("t%d.c%d", o.Tab, o.Col)
	case opConst:
		return o.Const.String()
	default:
		return fmt.Sprintf("$%d", o.Param)
	}
}

// EqPred is an equality predicate Left = Right. The paper's SPJ class uses
// conjunctions of equalities (conjunctive queries).
type EqPred struct {
	Left, Right Operand
}

func (p EqPred) String() string { return p.Left.String() + " = " + p.Right.String() }

// SelectItem is one projected column of an SPJ query.
type SelectItem struct {
	As  string
	Src Operand
}

// TableRef names a FROM entry; Alias is informational (self-joins repeat the
// table under different aliases).
type TableRef struct {
	Table string
	Alias string
}

// SPJ is a select-project-join query:
//
//	SELECT items FROM tables WHERE conjunction-of-equalities
//
// with optional parameters bound at evaluation time. This is exactly the
// query class the paper's ATGs and relational views use.
type SPJ struct {
	Name    string
	From    []TableRef
	Where   []EqPred
	Selects []SelectItem
	NParams int
}

// Validate checks the query against a schema: tables exist, column indexes
// are in range, parameter indexes are within NParams.
func (q *SPJ) Validate(s *Schema) error {
	if len(q.From) == 0 {
		return fmt.Errorf("relational: query %s: empty FROM", q.Name)
	}
	check := func(o Operand) error {
		switch o.kind {
		case opCol:
			if o.Tab < 0 || o.Tab >= len(q.From) {
				return fmt.Errorf("relational: query %s: FROM index %d out of range", q.Name, o.Tab)
			}
			ts := s.Table(q.From[o.Tab].Table)
			if ts == nil {
				return fmt.Errorf("relational: query %s: unknown table %s", q.Name, q.From[o.Tab].Table)
			}
			if o.Col < 0 || o.Col >= len(ts.Columns) {
				return fmt.Errorf("relational: query %s: column %d out of range for %s", q.Name, o.Col, ts.Name)
			}
		case opParam:
			if o.Param < 0 || o.Param >= q.NParams {
				return fmt.Errorf("relational: query %s: parameter $%d out of range (NParams=%d)", q.Name, o.Param, q.NParams)
			}
		}
		return nil
	}
	for _, t := range q.From {
		if s.Table(t.Table) == nil {
			return fmt.Errorf("relational: query %s: unknown table %s", q.Name, t.Table)
		}
	}
	for _, p := range q.Where {
		if err := check(p.Left); err != nil {
			return err
		}
		if err := check(p.Right); err != nil {
			return err
		}
	}
	if len(q.Selects) == 0 {
		return fmt.Errorf("relational: query %s: empty SELECT", q.Name)
	}
	for _, it := range q.Selects {
		if err := check(it.Src); err != nil {
			return err
		}
	}
	return nil
}

// String renders the query in SQL-ish form for diagnostics.
func (q *SPJ) String() string {
	var b strings.Builder
	b.WriteString("select ")
	for i, it := range q.Selects {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s as %s", it.Src, it.As)
	}
	b.WriteString(" from ")
	for i, t := range q.From {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s t%d", t.Table, i)
	}
	if len(q.Where) > 0 {
		b.WriteString(" where ")
		for i, p := range q.Where {
			if i > 0 {
				b.WriteString(" and ")
			}
			b.WriteString(p.String())
		}
	}
	return b.String()
}

// Eval evaluates the query against db with the given parameter values and
// returns the projected result, de-duplicated (set semantics, as the paper's
// relational views use set semantics for edge relations). Result order is the
// scan/join order and is deterministic for a given database state.
//
// The plan is a left-deep nested-loop join that binds tables in FROM order
// and uses secondary hash indexes whenever a join column is already bound by
// the partial assignment, a constant, or a parameter. ATG rule queries are
// key-joined, so in practice every step after the first is an index lookup.
func (q *SPJ) Eval(db *Database, params []Value) ([]Tuple, error) {
	if len(params) != q.NParams {
		return nil, fmt.Errorf("relational: query %s: got %d params, want %d", q.Name, len(params), q.NParams)
	}
	rels := make([]*Relation, len(q.From))
	for i, t := range q.From {
		rels[i] = db.Rel(t.Table)
		if rels[i] == nil {
			return nil, fmt.Errorf("relational: query %s: no table %s", q.Name, t.Table)
		}
	}

	// Pre-split predicates by the highest FROM index they mention, so each
	// predicate is checked as soon as both sides are bound.
	predsAt := make([][]EqPred, len(q.From))
	resolveLevel := func(o Operand) int {
		if o.kind == opCol {
			return o.Tab
		}
		return -1 // constants and params are always bound
	}
	for _, p := range q.Where {
		lv := resolveLevel(p.Left)
		if r := resolveLevel(p.Right); r > lv {
			lv = r
		}
		if lv < 0 {
			// Constant-only predicate: evaluate once up front.
			l := evalConstOperand(p.Left, params)
			r := evalConstOperand(p.Right, params)
			if !l.Equal(r) {
				return nil, nil
			}
			continue
		}
		predsAt[lv] = append(predsAt[lv], p)
	}

	current := make([]Tuple, len(q.From))
	var out []Tuple
	seen := make(map[string]struct{})

	valueOf := func(o Operand) Value {
		switch o.kind {
		case opCol:
			return current[o.Tab][o.Col]
		case opConst:
			return o.Const
		default:
			return params[o.Param]
		}
	}

	var join func(level int) error
	join = func(level int) error {
		if level == len(q.From) {
			row := make(Tuple, len(q.Selects))
			for i, it := range q.Selects {
				row[i] = valueOf(it.Src)
			}
			k := row.Encode()
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				out = append(out, row)
			}
			return nil
		}

		// Find an equality that binds a column of this level to an
		// already-known value, to drive an index lookup.
		var idxCol = -1
		var idxVal Value
		for _, p := range predsAt[level] {
			l, r := p.Left, p.Right
			if r.kind == opCol && r.Tab == level && (l.kind != opCol || l.Tab < level) {
				l, r = r, l
			}
			if l.kind == opCol && l.Tab == level && (r.kind != opCol || r.Tab < level) {
				idxCol = l.Col
				idxVal = valueOf(r)
				break
			}
		}

		try := func(row Tuple) error {
			current[level] = row
			for _, p := range predsAt[level] {
				if !valueOf(p.Left).Equal(valueOf(p.Right)) {
					return nil
				}
			}
			return join(level + 1)
		}

		if idxCol >= 0 {
			for _, row := range rels[level].IndexLookup(idxCol, idxVal) {
				if err := try(row); err != nil {
					return err
				}
			}
			return nil
		}
		var scanErr error
		rels[level].Scan(func(row Tuple) bool {
			scanErr = try(row)
			return scanErr == nil
		})
		return scanErr
	}

	if err := join(0); err != nil {
		return nil, err
	}
	return out, nil
}

func evalConstOperand(o Operand, params []Value) Value {
	if o.kind == opConst {
		return o.Const
	}
	return params[o.Param]
}
