package relational

import (
	"errors"
	"strings"
	"testing"
)

func TestValueCodecRoundTrip(t *testing.T) {
	vals := []Value{
		Null(),
		Int(0), Int(42), Int(-7), Int(1 << 62),
		Bool(true), Bool(false),
		Str(""), Str("hello"), Str(strings.Repeat("x", 300)), Str("with \x00 byte"),
		Var(3),
	}
	var buf []byte
	for _, v := range vals {
		buf = AppendValue(buf, v)
	}
	rest := buf
	for i, want := range vals {
		var got Value
		var err error
		got, rest, err = DecodeValue(rest)
		if err != nil {
			t.Fatalf("value %d: %v", i, err)
		}
		if !got.Equal(want) {
			t.Fatalf("value %d: got %v want %v", i, got, want)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after decode", len(rest))
	}
}

func TestValueCodecMatchesKeyEncoding(t *testing.T) {
	// The decodable format must stay byte-identical to the injective map-key
	// encoding: persisted tuples must hash to the same Skolem keys on reload.
	tup := Tuple{Int(5), Str("cs"), Bool(true), Null()}
	if got, want := string(AppendTuple(nil, tup)[1:]), tup.Encode(); got != want {
		t.Fatalf("wire format diverged from Tuple.Encode:\n got %q\nwant %q", got, want)
	}
}

func TestTupleCodecRoundTrip(t *testing.T) {
	for _, tup := range []Tuple{
		nil,
		{},
		{Int(1)},
		{Str("CS650"), Str("Advanced"), Null(), Bool(false), Int(-1)},
	} {
		buf := AppendTuple([]byte{0xAA}, tup) // leading noise: decode from offset
		got, rest, err := DecodeTuple(buf[1:])
		if err != nil {
			t.Fatalf("%v: %v", tup, err)
		}
		if len(rest) != 0 {
			t.Fatalf("%v: trailing bytes", tup)
		}
		if len(tup) == 0 {
			if got != nil {
				t.Fatalf("%v: want nil tuple, got %v", tup, got)
			}
			continue
		}
		if !got.Equal(tup) {
			t.Fatalf("got %v want %v", got, tup)
		}
	}
}

func TestMutationCodecRoundTrip(t *testing.T) {
	muts := []Mutation{
		{Table: "course", Insert: true, Tuple: Tuple{Str("CS650"), Str("Advanced")}},
		{Table: "prereq", Insert: false, Tuple: Tuple{Str("CS650"), Str("CS550")}},
		{Table: "t", Insert: false, Tuple: nil},
	}
	var buf []byte
	for _, m := range muts {
		buf = AppendMutation(buf, m)
	}
	rest := buf
	for i, want := range muts {
		var got Mutation
		var err error
		got, rest, err = DecodeMutation(rest)
		if err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
		if got.Table != want.Table || got.Insert != want.Insert || !got.Tuple.Equal(want.Tuple) {
			t.Fatalf("mutation %d: got %v want %v", i, got, want)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
}

func TestDecodeTruncated(t *testing.T) {
	full := AppendMutation(nil, Mutation{Table: "course", Insert: true, Tuple: Tuple{Str("CS650"), Int(3)}})
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := DecodeMutation(full[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d decoded without error", cut, len(full))
		}
	}
}

func TestApplyErrorAttribution(t *testing.T) {
	s := MustSchema(MustTableSchema("t", []Column{{Name: "k", Type: KindInt}}, "k"))
	db := NewDatabase(s)
	if err := db.Insert("t", Tuple{Int(1)}); err != nil {
		t.Fatal(err)
	}
	dr := []Mutation{
		{Table: "t", Insert: true, Tuple: Tuple{Int(2)}},
		{Table: "t", Insert: false, Tuple: Tuple{Int(99)}}, // absent: fails
	}
	err := db.Apply(dr)
	if err == nil {
		t.Fatal("Apply succeeded on a deletion of an absent tuple")
	}
	if !strings.Contains(err.Error(), "ΔR[1]") {
		t.Fatalf("error does not name the failing index: %v", err)
	}
	if !errors.Is(err, ErrNoSuchTuple) {
		t.Fatalf("error does not wrap ErrNoSuchTuple: %v", err)
	}
	// Atomicity: the successful first insert must have been rolled back.
	if db.Rel("t").Len() != 1 {
		t.Fatalf("failed Apply left %d rows, want 1", db.Rel("t").Len())
	}
}
