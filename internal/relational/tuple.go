package relational

import "strings"

// Tuple is a row of values. Tuples are positional; the schema gives names.
type Tuple []Value

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Equal reports element-wise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically.
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if c := t[i].Compare(u[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	}
	return 0
}

// HasVar reports whether any component is a symbolic variable.
func (t Tuple) HasVar() bool {
	for _, v := range t {
		if v.IsVar() {
			return true
		}
	}
	return false
}

// Encode returns an injective string encoding of the whole tuple, usable as a
// map key. It is the Skolem-function input representation for gen_id (§2.3).
func (t Tuple) Encode() string {
	var buf []byte
	for _, v := range t {
		buf = v.appendEncoded(buf)
	}
	return string(buf)
}

// EncodeCols returns an injective encoding of the projection of t onto the
// given column indices; used for key lookups and join hashing.
func (t Tuple) EncodeCols(cols []int) string {
	var buf []byte
	for _, c := range cols {
		buf = t[c].appendEncoded(buf)
	}
	return string(buf)
}

// String renders the tuple as (v1, v2, ...).
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}
