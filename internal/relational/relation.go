package relational

import (
	"fmt"
	"sort"
)

// Relation is an in-memory instance of a table: a set of tuples with a
// primary-key hash index and lazily built secondary hash indexes.
type Relation struct {
	Schema *TableSchema

	rows  []Tuple // slot-addressed; nil means deleted slot
	byKey map[string]int
	free  []int // reusable slots
	count int

	// secondary indexes: column -> (encoded value -> row slots). Built on
	// demand by IndexLookup and maintained incrementally by Insert/Delete.
	secondary map[int]map[string][]int
	version   uint64
}

// NewRelation returns an empty relation for the schema.
func NewRelation(ts *TableSchema) *Relation {
	return &Relation{Schema: ts, byKey: make(map[string]int)}
}

// Len returns the number of live tuples.
func (r *Relation) Len() int { return r.count }

// Version increases on every mutation; used to detect staleness.
func (r *Relation) Version() uint64 { return r.version }

func (r *Relation) keyOf(t Tuple) string { return t.EncodeCols(r.Schema.Key) }

// Insert adds a tuple. It returns an error if the arity is wrong, a value
// kind does not match the column type, or a tuple with the same key exists.
func (r *Relation) Insert(t Tuple) error {
	if len(t) != len(r.Schema.Columns) {
		return fmt.Errorf("relational: %s: insert arity %d, want %d", r.Schema.Name, len(t), len(r.Schema.Columns))
	}
	for i, v := range t {
		if v.K != r.Schema.Columns[i].Type && !v.IsNull() {
			return fmt.Errorf("relational: %s.%s: insert kind %v, want %v",
				r.Schema.Name, r.Schema.Columns[i].Name, v.K, r.Schema.Columns[i].Type)
		}
	}
	k := r.keyOf(t)
	if _, dup := r.byKey[k]; dup {
		return fmt.Errorf("relational: %s: duplicate key %s", r.Schema.Name, Tuple(t).String())
	}
	slot := -1
	if n := len(r.free); n > 0 {
		slot = r.free[n-1]
		r.free = r.free[:n-1]
		r.rows[slot] = t.Clone()
	} else {
		slot = len(r.rows)
		r.rows = append(r.rows, t.Clone())
	}
	r.byKey[k] = slot
	r.count++
	r.version++
	for col, idx := range r.secondary {
		ek := string(t[col].appendEncoded(nil))
		idx[ek] = append(idx[ek], slot)
	}
	return nil
}

// MustInsert inserts and panics on error; for statically known test data.
func (r *Relation) MustInsert(vals ...Value) {
	if err := r.Insert(Tuple(vals)); err != nil {
		panic(err)
	}
}

// DeleteKey removes the tuple whose key columns equal key (given in key-column
// order). It reports whether a tuple was removed.
func (r *Relation) DeleteKey(key Tuple) bool {
	if len(key) != len(r.Schema.Key) {
		return false
	}
	var buf []byte
	for _, v := range key {
		buf = v.appendEncoded(buf)
	}
	return r.deleteEncoded(string(buf))
}

// DeleteTuple removes the tuple with the same key as t (t must be full-arity).
func (r *Relation) DeleteTuple(t Tuple) bool {
	if len(t) != len(r.Schema.Columns) {
		return false
	}
	return r.deleteEncoded(r.keyOf(t))
}

func (r *Relation) deleteEncoded(k string) bool {
	slot, ok := r.byKey[k]
	if !ok {
		return false
	}
	row := r.rows[slot]
	delete(r.byKey, k)
	r.rows[slot] = nil
	r.free = append(r.free, slot)
	r.count--
	r.version++
	for col, idx := range r.secondary {
		ek := string(row[col].appendEncoded(nil))
		bucket := idx[ek]
		for i, s := range bucket {
			if s == slot {
				bucket[i] = bucket[len(bucket)-1]
				idx[ek] = bucket[:len(bucket)-1]
				break
			}
		}
	}
	return true
}

// LookupKey returns the tuple with the given key values (in key-column order).
func (r *Relation) LookupKey(key Tuple) (Tuple, bool) {
	if len(key) != len(r.Schema.Key) {
		return nil, false
	}
	var buf []byte
	for _, v := range key {
		buf = v.appendEncoded(buf)
	}
	slot, ok := r.byKey[string(buf)]
	if !ok {
		return nil, false
	}
	return r.rows[slot], true
}

// ContainsKeyOf reports whether a tuple with the same key as t exists.
func (r *Relation) ContainsKeyOf(t Tuple) bool {
	_, ok := r.byKey[r.keyOf(t)]
	return ok
}

// Scan calls fn for every live tuple; iteration stops if fn returns false.
// The callback must not mutate the relation.
func (r *Relation) Scan(fn func(t Tuple) bool) {
	for _, row := range r.rows {
		if row == nil {
			continue
		}
		if !fn(row) {
			return
		}
	}
}

// Tuples returns a snapshot of all live tuples in deterministic (sorted)
// order. Intended for tests and small relations.
func (r *Relation) Tuples() []Tuple {
	out := make([]Tuple, 0, r.count)
	r.Scan(func(t Tuple) bool {
		out = append(out, t)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Clone deep-copies the relation.
func (r *Relation) Clone() *Relation {
	out := NewRelation(r.Schema)
	r.Scan(func(t Tuple) bool {
		if err := out.Insert(t); err != nil {
			panic(err) // impossible: source relation has unique keys
		}
		return true
	})
	return out
}

// BuildIndex materializes the secondary hash index on a column (indexes are
// otherwise built on first lookup). Subsequent mutations maintain it
// incrementally.
func (r *Relation) BuildIndex(col int) {
	if r.secondary == nil {
		r.secondary = make(map[int]map[string][]int)
	}
	if _, ok := r.secondary[col]; ok {
		return
	}
	idx := make(map[string][]int)
	for slot, row := range r.rows {
		if row == nil {
			continue
		}
		k := string(row[col].appendEncoded(nil))
		idx[k] = append(idx[k], slot)
	}
	r.secondary[col] = idx
}

// IndexLookup returns the tuples whose column col equals v, using the
// secondary hash index (built on demand).
func (r *Relation) IndexLookup(col int, v Value) []Tuple {
	r.BuildIndex(col)
	idx := r.secondary[col]
	slots := idx[string(v.appendEncoded(nil))]
	out := make([]Tuple, 0, len(slots))
	for _, s := range slots {
		if row := r.rows[s]; row != nil {
			out = append(out, row)
		}
	}
	return out
}
