package relational

import "fmt"

// DerivationSource says where the value of a (FROM-entry, column) pair can be
// recovered from, given a query result tuple and the parameter values used to
// produce it. This is the machinery behind the paper's key-preservation
// condition (§4.1): a view is key preserving when every base relation's key
// columns are derivable — then the "deletable source" Sr(Q, t) of a view
// tuple can be identified via keys.
type DerivationSource struct {
	Kind  DerivationKind
	Index int   // select index for FromSelect, param index for FromParam
	Const Value // for FromConst
}

// DerivationKind enumerates derivation sources.
type DerivationKind uint8

// Derivation kinds.
const (
	FromSelect DerivationKind = iota // value is output column Index
	FromParam                        // value is parameter Index
	FromConst                        // value is the constant Const
)

func (d DerivationSource) String() string {
	switch d.Kind {
	case FromSelect:
		return fmt.Sprintf("out[%d]", d.Index)
	case FromParam:
		return fmt.Sprintf("$%d", d.Index)
	default:
		return d.Const.String()
	}
}

// Resolve computes the concrete value of the derivation given the query
// output row and parameters.
func (d DerivationSource) Resolve(out Tuple, params []Value) Value {
	switch d.Kind {
	case FromSelect:
		return out[d.Index]
	case FromParam:
		return params[d.Index]
	default:
		return d.Const
	}
}

// EqualityClosure computes, for every (FROM index, column) of q, a derivation
// from the query's outputs, parameters and constants, by saturating the WHERE
// equalities. Columns with no derivation are absent from the result.
//
// The closure is the standard congruence: a column is known if it is
// projected, equated (transitively) to a known column, a parameter, or a
// constant.
func EqualityClosure(q *SPJ) map[[2]int]DerivationSource {
	known := make(map[[2]int]DerivationSource)

	// Seed with projected columns...
	for i, it := range q.Selects {
		if it.Src.IsCol() {
			k := [2]int{it.Src.Tab, it.Src.Col}
			if _, ok := known[k]; !ok {
				known[k] = DerivationSource{Kind: FromSelect, Index: i}
			}
		}
	}
	// ...and columns directly equated to params/consts.
	seedDirect := func(col Operand, other Operand) {
		if !col.IsCol() {
			return
		}
		k := [2]int{col.Tab, col.Col}
		if _, ok := known[k]; ok {
			return
		}
		switch {
		case other.IsParam():
			known[k] = DerivationSource{Kind: FromParam, Index: other.Param}
		case other.IsConst():
			known[k] = DerivationSource{Kind: FromConst, Const: other.Const}
		}
	}
	for _, p := range q.Where {
		seedDirect(p.Left, p.Right)
		seedDirect(p.Right, p.Left)
	}

	// Saturate col=col equalities.
	for changed := true; changed; {
		changed = false
		for _, p := range q.Where {
			l, r := p.Left, p.Right
			if !l.IsCol() || !r.IsCol() {
				continue
			}
			lk := [2]int{l.Tab, l.Col}
			rk := [2]int{r.Tab, r.Col}
			if d, ok := known[lk]; ok {
				if _, ok2 := known[rk]; !ok2 {
					known[rk] = d
					changed = true
				}
			}
			if d, ok := known[rk]; ok {
				if _, ok2 := known[lk]; !ok2 {
					known[lk] = d
					changed = true
				}
			}
		}
	}
	return known
}

// KeyPreservation describes the result of checking a query for the paper's
// key-preservation condition.
type KeyPreservation struct {
	// KeySources[i] maps each key column of FROM entry i (in TableSchema.Key
	// order) to its derivation. Present only when entry i is preserved.
	KeySources []([]DerivationSource)
	// Missing lists, per FROM entry, the key column names that are not
	// derivable; empty when the query is key preserving.
	Missing map[int][]string
}

// Preserved reports whether every FROM entry's key is fully derivable.
func (kp *KeyPreservation) Preserved() bool { return len(kp.Missing) == 0 }

// CheckKeyPreservation verifies the key-preservation condition for q against
// the schema and returns the per-table key derivations.
func CheckKeyPreservation(s *Schema, q *SPJ) (*KeyPreservation, error) {
	if err := q.Validate(s); err != nil {
		return nil, err
	}
	closure := EqualityClosure(q)
	kp := &KeyPreservation{
		KeySources: make([][]DerivationSource, len(q.From)),
		Missing:    make(map[int][]string),
	}
	for i, ref := range q.From {
		ts := s.Table(ref.Table)
		srcs := make([]DerivationSource, 0, len(ts.Key))
		for _, kc := range ts.Key {
			d, ok := closure[[2]int{i, kc}]
			if !ok {
				kp.Missing[i] = append(kp.Missing[i], ts.Columns[kc].Name)
				continue
			}
			srcs = append(srcs, d)
		}
		if len(kp.Missing[i]) == 0 {
			kp.KeySources[i] = srcs
		}
	}
	return kp, nil
}
