package relational

import (
	"encoding/binary"
	"fmt"
)

// Binary codec for values and tuples. The per-value wire format is exactly
// the injective encoding Tuple.Encode has always used as a map key (kind
// byte; strings length-prefixed, numeric payloads 8-byte big-endian), made
// decodable: AppendValue/DecodeValue round-trip a Value, AppendTuple/
// DecodeTuple a whole row. The write-ahead log and checkpoint files persist
// mutations and base tables through these helpers, so the on-disk key of a
// tuple is byte-identical to its in-memory Skolem/index key.

// AppendValue appends the self-delimiting binary encoding of v to dst.
func AppendValue(dst []byte, v Value) []byte { return v.appendEncoded(dst) }

// DecodeValue decodes one value from the front of b, returning the value and
// the remaining bytes.
func DecodeValue(b []byte) (Value, []byte, error) {
	if len(b) == 0 {
		return Value{}, nil, fmt.Errorf("relational: decode value: empty input")
	}
	k := Kind(b[0])
	b = b[1:]
	switch k {
	case KindNull:
		return Value{}, b, nil
	case KindString:
		if len(b) < 4 {
			return Value{}, nil, fmt.Errorf("relational: decode string value: truncated length")
		}
		n := int(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]))
		b = b[4:]
		if n < 0 || len(b) < n {
			return Value{}, nil, fmt.Errorf("relational: decode string value: length %d exceeds input", n)
		}
		return Str(string(b[:n])), b[n:], nil
	case KindInt, KindBool, KindVar:
		if len(b) < 8 {
			return Value{}, nil, fmt.Errorf("relational: decode %v value: truncated payload", k)
		}
		u := binary.BigEndian.Uint64(b)
		return Value{K: k, I: int64(u)}, b[8:], nil
	default:
		return Value{}, nil, fmt.Errorf("relational: decode value: unknown kind %d", uint8(k))
	}
}

// AppendTuple appends a length-prefixed encoding of t to dst.
func AppendTuple(dst []byte, t Tuple) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(t)))
	for _, v := range t {
		dst = v.appendEncoded(dst)
	}
	return dst
}

// DecodeTuple decodes one tuple from the front of b, returning the tuple and
// the remaining bytes. A zero-length tuple decodes as nil, matching the nil
// attribute tuples of root nodes.
func DecodeTuple(b []byte) (Tuple, []byte, error) {
	n, w := binary.Uvarint(b)
	if w <= 0 {
		return nil, nil, fmt.Errorf("relational: decode tuple: bad length prefix")
	}
	b = b[w:]
	if n == 0 {
		return nil, b, nil
	}
	if n > uint64(len(b)) { // each value takes ≥ 1 byte
		return nil, nil, fmt.Errorf("relational: decode tuple: %d values exceed input", n)
	}
	out := make(Tuple, 0, n)
	for i := uint64(0); i < n; i++ {
		v, rest, err := DecodeValue(b)
		if err != nil {
			return nil, nil, fmt.Errorf("relational: decode tuple value %d: %w", i, err)
		}
		out = append(out, v)
		b = rest
	}
	return out, b, nil
}

// AppendMutation appends a binary encoding of one ΔR mutation to dst.
func AppendMutation(dst []byte, m Mutation) []byte {
	if m.Insert {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(m.Table)))
	dst = append(dst, m.Table...)
	return AppendTuple(dst, m.Tuple)
}

// DecodeMutation decodes one mutation from the front of b.
func DecodeMutation(b []byte) (Mutation, []byte, error) {
	var m Mutation
	if len(b) == 0 {
		return m, nil, fmt.Errorf("relational: decode mutation: empty input")
	}
	m.Insert = b[0] != 0
	b = b[1:]
	n, w := binary.Uvarint(b)
	if w <= 0 || n > uint64(len(b)-w) {
		return m, nil, fmt.Errorf("relational: decode mutation: bad table name")
	}
	b = b[w:]
	m.Table = string(b[:n])
	b = b[n:]
	t, rest, err := DecodeTuple(b)
	if err != nil {
		return m, nil, fmt.Errorf("relational: decode mutation tuple: %w", err)
	}
	m.Tuple = t
	return m, rest, nil
}
