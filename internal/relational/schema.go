package relational

import (
	"fmt"
	"sort"
	"strings"
)

// Column describes one attribute of a table.
type Column struct {
	Name string
	Type Kind
	// Domain enumerates the column's finite domain, if any. A nil Domain
	// means the domain is (conceptually) infinite — the insertion
	// translator may then always pick a fresh value for an unconstrained
	// variable (case (b) in Section 4.3 of the paper). Bool columns have
	// an implicit {false,true} domain even when Domain is nil.
	Domain []Value
}

// FiniteDomain returns the column's finite domain and true, or nil and false
// if the domain is infinite.
func (c Column) FiniteDomain() ([]Value, bool) {
	if len(c.Domain) > 0 {
		return c.Domain, true
	}
	if c.Type == KindBool {
		return []Value{Bool(false), Bool(true)}, true
	}
	return nil, false
}

// TableSchema describes a base relation: its columns and primary key.
type TableSchema struct {
	Name    string
	Columns []Column
	Key     []int // indices into Columns; non-empty
	byName  map[string]int
}

// NewTableSchema builds a table schema. The key columns are given by name and
// must exist. Every table has a primary key (the paper's key-preservation
// condition is stated over primary keys).
func NewTableSchema(name string, cols []Column, keyCols ...string) (*TableSchema, error) {
	if name == "" {
		return nil, fmt.Errorf("relational: table name must be non-empty")
	}
	if len(keyCols) == 0 {
		return nil, fmt.Errorf("relational: table %s: primary key required", name)
	}
	ts := &TableSchema{Name: name, Columns: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("relational: table %s: column %d has empty name", name, i)
		}
		if _, dup := ts.byName[c.Name]; dup {
			return nil, fmt.Errorf("relational: table %s: duplicate column %s", name, c.Name)
		}
		ts.byName[c.Name] = i
	}
	for _, k := range keyCols {
		i, ok := ts.byName[k]
		if !ok {
			return nil, fmt.Errorf("relational: table %s: key column %s not found", name, k)
		}
		ts.Key = append(ts.Key, i)
	}
	return ts, nil
}

// MustTableSchema is NewTableSchema that panics on error; intended for
// statically known schemas in examples and tests.
func MustTableSchema(name string, cols []Column, keyCols ...string) *TableSchema {
	ts, err := NewTableSchema(name, cols, keyCols...)
	if err != nil {
		panic(err)
	}
	return ts
}

// ColIndex returns the index of the named column, or -1.
func (ts *TableSchema) ColIndex(name string) int {
	if i, ok := ts.byName[name]; ok {
		return i
	}
	return -1
}

// IsKeyCol reports whether column index i belongs to the primary key.
func (ts *TableSchema) IsKeyCol(i int) bool {
	for _, k := range ts.Key {
		if k == i {
			return true
		}
	}
	return false
}

// KeyNames returns the names of the primary-key columns.
func (ts *TableSchema) KeyNames() []string {
	out := make([]string, len(ts.Key))
	for i, k := range ts.Key {
		out[i] = ts.Columns[k].Name
	}
	return out
}

// String renders the schema in the paper's style: name(col1, col2, ...),
// with key columns marked by a trailing '*'.
func (ts *TableSchema) String() string {
	var b strings.Builder
	b.WriteString(ts.Name)
	b.WriteByte('(')
	for i, c := range ts.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		if ts.IsKeyCol(i) {
			b.WriteByte('*')
		}
	}
	b.WriteByte(')')
	return b.String()
}

// Schema is a collection of table schemas (the relational schema R of the
// paper's mapping σ : R → D).
type Schema struct {
	tables map[string]*TableSchema
}

// NewSchema builds a schema from table schemas.
func NewSchema(tables ...*TableSchema) (*Schema, error) {
	s := &Schema{tables: make(map[string]*TableSchema, len(tables))}
	for _, t := range tables {
		if _, dup := s.tables[t.Name]; dup {
			return nil, fmt.Errorf("relational: duplicate table %s", t.Name)
		}
		s.tables[t.Name] = t
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error.
func MustSchema(tables ...*TableSchema) *Schema {
	s, err := NewSchema(tables...)
	if err != nil {
		panic(err)
	}
	return s
}

// Table returns the named table schema, or nil.
func (s *Schema) Table(name string) *TableSchema { return s.tables[name] }

// TableNames returns all table names in sorted order.
func (s *Schema) TableNames() []string {
	out := make([]string, 0, len(s.tables))
	for n := range s.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
