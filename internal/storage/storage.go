// Package storage defines the pluggable backend boundary for the base
// relations: the choke point every ΔR mutation flows through.
//
// The paper's framework evaluates SPJ queries over an in-memory instance I
// (internal/relational) and that does not change here — publication, the
// view-update translators and the evaluator all keep reading the in-memory
// image via DB(). What the interface pins down is the write side: core's
// update pipeline and transaction rollback never touch a *relational.Database
// mutator directly, they go through a Backend. The in-memory Memory backend
// is the default (and the only state it has is the Database itself); a
// durable deployment layers a write-ahead log above this boundary, and a
// file- or SQL-backed store can implement it outright as long as it keeps
// the in-memory image current for the readers. Future programmable
// view-update strategies (see PAPERS.md: Tran et al.) hook the same ΔR
// stream, which is why Apply takes the whole group rather than being a
// convenience loop over Insert/Delete.
package storage

import (
	"rxview/internal/fault"
	"rxview/internal/relational"
)

// Backend is a store of the base relations. Implementations must keep an
// in-memory relational.Database image current for query evaluation; all
// mutations arrive through Insert/Delete/Apply.
type Backend interface {
	// DB returns the in-memory image the SPJ evaluator and ATG publication
	// read. The image is live: it reflects every mutation applied so far.
	DB() *relational.Database
	// Insert adds one tuple to the named table.
	Insert(table string, t relational.Tuple) error
	// Delete removes the tuple with the same key as t; it reports whether
	// the tuple existed.
	Delete(table string, t relational.Tuple) bool
	// Apply performs a group update ΔR atomically: on error, already
	// applied mutations are rolled back and the error names the failing
	// mutation index.
	Apply(dr []relational.Mutation) error
	// Scan iterates the named table's tuples until fn returns false.
	Scan(table string, fn func(relational.Tuple) bool)
	// Snapshot returns a deep copy of the current instance (what-if runs,
	// checkpoint serialization).
	Snapshot() *relational.Database
	// Close releases backend resources. The in-memory image stays readable.
	Close() error
}

// Memory is the in-memory Backend: the relational.Database itself, behind
// the interface. Zero overhead over direct calls — every method is a direct
// delegation.
type Memory struct {
	db *relational.Database
}

// NewMemory wraps an existing instance.
func NewMemory(db *relational.Database) *Memory { return &Memory{db: db} }

// DB returns the wrapped instance.
func (m *Memory) DB() *relational.Database { return m.db }

// Insert adds one tuple to the named table.
func (m *Memory) Insert(table string, t relational.Tuple) error {
	return m.db.Insert(table, t)
}

// Delete removes the tuple with the same key as t.
func (m *Memory) Delete(table string, t relational.Tuple) bool {
	return m.db.Delete(table, t)
}

// Apply performs a group update ΔR atomically.
func (m *Memory) Apply(dr []relational.Mutation) error {
	// The fault point fires before any mutation lands, so an injected
	// failure is indistinguishable from a refused ΔR: the pipeline aborts
	// the stage cleanly and nothing is half-applied.
	if err := fault.Hit(fault.StorageApply); err != nil {
		return err
	}
	return m.db.Apply(dr)
}

// Scan iterates the named table's tuples.
func (m *Memory) Scan(table string, fn func(relational.Tuple) bool) {
	if r := m.db.Rel(table); r != nil {
		r.Scan(fn)
	}
}

// Snapshot deep-copies the instance.
func (m *Memory) Snapshot() *relational.Database { return m.db.Clone() }

// Close is a no-op for the in-memory backend.
func (m *Memory) Close() error { return nil }

var _ Backend = (*Memory)(nil)
