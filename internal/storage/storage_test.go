package storage

import (
	"errors"
	"strings"
	"testing"

	"rxview/internal/relational"
)

func newDB(t *testing.T) *relational.Database {
	t.Helper()
	s := relational.MustSchema(relational.MustTableSchema("t",
		[]relational.Column{{Name: "k", Type: relational.KindInt}, {Name: "v", Type: relational.KindString}}, "k"))
	return relational.NewDatabase(s)
}

func TestMemoryBackend(t *testing.T) {
	db := newDB(t)
	var b Backend = NewMemory(db)
	if b.DB() != db {
		t.Fatal("DB() must return the wrapped instance")
	}
	if err := b.Insert("t", relational.Tuple{relational.Int(1), relational.Str("a")}); err != nil {
		t.Fatal(err)
	}
	if err := b.Apply([]relational.Mutation{
		{Table: "t", Insert: true, Tuple: relational.Tuple{relational.Int(2), relational.Str("b")}},
		{Table: "t", Insert: false, Tuple: relational.Tuple{relational.Int(1), relational.Str("a")}},
	}); err != nil {
		t.Fatal(err)
	}
	var seen int
	b.Scan("t", func(tu relational.Tuple) bool { seen++; return true })
	if seen != 1 {
		t.Fatalf("scan saw %d tuples, want 1", seen)
	}
	b.Scan("missing", func(relational.Tuple) bool { t.Fatal("scan of absent table called fn"); return false })

	snap := b.Snapshot()
	if !b.Delete("t", relational.Tuple{relational.Int(2), relational.Str("b")}) {
		t.Fatal("delete of present tuple failed")
	}
	if snap.Rel("t").Len() != 1 {
		t.Fatal("snapshot must be isolated from later mutations")
	}
	if db.Rel("t").Len() != 0 {
		t.Fatal("image must reflect the delete")
	}

	// Apply failure attribution passes through the boundary.
	err := b.Apply([]relational.Mutation{{Table: "t", Insert: false, Tuple: relational.Tuple{relational.Int(9), relational.Str("x")}}})
	if err == nil || !strings.Contains(err.Error(), "ΔR[0]") || !errors.Is(err, relational.ErrNoSuchTuple) {
		t.Fatalf("apply error lacks attribution: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}
