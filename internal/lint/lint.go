// Package lint is the registry of the xviewlint analyzer suite: the
// static checks that mechanically enforce this repository's three load-
// bearing conventions — copy-on-write epochs, the single-writer serving
// loop, and the sentinel error contract — plus the internal-package API
// boundary and the telemetry hot-path contract. cmd/xviewlint links this
// package; boundary_test.go and the per-analyzer tests exercise the same
// analyzers in-process.
package lint

import (
	"rxview/internal/lint/analysis"
	"rxview/internal/lint/cowdiscipline"
	"rxview/internal/lint/ctxflow"
	"rxview/internal/lint/errwrap"
	"rxview/internal/lint/faultpoint"
	"rxview/internal/lint/internalboundary"
	"rxview/internal/lint/obshotpath"
	"rxview/internal/lint/sealedmut"
	"rxview/internal/lint/singlewriter"
)

// All returns the full xviewlint suite in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		cowdiscipline.Analyzer,
		ctxflow.Analyzer,
		errwrap.Analyzer,
		faultpoint.Analyzer,
		internalboundary.Analyzer,
		obshotpath.Analyzer,
		sealedmut.Analyzer,
		singlewriter.Analyzer,
	}
}
