// Stub of sync/atomic for singlewriter fixtures: the analyzer keys on the
// import path and the Pointer type name.
package atomic

type Pointer[T any] struct{ v *T }

func (p *Pointer[T]) Load() *T   { return p.v }
func (p *Pointer[T]) Store(v *T) { p.v = v }
