// Fixture modeling the serving engine: a writer-only view field, an
// annotated apply loop and constructor, and an atomic.Pointer epoch.
package a

import "sync/atomic"

type view struct{ gen uint64 }

type epoch struct{ n int }

type engine struct {
	view *view // xviewlint:writer-only
	ep   atomic.Pointer[epoch]
	hits int
}

// newEngine owns the field before the loop starts.
//
// xviewlint:writer-init
func newEngine() *engine {
	e := &engine{}
	e.view = &view{}
	return e
}

// run is the apply loop; it and its callees may write the field.
//
// xviewlint:writer-loop
func (e *engine) run() {
	for i := 0; i < 3; i++ {
		e.apply()
	}
}

// apply is reachable from run, so this write is legal.
func (e *engine) apply() {
	e.view = &view{gen: e.view.gen + 1}
}

// helper is reachable from run through apply? No — only through reset,
// which is outside the writer graph, so its write is flagged.
func (e *engine) reset() {
	e.view = nil // want "writer-only field view"
	e.helper()
}

func (e *engine) helper() {
	e.view = &view{} // want "writer-only field view"
}

// readers may read the field and the epoch pointer freely.
func (e *engine) generation() uint64 {
	_ = e.ep.Load()
	return e.view.gen
}

// storing through a published snapshot bypasses the writer entirely.
func (e *engine) corrupt() {
	e.ep.Load().n = 7 // want "store through atomic.Pointer Load"
}

// unannotated fields are not restricted.
func (e *engine) count() {
	e.hits++
}
