// Package singlewriter enforces the single-writer architecture of the
// serving layer. The engine publishes epochs through an atomic.Pointer
// and funnels every mutation through one apply goroutine; the analyzer
// makes the two halves of that contract mechanical:
//
//  1. A struct field annotated `// xviewlint:writer-only` may be written
//     only from the apply-loop call graph: functions annotated
//     `// xviewlint:writer-loop` (the loop itself), functions annotated
//     `// xviewlint:writer-init` (constructors that run before the loop
//     starts), and everything they transitively call within the package.
//     Reads are unrestricted — that is the point of the architecture.
//  2. A value obtained from atomic.Pointer.Load is a shared published
//     snapshot; storing through it (ep.Load().f = v, or any deeper path)
//     bypasses the writer entirely and is always flagged.
//
// Test files are exempt from rule 1: tests construct engines in ways the
// production call graph does not.
package singlewriter

import (
	"go/ast"
	"go/types"
	"strings"

	"rxview/internal/lint/analysis"
	"rxview/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "singlewriter",
	Doc: "fields annotated // xviewlint:writer-only may be written only from the " +
		"writer-loop/writer-init call graph, and atomic.Pointer loads are never stored through",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	writerFields := collectWriterFields(pass)
	allowed := writerReachable(pass)
	for _, f := range pass.Files {
		isTest := strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inWriter := allowed[pass.TypesInfo.Defs[fd.Name]]
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						checkStore(pass, lhs, writerFields, inWriter || isTest)
					}
				case *ast.IncDecStmt:
					checkStore(pass, n.X, writerFields, inWriter || isTest)
				}
				return true
			})
		}
	}
	return nil, nil
}

// collectWriterFields gathers the field objects annotated writer-only.
func collectWriterFields(pass *analysis.Pass) map[types.Object]bool {
	fields := make(map[types.Object]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !lintutil.HasDirective("writer-only", field.Doc, field.Comment) {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						fields[obj] = true
					}
				}
			}
			return true
		})
	}
	return fields
}

// writerReachable computes the set of function objects reachable from the
// annotated writer roots through static intra-package calls, including
// calls made inside function literals of a reachable function.
func writerReachable(pass *analysis.Pass) map[types.Object]bool {
	// Static call edges between this package's declared functions.
	callees := make(map[types.Object][]types.Object)
	var roots []types.Object
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			if lintutil.HasDirective("writer-loop", fd.Doc) ||
				lintutil.HasDirective("writer-init", fd.Doc) {
				roots = append(roots, obj)
			}
			if fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := lintutil.CalleeObj(pass.TypesInfo, call)
				if fn, ok := callee.(*types.Func); ok && fn.Pkg() == pass.Pkg {
					callees[obj] = append(callees[obj], fn)
				}
				return true
			})
		}
	}
	reach := make(map[types.Object]bool)
	work := roots
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		if reach[fn] {
			continue
		}
		reach[fn] = true
		work = append(work, callees[fn]...)
	}
	return reach
}

// checkStore inspects one store destination. atomic-load paths are always
// flagged; writer-only fields are flagged outside the writer call graph.
func checkStore(pass *analysis.Pass, dest ast.Expr, writerFields map[types.Object]bool, inWriter bool) {
	e := ast.Unparen(dest)
	reportedLoad := false
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = ast.Unparen(x.X)
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
		case *ast.SliceExpr:
			e = ast.Unparen(x.X)
		case *ast.SelectorExpr:
			if obj := pass.TypesInfo.Uses[x.Sel]; obj != nil && writerFields[obj] && !inWriter {
				pass.Reportf(dest.Pos(), "write to writer-only field %s outside the writer-loop call graph: route the mutation through the apply loop", x.Sel.Name)
			}
			e = ast.Unparen(x.X)
		case *ast.CallExpr:
			if !reportedLoad && isAtomicLoad(pass.TypesInfo, x) {
				pass.Reportf(dest.Pos(), "store through atomic.Pointer Load: the loaded value is a published snapshot shared with readers")
				reportedLoad = true
			}
			return // call results terminate the addressable chain
		default:
			return
		}
	}
}

// isAtomicLoad recognizes (*sync/atomic.Pointer[T]).Load calls.
func isAtomicLoad(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Load" {
		return false
	}
	tv, ok := info.Types[sel.X]
	return ok && lintutil.IsNamed(tv.Type, "sync/atomic", "Pointer")
}
