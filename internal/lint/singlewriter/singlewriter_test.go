package singlewriter_test

import (
	"testing"

	"rxview/internal/lint/linttest"
	"rxview/internal/lint/singlewriter"
)

func TestSingleWriter(t *testing.T) {
	linttest.Run(t, "testdata", singlewriter.Analyzer, "a")
}
