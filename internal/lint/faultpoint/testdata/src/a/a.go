// Fixture modeling fault-point call sites: catalog constants pass;
// string literals, ad-hoc conversions and Point constants declared
// outside the catalog are flagged wherever a Point is minted.
package a

import fault "rxview/internal/fault"

// instrumented is the production idiom: the site names its catalog
// constant. Nothing here is flagged.
func instrumented() error {
	if err := fault.Hit(fault.WALSlowIO); err != nil {
		return err
	}
	return fault.Hit(fault.WALFsync)
}

// A literal spelling of a cataloged name is still the wrong token kind —
// renaming the catalog constant would silently orphan this site.
func literalRight() error {
	return fault.Hit("wal.fsync") // want `string literal used as fault.Point: name a catalog constant from rxview/internal/fault \(did you mean fault.WALFsync\?\)`
}

// A literal naming nothing in the catalog would never fire at all.
func literalWrong() error {
	return fault.Hit("wal.bogus") // want `string literal used as fault.Point: name a catalog constant`
}

// Conversions mint Points the catalog never declared.
func convert(s string) error {
	return fault.Hit(fault.Point(s)) // want `conversion to fault.Point outside the catalog`
}

// A Point constant declared here smuggles an uncataloged name past the
// literal check: flagged at the declaration (the literal) and at each use.
const localPoint fault.Point = "wal.local" // want `string literal used as fault.Point`

func useLocal() error {
	return fault.Hit(localPoint) // want `fault.Point constant localPoint is declared outside the catalog`
}

// Rule literals arm points: a keyed catalog constant passes, a literal is
// minting a point no instrumented site carries.
func plans() {
	_, _ = fault.NewPlan(1, fault.Rule{Point: fault.WALSlowIO, Count: 1})
	_, _ = fault.NewPlan(1, fault.Rule{Point: "wal.slow-io"}) // want `string literal used as fault.Point`
	_, _ = fault.NewPlan(1, fault.Rule{"wal.adhoc", 2})       // want `string literal used as fault.Point`
}

// Slice elements are Point positions too.
var pts = []fault.Point{fault.WALFsync, "wal.adhoc"} // want `string literal used as fault.Point`

// Comparing against a literal hardcodes a name the catalog owns.
func compare(p fault.Point) bool {
	return p == "wal.fsync" // want `string literal used as fault.Point`
}

// Variables of type Point are fine: their value came from the catalog
// package's own validated API or from a construction site flagged above.
func sweep() int {
	n := 0
	for _, p := range fault.Catalog() {
		if fault.Registered(p) {
			n++
		}
		_ = fault.Rule{Point: p}
	}
	return n
}

// Point-to-string conversions leave the domain and are not minting.
func names() []string {
	var out []string
	for _, p := range fault.Catalog() {
		out = append(out, string(p))
	}
	return out
}
