// Stub of the fault-injection catalog: enough surface to type-check the
// fixture. The analyzer matches by import path and type identity, so the
// stub stands in for rxview/internal/fault; only two catalog points are
// needed to exercise every rule.
package fault

type Point string

const (
	WALFsync  Point = "wal.fsync"
	WALSlowIO Point = "wal.slow-io"
)

type Rule struct {
	Point Point
	Count int
}

type Plan struct{ seed int64 }

func NewPlan(seed int64, rules ...Rule) (*Plan, error) { return &Plan{seed: seed}, nil }

func Hit(p Point) error { return nil }

func Registered(p Point) bool { return p == WALFsync || p == WALSlowIO }

func Catalog() []Point { return []Point{WALFsync, WALSlowIO} }
