package faultpoint_test

import (
	"testing"

	"rxview/internal/lint/faultpoint"
	"rxview/internal/lint/linttest"
)

func TestFaultPoint(t *testing.T) {
	linttest.Run(t, "testdata", faultpoint.Analyzer, "a")
}
