// Package faultpoint enforces the fault-injection catalog contract: every
// fault.Point value outside rxview/internal/fault must name one of the
// catalog constants declared there. The catalog is the complete inventory
// of ways the system can be made to fail — a Hit call or a Rule armed with
// an ad-hoc string would instrument (or arm) a point no chaos spec can
// address and no test schedule covers, so the analyzer rejects the three
// ways an uncataloged Point can be minted: a string literal in a
// Point-typed position, a Point constant declared outside the catalog
// package, and an explicit conversion to fault.Point.
//
// Variables of type Point are not flagged: a non-constant Point can only
// originate from the catalog package's own API (Catalog, ParseSpec — both
// validated) or from a construction site this analyzer already flags, so
// provenance is checked once, where the value is made.
package faultpoint

import (
	"go/ast"
	"go/constant"
	"go/types"

	"rxview/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "faultpoint",
	Doc: "fault.Point values must name catalog constants from rxview/internal/fault; " +
		"string literals, foreign Point constants and fault.Point conversions mint " +
		"points no chaos spec can address",
	Run: run,
}

// faultPkg is the catalog package: the one place Points may be declared.
const faultPkg = "rxview/internal/fault"

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Path() == faultPkg {
		return nil, nil // the catalog declares Points; everyone else only names them
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				// An explicit conversion mints a Point the catalog never
				// declared. The operand is not descended into: the
				// conversion is the finding.
				if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() && isPoint(tv.Type) {
					pass.Reportf(n.Pos(), "conversion to fault.Point outside the catalog: fault points are declared in %s, not constructed at call sites", faultPkg)
					return false
				}
			case *ast.BasicLit:
				// An untyped string constant adopted as a Point — the
				// type checker records the converted type, so this catches
				// call arguments, Rule literals, slice elements, local
				// const declarations and comparisons alike.
				if tv, ok := pass.TypesInfo.Types[n]; ok && isPoint(tv.Type) {
					msg := "string literal used as fault.Point: name a catalog constant from " + faultPkg
					if name := catalogName(tv.Type, tv.Value); name != "" {
						msg += " (did you mean fault." + name + "?)"
					}
					pass.Reportf(n.Pos(), "%s", msg)
				}
			case *ast.Ident:
				// A Point constant declared in some other package smuggles
				// an uncataloged name past the literal check above; its
				// declaration site is also flagged (the literal), but each
				// use is an independent violation.
				obj, ok := pass.TypesInfo.Uses[n].(*types.Const)
				if !ok || obj.Pkg() == nil || obj.Pkg().Path() == faultPkg {
					return true
				}
				tv := pass.TypesInfo.Types[n]
				if isPoint(obj.Type()) || isPoint(tv.Type) {
					pass.Reportf(n.Pos(), "fault.Point constant %s is declared outside the catalog %s", obj.Name(), faultPkg)
				}
			}
			return true
		})
	}
	return nil, nil
}

// isPoint reports whether t is the named type rxview/internal/fault.Point.
func isPoint(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == faultPkg && n.Obj().Name() == "Point"
}

// catalogName scans the catalog package's scope (reachable through the
// Point type itself) for a constant whose value equals val, turning "you
// wrote the right name as the wrong kind of token" into a fix-it hint.
func catalogName(pointType types.Type, val constant.Value) string {
	if val == nil || val.Kind() != constant.String {
		return ""
	}
	n, ok := types.Unalias(pointType).(*types.Named)
	if !ok || n.Obj() == nil || n.Obj().Pkg() == nil {
		return ""
	}
	scope := n.Obj().Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !isPoint(c.Type()) {
			continue
		}
		if c.Val().Kind() == constant.String && constant.StringVal(c.Val()) == constant.StringVal(val) {
			return name
		}
	}
	return ""
}
