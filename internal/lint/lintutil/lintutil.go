// Package lintutil holds the small helpers the xviewlint analyzers share:
// directive parsing (the // xviewlint:<key> annotation grammar), type
// identity tests, and fmt verb extraction for wrap checking.
package lintutil

import (
	"go/ast"
	"go/types"
	"strings"
)

// Directive is one parsed // xviewlint:<key> [args...] annotation.
type Directive struct {
	Key  string // e.g. "writer-only", "writer-loop", "cow-primitive"
	Args string // rest of the line, trimmed
}

const directivePrefix = "xviewlint:"

// Directives extracts xviewlint annotations from a comment group. Both
// doc comments and trailing line comments participate, so field
// annotations can be written either above or beside the field.
func Directives(groups ...*ast.CommentGroup) []Directive {
	var out []Directive
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, directivePrefix)
			key, args, _ := strings.Cut(rest, " ")
			out = append(out, Directive{Key: key, Args: strings.TrimSpace(args)})
		}
	}
	return out
}

// HasDirective reports whether any of the comment groups carries the
// annotation key.
func HasDirective(key string, groups ...*ast.CommentGroup) bool {
	for _, d := range Directives(groups...) {
		if d.Key == key {
			return true
		}
	}
	return false
}

// Deref unwraps one level of pointer.
func Deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// NamedType returns the named (or alias-resolved) type of t after
// dereferencing one pointer level, or nil.
func NamedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// IsNamed reports whether t (possibly behind one pointer) is the named
// type path.name.
func IsNamed(t types.Type, path, name string) bool {
	n := NamedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == path && n.Obj().Name() == name
}

// IsErrorType reports whether t implements the error interface.
func IsErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface) ||
		types.Implements(types.NewPointer(t), errorIface)
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// IsErrorInterface reports whether t is exactly the error interface (the
// static type of most err values).
func IsErrorInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	it, ok := t.Underlying().(*types.Interface)
	return ok && types.Identical(it, errorIface)
}

// CalleeObj resolves the called function or method object of a call, or
// nil for calls through function values and conversions.
func CalleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// IsPkgFunc reports whether the call invokes the package-level function
// path.name.
func IsPkgFunc(info *types.Info, call *ast.CallExpr, path, name string) bool {
	obj := CalleeObj(info, call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if _, isFunc := obj.(*types.Func); !isFunc {
		return false
	}
	return obj.Pkg().Path() == path && obj.Name() == name
}

// Verb is one fmt verb occurrence mapped to its argument index (after the
// format string).
type Verb struct {
	Letter byte
	ArgPos int // 0-based index into the variadic args
}

// FormatVerbs extracts the verbs of a fmt format string in argument
// order. It returns ok=false for strings using explicit argument indexes
// or star widths, which the callers treat as "don't know".
func FormatVerbs(format string) (verbs []Verb, ok bool) {
	arg := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// flags, width, precision
		for i < len(format) && strings.IndexByte("+-# 0.123456789", format[i]) >= 0 {
			i++
		}
		if i >= len(format) {
			return nil, false
		}
		switch format[i] {
		case '%':
			continue
		case '*', '[':
			return nil, false
		}
		verbs = append(verbs, Verb{Letter: format[i], ArgPos: arg})
		arg++
	}
	return verbs, true
}
