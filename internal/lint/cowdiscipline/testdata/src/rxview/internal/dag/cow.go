// Fixture mirroring the real refStore shapes from internal/dag/cow.go:
// a two-level block spine of chunked rows with per-level epoch stamps.
// Clean code goes through the own* primitives; the seeded violations
// store into spine-reachable memory directly.
package dag

type NodeID int32

const (
	chunkBits = 8
	blockBits = 8
	rowBlock  = chunkBits + blockBits
	chunkMask = 1<<chunkBits - 1
	blockMask = 1<<blockBits - 1
)

type refChunk [1 << chunkBits][]NodeID

type refBlock [1 << blockBits]*refChunk

type refStore struct {
	blocks []*refBlock
	bEpoch []uint64
	cEpoch []uint64
	rEpoch []uint64
	epoch  uint64
	n      int
}

// ownBlock is the real primitive: it must store into the spine to install
// the copied block, so it carries the audit annotation.
//
// xviewlint:cow-primitive
func (s *refStore) ownBlock(bi int) *refBlock {
	if s.bEpoch[bi] != s.epoch {
		cp := *s.blocks[bi]
		s.blocks[bi] = &cp
		s.bEpoch[bi] = s.epoch
	}
	return s.blocks[bi]
}

// xviewlint:cow-primitive
func (s *refStore) ownChunk(ci int) *refChunk {
	b := s.ownBlock(ci >> blockBits)
	if s.cEpoch[ci] != s.epoch {
		cp := *b[ci&blockMask]
		b[ci&blockMask] = &cp
		s.cEpoch[ci] = s.epoch
	}
	return b[ci&blockMask]
}

// setRow is clean: the destination chunk comes from ownChunk.
func (s *refStore) setRow(i NodeID, r []NodeID) {
	s.ownChunk(int(i) >> chunkBits)[i&chunkMask] = r
	s.rEpoch[i] = s.epoch
}

// clone is clean: c's spine is freshly built, so stores into it are
// construction.
func (s *refStore) clone() *refStore {
	c := &refStore{
		blocks: make([]*refBlock, len(s.blocks)),
		epoch:  s.epoch,
		n:      s.n,
	}
	for bi := range s.blocks {
		nb := &refBlock{}
		for off, ch := range s.blocks[bi] {
			if ch != nil {
				cp := *ch
				nb[off] = &cp
			}
		}
		c.blocks[bi] = nb
	}
	return c
}
