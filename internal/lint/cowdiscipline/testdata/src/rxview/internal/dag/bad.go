// Seeded violations: in-place stores into spine-reachable memory.
package dag

// badSet skips the own* primitives entirely.
func (s *refStore) badSet(i NodeID, r []NodeID) {
	s.blocks[i>>rowBlock][(i>>chunkBits)&blockMask][i&chunkMask] = r // want "spine-reachable"
}

// badViaVar routes the spine through a local: provenance follows it.
func (s *refStore) badViaVar(bi, ci int) {
	b := s.blocks[bi]
	b[ci&blockMask] = &refChunk{} // want "spine-reachable"
}

// badDeref overwrites a shared chunk in place through a pointer.
func (s *refStore) badDeref(ci int) {
	ch := s.blocks[ci>>blockBits][ci&blockMask]
	*ch = refChunk{} // want "spine-reachable"
}

// badCopy mutates a shared row with copy instead of an indexed store.
func (s *refStore) badCopy(i NodeID, src []NodeID) {
	row := s.blocks[i>>rowBlock][(i>>chunkBits)&blockMask][i&chunkMask]
	copy(row, src) // want "spine-reachable"
}

// badAppendAlias: append over a spine row may write into shared capacity.
func (s *refStore) badAppendAlias(i NodeID, v NodeID) {
	row := append(s.blocks[i>>rowBlock][(i>>chunkBits)&blockMask][i&chunkMask], v)
	row[0] = v // want "spine-reachable"
}
