package cowdiscipline_test

import (
	"testing"

	"rxview/internal/lint/cowdiscipline"
	"rxview/internal/lint/linttest"
)

func TestCowDiscipline(t *testing.T) {
	linttest.Run(t, "testdata", cowdiscipline.Analyzer, "rxview/internal/dag")
}
