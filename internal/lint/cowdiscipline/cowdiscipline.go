// Package cowdiscipline enforces the copy-on-write discipline inside the
// two packages that implement it, internal/dag and internal/reach. Their
// stores share a two-level block spine across epochs: a block, chunk or
// row reached from `.blocks` may be referenced by an already-published
// sealed version, so storing into it in place corrupts history. Every
// such store must instead go through the own* primitives (ownBlock,
// ownChunk, ownRow), which copy a shared node before handing out a
// mutable one.
//
// The analyzer classifies each local value by provenance, in source
// order:
//
//   - owned:  the result of an own*/clone call, a fresh make/new/
//     composite literal, or append over an owned slice — safe to
//     mutate;
//   - spine:  anything reached from a `.blocks` field, or derived from a
//     spine-classified value — shared with sealed epochs;
//   - unknown: parameters and everything else — not flagged.
//
// A store whose destination derives from spine provenance is reported.
// The CoW primitives themselves must make exactly such stores (they
// install the copied node into the spine); they carry a
// `// xviewlint:cow-primitive` directive, which exempts one function and
// is itself audited in review.
package cowdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"rxview/internal/lint/analysis"
	"rxview/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "cowdiscipline",
	Doc: "in internal/dag and internal/reach, stores into spine-reachable blocks/chunks/rows " +
		"must go through ownBlock/ownChunk/ownRow (or be annotated // xviewlint:cow-primitive)",
	Run: run,
}

// checkedPkg limits the analyzer to the packages that own a block spine.
// Everything else is out of scope; the fixtures use the same import paths.
func checkedPkg(path string) bool {
	return path == "rxview/internal/dag" || path == "rxview/internal/reach"
}

type provenance int

const (
	unknown provenance = iota
	owned
	spine
)

func run(pass *analysis.Pass) (any, error) {
	if !checkedPkg(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if lintutil.HasDirective("cow-primitive", fd.Doc) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

type checker struct {
	pass *analysis.Pass
	// vars holds the provenance of local variables, updated in source
	// order as assignments are seen.
	vars map[types.Object]provenance
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	c := &checker{pass: pass, vars: make(map[types.Object]provenance)}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				c.checkDest(lhs)
			}
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						c.bind(id, c.classify(n.Rhs[i]))
					}
				}
			}
		case *ast.IncDecStmt:
			c.checkDest(n.X)
		case *ast.RangeStmt:
			// `for i, ch := range spineExpr` binds ch to shared memory.
			if n.Tok == token.DEFINE && n.Value != nil {
				if id, ok := n.Value.(*ast.Ident); ok {
					c.bind(id, c.classify(n.X))
				}
			}
		case *ast.CallExpr:
			// copy's destination mutates whatever backs it, even when it
			// is a bare variable (which an assignment would merely rebind).
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "copy" &&
				c.pass.TypesInfo.Uses[id] == types.Universe.Lookup("copy") && len(n.Args) == 2 {
				if c.classify(n.Args[0]) == spine {
					c.report(n.Args[0])
				}
			}
		}
		return true
	})
}

func (c *checker) bind(id *ast.Ident, p provenance) {
	if id.Name == "_" {
		return
	}
	info := c.pass.TypesInfo
	if obj := info.Defs[id]; obj != nil {
		c.vars[obj] = p
	} else if obj := info.Uses[id]; obj != nil {
		c.vars[obj] = p
	}
}

// classify computes the provenance of an expression.
func (c *checker) classify(e ast.Expr) provenance {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if obj := c.pass.TypesInfo.Uses[e]; obj != nil {
			return c.vars[obj]
		}
		return unknown
	case *ast.SelectorExpr:
		// The spine of a freshly built store (clone's `c := &refStore{}`)
		// is owned; only a spine hanging off shared state is shared.
		if base := c.classify(e.X); base == owned {
			return owned
		}
		if e.Sel.Name == "blocks" {
			return spine
		}
		return c.classify(e.X)
	case *ast.IndexExpr:
		return c.classify(e.X)
	case *ast.SliceExpr:
		return c.classify(e.X)
	case *ast.StarExpr:
		return c.classify(e.X)
	case *ast.UnaryExpr:
		return c.classify(e.X)
	case *ast.CompositeLit:
		return owned
	case *ast.CallExpr:
		return c.classifyCall(e)
	}
	return unknown
}

func (c *checker) classifyCall(call *ast.CallExpr) provenance {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch {
		case fun.Name == "make" || fun.Name == "new":
			if c.pass.TypesInfo.Uses[fun] == types.Universe.Lookup(fun.Name) {
				return owned
			}
		case fun.Name == "append":
			// append inherits its base's provenance: appending to a
			// spine-shared row can write into shared capacity.
			if c.pass.TypesInfo.Uses[fun] == types.Universe.Lookup("append") && len(call.Args) > 0 {
				return c.classify(call.Args[0])
			}
		}
		if ownsResult(fun.Name) {
			return owned
		}
	case *ast.SelectorExpr:
		if ownsResult(fun.Sel.Name) {
			return owned
		}
	}
	return unknown
}

// ownsResult reports whether a callee by this name hands back mutable
// memory: the own* primitives and clone (which builds a fresh spine).
func ownsResult(name string) bool {
	return strings.HasPrefix(name, "own") || name == "clone"
}

// checkDest flags a store whose destination has spine provenance.
func (c *checker) checkDest(dest ast.Expr) {
	switch d := ast.Unparen(dest).(type) {
	case *ast.IndexExpr:
		if c.classify(d.X) == spine {
			c.report(dest)
		}
	case *ast.StarExpr:
		if c.classify(d.X) == spine {
			c.report(dest)
		}
	case *ast.SelectorExpr:
		if c.classify(d.X) == spine {
			c.report(dest)
		}
	case *ast.SliceExpr:
		if c.classify(d.X) == spine {
			c.report(dest)
		}
	}
}

func (c *checker) report(dest ast.Expr) {
	c.pass.Reportf(dest.Pos(),
		"store into spine-reachable memory without ownBlock/ownChunk/ownRow: "+
			"the destination may be shared with a sealed epoch")
}
