// Package loader loads and type-checks the packages of this module for
// analysis, the same way cmd/vet's driver does: the packages under
// analysis are parsed and type-checked from source, and every dependency
// (standard library included) is imported from compiler export data that
// `go list -export` materializes in the build cache. No network, no
// third-party modules, and no duplicated build logic — the go command
// decides what is in each package.
package loader

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one type-checked package under analysis.
type Package struct {
	ImportPath string // canonical path ("rxview/server"), brackets stripped
	Raw        string // as go list printed it, e.g. "rxview/server [rxview/server.test]"
	Dir        string
	Name       string
	GoFiles    []string

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// TypeErrors collects soft type-check problems. The driver reports
	// them but still runs analyzers that can cope.
	TypeErrors []error
}

// listEntry mirrors the go list -json fields we consume.
type listEntry struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	Imports    []string
	Standard   bool
	ForTest    string
	Module     *struct {
		Path      string
		Main      bool
		GoVersion string
	}
	Error *struct{ Err string }
}

func stripVariant(importPath string) string {
	if i := strings.Index(importPath, " ["); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

func runGoList(dir string, args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// Force the pure-Go build so CompiledGoFiles never reference
	// cgo-generated sources and the export graph is self-contained.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("loader: go %s: %w\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}

func decodeList(data []byte) ([]*listEntry, error) {
	var entries []*listEntry
	dec := json.NewDecoder(bytes.NewReader(data))
	for {
		e := new(listEntry)
		if err := dec.Decode(e); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %w", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// Load lists patterns (go package patterns, e.g. ./...), builds export
// data for the full dependency graph including test variants, and
// type-checks every matched package of the main module from source. Test
// files are analyzed: in-package tests ride in the augmented variant,
// external _test packages load separately.
func Load(dir string, patterns []string) ([]*Package, error) {
	matchedOut, err := runGoList(dir, append([]string{"list", "-find", "-json=ImportPath", "--"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	matchedEntries, err := decodeList(matchedOut)
	if err != nil {
		return nil, err
	}
	matched := make(map[string]bool, len(matchedEntries))
	for _, e := range matchedEntries {
		matched[e.ImportPath] = true
	}

	fullOut, err := runGoList(dir, append([]string{
		"list", "-e", "-export", "-deps", "-test",
		"-json=ImportPath,Dir,Name,Export,GoFiles,Imports,Standard,ForTest,Module,Error", "--",
	}, patterns...)...)
	if err != nil {
		return nil, err
	}
	entries, err := decodeList(fullOut)
	if err != nil {
		return nil, err
	}

	byRaw := make(map[string]*listEntry, len(entries))
	augmented := make(map[string]bool) // base paths that have a [T.test] variant
	for _, e := range entries {
		byRaw[e.ImportPath] = e
		if e.ForTest != "" && stripVariant(e.ImportPath) == e.ForTest {
			augmented[e.ForTest] = true
		}
	}

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, e := range entries {
		path := stripVariant(e.ImportPath)
		if e.Module == nil || !e.Module.Main || strings.HasSuffix(path, ".test") {
			continue // dependencies and synthesized test mains
		}
		if e.Error != nil {
			return nil, fmt.Errorf("loader: %s: %s", e.ImportPath, e.Error.Err)
		}
		// The base entry is subsumed by its test-augmented variant, which
		// compiles GoFiles plus the in-package test files.
		if e.ImportPath == path && augmented[path] {
			continue
		}
		base := strings.TrimSuffix(path, "_test")
		if !matched[path] && !matched[base] {
			continue
		}
		p, err := typeCheck(fset, e, byRaw)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

func typeCheck(fset *token.FileSet, e *listEntry, byRaw map[string]*listEntry) (*Package, error) {
	p := &Package{
		ImportPath: stripVariant(e.ImportPath),
		Raw:        e.ImportPath,
		Dir:        e.Dir,
		Name:       e.Name,
		GoFiles:    e.GoFiles,
		Fset:       fset,
	}
	for _, f := range e.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(e.Dir, f)
		}
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("loader: %w", err)
		}
		p.Files = append(p.Files, af)
	}

	goVersion := ""
	if e.Module != nil && e.Module.GoVersion != "" {
		goVersion = "go" + e.Module.GoVersion
	}
	conf := types.Config{
		Importer:  newExportImporter(fset, e, byRaw),
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: goVersion,
		Error:     func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	p.TypesInfo = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	pkg, err := conf.Check(p.ImportPath, fset, p.Files, p.TypesInfo)
	if err != nil && pkg == nil {
		return nil, fmt.Errorf("loader: type-checking %s: %w", e.ImportPath, err)
	}
	p.Pkg = pkg
	return p, nil
}

// newExportImporter resolves the imports of one package under analysis
// against compiler export data. Bracketed test-variant imports ("rxview
// [rxview.test]") are preferred when the consumer is itself a test
// variant, mirroring how the go command links test binaries.
func newExportImporter(fset *token.FileSet, consumer *listEntry, byRaw map[string]*listEntry) types.Importer {
	resolve := func(path string) (*listEntry, error) {
		if consumer.ForTest != "" {
			if e, ok := byRaw[path+" ["+consumer.ForTest+".test]"]; ok {
				return e, nil
			}
		}
		if e, ok := byRaw[path]; ok {
			return e, nil
		}
		return nil, fmt.Errorf("loader: %s: import %q not in the go list graph", consumer.ImportPath, path)
	}
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e, err := resolve(path)
		if err != nil {
			return nil, err
		}
		if e.Export == "" {
			return nil, fmt.Errorf("loader: no export data for %q", e.ImportPath)
		}
		return os.Open(e.Export)
	})
}
