package obshotpath_test

import (
	"testing"

	"rxview/internal/lint/linttest"
	"rxview/internal/lint/obshotpath"
)

func TestObsHotPath(t *testing.T) {
	linttest.Run(t, "testdata", obshotpath.Analyzer, "a")
}
