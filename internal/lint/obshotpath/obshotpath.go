// Package obshotpath enforces the two-sided API contract of the obs
// telemetry package. Recording a sample must be cheap enough for the
// single-writer apply loop and the wait-free read path, so obs splits its
// surface: pre-registered handles (Counter.Inc, Histogram.Observe,
// SlowLog.Record) are one or two atomic operations, while the snapshot
// side (Registry.Gather, WritePrometheus, WriteVars, Histogram.Snapshot,
// SlowLog.Entries) takes the registry or ring mutex and allocates. The
// analyzer makes the split mechanical: within the hot call graphs —
// functions annotated `// xviewlint:writer-loop` (the apply loop) or
// `// xviewlint:hot-path` (wait-free read paths) and everything they
// transitively call within the package — any call into the locked
// snapshot API is flagged.
//
// Registration (Registry.NewCounter and friends) is deliberately not in
// the forbidden set: the lazy sync.Once registration idiom runs it from a
// hot function exactly once, and the handles it returns are the fast
// path. The check targets per-operation locked work, not one-time setup.
package obshotpath

import (
	"go/ast"
	"go/types"

	"rxview/internal/lint/analysis"
	"rxview/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "obshotpath",
	Doc: "the writer-loop and // xviewlint:hot-path call graphs record telemetry only through " +
		"the atomic fast-path obs API; the locked snapshot side (Gather, WritePrometheus, " +
		"WriteVars, Snapshot, Entries) is reserved for scrape handlers and tools",
	Run: run,
}

// lockedAPI names the obs functions and methods that take the registry or
// ring mutex per call — the scrape-side surface.
var lockedAPI = map[string]bool{
	"Gather":          true, // (*Registry).Gather
	"GatherAll":       true,
	"WritePrometheus": true,
	"WriteVars":       true,
	"ParseExposition": true,
	"Snapshot":        true, // (*Histogram).Snapshot
	"Entries":         true, // (*SlowLog).Entries
}

func run(pass *analysis.Pass) (any, error) {
	hot := hotReachable(pass)
	if len(hot) == 0 {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hot[pass.TypesInfo.Defs[fd.Name]] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn, ok := lintutil.CalleeObj(pass.TypesInfo, call).(*types.Func)
				if ok && isObsPkg(fn.Pkg()) && lockedAPI[fn.Name()] {
					pass.Reportf(call.Pos(), "locked obs API %s on the hot path: record through pre-registered atomic handles; the Gather/snapshot side belongs in scrape handlers and tools", fn.Name())
				}
				return true
			})
		}
	}
	return nil, nil
}

// isObsPkg reports whether pkg is the telemetry core or its public
// gateway (whose forwarding functions live in rxview/obs while methods on
// the aliased types resolve to rxview/internal/obs).
func isObsPkg(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	return pkg.Path() == "rxview/obs" || pkg.Path() == "rxview/internal/obs"
}

// hotReachable computes the function objects reachable from the hot roots
// (writer-loop and hot-path annotations) through static intra-package
// calls, including calls made inside function literals of a reachable
// function — the same closure singlewriter builds for its writer graph.
func hotReachable(pass *analysis.Pass) map[types.Object]bool {
	callees := make(map[types.Object][]types.Object)
	var roots []types.Object
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			if lintutil.HasDirective("writer-loop", fd.Doc) ||
				lintutil.HasDirective("hot-path", fd.Doc) {
				roots = append(roots, obj)
			}
			if fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := lintutil.CalleeObj(pass.TypesInfo, call)
				if fn, ok := callee.(*types.Func); ok && fn.Pkg() == pass.Pkg {
					callees[obj] = append(callees[obj], fn)
				}
				return true
			})
		}
	}
	reach := make(map[types.Object]bool)
	work := roots
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		if reach[fn] {
			continue
		}
		reach[fn] = true
		work = append(work, callees[fn]...)
	}
	return reach
}
