// Fixture modeling the serving engine's telemetry: fast-path handles on
// the hot paths, the locked snapshot side only outside them.
package a

import "rxview/obs"

type engine struct {
	reg  *obs.Registry
	hits *obs.Counter
	dur  *obs.Histogram
	slow *obs.SlowLog
}

// newEngine registers handles before the loop starts. Registration is not
// the locked snapshot side, so nothing here is flagged.
//
// xviewlint:writer-init
func newEngine() *engine {
	r := obs.NewRegistry()
	return &engine{
		reg:  r,
		hits: r.NewCounter("hits", ""),
		dur:  r.NewHistogram("dur", "", nil),
		slow: obs.NewSlowLog(8),
	}
}

// run is the apply loop: everything it reaches is hot.
//
// xviewlint:writer-loop
func (e *engine) run() {
	e.hits.Inc()
	e.apply()
	defer func() { e.flush() }()
}

// apply is reachable from run, so its snapshot-side calls are flagged.
func (e *engine) apply() {
	e.dur.Observe(1)
	_ = e.reg.Gather()      // want "locked obs API Gather"
	_, _ = e.slow.Entries() // want "locked obs API Entries"
}

// flush is reached only through run's function literal — still hot.
func (e *engine) flush() {
	_ = obs.WritePrometheus(nil, e.reg) // want "locked obs API WritePrometheus"
}

// query is a wait-free read path, annotated explicitly.
//
// xviewlint:hot-path
func (e *engine) query() {
	e.hits.Inc()
	e.slow.Record("query", "", 0, 0)
	_ = e.dur.Snapshot() // want "locked obs API Snapshot"
}

// lazyRegister models the sync.Once registration idiom: reachable from a
// hot root, but registration is one-time setup, not per-operation work.
//
// xviewlint:hot-path
func (e *engine) lazyRegister() {
	if e.hits == nil {
		e.hits = e.reg.NewCounter("hits", "")
	}
	e.hits.Inc()
}

// scrape is outside both hot graphs: the locked side is its job.
func (e *engine) scrape() {
	_ = e.reg.Gather()
	_ = obs.WritePrometheus(nil, e.reg)
	_, _ = e.slow.Entries()
}

// snapshot methods of other packages are not the obs API; a same-named
// local method must not be confused with obs.Histogram.Snapshot.
type view struct{}

func (v *view) Snapshot() *view { return v }

// xviewlint:hot-path
func (e *engine) publish(v *view) *view { return v.Snapshot() }
