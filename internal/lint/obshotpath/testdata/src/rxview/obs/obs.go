// Stub of the telemetry gateway: enough surface to type-check the
// fixture. The analyzer matches by import path and symbol name, so the
// stub stands in for both rxview/obs and rxview/internal/obs; durations
// are plain int64 to keep the fixture tree free of standard-library stubs.
package obs

type Counter struct{ n uint64 }

func (c *Counter) Inc() {}

type Histogram struct{ count uint64 }

func (h *Histogram) Observe(d int64) {}

func (h *Histogram) Snapshot() *HistSnapshot { return nil }

type HistSnapshot struct{ Count uint64 }

type Family struct{ Name string }

type Registry struct{ fams map[string]*Family }

func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) NewCounter(name, help string) *Counter { return &Counter{} }

func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	return &Histogram{}
}

func (r *Registry) Gather() []Family { return nil }

func WritePrometheus(w any, regs ...*Registry) error { return nil }

type SlowEntry struct{ Kind string }

type SlowLog struct{ n int }

func NewSlowLog(capacity int) *SlowLog { return &SlowLog{} }

func (l *SlowLog) Record(kind, detail string, d int64, gen uint64) {}

func (l *SlowLog) Entries() (entries []SlowEntry, dropped uint64) { return nil, 0 }
