package ctxflow_test

import (
	"testing"

	"rxview/internal/lint/ctxflow"
	"rxview/internal/lint/linttest"
)

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, "testdata", ctxflow.Analyzer, "a")
}
