// Package ctxflow enforces context propagation below the public API
// surface. The paper's pipeline is context-aware end to end (cancellation
// is checked between phases); these rules keep it that way:
//
//  1. context.Background() / context.TODO() are forbidden in library
//     packages — main packages and test files are the only context
//     roots. Deliberate detachments (a graceful-shutdown timeout, the
//     merged run context of the coalescing apply loop) carry a
//     //lint:ignore justification.
//  2. An exported function or method that takes a context.Context must
//     actually use it: dropping the parameter silently breaks the
//     cancellation contract the signature advertises.
//  3. Inside a context-carrying function, a loop that contains another
//     loop (the O(n·m) shape of the evaluator and apply paths) must poll
//     cancellation somewhere in its body — ctx.Err(), ctx.Done(), or a
//     callee that receives the ctx.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"rxview/internal/lint/analysis"
	"rxview/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "contexts must flow: no context.Background/TODO below the API surface, " +
		"no ignored ctx parameters, and nested loops under a ctx must poll cancellation",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil // binaries are context roots
	}
	for _, f := range pass.Files {
		pos := pass.Fset.Position(f.Pos())
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue // tests are context roots too
		}
		checkRoots(pass, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxVar := ctxParam(pass.TypesInfo, fd)
			if ctxVar == nil {
				continue
			}
			if fd.Name.IsExported() && !usesVar(pass.TypesInfo, fd.Body, ctxVar) {
				pass.Reportf(fd.Name.Pos(), "exported %s takes a context.Context but never uses it", fd.Name.Name)
				continue
			}
			checkLoops(pass, fd.Body, ctxVar)
		}
	}
	return nil, nil
}

// checkRoots flags context.Background / context.TODO calls.
func checkRoots(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, name := range [...]string{"Background", "TODO"} {
			if lintutil.IsPkgFunc(pass.TypesInfo, call, "context", name) {
				pass.Reportf(call.Pos(), "context.%s below the API surface: accept and propagate the caller's ctx", name)
			}
		}
		return true
	})
}

// ctxParam returns the context.Context parameter variable, or nil.
func ctxParam(info *types.Info, fd *ast.FuncDecl) *types.Var {
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj, ok := info.Defs[name].(*types.Var)
			if ok && lintutil.IsNamed(obj.Type(), "context", "Context") && name.Name != "_" {
				return obj
			}
		}
	}
	return nil
}

func usesVar(info *types.Info, body ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == v {
			found = true
		}
		return !found
	})
	return found
}

// checkLoops reports the outermost loops that contain a nested loop but
// never consult ctx. A loop that polls is still descended into, so a
// deeper non-polling nest is found on its own.
func checkLoops(pass *analysis.Pass, body ast.Node, ctxVar *types.Var) {
	ast.Inspect(body, func(n ast.Node) bool {
		var loopBody *ast.BlockStmt
		switch l := n.(type) {
		case *ast.ForStmt:
			loopBody = l.Body
		case *ast.RangeStmt:
			loopBody = l.Body
		case *ast.FuncLit:
			return false // separate cancellation domain
		default:
			return true
		}
		if !containsLoop(loopBody) {
			return false
		}
		if !usesVar(pass.TypesInfo, loopBody, ctxVar) {
			pass.Reportf(n.Pos(), "nested loop under a ctx never polls cancellation: check ctx.Err() or pass ctx to the per-iteration work")
			return false
		}
		return true
	})
}

func containsLoop(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		case *ast.FuncLit:
			return false
		}
		return !found
	})
	return found
}
