// Seeded violations: detached contexts, ignored ctx parameters, and
// nested loops that never poll cancellation.
package a

import "context"

func detach() context.Context {
	return context.Background() // want "accept and propagate"
}

func todo() context.Context {
	return context.TODO() // want "accept and propagate"
}

// Query advertises cancellation in its signature but drops the parameter.
func Query(ctx context.Context, path string) (string, error) { // want "never uses it"
	return path, nil
}

// Evaluate has the O(n·m) shape: the outer loop must poll ctx.
func Evaluate(ctx context.Context, rows [][]int) int {
	_ = ctx.Err()
	total := 0
	for _, row := range rows { // want "polls cancellation"
		for _, v := range row {
			total += v
		}
	}
	return total
}
