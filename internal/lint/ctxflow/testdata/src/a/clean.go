// Clean cases: contexts that flow.
package a

import "context"

// Propagate hands its ctx down; no detachment.
func Propagate(ctx context.Context, path string) (string, error) {
	return lower(ctx, path)
}

func lower(ctx context.Context, path string) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	return path, nil
}

// Scan polls cancellation at the top of the expensive nest.
func Scan(ctx context.Context, rows [][]int) (int, error) {
	total := 0
	for _, row := range rows {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		for _, v := range row {
			total += v
		}
	}
	return total, nil
}

// Flat single loops are not held to the polling rule.
func Sum(ctx context.Context, vs []int) int {
	_ = ctx
	total := 0
	for _, v := range vs {
		total += v
	}
	return total
}

// unexported helpers may sit below the surface without using ctx eagerly.
func stash(ctx context.Context) context.Context {
	return ctx
}
