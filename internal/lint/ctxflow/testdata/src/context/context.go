// Stub of context for ctxflow fixtures.
package context

type Context interface {
	Err() error
	Done() <-chan struct{}
}

type emptyCtx struct{}

func (emptyCtx) Err() error            { return nil }
func (emptyCtx) Done() <-chan struct{} { return nil }

func Background() Context { return emptyCtx{} }

func TODO() Context { return emptyCtx{} }
