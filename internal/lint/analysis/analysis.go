// Package analysis is a self-contained mirror of the core of
// golang.org/x/tools/go/analysis: the Analyzer / Pass / Diagnostic triple
// that modular static checkers are written against.
//
// The container this repository builds in has no module proxy access, so
// the real x/tools module cannot be fetched; rather than vendor ~26k lines
// of it (the toolchain's cmd/vendor copy drags in the generated stdlib
// manifest), this package re-implements the small, stable API surface the
// xviewlint analyzers need. The field and method names match x/tools
// exactly, so porting the analyzers onto the real module later is a matter
// of changing import paths.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one analysis function: its name, documentation,
// and the Run function applied to a single package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, suppression
	// directives (//lint:ignore xviewlint/<Name> reason) and -<Name>=0
	// style toggles. It must be a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation: a one-line summary, a blank
	// line, then detail.
	Doc string

	// Run applies the analyzer to a package and returns an arbitrary
	// result (nil for pure reporters). Diagnostics are delivered through
	// pass.Report.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// Validate reports duplicate or malformed analyzer registrations.
func Validate(analyzers []*Analyzer) error {
	seen := make(map[string]bool)
	for _, a := range analyzers {
		if a.Name == "" || a.Run == nil {
			return fmt.Errorf("analysis: analyzer %q is incomplete", a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("analysis: duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}

// A Pass provides one analyzer with the parsed, type-checked view of one
// package, and collects its diagnostics.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver installs it.
	Report func(Diagnostic)
}

// Reportf constructs a Diagnostic at pos from a format string.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

func (p *Pass) String() string {
	return fmt.Sprintf("%s@%s", p.Analyzer.Name, p.Pkg.Path())
}

// A Diagnostic is one finding: a position and a message, plus the name of
// the analyzer that produced it (stamped by the driver).
type Diagnostic struct {
	Pos     token.Pos
	End     token.Pos // optional
	Message string
}
