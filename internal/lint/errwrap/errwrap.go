// Package errwrap enforces the error contract the public API documents:
// sentinel errors (ErrSideEffect, ErrTxOpen, io.EOF, ...) are matched
// with errors.Is, concrete error types are extracted with errors.As, and
// wrapping goes through fmt.Errorf's %w verb so the chain survives.
//
// Three rules:
//
//  1. ==/!= against a package-level error variable (a sentinel) is
//     flagged — a wrapped error never compares equal. The one exemption
//     is the body of an `Is(error) bool` method, which is the documented
//     way to make errors.Is match a sentinel. switch-on-error cases are
//     treated like ==.
//  2. fmt.Errorf formatting an error value with any verb but %w is
//     flagged — %v flattens the chain and breaks errors.Is/As upstream.
//  3. Type assertions and type switches from the error interface to a
//     concrete error type are flagged in favor of errors.As.
package errwrap

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"rxview/internal/lint/analysis"
	"rxview/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc: "sentinel errors must be compared with errors.Is/errors.As and wrapped with %w\n\n" +
		"Flags ==/!= against package-level error variables, fmt.Errorf verbs other " +
		"than %w applied to error values, and type assertions from error to a " +
		"concrete error type.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			// The body of an Is(error) bool method is the documented way
			// to teach errors.Is about a sentinel; == is the point there.
			exempt := false
			if fd, ok := decl.(*ast.FuncDecl); ok && isIsMethod(info, fd) {
				exempt = true
			}
			checkDecl(pass, decl, exempt)
		}
	}
	return nil, nil
}

func checkDecl(pass *analysis.Pass, decl ast.Decl, exempt bool) {
	info := pass.TypesInfo
	ast.Inspect(decl, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if exempt {
				return true
			}
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			for _, side := range []ast.Expr{n.X, n.Y} {
				if name, ok := sentinel(info, side); ok {
					pass.Reportf(n.OpPos, "comparing error with %s %s: use errors.Is (a wrapped error never compares equal)", n.Op, name)
					break
				}
			}
		case *ast.SwitchStmt:
			if exempt || n.Tag == nil {
				return true
			}
			tv, ok := info.Types[n.Tag]
			if !ok || !lintutil.IsErrorInterface(tv.Type) {
				return true
			}
			for _, stmt := range n.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if name, ok := sentinel(info, e); ok {
						pass.Reportf(e.Pos(), "switching on error against %s: use errors.Is (a wrapped error never compares equal)", name)
					}
				}
			}
		case *ast.CallExpr:
			checkErrorf(pass, n)
		case *ast.TypeAssertExpr:
			if n.Type == nil {
				return true // handled via TypeSwitchStmt
			}
			checkAssert(pass, n.X, n.Type, n.Pos())
		case *ast.TypeSwitchStmt:
			var x ast.Expr
			switch s := n.Assign.(type) {
			case *ast.ExprStmt:
				x = s.X.(*ast.TypeAssertExpr).X
			case *ast.AssignStmt:
				x = s.Rhs[0].(*ast.TypeAssertExpr).X
			}
			tv, ok := info.Types[x]
			if !ok || !lintutil.IsErrorInterface(tv.Type) {
				return true
			}
			for _, stmt := range n.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, te := range cc.List {
					if t, ok := info.Types[te]; ok && t.IsType() &&
						!types.IsInterface(t.Type) && lintutil.IsErrorType(t.Type) {
						pass.Reportf(te.Pos(), "type-switching error to %s: use errors.As to see through wrapping", types.TypeString(t.Type, types.RelativeTo(pass.Pkg)))
					}
				}
			}
		}
		return true
	})
}

// sentinel reports whether e denotes a package-level variable of error
// type — the shape of every sentinel, including stdlib ones like io.EOF.
func sentinel(info *types.Info, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	if !lintutil.IsErrorType(v.Type()) {
		return "", false
	}
	return v.Name(), true
}

// isIsMethod recognizes the errors.Is support method:
// func (e *E) Is(target error) bool.
func isIsMethod(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || fd.Name.Name != "Is" {
		return false
	}
	sig, ok := info.Defs[fd.Name].Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	return lintutil.IsErrorInterface(sig.Params().At(0).Type()) &&
		types.Identical(sig.Results().At(0).Type(), types.Typ[types.Bool])
}

// checkErrorf flags fmt.Errorf verbs other than %w applied to error
// values.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	if !lintutil.IsPkgFunc(info, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := lintutilUnquote(lit.Value)
	if err != nil {
		return
	}
	verbs, ok := lintutil.FormatVerbs(format)
	if !ok || len(verbs) > len(call.Args)-1 {
		return // indexed args or arity mismatch: leave it to vet's printf
	}
	for _, v := range verbs {
		arg := call.Args[1+v.ArgPos]
		tv, ok := info.Types[arg]
		if !ok || !lintutil.IsErrorType(tv.Type) {
			continue
		}
		if v.Letter == 'w' || v.Letter == 'T' {
			continue // %T prints the type, it does not flatten the chain
		}
		pass.Reportf(arg.Pos(), "error formatted with %%%c: use %%w so errors.Is/As see through the wrap", v.Letter)
	}
}

func checkAssert(pass *analysis.Pass, x, typ ast.Expr, pos token.Pos) {
	info := pass.TypesInfo
	tvX, ok := info.Types[x]
	if !ok || !lintutil.IsErrorInterface(tvX.Type) {
		return
	}
	tvT, ok := info.Types[typ]
	if !ok || types.IsInterface(tvT.Type) || !lintutil.IsErrorType(tvT.Type) {
		return
	}
	pass.Reportf(pos, "type assertion error.(%s): use errors.As to see through wrapping", types.TypeString(tvT.Type, types.RelativeTo(pass.Pkg)))
}

func lintutilUnquote(s string) (string, error) {
	if len(s) >= 2 && s[0] == '`' {
		return s[1 : len(s)-1], nil
	}
	return strconv.Unquote(s)
}
