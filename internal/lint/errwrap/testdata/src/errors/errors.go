// Stub of the errors package for errwrap fixtures.
package errors

type errorString struct{ s string }

func (e *errorString) Error() string { return e.s }

func New(text string) error { return &errorString{text} }

func Is(err, target error) bool { return false }

func As(err error, target any) bool { return false }
