// Stub of io for errwrap fixtures: EOF is the canonical stdlib sentinel.
package io

import "errors"

var EOF = errors.New("EOF")
