// Stub of fmt for errwrap fixtures.
package fmt

type wrapped struct{ msg string }

func (w *wrapped) Error() string { return w.msg }

func Errorf(format string, a ...any) error { return &wrapped{format} }
