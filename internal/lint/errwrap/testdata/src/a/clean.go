// Clean cases: the documented ways to match, extract and wrap errors.
package a

import (
	"errors"
	"fmt"
	"io"
)

type groupError struct{ n int }

func (e *groupError) Error() string { return "group" }

// Is teaches errors.Is to match the sentinel; == is the point here.
func (e *groupError) Is(target error) bool {
	return target == ErrTxDone
}

func matchWithIs(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, ErrTxDone)
}

func extractWithAs(err error) int {
	var pe *parseError
	if errors.As(err, &pe) {
		return pe.off
	}
	return -1
}

func wrapProperly(err error) error {
	return fmt.Errorf("a: stage 2: %w", err)
}

func describeType(err error) error {
	return fmt.Errorf("a: unexpected %T", err) // %T prints the type, no chain to break
}

func nilChecksAreFine(err error) bool {
	return err == nil || err != nil
}

func compareNonErrors(a, b int) bool {
	return a == b
}
