// Seeded violations: every way of breaking the error contract.
package a

import (
	"errors"
	"fmt"
	"io"
)

var ErrTxDone = errors.New("a: tx done")

type parseError struct{ off int }

func (e *parseError) Error() string { return "parse error" }

func compareLocal(err error) bool {
	return err == ErrTxDone // want "errors.Is"
}

func compareStdlib(err error) bool {
	return err != io.EOF // want "errors.Is"
}

func switchSentinel(err error) string {
	switch err {
	case ErrTxDone: // want "errors.Is"
		return "done"
	case io.EOF: // want "errors.Is"
		return "eof"
	}
	return ""
}

func flattenWrap(err error) error {
	return fmt.Errorf("a: operation failed: %v", err) // want "use %w"
}

func flattenString(err error) error {
	return fmt.Errorf("a: %d failed: %s", 7, err) // want "use %w"
}

func assertConcrete(err error) int {
	if pe, ok := err.(*parseError); ok { // want "errors.As"
		return pe.off
	}
	return -1
}

func typeSwitchConcrete(err error) int {
	switch e := err.(type) {
	case *parseError: // want "errors.As"
		return e.off
	default:
		return -1
	}
}
