package errwrap_test

import (
	"testing"

	"rxview/internal/lint/errwrap"
	"rxview/internal/lint/linttest"
)

func TestErrWrap(t *testing.T) {
	linttest.Run(t, "testdata", errwrap.Analyzer, "a")
}
