package internalboundary_test

import (
	"testing"

	"rxview/internal/lint/internalboundary"
	"rxview/internal/lint/linttest"
)

func TestInternalBoundary(t *testing.T) {
	linttest.Run(t, "testdata", internalboundary.Analyzer, "rxview", "rxview/server")
}
