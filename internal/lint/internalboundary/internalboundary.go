// Package internalboundary enforces the repository's API boundary:
// nothing outside internal/ may import rxview/internal/... except the
// sanctioned gateways — the root rxview package, the rxview/obs telemetry
// facade (pure aliases over internal/obs), and cmd/xviewlint itself (the
// vettool must link the analyzer suite, which lives behind the boundary
// on purpose — it reasons about implementation invariants, not public
// API).
//
// The rule predates this analyzer as a hand-written AST walk in
// boundary_test.go; the analyzer is the single source of truth now, and
// the test invokes CheckTree so `go test` and `go vet -vettool` enforce
// the same predicate.
package internalboundary

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"

	"rxview/internal/lint/analysis"
)

const internalPrefix = "rxview/internal/"

// gatewayImporters lists the package paths allowed to import
// rxview/internal/... from outside internal/ itself.
var gatewayImporters = map[string]bool{
	"rxview":               true, // the public API gateway (tests in package rxview included)
	"rxview/cmd/xviewlint": true, // links the analyzer suite
	"rxview/obs":           true, // telemetry gateway: aliases internal/obs for server and cmd tools
}

var Analyzer = &analysis.Analyzer{
	Name: "internalboundary",
	Doc: "only the sanctioned gateways (rxview, rxview/obs, cmd/xviewlint) may import rxview/internal/...\n\n" +
		"The root package is the single supported gateway to the implementation " +
		"(rxview/obs aliases the telemetry core, nothing more); everything else — " +
		"cmd tools, server, examples, external test packages — " +
		"must go through the public API.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	path := pass.Pkg.Path()
	for _, f := range pass.Files {
		checkFile(path, f, func(pos token.Pos, imp string) {
			pass.Reportf(pos, "package %s imports %s: only the root rxview package may import internal packages", path, imp)
		})
	}
	return nil, nil
}

// allowed reports whether a package at path may import rxview/internal/...
func allowed(path string) bool {
	return gatewayImporters[path] ||
		path == "rxview/internal" || strings.HasPrefix(path, internalPrefix)
}

// checkFile applies the boundary predicate to one file. It is the shared
// core of the analyzer and CheckTree.
func checkFile(pkgPath string, f *ast.File, report func(pos token.Pos, imp string)) {
	if allowed(pkgPath) {
		return
	}
	for _, imp := range f.Imports {
		val, _ := strconv.Unquote(imp.Path.Value)
		if strings.HasPrefix(val, internalPrefix) {
			report(imp.Path.Pos(), val)
		}
	}
}

// Violation is one boundary breach found by CheckTree.
type Violation struct {
	Pos     token.Position
	PkgPath string
	Import  string
}

// CheckTree walks a repository tree rooted at the module directory and
// applies the boundary rule to every non-internal Go file, test files
// included — the imports-only parse the old boundary_test.go did, now
// delegating the decision to the analyzer's predicate. internal/ and
// testdata/ subtrees are skipped: the compiler already polices the former
// and fixtures deliberately violate rules in the latter.
func CheckTree(root string) ([]Violation, error) {
	var out []Violation
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "internal" || name == "testdata" ||
				(strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if perr != nil {
			return perr
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			return rerr
		}
		pkgPath := "rxview"
		if dir := filepath.ToSlash(filepath.Dir(rel)); dir != "." {
			pkgPath = "rxview/" + dir
		} else if f.Name.Name != "rxview" {
			// Root-directory files in package rxview_test (or any other
			// package clause) are not the gateway package.
			pkgPath = "rxview_test"
		}
		checkFile(pkgPath, f, func(pos token.Pos, imp string) {
			out = append(out, Violation{Pos: fset.Position(pos), PkgPath: pkgPath, Import: imp})
		})
		return nil
	})
	return out, err
}
