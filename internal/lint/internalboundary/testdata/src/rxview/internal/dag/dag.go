// Stub internal package for internalboundary fixtures.
package dag

type NodeID int32
