// The root package is the gateway: importing internal here is the point.
package rxview

import "rxview/internal/dag"

type Snapshot struct{ Root dag.NodeID }
