// Seeded violation: a non-gateway package reaching behind the boundary.
package server

import (
	"rxview"
	"rxview/internal/dag" // want "only the root rxview package"
)

type Engine struct {
	Root dag.NodeID
	Snap rxview.Snapshot
}
