package driver

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"rxview/internal/lint/analysis"
	"rxview/internal/lint/loader"
)

// flagCalls reports every call expression; the test source controls where
// diagnostics land relative to the suppression directives.
var flagCalls = &analysis.Analyzer{
	Name: "flagcalls",
	Doc:  "test analyzer: reports every call",
	Run: func(pass *analysis.Pass) (any, error) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok {
					pass.Reportf(c.Pos(), "call site")
				}
				return true
			})
		}
		return nil, nil
	},
}

const src = `package p

func sink() {}

func a() {
	sink() // no suppression: finding survives
}

func b() {
	//lint:ignore xviewlint/flagcalls exercised by TestSuppression
	sink()
}

func c() {
	sink() //lint:ignore flagcalls same line, bare analyzer name
}

func d() {
	//lint:ignore flagcalls
	sink()
}

func e() {
	//lint:ignore othercheck justified but for a different analyzer
	sink()
}
`

func run(t *testing.T, src string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run([]*loader.Package{{
		ImportPath: "p",
		Name:       "p",
		Fset:       fset,
		Files:      []*ast.File{f},
		Pkg:        pkg,
		TypesInfo:  info,
	}}, []*analysis.Analyzer{flagCalls})
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

func TestSuppression(t *testing.T) {
	findings := run(t, src)
	var got []string
	for _, f := range findings {
		got = append(got, f.Analyzer+"@"+f.Pos.String()+": "+f.Message)
	}
	// Surviving findings: the unsuppressed call in a (line 6), the call
	// under a justification-less directive in d (line 20), the directive
	// itself as a "suppression" finding (line 19), and the call in e whose
	// directive names a different analyzer (line 25).
	want := map[int]string{
		6:  "flagcalls",
		19: "suppression",
		20: "flagcalls",
		25: "flagcalls",
	}
	if len(findings) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%s", len(findings), len(want), strings.Join(got, "\n"))
	}
	for _, f := range findings {
		if want[f.Pos.Line] != f.Analyzer {
			t.Errorf("unexpected finding %s@%s: %s", f.Analyzer, f.Pos, f.Message)
		}
	}
}
