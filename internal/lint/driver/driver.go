// Package driver applies the xviewlint analyzers to loaded packages and
// post-processes their diagnostics: stamping analyzer names, applying
// //lint:ignore suppressions, and producing stable, sorted findings for
// the CLI and tests.
package driver

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"rxview/internal/lint/analysis"
	"rxview/internal/lint/loader"
)

// Finding is one reported diagnostic, resolved to a position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// suppression is one parsed //lint:ignore directive.
type suppression struct {
	analyzers     []string // analyzer names, or ["*"]
	justification string
	used          bool
	pos           token.Position
}

// ignorePrefix is the directive grammar: //lint:ignore xviewlint/<name>[,<name>...] <justification>
// placed on the flagged line or the line immediately above it. The
// justification is mandatory; a bare directive is itself a finding.
const ignorePrefix = "lint:ignore "

func parseSuppressions(fset *token.FileSet, files []*ast.File) map[string]map[int]*suppression {
	byFile := make(map[string]map[int]*suppression)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				which, justification, _ := strings.Cut(rest, " ")
				s := &suppression{
					justification: strings.TrimSpace(justification),
					pos:           fset.Position(c.Pos()),
				}
				for _, name := range strings.Split(which, ",") {
					name = strings.TrimPrefix(name, "xviewlint/")
					if name != "" {
						s.analyzers = append(s.analyzers, name)
					}
				}
				m := byFile[s.pos.Filename]
				if m == nil {
					m = make(map[int]*suppression)
					byFile[s.pos.Filename] = m
				}
				m[s.pos.Line] = s
			}
		}
	}
	return byFile
}

func (s *suppression) covers(analyzer string) bool {
	for _, a := range s.analyzers {
		if a == analyzer || a == "*" {
			return true
		}
	}
	return false
}

// Run applies every analyzer to every package and returns the surviving
// findings, sorted by position. Suppressed diagnostics are dropped;
// malformed suppressions (no justification) and unused ones are reported
// as findings of the pseudo-analyzer "suppression".
func Run(pkgs []*loader.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	if err := analysis.Validate(analyzers); err != nil {
		return nil, err
	}
	var findings []Finding
	for _, p := range pkgs {
		sups := parseSuppressions(p.Fset, p.Files)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      p.Fset,
				Files:     p.Files,
				Pkg:       p.Pkg,
				TypesInfo: p.TypesInfo,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := p.Fset.Position(d.Pos)
				if m := sups[pos.Filename]; m != nil {
					for _, line := range []int{pos.Line, pos.Line - 1} {
						if s := m[line]; s != nil && s.covers(a.Name) && s.justification != "" {
							s.used = true
							return
						}
					}
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("driver: %s on %s: %w", a.Name, p.ImportPath, err)
			}
		}
		for _, m := range sups {
			for _, s := range m {
				if s.justification == "" {
					findings = append(findings, Finding{
						Analyzer: "suppression",
						Pos:      s.pos,
						Message:  "lint:ignore directive requires a justification after the analyzer name",
					})
				}
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return findings, nil
}
