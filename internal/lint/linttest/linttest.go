// Package linttest runs one analyzer over GOPATH-style fixture trees and
// checks its diagnostics against // want comments — the analysistest
// workflow of x/tools, reimplemented over the local analysis framework.
//
// Fixtures live under <testdata>/src/<importpath>/*.go. Imports resolve
// only inside the fixture tree, so fixtures that need "context", "fmt" or
// "rxview/internal/dag" declare minimal stubs at those exact paths: the
// analyzers match packages by import path and symbol name, so a stub is
// indistinguishable from the real thing, and the fixtures stay hermetic
// (no network, no dependence on the surrounding repository state).
//
// Expectation syntax, per offending line:
//
//	bad() // want "regexp" "second regexp"
//
// Every diagnostic must match a want on its line and every want must be
// matched by at least one diagnostic.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"rxview/internal/lint/analysis"
)

// Run loads each fixture package and applies the analyzer, reporting
// mismatches through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	ld := &fixtureLoader{
		root:  testdata,
		fset:  token.NewFileSet(),
		cache: make(map[string]*fixturePkg),
	}
	for _, pat := range patterns {
		pkg, err := ld.load(pat)
		if err != nil {
			t.Errorf("loading fixture %s: %v", pat, err)
			continue
		}
		check(t, ld.fset, pkg, a)
	}
}

type fixturePkg struct {
	path  string
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

type fixtureLoader struct {
	root  string
	fset  *token.FileSet
	cache map[string]*fixturePkg
}

func (l *fixtureLoader) load(path string) (*fixturePkg, error) {
	if p, ok := l.cache[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
		return p, nil
	}
	l.cache[path] = nil // cycle guard
	dir := filepath.Join(l.root, "src", filepath.FromSlash(path))
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	p := &fixturePkg{path: path}
	for _, de := range names {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, de.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		p.files = append(p.files, f)
	}
	if len(p.files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	p.info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer: importerFunc(func(ipath string) (*types.Package, error) {
			dep, err := l.load(ipath)
			if err != nil {
				return nil, fmt.Errorf("import %q: %w", ipath, err)
			}
			return dep.pkg, nil
		}),
		Sizes: types.SizesFor("gc", runtime.GOARCH),
	}
	p.pkg, err = conf.Check(path, l.fset, p.files, p.info)
	if err != nil {
		return nil, err
	}
	l.cache[path] = p
	return p, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

type wantKey struct {
	file string
	line int
}

func check(t *testing.T, fset *token.FileSet, p *fixturePkg, a *analysis.Analyzer) {
	t.Helper()
	wants := make(map[wantKey][]*regexp.Regexp)
	for _, f := range p.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				res, err := parseWants(strings.TrimPrefix(text, "want "))
				if err != nil {
					t.Errorf("%s: bad want comment: %v", pos, err)
					continue
				}
				key := wantKey{pos.Filename, pos.Line}
				wants[key] = append(wants[key], res...)
			}
		}
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     p.files,
		Pkg:       p.pkg,
		TypesInfo: p.info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Errorf("%s on %s: %v", a.Name, p.path, err)
		return
	}

	matched := make(map[*regexp.Regexp]bool)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := wantKey{pos.Filename, pos.Line}
		ok := false
		for _, re := range wants[key] {
			if re.MatchString(d.Message) {
				matched[re] = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s: unexpected %s diagnostic: %s", pos, a.Name, d.Message)
		}
	}
	var missing []string
	for key, res := range wants {
		for _, re := range res {
			if !matched[re] {
				missing = append(missing, fmt.Sprintf("%s:%d: no %s diagnostic matching %q",
					key.file, key.line, a.Name, re))
			}
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Error(m)
	}
}

// parseWants splits `"re1" "re2"` (double-quoted or backquoted Go string
// literals) into compiled regexps.
func parseWants(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	s = strings.TrimSpace(s)
	for s != "" {
		var lit string
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated string in %q", s)
			}
			var err error
			lit, err = strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated raw string in %q", s)
			}
			lit = s[1 : end+1]
			s = strings.TrimSpace(s[end+2:])
		default:
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, err
		}
		out = append(out, re)
	}
	return out, nil
}
