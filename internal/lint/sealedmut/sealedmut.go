// Package sealedmut enforces the immutability contract of sealed
// versions. A dag.Version, reach.TopoVersion, core.Snapshot or
// rxview.Snapshot is an immutable epoch artifact shared by concurrent
// readers without locks; mutating one — directly, through a pointer, or
// through a slice returned by an aliasing accessor — is a data race
// against every in-flight query.
//
// Flagged, anywhere in the module:
//
//   - assignments (including op-assign and ++/--) whose destination is
//     reached through a value of a sealed type;
//   - element stores into slices returned by the aliasing accessors
//     (Children, Parents, Attr, Nodes) of a sealed type or of the
//     dag.Reader / reach.Order interfaces, and copy() with such a slice
//     as destination;
//   - the same stores through the read-only interfaces themselves.
//
// Not flagged: writes to a sealed value freshly constructed in the same
// function (a composite literal or new()) — that is how Seal() builds
// the next version before publishing it.
package sealedmut

import (
	"go/ast"
	"go/types"

	"rxview/internal/lint/analysis"
	"rxview/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "sealedmut",
	Doc: "sealed version values (dag.Version, reach.TopoVersion, Snapshot) and " +
		"read-only views (dag.Reader, reach.Order, aliasing accessor results) must not be mutated",
	Run: run,
}

// sealed value types: mutating one after Seal() races with readers.
var sealedTypes = [...][2]string{
	{"rxview/internal/dag", "Version"},
	{"rxview/internal/reach", "TopoVersion"},
	{"rxview/internal/core", "Snapshot"},
	{"rxview", "Snapshot"},
}

// read-only interfaces: writes through them are never legitimate.
var sealedIfaces = [...][2]string{
	{"rxview/internal/dag", "Reader"},
	{"rxview/internal/reach", "Order"},
}

// aliasMethods return memory shared with the sealed value; their results
// are documented "callers must not mutate".
var aliasMethods = map[string]bool{
	"Children": true,
	"Parents":  true,
	"Attr":     true,
	"Nodes":    true,
}

func isSealed(t types.Type) bool {
	for _, s := range sealedTypes {
		if lintutil.IsNamed(t, s[0], s[1]) {
			return true
		}
	}
	for _, s := range sealedIfaces {
		if lintutil.IsNamed(t, s[0], s[1]) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fresh := freshLocals(pass.TypesInfo, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						checkDest(pass, lhs, fresh)
					}
				case *ast.IncDecStmt:
					checkDest(pass, n.X, fresh)
				case *ast.CallExpr:
					// copy(dst, src) mutates dst exactly like dst[i] = v.
					if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "copy" &&
						pass.TypesInfo.Uses[id] == types.Universe.Lookup("copy") && len(n.Args) == 2 {
						checkDest(pass, n.Args[0], fresh)
					}
				}
				return true
			})
		}
	}
	return nil, nil
}

// freshLocals collects local variables bound to a sealed value constructed
// in this function (composite literal, &composite, or new(T)). Writing
// through those is construction, not mutation.
func freshLocals(info *types.Info, body ast.Node) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if constructsSealed(info, as.Rhs[i]) {
				if obj := info.Defs[id]; obj != nil {
					fresh[obj] = true
				} else if obj := info.Uses[id]; obj != nil {
					fresh[obj] = true
				}
			}
		}
		return true
	})
	return fresh
}

func constructsSealed(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.UnaryExpr:
		return constructsSealed(info, e.X)
	case *ast.CompositeLit:
		tv, ok := info.Types[e]
		return ok && isSealed(tv.Type)
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "new" &&
			info.Uses[id] == types.Universe.Lookup("new") && len(e.Args) == 1 {
			tv, ok := info.Types[e.Args[0]]
			return ok && isSealed(tv.Type)
		}
	}
	return false
}

// checkDest walks a store destination toward its root. The store is a
// violation if the access path passes through a sealed-typed expression
// or through an aliasing accessor call, unless the path's root is a
// fresh local under construction.
func checkDest(pass *analysis.Pass, dest ast.Expr, fresh map[types.Object]bool) {
	var sealedAt ast.Expr // deepest sealed expression on the path
	var aliasCall *ast.CallExpr
	e := ast.Unparen(dest)
walk:
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = ast.Unparen(x.X)
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
		case *ast.SliceExpr:
			e = ast.Unparen(x.X)
		case *ast.SelectorExpr:
			// Selecting a field of a sealed value: the base is the
			// sealed expression the store goes through.
			if sealedExpr(pass.TypesInfo, x.X) {
				sealedAt = x.X
			}
			e = ast.Unparen(x.X)
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok &&
				aliasMethods[sel.Sel.Name] && sealedExpr(pass.TypesInfo, sel.X) {
				aliasCall = x
			}
			break walk // a call result has no further addressable root
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[e.(*ast.Ident)]; obj != nil && fresh[obj] {
				return // construction of a fresh value
			}
			if dest != e && sealedExpr(pass.TypesInfo, e) {
				// e.g. *p where p is *Version: the root itself is sealed.
				sealedAt = e
			}
			break walk
		default:
			break walk
		}
	}
	switch {
	case aliasCall != nil:
		sel := ast.Unparen(aliasCall.Fun).(*ast.SelectorExpr)
		pass.Reportf(dest.Pos(), "mutating the result of %s.%s: aliasing accessor results are shared with the sealed version",
			typeName(pass, sel.X), sel.Sel.Name)
	case sealedAt != nil:
		pass.Reportf(dest.Pos(), "mutating sealed %s value: versions are immutable after Seal and shared by concurrent readers",
			typeName(pass, sealedAt))
	}
}

// sealedExpr reports whether e's type (possibly behind a pointer) is a
// sealed type or read-only interface.
func sealedExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	return ok && isSealed(tv.Type)
}

func typeName(pass *analysis.Pass, e ast.Expr) string {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	if !ok {
		return "sealed"
	}
	return types.TypeString(lintutil.Deref(tv.Type), types.RelativeTo(pass.Pkg))
}
