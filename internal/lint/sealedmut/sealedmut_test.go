package sealedmut_test

import (
	"testing"

	"rxview/internal/lint/linttest"
	"rxview/internal/lint/sealedmut"
)

func TestSealedMut(t *testing.T) {
	linttest.Run(t, "testdata", sealedmut.Analyzer, "a")
}
