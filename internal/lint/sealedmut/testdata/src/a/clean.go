// Clean cases: reads, rebinding, and construction of fresh versions.
package a

import (
	"rxview"
	"rxview/internal/dag"
)

func read(v *dag.Version) dag.NodeID {
	return v.Children(v.Root)[0]
}

func rebind(v *dag.Version, w *dag.Version) *dag.Version {
	v = w // reassigning the variable is not a mutation of the value
	return v
}

// seal builds the next version: writes to a freshly constructed value are
// construction, not mutation.
func seal(ids []dag.NodeID) *dag.Version {
	v := &dag.Version{}
	v.Blocks = make([]dag.NodeID, len(ids))
	copy(v.Blocks, ids)
	v.Root = v.Blocks[0]
	return v
}

func sealSnapshot(gen uint64) *rxview.Snapshot {
	s := new(rxview.Snapshot)
	s.Gen = gen
	return s
}

func copyOut(v *dag.Version, dst []dag.NodeID) {
	copy(dst, v.Children(0)) // reading through the accessor is fine
}
