// Seeded violations: every way of mutating a sealed version.
package a

import (
	"rxview"
	"rxview/internal/dag"
	"rxview/internal/reach"
)

func fieldStore(v *dag.Version) {
	v.Root = 7 // want "mutating sealed"
}

func elementStore(v *dag.Version) {
	v.Blocks[0] = 7 // want "mutating sealed"
}

func throughPointer(v *dag.Version) {
	*v = dag.Version{} // want "mutating sealed"
}

func aliasedRow(v *dag.Version) {
	v.Children(3)[0] = 7 // want "aliasing accessor"
}

func throughReader(r dag.Reader) {
	r.Parents(3)[0] = 7 // want "aliasing accessor"
}

func throughOrder(o reach.Order) {
	o.Nodes()[0] = 7 // want "aliasing accessor"
}

func copyInto(tv *reach.TopoVersion, src []dag.NodeID) {
	copy(tv.Ids, src) // want "mutating sealed"
}

func snapshotStore(s *rxview.Snapshot) {
	s.Gen++ // want "mutating sealed"
}

func incDec(v *dag.Version) {
	v.Blocks[1]++ // want "mutating sealed"
}
