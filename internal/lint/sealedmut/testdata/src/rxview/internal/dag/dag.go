// Stub of rxview/internal/dag for sealedmut fixtures: the analyzer keys
// on import path and type name, so exported stand-in fields are enough.
package dag

type NodeID int32

type Version struct {
	Blocks []NodeID
	Root   NodeID
}

func (v *Version) Children(id NodeID) []NodeID { return nil }
func (v *Version) Parents(id NodeID) []NodeID  { return nil }
func (v *Version) Nodes() []NodeID             { return nil }

type Reader interface {
	Children(id NodeID) []NodeID
	Parents(id NodeID) []NodeID
	Nodes() []NodeID
}
