// Stub of rxview/internal/reach for sealedmut fixtures.
package reach

import "rxview/internal/dag"

type TopoVersion struct {
	Ids []dag.NodeID
}

func (tv *TopoVersion) Nodes() []dag.NodeID { return tv.Ids }
func (tv *TopoVersion) Len() int            { return len(tv.Ids) }

type Order interface {
	Nodes() []dag.NodeID
	Len() int
}
