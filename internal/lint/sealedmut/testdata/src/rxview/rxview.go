// Stub of the rxview root package for sealedmut fixtures.
package rxview

type Snapshot struct {
	Gen  uint64
	Rows []int
}

func (s *Snapshot) Generation() uint64 { return s.Gen }
