// Package unitchecker makes cmd/xviewlint usable as a vettool: it
// implements the command-line protocol "go vet -vettool=..." drives —
// -V=full for build caching, -flags for flag discovery, and a JSON
// unit.cfg describing one compilation unit with compiler-produced export
// data for its imports. It mirrors x/tools' unitchecker over the local
// analysis framework (the xviewlint analyzers carry no facts, so the
// .vetx exchange degenerates to empty files).
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"rxview/internal/lint/analysis"
	"rxview/internal/lint/driver"
	"rxview/internal/lint/loader"
)

// Config is the JSON compilation-unit description "go vet" hands the
// tool; field names are fixed by the protocol.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main implements the vettool protocol and exits.
func Main(progname string, analyzers []*analysis.Analyzer, args []string) {
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")
	if err := analysis.Validate(analyzers); err != nil {
		log.Fatal(err)
	}
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			printVersion()
			os.Exit(0)
		case arg == "-V" || strings.HasPrefix(arg, "-V="):
			log.Fatalf("unsupported flag value: %s (use -V=full)", arg)
		case arg == "-flags" || arg == "--flags":
			// No analyzer flags: tell go vet so with an empty list.
			fmt.Println("[]")
			os.Exit(0)
		}
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		log.Fatalf(`invoking the vettool directly is unsupported; use "go vet -vettool="`)
	}
	os.Exit(Run(args[0], analyzers, os.Stderr))
}

// printVersion emits the -V=full line the go command hashes into its
// build cache key: executable path, "version", and a content digest.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel buildID=%x\n", exe, h.Sum(nil))
}

// Run analyzes the unit described by the cfg file and returns the
// process exit code: 0 clean, 1 findings or soft failure.
func Run(configFile string, analyzers []*analysis.Analyzer, w io.Writer) int {
	data, err := os.ReadFile(configFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode JSON config file %s: %v", configFile, err)
	}
	if len(cfg.GoFiles) == 0 {
		log.Fatalf("package has no files: %s", cfg.ImportPath)
	}

	// The protocol requires a facts file for dependent units even though
	// the xviewlint analyzers produce none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0666); err != nil {
			log.Fatal(err)
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	pkg, files, info, err := typeCheck(fset, cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		log.Fatal(err)
	}

	findings, err := driver.Run([]*loader.Package{{
		ImportPath: cfg.ImportPath,
		Raw:        cfg.ID,
		Dir:        cfg.Dir,
		Name:       pkg.Name(),
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
	}}, analyzers)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range findings {
		fmt.Fprintf(w, "%s: %s\n", f.Pos, f.Message)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

func typeCheck(fset *token.FileSet, cfg *Config) (*types.Package, []*ast.File, *types.Info, error) {
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a resolved package path, not a source import path.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath] // resolve vendoring
		if !ok {
			path = importPath
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("type-checking %s: %w", filepath.Base(cfg.ImportPath), err)
	}
	return pkg, files, info, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
