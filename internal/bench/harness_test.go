package bench

import (
	"testing"

	"rxview/internal/workload"
)

// Smoke tests: every experiment runner completes at a small scale and
// produces sane shapes. The real numbers come from bench_test.go /
// cmd/benchrunner.

func TestRunWorkloadAllClasses(t *testing.T) {
	for _, class := range []workload.Class{workload.W1, workload.W2, workload.W3} {
		for _, deletes := range []bool{true, false} {
			res, err := RunWorkload(150, class, deletes, 2, 7)
			if err != nil {
				t.Fatalf("%v deletes=%v: %v", class, deletes, err)
			}
			if res.Applied == 0 {
				t.Errorf("%v deletes=%v: nothing applied", class, deletes)
			}
			if res.Phases.Total() <= 0 {
				t.Errorf("%v: no time recorded", class)
			}
		}
	}
}

func TestDatasetStats(t *testing.T) {
	st, took, err := DatasetStats(200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Nodes == 0 || took <= 0 {
		t.Errorf("stats = %+v took %v", st, took)
	}
}

func TestVarySelection(t *testing.T) {
	out, err := VarySelection(200, []int{1, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("points = %d", len(out))
	}
	for _, p := range out {
		if p.EP == 0 {
			t.Errorf("point %d: no edges measured", p.Targets)
		}
	}
}

func TestVarySubtree(t *testing.T) {
	out, err := VarySubtree(200, []int{0, 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("points = %d", len(out))
	}
	if out[1].STEdges <= out[0].STEdges {
		t.Errorf("subtree size did not grow: %d then %d", out[0].STEdges, out[1].STEdges)
	}
}

func TestTable1(t *testing.T) {
	res, err := Table1(200, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.RecomputeM <= 0 || res.RecomputeL <= 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestReachAblation(t *testing.T) {
	fig4, naive, pairs, err := ReachAblation(200, 5)
	if err != nil {
		t.Fatal(err)
	}
	if pairs == 0 || fig4 <= 0 || naive <= 0 {
		t.Errorf("fig4=%v naive=%v pairs=%d", fig4, naive, pairs)
	}
}

func TestDAGvsTree(t *testing.T) {
	dagT, treeT, dagN, treeN, err := DAGvsTree(200, 6)
	if err != nil {
		t.Fatal(err)
	}
	if treeN <= dagN {
		t.Errorf("tree %d should exceed DAG %d", treeN, dagN)
	}
	if dagT <= 0 || treeT <= 0 {
		t.Error("no time recorded")
	}
}

func TestMinDeleteAblation(t *testing.T) {
	gT, eT, gN, eN, err := MinDeleteAblation(200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if eN > gN {
		t.Errorf("exact %d worse than greedy %d", eN, gN)
	}
	if gT <= 0 || eT <= 0 {
		t.Error("no time recorded")
	}
}
