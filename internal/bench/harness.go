// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§5): the dataset statistics of
// Fig.10(b), the update-performance series of Fig.11(a)–(h), the
// incremental-vs-recomputation comparison of Table 1, and the ablations.
// The root package re-exports it (experiments.go); bench_test.go
// (testing.B entry points) and cmd/benchrunner (paper-style tables) go
// through those re-exports.
package bench

import (
	"fmt"
	"sort"
	"time"

	"rxview/internal/core"
	"rxview/internal/dag"
	"rxview/internal/reach"
	"rxview/internal/relational"
	"rxview/internal/viewupdate"
	"rxview/internal/workload"
	"rxview/internal/xpath"
)

// Phases accumulates the per-phase times of Fig.11: (a) XPath evaluation,
// (b) translation + execution, (c) maintenance.
type Phases struct {
	Eval     time.Duration
	XToDV    time.Duration
	DVToDR   time.Duration
	Apply    time.Duration
	Maintain time.Duration
}

func (p *Phases) add(t core.Timings) {
	p.Eval += t.Eval
	p.XToDV += t.XToDV
	p.DVToDR += t.DVToDR
	p.Apply += t.Apply
	p.Maintain += t.Maintain
}

// Translate returns the (b) component.
func (p Phases) Translate() time.Duration { return p.XToDV + p.DVToDR + p.Apply }

// Total sums everything.
func (p Phases) Total() time.Duration { return p.Eval + p.Translate() + p.Maintain }

// RunResult is the outcome of one workload run.
type RunResult struct {
	Size    int
	Class   workload.Class
	Ops     int
	Applied int
	NoOps   int
	Phases  Phases
}

// NewSystem generates the synthetic dataset at size nc and opens it.
func NewSystem(nc int, seed int64) (*workload.Synthetic, *core.System, error) {
	syn, err := workload.NewSynthetic(workload.SyntheticConfig{NC: nc, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	sys, err := core.Open(syn.ATG, syn.DB, core.Options{ForceSideEffects: true})
	if err != nil {
		return nil, nil, err
	}
	return syn, sys, nil
}

// RunWorkload executes a delete or insert workload of the given class on a
// fresh system and accumulates the phase breakdown (Fig.11(a)–(f)).
func RunWorkload(nc int, class workload.Class, deletes bool, nops int, seed int64) (RunResult, error) {
	syn, sys, err := NewSystem(nc, seed)
	if err != nil {
		return RunResult{}, err
	}
	var ops []workload.Op
	if deletes {
		ops = syn.DeleteWorkload(class, nops, seed+100)
	} else {
		ops = syn.InsertWorkload(class, nops, seed+200)
	}
	res := RunResult{Size: nc, Class: class, Ops: len(ops)}
	for _, op := range ops {
		rep, err := sys.Execute(op.Stmt)
		if err != nil {
			return res, fmt.Errorf("%s: %w", op.Stmt, err)
		}
		if rep.Applied {
			res.Applied++
		} else {
			res.NoOps++
		}
		res.Phases.add(rep.Timings)
	}
	return res, nil
}

// DatasetStats generates the dataset and reports the Fig.10(b) statistics
// plus the generation and publication wall time.
func DatasetStats(nc int, seed int64) (core.Stats, time.Duration, error) {
	t0 := time.Now()
	_, sys, err := NewSystem(nc, seed)
	if err != nil {
		return core.Stats{}, 0, err
	}
	return sys.Stats(), time.Since(t0), nil
}

// SelResult is one point of the Fig.11(g) sweep.
type SelResult struct {
	Targets int // requested |r[[p]]| / |Ep(r)| scale
	RP, EP  int // measured
	Del     Phases
	Ins     Phases
}

// VarySelection reproduces Fig.11(g): fix |C| and vary the number of nodes
// selected by the update path (and hence |r[[p]]| for insertions and
// |Ep(r)| for deletions), keeping the subtree ST(A,t) a single fresh C.
// Each point targets exactly `target` published C nodes through a
// disjunctive key filter //C[key=k1 or key=k2 or ...].
func VarySelection(nc int, targets []int, seed int64) ([]SelResult, error) {
	syn, sys, err := NewSystem(nc, seed)
	if err != nil {
		return nil, err
	}
	// Deepest-first published keys make good targets (small subtrees).
	var keys []int64
	ids := sys.DAG.NodesOfType("C")
	for i := len(ids) - 1; i >= 0 && len(keys) < 256; i-- {
		keys = append(keys, sys.DAG.Attr(ids[i])[0].I)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] > keys[j] })

	pathFor := func(k int) string {
		var b []string
		for i := 0; i < k && i < len(keys); i++ {
			b = append(b, fmt.Sprintf(`key="%d"`, keys[i]))
		}
		return fmt.Sprintf("//C[%s]", joinOr(b))
	}

	var out []SelResult
	for _, k := range targets {
		sr := SelResult{Targets: k}
		path := pathFor(k)

		// Deletion on a fresh clone.
		delSys, err := core.Open(syn.ATG, syn.DB.Clone(), core.Options{ForceSideEffects: true})
		if err != nil {
			return nil, err
		}
		rep, err := delSys.Execute("delete " + path)
		if err != nil {
			return nil, err
		}
		sr.RP, sr.EP = rep.RP, rep.EP
		sr.Del.add(rep.Timings)

		// Insertion on a fresh clone.
		insSys, err := core.Open(syn.ATG, syn.DB.Clone(), core.Options{ForceSideEffects: true})
		if err != nil {
			return nil, err
		}
		key := syn.NextKey
		syn.NextKey++
		rep, err = insSys.Execute(fmt.Sprintf(
			`insert C(c1=%d, c6="w%d") into %s/sub`, key, key, path))
		if err != nil {
			return nil, err
		}
		sr.Ins.add(rep.Timings)
		out = append(out, sr)
	}
	return out, nil
}

func joinOr(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " or "
		}
		out += p
	}
	return out
}

// SubtreeResult is one point of the Fig.11(h) sweep.
type SubtreeResult struct {
	STEdges int // edges of the inserted subtree ST(A,t)
	Ins     Phases
	Del     Phases
}

// VarySubtree reproduces Fig.11(h): |Ep(r)| = |r[[p]]| = 1 while the size of
// the inserted subtree ST(A,t) varies. Fresh keys are pre-linked (via H
// rows) to existing leaf-level subtrees before publication, so the inserted
// C brings a subtree of the requested breadth.
func VarySubtree(nc int, fanouts []int, seed int64) ([]SubtreeResult, error) {
	syn, err := workload.NewSynthetic(workload.SyntheticConfig{NC: nc, Seed: seed})
	if err != nil {
		return nil, err
	}
	// Deepest-level keys (largest) serve as ready-made children.
	leaves := make([]int64, 0, 64)
	for k := int64(nc); k > 0 && len(leaves) < 64; k-- {
		if syn.Pass[k] {
			leaves = append(leaves, k)
		}
	}
	// One fresh key per sweep point, pre-linked to `fanout` leaves.
	keys := make([]int64, len(fanouts))
	for i, f := range fanouts {
		key := syn.NextKey
		syn.NextKey++
		keys[i] = key
		for j := 0; j < f && j < len(leaves); j++ {
			if err := syn.DB.Insert("H", relational.Tuple{
				relational.Int(key), relational.Int(leaves[j]),
			}); err != nil {
				return nil, err
			}
		}
	}
	// A single-occurrence target: a published root (db is its only parent).
	target := syn.Roots[0]

	var out []SubtreeResult
	for i, f := range fanouts {
		sys, err := core.Open(syn.ATG, syn.DB.Clone(), core.Options{ForceSideEffects: true})
		if err != nil {
			return nil, err
		}
		sr := SubtreeResult{}
		rep, err := sys.Execute(fmt.Sprintf(
			`insert C(c1=%d, c6="big%d") into //C[key="%d"]/sub`, keys[i], keys[i], target))
		if err != nil {
			return nil, fmt.Errorf("fanout %d: %w", f, err)
		}
		sr.STEdges = rep.DVInserts
		sr.Ins.add(rep.Timings)

		// Matching deletion: remove the just-inserted subtree again
		// (|Ep| = 1; the subtree cascades in maintenance).
		rep, err = sys.Execute(fmt.Sprintf(
			`delete //C[key="%d"]/sub/C[key="%d"]`, target, keys[i]))
		if err != nil {
			return nil, err
		}
		sr.Del.add(rep.Timings)
		out = append(out, sr)
	}
	return out, nil
}

// Table1Result compares incremental maintenance of L and M against full
// recomputation (Table 1 of the paper).
type Table1Result struct {
	Size       int
	IncrInsert time.Duration // ∆(M,L)insert for one representative insertion
	IncrDelete time.Duration // ∆(M,L)delete for one representative deletion
	RecomputeL time.Duration
	RecomputeM time.Duration
}

// Table1 measures one point of the comparison.
func Table1(nc int, seed int64) (Table1Result, error) {
	syn, sys, err := NewSystem(nc, seed)
	if err != nil {
		return Table1Result{}, err
	}
	res := Table1Result{Size: nc}

	// Single-edge (W2) operations: Table 1 compares the per-update
	// maintenance cost against recomputing L and M from scratch.
	ins := syn.InsertWorkload(workload.W2, 1, seed+1)
	rep, err := sys.Execute(ins[0].Stmt)
	if err != nil {
		return res, err
	}
	res.IncrInsert = rep.Timings.Maintain

	del := syn.DeleteWorkload(workload.W2, 1, seed+2)
	rep, err = sys.Execute(del[0].Stmt)
	if err != nil {
		return res, err
	}
	res.IncrDelete = rep.Timings.Maintain

	t0 := time.Now()
	topo := reach.ComputeTopo(sys.DAG)
	res.RecomputeL = time.Since(t0)
	t0 = time.Now()
	reach.Compute(sys.DAG, topo)
	res.RecomputeM = time.Since(t0)
	return res, nil
}

// ReachAblation compares Algorithm Reach (Fig.4) against the per-node DFS
// baseline on the same DAG.
func ReachAblation(nc int, seed int64) (fig4, naive time.Duration, pairs int, err error) {
	_, sys, err := NewSystem(nc, seed)
	if err != nil {
		return 0, 0, 0, err
	}
	topo := reach.ComputeTopo(sys.DAG)
	t0 := time.Now()
	m := reach.Compute(sys.DAG, topo)
	fig4 = time.Since(t0)
	t0 = time.Now()
	m2 := reach.ComputeNaive(sys.DAG)
	naive = time.Since(t0)
	if !m.Equal(m2) {
		return 0, 0, 0, fmt.Errorf("bench: Reach implementations disagree")
	}
	return fig4, naive, m.Size(), nil
}

// MatrixAblation compares the two representations of the reachability
// matrix on the synthetic DAG: the production bitset rows (word-level row
// unions) against the sparse relation layout the paper describes (per-pair
// map inserts). Both sides run the same Algorithm Reach dynamic program over
// the same precomputed L, so the gap isolates the representation alone.
// Pairs is |M|; the ≥2× gap is the PR-2 tentpole's headline.
func MatrixAblation(nc int, seed int64) (bitset, sparse time.Duration, pairs int, err error) {
	_, sys, err := NewSystem(nc, seed)
	if err != nil {
		return 0, 0, 0, err
	}
	topo := reach.ComputeTopo(sys.DAG)
	t0 := time.Now()
	m := reach.Compute(sys.DAG, topo)
	bitset = time.Since(t0)
	t0 = time.Now()
	sp := reach.ComputeSparseReach(sys.DAG, topo)
	sparse = time.Since(t0)
	if !m.EqualSparse(sp) {
		return 0, 0, 0, fmt.Errorf("bench: matrix representations disagree: %s", m.DiffSparse(sp))
	}
	return bitset, sparse, m.Size(), nil
}

// DAGvsTree evaluates the same recursive query on the DAG compression and on
// the fully unfolded tree (materialized as an unshared DAG): the point of
// §2.3's compression.
func DAGvsTree(nc int, seed int64) (dagTime, treeTime time.Duration, dagNodes, treeNodes int, err error) {
	syn, sys, err := NewSystem(nc, seed)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	_ = syn
	path := xpath.MustParse(`//C[val="v3"]//C[sub/C]`)

	ev := &xpath.Evaluator{D: sys.DAG, Topo: sys.Index.Topo, Text: sys.ATG.Text(sys.DAG)}
	t0 := time.Now()
	if _, err := ev.Eval(path); err != nil {
		return 0, 0, 0, 0, err
	}
	dagTime = time.Since(t0)
	dagNodes = sys.DAG.NumNodes()

	tree, n, err := unfoldToTreeDAG(sys.DAG, 2_000_000)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	treeNodes = n
	treeTopo := reach.ComputeTopo(tree)
	// Text for the tree copies: attr layout is (original attr..., occ),
	// and PCDATA types render their first field, so reuse position 0.
	treeText := func(id dag.NodeID) (string, bool) {
		typ := tree.Type(id)
		if typ == "key" || typ == "val" || typ == "item" {
			a := tree.Attr(id)
			return a[0].String(), true
		}
		return "", false
	}
	evTree := &xpath.Evaluator{D: tree, Topo: treeTopo, Text: treeText}
	t0 = time.Now()
	if _, err := evTree.Eval(path); err != nil {
		return 0, 0, 0, 0, err
	}
	treeTime = time.Since(t0)
	return dagTime, treeTime, dagNodes, treeNodes, nil
}

// unfoldToTreeDAG materializes the tree view as a DAG without sharing: every
// occurrence becomes a distinct node (attr extended with an occurrence id).
func unfoldToTreeDAG(d *dag.DAG, budget int) (*dag.DAG, int, error) {
	out := dag.New(d.Type(d.Root()))
	count := 1
	occ := int64(0)
	var copyTree func(src dag.NodeID, dstParent dag.NodeID) error
	copyTree = func(src dag.NodeID, dstParent dag.NodeID) error {
		for _, c := range d.Children(src) {
			if count >= budget {
				return dag.ErrTreeTooLarge
			}
			occ++
			attr := append(d.Attr(c).Clone(), relational.Int(occ))
			id, _ := out.AddNode(d.Type(c), attr)
			out.AddEdge(dstParent, id)
			count++
			if err := copyTree(c, id); err != nil {
				return err
			}
		}
		return nil
	}
	if err := copyTree(d.Root(), out.Root()); err != nil {
		return nil, 0, err
	}
	return out, count, nil
}

// SideEffectAblation compares full evaluation (exact side-effect detection
// via per-path state-sets) against the selection-only union-mask fast path
// on the same recursive query — the cost of the paper's side-effect
// analysis on top of plain selection.
func SideEffectAblation(nc int, seed int64) (full, selectOnly time.Duration, err error) {
	_, sys, err := NewSystem(nc, seed)
	if err != nil {
		return 0, 0, err
	}
	path := xpath.MustParse(`//C[val="v1"]//C[sub/C]`)
	ev := &xpath.Evaluator{D: sys.DAG, Topo: sys.Index.Topo, Text: sys.ATG.Text(sys.DAG)}
	t0 := time.Now()
	fullRes, err := ev.Eval(path)
	if err != nil {
		return 0, 0, err
	}
	full = time.Since(t0)
	t0 = time.Now()
	fastRes, err := ev.EvalSelect(path)
	if err != nil {
		return 0, 0, err
	}
	selectOnly = time.Since(t0)
	if len(fullRes.Selected) != len(fastRes.Selected) {
		return 0, 0, fmt.Errorf("bench: selection disagreement between Eval and EvalSelect")
	}
	return full, selectOnly, nil
}

// EvalStrategyAblation compares the NFA-based evaluator (exact side
// effects) with the paper-literal frontier evaluator (per-step Ci sets, //
// expanded through the reachability matrix M) on the same recursive query.
func EvalStrategyAblation(nc int, seed int64) (nfa, frontier time.Duration, err error) {
	_, sys, err := NewSystem(nc, seed)
	if err != nil {
		return 0, 0, err
	}
	path := xpath.MustParse(`//C[val="v1"]//C[sub/C]`)
	text := sys.ATG.Text(sys.DAG)

	ev := &xpath.Evaluator{D: sys.DAG, Topo: sys.Index.Topo, Text: text}
	t0 := time.Now()
	a, err := ev.Eval(path)
	if err != nil {
		return 0, 0, err
	}
	nfa = time.Since(t0)

	fe := &xpath.FrontierEvaluator{D: sys.DAG, Topo: sys.Index.Topo, Matrix: sys.Index.Matrix, Text: text}
	t0 = time.Now()
	b, err := fe.Eval(path)
	if err != nil {
		return 0, 0, err
	}
	frontier = time.Since(t0)
	if len(a.Selected) != len(b.Selected) {
		return 0, 0, fmt.Errorf("bench: evaluators disagree on selection")
	}
	return nfa, frontier, nil
}

// MinDeleteAblation times the greedy vs exact minimal-deletion algorithms on
// a group deletion (Theorem 3's tractability gap in practice).
func MinDeleteAblation(nc int, seed int64) (greedyT, exactT time.Duration, greedyN, exactN int, err error) {
	_, sys, err := NewSystem(nc, seed)
	if err != nil {
		return
	}
	// Group-delete every edge into the children of the first root's sub.
	var dv []dag.Edge
	for _, id := range sys.DAG.NodesOfType("sub") {
		for _, c := range sys.DAG.Children(id) {
			dv = append(dv, dag.Edge{Parent: id, Child: c})
			if len(dv) >= 14 {
				break
			}
		}
		if len(dv) >= 14 {
			break
		}
	}
	m, err := viewupdate.NewMinimalDelete(sys.Translator, dv)
	if err != nil {
		return
	}
	t0 := time.Now()
	g, err := m.Greedy()
	if err != nil {
		return
	}
	greedyT = time.Since(t0)
	t0 = time.Now()
	e, err := m.Exact()
	if err != nil {
		return
	}
	exactT = time.Since(t0)
	return greedyT, exactT, len(g), len(e), nil
}
