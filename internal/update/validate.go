package update

import (
	"fmt"

	"rxview/internal/dtd"
	"rxview/internal/xpath"
)

// ValidateAgainstDTD is the schema-level validation phase of §2.4: it
// "evaluates" the update's XPath p on the DTD D to find the element types
// reached by p, and rejects the update unless every affected production has
// the form T → A* (only star children may gain or lose elements without
// violating D). The check runs in time polynomial in |p| and |D| and never
// touches the data.
//
// Filters are over-approximated as satisfiable (except label() tests, which
// are exact), so validation is conservative: it can reject an update whose
// concrete targets would all have been legal types, but it never accepts an
// update that could produce an invalid document — matching the paper's
// "updates of other forms can be immediately rejected".
func ValidateAgainstDTD(d *dtd.DTD, op *Op) error {
	steps := xpath.Normalize(op.Path)
	n := len(steps)
	if n > xpath.MaxSteps {
		// Same bound and same typed error as the evaluators, so validation
		// and evaluation never disagree on which paths are representable.
		return &xpath.PathTooLongError{Steps: n}
	}
	accept := uint64(1) << uint(n)

	closure := func(mask uint64, typ string) uint64 {
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			switch steps[i].Kind {
			case xpath.StepSelf:
				if filterMayHold(steps[i].Filter, typ) {
					mask |= 1 << uint(i+1)
				}
			case xpath.StepDescOrSelf:
				mask |= 1 << uint(i+1)
			}
		}
		return mask
	}
	move := func(mask uint64, childType string) uint64 {
		var out uint64
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			switch steps[i].Kind {
			case xpath.StepLabel:
				if steps[i].Label == childType {
					out |= 1 << uint(i+1)
				}
			case xpath.StepWild:
				out |= 1 << uint(i+1)
			case xpath.StepDescOrSelf:
				out |= 1 << uint(i)
			}
		}
		return closure(out, childType)
	}

	// Fixpoint over the (possibly cyclic) type graph. Union masks are
	// exact for reachability because transitions are bit-linear.
	masks := map[string]uint64{d.Root: closure(1, d.Root)}
	// parentsVia[T] collects the types through whose transition p reaches
	// T (the type-level Ep, used to validate deletions).
	parentsVia := map[string]map[string]bool{}
	for changed := true; changed; {
		changed = false
		for _, t := range d.Types() {
			m := masks[t]
			if m == 0 {
				continue
			}
			for _, c := range d.ChildTypes(t) {
				m2 := move(m, c)
				if m2&^masks[c] != 0 {
					masks[c] |= m2
					changed = true
				}
				if m2&accept != 0 {
					if parentsVia[c] == nil {
						parentsVia[c] = map[string]bool{}
					}
					if !parentsVia[c][t] {
						parentsVia[c][t] = true
						changed = true
					}
				}
			}
		}
	}

	reached := []string{}
	for _, t := range d.Types() {
		if masks[t]&accept != 0 {
			reached = append(reached, t)
		}
	}
	if len(reached) == 0 {
		return fmt.Errorf("update: path %s cannot reach any element type of the DTD", op.Path)
	}

	switch op.Kind {
	case OpInsert:
		// Inserting a B child under an A element is legal only if A → B*.
		for _, t := range reached {
			prod := d.Elems[t]
			if prod.Kind != dtd.Star || prod.Children[0] != op.Type {
				return fmt.Errorf(
					"update: inserting %s under %s violates the DTD: production is %s %s, need (%s)*",
					op.Type, t, t, prod, op.Type)
			}
		}
	case OpDelete:
		// Deleting a B child from an A parent is legal only if A → B*.
		for _, t := range reached {
			if t == d.Root {
				return fmt.Errorf("update: cannot delete the document root")
			}
			for p := range parentsVia[t] {
				prod := d.Elems[p]
				if prod.Kind != dtd.Star || prod.Children[0] != t {
					return fmt.Errorf(
						"update: deleting %s from %s violates the DTD: production is %s %s",
						t, p, p, prod)
				}
			}
		}
	}
	return nil
}

// filterMayHold over-approximates filter satisfiability at an element type:
// label() tests are exact, everything else may hold.
func filterMayHold(q xpath.Expr, typ string) bool {
	switch t := q.(type) {
	case nil:
		return true
	case *xpath.ExprLabel:
		return t.Label == typ
	case *xpath.ExprAnd:
		return filterMayHold(t.L, typ) && filterMayHold(t.R, typ)
	case *xpath.ExprOr:
		return filterMayHold(t.L, typ) || filterMayHold(t.R, typ)
	default:
		// Path existence, comparisons and negations: assume satisfiable.
		return true
	}
}
