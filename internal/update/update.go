// Package update implements the XML side of update processing: the update
// statements of §2.1 (insert (A,t) into p / delete p), the schema-level DTD
// validation of §2.4, and the translation algorithms Xinsert (Fig.5) and
// Xdelete (Fig.6) that turn a single XML update into a group update ΔV over
// the edge relations of the DAG-compressed view.
package update

import (
	"fmt"
	"strings"

	"rxview/internal/atg"
	"rxview/internal/dag"
	"rxview/internal/relational"
	"rxview/internal/xpath"
)

// OpKind distinguishes insertions from deletions.
type OpKind uint8

// Update kinds.
const (
	OpInsert OpKind = iota
	OpDelete
)

func (k OpKind) String() string {
	if k == OpInsert {
		return "insert"
	}
	return "delete"
}

// Op is an XML view update ΔX.
type Op struct {
	Kind OpKind
	Path *xpath.Path
	// Type and Attr define the inserted subtree ST(A, t); unused for
	// deletions.
	Type string
	Attr relational.Tuple
}

func (o Op) String() string {
	if o.Kind == OpDelete {
		return "delete " + o.Path.String()
	}
	return fmt.Sprintf("insert %s%s into %s", o.Type, o.Attr, o.Path.String())
}

// ViewDelta is the group update ΔV over the relational views (edge
// relations) produced by Xinsert/Xdelete.
type ViewDelta struct {
	// Inserts are edges added to edge relations (already applied to the
	// DAG, inside the caller's transaction); SubtreeEdges of them belong
	// to the newly published ST(A,t), ConnectEdges link r[[p]] to its root.
	Inserts []dag.Edge
	// Deletes are edges to remove (Ep(r) for deletions).
	Deletes []dag.Edge
	// NewNodes are the fresh nodes of ST(A, t) in creation order.
	NewNodes []dag.NodeID
	// SubtreeRoot is gen_id(A, t) for insertions.
	SubtreeRoot dag.NodeID
}

// Xinsert is Algorithm Xinsert (Fig.5): it publishes ST(A, t) into the DAG
// (storing each shared subtree once — set semantics of the edge relations),
// connects it as the rightmost child of every node in r[[p]], and returns
// ΔV. The DAG must be inside a transaction so the caller can roll back if
// the relational translation rejects the update.
func Xinsert(c *atg.Compiled, d *dag.DAG, db *relational.Database, rp []dag.NodeID, elemType string, attr relational.Tuple) (*ViewDelta, error) {
	if !d.InTxn() {
		return nil, fmt.Errorf("update: Xinsert requires an open DAG transaction")
	}
	// ΔV is this update's own contribution: measure from a savepoint, not
	// from the journal's start — inside a multi-update transaction the
	// journal spans every earlier staged update.
	mark := d.Mark()
	root, err := c.PublishSubtree(d, db, elemType, attr)
	if err != nil {
		return nil, err
	}
	for _, u := range rp {
		if u == root || d.Type(u) == elemType {
			return nil, fmt.Errorf("update: cannot insert %s under %s node", elemType, d.Type(u))
		}
		// Prevent cycles: inserting a subtree under its own descendant
		// would fold the view into a cyclic (infinite) document.
		if reaches(d, root, u) {
			return nil, fmt.Errorf("update: inserting %s%s under node %d would create a cycle",
				elemType, attr, u)
		}
		d.AddEdge(u, root)
	}
	newNodes, edgeAdds, _ := d.ChangesSince(mark)
	return &ViewDelta{
		Inserts:     edgeAdds,
		NewNodes:    newNodes,
		SubtreeRoot: root,
	}, nil
}

// reaches reports whether DFS from src reaches dst.
func reaches(d *dag.DAG, src, dst dag.NodeID) bool {
	if src == dst {
		return true
	}
	seen := map[dag.NodeID]bool{src: true}
	stack := []dag.NodeID{src}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range d.Children(x) {
			if c == dst {
				return true
			}
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return false
}

// Xdelete is Algorithm Xdelete (Fig.6): for each node v ∈ r[[p]] and each
// parent u of v in Ep(r), the edge (u, v) is removed from its edge relation.
// The subtree below v is NOT physically removed (it may be shared); the
// background maintenance garbage-collects unreachable nodes (§2.3).
func Xdelete(ep []dag.Edge) *ViewDelta {
	return &ViewDelta{Deletes: append([]dag.Edge(nil), ep...)}
}

// ParseStatement parses the textual update syntax used by the CLI and
// examples:
//
//	insert course(cno="CS240", title="Algorithms") into //course[cno="CS320"]/prereq
//	delete //student[ssn="S02"]
//
// Attribute fields are typed and ordered per the ATG declaration; all fields
// must be given (the semantic attribute determines the node identity).
func ParseStatement(c *atg.Compiled, stmt string) (*Op, error) {
	s := strings.TrimSpace(stmt)
	switch {
	case strings.HasPrefix(s, "delete"):
		p, err := xpath.Parse(strings.TrimSpace(strings.TrimPrefix(s, "delete")))
		if err != nil {
			return nil, err
		}
		return &Op{Kind: OpDelete, Path: p}, nil
	case strings.HasPrefix(s, "insert"):
		rest := strings.TrimSpace(strings.TrimPrefix(s, "insert"))
		open := strings.Index(rest, "(")
		if open < 0 {
			return nil, fmt.Errorf("update: expected '(' after element type in %q", stmt)
		}
		elemType := strings.TrimSpace(rest[:open])
		closeIdx := strings.Index(rest, ")")
		if closeIdx < open {
			return nil, fmt.Errorf("update: expected ')' in %q", stmt)
		}
		fieldPart := rest[open+1 : closeIdx]
		after := strings.TrimSpace(rest[closeIdx+1:])
		if !strings.HasPrefix(after, "into") {
			return nil, fmt.Errorf("update: expected 'into' in %q", stmt)
		}
		p, err := xpath.Parse(strings.TrimSpace(strings.TrimPrefix(after, "into")))
		if err != nil {
			return nil, err
		}
		attr, err := parseAttr(c, elemType, fieldPart)
		if err != nil {
			return nil, err
		}
		return &Op{Kind: OpInsert, Path: p, Type: elemType, Attr: attr}, nil
	default:
		return nil, fmt.Errorf("update: statement must start with insert or delete: %q", stmt)
	}
}

func parseAttr(c *atg.Compiled, elemType, fields string) (relational.Tuple, error) {
	decl, ok := c.Attrs[elemType]
	if !ok {
		return nil, fmt.Errorf("update: unknown element type %s", elemType)
	}
	attr := make(relational.Tuple, len(decl))
	given := make([]bool, len(decl))
	for _, part := range splitTop(fields, ',') {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.Index(part, "=")
		if eq < 0 {
			return nil, fmt.Errorf("update: malformed field %q", part)
		}
		name := strings.TrimSpace(part[:eq])
		raw := strings.TrimSpace(part[eq+1:])
		raw = strings.Trim(raw, `"'`)
		idx := -1
		for i, f := range decl {
			if f.Name == name {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("update: %s has no attribute field %q", elemType, name)
		}
		v, err := relational.ParseValue(decl[idx].Type, raw)
		if err != nil {
			return nil, err
		}
		attr[idx] = v
		given[idx] = true
	}
	for i, g := range given {
		if !g {
			return nil, fmt.Errorf("update: missing attribute field %s.%s", elemType, decl[i].Name)
		}
	}
	return attr, nil
}

// splitTop splits on sep outside quotes.
func splitTop(s string, sep byte) []string {
	var out []string
	depth := byte(0)
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case depth != 0:
			if c == depth {
				depth = 0
			}
		case c == '"' || c == '\'':
			depth = c
		case c == sep:
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	out = append(out, s[start:])
	return out
}
