package update

import (
	"strings"
	"testing"

	"rxview/internal/dag"
	"rxview/internal/relational"
	"rxview/internal/workload"
	"rxview/internal/xpath"
)

func TestParseStatementInsert(t *testing.T) {
	reg := workload.MustRegistrar()
	op, err := ParseStatement(reg.ATG,
		`insert course(cno="CS9", title="Topics") into //course[cno="CS320"]/prereq`)
	if err != nil {
		t.Fatal(err)
	}
	if op.Kind != OpInsert || op.Type != "course" {
		t.Fatalf("op = %+v", op)
	}
	if op.Attr[0].S != "CS9" || op.Attr[1].S != "Topics" {
		t.Fatalf("attr = %v", op.Attr)
	}
	if op.Path.String() != `//course[cno="CS320"]/prereq` {
		t.Errorf("path = %s", op.Path)
	}
	if !strings.Contains(op.String(), "insert course(CS9, Topics)") {
		t.Errorf("String = %q", op.String())
	}
}

func TestParseStatementFieldsInAnyOrder(t *testing.T) {
	reg := workload.MustRegistrar()
	op, err := ParseStatement(reg.ATG,
		`insert student(name="Zoe", ssn="S09") into //takenBy`)
	if err != nil {
		t.Fatal(err)
	}
	if op.Attr[0].S != "S09" || op.Attr[1].S != "Zoe" {
		t.Fatalf("attr = %v (declaration order is ssn, name)", op.Attr)
	}
}

func TestParseStatementQuotedComma(t *testing.T) {
	reg := workload.MustRegistrar()
	op, err := ParseStatement(reg.ATG,
		`insert course(cno="CS9", title="Logic, and more") into //prereq`)
	if err != nil {
		t.Fatal(err)
	}
	if op.Attr[1].S != "Logic, and more" {
		t.Fatalf("attr = %v", op.Attr)
	}
}

func TestParseStatementErrors(t *testing.T) {
	reg := workload.MustRegistrar()
	for _, stmt := range []string{
		"",
		"upsert course(cno=\"C\") into //x",
		"insert course cno=\"C\" into //x", // no parens
		"insert course(cno=\"C\", title=\"T\") //x",     // missing into
		"insert course(cno=\"C\") into //x",             // missing field
		"insert course(cno=\"C\", nope=\"X\") into //x", // unknown field
		"insert nosuch(a=\"1\") into //x",               // unknown type
		"insert course(cno=\"C\" title) into //x",       // malformed field
		"delete ", // empty path
		"insert course(cno=\"C\", title=\"T\") into ///[x]", // bad path
	} {
		if _, err := ParseStatement(reg.ATG, stmt); err == nil {
			t.Errorf("statement %q accepted", stmt)
		}
	}
}

func TestValidateAgainstDTDInsert(t *testing.T) {
	reg := workload.MustRegistrar()
	ok := func(stmt string) *Op {
		t.Helper()
		op, err := ParseStatement(reg.ATG, stmt)
		if err != nil {
			t.Fatal(err)
		}
		return op
	}
	cases := []struct {
		op    *Op
		valid bool
	}{
		{ok(`insert course(cno="X", title="T") into //course/prereq`), true},
		{ok(`insert course(cno="X", title="T") into .`), true},
		{ok(`insert student(ssn="S", name="N") into //takenBy`), true},
		{ok(`insert student(ssn="S", name="N") into //prereq`), false},      // prereq → course*
		{ok(`insert course(cno="X", title="T") into //course`), false},      // course is a sequence
		{ok(`insert course(cno="X", title="T") into //student/ssn`), false}, // PCDATA leaf
	}
	for _, c := range cases {
		err := ValidateAgainstDTD(reg.DTD, c.op)
		if (err == nil) != c.valid {
			t.Errorf("%s: err = %v, want valid=%v", c.op, err, c.valid)
		}
	}
}

func TestValidateAgainstDTDDelete(t *testing.T) {
	reg := workload.MustRegistrar()
	ok := func(stmt string) *Op {
		t.Helper()
		op, err := ParseStatement(reg.ATG, stmt)
		if err != nil {
			t.Fatal(err)
		}
		return op
	}
	cases := []struct {
		op    *Op
		valid bool
	}{
		{ok(`delete //course[cno="X"]`), true}, // parents db and prereq are both stars
		{ok(`delete //student`), true},
		{ok(`delete //course/cno`), false}, // sequence child
		{ok(`delete //student/ssn`), false},
		{ok(`delete .`), false}, // root
		{ok(`delete //nosuchtype`), false},
	}
	for _, c := range cases {
		err := ValidateAgainstDTD(reg.DTD, c.op)
		if (err == nil) != c.valid {
			t.Errorf("%s: err = %v, want valid=%v", c.op, err, c.valid)
		}
	}
}

func TestValidateLabelFilterNarrowsTypes(t *testing.T) {
	reg := workload.MustRegistrar()
	// //*[label()=takenBy] reaches only takenBy: inserting a student there
	// is fine even though //* alone would reach illegal types.
	op, err := ParseStatement(reg.ATG, `insert student(ssn="S", name="N") into //*[label()=takenBy]`)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateAgainstDTD(reg.DTD, op); err != nil {
		t.Errorf("label-narrowed insert rejected: %v", err)
	}
	op2, _ := ParseStatement(reg.ATG, `insert student(ssn="S", name="N") into //*`)
	if err := ValidateAgainstDTD(reg.DTD, op2); err == nil {
		t.Error("//* insert should be rejected (reaches non-star types)")
	}
}

func TestXinsertRequiresTransaction(t *testing.T) {
	reg := workload.MustRegistrar()
	d, err := reg.ATG.PublishDAG(reg.DB)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Xinsert(reg.ATG, d, reg.DB, nil, "course",
		relational.Tuple{relational.Str("X"), relational.Str("T")})
	if err == nil || !strings.Contains(err.Error(), "transaction") {
		t.Errorf("err = %v", err)
	}
}

func TestXinsertConnectsAllTargets(t *testing.T) {
	reg := workload.MustRegistrar()
	d, err := reg.ATG.PublishDAG(reg.DB)
	if err != nil {
		t.Fatal(err)
	}
	pre650, _ := d.Lookup("prereq", relational.Tuple{relational.Str("CS650")})
	pre240, _ := d.Lookup("prereq", relational.Tuple{relational.Str("CS240")})
	d.Begin()
	defer d.Rollback()
	dv, err := Xinsert(reg.ATG, d, reg.DB, []dag.NodeID{pre650, pre240}, "course",
		relational.Tuple{relational.Str("CS700"), relational.Str("Research")})
	if err != nil {
		t.Fatal(err)
	}
	// Skeleton: course + cno + title + prereq + takenBy = 5 new nodes;
	// edges: 4 internal + 2 connections.
	if len(dv.NewNodes) != 5 {
		t.Errorf("new nodes = %d", len(dv.NewNodes))
	}
	if len(dv.Inserts) != 6 {
		t.Errorf("ΔV inserts = %d", len(dv.Inserts))
	}
	if !d.HasEdge(pre650, dv.SubtreeRoot) || !d.HasEdge(pre240, dv.SubtreeRoot) {
		t.Error("connection edges missing")
	}
}

func TestXinsertRejectsCycle(t *testing.T) {
	reg := workload.MustRegistrar()
	d, err := reg.ATG.PublishDAG(reg.DB)
	if err != nil {
		t.Fatal(err)
	}
	// Inserting CS650 under its own descendant prereq(CS240) would fold
	// the view into a cycle.
	pre240, _ := d.Lookup("prereq", relational.Tuple{relational.Str("CS240")})
	d.Begin()
	defer d.Rollback()
	_, err = Xinsert(reg.ATG, d, reg.DB, []dag.NodeID{pre240}, "course",
		relational.Tuple{relational.Str("CS650"), relational.Str("Advanced Topics")})
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("err = %v, want cycle rejection", err)
	}
}

func TestXdelete(t *testing.T) {
	ep := []dag.Edge{{Parent: 1, Child: 2}, {Parent: 3, Child: 2}}
	dv := Xdelete(ep)
	if len(dv.Deletes) != 2 || len(dv.Inserts) != 0 {
		t.Errorf("dv = %+v", dv)
	}
	// Xdelete copies the slice.
	ep[0].Parent = 99
	if dv.Deletes[0].Parent == 99 {
		t.Error("Xdelete aliases input")
	}
}

func TestOpKindString(t *testing.T) {
	if OpInsert.String() != "insert" || OpDelete.String() != "delete" {
		t.Error("OpKind strings")
	}
	var p *xpath.Path
	_ = p
}
