package xpath

// NStep is a step of the normal form η1/…/ηn of §3.2: each ηi is ε[q], a
// label A, a wildcard ∗, or //. Filters on label/wildcard steps are peeled
// into trailing ε[q] steps using the rewrites p[q] ≡ p/ε[q] and
// ε[q1]…[qn] ≡ ε[q1 ∧ … ∧ qn], in O(|p|) time.
type NStep struct {
	Kind   StepKind
	Label  string
	Filter Expr // only for StepSelf; nil means plain ε (dropped unless first)
}

// Normalize rewrites the path into normal form.
func Normalize(p *Path) []NStep {
	var out []NStep
	for _, s := range p.Steps {
		switch s.Kind {
		case StepDescOrSelf:
			out = append(out, NStep{Kind: StepDescOrSelf})
		case StepWild:
			out = append(out, NStep{Kind: StepWild})
		case StepLabel:
			out = append(out, NStep{Kind: StepLabel, Label: s.Label})
		case StepSelf:
			// handled below via filters only
		}
		if f := conjoin(s.Filters); f != nil {
			out = append(out, NStep{Kind: StepSelf, Filter: f})
		} else if s.Kind == StepSelf {
			// A bare ε step: meaningful only as an explicit no-op; keep a
			// filterless self step so "." stays representable.
			out = append(out, NStep{Kind: StepSelf})
		}
	}
	return out
}

func conjoin(filters []Expr) Expr {
	var f Expr
	for _, q := range filters {
		if f == nil {
			f = q
		} else {
			f = &ExprAnd{L: f, R: q}
		}
	}
	return f
}

// collectFilters gathers every filter expression reachable from the steps,
// sub-filters before the filters containing them — the topologically sorted
// filter list Q of §3.2. Each ExprPath's nested filters appear before it.
func collectFilters(steps []NStep) []Expr {
	var out []Expr
	seen := map[Expr]bool{}
	var visitExpr func(e Expr)
	var visitPath func(p *Path)
	visitExpr = func(e Expr) {
		if e == nil || seen[e] {
			return
		}
		switch t := e.(type) {
		case *ExprAnd:
			visitExpr(t.L)
			visitExpr(t.R)
		case *ExprOr:
			visitExpr(t.L)
			visitExpr(t.R)
		case *ExprNot:
			visitExpr(t.E)
		case *ExprPath:
			visitPath(t.Path)
		}
		seen[e] = true
		out = append(out, e)
	}
	visitPath = func(p *Path) {
		for _, s := range p.Steps {
			for _, f := range s.Filters {
				visitExpr(f)
			}
		}
	}
	for _, s := range steps {
		visitExpr(s.Filter)
	}
	return out
}
