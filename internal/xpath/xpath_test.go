package xpath

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"rxview/internal/dag"
	"rxview/internal/reach"
	"rxview/internal/relational"
)

func TestParseBasics(t *testing.T) {
	cases := []struct {
		in   string
		want string // round-trip rendering
	}{
		{"course", "course"},
		{"/db/course", "db/course"},
		{"//course", "//course"},
		{"course//prereq", "course//prereq"},
		{"*", "*"},
		{".", "."},
		{`course[cno="CS650"]`, `course[cno="CS650"]`},
		{"course[cno=CS650]", `course[cno="CS650"]`},
		{`course[cno='CS650']`, `course[cno="CS650"]`},
		{"a[b and c]", "a[(b and c)]"},
		{"a[b or c]", "a[(b or c)]"},
		{"a[not(b)]", "a[not(b)]"},
		{"a[!b]", "a[not(b)]"},
		{"a[b && c]", "a[(b and c)]"},
		{"a[b || c]", "a[(b or c)]"},
		{"a[label()=course]", "a[label()=course]"},
		{"a[b/c=x]", `a[b/c="x"]`},
		{"a[(b or c) and d]", "a[((b or c) and d)]"},
		{"a[b][c]", "a[b][c]"},
		{`course[cno=CS650]//course[cno=CS320]/prereq`, `course[cno="CS650"]//course[cno="CS320"]/prereq`},
	}
	for _, c := range cases {
		p, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got := p.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"", "course[", "course[]", "course[cno=]", "a[b=\"x]", "a]b",
		"a[label()]", "a[label()=]", "a[not(b]", "a[(b]", "course$",
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted", in)
		}
	}
}

func TestNormalize(t *testing.T) {
	p := MustParse(`course[cno="CS650"]//course[x][y]/prereq`)
	steps := Normalize(p)
	kinds := make([]StepKind, len(steps))
	for i, s := range steps {
		kinds[i] = s.Kind
	}
	want := []StepKind{StepLabel, StepSelf, StepDescOrSelf, StepLabel, StepSelf, StepLabel}
	if !reflect.DeepEqual(kinds, want) {
		t.Errorf("kinds = %v, want %v", kinds, want)
	}
	// The two filters on the second course step are conjoined.
	if _, ok := steps[4].Filter.(*ExprAnd); !ok {
		t.Errorf("filters not conjoined: %T", steps[4].Filter)
	}
}

func TestLastLabel(t *testing.T) {
	if l, ok := MustParse("a/b/c").LastLabel(); !ok || l != "c" {
		t.Error("LastLabel a/b/c")
	}
	if l, ok := MustParse("a/b[x]").LastLabel(); !ok || l != "b" {
		t.Error("LastLabel with trailing filter")
	}
	if _, ok := MustParse("a/*").LastLabel(); ok {
		t.Error("LastLabel of wildcard")
	}
	if _, ok := MustParse("a//").LastLabel(); ok {
		t.Error("LastLabel of trailing //")
	}
}

// fig1DAG builds (a simplification of) the view of Fig.1 in the paper:
//
//	db ─ course650 ─ cno:CS650, prereq650 ─ course320
//	db ─ course320 ─ cno:CS320, prereq320 ─ course240, takenBy320 ─ studentS02
//	db ─ course240 ─ cno:CS240, takenBy240 ─ studentS02
//
// course320 is shared (top-level and as prereq of CS650), studentS02 is
// shared by two takenBy nodes.
func fig1DAG(t testing.TB) (*dag.DAG, map[string]dag.NodeID, func(dag.NodeID) (string, bool)) {
	t.Helper()
	d := dag.New("db")
	ids := map[string]dag.NodeID{"db": d.Root()}
	texts := map[dag.NodeID]string{}
	mk := func(name, typ string, attr ...relational.Value) dag.NodeID {
		id, _ := d.AddNode(typ, relational.Tuple(attr))
		ids[name] = id
		return id
	}
	mkText := func(name, typ, text string) dag.NodeID {
		id := mk(name, typ, relational.Str(text))
		texts[id] = text
		return id
	}

	c650 := mk("c650", "course", relational.Str("CS650"))
	c320 := mk("c320", "course", relational.Str("CS320"))
	c240 := mk("c240", "course", relational.Str("CS240"))
	d.AddEdge(d.Root(), c650)
	d.AddEdge(d.Root(), c320)
	d.AddEdge(d.Root(), c240)

	cno650 := mkText("cno650", "cno", "CS650")
	cno320 := mkText("cno320", "cno", "CS320")
	cno240 := mkText("cno240", "cno", "CS240")
	pre650 := mk("pre650", "prereq", relational.Str("CS650"))
	pre320 := mk("pre320", "prereq", relational.Str("CS320"))
	tb650 := mk("tb650", "takenBy", relational.Str("CS650"))
	tb320 := mk("tb320", "takenBy", relational.Str("CS320"))
	tb240 := mk("tb240", "takenBy", relational.Str("CS240"))
	d.AddEdge(c650, cno650)
	d.AddEdge(c650, pre650)
	d.AddEdge(c650, tb650)
	d.AddEdge(c320, cno320)
	d.AddEdge(c320, pre320)
	d.AddEdge(c320, tb320)
	d.AddEdge(c240, cno240)
	d.AddEdge(c240, tb240)

	d.AddEdge(pre650, c320) // CS320 shared: top-level + prereq of CS650
	d.AddEdge(pre320, c240) // CS240 shared: top-level + prereq of CS320

	// S02 takes CS650 and CS320; S01 takes CS240. The student S02 subtree
	// is shared by two takenBy parents, neither inside the other.
	s02 := mk("s02", "student", relational.Str("S02"))
	sid02 := mkText("sid02", "sid", "S02")
	d.AddEdge(s02, sid02)
	d.AddEdge(tb650, s02)
	d.AddEdge(tb320, s02)
	s01 := mk("s01", "student", relational.Str("S01"))
	sid01 := mkText("sid01", "sid", "S01")
	d.AddEdge(s01, sid01)
	d.AddEdge(tb240, s01)

	if err := d.CheckAcyclic(); err != nil {
		t.Fatal(err)
	}
	text := func(id dag.NodeID) (string, bool) {
		s, ok := texts[id]
		return s, ok
	}
	return d, ids, text
}

func newEval(t testing.TB, d *dag.DAG, text func(dag.NodeID) (string, bool)) *Evaluator {
	t.Helper()
	return &Evaluator{D: d, Topo: reach.ComputeTopo(d), Text: text}
}

func TestEvalFig1Selection(t *testing.T) {
	d, ids, text := fig1DAG(t)
	ev := newEval(t, d, text)

	cases := []struct {
		path string
		want []dag.NodeID
	}{
		{"course", []dag.NodeID{ids["c650"], ids["c320"], ids["c240"]}},
		{`course[cno="CS650"]`, []dag.NodeID{ids["c650"]}},
		{`//course[cno="CS320"]`, []dag.NodeID{ids["c320"]}},
		{`course[cno="CS650"]//course[cno="CS320"]/prereq`, []dag.NodeID{ids["pre320"]}},
		{`//student[sid="S02"]`, []dag.NodeID{ids["s02"]}},
		{`//course[cno="CS320"]//student[sid="S02"]`, []dag.NodeID{ids["s02"]}},
		{`course[cno="CS999"]`, nil},
		{`//takenBy/student`, []dag.NodeID{ids["s02"], ids["s01"]}},
		{`//course[prereq/course]`, []dag.NodeID{ids["c650"], ids["c320"]}},
		{`//course[not(prereq/course)]`, []dag.NodeID{ids["c240"]}},
		{`//course[label()=course]`, []dag.NodeID{ids["c650"], ids["c320"], ids["c240"]}},
		{`//*[sid="S02"]`, []dag.NodeID{ids["s02"]}},
		{`course[cno="CS650" or cno="CS240"]`, []dag.NodeID{ids["c650"], ids["c240"]}},
		{`.`, []dag.NodeID{ids["db"]}},
	}
	for _, c := range cases {
		res, err := ev.Eval(MustParse(c.path))
		if err != nil {
			t.Errorf("%s: %v", c.path, err)
			continue
		}
		want := append([]dag.NodeID(nil), c.want...)
		sortIDs(want)
		if !reflect.DeepEqual(res.Selected, want) {
			t.Errorf("%s: selected %v, want %v", c.path, res.Selected, want)
		}
	}
}

func TestEvalExample4(t *testing.T) {
	// Example 4/5 of the paper: delete //course[cno=CS320]//student[sid=S02]
	// yields Ep = {(takenBy of CS320, student S02)} — only that edge, not
	// the one under CS240.
	d, ids, text := fig1DAG(t)
	ev := newEval(t, d, text)
	res, err := ev.Eval(MustParse(`//course[cno="CS320"]//student[sid="S02"]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 1 || res.Selected[0] != ids["s02"] {
		t.Fatalf("selected = %v", res.Selected)
	}
	want := []dag.Edge{{Parent: ids["tb320"], Child: ids["s02"]}}
	if !reflect.DeepEqual(res.Edges, want) {
		t.Errorf("Ep = %v, want %v", res.Edges, want)
	}
	// The S02 node also occurs under CS650's own takenBy, but that edge
	// (tb650, s02) is untouched — no side effect on it. The (tb320, s02)
	// edge occurs in both the top-level CS320 subtree and the copy under
	// CS650, and both occurrences match //course[...]//student, so there
	// is no delete side effect either.
	if res.HasDeleteSideEffects() {
		t.Errorf("unexpected delete side effects: %v", res.DeleteWitnesses)
	}

	// Example 5's second update: delete //student[sid=S02] yields both
	// takenBy edges.
	res, err = ev.Eval(MustParse(`//student[sid="S02"]`))
	if err != nil {
		t.Fatal(err)
	}
	want = []dag.Edge{
		{Parent: ids["tb320"], Child: ids["s02"]},
		{Parent: ids["tb650"], Child: ids["s02"]},
	}
	sortEdges(want)
	if !reflect.DeepEqual(res.Edges, want) {
		t.Errorf("Ep = %v, want %v", res.Edges, want)
	}
}

func TestEvalExample1SideEffect(t *testing.T) {
	// Example 1: insert into course[cno=CS650]//course[cno=CS320]/prereq.
	// The CS320 prereq node is shared with the top-level CS320 course, whose
	// occurrence is NOT below CS650 — a side effect must be detected.
	d, ids, text := fig1DAG(t)
	ev := newEval(t, d, text)
	res, err := ev.Eval(MustParse(`course[cno="CS650"]//course[cno="CS320"]/prereq`))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 1 || res.Selected[0] != ids["pre320"] {
		t.Fatalf("selected = %v", res.Selected)
	}
	if !res.HasInsertSideEffects() {
		t.Error("side effect not detected (Example 1)")
	}
	if len(res.InsertWitnesses) != 1 || res.InsertWitnesses[0] != ids["pre320"] {
		t.Errorf("witnesses = %v", res.InsertWitnesses)
	}

	// Inserting at ALL CS320 prereq occurrences (//course[cno=CS320]/prereq)
	// has no side effect: every occurrence is selected.
	res, err = ev.Eval(MustParse(`//course[cno="CS320"]/prereq`))
	if err != nil {
		t.Fatal(err)
	}
	if res.HasInsertSideEffects() {
		t.Errorf("unexpected side effects: %v", res.InsertWitnesses)
	}
}

func TestEvalDeleteSideEffect(t *testing.T) {
	// delete course[cno=CS650]/prereq/course[cno=CS320] (§2.1): the edge
	// (pre650, c320) occurs once and is selected — no side effect on the
	// edge itself. But restricting to the top-level CS320's prereq edge:
	// delete course[cno=CS320]/prereq/course[cno=CS240] — the edge
	// (pre320, c240) ALSO occurs inside CS650's copy of CS320, where the
	// path course[cno=CS320]/... does not select it (course step starts at
	// db). That occurrence is unselected -> side effect.
	d, ids, text := fig1DAG(t)
	ev := newEval(t, d, text)

	res, err := ev.Eval(MustParse(`course[cno="CS650"]/prereq/course[cno="CS320"]`))
	if err != nil {
		t.Fatal(err)
	}
	wantE := []dag.Edge{{Parent: ids["pre650"], Child: ids["c320"]}}
	if !reflect.DeepEqual(res.Edges, wantE) {
		t.Fatalf("Ep = %v, want %v", res.Edges, wantE)
	}
	if res.HasDeleteSideEffects() {
		t.Errorf("unexpected side effects: %v", res.DeleteWitnesses)
	}

	res, err = ev.Eval(MustParse(`course[cno="CS320"]/prereq/course[cno="CS240"]`))
	if err != nil {
		t.Fatal(err)
	}
	wantE = []dag.Edge{{Parent: ids["pre320"], Child: ids["c240"]}}
	if !reflect.DeepEqual(res.Edges, wantE) {
		t.Fatalf("Ep = %v, want %v", res.Edges, wantE)
	}
	if !res.HasDeleteSideEffects() {
		t.Error("side effect not detected: the CS320 subtree is shared under CS650")
	}
}

func TestEvalAgainstOracleFig1(t *testing.T) {
	d, _, text := fig1DAG(t)
	ev := newEval(t, d, text)
	or := newOracle(d, text)
	paths := []string{
		"course", "//course", "//student", "*", "//*", ".",
		`course[cno="CS650"]`, `//course[cno="CS320"]`,
		`course[cno="CS650"]//course[cno="CS320"]/prereq`,
		`//course[cno="CS320"]//student[sid="S02"]`,
		`//student[sid="S02"]`, `//takenBy/student`,
		`//course[prereq/course]`, `//course[not(prereq/course)]`,
		`//course[prereq/course and takenBy/student]`,
		`//course[prereq/course or takenBy/student]`,
		`//*[label()=student]`, `course/prereq//course`,
		`course[cno="CS320"]/prereq/course[cno="CS240"]`,
		`//prereq/course`, "course//student", "//cno",
		`course[takenBy/student[sid="S02"]]`,
	}
	for _, ps := range paths {
		p := MustParse(ps)
		got, err := ev.Eval(p)
		if err != nil {
			t.Errorf("%s: %v", ps, err)
			continue
		}
		want := or.eval(p)
		compareOracle(t, ps, got, want)
	}
}

func compareOracle(t *testing.T, label string, got *Result, want *oracleResult) {
	t.Helper()
	if !reflect.DeepEqual(got.Selected, want.selected) {
		t.Errorf("%s: selected %v, want %v", label, got.Selected, want.selected)
	}
	if !reflect.DeepEqual(got.Edges, want.edges) {
		t.Errorf("%s: Ep %v, want %v", label, got.Edges, want.edges)
	}
	if !reflect.DeepEqual(got.InsertWitnesses, want.insertWitnesses) {
		t.Errorf("%s: insert witnesses %v, want %v", label, got.InsertWitnesses, want.insertWitnesses)
	}
	if !reflect.DeepEqual(got.DeleteWitnesses, want.deleteWitnesses) {
		t.Errorf("%s: delete witnesses %v, want %v", label, got.DeleteWitnesses, want.deleteWitnesses)
	}
}

// Property test: on random DAGs with random paths, the DAG evaluator matches
// the tree oracle exactly (selection, Ep, and both side-effect kinds).
func TestEvalAgainstOracleRandom(t *testing.T) {
	labels := []string{"a", "b", "c"}
	values := []string{"x", "y"}

	genPath := func(rng *rand.Rand) string {
		var b []byte
		steps := 1 + rng.Intn(3)
		for i := 0; i < steps; i++ {
			switch rng.Intn(4) {
			case 0:
				b = append(b, "//"...)
			default:
				if i > 0 {
					b = append(b, '/')
				}
			}
			switch rng.Intn(5) {
			case 0:
				b = append(b, '*')
			default:
				b = append(b, labels[rng.Intn(len(labels))]...)
			}
			if rng.Intn(3) == 0 {
				b = append(b, '[')
				switch rng.Intn(4) {
				case 0:
					b = append(b, labels[rng.Intn(len(labels))]...)
				case 1:
					b = append(b, labels[rng.Intn(len(labels))]...)
					b = append(b, '=')
					b = append(b, '"')
					b = append(b, values[rng.Intn(len(values))]...)
					b = append(b, '"')
				case 2:
					b = append(b, "not("...)
					b = append(b, labels[rng.Intn(len(labels))]...)
					b = append(b, ')')
				case 3:
					b = append(b, labels[rng.Intn(len(labels))]...)
					b = append(b, " or "...)
					b = append(b, labels[rng.Intn(len(labels))]...)
				}
				b = append(b, ']')
			}
		}
		return string(b)
	}

	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := dag.New("db")
		var ids []dag.NodeID
		ids = append(ids, d.Root())
		texts := map[dag.NodeID]string{}
		n := 4 + rng.Intn(12)
		for i := 1; i <= n; i++ {
			typ := labels[rng.Intn(len(labels))]
			id, _ := d.AddNode(typ, relational.Tuple{relational.Int(int64(i))})
			if rng.Intn(2) == 0 {
				texts[id] = values[rng.Intn(len(values))]
			}
			// 1-2 parents among earlier nodes: creates sharing.
			for k := 0; k < 1+rng.Intn(2); k++ {
				d.AddEdge(ids[rng.Intn(len(ids))], id)
			}
			ids = append(ids, id)
		}
		text := func(id dag.NodeID) (string, bool) { s, ok := texts[id]; return s, ok }
		ev := newEval(t, d, text)
		or := newOracle(d, text)
		for trial := 0; trial < 6; trial++ {
			ps := genPath(rng)
			p, err := Parse(ps)
			if err != nil {
				continue
			}
			got, err := ev.Eval(p)
			if err != nil || got.Overflow {
				return false
			}
			want := or.eval(p)
			if !reflect.DeepEqual(got.Selected, want.selected) ||
				!reflect.DeepEqual(got.Edges, want.edges) ||
				!reflect.DeepEqual(got.InsertWitnesses, want.insertWitnesses) ||
				!reflect.DeepEqual(got.DeleteWitnesses, want.deleteWitnesses) {
				t.Logf("seed %d path %q:\n got  %v | %v | %v | %v\n want %v | %v | %v | %v",
					seed, ps,
					got.Selected, got.Edges, got.InsertWitnesses, got.DeleteWitnesses,
					want.selected, want.edges, want.insertWitnesses, want.deleteWitnesses)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEvalPathTooLong(t *testing.T) {
	d, _, text := fig1DAG(t)
	ev := newEval(t, d, text)
	long := "a"
	for i := 0; i < 70; i++ {
		long += "/a"
	}
	if _, err := ev.Eval(MustParse(long)); err == nil {
		t.Error("over-long path accepted")
	}
}

func TestEvalNilTextMakesComparisonsFalse(t *testing.T) {
	d, _, _ := fig1DAG(t)
	ev := newEval(t, d, nil)
	res, err := ev.Eval(MustParse(`course[cno="CS650"]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 0 {
		t.Errorf("selected = %v", res.Selected)
	}
}

func TestEvalSelectMatchesEval(t *testing.T) {
	d, _, text := fig1DAG(t)
	ev := newEval(t, d, text)
	paths := []string{
		"course", "//course", "//student", `course[cno="CS650"]//course[cno="CS320"]/prereq`,
		`//course[prereq/course]`, `//student[sid="S02"]`, "course/prereq//course",
	}
	for _, ps := range paths {
		p := MustParse(ps)
		full, err := ev.Eval(p)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := ev.EvalSelect(p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(full.Selected, fast.Selected) {
			t.Errorf("%s: selection differs: %v vs %v", ps, full.Selected, fast.Selected)
		}
		if !reflect.DeepEqual(full.Edges, fast.Edges) {
			t.Errorf("%s: Ep differs: %v vs %v", ps, full.Edges, fast.Edges)
		}
		if len(fast.InsertWitnesses) != 0 || len(fast.DeleteWitnesses) != 0 {
			t.Errorf("%s: EvalSelect must not report witnesses", ps)
		}
	}
}

// Property: EvalSelect's union-mask collapse preserves selection and Ep on
// random DAGs (transitions are bit-linear).
func TestEvalSelectProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := dag.New("db")
		ids := []dag.NodeID{d.Root()}
		labels := []string{"a", "b", "c"}
		for i := 1; i <= 12; i++ {
			id, _ := d.AddNode(labels[rng.Intn(3)], relational.Tuple{relational.Int(int64(i))})
			for k := 0; k < 1+rng.Intn(2); k++ {
				d.AddEdge(ids[rng.Intn(len(ids))], id)
			}
			ids = append(ids, id)
		}
		ev := newEval(t, d, nil)
		for _, ps := range []string{"//a", "//a//b", "a/b", "//*[a]", "a[not(b)]/c"} {
			p := MustParse(ps)
			full, err1 := ev.Eval(p)
			fast, err2 := ev.EvalSelect(p)
			if err1 != nil || err2 != nil {
				return false
			}
			if !reflect.DeepEqual(full.Selected, fast.Selected) ||
				!reflect.DeepEqual(full.Edges, fast.Edges) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
