package xpath

import (
	"fmt"
	"math/rand"
	"testing"

	"rxview/internal/dag"
	"rxview/internal/reach"
	"rxview/internal/relational"
)

// benchDAG builds a layered recursive DAG of roughly n nodes with shared
// subtrees and text values — the shape the evaluator sees in the synthetic
// serving workloads.
func benchDAG(n int) (*dag.DAG, *reach.Topo, func(dag.NodeID) (string, bool)) {
	rng := rand.New(rand.NewSource(5))
	d := dag.New("db")
	text := make(map[dag.NodeID]string)
	var prev []dag.NodeID
	prev = append(prev, d.Root())
	id := 0
	for len(text) < n {
		var layer []dag.NodeID
		width := 1 + rng.Intn(8)
		for i := 0; i < width && len(text) < n; i++ {
			c, _ := d.AddNode("C", relational.Tuple{relational.Int(int64(id))})
			id++
			text[c] = fmt.Sprintf("v%d", id%7)
			d.AddEdge(prev[rng.Intn(len(prev))], c)
			if rng.Intn(3) == 0 && len(prev) > 1 { // share: a second parent
				d.AddEdge(prev[rng.Intn(len(prev))], c)
			}
			layer = append(layer, c)
		}
		if len(layer) > 0 {
			prev = layer
		}
	}
	topo := reach.ComputeTopo(d)
	return d, topo, func(v dag.NodeID) (string, bool) {
		s, ok := text[v]
		return s, ok
	}
}

// BenchmarkEval measures the NFA evaluator's steady-state cost and
// allocations on a //-heavy path with a filter — run with -benchmem to see
// the scratch pool's effect (before pooling, every eval allocated its
// filter tables, a map per node for the state sets, and a *edgeInfo per
// edge).
func BenchmarkEval(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		d, topo, text := benchDAG(n)
		ev := &Evaluator{D: d, Topo: topo, Text: text}
		p, err := Parse(`//C[C]/C`)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ev.Eval(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEvalSelect measures the selection-only fast path.
func BenchmarkEvalSelect(b *testing.B) {
	d, topo, text := benchDAG(10000)
	ev := &Evaluator{D: d, Topo: topo, Text: text}
	p, err := Parse(`//C[C="v3"]`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ev.EvalSelect(p); err != nil {
			b.Fatal(err)
		}
	}
}
