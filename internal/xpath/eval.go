package xpath

import (
	"fmt"
	"sort"
	"sync"

	"rxview/internal/dag"
	"rxview/internal/reach"
)

// Evaluator evaluates paths of the fragment over a DAG-compressed view.
//
// The evaluation is the two-pass scheme of §3.2:
//
//   - a bottom-up pass computes, for every filter sub-expression q and node
//     v, whether q holds at v — dynamic programming along the topological
//     order L (children first), with the desc(q,·) recurrence for //;
//   - a top-down pass runs the normalized path as an NFA over root-to-node
//     paths: every node accumulates the set of distinct NFA state-sets that
//     tree occurrences (root paths) can arrive with. A node is in r[[p]] iff
//     some occurrence accepts; an update has side effects iff some
//     occurrence of an updated node does not accept — exactly the paper's
//     tree-unfolding semantics, computed on the DAG.
//
// Both passes are O(|p|·|V|) for the practical case of few distinct
// state-sets, matching the paper's complexity claim.
//
// D and Topo are read-only interfaces, so an Evaluator runs equally over
// the live view (*dag.DAG + *reach.Topo) and over a sealed snapshot epoch
// (*dag.Version + *reach.TopoVersion).
type Evaluator struct {
	D    dag.Reader
	Topo reach.Order
	// Text returns the text value of a node (PCDATA elements); nil means no
	// node has text, making all value comparisons false.
	Text func(dag.NodeID) (string, bool)
	// MaskLimit caps the number of distinct state-sets kept per node before
	// collapsing to their union. Selection and Ep(r) stay exact under
	// collapse; side-effect detection becomes conservative and the result's
	// Overflow flag is set. Default 1024.
	MaskLimit int
}

// Result is the outcome of evaluating a path p from the root.
type Result struct {
	// Selected is r[[p]]: nodes with at least one accepting occurrence, in
	// id order.
	Selected []dag.NodeID
	// Edges is Ep(r): edges (u,v) with v ∈ Selected such that p reaches v
	// through u (§3.2); deletions remove exactly these edges.
	Edges []dag.Edge
	// InsertWitnesses are the selected nodes that also have a non-accepting
	// occurrence: inserting under them changes unselected tree occurrences
	// too (the paper's side-effect set S for insertions).
	InsertWitnesses []dag.NodeID
	// DeleteWitnesses are the Ep(r) edges some of whose tree occurrences
	// are not selected: removing the shared edge changes those occurrences
	// as well.
	DeleteWitnesses []dag.Edge
	// Overflow reports that mask collapsing kicked in; side-effect
	// witnesses are then conservative (possibly over-reported).
	Overflow bool
}

// HasInsertSideEffects reports whether an insertion at r[[p]] would have XML
// side effects per §2.1.
func (r *Result) HasInsertSideEffects() bool {
	return len(r.InsertWitnesses) > 0 || r.Overflow
}

// HasDeleteSideEffects reports whether deleting the Ep(r) edges would have
// XML side effects per §2.1.
func (r *Result) HasDeleteSideEffects() bool {
	return len(r.DeleteWitnesses) > 0 || r.Overflow
}

// MaxSteps is the maximum number of normalized steps any evaluator accepts:
// the NFA states of a path with n steps are the bits 0..n of a uint64 mask,
// so n is capped at 62 (bit n is the accept state, leaving one bit of
// headroom). Every evaluation strategy enforces the same limit with the
// same *PathTooLongError, so the §3.2 strategy ablation cannot silently
// diverge on deep paths.
const MaxSteps = 62

// PathTooLongError reports a path that normalizes to more than MaxSteps
// steps. Both Evaluator and FrontierEvaluator return it identically.
type PathTooLongError struct {
	Steps int // normalized step count of the offending path
}

func (e *PathTooLongError) Error() string {
	return fmt.Sprintf("xpath: path too long: %d normalized steps (max %d)", e.Steps, MaxSteps)
}

// checkLen enforces MaxSteps uniformly across evaluators.
func checkLen(steps []NStep) error {
	if n := len(steps); n > MaxSteps {
		return &PathTooLongError{Steps: n}
	}
	return nil
}

// ---------- per-eval scratch ----------

// scratch recycles the evaluator's per-eval working memory — the Cap-sized
// filter truth tables and the per-node state-set index — across
// evaluations, via a package pool. A nil *scratch degrades to plain
// allocation (the frontier evaluator path, which does not manage table
// lifetimes). Results never alias scratch memory, so pooled buffers are
// safe to hand to the next evaluation on any goroutine.
type scratch struct {
	tables [][]bool  // free filter tables, any capacity
	masks  []maskSet // the node -> state-sets index, reused across evals
	arena  []uint64  // backing for small per-node mask sets
	off    int
	edges  map[dag.Edge]edgeInfo // reused edge accumulator
}

type edgeInfo struct {
	acc, rej bool
}

var scratchPool = sync.Pool{New: func() any { return &scratch{} }}

// table returns a zeroed []bool of length n, reusing a freed table when one
// is large enough.
func (sc *scratch) table(n int) []bool {
	if sc != nil {
		for i := len(sc.tables) - 1; i >= 0; i-- {
			if b := sc.tables[i]; cap(b) >= n {
				sc.tables = append(sc.tables[:i], sc.tables[i+1:]...)
				b = b[:n]
				clear(b)
				return b
			}
		}
	}
	return make([]bool, n)
}

// putTable returns a table to the free list.
func (sc *scratch) putTable(b []bool) {
	if sc != nil && b != nil {
		sc.tables = append(sc.tables, b)
	}
}

// maskIndex returns a zeroed []maskSet of length n, reusing the previous
// eval's backing array when large enough, and resets the mask arena — by
// now no slot of the previous eval is referenced anymore.
func (sc *scratch) maskIndex(n int) []maskSet {
	if sc == nil {
		return make([]maskSet, n)
	}
	if cap(sc.masks) < n {
		sc.masks = make([]maskSet, n)
	}
	s := sc.masks[:n]
	clear(s)
	sc.masks = s
	sc.off = 0
	return s
}

// maskSlot carves an empty 2-capacity mask set out of the arena: the
// overwhelmingly common case is one or two distinct state-sets per node, so
// most nodes never allocate. Appending past the capped slot migrates the
// set to the heap without touching its arena neighbors.
func (sc *scratch) maskSlot() maskSet {
	if sc == nil {
		return nil
	}
	if sc.off+2 > len(sc.arena) {
		sc.arena = make([]uint64, 1<<14)
		sc.off = 0
	}
	s := sc.arena[sc.off : sc.off : sc.off+2]
	sc.off += 2
	return s
}

// edgeAcc returns the reusable edge accumulator, emptied.
func (sc *scratch) edgeAcc() map[dag.Edge]edgeInfo {
	if sc == nil {
		return make(map[dag.Edge]edgeInfo)
	}
	if sc.edges == nil {
		sc.edges = make(map[dag.Edge]edgeInfo)
	} else {
		clear(sc.edges)
	}
	return sc.edges
}

// Eval evaluates the path and returns the selection, parent edges and
// side-effect witnesses.
func (ev *Evaluator) Eval(p *Path) (*Result, error) {
	steps := Normalize(p)
	if err := checkLen(steps); err != nil {
		return nil, err
	}
	sc := scratchPool.Get().(*scratch)
	nodes := ev.Topo.Nodes()
	filterVals := ev.evalFilters(steps, nodes, sc)
	res := ev.topDown(steps, nodes, filterVals, sc)
	for _, t := range filterVals {
		sc.putTable(t)
	}
	scratchPool.Put(sc)
	return res, nil
}

// EvalSelect computes only r[[p]] and Ep(r), skipping side-effect
// bookkeeping: state-sets collapse to a single union mask per node, which
// keeps selection and Ep exact (transitions are bit-linear) while touching
// every node at most once per pass. Use it for read-only queries; updates
// need Eval's side-effect detection. The result's side-effect fields are
// meaningless here.
func (ev *Evaluator) EvalSelect(p *Path) (*Result, error) {
	steps := Normalize(p)
	if err := checkLen(steps); err != nil {
		return nil, err
	}
	sc := scratchPool.Get().(*scratch)
	nodes := ev.Topo.Nodes()
	filterVals := ev.evalFilters(steps, nodes, sc)
	saved := ev.MaskLimit
	ev.MaskLimit = 1 // collapse eagerly: one union mask per node
	res := ev.topDown(steps, nodes, filterVals, sc)
	ev.MaskLimit = saved
	for _, t := range filterVals {
		sc.putTable(t)
	}
	scratchPool.Put(sc)
	res.InsertWitnesses, res.DeleteWitnesses = nil, nil
	return res, nil
}

// ---------- bottom-up pass ----------

// evalFilters computes the truth table (per node) of every filter
// sub-expression, in dependency order. Tables come from the scratch free
// list; the caller releases them (all map values) when done.
func (ev *Evaluator) evalFilters(steps []NStep, nodes []dag.NodeID, sc *scratch) map[Expr][]bool {
	tables := make(map[Expr][]bool)
	for _, q := range collectFilters(steps) {
		tables[q] = ev.filterTable(q, nodes, tables, sc)
	}
	return tables
}

func (ev *Evaluator) filterTable(q Expr, nodes []dag.NodeID, tables map[Expr][]bool, sc *scratch) []bool {
	capn := ev.D.Cap()
	switch t := q.(type) {
	case *ExprLabel:
		out := sc.table(capn)
		for _, v := range nodes {
			out[v] = ev.D.Type(v) == t.Label
		}
		return out
	case *ExprAnd:
		out := sc.table(capn)
		l, r := tables[t.L], tables[t.R]
		for i := range out {
			out[i] = l[i] && r[i]
		}
		return out
	case *ExprOr:
		out := sc.table(capn)
		l, r := tables[t.L], tables[t.R]
		for i := range out {
			out[i] = l[i] || r[i]
		}
		return out
	case *ExprNot:
		out := sc.table(capn)
		e := tables[t.E]
		for _, v := range nodes {
			out[v] = !e[v]
		}
		return out
	case *ExprPath:
		return ev.pathFilterTable(t, nodes, tables, sc)
	}
	return sc.table(capn)
}

// pathFilterTable computes val(p, v) (or val(p="s", v)) for all nodes by the
// suffix recurrence of §3.2.
func (ev *Evaluator) pathFilterTable(f *ExprPath, nodes []dag.NodeID, tables map[Expr][]bool, sc *scratch) []bool {
	steps := Normalize(f.Path)
	capn := ev.D.Cap()
	// nodes is in forward order: children before parents.

	// Terminal table: the path has been fully consumed at v.
	cur := sc.table(capn)
	if f.Cmp != nil {
		if ev.Text != nil {
			for _, v := range nodes {
				if s, ok := ev.Text(v); ok {
					cur[v] = s == *f.Cmp
				}
			}
		}
	} else {
		for _, v := range nodes {
			cur[v] = true
		}
	}

	for i := len(steps) - 1; i >= 0; i-- {
		next := sc.table(capn)
		switch steps[i].Kind {
		case StepSelf:
			if steps[i].Filter == nil {
				copy(next, cur)
			} else {
				fv := tables[steps[i].Filter]
				for _, v := range nodes {
					next[v] = fv[v] && cur[v]
				}
			}
		case StepLabel:
			for _, v := range nodes {
				for _, u := range ev.D.Children(v) {
					if ev.D.Type(u) == steps[i].Label && cur[u] {
						next[v] = true
						break
					}
				}
			}
		case StepWild:
			for _, v := range nodes {
				for _, u := range ev.D.Children(v) {
					if cur[u] {
						next[v] = true
						break
					}
				}
			}
		case StepDescOrSelf:
			// desc recurrence: val(//rest, v) = val(rest, v) ∨ ∃child u:
			// val(//rest, u). Forward L order makes children available.
			for _, v := range nodes {
				if cur[v] {
					next[v] = true
					continue
				}
				for _, u := range ev.D.Children(v) {
					if next[u] {
						next[v] = true
						break
					}
				}
			}
		}
		sc.putTable(cur)
		cur = next
	}
	return cur
}

// ---------- top-down pass ----------

// maskSet is the set of distinct NFA state-set masks arriving at one node.
// Nodes rarely accumulate more than a handful of masks, so a linear-scan
// slice beats a per-node map and recycles through the eval scratch.
type maskSet []uint64

func (s maskSet) contains(m uint64) bool {
	for _, mm := range s {
		if mm == m {
			return true
		}
	}
	return false
}

func (ev *Evaluator) topDown(steps []NStep, list []dag.NodeID, filterVals map[Expr][]bool, sc *scratch) *Result {
	n := len(steps)
	accept := uint64(1) << uint(n)
	limit := ev.MaskLimit
	if limit <= 0 {
		limit = 1024
	}

	filterAt := func(q Expr, v dag.NodeID) bool {
		if q == nil {
			return true
		}
		return filterVals[q][v]
	}
	// closure adds states reachable by ε moves at node v: a satisfied ε[q]
	// step and the self part of //. Bits only propagate upward, so one
	// low-to-high sweep suffices.
	closure := func(mask uint64, v dag.NodeID) uint64 {
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			switch steps[i].Kind {
			case StepSelf:
				if filterAt(steps[i].Filter, v) {
					mask |= 1 << uint(i+1)
				}
			case StepDescOrSelf:
				mask |= 1 << uint(i+1)
			}
		}
		return mask
	}
	// move consumes the child step into node u.
	move := func(mask uint64, u dag.NodeID) uint64 {
		var out uint64
		for i := 0; i <= n; i++ {
			if mask&(1<<uint(i)) == 0 || i == n {
				continue
			}
			switch steps[i].Kind {
			case StepLabel:
				if ev.D.Type(u) == steps[i].Label {
					out |= 1 << uint(i+1)
				}
			case StepWild:
				out |= 1 << uint(i+1)
			case StepDescOrSelf:
				out |= 1 << uint(i) // descend, stay before //
			}
		}
		return closure(out, u)
	}

	res := &Result{}
	capn := ev.D.Cap()
	D := sc.maskIndex(capn)
	root := ev.D.Root()
	D[root] = append(sc.maskSlot(), closure(1, root))

	addMask := func(v dag.NodeID, m uint64) {
		set := D[v]
		if set.contains(m) {
			return
		}
		if set == nil {
			set = sc.maskSlot()
		}
		set = append(set, m)
		if len(set) > limit {
			// Collapse to the union: transitions are bit-linear, so
			// selection and Ep stay exact; side effects become
			// conservative.
			var union uint64
			for _, mm := range set {
				union |= mm
			}
			set = append(set[:0], union)
			res.Overflow = true
		}
		D[v] = set
	}

	edgeAcc := sc.edgeAcc()

	for k := len(list) - 1; k >= 0; k-- { // backward order: ancestors first
		u := list[k]
		if len(D[u]) == 0 {
			continue // unreachable from root
		}
		for _, m := range D[u] {
			for _, c := range ev.D.Children(u) {
				m2 := move(m, c)
				addMask(c, m2)
				e := dag.Edge{Parent: u, Child: c}
				info := edgeAcc[e]
				if m2&accept != 0 {
					info.acc = true
				} else {
					info.rej = true
				}
				edgeAcc[e] = info
			}
		}
	}

	for _, v := range list {
		sel, rej := false, false
		for _, m := range D[v] {
			if m&accept != 0 {
				sel = true
			} else {
				rej = true
			}
		}
		if sel {
			res.Selected = append(res.Selected, v)
			if rej {
				res.InsertWitnesses = append(res.InsertWitnesses, v)
			}
		}
	}
	sort.Slice(res.Selected, func(i, j int) bool { return res.Selected[i] < res.Selected[j] })
	sort.Slice(res.InsertWitnesses, func(i, j int) bool { return res.InsertWitnesses[i] < res.InsertWitnesses[j] })

	for e, info := range edgeAcc {
		if info.acc {
			res.Edges = append(res.Edges, e)
			if info.rej {
				res.DeleteWitnesses = append(res.DeleteWitnesses, e)
			}
		}
	}
	sortEdges(res.Edges)
	sortEdges(res.DeleteWitnesses)
	return res
}

func sortEdges(es []dag.Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Parent != es[j].Parent {
			return es[i].Parent < es[j].Parent
		}
		return es[i].Child < es[j].Child
	})
}
