package xpath

import (
	"fmt"
	"sort"

	"rxview/internal/dag"
	"rxview/internal/reach"
)

// Evaluator evaluates paths of the fragment over a DAG-compressed view.
//
// The evaluation is the two-pass scheme of §3.2:
//
//   - a bottom-up pass computes, for every filter sub-expression q and node
//     v, whether q holds at v — dynamic programming along the topological
//     order L (children first), with the desc(q,·) recurrence for //;
//   - a top-down pass runs the normalized path as an NFA over root-to-node
//     paths: every node accumulates the set of distinct NFA state-sets that
//     tree occurrences (root paths) can arrive with. A node is in r[[p]] iff
//     some occurrence accepts; an update has side effects iff some
//     occurrence of an updated node does not accept — exactly the paper's
//     tree-unfolding semantics, computed on the DAG.
//
// Both passes are O(|p|·|V|) for the practical case of few distinct
// state-sets, matching the paper's complexity claim.
type Evaluator struct {
	D    *dag.DAG
	Topo *reach.Topo
	// Text returns the text value of a node (PCDATA elements); nil means no
	// node has text, making all value comparisons false.
	Text func(dag.NodeID) (string, bool)
	// MaskLimit caps the number of distinct state-sets kept per node before
	// collapsing to their union. Selection and Ep(r) stay exact under
	// collapse; side-effect detection becomes conservative and the result's
	// Overflow flag is set. Default 1024.
	MaskLimit int
}

// Result is the outcome of evaluating a path p from the root.
type Result struct {
	// Selected is r[[p]]: nodes with at least one accepting occurrence, in
	// id order.
	Selected []dag.NodeID
	// Edges is Ep(r): edges (u,v) with v ∈ Selected such that p reaches v
	// through u (§3.2); deletions remove exactly these edges.
	Edges []dag.Edge
	// InsertWitnesses are the selected nodes that also have a non-accepting
	// occurrence: inserting under them changes unselected tree occurrences
	// too (the paper's side-effect set S for insertions).
	InsertWitnesses []dag.NodeID
	// DeleteWitnesses are the Ep(r) edges some of whose tree occurrences
	// are not selected: removing the shared edge changes those occurrences
	// as well.
	DeleteWitnesses []dag.Edge
	// Overflow reports that mask collapsing kicked in; side-effect
	// witnesses are then conservative (possibly over-reported).
	Overflow bool
}

// HasInsertSideEffects reports whether an insertion at r[[p]] would have XML
// side effects per §2.1.
func (r *Result) HasInsertSideEffects() bool {
	return len(r.InsertWitnesses) > 0 || r.Overflow
}

// HasDeleteSideEffects reports whether deleting the Ep(r) edges would have
// XML side effects per §2.1.
func (r *Result) HasDeleteSideEffects() bool {
	return len(r.DeleteWitnesses) > 0 || r.Overflow
}

// MaxSteps is the maximum number of normalized steps any evaluator accepts:
// the NFA states of a path with n steps are the bits 0..n of a uint64 mask,
// so n is capped at 62 (bit n is the accept state, leaving one bit of
// headroom). Every evaluation strategy enforces the same limit with the
// same *PathTooLongError, so the §3.2 strategy ablation cannot silently
// diverge on deep paths.
const MaxSteps = 62

// PathTooLongError reports a path that normalizes to more than MaxSteps
// steps. Both Evaluator and FrontierEvaluator return it identically.
type PathTooLongError struct {
	Steps int // normalized step count of the offending path
}

func (e *PathTooLongError) Error() string {
	return fmt.Sprintf("xpath: path too long: %d normalized steps (max %d)", e.Steps, MaxSteps)
}

// checkLen enforces MaxSteps uniformly across evaluators.
func checkLen(steps []NStep) error {
	if n := len(steps); n > MaxSteps {
		return &PathTooLongError{Steps: n}
	}
	return nil
}

// Eval evaluates the path and returns the selection, parent edges and
// side-effect witnesses.
func (ev *Evaluator) Eval(p *Path) (*Result, error) {
	steps := Normalize(p)
	if err := checkLen(steps); err != nil {
		return nil, err
	}
	filterVals := ev.evalFilters(steps)
	return ev.topDown(steps, filterVals), nil
}

// EvalSelect computes only r[[p]] and Ep(r), skipping side-effect
// bookkeeping: state-sets collapse to a single union mask per node, which
// keeps selection and Ep exact (transitions are bit-linear) while touching
// every node at most once per pass. Use it for read-only queries; updates
// need Eval's side-effect detection. The result's side-effect fields are
// meaningless here.
func (ev *Evaluator) EvalSelect(p *Path) (*Result, error) {
	steps := Normalize(p)
	if err := checkLen(steps); err != nil {
		return nil, err
	}
	filterVals := ev.evalFilters(steps)
	saved := ev.MaskLimit
	ev.MaskLimit = 1 // collapse eagerly: one union mask per node
	res := ev.topDown(steps, filterVals)
	ev.MaskLimit = saved
	res.InsertWitnesses, res.DeleteWitnesses = nil, nil
	return res, nil
}

// ---------- bottom-up pass ----------

// evalFilters computes the truth table (per node) of every filter
// sub-expression, in dependency order.
func (ev *Evaluator) evalFilters(steps []NStep) map[Expr][]bool {
	tables := make(map[Expr][]bool)
	for _, q := range collectFilters(steps) {
		tables[q] = ev.filterTable(q, tables)
	}
	return tables
}

func (ev *Evaluator) filterTable(q Expr, tables map[Expr][]bool) []bool {
	capn := ev.D.Cap()
	out := make([]bool, capn)
	switch t := q.(type) {
	case *ExprLabel:
		for _, v := range ev.Topo.Nodes() {
			out[v] = ev.D.Type(v) == t.Label
		}
	case *ExprAnd:
		l, r := tables[t.L], tables[t.R]
		for i := range out {
			out[i] = l[i] && r[i]
		}
	case *ExprOr:
		l, r := tables[t.L], tables[t.R]
		for i := range out {
			out[i] = l[i] || r[i]
		}
	case *ExprNot:
		e := tables[t.E]
		for _, v := range ev.Topo.Nodes() {
			out[v] = !e[v]
		}
	case *ExprPath:
		out = ev.pathFilterTable(t, tables)
	}
	return out
}

// pathFilterTable computes val(p, v) (or val(p="s", v)) for all nodes by the
// suffix recurrence of §3.2.
func (ev *Evaluator) pathFilterTable(f *ExprPath, tables map[Expr][]bool) []bool {
	steps := Normalize(f.Path)
	capn := ev.D.Cap()
	nodes := ev.Topo.Nodes() // forward order: children before parents

	// Terminal table: the path has been fully consumed at v.
	cur := make([]bool, capn)
	if f.Cmp != nil {
		if ev.Text != nil {
			for _, v := range nodes {
				if s, ok := ev.Text(v); ok {
					cur[v] = s == *f.Cmp
				}
			}
		}
	} else {
		for _, v := range nodes {
			cur[v] = true
		}
	}

	for i := len(steps) - 1; i >= 0; i-- {
		next := make([]bool, capn)
		switch steps[i].Kind {
		case StepSelf:
			if steps[i].Filter == nil {
				copy(next, cur)
			} else {
				fv := tables[steps[i].Filter]
				for _, v := range nodes {
					next[v] = fv[v] && cur[v]
				}
			}
		case StepLabel:
			for _, v := range nodes {
				for _, u := range ev.D.Children(v) {
					if ev.D.Type(u) == steps[i].Label && cur[u] {
						next[v] = true
						break
					}
				}
			}
		case StepWild:
			for _, v := range nodes {
				for _, u := range ev.D.Children(v) {
					if cur[u] {
						next[v] = true
						break
					}
				}
			}
		case StepDescOrSelf:
			// desc recurrence: val(//rest, v) = val(rest, v) ∨ ∃child u:
			// val(//rest, u). Forward L order makes children available.
			for _, v := range nodes {
				if cur[v] {
					next[v] = true
					continue
				}
				for _, u := range ev.D.Children(v) {
					if next[u] {
						next[v] = true
						break
					}
				}
			}
		}
		cur = next
	}
	return cur
}

// ---------- top-down pass ----------

type maskSet map[uint64]struct{}

func (ev *Evaluator) topDown(steps []NStep, filterVals map[Expr][]bool) *Result {
	n := len(steps)
	accept := uint64(1) << uint(n)
	limit := ev.MaskLimit
	if limit <= 0 {
		limit = 1024
	}

	filterAt := func(q Expr, v dag.NodeID) bool {
		if q == nil {
			return true
		}
		return filterVals[q][v]
	}
	// closure adds states reachable by ε moves at node v: a satisfied ε[q]
	// step and the self part of //. Bits only propagate upward, so one
	// low-to-high sweep suffices.
	closure := func(mask uint64, v dag.NodeID) uint64 {
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			switch steps[i].Kind {
			case StepSelf:
				if filterAt(steps[i].Filter, v) {
					mask |= 1 << uint(i+1)
				}
			case StepDescOrSelf:
				mask |= 1 << uint(i+1)
			}
		}
		return mask
	}
	// move consumes the child step into node u.
	move := func(mask uint64, u dag.NodeID) uint64 {
		var out uint64
		for i := 0; i <= n; i++ {
			if mask&(1<<uint(i)) == 0 || i == n {
				continue
			}
			switch steps[i].Kind {
			case StepLabel:
				if ev.D.Type(u) == steps[i].Label {
					out |= 1 << uint(i+1)
				}
			case StepWild:
				out |= 1 << uint(i+1)
			case StepDescOrSelf:
				out |= 1 << uint(i) // descend, stay before //
			}
		}
		return closure(out, u)
	}

	res := &Result{}
	capn := ev.D.Cap()
	D := make([]maskSet, capn)
	root := ev.D.Root()
	D[root] = maskSet{closure(1, root): {}}

	addMask := func(v dag.NodeID, m uint64) {
		if D[v] == nil {
			D[v] = maskSet{}
		}
		D[v][m] = struct{}{}
		if len(D[v]) > limit {
			// Collapse to the union: transitions are bit-linear, so
			// selection and Ep stay exact; side effects become
			// conservative.
			var union uint64
			for mm := range D[v] {
				union |= mm
			}
			D[v] = maskSet{union: {}}
			res.Overflow = true
		}
	}

	type edgeInfo struct {
		acc, rej bool
	}
	edgeAcc := make(map[dag.Edge]*edgeInfo)

	list := ev.Topo.Nodes()
	for k := len(list) - 1; k >= 0; k-- { // backward order: ancestors first
		u := list[k]
		if D[u] == nil {
			continue // unreachable from root
		}
		for m := range D[u] {
			for _, c := range ev.D.Children(u) {
				m2 := move(m, c)
				addMask(c, m2)
				e := dag.Edge{Parent: u, Child: c}
				info := edgeAcc[e]
				if info == nil {
					info = &edgeInfo{}
					edgeAcc[e] = info
				}
				if m2&accept != 0 {
					info.acc = true
				} else {
					info.rej = true
				}
			}
		}
	}

	for _, v := range list {
		if D[v] == nil {
			continue
		}
		sel, rej := false, false
		for m := range D[v] {
			if m&accept != 0 {
				sel = true
			} else {
				rej = true
			}
		}
		if sel {
			res.Selected = append(res.Selected, v)
			if rej {
				res.InsertWitnesses = append(res.InsertWitnesses, v)
			}
		}
	}
	sort.Slice(res.Selected, func(i, j int) bool { return res.Selected[i] < res.Selected[j] })
	sort.Slice(res.InsertWitnesses, func(i, j int) bool { return res.InsertWitnesses[i] < res.InsertWitnesses[j] })

	for e, info := range edgeAcc {
		if info.acc {
			res.Edges = append(res.Edges, e)
			if info.rej {
				res.DeleteWitnesses = append(res.DeleteWitnesses, e)
			}
		}
	}
	sortEdges(res.Edges)
	sortEdges(res.DeleteWitnesses)
	return res
}

func sortEdges(es []dag.Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Parent != es[j].Parent {
			return es[i].Parent < es[j].Parent
		}
		return es[i].Child < es[j].Child
	})
}
