// Package xpath implements the XPath fragment of the paper (§2.1):
//
//	p ::= ε | A | * | // | p/p | p[q]
//	q ::= p | p = "s" | label() = A | q ∧ q | q ∨ q | ¬q
//
// and its evaluation over DAG-compressed XML views stored with package dag
// (§3.2): a bottom-up pass computes filter values by dynamic programming
// along the topological order L, and a top-down pass computes the selected
// node set r[[p]], the parent-edge set Ep(r), and the side-effect witnesses S.
package xpath

import "strings"

// StepKind classifies a path step.
type StepKind uint8

// Step kinds of the normal form η ::= ε[q] | A | * | //.
const (
	StepSelf       StepKind = iota // ε (with optional filters)
	StepLabel                      // child step with a label test
	StepWild                       // child step, any label
	StepDescOrSelf                 // //
)

// Step is one parsed path step with its filters.
type Step struct {
	Kind    StepKind
	Label   string // for StepLabel
	Filters []Expr
}

// Path is a parsed XPath expression. Evaluation is always anchored at the
// view root (r[[p]] in the paper); inside filters, paths are relative to the
// context node.
type Path struct {
	Steps []Step
}

// Expr is a filter expression q.
type Expr interface {
	isExpr()
	String() string
}

// ExprPath is an existence filter p, or a value comparison p = "s" when Cmp
// is non-nil. An empty path with a comparison tests the context node's own
// text value (e.g. the paper's //student[sid=S02] after parsing sid as a
// child path — a bare `.="x"` form is also accepted).
type ExprPath struct {
	Path *Path
	Cmp  *string
}

// ExprLabel is the filter label() = A.
type ExprLabel struct {
	Label string
}

// ExprAnd is q1 ∧ q2.
type ExprAnd struct{ L, R Expr }

// ExprOr is q1 ∨ q2.
type ExprOr struct{ L, R Expr }

// ExprNot is ¬q.
type ExprNot struct{ E Expr }

func (*ExprPath) isExpr()  {}
func (*ExprLabel) isExpr() {}
func (*ExprAnd) isExpr()   {}
func (*ExprOr) isExpr()    {}
func (*ExprNot) isExpr()   {}

func (e *ExprPath) String() string {
	if e.Cmp != nil {
		return e.Path.String() + "=\"" + *e.Cmp + "\""
	}
	return e.Path.String()
}
func (e *ExprLabel) String() string { return "label()=" + e.Label }
func (e *ExprAnd) String() string   { return "(" + e.L.String() + " and " + e.R.String() + ")" }
func (e *ExprOr) String() string    { return "(" + e.L.String() + " or " + e.R.String() + ")" }
func (e *ExprNot) String() string   { return "not(" + e.E.String() + ")" }

// String renders the path in source syntax.
func (p *Path) String() string {
	if p == nil || len(p.Steps) == 0 {
		return "."
	}
	var b strings.Builder
	for i, s := range p.Steps {
		switch s.Kind {
		case StepDescOrSelf:
			b.WriteString("//")
		case StepSelf:
			if i > 0 && p.Steps[i-1].Kind != StepDescOrSelf {
				b.WriteByte('/')
			}
			b.WriteByte('.')
		default:
			if i > 0 && p.Steps[i-1].Kind != StepDescOrSelf {
				b.WriteByte('/')
			}
			if s.Kind == StepWild {
				b.WriteByte('*')
			} else {
				b.WriteString(s.Label)
			}
		}
		for _, f := range s.Filters {
			b.WriteByte('[')
			b.WriteString(f.String())
			b.WriteByte(']')
		}
	}
	return b.String()
}

// LastLabel returns the label of the final labeled step, if the path ends
// with one (after trailing filters); update validation uses it to know the
// element type being targeted.
func (p *Path) LastLabel() (string, bool) {
	for i := len(p.Steps) - 1; i >= 0; i-- {
		switch p.Steps[i].Kind {
		case StepLabel:
			return p.Steps[i].Label, true
		case StepSelf:
			continue // trailing filter step
		default:
			return "", false
		}
	}
	return "", false
}
