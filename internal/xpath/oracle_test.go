package xpath

// The tree oracle: evaluate the paper's XPath fragment over the *unfolded*
// tree view with plain recursive semantics, tracking which DAG node each
// tree occurrence came from. The DAG evaluator must agree on r[[p]], Ep(r)
// and side effects — that is the definition of correctness in §2.1/§3.2.

import (
	"sort"

	"rxview/internal/dag"
)

type occ struct {
	id       dag.NodeID
	parent   *occ
	children []*occ
}

func unfoldOcc(d *dag.DAG, id dag.NodeID, parent *occ, budget *int) *occ {
	if *budget <= 0 {
		panic("oracle: tree too large")
	}
	*budget--
	o := &occ{id: id, parent: parent}
	for _, c := range d.Children(id) {
		o.children = append(o.children, unfoldOcc(d, c, o, budget))
	}
	return o
}

func collectOccs(o *occ, into map[dag.NodeID][]*occ) {
	into[o.id] = append(into[o.id], o)
	for _, c := range o.children {
		collectOccs(c, into)
	}
}

type oracle struct {
	d    *dag.DAG
	text func(dag.NodeID) (string, bool)
	root *occ
	all  map[dag.NodeID][]*occ
}

func newOracle(d *dag.DAG, text func(dag.NodeID) (string, bool)) *oracle {
	budget := 300000
	root := unfoldOcc(d, d.Root(), nil, &budget)
	all := map[dag.NodeID][]*occ{}
	collectOccs(root, all)
	return &oracle{d: d, text: text, root: root, all: all}
}

func (or *oracle) evalSteps(steps []NStep, ctx []*occ) []*occ {
	cur := map[*occ]bool{}
	for _, o := range ctx {
		cur[o] = true
	}
	for _, s := range steps {
		next := map[*occ]bool{}
		switch s.Kind {
		case StepSelf:
			for o := range cur {
				if s.Filter == nil || or.evalFilter(s.Filter, o) {
					next[o] = true
				}
			}
		case StepLabel:
			for o := range cur {
				for _, c := range o.children {
					if or.d.Type(c.id) == s.Label {
						next[c] = true
					}
				}
			}
		case StepWild:
			for o := range cur {
				for _, c := range o.children {
					next[c] = true
				}
			}
		case StepDescOrSelf:
			var stack []*occ
			for o := range cur {
				stack = append(stack, o)
			}
			for len(stack) > 0 {
				o := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if !next[o] {
					next[o] = true
					stack = append(stack, o.children...)
				}
			}
		}
		cur = next
	}
	out := make([]*occ, 0, len(cur))
	for o := range cur {
		out = append(out, o)
	}
	return out
}

func (or *oracle) evalFilter(q Expr, o *occ) bool {
	switch t := q.(type) {
	case *ExprLabel:
		return or.d.Type(o.id) == t.Label
	case *ExprAnd:
		return or.evalFilter(t.L, o) && or.evalFilter(t.R, o)
	case *ExprOr:
		return or.evalFilter(t.L, o) || or.evalFilter(t.R, o)
	case *ExprNot:
		return !or.evalFilter(t.E, o)
	case *ExprPath:
		matches := or.evalSteps(Normalize(t.Path), []*occ{o})
		if t.Cmp == nil {
			return len(matches) > 0
		}
		for _, m := range matches {
			if or.text != nil {
				if s, ok := or.text(m.id); ok && s == *t.Cmp {
					return true
				}
			}
		}
		return false
	}
	return false
}

// oracleResult mirrors Result computed over the tree.
type oracleResult struct {
	selected        []dag.NodeID
	edges           []dag.Edge
	insertWitnesses []dag.NodeID
	deleteWitnesses []dag.Edge
}

func (or *oracle) eval(p *Path) *oracleResult {
	matched := or.evalSteps(Normalize(p), []*occ{or.root})
	matchedSet := map[*occ]bool{}
	for _, o := range matched {
		matchedSet[o] = true
	}
	selIDs := map[dag.NodeID]bool{}
	for _, o := range matched {
		selIDs[o.id] = true
	}
	res := &oracleResult{}
	for id := range selIDs {
		res.selected = append(res.selected, id)
		// Insert side effect: some occurrence of id is not matched.
		for _, o := range or.all[id] {
			if !matchedSet[o] {
				res.insertWitnesses = append(res.insertWitnesses, id)
				break
			}
		}
	}
	// Ep: edges through which a match is reached.
	edgeSet := map[dag.Edge]bool{}
	for _, o := range matched {
		if o.parent != nil {
			edgeSet[dag.Edge{Parent: o.parent.id, Child: o.id}] = true
		}
	}
	for e := range edgeSet {
		res.edges = append(res.edges, e)
		// Delete side effect: some occurrence of the edge is not matched.
		for _, o := range or.all[e.Child] {
			if o.parent != nil && o.parent.id == e.Parent && !matchedSet[o] {
				res.deleteWitnesses = append(res.deleteWitnesses, e)
				break
			}
		}
	}
	sortIDs(res.selected)
	sortIDs(res.insertWitnesses)
	sortEdges(res.edges)
	sortEdges(res.deleteWitnesses)
	return res
}

func sortIDs(ids []dag.NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
