package xpath

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheParseHitsAndErrors(t *testing.T) {
	c := NewCache(8)
	p1, err := c.Parse(`//a/b`)
	if err != nil || p1 == nil {
		t.Fatalf("parse: %v", err)
	}
	p2, err := c.Parse(`//a/b`)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("repeat parse did not return the cached path")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("hits=%d misses=%d", hits, misses)
	}

	// Errors are cached too: same error value, no second miss.
	_, err1 := c.Parse(`//a[`)
	if err1 == nil {
		t.Fatal("bad path accepted")
	}
	_, err2 := c.Parse(`//a[`)
	if err1 != err2 {
		t.Error("parse error not served from cache")
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := NewCache(2)
	if _, err := c.Parse(`/a`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Parse(`/b`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Parse(`/a`); err != nil { // refresh /a
		t.Fatal(err)
	}
	if _, err := c.Parse(`/c`); err != nil { // evicts /b
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	h0, _ := c.Stats()
	if _, err := c.Parse(`/a`); err != nil {
		t.Fatal(err)
	}
	if h1, _ := c.Stats(); h1 != h0+1 {
		t.Error("/a should have survived eviction")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := c.Parse(fmt.Sprintf(`//t%d/a`, i%40)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Errorf("cache exceeded capacity: %d", c.Len())
	}
}
