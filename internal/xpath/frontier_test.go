package xpath

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"rxview/internal/dag"
	"rxview/internal/reach"
	"rxview/internal/relational"
)

func newFrontier(t testing.TB, d *dag.DAG, text func(dag.NodeID) (string, bool)) *FrontierEvaluator {
	t.Helper()
	ix := reach.BuildIndex(d)
	return &FrontierEvaluator{D: d, Topo: ix.Topo, Matrix: ix.Matrix, Text: text}
}

func TestFrontierMatchesNFAOnFig1(t *testing.T) {
	d, _, text := fig1DAG(t)
	nfa := newEval(t, d, text)
	fr := newFrontier(t, d, text)
	paths := []string{
		"course", "//course", "//student", "*", "//*",
		`course[cno="CS650"]`, `//course[cno="CS320"]`,
		`course[cno="CS650"]//course[cno="CS320"]/prereq`,
		`//course[cno="CS320"]//student[sid="S02"]`,
		`//student[sid="S02"]`, `//takenBy/student`,
		`//course[prereq/course]`, `//course[not(prereq/course)]`,
		"course/prereq//course", "//prereq/course", "course//student",
		`course[cno="CS320"]/prereq/course[cno="CS240"]`,
	}
	for _, ps := range paths {
		p := MustParse(ps)
		a, err := nfa.Eval(p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fr.Eval(p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Selected, b.Selected) {
			t.Errorf("%s: selection %v vs %v", ps, a.Selected, b.Selected)
		}
		if !reflect.DeepEqual(a.Edges, b.Edges) {
			t.Errorf("%s: Ep %v vs %v", ps, a.Edges, b.Edges)
		}
		// The frontier S flags the intermediate nodes where sharing occurs
		// (the paper's granularity), so it is a boolean over-approximation:
		// an empty S guarantees no exact witnesses exist.
		if len(b.InsertWitnesses) == 0 && len(a.InsertWitnesses) > 0 {
			t.Errorf("%s: frontier S empty but exact witnesses %v",
				ps, a.InsertWitnesses)
		}
	}
}

// Property: frontier and NFA evaluators agree on selection and Ep over
// random DAGs and random paths, and the frontier's per-step S contains the
// exact witnesses.
func TestFrontierMatchesNFARandom(t *testing.T) {
	labels := []string{"a", "b", "c"}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := dag.New("db")
		ids := []dag.NodeID{d.Root()}
		for i := 1; i <= 14; i++ {
			id, _ := d.AddNode(labels[rng.Intn(3)], relational.Tuple{relational.Int(int64(i))})
			for k := 0; k < 1+rng.Intn(2); k++ {
				d.AddEdge(ids[rng.Intn(len(ids))], id)
			}
			ids = append(ids, id)
		}
		nfa := newEval(t, d, nil)
		fr := newFrontier(t, d, nil)
		for _, ps := range []string{
			"//a", "//a//b", "a/b", "a//b/c", "//*[a]", "a[not(b)]/c",
			"//a[b and c]", "a/b/c", "//b[label()=b]",
		} {
			p := MustParse(ps)
			a, e1 := nfa.Eval(p)
			b, e2 := fr.Eval(p)
			if e1 != nil || e2 != nil {
				return false
			}
			if !reflect.DeepEqual(a.Selected, b.Selected) || !reflect.DeepEqual(a.Edges, b.Edges) {
				t.Logf("seed %d path %s: %v|%v vs %v|%v", seed, ps,
					a.Selected, a.Edges, b.Selected, b.Edges)
				return false
			}
			if len(b.InsertWitnesses) == 0 && len(a.InsertWitnesses) > 0 {
				t.Logf("seed %d path %s: frontier S empty but exact witnesses %v",
					seed, ps, a.InsertWitnesses)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestEvaluatorParityPathTooLong extends the evaluator-parity oracle to
// paths beyond MaxSteps: both strategies must reject a >62-step path with
// the same typed *PathTooLongError, so the §3.2 strategy ablation cannot
// silently diverge on deep paths.
func TestEvaluatorParityPathTooLong(t *testing.T) {
	d, _, text := fig1DAG(t)
	nfa := newEval(t, d, text)
	fr := newFrontier(t, d, text)
	long := "a"
	for i := 0; i < MaxSteps+8; i++ {
		long += "/a"
	}
	p := MustParse(long)
	steps := len(Normalize(p))
	if steps <= MaxSteps {
		t.Fatalf("test path normalizes to %d steps, want > %d", steps, MaxSteps)
	}

	_, errNFA := nfa.Eval(p)
	_, errSel := nfa.EvalSelect(p)
	_, errFr := fr.Eval(p)
	for name, err := range map[string]error{"nfa": errNFA, "nfa-select": errSel, "frontier": errFr} {
		var tooLong *PathTooLongError
		if !errors.As(err, &tooLong) {
			t.Fatalf("%s: err = %v, want *PathTooLongError", name, err)
		}
		if tooLong.Steps != steps {
			t.Errorf("%s: Steps = %d, want %d", name, tooLong.Steps, steps)
		}
	}
	if errNFA.Error() != errFr.Error() {
		t.Errorf("evaluators diverge on deep paths: %q vs %q", errNFA, errFr)
	}

	// Exactly MaxSteps is accepted by both, and they agree.
	ok := "*"
	for i := 1; i < MaxSteps; i++ {
		ok += "/*"
	}
	pOK := MustParse(ok)
	a, err := nfa.Eval(pOK)
	if err != nil {
		t.Fatalf("nfa at limit: %v", err)
	}
	b, err := fr.Eval(pOK)
	if err != nil {
		t.Fatalf("frontier at limit: %v", err)
	}
	if !reflect.DeepEqual(a.Selected, b.Selected) {
		t.Errorf("selection at the limit: %v vs %v", a.Selected, b.Selected)
	}
}
