package xpath

import (
	"sort"

	"rxview/internal/dag"
	"rxview/internal/reach"
)

// FrontierEvaluator is the paper-literal top-down evaluation of §3.2:
// starting from the root it computes the node set Ci reached after each
// normalized step ηi, pruning with the bottom-up filter values, and uses the
// reachability matrix M to expand "//" steps ("these nodes can be easily
// found ... by means of the reachability matrix M when ηi is //").
//
// Selection (r[[p]]) and Ep(r) agree with Evaluator.Eval; side effects are
// detected with the paper's per-step approximation — S collects the Ci
// nodes whose parents (child steps) or ancestors (// steps) are not reached
// via p. S flags the intermediate nodes where sharing occurs, so it relates
// to the exact occurrence-level detector as a boolean screen: an empty S
// guarantees the update has no side effects, while a non-empty S may
// over-report (the shared region may not reach an actual target). The
// NFA-based Evaluator is the default; this one exists for fidelity to the
// paper's use of M during evaluation and for the strategy ablation.
type FrontierEvaluator struct {
	D      *dag.DAG
	Topo   *reach.Topo
	Matrix *reach.Matrix
	Text   func(dag.NodeID) (string, bool)
}

// Eval runs the two passes and returns selection, Ep(r), and the
// approximate side-effect set S (as InsertWitnesses; DeleteWitnesses mirror
// the edges of over-shared parents).
func (fe *FrontierEvaluator) Eval(p *Path) (*Result, error) {
	steps := Normalize(p)
	if err := checkLen(steps); err != nil {
		return nil, err
	}
	// Reuse the shared bottom-up machinery for filter tables and compute
	// suffix-satisfiability tables for the main path, used for pruning Ci.
	// The nil scratch means plain allocation: this path hands tables to
	// suffixSat and never releases them.
	ev := &Evaluator{D: fe.D, Topo: fe.Topo, Text: fe.Text}
	filterVals := ev.evalFilters(steps, fe.Topo.Nodes(), nil)
	sat := fe.suffixSat(ev, steps, filterVals)

	capn := fe.D.Cap()
	cur := make([]bool, capn)
	cur[fe.D.Root()] = true
	if !sat[0][fe.D.Root()] {
		return &Result{}, nil
	}
	sideEffect := make(map[dag.NodeID]bool)
	var lastParents []bool    // frontier before the last child-consuming step
	var lastClosure reach.Row // descendant closure of the pre-// frontier, for trailing //
	var haveClosure bool      // lastClosure is valid (a // was the last consuming step)

	for i, st := range steps {
		next := make([]bool, capn)
		switch st.Kind {
		case StepSelf:
			fv := filterVals[st.Filter]
			for id := range cur {
				if !cur[id] {
					continue
				}
				if st.Filter == nil || fv[id] {
					next[id] = true
				}
			}
		case StepLabel, StepWild:
			lastParents, haveClosure = cur, false
			for id := range cur {
				if !cur[id] {
					continue
				}
				v := dag.NodeID(id)
				for _, u := range fe.D.Children(v) {
					if st.Kind == StepLabel && fe.D.Type(u) != st.Label {
						continue
					}
					if sat[i+1][u] {
						next[u] = true
					}
				}
			}
			// Paper's S for "/": parents of Ci not reached via p.
			for id := range next {
				if !next[id] {
					continue
				}
				for _, w := range fe.D.Parents(dag.NodeID(id)) {
					if !cur[w] {
						sideEffect[dag.NodeID(id)] = true
					}
				}
			}
		case StepDescOrSelf:
			lastParents = nil
			// Expand descendants-or-self via M (the paper's use of the
			// reachability matrix for //): the closure of the frontier is
			// one row union per frontier node, then a single sweep over its
			// bits applies the satisfiability pruning.
			closure := reach.NewRow(capn)
			for id := range cur {
				if !cur[id] {
					continue
				}
				v := dag.NodeID(id)
				closure.Set(v)
				closure.Or(fe.Matrix.DescendantRow(v))
			}
			for d := range closure.All() {
				if sat[i+1][d] {
					next[d] = true
				}
			}
			// Paper's S for "//": ancestors of Ci not inside the matched
			// closure (which contains the frontier itself) — a word-level
			// "any bit outside the mask" test per selected node.
			for id := range next {
				if !next[id] {
					continue
				}
				if fe.Matrix.AncestorRow(dag.NodeID(id)).AnyNotIn(closure) {
					sideEffect[dag.NodeID(id)] = true
				}
			}
			lastClosure, haveClosure = closure, true
		}
		cur = next
	}

	res := &Result{}
	for id := range cur {
		if cur[id] {
			res.Selected = append(res.Selected, dag.NodeID(id))
		}
	}
	sort.Slice(res.Selected, func(i, j int) bool { return res.Selected[i] < res.Selected[j] })

	// Ep(r): parents through which p reaches each selected node — the
	// pre-step frontier for a child step, the descendant closure of the
	// pre-// frontier for a trailing //.
	for _, v := range res.Selected {
		for _, u := range fe.D.Parents(v) {
			switch {
			case lastParents != nil && lastParents[u]:
				res.Edges = append(res.Edges, dag.Edge{Parent: u, Child: v})
			case lastParents == nil && haveClosure && lastClosure.Contains(u):
				res.Edges = append(res.Edges, dag.Edge{Parent: u, Child: v})
			}
		}
	}
	sortEdges(res.Edges)

	for id := range sideEffect {
		res.InsertWitnesses = append(res.InsertWitnesses, id)
	}
	sort.Slice(res.InsertWitnesses, func(i, j int) bool {
		return res.InsertWitnesses[i] < res.InsertWitnesses[j]
	})
	return res, nil
}

// suffixSat computes, for every step index i (0..n), whether the remaining
// path ηi..ηn can be matched starting at each node — the bottom-up val
// tables of §3.2 for the main path, used to prune the top-down frontier.
func (fe *FrontierEvaluator) suffixSat(ev *Evaluator, steps []NStep, filterVals map[Expr][]bool) [][]bool {
	capn := fe.D.Cap()
	nodes := fe.Topo.Nodes()
	n := len(steps)
	out := make([][]bool, n+1)
	cur := make([]bool, capn)
	for _, v := range nodes {
		cur[v] = true
	}
	out[n] = cur
	for i := n - 1; i >= 0; i-- {
		next := make([]bool, capn)
		switch steps[i].Kind {
		case StepSelf:
			if steps[i].Filter == nil {
				copy(next, cur)
			} else {
				fv := filterVals[steps[i].Filter]
				for _, v := range nodes {
					next[v] = fv[v] && cur[v]
				}
			}
		case StepLabel:
			for _, v := range nodes {
				for _, u := range fe.D.Children(v) {
					if fe.D.Type(u) == steps[i].Label && cur[u] {
						next[v] = true
						break
					}
				}
			}
		case StepWild:
			for _, v := range nodes {
				for _, u := range fe.D.Children(v) {
					if cur[u] {
						next[v] = true
						break
					}
				}
			}
		case StepDescOrSelf:
			for _, v := range nodes { // forward L: children first
				if cur[v] {
					next[v] = true
					continue
				}
				for _, u := range fe.D.Children(v) {
					if next[u] {
						next[v] = true
						break
					}
				}
			}
		}
		out[i] = next
		cur = next
	}
	return out
}
