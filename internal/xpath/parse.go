package xpath

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses an XPath expression of the paper's fragment. Both quoted and
// bare comparison values are accepted (`cno="CS650"` and the paper's
// `cno=CS650`), and ∧/∨/¬ may be written and/or/not( ) or &&/||/!.
func Parse(input string) (*Path, error) {
	p := &parser{src: input}
	path, err := p.parsePath(false)
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.src) {
		return nil, fmt.Errorf("xpath: trailing input at %d: %q", p.pos, p.src[p.pos:])
	}
	if len(path.Steps) == 0 {
		return nil, fmt.Errorf("xpath: empty expression")
	}
	return path, nil
}

// MustParse parses or panics; for statically known paths in tests/examples.
func MustParse(input string) *Path {
	p, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *parser) hasPrefix(s string) bool { return strings.HasPrefix(p.src[p.pos:], s) }

func isNameByte(c byte) bool {
	return c == '_' || c == '-' || c == '.' && false || // '.' excluded: it is the self step
		unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (p *parser) name() string {
	start := p.pos
	for p.pos < len(p.src) && isNameByte(p.src[p.pos]) {
		p.pos++
	}
	return p.src[start:p.pos]
}

// parsePath parses a path; when inFilter is set, ']' and comparison/boolean
// operators terminate it.
func (p *parser) parsePath(inFilter bool) (*Path, error) {
	path := &Path{}
	first := true
	for {
		p.skipSpace()
		// Separators.
		if p.hasPrefix("//") {
			p.pos += 2
			path.Steps = append(path.Steps, Step{Kind: StepDescOrSelf})
		} else if p.peek() == '/' {
			p.pos++
			if first && len(path.Steps) == 0 {
				// Leading '/' (absolute path): evaluation is root-anchored
				// anyway, so it is a no-op marker.
			}
		} else if !first {
			break
		}
		first = false
		p.skipSpace()

		// A step after a separator (or at the start).
		c := p.peek()
		switch {
		case c == '*':
			p.pos++
			st := Step{Kind: StepWild}
			if err := p.parseFilters(&st); err != nil {
				return nil, err
			}
			path.Steps = append(path.Steps, st)
		case c == '.':
			p.pos++
			st := Step{Kind: StepSelf}
			if err := p.parseFilters(&st); err != nil {
				return nil, err
			}
			path.Steps = append(path.Steps, st)
		case c != 0 && isNameByte(c):
			// Guard: don't swallow boolean keywords inside filters.
			if inFilter && (p.keywordAhead("and") || p.keywordAhead("or")) {
				return path, nil
			}
			name := p.name()
			if name == "" {
				return nil, fmt.Errorf("xpath: expected step at %d", p.pos)
			}
			st := Step{Kind: StepLabel, Label: name}
			if err := p.parseFilters(&st); err != nil {
				return nil, err
			}
			path.Steps = append(path.Steps, st)
		case c == '[':
			// Filter directly on the current context: an ε[q] step.
			st := Step{Kind: StepSelf}
			if err := p.parseFilters(&st); err != nil {
				return nil, err
			}
			path.Steps = append(path.Steps, st)
		default:
			// '//' at end of path means descendant-or-self with no further
			// test; allow it (e.g. "course//" ≡ course/descendants).
			if len(path.Steps) > 0 && path.Steps[len(path.Steps)-1].Kind == StepDescOrSelf {
				return path, nil
			}
			return nil, fmt.Errorf("xpath: expected step at %d in %q", p.pos, p.src)
		}
	}
	return path, nil
}

func (p *parser) keywordAhead(kw string) bool {
	if !p.hasPrefix(kw) {
		return false
	}
	after := p.pos + len(kw)
	return after >= len(p.src) || !isNameByte(p.src[after])
}

func (p *parser) parseFilters(st *Step) error {
	for {
		p.skipSpace()
		if p.peek() != '[' {
			return nil
		}
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		p.skipSpace()
		if p.peek() != ']' {
			return fmt.Errorf("xpath: expected ']' at %d in %q", p.pos, p.src)
		}
		p.pos++
		st.Filters = append(st.Filters, e)
	}
}

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		switch {
		case p.keywordAhead("or"):
			p.pos += 2
		case p.hasPrefix("||"):
			p.pos += 2
		case p.hasPrefix("∨"):
			p.pos += len("∨")
		default:
			return l, nil
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &ExprOr{L: l, R: r}
	}
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		switch {
		case p.keywordAhead("and"):
			p.pos += 3
		case p.hasPrefix("&&"):
			p.pos += 2
		case p.hasPrefix("∧"):
			p.pos += len("∧")
		default:
			return l, nil
		}
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &ExprAnd{L: l, R: r}
	}
}

func (p *parser) parseNot() (Expr, error) {
	p.skipSpace()
	switch {
	case p.keywordAhead("not"):
		p.pos += 3
		p.skipSpace()
		if p.peek() != '(' {
			return nil, fmt.Errorf("xpath: expected '(' after not at %d", p.pos)
		}
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, fmt.Errorf("xpath: expected ')' at %d", p.pos)
		}
		p.pos++
		return &ExprNot{E: e}, nil
	case p.hasPrefix("!"):
		p.pos++
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &ExprNot{E: e}, nil
	case p.hasPrefix("¬"):
		p.pos += len("¬")
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &ExprNot{E: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	p.skipSpace()
	if p.peek() == '(' {
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, fmt.Errorf("xpath: expected ')' at %d", p.pos)
		}
		p.pos++
		return e, nil
	}
	// label() = A
	if p.hasPrefix("label()") {
		p.pos += len("label()")
		p.skipSpace()
		if p.peek() != '=' {
			return nil, fmt.Errorf("xpath: expected '=' after label() at %d", p.pos)
		}
		p.pos++
		p.skipSpace()
		name := p.name()
		if name == "" {
			return nil, fmt.Errorf("xpath: expected type name after label()= at %d", p.pos)
		}
		return &ExprLabel{Label: name}, nil
	}
	// A relative path, optionally compared to a value.
	path, err := p.parsePath(true)
	if err != nil {
		return nil, err
	}
	if len(path.Steps) == 0 {
		return nil, fmt.Errorf("xpath: expected filter expression at %d in %q", p.pos, p.src)
	}
	p.skipSpace()
	if p.peek() == '=' {
		p.pos++
		p.skipSpace()
		val, err := p.value()
		if err != nil {
			return nil, err
		}
		return &ExprPath{Path: path, Cmp: &val}, nil
	}
	return &ExprPath{Path: path}, nil
}

func (p *parser) value() (string, error) {
	p.skipSpace()
	if c := p.peek(); c == '"' || c == '\'' {
		quote := c
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != quote {
			p.pos++
		}
		if p.pos >= len(p.src) {
			return "", fmt.Errorf("xpath: unterminated string at %d", start)
		}
		v := p.src[start:p.pos]
		p.pos++
		return v, nil
	}
	// Bare value, as in the paper's cno=CS650.
	v := p.name()
	if v == "" {
		return "", fmt.Errorf("xpath: expected comparison value at %d", p.pos)
	}
	return v, nil
}
