package xpath

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Cache is a bounded, concurrency-safe LRU of compiled paths. Parsed
// *Path values are immutable (Normalize and both evaluators only read
// them), so one compiled path can back any number of concurrent
// evaluations — a serving layer parses each distinct query text once.
//
// Parse failures are cached too: a malformed query hot in the request
// stream costs one map hit, not a re-parse, and callers short-circuit
// before allocating an evaluator.
type Cache struct {
	mu     sync.Mutex
	cap    int
	lru    *list.List // front = most recent; values are *cacheEntry
	byText map[string]*list.Element

	hits   atomic.Uint64
	misses atomic.Uint64
}

type cacheEntry struct {
	text string
	p    *Path
	err  error
}

// NewCache returns a cache bounded to capacity entries (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		cap:    capacity,
		lru:    list.New(),
		byText: make(map[string]*list.Element, capacity),
	}
}

// Parse returns the compiled path (or the cached parse error) for the query
// text, compiling it on first sight.
func (c *Cache) Parse(text string) (*Path, error) {
	c.mu.Lock()
	if el, ok := c.byText[text]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.mu.Unlock()
		c.hits.Add(1)
		return e.p, e.err
	}
	c.mu.Unlock()
	c.misses.Add(1)

	// Parse outside the lock: a slow parse must not stall unrelated hits.
	// A racing duplicate parse of the same text is harmless — last insert
	// wins and both results are equivalent.
	p, err := Parse(text)

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byText[text]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		return e.p, e.err
	}
	el := c.lru.PushFront(&cacheEntry{text: text, p: p, err: err})
	c.byText[text] = el
	if c.lru.Len() > c.cap {
		old := c.lru.Back()
		c.lru.Remove(old)
		delete(c.byText, old.Value.(*cacheEntry).text)
	}
	return p, err
}

// Stats returns the cache's hit/miss counters.
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
