package dtd

import (
	"fmt"
	"strings"
)

// This file implements footnote ① of the paper: "An arbitrary DTD can be
// normalized into a DTD in the form defined by introducing additional
// element types in linear time." ParseGeneral accepts full content models —
// nested groups, mixed ',' and '|', and the *, +, ? operators — and rewrites
// them into the normalized productions (PCDATA | ε | sequence | alternation
// | star) that the publishing and update machinery require. Auxiliary types
// are named <parent>.grpN; a post-publishing step can erase them when
// serializing for consumers of the original DTD.

// contentExpr is the AST of a general content model.
type contentExpr struct {
	kind     exprKind
	name     string // for exprName
	children []*contentExpr
}

type exprKind uint8

const (
	exprName exprKind = iota
	exprSeq
	exprAlt
	exprStar
	exprPlus
	exprOpt
	exprPCData
	exprEmpty
)

// ParseGeneral parses a DTD whose content models may use nested groups and
// the ?, +, * operators, and returns the normalized DTD. The first declared
// element is the root.
func ParseGeneral(text string) (*DTD, error) {
	elems := make(map[string]Production)
	root := ""
	aux := &auxAllocator{elems: elems}

	rest := text
	for {
		start := strings.Index(rest, "<!ELEMENT")
		if start < 0 {
			break
		}
		end := strings.Index(rest[start:], ">")
		if end < 0 {
			return nil, fmt.Errorf("dtd: unterminated <!ELEMENT near %q", clip(rest[start:]))
		}
		decl := rest[start+len("<!ELEMENT") : start+end]
		rest = rest[start+end+1:]

		fields := strings.Fields(decl)
		if len(fields) < 2 {
			return nil, fmt.Errorf("dtd: malformed declaration %q", clip(decl))
		}
		name := fields[0]
		spec := strings.TrimSpace(strings.Join(fields[1:], " "))
		if _, dup := elems[name]; dup {
			return nil, fmt.Errorf("dtd: element %s declared twice", name)
		}
		expr, err := parseContentExpr(spec)
		if err != nil {
			return nil, fmt.Errorf("dtd: element %s: %w", name, err)
		}
		prod, err := aux.normalizeTop(name, expr)
		if err != nil {
			return nil, fmt.Errorf("dtd: element %s: %w", name, err)
		}
		elems[name] = prod
		if root == "" {
			root = name
		}
	}
	if root == "" {
		return nil, fmt.Errorf("dtd: no <!ELEMENT declarations found")
	}
	return New(root, elems)
}

// auxAllocator introduces auxiliary element types for nested sub-expressions.
type auxAllocator struct {
	elems map[string]Production
	next  int
}

func (a *auxAllocator) fresh(parent string, prod Production) string {
	a.next++
	name := fmt.Sprintf("%s.grp%d", parent, a.next)
	a.elems[name] = prod
	return name
}

// normalizeTop rewrites an expression into a single normalized production
// for the declared element.
func (a *auxAllocator) normalizeTop(parent string, e *contentExpr) (Production, error) {
	switch e.kind {
	case exprPCData:
		return Production{Kind: PCData}, nil
	case exprEmpty:
		return Production{Kind: Empty}, nil
	case exprName:
		// A single child is a one-element sequence.
		return Production{Kind: Seq, Children: []string{e.name}}, nil
	case exprSeq:
		kids := make([]string, 0, len(e.children))
		for _, c := range e.children {
			n, err := a.typeFor(parent, c)
			if err != nil {
				return Production{}, err
			}
			kids = append(kids, n)
		}
		return Production{Kind: Seq, Children: kids}, nil
	case exprAlt:
		kids := make([]string, 0, len(e.children))
		for _, c := range e.children {
			n, err := a.typeFor(parent, c)
			if err != nil {
				return Production{}, err
			}
			kids = append(kids, n)
		}
		return Production{Kind: Alt, Children: kids}, nil
	case exprStar:
		n, err := a.typeFor(parent, e.children[0])
		if err != nil {
			return Production{}, err
		}
		return Production{Kind: Star, Children: []string{n}}, nil
	case exprPlus:
		// e+ ≡ e, e*
		n, err := a.typeFor(parent, e.children[0])
		if err != nil {
			return Production{}, err
		}
		star := a.fresh(parent, Production{Kind: Star, Children: []string{n}})
		return Production{Kind: Seq, Children: []string{n, star}}, nil
	case exprOpt:
		// e? ≡ (e | ε): an alternation with an EMPTY auxiliary.
		n, err := a.typeFor(parent, e.children[0])
		if err != nil {
			return Production{}, err
		}
		empty := a.fresh(parent, Production{Kind: Empty})
		return Production{Kind: Alt, Children: []string{n, empty}}, nil
	default:
		return Production{}, fmt.Errorf("unknown content expression")
	}
}

// typeFor returns an element type generating the expression, introducing an
// auxiliary type when the expression is not a plain name.
func (a *auxAllocator) typeFor(parent string, e *contentExpr) (string, error) {
	if e.kind == exprName {
		return e.name, nil
	}
	if e.kind == exprPCData {
		return "", fmt.Errorf("#PCDATA may only appear alone")
	}
	prod, err := a.normalizeTop(parent, e)
	if err != nil {
		return "", err
	}
	return a.fresh(parent, prod), nil
}

// parseContentExpr parses a general content model.
func parseContentExpr(spec string) (*contentExpr, error) {
	spec = strings.TrimSpace(spec)
	if spec == "EMPTY" {
		return &contentExpr{kind: exprEmpty}, nil
	}
	p := &exprParser{src: spec}
	e, err := p.parse()
	if err != nil {
		return nil, err
	}
	p.skip()
	if p.pos < len(p.src) {
		return nil, fmt.Errorf("trailing content at %d in %q", p.pos, p.src)
	}
	return e, nil
}

type exprParser struct {
	src string
	pos int
}

func (p *exprParser) skip() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *exprParser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

// parse reads one unit (group or name) with a possible trailing operator.
func (p *exprParser) parse() (*contentExpr, error) {
	p.skip()
	var e *contentExpr
	switch {
	case p.peek() == '(':
		p.pos++
		inner, err := p.parseGroup()
		if err != nil {
			return nil, err
		}
		p.skip()
		if p.peek() != ')' {
			return nil, fmt.Errorf("expected ')' at %d in %q", p.pos, p.src)
		}
		p.pos++
		e = inner
	case strings.HasPrefix(p.src[p.pos:], "#PCDATA"):
		p.pos += len("#PCDATA")
		e = &contentExpr{kind: exprPCData}
	default:
		start := p.pos
		for p.pos < len(p.src) && isNameChar(p.src[p.pos]) {
			p.pos++
		}
		if p.pos == start {
			return nil, fmt.Errorf("expected name or group at %d in %q", p.pos, p.src)
		}
		e = &contentExpr{kind: exprName, name: p.src[start:p.pos]}
	}
	switch p.peek() {
	case '*':
		p.pos++
		return &contentExpr{kind: exprStar, children: []*contentExpr{e}}, nil
	case '+':
		p.pos++
		return &contentExpr{kind: exprPlus, children: []*contentExpr{e}}, nil
	case '?':
		p.pos++
		return &contentExpr{kind: exprOpt, children: []*contentExpr{e}}, nil
	}
	return e, nil
}

// parseGroup reads a parenthesized body: units separated consistently by ','
// or '|'.
func (p *exprParser) parseGroup() (*contentExpr, error) {
	var parts []*contentExpr
	sep := byte(0)
	for {
		e, err := p.parse()
		if err != nil {
			return nil, err
		}
		parts = append(parts, e)
		p.skip()
		c := p.peek()
		if c != ',' && c != '|' {
			break
		}
		if sep == 0 {
			sep = c
		} else if sep != c {
			return nil, fmt.Errorf("mixed ',' and '|' at the same level at %d in %q (use nested groups)", p.pos, p.src)
		}
		p.pos++
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	kind := exprSeq
	if sep == '|' {
		kind = exprAlt
	}
	return &contentExpr{kind: kind, children: parts}, nil
}

func isNameChar(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	case c == '_' || c == '-' || c == '.':
		return true
	}
	return false
}
