package dtd

import (
	"fmt"
	"strings"
)

// Parse reads a DTD in <!ELEMENT name spec> syntax restricted to the
// normalized forms of §2.2:
//
//	<!ELEMENT db (course*)>          star
//	<!ELEMENT course (cno, title)>   sequence
//	<!ELEMENT choice (a | b)>        alternation
//	<!ELEMENT cno (#PCDATA)>         pcdata
//	<!ELEMENT gap EMPTY>             empty
//
// The first declared element is the root. An arbitrary DTD can be normalized
// into this form in linear time by introducing auxiliary types (footnote ① of
// the paper); Parse expects already-normalized input.
func Parse(text string) (*DTD, error) {
	elems := make(map[string]Production)
	root := ""
	rest := text
	for {
		start := strings.Index(rest, "<!ELEMENT")
		if start < 0 {
			break
		}
		end := strings.Index(rest[start:], ">")
		if end < 0 {
			return nil, fmt.Errorf("dtd: unterminated <!ELEMENT near %q", clip(rest[start:]))
		}
		decl := rest[start+len("<!ELEMENT") : start+end]
		rest = rest[start+end+1:]

		fields := strings.Fields(decl)
		if len(fields) < 2 {
			return nil, fmt.Errorf("dtd: malformed declaration %q", clip(decl))
		}
		name := fields[0]
		spec := strings.TrimSpace(strings.Join(fields[1:], " "))
		prod, err := parseSpec(spec)
		if err != nil {
			return nil, fmt.Errorf("dtd: element %s: %w", name, err)
		}
		if _, dup := elems[name]; dup {
			return nil, fmt.Errorf("dtd: element %s declared twice", name)
		}
		elems[name] = prod
		if root == "" {
			root = name
		}
	}
	if root == "" {
		return nil, fmt.Errorf("dtd: no <!ELEMENT declarations found")
	}
	return New(root, elems)
}

func parseSpec(spec string) (Production, error) {
	if spec == "EMPTY" {
		return Production{Kind: Empty}, nil
	}
	star := false
	if strings.HasSuffix(spec, "*") {
		star = true
		spec = strings.TrimSpace(strings.TrimSuffix(spec, "*"))
	}
	if !strings.HasPrefix(spec, "(") || !strings.HasSuffix(spec, ")") {
		return Production{}, fmt.Errorf("content spec %q must be parenthesized or EMPTY", spec)
	}
	inner := strings.TrimSpace(spec[1 : len(spec)-1])
	if inner == "#PCDATA" {
		if star {
			return Production{}, fmt.Errorf("(#PCDATA)* not supported; use (#PCDATA)")
		}
		return Production{Kind: PCData}, nil
	}
	// Inner star form (B*) inside parens: normalize "(B*)" to star of B.
	if strings.HasSuffix(inner, "*") && !strings.ContainsAny(inner, ",|") {
		star = true
		inner = strings.TrimSpace(strings.TrimSuffix(inner, "*"))
	}
	hasComma := strings.Contains(inner, ",")
	hasBar := strings.Contains(inner, "|")
	if hasComma && hasBar {
		return Production{}, fmt.Errorf("mixed ',' and '|' in %q: not in normalized form", spec)
	}
	var parts []string
	switch {
	case hasComma:
		parts = strings.Split(inner, ",")
	case hasBar:
		parts = strings.Split(inner, "|")
	default:
		parts = []string{inner}
	}
	children := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return Production{}, fmt.Errorf("empty component in %q", spec)
		}
		if strings.ContainsAny(p, "*?+()") {
			return Production{}, fmt.Errorf("component %q of %q not in normalized form", p, spec)
		}
		children = append(children, p)
	}
	switch {
	case star:
		if len(children) != 1 || hasComma || hasBar {
			return Production{}, fmt.Errorf("star applies to a single type in %q", spec)
		}
		return Production{Kind: Star, Children: children}, nil
	case hasBar:
		return Production{Kind: Alt, Children: children}, nil
	case hasComma:
		return Production{Kind: Seq, Children: children}, nil
	default:
		// Single child sequence.
		return Production{Kind: Seq, Children: children}, nil
	}
}

func clip(s string) string {
	if len(s) > 40 {
		return s[:40] + "..."
	}
	return s
}
