package dtd

import (
	"strings"
	"testing"
)

// These tests cover footnote ① of the paper: normalizing arbitrary DTDs
// into the restricted production forms by introducing auxiliary types.

func TestParseGeneralAlreadyNormal(t *testing.T) {
	d, err := ParseGeneral(`
<!ELEMENT db (course*)>
<!ELEMENT course (cno, title)>
<!ELEMENT cno (#PCDATA)>
<!ELEMENT title (#PCDATA)>
`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Elems["db"].Kind != Star || d.Elems["course"].Kind != Seq {
		t.Errorf("productions: %v %v", d.Elems["db"], d.Elems["course"])
	}
	// No auxiliary types needed.
	for _, typ := range d.Types() {
		if strings.Contains(typ, ".grp") {
			t.Errorf("unnecessary auxiliary type %s", typ)
		}
	}
}

func TestParseGeneralOptional(t *testing.T) {
	// a? ≡ (a | ε) via an auxiliary EMPTY type.
	d, err := ParseGeneral(`
<!ELEMENT doc (a?)>
<!ELEMENT a (#PCDATA)>
`)
	if err != nil {
		t.Fatal(err)
	}
	p := d.Elems["doc"]
	if p.Kind != Alt || len(p.Children) != 2 {
		t.Fatalf("doc = %v", p)
	}
	hasEmptyAux := false
	for _, c := range p.Children {
		if d.Elems[c].Kind == Empty && strings.Contains(c, ".grp") {
			hasEmptyAux = true
		}
	}
	if !hasEmptyAux {
		t.Errorf("expected an auxiliary EMPTY alternative: %v", p)
	}
}

func TestParseGeneralPlus(t *testing.T) {
	// a+ ≡ a, a* via an auxiliary star type.
	d, err := ParseGeneral(`
<!ELEMENT doc (a+)>
<!ELEMENT a (#PCDATA)>
`)
	if err != nil {
		t.Fatal(err)
	}
	p := d.Elems["doc"]
	if p.Kind != Seq || len(p.Children) != 2 || p.Children[0] != "a" {
		t.Fatalf("doc = %v", p)
	}
	star := d.Elems[p.Children[1]]
	if star.Kind != Star || star.Children[0] != "a" {
		t.Errorf("aux star = %v", star)
	}
}

func TestParseGeneralNestedGroups(t *testing.T) {
	// (a, (b | c)*) needs an auxiliary type for the starred alternation.
	d, err := ParseGeneral(`
<!ELEMENT doc (a, (b | c)*)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
<!ELEMENT c (#PCDATA)>
`)
	if err != nil {
		t.Fatal(err)
	}
	p := d.Elems["doc"]
	if p.Kind != Seq || len(p.Children) != 2 {
		t.Fatalf("doc = %v", p)
	}
	starAux := d.Elems[p.Children[1]]
	if starAux.Kind != Star {
		t.Fatalf("second child should be a star aux: %v", starAux)
	}
	altAux := d.Elems[starAux.Children[0]]
	if altAux.Kind != Alt || len(altAux.Children) != 2 {
		t.Errorf("starred alternation = %v", altAux)
	}
	// The result is a valid normalized DTD.
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseGeneralDeeplyNested(t *testing.T) {
	d, err := ParseGeneral(`
<!ELEMENT doc ((a, b)+ | (c?, d)*)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
<!ELEMENT c (#PCDATA)>
<!ELEMENT d (#PCDATA)>
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Elems["doc"].Kind != Alt {
		t.Errorf("doc = %v", d.Elems["doc"])
	}
	// All introduced types are well-formed normalized productions.
	for _, typ := range d.Types() {
		switch d.Elems[typ].Kind {
		case PCData, Empty, Seq, Alt, Star:
		default:
			t.Errorf("type %s has non-normalized production", typ)
		}
	}
}

func TestParseGeneralRecursive(t *testing.T) {
	d, err := ParseGeneral(`
<!ELEMENT part (pno, part*)>
<!ELEMENT pno (#PCDATA)>
`)
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsRecursive() {
		t.Error("recursive general DTD should stay recursive")
	}
	p := d.Elems["part"]
	if p.Kind != Seq || len(p.Children) != 2 {
		t.Fatalf("part = %v", p)
	}
	if aux := d.Elems[p.Children[1]]; aux.Kind != Star || aux.Children[0] != "part" {
		t.Errorf("aux = %v", aux)
	}
}

func TestParseGeneralErrors(t *testing.T) {
	for _, text := range []string{
		"",
		"<!ELEMENT a (b,)> <!ELEMENT b EMPTY>",
		"<!ELEMENT a (b | c, d)> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY> <!ELEMENT d EMPTY>", // mixed at one level
		"<!ELEMENT a (#PCDATA, b)> <!ELEMENT b EMPTY>",                                     // PCDATA not alone
		"<!ELEMENT a ((b)> <!ELEMENT b EMPTY>",                                             // unbalanced
		"<!ELEMENT a (b)) > <!ELEMENT b EMPTY>",                                            // trailing
		"<!ELEMENT a (b)> <!ELEMENT a (b)> <!ELEMENT b EMPTY>",                             // duplicate
		"<!ELEMENT a (undeclared)>",                                                        // unknown type
	} {
		if _, err := ParseGeneral(text); err == nil {
			t.Errorf("ParseGeneral(%q) accepted", text)
		}
	}
}

func TestParseGeneralSingleName(t *testing.T) {
	d, err := ParseGeneral(`
<!ELEMENT doc (a)>
<!ELEMENT a EMPTY>
`)
	if err != nil {
		t.Fatal(err)
	}
	if p := d.Elems["doc"]; p.Kind != Seq || len(p.Children) != 1 {
		t.Errorf("doc = %v", p)
	}
}
