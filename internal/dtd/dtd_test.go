package dtd

import (
	"reflect"
	"strings"
	"testing"
)

// registrarDTD is D0 from Example 1 of the paper.
func registrarDTD(t *testing.T) *DTD {
	t.Helper()
	d, err := New("db", map[string]Production{
		"db":      {Kind: Star, Children: []string{"course"}},
		"course":  {Kind: Seq, Children: []string{"cno", "title", "prereq", "takenBy"}},
		"prereq":  {Kind: Star, Children: []string{"course"}},
		"takenBy": {Kind: Star, Children: []string{"student"}},
		"student": {Kind: Seq, Children: []string{"ssn", "name"}},
		"cno":     {Kind: PCData},
		"title":   {Kind: PCData},
		"ssn":     {Kind: PCData},
		"name":    {Kind: PCData},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestValidateRejectsBadDTDs(t *testing.T) {
	cases := []struct {
		name  string
		root  string
		elems map[string]Production
	}{
		{"empty root", "", map[string]Production{"a": {Kind: Empty}}},
		{"undefined root", "x", map[string]Production{"a": {Kind: Empty}}},
		{"undefined child", "a", map[string]Production{"a": {Kind: Star, Children: []string{"b"}}}},
		{"star arity", "a", map[string]Production{"a": {Kind: Star, Children: []string{"a", "a"}}}},
		{"seq no children", "a", map[string]Production{"a": {Kind: Seq}}},
		{"pcdata with children", "a", map[string]Production{
			"a": {Kind: PCData, Children: []string{"b"}}, "b": {Kind: Empty}}},
		{"bad kind", "a", map[string]Production{"a": {Kind: ContentKind(99)}}},
	}
	for _, c := range cases {
		if _, err := New(c.root, c.elems); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestRecursionDetection(t *testing.T) {
	d := registrarDTD(t)
	if !d.IsRecursive() {
		t.Fatal("registrar DTD is recursive (course -> prereq -> course)")
	}
	rec := d.RecursiveTypes()
	if !reflect.DeepEqual(rec, []string{"course", "prereq"}) {
		t.Errorf("recursive types = %v", rec)
	}

	flat := MustNew("r", map[string]Production{
		"r": {Kind: Star, Children: []string{"a"}},
		"a": {Kind: PCData},
	})
	if flat.IsRecursive() {
		t.Error("flat DTD reported recursive")
	}
}

func TestReachability(t *testing.T) {
	d := registrarDTD(t)
	cases := []struct {
		from, to string
		want     bool
	}{
		{"db", "student", true},
		{"db", "course", true},
		{"course", "course", true}, // via prereq
		{"student", "course", false},
		{"takenBy", "ssn", true},
		{"cno", "cno", false},
	}
	for _, c := range cases {
		if got := d.Reachable(c.from, c.to); got != c.want {
			t.Errorf("Reachable(%s,%s) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
}

func TestParentChildTypes(t *testing.T) {
	d := registrarDTD(t)
	if got := d.ChildTypes("course"); !reflect.DeepEqual(got, []string{"cno", "title", "prereq", "takenBy"}) {
		t.Errorf("ChildTypes(course) = %v", got)
	}
	if got := d.ParentTypes("course"); !reflect.DeepEqual(got, []string{"db", "prereq"}) {
		t.Errorf("ParentTypes(course) = %v", got)
	}
	if got := d.ParentTypes("db"); len(got) != 0 {
		t.Errorf("ParentTypes(db) = %v", got)
	}
}

func TestStringAndParseRoundTrip(t *testing.T) {
	d := registrarDTD(t)
	text := d.String()
	for _, want := range []string{
		"<!ELEMENT db (course)*>",
		"<!ELEMENT course (cno, title, prereq, takenBy)>",
		"<!ELEMENT cno (#PCDATA)>",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("String() missing %q in:\n%s", want, text)
		}
	}
	d2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if d2.Root != d.Root || !reflect.DeepEqual(d2.Elems, d.Elems) {
		t.Error("round trip changed the DTD")
	}
}

func TestParsePaperSyntax(t *testing.T) {
	// The DTD as written in the paper's Example 1 (with PCDATA elements
	// added, as the paper omits them for brevity).
	text := `
<!ELEMENT db (course*)>
<!ELEMENT course (cno, title, prereq, takenBy)>
<!ELEMENT prereq (course*)>
<!ELEMENT takenBy (student*)>
<!ELEMENT student (ssn, name)>
<!ELEMENT cno (#PCDATA)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT ssn (#PCDATA)>
<!ELEMENT name (#PCDATA)>
`
	d, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if d.Root != "db" {
		t.Errorf("root = %s", d.Root)
	}
	if d.Elems["db"].Kind != Star {
		t.Errorf("db production = %v", d.Elems["db"])
	}
	if d.Elems["course"].Kind != Seq || len(d.Elems["course"].Children) != 4 {
		t.Errorf("course production = %v", d.Elems["course"])
	}
	if !d.IsRecursive() {
		t.Error("parsed DTD should be recursive")
	}
}

func TestParseAlternationAndEmpty(t *testing.T) {
	d, err := Parse(`
<!ELEMENT doc (a | b)>
<!ELEMENT a EMPTY>
<!ELEMENT b (#PCDATA)>
`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Elems["doc"].Kind != Alt {
		t.Errorf("doc = %v", d.Elems["doc"])
	}
	if d.Elems["a"].Kind != Empty {
		t.Errorf("a = %v", d.Elems["a"])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                 // nothing
		"<!ELEMENT a (b*)", // unterminated
		"<!ELEMENT a>",     // no spec
		"<!ELEMENT a (b, c | d)> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY> <!ELEMENT d EMPTY>", // mixed
		"<!ELEMENT a (b?)> <!ELEMENT b EMPTY>",                                             // unsupported operator
		"<!ELEMENT a ((b, c)*)> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>",                     // star of group
		"<!ELEMENT a (#PCDATA)*>",                                                          // pcdata star
		"<!ELEMENT a (b)> <!ELEMENT a (b)> <!ELEMENT b EMPTY>",                             // duplicate
		"<!ELEMENT a (b,)> <!ELEMENT b EMPTY>",                                             // empty component
		"<!ELEMENT a b> <!ELEMENT b EMPTY>",                                                // missing parens
	}
	for _, text := range cases {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) accepted", text)
		}
	}
}

func TestParseSingleChildSeq(t *testing.T) {
	d, err := Parse("<!ELEMENT a (b)> <!ELEMENT b (#PCDATA)>")
	if err != nil {
		t.Fatal(err)
	}
	if p := d.Elems["a"]; p.Kind != Seq || len(p.Children) != 1 || p.Children[0] != "b" {
		t.Errorf("a = %v", p)
	}
}

func TestContentKindString(t *testing.T) {
	for k, want := range map[ContentKind]string{
		PCData: "PCDATA", Empty: "EMPTY", Seq: "sequence", Alt: "alternation", Star: "star",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}
