// Package dtd models the Document Type Definitions that direct XML
// publishing in the paper (§2.2): a DTD is a triple (E, P, r) where each
// element type has one production of the normalized forms
//
//	α ::= PCDATA | ε | B1,...,Bn | B1+...+Bn | B*
//
// The package detects recursive DTDs, parses/serializes the standard
// <!ELEMENT ...> syntax restricted to these forms, and implements the
// schema-level update validation of §2.4.
package dtd

import (
	"fmt"
	"sort"
	"strings"
)

// ContentKind classifies a production's content model.
type ContentKind uint8

// Content models of the normalized DTD form.
const (
	PCData ContentKind = iota // #PCDATA
	Empty                     // EMPTY (ε)
	Seq                       // B1, ..., Bn
	Alt                       // B1 + ... + Bn  (written B1 | ... | Bn)
	Star                      // B*
)

func (k ContentKind) String() string {
	switch k {
	case PCData:
		return "PCDATA"
	case Empty:
		return "EMPTY"
	case Seq:
		return "sequence"
	case Alt:
		return "alternation"
	case Star:
		return "star"
	default:
		return fmt.Sprintf("content(%d)", uint8(k))
	}
}

// Production is the content model of one element type.
type Production struct {
	Kind     ContentKind
	Children []string // child element types; 1 for Star, ≥1 for Seq/Alt, 0 otherwise
}

// String renders the production body in DTD syntax.
func (p Production) String() string {
	switch p.Kind {
	case PCData:
		return "(#PCDATA)"
	case Empty:
		return "EMPTY"
	case Star:
		return "(" + p.Children[0] + ")*"
	case Alt:
		return "(" + strings.Join(p.Children, " | ") + ")"
	default:
		return "(" + strings.Join(p.Children, ", ") + ")"
	}
}

// DTD is a document type definition (E, P, r).
type DTD struct {
	Root  string
	Elems map[string]Production
}

// New builds a DTD with the given root and productions and validates it.
func New(root string, elems map[string]Production) (*DTD, error) {
	d := &DTD{Root: root, Elems: elems}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// MustNew is New that panics on error; for statically known DTDs.
func MustNew(root string, elems map[string]Production) *DTD {
	d, err := New(root, elems)
	if err != nil {
		panic(err)
	}
	return d
}

// Validate checks structural sanity: the root is defined, every referenced
// child type is defined, and production shapes match their kinds.
func (d *DTD) Validate() error {
	if d.Root == "" {
		return fmt.Errorf("dtd: empty root type")
	}
	if _, ok := d.Elems[d.Root]; !ok {
		return fmt.Errorf("dtd: root type %s not defined", d.Root)
	}
	for name, p := range d.Elems {
		switch p.Kind {
		case PCData, Empty:
			if len(p.Children) != 0 {
				return fmt.Errorf("dtd: %s: %v production must have no children", name, p.Kind)
			}
		case Star:
			if len(p.Children) != 1 {
				return fmt.Errorf("dtd: %s: star production must have exactly one child type", name)
			}
		case Seq, Alt:
			if len(p.Children) == 0 {
				return fmt.Errorf("dtd: %s: %v production must have children", name, p.Kind)
			}
		default:
			return fmt.Errorf("dtd: %s: unknown content kind %d", name, p.Kind)
		}
		for _, c := range p.Children {
			if _, ok := d.Elems[c]; !ok {
				return fmt.Errorf("dtd: %s references undefined type %s", name, c)
			}
		}
	}
	return nil
}

// Types returns all element type names in sorted order.
func (d *DTD) Types() []string {
	out := make([]string, 0, len(d.Elems))
	for n := range d.Elems {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ChildTypes returns the child element types of a type (empty for PCDATA and
// EMPTY productions).
func (d *DTD) ChildTypes(name string) []string {
	return d.Elems[name].Children
}

// ParentTypes returns every type that mentions name as a child.
func (d *DTD) ParentTypes(name string) []string {
	var out []string
	for _, t := range d.Types() {
		for _, c := range d.Elems[t].Children {
			if c == name {
				out = append(out, t)
				break
			}
		}
	}
	return out
}

// IsRecursive reports whether any type is defined, directly or indirectly, in
// terms of itself. The paper notes that DTDs found in practice are often
// recursive [16], which is what distinguishes this work from prior XML view
// update systems.
func (d *DTD) IsRecursive() bool { return len(d.RecursiveTypes()) > 0 }

// RecursiveTypes returns, in sorted order, every type that participates in a
// cycle of the type graph.
func (d *DTD) RecursiveTypes() []string {
	// Tarjan-free approach: a type is recursive iff it can reach itself.
	reach := d.reachability()
	var out []string
	for _, t := range d.Types() {
		if reach[t][t] {
			out = append(out, t)
		}
	}
	return out
}

// reachability returns the strict-descendant closure of the type graph.
func (d *DTD) reachability() map[string]map[string]bool {
	types := d.Types()
	reach := make(map[string]map[string]bool, len(types))
	for _, t := range types {
		reach[t] = make(map[string]bool)
		for _, c := range d.Elems[t].Children {
			reach[t][c] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, t := range types {
			for mid := range reach[t] {
				for tgt := range reach[mid] {
					if !reach[t][tgt] {
						reach[t][tgt] = true
						changed = true
					}
				}
			}
		}
	}
	return reach
}

// Reachable reports whether descendant type to is reachable from type from
// (strictly, via one or more child steps).
func (d *DTD) Reachable(from, to string) bool {
	return d.reachability()[from][to]
}

// String serializes the DTD in <!ELEMENT ...> syntax, root first, remaining
// types sorted.
func (d *DTD) String() string {
	var b strings.Builder
	write := func(name string) {
		fmt.Fprintf(&b, "<!ELEMENT %s %s>\n", name, d.Elems[name])
	}
	write(d.Root)
	for _, t := range d.Types() {
		if t != d.Root {
			write(t)
		}
	}
	return b.String()
}
