// Package fault is the deterministic fault-injection framework behind the
// durability seams. Production code is instrumented with named fault
// points — fault.Hit(fault.WALFsync) at the site where an fsync can fail —
// and a test (or xviewd -chaos) installs a seeded Plan that decides, per
// hit, whether the point fires. With no plan installed a hit is one atomic
// load, so the instrumentation is free in production.
//
// Determinism is the whole design: a Plan owns a math/rand source seeded
// by the caller, and firing decisions depend only on the seed and the
// sequence of hits, never on wall-clock time. The same seed against the
// same workload yields the same fault schedule, which is what lets the
// chaos soak shrink a failure to a reproducible case.
//
// Every point a Hit call names must be declared in the catalog below; the
// xviewlint faultpoint analyzer rejects call sites that pass anything but
// a catalog constant, so the catalog is the complete inventory of ways
// this system can be made to fail.
package fault

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rxview/internal/obs"
)

// Point names one instrumented failure site. The value is the spec-string
// name used by ParseSpec and reported in injected errors.
type Point string

// The fault-point catalog. Declaring a point here is what makes it legal
// to instrument a site with it (the faultpoint analyzer checks call sites
// against this list) and addressable from a chaos spec.
const (
	// WALAppend fails the write(2) of a framed record batch to the active
	// segment. The log truncates the partial write away, so the records
	// were never durable and the commit rolls back.
	WALAppend Point = "wal.append"
	// WALFsync fails the fsync after an append: the bytes reached the
	// kernel but the durability guarantee cannot be given.
	WALFsync Point = "wal.fsync"
	// WALDiskFull fails an append with ENOSPC semantics — the classic
	// slowly-then-suddenly disk failure.
	WALDiskFull Point = "wal.disk-full"
	// WALSlowIO stalls an append for the rule's Latency without failing
	// it — a degrading disk or a saturated volume. It is how the overload
	// tests pin the writer while reads keep flowing.
	WALSlowIO Point = "wal.slow-io"
	// CheckpointWrite fails the checkpoint temp-file write, so sealing the
	// epoch fails while the log itself keeps accepting appends.
	CheckpointWrite Point = "wal.checkpoint"
	// CrashBeforeFsync simulates the process dying after write(2) but
	// before fsync: the record never becomes durable (the partial write is
	// truncated away), the commit fails, and the log is dead until
	// reopened.
	CrashBeforeFsync Point = "wal.crash-before-fsync"
	// CrashAfterFsync simulates the process dying just after fsync: the
	// record IS durable and the commit verdict stands — failing it would
	// reject a write that survives recovery — but the log is dead for
	// every append after it.
	CrashAfterFsync Point = "wal.crash-after-fsync"
	// StorageApply fails a Backend.Apply before any mutation lands, so the
	// relational execution of a translated ΔR is refused and the update
	// rejects cleanly.
	StorageApply Point = "storage.apply"
)

// catalog is the registered point set, in stable order.
var catalog = []Point{
	WALAppend,
	WALFsync,
	WALDiskFull,
	WALSlowIO,
	CheckpointWrite,
	CrashBeforeFsync,
	CrashAfterFsync,
	StorageApply,
}

// Catalog returns every registered fault point, in stable order.
func Catalog() []Point {
	return append([]Point(nil), catalog...)
}

// Registered reports whether p is a cataloged fault point.
func Registered(p Point) bool {
	for _, c := range catalog {
		if c == p {
			return true
		}
	}
	return false
}

// ErrInjected is the sentinel every injected failure matches under
// errors.Is. The concrete type is *InjectedError.
var ErrInjected = errors.New("fault: injected failure")

// InjectedError is one fired fault. Seq is the plan-wide firing ordinal
// (1-based), so a failure can be replayed by seed + sequence number.
type InjectedError struct {
	Point Point
	Seq   uint64
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("fault: injected %s (firing #%d)", e.Point, e.Seq)
}

// Is matches ErrInjected.
func (e *InjectedError) Is(target error) bool { return target == ErrInjected }

// Rule arms one fault point. Zero values mean "fire on every hit once
// eligible": After skips the first hits, Every then fires each Every'th
// eligible hit (default 1), Count caps total firings (0 = unlimited), and
// Prob — when non-zero — replaces Every with a per-hit Bernoulli draw from
// the plan's seeded source. Latency turns the firing into a stall instead
// of an error (the WALSlowIO shape); rules on other points may combine a
// Latency with Err semantics by arming two rules on two points.
type Rule struct {
	Point   Point
	After   int           // eligible only after this many hits
	Every   int           // fire each Every'th eligible hit (default 1)
	Count   int           // stop after this many firings (0 = unlimited)
	Prob    float64       // per-hit firing probability (overrides Every)
	Latency time.Duration // stall instead of failing
}

// ruleState is one armed rule plus its hit/fire counters.
type ruleState struct {
	Rule
	hits  int
	fired int
}

// Plan is an armed fault schedule: deterministic given its seed and the
// hit sequence. Hits may arrive from any goroutine (the WAL sites are
// single-writer, but storage reads are not); the plan locks internally.
type Plan struct {
	mu    sync.Mutex
	rng   *splitmix
	rules map[Point][]*ruleState
	seq   uint64 // total firings, plan-wide
	fires map[Point]uint64
}

// NewPlan arms the rules under one seed. Unknown points are rejected —
// arming a point nothing is instrumented with would silently test nothing.
func NewPlan(seed int64, rules ...Rule) (*Plan, error) {
	p := &Plan{
		rng:   newSplitmix(uint64(seed)),
		rules: make(map[Point][]*ruleState),
		fires: make(map[Point]uint64),
	}
	for _, r := range rules {
		if !Registered(r.Point) {
			return nil, fmt.Errorf("fault: unknown point %q (catalog: %v)", r.Point, catalog)
		}
		if r.Every <= 0 {
			r.Every = 1
		}
		p.rules[r.Point] = append(p.rules[r.Point], &ruleState{Rule: r})
	}
	return p, nil
}

// Fires returns how many times each point has fired under this plan.
func (p *Plan) Fires() map[Point]uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[Point]uint64, len(p.fires))
	for k, v := range p.fires {
		out[k] = v
	}
	return out
}

// active is the process-wide installed plan; nil means every Hit is a
// single atomic load.
var active atomic.Pointer[Plan]

// Install arms the plan process-wide. Tests must pair it with Uninstall
// (t.Cleanup) and must not run fault-armed tests in parallel.
func Install(p *Plan) { active.Store(p) }

// Uninstall disarms fault injection.
func Uninstall() { active.Store(nil) }

// Active reports whether a plan is installed.
func Active() bool { return active.Load() != nil }

// Hit is the fault point: instrumented sites call it with their catalog
// constant and propagate a non-nil return as the site's failure. Latency
// rules stall and return nil. With no plan installed the cost is one
// atomic pointer load.
//
// xviewlint:hot-path
func Hit(point Point) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	return p.hit(point)
}

func (p *Plan) hit(point Point) error {
	p.mu.Lock()
	rules := p.rules[point]
	var fire *ruleState
	for _, rs := range rules {
		rs.hits++
		if rs.Count > 0 && rs.fired >= rs.Count {
			continue
		}
		if rs.hits <= rs.After {
			continue
		}
		if rs.Prob > 0 {
			if p.rng.float64() >= rs.Prob {
				continue
			}
		} else if (rs.hits-rs.After)%rs.Every != 0 {
			continue
		}
		fire = rs
		break
	}
	if fire == nil {
		p.mu.Unlock()
		return nil
	}
	fire.fired++
	p.seq++
	p.fires[point]++
	seq := p.seq
	latency := fire.Latency
	p.mu.Unlock()

	metrics().fired.Inc()
	if latency > 0 {
		time.Sleep(latency)
		return nil
	}
	return &InjectedError{Point: point, Seq: seq}
}

// splitmix is a tiny deterministic PRNG (splitmix64). The plan cannot use
// math/rand's global source — determinism across plans requires private
// state — and needs nothing fancier than uniform 64-bit draws.
type splitmix struct{ state uint64 }

func newSplitmix(seed uint64) *splitmix { return &splitmix{state: seed} }

func (s *splitmix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 draws uniformly from [0, 1).
func (s *splitmix) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// faultMetrics counts firings on the process-wide registry, registered
// lazily like the WAL families so importing this package costs nothing
// until a fault actually fires.
type faultMetrics struct {
	fired *obs.Counter
}

var (
	metOnce sync.Once
	fm      *faultMetrics
)

func metrics() *faultMetrics {
	metOnce.Do(func() {
		fm = &faultMetrics{
			fired: obs.Default().NewCounter("xview_fault_injections_total",
				"Fault-point firings (errors and injected stalls combined)."),
		}
	})
	return fm
}
