package fault

import (
	"errors"
	"testing"
	"time"
)

func TestCatalogRegistered(t *testing.T) {
	for _, p := range Catalog() {
		if !Registered(p) {
			t.Errorf("catalog point %q not Registered", p)
		}
	}
	if Registered("wal.nonexistent") {
		t.Error("unknown point reported registered")
	}
}

func TestNewPlanRejectsUnknownPoint(t *testing.T) {
	if _, err := NewPlan(1, Rule{Point: "bogus"}); err == nil {
		t.Fatal("NewPlan accepted an uncataloged point")
	}
}

func TestHitDisabledIsNil(t *testing.T) {
	Uninstall()
	if err := Hit(WALFsync); err != nil {
		t.Fatalf("Hit with no plan: %v", err)
	}
	if Active() {
		t.Fatal("Active with no plan installed")
	}
}

// TestAfterEveryCount checks the counting rule shape: skip After hits,
// then fire each Every'th, at most Count times.
func TestAfterEveryCount(t *testing.T) {
	p, err := NewPlan(7, Rule{Point: WALAppend, After: 2, Every: 3, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	Install(p)
	t.Cleanup(Uninstall)
	var fires []int
	for i := 1; i <= 12; i++ {
		if err := Hit(WALAppend); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: error does not match ErrInjected: %v", i, err)
			}
			var ie *InjectedError
			if !errors.As(err, &ie) || ie.Point != WALAppend {
				t.Fatalf("hit %d: bad InjectedError: %v", i, err)
			}
			fires = append(fires, i)
		}
	}
	// Eligible from hit 3; every 3rd eligible hit fires: hits 5 and 8.
	want := []int{5, 8}
	if len(fires) != len(want) || fires[0] != want[0] || fires[1] != want[1] {
		t.Fatalf("fired at hits %v, want %v", fires, want)
	}
	if got := p.Fires()[WALAppend]; got != 2 {
		t.Fatalf("Fires() = %d, want 2", got)
	}
}

// TestSeedDeterminism: the same seed and hit sequence produce the same
// firing pattern for probabilistic rules; a different seed diverges.
func TestSeedDeterminism(t *testing.T) {
	pattern := func(seed int64) []bool {
		p, err := NewPlan(seed, Rule{Point: WALFsync, Prob: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 200)
		for i := range out {
			out[i] = p.hit(WALFsync) != nil
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 200-hit patterns")
	}
}

func TestLatencyRuleStallsWithoutError(t *testing.T) {
	p, err := NewPlan(1, Rule{Point: WALSlowIO, Latency: 10 * time.Millisecond, Count: 1})
	if err != nil {
		t.Fatal(err)
	}
	Install(p)
	t.Cleanup(Uninstall)
	t0 := time.Now()
	if err := Hit(WALSlowIO); err != nil {
		t.Fatalf("latency rule returned an error: %v", err)
	}
	if d := time.Since(t0); d < 10*time.Millisecond {
		t.Fatalf("latency rule stalled only %v", d)
	}
	if err := Hit(WALSlowIO); err != nil {
		t.Fatalf("exhausted latency rule: %v", err)
	}
}

func TestParseSpec(t *testing.T) {
	rules, err := ParseSpec("wal.fsync:after=100,count=5; wal.slow-io:latency=5ms,every=10;storage.apply:prob=0.25")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("got %d rules", len(rules))
	}
	if rules[0].Point != WALFsync || rules[0].After != 100 || rules[0].Count != 5 {
		t.Fatalf("rule 0 = %+v", rules[0])
	}
	if rules[1].Point != WALSlowIO || rules[1].Latency != 5*time.Millisecond || rules[1].Every != 10 {
		t.Fatalf("rule 1 = %+v", rules[1])
	}
	if rules[2].Point != StorageApply || rules[2].Prob != 0.25 {
		t.Fatalf("rule 2 = %+v", rules[2])
	}
	for _, bad := range []string{
		"", "nope", "wal.fsync:zap=1", "wal.fsync:prob=2", "wal.fsync:after=x",
		"wal.fsync:latency=-1s", "wal.fsync:after",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}
