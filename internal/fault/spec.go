package fault

// The chaos spec grammar, shared by `xviewd -chaos` and the benchrunner
// chaos experiment:
//
//	spec  := arm (";" arm)*
//	arm   := point [":" opt ("," opt)*]
//	opt   := "after=" N | "every=" N | "count=" N | "prob=" F
//	       | "latency=" DUR
//
// e.g. "wal.fsync:after=100,count=5;wal.slow-io:latency=5ms,every=10".
// A bare point with no options fires on every hit.

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSpec parses the chaos spec grammar into rules for NewPlan.
func ParseSpec(spec string) ([]Rule, error) {
	var rules []Rule
	for _, arm := range strings.Split(spec, ";") {
		arm = strings.TrimSpace(arm)
		if arm == "" {
			continue
		}
		name, opts, _ := strings.Cut(arm, ":")
		r := Rule{Point: Point(strings.TrimSpace(name))}
		if !Registered(r.Point) {
			return nil, fmt.Errorf("fault: unknown point %q in spec (catalog: %v)", name, catalog)
		}
		if opts != "" {
			for _, opt := range strings.Split(opts, ",") {
				key, val, ok := strings.Cut(strings.TrimSpace(opt), "=")
				if !ok {
					return nil, fmt.Errorf("fault: spec option %q is not key=value", opt)
				}
				if err := setOpt(&r, key, val); err != nil {
					return nil, err
				}
			}
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("fault: empty chaos spec")
	}
	return rules, nil
}

func setOpt(r *Rule, key, val string) error {
	switch key {
	case "after", "every", "count":
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return fmt.Errorf("fault: spec %s=%q: want a non-negative integer", key, val)
		}
		switch key {
		case "after":
			r.After = n
		case "every":
			r.Every = n
		case "count":
			r.Count = n
		}
	case "prob":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 || f > 1 {
			return fmt.Errorf("fault: spec prob=%q: want a probability in [0,1]", val)
		}
		r.Prob = f
	case "latency":
		d, err := time.ParseDuration(val)
		if err != nil || d < 0 {
			return fmt.Errorf("fault: spec latency=%q: want a duration", val)
		}
		r.Latency = d
	default:
		return fmt.Errorf("fault: unknown spec option %q (want after, every, count, prob or latency)", key)
	}
	return nil
}
