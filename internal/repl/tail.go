// Package repl is the transport-neutral half of the replication layer: the
// live tail of a primary's committed change log and the Source that streams
// it — WAL catch-up for the cold range, the in-memory ring for the hot
// range, a long-poll wait when a follower is caught up. The HTTP endpoints
// and the follower's apply loop live in the server layer; this package only
// moves framed record bytes.
//
// The correctness pivot is the durable watermark. WAL segment bytes are
// visible to concurrent readers the moment write(2) returns, including
// bytes a failed fsync is about to truncate back out — so nothing here
// trusts the files alone. A record is streamable only once the commit
// observer has published it to the Tail, which happens strictly after the
// sink accepted it; the watermark the Tail advances is what separates the
// primary's acknowledged history from in-flight bytes.
package repl

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// framed is one committed record in wire form.
type framed struct {
	gen   uint64
	bytes []byte
}

// Tail is the live end of the change log: a bounded ring of the newest
// framed records plus the durable watermark and a broadcast that wakes
// long-polling streams. One producer (the writer goroutine, via the commit
// observer), many concurrent readers.
type Tail struct {
	durable atomic.Uint64

	mu   sync.Mutex
	ring []framed // generation-ascending, bounded by max
	max  int
	wake chan struct{} // closed and replaced on every publish
}

// NewTail returns a tail whose watermark starts at the primary's current
// generation. capacity bounds the ring (default 1024 records); streams that
// fall further behind catch up from the WAL files instead.
func NewTail(start uint64, capacity int) *Tail {
	if capacity <= 0 {
		capacity = 1024
	}
	t := &Tail{max: capacity, wake: make(chan struct{})}
	t.durable.Store(start)
	return t
}

// Publish appends one durably committed record's framed bytes and advances
// the watermark to gen. The caller is the single writer; generations arrive
// contiguously. The frame must not be mutated afterwards.
func (t *Tail) Publish(gen uint64, frame []byte) {
	t.mu.Lock()
	t.ring = append(t.ring, framed{gen: gen, bytes: frame})
	if len(t.ring) > t.max {
		// Compact to a fresh backing array so dropped frames are collectable.
		keep := t.ring[len(t.ring)-t.max:]
		t.ring = append(make([]framed, 0, t.max+t.max/4), keep...)
	}
	wake := t.wake
	t.wake = make(chan struct{})
	t.durable.Store(gen)
	t.mu.Unlock()
	close(wake)
}

// Durable returns the newest generation the sink has accepted — the upper
// bound of what a stream may emit.
func (t *Tail) Durable() uint64 { return t.durable.Load() }

// Frames returns the framed records of generations (from, to] when the ring
// still holds all of them; ok=false means the range has aged out and the
// caller must scan the WAL files.
func (t *Tail) Frames(from, to uint64) (frames [][]byte, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) == 0 || t.ring[0].gen > from+1 {
		return nil, false
	}
	for _, f := range t.ring {
		if f.gen <= from {
			continue
		}
		if f.gen > to {
			break
		}
		frames = append(frames, f.bytes)
	}
	return frames, true
}

// Wait blocks until the durable generation exceeds gen, returning true, or
// until ctx ends or the poll window elapses, returning false.
func (t *Tail) Wait(ctx context.Context, gen uint64, window time.Duration) bool {
	timer := time.NewTimer(window)
	defer timer.Stop()
	for {
		t.mu.Lock()
		wake := t.wake
		t.mu.Unlock()
		if t.Durable() > gen {
			return true
		}
		select {
		case <-wake:
		case <-ctx.Done():
			return false
		case <-timer.C:
			return false
		}
	}
}
