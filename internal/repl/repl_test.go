package repl

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"rxview/internal/dag"
	"rxview/internal/relational"
	"rxview/internal/wal"
)

func rec(g uint64) wal.Record {
	return wal.Record{
		Gen: g,
		Delta: []dag.DeltaOp{{Kind: dag.DeltaNodeAdd, Node: dag.NodeID(g),
			Type: fmt.Sprintf("t%d", g), Attr: relational.Tuple{relational.Str("a")}}},
		DR: []relational.Mutation{{Table: "r", Insert: true,
			Tuple: relational.Tuple{relational.Int(int64(g))}}},
	}
}

// seed opens a WAL with records 1..n and returns it with a matching source.
func seed(t *testing.T, n uint64) (*wal.Log, *Source) {
	t.Helper()
	dir := t.TempDir()
	l, _, err := wal.Open(dir, wal.Options{Policy: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	if err := l.WriteCheckpoint(0, []byte("genesis")); err != nil {
		t.Fatal(err)
	}
	tail := NewTail(0, 8)
	for g := uint64(1); g <= n; g++ {
		if err := l.Append([]wal.Record{rec(g)}); err != nil {
			t.Fatal(err)
		}
		tail.Publish(g, wal.AppendFramedRecord(nil, rec(g)))
	}
	return l, NewSource(dir, tail)
}

// collect drains one Stream poll into decoded generations.
func collect(t *testing.T, s *Source, from uint64, window time.Duration) []uint64 {
	t.Helper()
	var gens []uint64
	err := s.Stream(context.Background(), from, window, func(gen uint64, frame []byte) error {
		fr := wal.NewFrameReader(bytes.NewReader(frame))
		r, err := fr.Next()
		if err != nil {
			return err
		}
		if r.Gen != gen {
			t.Fatalf("frame for generation %d announced as %d", r.Gen, gen)
		}
		gens = append(gens, gen)
		return nil
	})
	if err != nil {
		t.Fatalf("Stream(from=%d): %v", from, err)
	}
	return gens
}

func TestStreamServesRingAndFiles(t *testing.T) {
	_, s := seed(t, 12) // ring capacity 8: generations 1..4 have aged out
	if d := s.Durable(); d != 12 {
		t.Fatalf("durable = %d, want 12", d)
	}
	// From 0: the ring misses, the file scan serves all 12.
	gens := collect(t, s, 0, 10*time.Millisecond)
	if len(gens) != 12 || gens[0] != 1 || gens[11] != 12 {
		t.Fatalf("cold stream got %v", gens)
	}
	// From 6: inside the ring.
	gens = collect(t, s, 6, 10*time.Millisecond)
	if len(gens) != 6 || gens[0] != 7 {
		t.Fatalf("hot stream got %v", gens)
	}
	// Caught up: the poll window elapses cleanly with nothing emitted.
	if gens = collect(t, s, 12, 10*time.Millisecond); len(gens) != 0 {
		t.Fatalf("caught-up stream emitted %v", gens)
	}
}

func TestStreamWakesOnPublish(t *testing.T) {
	l, s := seed(t, 3)
	done := make(chan []uint64, 1)
	go func() {
		var gens []uint64
		s.Stream(context.Background(), 3, 2*time.Second, func(gen uint64, _ []byte) error {
			gens = append(gens, gen)
			if gen == 5 {
				return context.Canceled // stop the poll from the consumer side
			}
			return nil
		})
		done <- gens
	}()
	time.Sleep(20 * time.Millisecond) // the stream is parked in Wait now
	for g := uint64(4); g <= 5; g++ {
		if err := l.Append([]wal.Record{rec(g)}); err != nil {
			t.Fatal(err)
		}
		s.Tail().Publish(g, wal.AppendFramedRecord(nil, rec(g)))
	}
	select {
	case gens := <-done:
		if len(gens) != 2 || gens[0] != 4 || gens[1] != 5 {
			t.Fatalf("woken stream got %v", gens)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream never woke on publish")
	}
}

func TestStreamReportsPrunedRange(t *testing.T) {
	l, s := seed(t, 3)
	// Two checkpoints prune the segment holding generations 1..3.
	if err := l.WriteCheckpoint(3, []byte("at3")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]wal.Record{rec(4)}); err != nil {
		t.Fatal(err)
	}
	s.Tail().Publish(4, wal.AppendFramedRecord(nil, rec(4)))
	if err := l.WriteCheckpoint(4, []byte("at4")); err != nil {
		t.Fatal(err)
	}
	// A fresh tail models a restarted primary: the ring is empty, so the
	// cold scan must notice the pruned range instead of serving a gap.
	cold := NewSource(l.Dir(), NewTail(4, 8))
	err := cold.Stream(context.Background(), 0, 10*time.Millisecond, func(uint64, []byte) error { return nil })
	if !IsPruned(err) {
		t.Fatalf("stream over pruned range: %v, want pruned", err)
	}
	if oldest, err := cold.Oldest(); err != nil || oldest != 3 {
		t.Fatalf("Oldest = %d, %v; want 3", oldest, err)
	}
}

func TestTailWatermarkGatesEmission(t *testing.T) {
	l, s := seed(t, 2)
	// Bytes on disk past the watermark — an append whose commit has not
	// been acknowledged yet — must stay invisible to streams.
	if err := l.Append([]wal.Record{rec(3)}); err != nil {
		t.Fatal(err)
	}
	gens := collect(t, s, 0, 10*time.Millisecond)
	if len(gens) != 2 {
		t.Fatalf("stream emitted %v past the durable watermark", gens)
	}
	s.Tail().Publish(3, wal.AppendFramedRecord(nil, rec(3)))
	if gens = collect(t, s, 2, 10*time.Millisecond); len(gens) != 1 || gens[0] != 3 {
		t.Fatalf("post-publish stream got %v", gens)
	}
}
