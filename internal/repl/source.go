package repl

import (
	"context"
	"errors"
	"fmt"
	"time"

	"rxview/internal/wal"
)

// ErrPruned re-exports the WAL's pruned-range error: the generations a
// follower asked for were claimed by checkpointing. The follower restarts
// from the newest checkpoint (the serving layer maps this to 410 Gone).
var ErrPruned = wal.ErrPruned

// Source streams a primary's committed change log from a given generation:
// the cold range comes from read-only WAL scans, the hot range from the
// Tail's ring, and a caught-up stream long-polls the Tail's broadcast.
type Source struct {
	dir  string
	tail *Tail
}

// NewSource combines a WAL directory with its live tail. The tail's
// watermark must already be initialized to the recovered generation.
func NewSource(dir string, tail *Tail) *Source {
	return &Source{dir: dir, tail: tail}
}

// Tail returns the live tail (the commit observer publishes into it).
func (s *Source) Tail() *Tail { return s.tail }

// Durable returns the newest streamable generation.
func (s *Source) Durable() uint64 { return s.tail.Durable() }

// Oldest returns the oldest generation a stream can resume from without a
// checkpoint refetch.
func (s *Source) Oldest() (uint64, error) { return wal.Oldest(s.dir) }

// Stream emits the framed records of every generation past from, in order,
// calling emit once per record. When the stream catches up it waits up to
// window for new commits; a window with no progress ends the poll cleanly
// (nil), which is how a chunked HTTP response recycles its connection — the
// follower reconnects with its new from. Context cancellation also returns
// nil via the idle wait; a pruned range returns ErrPruned.
func (s *Source) Stream(ctx context.Context, from uint64, window time.Duration, emit func(gen uint64, frame []byte) error) error {
	m := replmetrics()
	m.streams.Inc()
	for {
		durable := s.tail.Durable()
		if durable > from {
			next, err := s.emitRange(ctx, from, durable, emit)
			if err != nil {
				return err
			}
			if next == from {
				// The watermark says the range is durable but neither the
				// ring nor the files produced it — a prune raced the scan.
				return fmt.Errorf("repl: generations %d..%d unavailable: %w", from+1, durable, ErrPruned)
			}
			from = next
			continue
		}
		if !s.tail.Wait(ctx, from, window) {
			return nil // idle poll window or canceled client: clean end
		}
	}
}

// emitRange sends the frames of (from, to], preferring the ring, and
// returns the last generation emitted.
func (s *Source) emitRange(ctx context.Context, from, to uint64, emit func(gen uint64, frame []byte) error) (uint64, error) {
	m := replmetrics()
	if frames, ok := s.tail.Frames(from, to); ok {
		m.tailHits.Inc()
		for i, f := range frames {
			if err := ctx.Err(); err != nil {
				return from, err
			}
			if err := emit(from+uint64(i)+1, f); err != nil {
				return from, err
			}
			m.recs.Inc()
			m.bytes.Add(uint64(len(f)))
		}
		return from + uint64(len(frames)), nil
	}
	m.tailMisses.Inc()
	recs, err := wal.ScanFrom(s.dir, from, to)
	if err != nil {
		return from, err
	}
	for _, r := range recs {
		if err := ctx.Err(); err != nil {
			return from, err
		}
		frame := wal.AppendFramedRecord(nil, r)
		if err := emit(r.Gen, frame); err != nil {
			return from, err
		}
		m.recs.Inc()
		m.bytes.Add(uint64(len(frame)))
		from = r.Gen
	}
	return from, nil
}

// IsPruned reports whether err means the requested range was pruned.
func IsPruned(err error) bool { return errors.Is(err, ErrPruned) }
