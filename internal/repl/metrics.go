package repl

// Primary-side replication telemetry, on the process-wide obs.Default
// registry (the per-view follower metrics live on each engine's private
// registry in the server layer). The stream path is off the writer
// goroutine, but stays on the atomic fast-path API anyway: scraping is the
// only locked consumer.

import (
	"sync"

	"rxview/internal/obs"
)

type replMetrics struct {
	streams    *obs.Counter
	recs       *obs.Counter
	bytes      *obs.Counter
	tailHits   *obs.Counter
	tailMisses *obs.Counter
}

var (
	replOnce sync.Once
	rm       *replMetrics
)

func replmetrics() *replMetrics {
	replOnce.Do(func() {
		r := obs.Default()
		rm = &replMetrics{
			streams: r.NewCounter("xview_repl_streams_total",
				"Change-log stream polls served to followers."),
			recs: r.NewCounter("xview_repl_stream_records_total",
				"Commit records emitted to followers."),
			bytes: r.NewCounter("xview_repl_stream_bytes_total",
				"Framed bytes emitted to followers."),
			tailHits: r.NewCounter("xview_repl_tail_hits_total",
				"Stream ranges served from the in-memory tail ring."),
			tailMisses: r.NewCounter("xview_repl_tail_misses_total",
				"Stream ranges that fell back to a WAL segment scan."),
		}
	})
	return rm
}
