package atg

import (
	"fmt"

	"rxview/internal/dag"
	"rxview/internal/dtd"
	"rxview/internal/relational"
)

// PublishDAG materializes the DAG compression of σ(I) (§2.3): the view is
// generated top-down with reference to the DTD, but each subtree ST(A, $A)
// is expanded exactly once — gen_id memoization turns repeated occurrences
// into shared references.
func (c *Compiled) PublishDAG(db *relational.Database) (*dag.DAG, error) {
	d := dag.New(c.DTD.Root)
	if err := c.expand(d, db, d.Root(), make(map[dag.NodeID]int8)); err != nil {
		return nil, err
	}
	return d, nil
}

// PublishSubtree publishes ST(A, t) into an existing DAG: the subtree of
// type typ with semantic attribute t, generated from the current database.
// Already-present nodes are reused without re-expansion (their subtrees are
// consistent by the system invariant). It returns the subtree root.
//
// Callers that may reject the enclosing update should wrap the call in
// d.Begin()/d.Rollback(); the new nodes and edges are available from
// d.Changes().
func (c *Compiled) PublishSubtree(d *dag.DAG, db *relational.Database, typ string, attr relational.Tuple) (dag.NodeID, error) {
	if _, ok := c.DTD.Elems[typ]; !ok {
		return dag.InvalidNode, fmt.Errorf("atg: unknown element type %s", typ)
	}
	if err := c.checkAttr(typ, attr); err != nil {
		return dag.InvalidNode, err
	}
	root, created := d.AddNode(typ, attr)
	if !created {
		return root, nil
	}
	if err := c.expand(d, db, root, make(map[dag.NodeID]int8)); err != nil {
		return dag.InvalidNode, err
	}
	return root, nil
}

func (c *Compiled) checkAttr(typ string, attr relational.Tuple) error {
	decl := c.Attrs[typ]
	if len(attr) != len(decl) {
		return fmt.Errorf("atg: %s attribute has %d fields, want %d", typ, len(attr), len(decl))
	}
	for i, v := range attr {
		if v.K != decl[i].Type && !v.IsNull() {
			return fmt.Errorf("atg: %s.%s: kind %v, want %v", typ, decl[i].Name, v.K, decl[i].Type)
		}
	}
	return nil
}

// expand generates the children of node and recurses. state guards against
// cyclic source data (e.g. a prereq cycle), which would make the view
// infinite: 1 = in progress, 2 = done.
func (c *Compiled) expand(d *dag.DAG, db *relational.Database, node dag.NodeID, state map[dag.NodeID]int8) error {
	if state[node] == 2 {
		return nil
	}
	if state[node] == 1 {
		return fmt.Errorf("atg: cyclic source data: %s%s is its own descendant",
			d.Type(node), d.Attr(node))
	}
	state[node] = 1
	typ := d.Type(node)
	attr := d.Attr(node)
	prod := c.DTD.Elems[typ]

	addChild := func(childType string, childAttr relational.Tuple) error {
		id, created := d.AddNode(childType, childAttr)
		if state[id] == 1 {
			return fmt.Errorf("atg: cyclic source data: %s%s is its own descendant", childType, childAttr)
		}
		d.AddEdge(node, id)
		if created {
			return c.expand(d, db, id, state)
		}
		// Pre-existing node: its subtree is already complete (publishing
		// expands every new node exactly once, and updates keep the DAG
		// consistent), so do not re-expand.
		return nil
	}

	switch prod.Kind {
	case dtd.PCData, dtd.Empty:
		// leaves
	case dtd.Seq:
		for _, child := range prod.Children {
			r := c.rules[typ][child]
			childAttr := make(relational.Tuple, len(r.Proj))
			for i, it := range r.Proj {
				if it.FromParent >= 0 {
					childAttr[i] = attr[it.FromParent]
				} else {
					childAttr[i] = it.Const
				}
			}
			if err := addChild(child, childAttr); err != nil {
				return err
			}
		}
	case dtd.Star:
		child := prod.Children[0]
		r := c.rules[typ][child]
		rows, err := r.Query.Eval(db, []relational.Value(attr))
		if err != nil {
			return err
		}
		for _, row := range rows {
			if err := addChild(child, relational.Tuple(row)); err != nil {
				return err
			}
		}
	case dtd.Alt:
		total := 0
		for _, child := range distinct(prod.Children) {
			r := c.rules[typ][child]
			rows, err := r.Query.Eval(db, []relational.Value(attr))
			if err != nil {
				return err
			}
			total += len(rows)
			if total > 1 {
				return fmt.Errorf("atg: alternation %s: more than one alternative produced", typ)
			}
			for _, row := range rows {
				if err := addChild(child, relational.Tuple(row)); err != nil {
					return err
				}
			}
		}
		if total == 0 {
			return fmt.Errorf("atg: alternation %s%s: no alternative produced", typ, attr)
		}
	}
	state[node] = 2
	return nil
}

// Text returns the node-text function for the published view: PCDATA
// elements render their designated attribute component; other elements have
// no text. This is what XPath value filters p = "s" compare against.
func (c *Compiled) Text(d dag.Reader) func(dag.NodeID) (string, bool) {
	return func(id dag.NodeID) (string, bool) {
		typ := d.Type(id)
		if c.DTD.Elems[typ].Kind != dtd.PCData {
			return "", false
		}
		attr := d.Attr(id)
		idx := c.TextIndex[typ]
		if idx >= len(attr) {
			return "", false
		}
		return attr[idx].String(), true
	}
}
