package atg

import (
	"strings"
	"testing"

	"rxview/internal/dtd"
	"rxview/internal/relational"
)

// Registrar fixture: the σ0 ATG of Fig.2 over the schema R0 of Example 1.

func registrarSchema() *relational.Schema {
	return relational.MustSchema(
		relational.MustTableSchema("course", []relational.Column{
			{Name: "cno", Type: relational.KindString},
			{Name: "title", Type: relational.KindString},
			{Name: "dept", Type: relational.KindString},
		}, "cno"),
		relational.MustTableSchema("student", []relational.Column{
			{Name: "ssn", Type: relational.KindString},
			{Name: "name", Type: relational.KindString},
		}, "ssn"),
		relational.MustTableSchema("enroll", []relational.Column{
			{Name: "ssn", Type: relational.KindString},
			{Name: "cno", Type: relational.KindString},
		}, "ssn", "cno"),
		relational.MustTableSchema("prereq", []relational.Column{
			{Name: "cno1", Type: relational.KindString},
			{Name: "cno2", Type: relational.KindString},
		}, "cno1", "cno2"),
	)
}

func registrarDTD() *dtd.DTD {
	return dtd.MustNew("db", map[string]dtd.Production{
		"db":      {Kind: dtd.Star, Children: []string{"course"}},
		"course":  {Kind: dtd.Seq, Children: []string{"cno", "title", "prereq", "takenBy"}},
		"prereq":  {Kind: dtd.Star, Children: []string{"course"}},
		"takenBy": {Kind: dtd.Star, Children: []string{"student"}},
		"student": {Kind: dtd.Seq, Children: []string{"ssn", "name"}},
		"cno":     {Kind: dtd.PCData},
		"title":   {Kind: dtd.PCData},
		"ssn":     {Kind: dtd.PCData},
		"name":    {Kind: dtd.PCData},
	})
}

// registrarATG builds σ0 (Fig.2). $course = (cno, title); $prereq = (cno);
// $takenBy = (cno); $student = (ssn, name).
func registrarATG(t testing.TB) *Compiled {
	t.Helper()
	d := registrarDTD()
	s := registrarSchema()
	str := relational.KindString

	qDBCourse := &relational.SPJ{
		Name: "Qdb_course",
		From: []relational.TableRef{{Table: "course"}},
		Where: []relational.EqPred{
			{Left: relational.Col(0, 2), Right: relational.Const(relational.Str("CS"))},
		},
		Selects: []relational.SelectItem{
			{As: "cno", Src: relational.Col(0, 0)},
			{As: "title", Src: relational.Col(0, 1)},
		},
	}
	qPrereqCourse := &relational.SPJ{
		Name:    "Qprereq_course",
		NParams: 1,
		From:    []relational.TableRef{{Table: "prereq"}, {Table: "course"}},
		Where: []relational.EqPred{
			{Left: relational.Col(0, 0), Right: relational.Param(0)},
			{Left: relational.Col(0, 1), Right: relational.Col(1, 0)},
		},
		Selects: []relational.SelectItem{
			{As: "cno", Src: relational.Col(1, 0)},
			{As: "title", Src: relational.Col(1, 1)},
		},
	}
	qTakenByStudent := &relational.SPJ{
		Name:    "QtakenBy_student",
		NParams: 1,
		From:    []relational.TableRef{{Table: "enroll"}, {Table: "student"}},
		Where: []relational.EqPred{
			{Left: relational.Col(0, 1), Right: relational.Param(0)}, // e.cno = $takenBy
			{Left: relational.Col(0, 0), Right: relational.Col(1, 0)},
		},
		Selects: []relational.SelectItem{
			{As: "ssn", Src: relational.Col(1, 0)},
			{As: "name", Src: relational.Col(1, 1)},
		},
	}

	return NewBuilder(d, s).
		Attr("course", Field("cno", str), Field("title", str)).
		Attr("prereq", Field("cno", str)).
		Attr("takenBy", Field("cno", str)).
		Attr("student", Field("ssn", str), Field("name", str)).
		Attr("cno", Field("v", str)).
		Attr("title", Field("v", str)).
		Attr("ssn", Field("v", str)).
		Attr("name", Field("v", str)).
		QueryRule("db", "course", qDBCourse).
		ProjRule("course", "cno", FromParent(0)).
		ProjRule("course", "title", FromParent(1)).
		ProjRule("course", "prereq", FromParent(0)).
		ProjRule("course", "takenBy", FromParent(0)).
		QueryRule("prereq", "course", qPrereqCourse).
		QueryRule("takenBy", "student", qTakenByStudent).
		ProjRule("student", "ssn", FromParent(0)).
		ProjRule("student", "name", FromParent(1)).
		MustBuild()
}

func registrarDB(t testing.TB) *relational.Database {
	t.Helper()
	db := relational.NewDatabase(registrarSchema())
	str := relational.Str
	db.Rel("course").MustInsert(str("CS650"), str("Advanced Topics"), str("CS"))
	db.Rel("course").MustInsert(str("CS320"), str("Databases"), str("CS"))
	db.Rel("course").MustInsert(str("CS240"), str("Algorithms"), str("CS"))
	db.Rel("course").MustInsert(str("EE100"), str("Circuits"), str("EE"))
	db.Rel("prereq").MustInsert(str("CS650"), str("CS320"))
	db.Rel("prereq").MustInsert(str("CS320"), str("CS240"))
	db.Rel("student").MustInsert(str("S01"), str("Ann"))
	db.Rel("student").MustInsert(str("S02"), str("Bob"))
	db.Rel("enroll").MustInsert(str("S01"), str("CS650"))
	db.Rel("enroll").MustInsert(str("S02"), str("CS650"))
	db.Rel("enroll").MustInsert(str("S02"), str("CS320"))
	return db
}

func TestPublishRegistrarDAG(t *testing.T) {
	c := registrarATG(t)
	db := registrarDB(t)
	d, err := c.PublishDAG(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CheckAcyclic(); err != nil {
		t.Fatal(err)
	}
	// 3 CS courses, each once (shared): CS320 appears top-level and under
	// CS650's prereq; CS240 top-level and under CS320's prereq.
	if got := len(d.NodesOfType("course")); got != 3 {
		t.Errorf("course nodes = %d", got)
	}
	c320, ok := d.Lookup("course", relational.Tuple{relational.Str("CS320"), relational.Str("Databases")})
	if !ok {
		t.Fatal("CS320 node missing")
	}
	if got := len(d.Parents(c320)); got != 2 {
		t.Errorf("CS320 parents = %d, want db + prereq(CS650)", got)
	}
	// Student S02 is shared by takenBy(CS650) and takenBy(CS320).
	s02, ok := d.Lookup("student", relational.Tuple{relational.Str("S02"), relational.Str("Bob")})
	if !ok {
		t.Fatal("S02 node missing")
	}
	if got := len(d.Parents(s02)); got != 2 {
		t.Errorf("S02 parents = %d", got)
	}
	// The EE course is filtered out.
	if _, ok := d.Lookup("course", relational.Tuple{relational.Str("EE100"), relational.Str("Circuits")}); ok {
		t.Error("EE100 should be filtered out by dept='CS'")
	}
	// Unfolded tree has more nodes than the DAG (compression).
	if ts := d.TreeSize(); int(ts) <= d.NumNodes() {
		t.Errorf("tree %v should exceed DAG %d", ts, d.NumNodes())
	}
}

func TestPublishedTreeShape(t *testing.T) {
	c := registrarATG(t)
	db := registrarDB(t)
	d, err := c.PublishDAG(db)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := d.Unfold(d.Root(), c.Text(d), 100000)
	if err != nil {
		t.Fatal(err)
	}
	xml := tree.XML()
	for _, want := range []string{
		"<cno>CS650</cno>", "<cno>CS320</cno>", "<cno>CS240</cno>",
		"<title>Databases</title>", "<ssn>S02</ssn>", "<name>Bob</name>",
		"<prereq>", "<takenBy>",
	} {
		if !strings.Contains(xml, want) {
			t.Errorf("tree missing %q", want)
		}
	}
	if strings.Contains(xml, "EE100") {
		t.Error("EE course leaked into the view")
	}
	// CS240 occurs at top level and under CS320's prereq, which itself
	// occurs twice (top level + under CS650): 3 occurrences of CS240.
	if got := strings.Count(xml, "<cno>CS240</cno>"); got != 3 {
		t.Errorf("CS240 occurrences = %d, want 3", got)
	}
}

func TestPublishSubtreeReusesExisting(t *testing.T) {
	c := registrarATG(t)
	db := registrarDB(t)
	d, err := c.PublishDAG(db)
	if err != nil {
		t.Fatal(err)
	}
	before := d.NumNodes()
	// Publishing an existing course is a no-op.
	id, err := c.PublishSubtree(d, db, "course",
		relational.Tuple{relational.Str("CS240"), relational.Str("Algorithms")})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumNodes() != before {
		t.Errorf("nodes grew from %d to %d", before, d.NumNodes())
	}
	if got, _ := d.Lookup("course", relational.Tuple{relational.Str("CS240"), relational.Str("Algorithms")}); got != id {
		t.Error("wrong node returned")
	}
	// Publishing a new course creates its skeleton (cno, title, prereq,
	// takenBy) and links to existing children via the database.
	db.Rel("course").MustInsert(relational.Str("CS500"), relational.Str("Systems"), relational.Str("CS"))
	db.Rel("prereq").MustInsert(relational.Str("CS500"), relational.Str("CS240"))
	id, err = c.PublishSubtree(d, db, "course",
		relational.Tuple{relational.Str("CS500"), relational.Str("Systems")})
	if err != nil {
		t.Fatal(err)
	}
	// New nodes: course + cno + title + prereq + takenBy = 5 (CS240 reused).
	if got := d.NumNodes() - before; got != 5 {
		t.Errorf("new nodes = %d, want 5", got)
	}
	pr, _ := d.Lookup("prereq", relational.Tuple{relational.Str("CS500")})
	c240, _ := d.Lookup("course", relational.Tuple{relational.Str("CS240"), relational.Str("Algorithms")})
	if !d.HasEdge(pr, c240) {
		t.Error("CS500's prereq should link to existing CS240")
	}
	_ = id
}

func TestPublishDetectsCyclicData(t *testing.T) {
	c := registrarATG(t)
	db := registrarDB(t)
	// CS240 -> CS650 closes a prereq cycle.
	db.Rel("prereq").MustInsert(relational.Str("CS240"), relational.Str("CS650"))
	if _, err := c.PublishDAG(db); err == nil || !strings.Contains(err.Error(), "cyclic") {
		t.Errorf("cycle not detected: %v", err)
	}
}

func TestTextFunction(t *testing.T) {
	c := registrarATG(t)
	db := registrarDB(t)
	d, _ := c.PublishDAG(db)
	text := c.Text(d)
	cno, ok := d.Lookup("cno", relational.Tuple{relational.Str("CS650")})
	if !ok {
		t.Fatal("cno node missing")
	}
	if s, ok := text(cno); !ok || s != "CS650" {
		t.Errorf("text(cno) = %q, %v", s, ok)
	}
	course, _ := d.Lookup("course", relational.Tuple{relational.Str("CS650"), relational.Str("Advanced Topics")})
	if _, ok := text(course); ok {
		t.Error("non-PCDATA node has text")
	}
}

func TestSourceTuples(t *testing.T) {
	c := registrarATG(t)
	r := c.Rule("prereq", "course")
	if r == nil || r.Prov == nil {
		t.Fatal("prereq→course rule missing provenance")
	}
	srcs := r.SourceTuples(
		relational.Tuple{relational.Str("CS650")},                              // $prereq
		relational.Tuple{relational.Str("CS320"), relational.Str("Databases")}) // $course
	if len(srcs) != 2 {
		t.Fatalf("sources = %v", srcs)
	}
	if srcs[0].Table != "prereq" || srcs[0].Key[0].S != "CS650" || srcs[0].Key[1].S != "CS320" {
		t.Errorf("prereq source = %v", srcs[0])
	}
	if srcs[1].Table != "course" || srcs[1].Key[0].S != "CS320" {
		t.Errorf("course source = %v", srcs[1])
	}
	if srcs[0].Encode() == srcs[1].Encode() {
		t.Error("Encode not distinguishing")
	}
}

func TestQueryRulesEnumeration(t *testing.T) {
	c := registrarATG(t)
	qr := c.QueryRules()
	if len(qr) != 3 { // db→course, prereq→course, takenBy→student
		t.Errorf("query rules = %d", len(qr))
	}
}

func TestCompileErrors(t *testing.T) {
	d := registrarDTD()
	s := registrarSchema()
	str := relational.KindString

	// Missing rule for a child.
	if _, err := NewBuilder(d, s).Build(); err == nil {
		t.Error("missing rules accepted")
	}
	// Root with attribute.
	b := NewBuilder(d, s).Attr("db", Field("x", str))
	if _, err := b.Build(); err == nil {
		t.Error("root attribute accepted")
	}
	// Non-key-preserving rule: the query joins enroll but the enroll key
	// (ssn, cno) is not derivable (no param binding for cno).
	dtd2 := dtd.MustNew("db", map[string]dtd.Production{
		"db": {Kind: dtd.Star, Children: []string{"s"}},
		"s":  {Kind: dtd.PCData},
	})
	broken := &relational.SPJ{
		Name: "broken",
		From: []relational.TableRef{{Table: "enroll"}, {Table: "student"}},
		Where: []relational.EqPred{
			{Left: relational.Col(0, 0), Right: relational.Col(1, 0)},
		},
		Selects: []relational.SelectItem{{As: "ssn", Src: relational.Col(1, 0)}},
	}
	_, err := NewBuilder(dtd2, s).
		Attr("s", Field("ssn", str)).
		QueryRule("db", "s", broken).
		Build()
	if err == nil || !strings.Contains(err.Error(), "key preserving") {
		t.Errorf("key preservation not enforced: %v", err)
	}
	// Arity mismatches.
	okQ := &relational.SPJ{
		Name:    "ok",
		From:    []relational.TableRef{{Table: "student"}},
		Selects: []relational.SelectItem{{As: "ssn", Src: relational.Col(0, 0)}},
	}
	_, err = NewBuilder(dtd2, s).
		Attr("s", Field("a", str), Field("b", str)). // 2 fields, query yields 1
		QueryRule("db", "s", okQ).
		Build()
	if err == nil {
		t.Error("projection arity mismatch accepted")
	}
	// PCDATA type without attribute.
	_, err = NewBuilder(dtd2, s).
		QueryRule("db", "s", okQ).
		Build()
	if err == nil {
		t.Error("PCDATA without attr accepted")
	}
	// Duplicate declarations.
	b2 := NewBuilder(dtd2, s).Attr("s", Field("v", str)).Attr("s", Field("v", str))
	if _, err := b2.QueryRule("db", "s", okQ).Build(); err == nil {
		t.Error("duplicate attr accepted")
	}
}

func TestProjRuleValidation(t *testing.T) {
	d := dtd.MustNew("db", map[string]dtd.Production{
		"db": {Kind: dtd.Star, Children: []string{"a"}},
		"a":  {Kind: dtd.Seq, Children: []string{"b"}},
		"b":  {Kind: dtd.PCData},
	})
	s := registrarSchema()
	str := relational.KindString
	q := &relational.SPJ{
		Name:    "q",
		From:    []relational.TableRef{{Table: "student"}},
		Selects: []relational.SelectItem{{As: "ssn", Src: relational.Col(0, 0)}},
	}
	// Out-of-range parent index in projection.
	_, err := NewBuilder(d, s).
		Attr("a", Field("k", str)).
		Attr("b", Field("v", str)).
		QueryRule("db", "a", q).
		ProjRule("a", "b", FromParent(5)).
		Build()
	if err == nil {
		t.Error("out-of-range projection accepted")
	}
	// Query rule where a projection rule is required.
	_, err = NewBuilder(d, s).
		Attr("a", Field("k", str)).
		Attr("b", Field("v", str)).
		QueryRule("db", "a", q).
		QueryRule("a", "b", q).
		Build()
	if err == nil {
		t.Error("query rule for sequence child accepted")
	}
	// Constant projection works.
	c, err := NewBuilder(d, s).
		Attr("a", Field("k", str)).
		Attr("b", Field("v", str)).
		QueryRule("db", "a", q).
		ProjRule("a", "b", ConstItem(relational.Str("fixed"))).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	db := relational.NewDatabase(s)
	db.Rel("student").MustInsert(relational.Str("S01"), relational.Str("Ann"))
	dg, err := c.PublishDAG(db)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := dg.Lookup("b", relational.Tuple{relational.Str("fixed")})
	if !ok {
		t.Fatal("constant-projected child missing")
	}
	if s, ok := c.Text(dg)(b); !ok || s != "fixed" {
		t.Errorf("text = %q", s)
	}
}

func TestAlternationPublish(t *testing.T) {
	d := dtd.MustNew("db", map[string]dtd.Production{
		"db":   {Kind: dtd.Star, Children: []string{"item"}},
		"item": {Kind: dtd.Alt, Children: []string{"yes", "no"}},
		"yes":  {Kind: dtd.PCData},
		"no":   {Kind: dtd.PCData},
	})
	s := relational.MustSchema(
		relational.MustTableSchema("t", []relational.Column{
			{Name: "k", Type: relational.KindString},
			{Name: "flag", Type: relational.KindString},
		}, "k"),
	)
	str := relational.KindString
	qItems := &relational.SPJ{
		Name:    "items",
		From:    []relational.TableRef{{Table: "t"}},
		Selects: []relational.SelectItem{{As: "k", Src: relational.Col(0, 0)}},
	}
	altQ := func(flag string) *relational.SPJ {
		return &relational.SPJ{
			Name:    "alt_" + flag,
			NParams: 1,
			From:    []relational.TableRef{{Table: "t"}},
			Where: []relational.EqPred{
				{Left: relational.Col(0, 0), Right: relational.Param(0)},
				{Left: relational.Col(0, 1), Right: relational.Const(relational.Str(flag))},
			},
			Selects: []relational.SelectItem{{As: "k", Src: relational.Col(0, 0)}},
		}
	}
	c, err := NewBuilder(d, s).
		Attr("item", Field("k", str)).
		Attr("yes", Field("k", str)).
		Attr("no", Field("k", str)).
		QueryRule("db", "item", qItems).
		QueryRule("item", "yes", altQ("y")).
		QueryRule("item", "no", altQ("n")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	db := relational.NewDatabase(s)
	db.Rel("t").MustInsert(relational.Str("a"), relational.Str("y"))
	db.Rel("t").MustInsert(relational.Str("b"), relational.Str("n"))
	dg, err := c.PublishDAG(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := dg.Lookup("yes", relational.Tuple{relational.Str("a")}); !ok {
		t.Error("alternative yes(a) missing")
	}
	if _, ok := dg.Lookup("no", relational.Tuple{relational.Str("b")}); !ok {
		t.Error("alternative no(b) missing")
	}
	if _, ok := dg.Lookup("no", relational.Tuple{relational.Str("a")}); ok {
		t.Error("wrong alternative produced")
	}
}
