// Package atg implements Attribute Translation Grammars (§2.2 of the paper):
// schema-directed mappings σ : R → D that publish a relational database as an
// XML view conforming to a (possibly recursive) DTD. Each element type A has
// a semantic attribute $A; each production's children are generated either by
// an SPJ query over the base relations parameterized by $A (star/alternation
// children) or by projecting $A (sequence children).
//
// Publishing materializes the DAG compression of the view directly (§2.3):
// the Skolem function gen_id of package dag shares every subtree ST(A, $A).
//
// The compiler enforces the key-preservation condition of §4.1 on every rule
// query and derives, for each, the provenance extractors that let the view
// update translators identify the deletable/insertable source tuples
// Sr(Q, t) of any edge.
package atg

import (
	"fmt"

	"rxview/internal/dtd"
	"rxview/internal/relational"
)

// AttrField declares one component of a semantic attribute $A.
type AttrField struct {
	Name string
	Type relational.Kind
}

// Field is shorthand for AttrField construction.
func Field(name string, typ relational.Kind) AttrField {
	return AttrField{Name: name, Type: typ}
}

// ProjItem defines one component of a sequence child's attribute: either a
// component of the parent's attribute or a constant.
type ProjItem struct {
	FromParent int              // index into parent attr; -1 for Const
	Const      relational.Value // used when FromParent < 0
}

// FromParent projects the i-th component of the parent attribute.
func FromParent(i int) ProjItem { return ProjItem{FromParent: i} }

// ConstItem injects a constant.
func ConstItem(v relational.Value) ProjItem { return ProjItem{FromParent: -1, Const: v} }

// Rule generates the Child elements under a Parent element. Exactly one of
// Query/Proj is set: star and alternation children are query rules (one child
// per result row; the row is the child's $B), sequence children are
// projection rules (exactly one child, attribute projected from $A).
type Rule struct {
	Parent, Child string
	Query         *relational.SPJ
	Proj          []ProjItem
}

// ATG is the un-compiled grammar definition. Use Builder to construct one
// and Compile to validate it and derive provenance.
type ATG struct {
	DTD    *dtd.DTD
	Schema *relational.Schema
	// Attrs declares $A per element type. The root has no attribute (its
	// $r is fixed); PCDATA types need at least one field.
	Attrs map[string][]AttrField
	// Rules maps parent type -> child type -> rule.
	Rules map[string]map[string]*Rule
	// TextIndex selects which attr component is a PCDATA type's text;
	// defaults to 0.
	TextIndex map[string]int
}

// Builder assembles an ATG with a fluent API.
type Builder struct {
	a    *ATG
	errs []error
}

// NewBuilder starts an ATG over the given DTD and relational schema.
func NewBuilder(d *dtd.DTD, s *relational.Schema) *Builder {
	return &Builder{a: &ATG{
		DTD:       d,
		Schema:    s,
		Attrs:     make(map[string][]AttrField),
		Rules:     make(map[string]map[string]*Rule),
		TextIndex: make(map[string]int),
	}}
}

// Attr declares the semantic attribute of an element type.
func (b *Builder) Attr(typ string, fields ...AttrField) *Builder {
	if _, dup := b.a.Attrs[typ]; dup {
		b.errs = append(b.errs, fmt.Errorf("atg: attribute of %s declared twice", typ))
	}
	b.a.Attrs[typ] = fields
	return b
}

// QueryRule attaches an SPJ query rule generating child elements under
// parent. The query's parameters are the parent attribute components in
// order; its projection list is the child attribute in order.
func (b *Builder) QueryRule(parent, child string, q *relational.SPJ) *Builder {
	b.addRule(&Rule{Parent: parent, Child: child, Query: q})
	return b
}

// ProjRule attaches a projection rule: the (single) child's attribute is
// assembled from parent attribute components and constants.
func (b *Builder) ProjRule(parent, child string, items ...ProjItem) *Builder {
	b.addRule(&Rule{Parent: parent, Child: child, Proj: items})
	return b
}

// Text selects which attribute component carries a PCDATA type's text.
func (b *Builder) Text(typ string, attrIndex int) *Builder {
	b.a.TextIndex[typ] = attrIndex
	return b
}

func (b *Builder) addRule(r *Rule) {
	m := b.a.Rules[r.Parent]
	if m == nil {
		m = make(map[string]*Rule)
		b.a.Rules[r.Parent] = m
	}
	if _, dup := m[r.Child]; dup {
		b.errs = append(b.errs, fmt.Errorf("atg: rule %s→%s declared twice", r.Parent, r.Child))
	}
	m[r.Child] = r
}

// Build compiles the grammar; see Compile.
func (b *Builder) Build() (*Compiled, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	return Compile(b.a)
}

// MustBuild is Build that panics on error.
func (b *Builder) MustBuild() *Compiled {
	c, err := b.Build()
	if err != nil {
		panic(err)
	}
	return c
}
