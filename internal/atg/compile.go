package atg

import (
	"fmt"

	"rxview/internal/dtd"
	"rxview/internal/relational"
)

// Provenance describes how to recover the base tuples that derive one edge of
// the view — the deletable source Sr(Q, t) machinery of §4.2. For each FROM
// entry of the rule query it gives, per key column, a derivation from the
// edge's (parent attr, child attr) pair.
type Provenance struct {
	// Tables lists the base tables of the rule query, in FROM order.
	Tables []string
	// KeySources[i][k] derives the k-th key column of Tables[i]; resolve
	// with the child attribute as the query output and the parent
	// attribute as the parameters.
	KeySources [][]relational.DerivationSource
}

// CompiledRule is a validated rule plus derived metadata.
type CompiledRule struct {
	*Rule
	// Prov is non-nil for query rules: the key-preservation provenance.
	Prov *Provenance
}

// Compiled is a validated ATG ready for publishing and update translation.
type Compiled struct {
	*ATG
	rules map[string]map[string]*CompiledRule
}

// Compile validates the ATG against its DTD and schema:
//
//   - every production child has exactly one rule of the right kind
//     (star/alternation children: query rule; sequence children: projection
//     rule); PCDATA and EMPTY types have none;
//   - query rules take the parent attribute as parameters and produce the
//     child attribute as projection, with matching arities and kinds;
//   - every query rule satisfies key preservation (§4.1): each base
//     relation's key columns are derivable from the edge's attributes via
//     the query's equality closure. Violations report which table and
//     columns to add to the attribute (the paper's "extend the projection
//     list" fix).
func Compile(a *ATG) (*Compiled, error) {
	if a.DTD == nil || a.Schema == nil {
		return nil, fmt.Errorf("atg: DTD and Schema are required")
	}
	if err := a.DTD.Validate(); err != nil {
		return nil, err
	}
	if len(a.Attrs[a.DTD.Root]) != 0 {
		return nil, fmt.Errorf("atg: root type %s must have an empty attribute", a.DTD.Root)
	}
	c := &Compiled{ATG: a, rules: make(map[string]map[string]*CompiledRule)}

	for _, typ := range a.DTD.Types() {
		prod := a.DTD.Elems[typ]
		attr := a.Attrs[typ]
		switch prod.Kind {
		case dtd.PCData:
			if len(attr) == 0 {
				return nil, fmt.Errorf("atg: PCDATA type %s needs an attribute to carry its text", typ)
			}
			ti := a.TextIndex[typ]
			if ti < 0 || ti >= len(attr) {
				return nil, fmt.Errorf("atg: %s: text index %d out of range", typ, ti)
			}
			fallthrough
		case dtd.Empty:
			if len(a.Rules[typ]) != 0 {
				return nil, fmt.Errorf("atg: leaf type %s must not have rules", typ)
			}
			continue
		}
		// Children must be covered exactly.
		rules := a.Rules[typ]
		if len(rules) != len(distinct(prod.Children)) {
			return nil, fmt.Errorf("atg: %s: %d rules for %d child types", typ, len(rules), len(distinct(prod.Children)))
		}
		for _, child := range prod.Children {
			r := rules[child]
			if r == nil {
				return nil, fmt.Errorf("atg: %s: missing rule for child %s", typ, child)
			}
			cr, err := c.compileRule(r, prod.Kind, attr, a.Attrs[child])
			if err != nil {
				return nil, err
			}
			m := c.rules[typ]
			if m == nil {
				m = make(map[string]*CompiledRule)
				c.rules[typ] = m
			}
			m[child] = cr
		}
	}
	return c, nil
}

func distinct(ss []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range ss {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func (c *Compiled) compileRule(r *Rule, prodKind dtd.ContentKind, parentAttr, childAttr []AttrField) (*CompiledRule, error) {
	name := r.Parent + "→" + r.Child
	switch prodKind {
	case dtd.Star, dtd.Alt:
		if r.Query == nil {
			return nil, fmt.Errorf("atg: rule %s: %v children need a query rule", name, prodKind)
		}
	case dtd.Seq:
		if r.Proj == nil {
			return nil, fmt.Errorf("atg: rule %s: sequence children need a projection rule", name)
		}
	}
	if r.Query != nil {
		q := r.Query
		if q.NParams != len(parentAttr) {
			return nil, fmt.Errorf("atg: rule %s: query takes %d params, parent attr has %d fields",
				name, q.NParams, len(parentAttr))
		}
		if len(q.Selects) != len(childAttr) {
			return nil, fmt.Errorf("atg: rule %s: query projects %d columns, child attr has %d fields",
				name, len(q.Selects), len(childAttr))
		}
		kp, err := relational.CheckKeyPreservation(c.Schema, q)
		if err != nil {
			return nil, fmt.Errorf("atg: rule %s: %w", name, err)
		}
		if !kp.Preserved() {
			for i, missing := range kp.Missing {
				return nil, fmt.Errorf(
					"atg: rule %s is not key preserving: key column(s) %v of %s are not derivable from ($%s, $%s); extend the attribute/projection to include them (§4.1)",
					name, missing, q.From[i].Table, r.Parent, r.Child)
			}
		}
		prov := &Provenance{KeySources: kp.KeySources}
		for _, ref := range q.From {
			prov.Tables = append(prov.Tables, ref.Table)
		}
		return &CompiledRule{Rule: r, Prov: prov}, nil
	}
	// Projection rule.
	if len(r.Proj) != len(childAttr) {
		return nil, fmt.Errorf("atg: rule %s: projects %d items, child attr has %d fields",
			name, len(r.Proj), len(childAttr))
	}
	for i, it := range r.Proj {
		if it.FromParent >= len(parentAttr) {
			return nil, fmt.Errorf("atg: rule %s item %d: parent attr index %d out of range",
				name, i, it.FromParent)
		}
	}
	return &CompiledRule{Rule: r}, nil
}

// Rule returns the compiled rule for a parent→child pair, or nil.
func (c *Compiled) Rule(parent, child string) *CompiledRule {
	return c.rules[parent][child]
}

// QueryRules returns every compiled query rule (the rules whose edges the
// relational view-update algorithms can translate), in DTD type order.
func (c *Compiled) QueryRules() []*CompiledRule {
	var out []*CompiledRule
	for _, parent := range c.DTD.Types() {
		prod := c.DTD.Elems[parent]
		for _, child := range distinct(prod.Children) {
			if r := c.rules[parent][child]; r != nil && r.Query != nil {
				out = append(out, r)
			}
		}
	}
	return out
}

// SourceTuples resolves the deletable/insertable source of an edge with the
// given parent and child attributes: for each base table of the rule query,
// the key values of the contributing tuple. This is Sr(Q, t) of §4.2,
// computable in O(1) per table thanks to key preservation.
func (r *CompiledRule) SourceTuples(parentAttr, childAttr relational.Tuple) []SourceKey {
	if r.Prov == nil {
		return nil
	}
	out := make([]SourceKey, 0, len(r.Prov.Tables))
	for i, table := range r.Prov.Tables {
		keys := make(relational.Tuple, len(r.Prov.KeySources[i]))
		for k, src := range r.Prov.KeySources[i] {
			keys[k] = src.Resolve(childAttr, parentAttr)
		}
		out = append(out, SourceKey{Table: table, Key: keys})
	}
	return out
}

// SourceKey identifies one base tuple by table and primary-key values.
type SourceKey struct {
	Table string
	Key   relational.Tuple
}

// Encode returns an injective string form, usable as a map key.
func (s SourceKey) Encode() string { return s.Table + "\x00" + s.Key.Encode() }

func (s SourceKey) String() string { return s.Table + s.Key.String() }
