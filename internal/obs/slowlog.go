package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// SlowEntry is one operation that exceeded the slow threshold.
type SlowEntry struct {
	At       time.Time     `json:"at"`
	Kind     string        `json:"kind"` // "query" | "commit" | ...
	Detail   string        `json:"detail"`
	Duration time.Duration `json:"duration_ns"`
	Gen      uint64        `json:"gen"`
}

// SlowLog is a fixed-capacity ring buffer of slow operations. Recording
// first compares against the threshold with a single atomic load — the
// common (fast) case takes the lock only when an operation is actually
// slow, so the hot path cost is one load and one compare. Reading the
// entries (SlowEntries) is the locked slow-path side.
type SlowLog struct {
	threshold atomic.Int64 // nanoseconds; 0 disables
	dropped   atomic.Uint64

	mu   sync.Mutex
	ring []SlowEntry
	next int // ring write cursor
	n    int // entries filled, <= len(ring)
}

// NewSlowLog returns a ring of the given capacity (minimum 1).
func NewSlowLog(capacity int) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	return &SlowLog{ring: make([]SlowEntry, capacity)}
}

// SetThreshold sets the duration above which operations are recorded;
// zero or negative disables the log entirely.
func (l *SlowLog) SetThreshold(d time.Duration) {
	l.threshold.Store(int64(d))
}

// Threshold returns the current threshold (0 = disabled).
func (l *SlowLog) Threshold() time.Duration {
	return time.Duration(l.threshold.Load())
}

// Record notes an operation if it exceeded the threshold. Cheap when it
// did not (or when instrumentation is disabled): one or two atomic loads.
func (l *SlowLog) Record(kind, detail string, d time.Duration, gen uint64) {
	th := l.threshold.Load()
	if th <= 0 || int64(d) < th || !enabled.Load() {
		return
	}
	e := SlowEntry{At: time.Now(), Kind: kind, Detail: detail, Duration: d, Gen: gen}
	l.mu.Lock()
	if l.n == len(l.ring) {
		l.dropped.Add(1)
	} else {
		l.n++
	}
	l.ring[l.next] = e
	l.next = (l.next + 1) % len(l.ring)
	l.mu.Unlock()
}

// Entries returns the recorded entries, newest first, plus how many older
// entries the ring has evicted. Locked-API side.
func (l *SlowLog) Entries() (entries []SlowEntry, dropped uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	entries = make([]SlowEntry, 0, l.n)
	for i := 0; i < l.n; i++ {
		idx := (l.next - 1 - i + len(l.ring)*2) % len(l.ring)
		entries = append(entries, l.ring[idx])
	}
	return entries, l.dropped.Load()
}
