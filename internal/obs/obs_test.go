package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("xview_test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.NewGauge("xview_test_depth", "a gauge")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	fams := r.Gather()
	if len(fams) != 2 {
		t.Fatalf("gathered %d families, want 2", len(fams))
	}
	if fams[0].Name != "xview_test_total" || fams[0].Samples[0].Value != 5 {
		t.Fatalf("counter family wrong: %+v", fams[0])
	}
	if fams[1].Name != "xview_test_depth" || fams[1].Samples[0].Value != 4 {
		t.Fatalf("gauge family wrong: %+v", fams[1])
	}
}

func TestFuncMetricsReadAtGatherTime(t *testing.T) {
	r := NewRegistry()
	v := 1.0
	r.NewCounterFunc("xview_fn_total", "func counter", func() float64 { return v })
	if got := r.Gather()[0].Samples[0].Value; got != 1 {
		t.Fatalf("first gather = %v, want 1", got)
	}
	v = 9
	if got := r.Gather()[0].Samples[0].Value; got != 9 {
		t.Fatalf("second gather = %v, want 9", got)
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	mustPanic("bad name", func() { r.NewCounter("0bad", "h") })
	mustPanic("bad label", func() { r.NewCounter("ok_total", "h", Label{Key: "0k", Value: "v"}) })
	r.NewCounter("dup_total", "h")
	mustPanic("duplicate series", func() { r.NewCounter("dup_total", "h") })
	mustPanic("type clash", func() { r.NewGauge("dup_total", "h") })
	mustPanic("unsorted bounds", func() { r.NewHistogram("h_seconds", "h", []float64{2, 1}) })
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("xview_h_seconds", "hist", []float64{0.01, 0.1, 1})
	for i := 0; i < 50; i++ {
		h.ObserveValue(0.005) // first bucket
	}
	for i := 0; i < 45; i++ {
		h.ObserveValue(0.05) // second bucket
	}
	for i := 0; i < 4; i++ {
		h.ObserveValue(0.5) // third bucket
	}
	h.ObserveValue(5) // +Inf bucket
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	wantSum := 50*0.005 + 45*0.05 + 4*0.5 + 5
	if math.Abs(s.Sum-wantSum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", s.Sum, wantSum)
	}
	if got := s.Counts; got[0] != 50 || got[1] != 45 || got[2] != 4 || got[3] != 1 {
		t.Fatalf("bucket counts = %v", got)
	}
	// p50 lands mid-first-bucket, p95 in the second, p99 in the third;
	// interpolation keeps each inside its bucket's bounds.
	if p := s.P50(); p <= 0 || p > 0.01 {
		t.Fatalf("p50 = %v, want in (0, 0.01]", p)
	}
	if p := s.P95(); p <= 0.01 || p > 0.1 {
		t.Fatalf("p95 = %v, want in (0.01, 0.1]", p)
	}
	if p := s.P99(); p <= 0.1 || p > 1 {
		t.Fatalf("p99 = %v, want in (0.1, 1]", p)
	}
	// A quantile that falls in +Inf clamps to the largest finite bound.
	if p := s.Quantile(1.0); p != 1 {
		t.Fatalf("q1.0 = %v, want clamp to 1", p)
	}
	if (&HistSnapshot{Bounds: []float64{1}, Counts: []uint64{0, 0}}).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("d_seconds", "h", LatencyBounds())
	h.Observe(250 * time.Microsecond)
	s := h.Snapshot()
	if s.Count != 1 || math.Abs(s.Sum-0.00025) > 1e-12 {
		t.Fatalf("snapshot = count %d sum %v", s.Count, s.Sum)
	}
}

func TestSetEnabledStripsTimingNotCounts(t *testing.T) {
	defer SetEnabled(true)
	r := NewRegistry()
	h := r.NewHistogram("e_seconds", "h", []float64{1})
	c := r.NewCounter("e_total", "c")
	SetEnabled(false)
	h.ObserveValue(0.5)
	c.Inc()
	if h.Snapshot().Count != 0 {
		t.Fatal("histogram observed while disabled")
	}
	if c.Value() != 1 {
		t.Fatal("counter must keep counting while disabled")
	}
	SetEnabled(true)
	h.ObserveValue(0.5)
	if h.Snapshot().Count != 1 {
		t.Fatal("histogram dead after re-enable")
	}
}

// TestPrometheusGolden locks the exact exposition bytes for a registry
// with all three kinds and labeled series.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("xview_ops_total", "Operations applied.", Label{Key: "kind", Value: "insert"})
	c.Add(3)
	c2 := r.NewCounter("xview_ops_total", "Operations applied.", Label{Key: "kind", Value: "delete"})
	c2.Add(1)
	g := r.NewGauge("xview_queue_depth", "Queued requests.")
	g.Set(2)
	h := r.NewHistogram("xview_q_seconds", "Query latency.", []float64{0.1, 1})
	h.ObserveValue(0.05)
	h.ObserveValue(0.5)
	h.ObserveValue(0.5)
	h.ObserveValue(2)

	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	want := `# HELP xview_ops_total Operations applied.
# TYPE xview_ops_total counter
xview_ops_total{kind="insert"} 3
xview_ops_total{kind="delete"} 1
# HELP xview_queue_depth Queued requests.
# TYPE xview_queue_depth gauge
xview_queue_depth 2
# HELP xview_q_seconds Query latency.
# TYPE xview_q_seconds histogram
xview_q_seconds_bucket{le="0.1"} 1
xview_q_seconds_bucket{le="1"} 3
xview_q_seconds_bucket{le="+Inf"} 4
xview_q_seconds_sum 3.05
xview_q_seconds_count 4
`
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n got:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestPrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("esc_total", "line1\nline2 back\\slash",
		Label{Key: "path", Value: `a"b\c` + "\nd"})
	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# HELP esc_total line1\nline2 back\\slash`) {
		t.Fatalf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `esc_total{path="a\"b\\c\nd"} 0`) {
		t.Fatalf("label value not escaped:\n%s", out)
	}
	// The parser must invert the escaping exactly.
	fams, err := ParseExposition(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if fams[0].Help != "line1\nline2 back\\slash" {
		t.Fatalf("help round-trip = %q", fams[0].Help)
	}
	if got := fams[0].Samples[0].Labels["path"]; got != "a\"b\\c\nd" {
		t.Fatalf("label round-trip = %q", got)
	}
}

// TestHistogramCumulativity is the property test: for randomized
// observation sets, the encoded le buckets are non-decreasing, the +Inf
// bucket equals _count, and each bucket's cumulative count matches a
// direct count of observations <= its bound.
func TestHistogramCumulativity(t *testing.T) {
	// Deterministic pseudo-random stream (xorshift), seeded per case.
	for seed := uint64(1); seed <= 8; seed++ {
		bounds := []float64{0.001, 0.01, 0.1, 1, 10}
		r := NewRegistry()
		h := r.NewHistogram("cum_seconds", "h", bounds)
		x := seed
		var obs []float64
		for i := 0; i < 500; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			v := float64(x%100000) / 3000.0 // 0 .. ~33
			obs = append(obs, v)
			h.ObserveValue(v)
		}
		var b strings.Builder
		if err := WritePrometheus(&b, r); err != nil {
			t.Fatal(err)
		}
		fams, err := ParseExposition(strings.NewReader(b.String()))
		if err != nil {
			t.Fatal(err)
		}
		var buckets []ParsedSample
		var count float64
		for _, s := range fams[0].Samples {
			switch s.Name {
			case "cum_seconds_bucket":
				buckets = append(buckets, s)
			case "cum_seconds_count":
				count = s.Value
			}
		}
		if len(buckets) != len(bounds)+1 {
			t.Fatalf("seed %d: %d bucket lines, want %d", seed, len(buckets), len(bounds)+1)
		}
		prev := -1.0
		for i, bs := range buckets {
			if bs.Value < prev {
				t.Fatalf("seed %d: bucket %d not cumulative: %v < %v", seed, i, bs.Value, prev)
			}
			prev = bs.Value
			le := bs.Labels["le"]
			if i == len(buckets)-1 {
				if le != "+Inf" {
					t.Fatalf("seed %d: last bucket le = %q", seed, le)
				}
				if bs.Value != count {
					t.Fatalf("seed %d: +Inf bucket %v != count %v", seed, bs.Value, count)
				}
				continue
			}
			// Independent recount against the raw observations.
			var direct float64
			for _, v := range obs {
				if v <= bounds[i] {
					direct++
				}
			}
			if bs.Value != direct {
				t.Fatalf("seed %d: bucket le=%s has %v, direct count %v", seed, le, bs.Value, direct)
			}
		}
	}
}

// TestConcurrentScrapeWhileWriting hammers every metric kind from many
// goroutines while scraping concurrently; -race is the assertion.
func TestConcurrentScrapeWhileWriting(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("rc_total", "c")
	g := r.NewGauge("rc_depth", "g")
	h := r.NewHistogram("rc_seconds", "h", LatencyBounds())
	sl := NewSlowLog(16)
	sl.SetThreshold(1)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Add(1)
				h.ObserveValue(0.001)
				sl.Record("query", "//x", time.Millisecond, 1)
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				var b strings.Builder
				if err := WritePrometheus(&b, r); err != nil {
					t.Error(err)
					return
				}
				if _, err := ParseExposition(strings.NewReader(b.String())); err != nil {
					t.Error(err)
					return
				}
				var v strings.Builder
				if err := WriteVars(&v, r); err != nil {
					t.Error(err)
					return
				}
				sl.Entries()
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestSlowLogRingAndThreshold(t *testing.T) {
	sl := NewSlowLog(3)
	sl.Record("query", "before threshold", time.Hour, 0)
	if got, _ := sl.Entries(); len(got) != 0 {
		t.Fatal("recorded with threshold disabled")
	}
	sl.SetThreshold(10 * time.Millisecond)
	sl.Record("query", "fast", 5*time.Millisecond, 1)
	if got, _ := sl.Entries(); len(got) != 0 {
		t.Fatal("recorded below threshold")
	}
	for i, d := range []string{"a", "b", "c", "d"} {
		sl.Record("commit", d, time.Duration(20+i)*time.Millisecond, uint64(i))
	}
	got, dropped := sl.Entries()
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	if len(got) != 3 || got[0].Detail != "d" || got[1].Detail != "c" || got[2].Detail != "b" {
		t.Fatalf("entries = %+v", got)
	}
	if got[0].Kind != "commit" || got[0].Duration != 23*time.Millisecond || got[0].Gen != 3 {
		t.Fatalf("entry fields = %+v", got[0])
	}
}

func TestWriteVars(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("v_total", "c", Label{Key: "kind", Value: "x"}).Add(2)
	h := r.NewHistogram("v_seconds", "h", []float64{1})
	h.ObserveValue(0.5)
	var b strings.Builder
	if err := WriteVars(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`"v_total{kind=x,}": 2`, `"v_seconds"`, `"count": 1`, `"p50"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("vars output missing %q:\n%s", want, out)
		}
	}
}

func TestGatherAllMergesRegistries(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.NewCounter("a_total", "a")
	b.NewCounter("b_total", "b")
	fams := GatherAll(a, nil, b)
	if len(fams) != 2 || fams[0].Name != "a_total" || fams[1].Name != "b_total" {
		t.Fatalf("merged families = %+v", fams)
	}
}

func TestParseExpositionRejectsOrphans(t *testing.T) {
	_, err := ParseExposition(strings.NewReader("mystery_metric 4\n"))
	if err == nil {
		t.Fatal("sample without TYPE accepted")
	}
}

func TestExpBounds(t *testing.T) {
	got := ExpBounds(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBounds = %v", got)
		}
	}
	lb := LatencyBounds()
	if len(lb) != 30 || lb[0] != 250e-9 {
		t.Fatalf("LatencyBounds = %v", lb)
	}
}
