package obs

import (
	"encoding/json"
	"io"
	"math"
)

// varHist is the JSON shape of a histogram in the /debug/vars dump:
// the summary a human wants (count, sum, quantiles) rather than raw
// buckets.
type varHist struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// WriteVars encodes the gathered families of the given registries as one
// JSON object keyed by series name (labels folded into the key in
// {k=v,...} form), histograms as count/sum/quantile summaries. The
// /debug/vars handler and xviewctl read this. Locked-API side.
func WriteVars(w io.Writer, regs ...*Registry) error {
	out := map[string]any{}
	for _, f := range GatherAll(regs...) {
		for _, s := range f.Samples {
			key := f.Name
			if len(s.Labels) > 0 {
				key += labelKey(sortedCopy(s.Labels))
			}
			if s.Hist != nil {
				out[key] = varHist{
					Count: s.Hist.Count,
					Sum:   jsonSafe(s.Hist.Sum),
					P50:   jsonSafe(s.Hist.P50()),
					P95:   jsonSafe(s.Hist.P95()),
					P99:   jsonSafe(s.Hist.P99()),
				}
			} else {
				out[key] = jsonSafe(s.Value)
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// jsonSafe maps non-finite floats to 0 — encoding/json rejects them, and
// a gauge func returning NaN must not break the whole dump.
func jsonSafe(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}
