package obs

import (
	"testing"
	"time"
)

func TestSpanObservesWhenEnabled(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("sp_seconds", "h", LatencyBounds())
	sp := StartSpan(h)
	if !sp.Active() {
		t.Fatal("span inactive while enabled")
	}
	time.Sleep(time.Millisecond)
	if sp.Elapsed() <= 0 {
		t.Fatal("Elapsed returned zero mid-span")
	}
	if d := sp.End(); d < time.Millisecond {
		t.Fatalf("End = %v, want >= 1ms", d)
	}
	if h.Snapshot().Count != 1 {
		t.Fatal("span did not observe")
	}
}

func TestSpanDisabledIsFree(t *testing.T) {
	defer SetEnabled(true)
	SetEnabled(false)
	r := NewRegistry()
	h := r.NewHistogram("spd_seconds", "h", LatencyBounds())
	sp := StartSpan(h)
	if sp.Active() || sp.End() != 0 || sp.Elapsed() != 0 {
		t.Fatal("disabled span not free")
	}
	SetEnabled(true)
	if h.Snapshot().Count != 0 {
		t.Fatal("disabled span observed")
	}
}

func TestSpanNilHistogramIsPureTimer(t *testing.T) {
	sp := StartSpan(nil)
	if d := sp.End(); d < 0 {
		t.Fatalf("End = %v", d)
	}
}
