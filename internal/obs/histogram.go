package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram with lock-free observation. Each
// Observe is one atomic add into a bucket plus a CAS-loop float add into
// the running sum — cheap enough for the single-writer apply loop. Bounds
// are upper bucket edges in ascending order; an implicit +Inf bucket
// catches overflow. Latency histograms store seconds.
//
// A concurrent Snapshot may observe a sample's bucket increment before its
// sum contribution (or vice versa); the drift is bounded by in-flight
// observations and irrelevant for monitoring.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds not ascending")
		}
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records an elapsed duration, in seconds. It is a no-op while
// instrumentation is disabled, so callers that already guarded their
// time.Now pair with Enabled() pay nothing extra.
func (h *Histogram) Observe(d time.Duration) {
	h.ObserveValue(d.Seconds())
}

// ObserveValue records a raw sample (a run size, a byte count). No-op
// while instrumentation is disabled.
func (h *Histogram) ObserveValue(v float64) {
	if !enabled.Load() {
		return
	}
	h.RecordValue(v)
}

// RecordValue records a sample regardless of the global Enabled switch —
// for measurement harnesses (the server package's LoadGen) where the
// samples are the product of the run, not instrumentation overhead that
// SetEnabled(false) should strip.
func (h *Histogram) RecordValue(v float64) {
	h.buckets[h.bucketIdx(v)].Add(1)
	h.count.Add(1)
	addFloat(&h.sumBits, v)
}

// bucketIdx finds the first bound >= v by binary search.
func (h *Histogram) bucketIdx(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// HistSnapshot is a point-in-time copy of a histogram's state.
type HistSnapshot struct {
	Bounds []float64 // upper edges, ascending; +Inf implicit
	Counts []uint64  // per-bucket (non-cumulative); len(Bounds)+1
	Count  uint64    // total observations
	Sum    float64   // sum of observed values
}

// Snapshot copies the current bucket counts. Locked-API side: scrape
// handlers and reporting only.
func (h *Histogram) Snapshot() *HistSnapshot {
	s := &HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the bucket that contains the target rank, the same estimate a
// Prometheus histogram_quantile gives. Returns 0 when empty; samples in
// the +Inf bucket clamp to the largest finite bound.
func (s *HistSnapshot) Quantile(q float64) float64 {
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if float64(cum) >= rank {
			if i >= len(s.Bounds) {
				// +Inf bucket: clamp to the last finite edge.
				if len(s.Bounds) == 0 {
					return 0
				}
				return s.Bounds[len(s.Bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = s.Bounds[i-1]
			}
			upper := s.Bounds[i]
			if c == 0 {
				return upper
			}
			frac := (rank - float64(cum-c)) / float64(c)
			return lower + (upper-lower)*frac
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// P50, P95, P99 are the quantiles the serving layer reports.
func (s *HistSnapshot) P50() float64 { return s.Quantile(0.50) }
func (s *HistSnapshot) P95() float64 { return s.Quantile(0.95) }
func (s *HistSnapshot) P99() float64 { return s.Quantile(0.99) }
