package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus encodes the families of the given registries in the
// Prometheus text exposition format (version 0.0.4): # HELP and # TYPE
// lines per family, cumulative le buckets plus _sum and _count for
// histograms, and escaped help text and label values. Locked-API side.
func WritePrometheus(w io.Writer, regs ...*Registry) error {
	return EncodeFamilies(w, GatherAll(regs...))
}

// EncodeFamilies writes already-gathered families as Prometheus text.
func EncodeFamilies(w io.Writer, fams []Family) error {
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Type)
		for _, s := range f.Samples {
			if s.Hist != nil {
				encodeHist(bw, f.Name, s.Labels, s.Hist)
				continue
			}
			fmt.Fprintf(bw, "%s%s %s\n", f.Name, encodeLabels(s.Labels, "", 0), fmtFloat(s.Value))
		}
	}
	return bw.Flush()
}

// encodeHist writes the cumulative bucket series, _sum and _count.
func encodeHist(w io.Writer, name string, labels []Label, h *HistSnapshot) {
	var cum uint64
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, encodeLabels(labels, "le", bound), cum)
	}
	cum += h.Counts[len(h.Counts)-1]
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, encodeLabels(labels, "le", math.Inf(1)), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, encodeLabels(labels, "", 0), fmtFloat(h.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, encodeLabels(labels, "", 0), h.Count)
}

// encodeLabels renders {k="v",...}, sorted by key, with an optional le
// label appended last. Returns "" when there is nothing to render.
func encodeLabels(labels []Label, leKey string, le float64) string {
	if len(labels) == 0 && leKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range sortedCopy(labels) {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabel(l.Value))
	}
	if leKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, leKey, fmtFloat(le))
	}
	b.WriteByte('}')
	return b.String()
}

// escapeHelp escapes backslash and newline, per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes backslash, double-quote, and newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// fmtFloat renders a sample value: integral values without an exponent,
// +Inf as the exposition token.
func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ParsedFamily is one metric family read back from exposition text —
// enough structure for tests and xviewctl to verify a scrape.
type ParsedFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []ParsedSample
}

// ParsedSample is one sample line: full series name (including _bucket /
// _sum / _count suffixes), its labels, and the value.
type ParsedSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParseExposition parses Prometheus text exposition into families, keyed
// and ordered by TYPE declarations; sample lines are attached to the
// family whose name prefixes them. It understands exactly the subset this
// package emits and errors on anything it cannot account for — the test
// harness uses it to prove /metrics output is well-formed.
func ParseExposition(r io.Reader) ([]ParsedFamily, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var fams []ParsedFamily
	byName := map[string]*ParsedFamily{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			f := ensureFamily(&fams, byName, name)
			f.Help = unescapeHelp(help)
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("line %d: malformed TYPE", lineNo)
			}
			f := ensureFamily(&fams, byName, name)
			f.Type = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal exposition
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		f := familyFor(fams, byName, s.Name)
		if f == nil {
			return nil, fmt.Errorf("line %d: sample %s has no TYPE declaration", lineNo, s.Name)
		}
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

func ensureFamily(fams *[]ParsedFamily, byName map[string]*ParsedFamily, name string) *ParsedFamily {
	if f, ok := byName[name]; ok {
		return f
	}
	*fams = append(*fams, ParsedFamily{Name: name})
	f := &(*fams)[len(*fams)-1]
	byName[name] = f
	return f
}

// familyFor resolves a sample series to its family, trying the exact name
// and then the histogram suffixes.
func familyFor(fams []ParsedFamily, byName map[string]*ParsedFamily, series string) *ParsedFamily {
	if f, ok := byName[series]; ok {
		return f
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(series, suf); ok {
			if f, ok := byName[base]; ok && f.Type == typeHistogram {
				return f
			}
		}
	}
	return nil
}

// parseSample splits `name{k="v",...} value` into its parts.
func parseSample(line string) (ParsedSample, error) {
	s := ParsedSample{Labels: map[string]string{}}
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:nameEnd]
	rest := line[nameEnd:]
	if rest[0] == '{' {
		end := strings.LastIndexByte(rest, '}')
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	valStr := strings.TrimSpace(rest)
	var v float64
	switch valStr {
	case "+Inf":
		v = math.Inf(1)
	case "-Inf":
		v = math.Inf(-1)
	default:
		var err error
		v, err = strconv.ParseFloat(valStr, 64)
		if err != nil {
			return s, fmt.Errorf("bad value %q: %w", valStr, err)
		}
	}
	s.Value = v
	return s, nil
}

// parseLabels reads k="v" pairs, honoring the escape sequences the
// encoder can produce.
func parseLabels(body string, out map[string]string) error {
	i := 0
	for i < len(body) {
		eq := strings.IndexByte(body[i:], '=')
		if eq < 0 {
			return fmt.Errorf("malformed labels %q", body)
		}
		key := body[i : i+eq]
		i += eq + 1
		if i >= len(body) || body[i] != '"' {
			return fmt.Errorf("label %s: missing opening quote", key)
		}
		i++
		var val strings.Builder
		for i < len(body) && body[i] != '"' {
			if body[i] == '\\' && i+1 < len(body) {
				i++
				switch body[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(body[i])
				default:
					val.WriteByte('\\')
					val.WriteByte(body[i])
				}
			} else {
				val.WriteByte(body[i])
			}
			i++
		}
		if i >= len(body) {
			return fmt.Errorf("label %s: unterminated value", key)
		}
		i++ // closing quote
		out[key] = val.String()
		if i < len(body) && body[i] == ',' {
			i++
		}
	}
	return nil
}

func unescapeHelp(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case '\\':
				b.WriteByte('\\')
			default:
				b.WriteByte('\\')
				b.WriteByte(s[i])
			}
		} else {
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// SortFamilies orders families by name — handy for stable golden output
// when merging several registries.
func SortFamilies(fams []ParsedFamily) {
	sort.Slice(fams, func(i, j int) bool { return fams[i].Name < fams[j].Name })
}
