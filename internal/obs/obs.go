// Package obs is the telemetry core of the system: a dependency-free
// metrics registry (atomic counters, gauges, and fixed-bucket latency
// histograms with quantile snapshots), a hand-rolled Prometheus text
// encoder, a JSON variables dump, and a ring-buffer slow-operation log.
//
// The package is built for the single-writer hot path: recording a sample
// is one or two atomic operations on a pre-registered metric handle — no
// map lookup, no lock, no allocation. The locked snapshot API (Gather,
// WritePrometheus, WriteVars, SlowEntries) is for scrape handlers and
// tools only and must never be called from a writer loop; the xviewlint
// obshotpath analyzer enforces that split mechanically.
//
// Two registration scopes exist. Process-wide metrics — the update
// pipeline's phase timings, the WAL, the compiled-path cache — live on the
// Default registry, registered once from package init or a sync.Once.
// Per-instance metrics (one serving engine's counters) live on a private
// Registry the instance creates, so several engines in one process never
// collide; a scrape handler gathers its engine's registry together with
// Default.
//
// SetEnabled(false) strips the timing instrumentation: histogram observes,
// slow-log recording and the Enabled() guards around time.Now pairs become
// no-ops, which is what the benchrunner obs experiment measures the
// instrumented hot paths against. Counters and gauges keep counting either
// way — they double as the serving layer's Stats source.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// enabled gates the timing instrumentation (histograms, slow log). The
// default is on; the obs benchmark flips it to price the instrumentation.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// Enabled reports whether timing instrumentation is collected. Hot paths
// use it to guard time.Now pairs so a disabled build pays one atomic load.
func Enabled() bool { return enabled.Load() }

// SetEnabled turns timing instrumentation (histogram observes, slow-log
// recording) on or off process-wide. Counters and gauges are unaffected.
func SetEnabled(on bool) { enabled.Store(on) }

// Label is one constant name="value" pair attached to a metric at
// registration. Metrics sharing a family name must carry distinct label
// sets; the encoder emits them as one family.
type Label struct {
	Key   string
	Value string
}

// metric kinds, also the Prometheus TYPE names.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// metric is one registered series: a family name, constant labels, and a
// kind-specific read method used by the snapshot layer.
type metric struct {
	labels []Label
	c      *Counter
	g      *Gauge
	fn     func() float64 // counterFunc / gaugeFunc
	h      *Histogram
}

// family groups the series registered under one name.
type family struct {
	name    string
	help    string
	typ     string
	metrics []*metric
}

// Registry holds named metric families. Registration is locked and meant
// for init time; the returned handles are lock-free. Gather is the locked
// snapshot API — scrape handlers only, never the writer hot path.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []string
}

// NewRegistry returns an empty registry, for per-instance metric sets.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the process-wide registry shared by the cross-cutting
// layers (pipeline, WAL, caches).
func Default() *Registry {
	defaultOnce.Do(func() { defaultReg = NewRegistry() })
	return defaultReg
}

// validName reports whether name is a legal Prometheus metric or label
// name: [a-zA-Z_:][a-zA-Z0-9_:]* (labels additionally may not contain ':',
// but this package never generates such names).
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// register adds a series under name, creating or extending the family.
// It panics on an invalid name, a kind/help mismatch with the existing
// family, or a duplicate label set — all programmer errors at init time.
func (r *Registry) register(name, help, typ string, m *metric) {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range m.labels {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: metric %s: invalid label name %q", name, l.Key))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.fams[name] = f
		r.order = append(r.order, name)
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.typ, typ))
	}
	key := labelKey(m.labels)
	for _, prev := range f.metrics {
		if labelKey(prev.labels) == key {
			panic(fmt.Sprintf("obs: duplicate metric %s%s", name, key))
		}
	}
	f.metrics = append(f.metrics, m)
}

func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	s := "{"
	for _, l := range labels {
		s += l.Key + "=" + l.Value + ","
	}
	return s + "}"
}

// Counter is a monotone counter. Add and Inc are single atomic operations.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// NewCounter registers a counter series and returns its handle.
func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, typeCounter, &metric{labels: labels, c: c})
	return c
}

// NewCounterFunc registers a counter series whose value is read from fn at
// gather time — the bridge for pre-existing hand-rolled atomic counters
// (the compiled-path cache, say) that keep their own storage.
func (r *Registry) NewCounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, typeCounter, &metric{labels: labels, fn: fn})
}

// Gauge is a value that can go up and down. Set and Add are single atomic
// operations.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// NewGauge registers a gauge series and returns its handle.
func (r *Registry) NewGauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, typeGauge, &metric{labels: labels, g: g})
	return g
}

// NewGaugeFunc registers a gauge series whose value is read from fn at
// gather time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, typeGauge, &metric{labels: labels, fn: fn})
}

// NewHistogram registers a histogram series over the given upper bounds
// (ascending; an implicit +Inf bucket is always present) and returns its
// handle. Latency histograms use seconds, per the Prometheus convention;
// LatencyBounds and CountBounds are ready-made bound sets.
func (r *Registry) NewHistogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	h := newHistogram(bounds)
	r.register(name, help, typeHistogram, &metric{labels: labels, h: h})
	return h
}

// Family is one gathered metric family, in registration order.
type Family struct {
	Name    string
	Help    string
	Type    string // counter | gauge | histogram
	Samples []Sample
}

// Sample is one gathered series of a family.
type Sample struct {
	Labels []Label
	Value  float64       // counter and gauge
	Hist   *HistSnapshot // histogram
}

// Gather snapshots every registered series. This is the locked slow-path
// API: scrape handlers and tools only, never the writer hot path.
func (r *Registry) Gather() []Family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Family, 0, len(r.order))
	for _, name := range r.order {
		f := r.fams[name]
		fam := Family{Name: f.name, Help: f.help, Type: f.typ}
		for _, m := range f.metrics {
			s := Sample{Labels: m.labels}
			switch {
			case m.c != nil:
				s.Value = float64(m.c.Value())
			case m.g != nil:
				s.Value = float64(m.g.Value())
			case m.fn != nil:
				s.Value = m.fn()
			case m.h != nil:
				s.Hist = m.h.Snapshot()
			}
			fam.Samples = append(fam.Samples, s)
		}
		out = append(out, fam)
	}
	return out
}

// GatherAll merges the families of several registries, in argument order —
// the scrape shape of a handler exposing the process-wide Default registry
// alongside its engine's private one.
func GatherAll(regs ...*Registry) []Family {
	var out []Family
	for _, r := range regs {
		if r != nil {
			out = append(out, r.Gather()...)
		}
	}
	return out
}

// LatencyBounds returns the standard latency bucket bounds in seconds:
// exponential, 250ns doubling through ~67s (30 buckets), wide enough for a
// 50ns memo hit to land in the first bucket and a stuck fsync in the last.
func LatencyBounds() []float64 {
	return ExpBounds(250e-9, 2, 30)
}

// CountBounds returns bucket bounds for small-count histograms (coalesced
// run sizes, generation lag): 1, 2, 4, ... doubling n times.
func CountBounds(n int) []float64 {
	return ExpBounds(1, 2, n)
}

// ExpBounds returns n exponential bucket bounds start, start*factor, ....
func ExpBounds(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// addFloat atomically adds v to an atomic float64 stored as bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// sortedCopy returns labels sorted by key, for stable encoding.
func sortedCopy(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
