package obs

import "time"

// Span is the lightweight tracing primitive: one timed stage of a
// pipeline, bound to the histogram that aggregates it. StartSpan takes
// the timestamp only while instrumentation is enabled, so a stripped run
// pays a single atomic load; End on a disabled span is free. A span is a
// value — no allocation, safe to pass and to drop.
//
//	sp := obs.StartSpan(applyHist)
//	... do the work ...
//	sp.End()
//
// Elapsed supports spans whose duration feeds something besides the
// histogram (the slow log, a report field) without a second clock read.
type Span struct {
	h  *Histogram
	t0 time.Time
	on bool
}

// StartSpan opens a span over h (h may be nil for a pure timer).
func StartSpan(h *Histogram) Span {
	if !enabled.Load() {
		return Span{}
	}
	return Span{h: h, t0: time.Now(), on: true}
}

// End observes the elapsed time and returns it; zero on a disabled span.
func (s Span) End() time.Duration {
	if !s.on {
		return 0
	}
	d := time.Since(s.t0)
	if s.h != nil {
		s.h.Observe(d)
	}
	return d
}

// Elapsed returns time since start without observing; zero when disabled.
func (s Span) Elapsed() time.Duration {
	if !s.on {
		return 0
	}
	return time.Since(s.t0)
}

// Active reports whether the span is collecting (instrumentation was
// enabled at StartSpan).
func (s Span) Active() bool { return s.on }
