package workload

import (
	"fmt"
	"math/rand"

	"rxview/internal/atg"
	"rxview/internal/dtd"
	"rxview/internal/relational"
)

// SyntheticConfig parameterizes the dataset of §5. The paper's generator is
// described, not fully specified; this one preserves its invariants: four
// base relations C, F, H, CU; |F| = |C|, |H| ≈ Fanout·(published C);
// h1 < h2 for every H tuple (guaranteeing an acyclic, hence DAG-compressible,
// view); recursive C nodes in the view defined by
// π(σ(C × F × H × CU)); and a tunable subtree-sharing fraction (the paper
// reports 31.4% shared C instances).
type SyntheticConfig struct {
	NC        int     // |C| (the size reported on the x-axes of Fig.11)
	Levels    int     // hierarchy depth; default 6
	Fanout    int     // H children per published C; default 3
	ShareFrac float64 // probability a child pick reuses an already-linked child; default 0.31
	ValueCard int     // number of distinct c6 filter values; default max(10, NC/50)
	FilterSel float64 // probability a C row passes the c2=f2 ∧ c3=f3 join filter; default 0.95
	Seed      int64
}

func (cfg SyntheticConfig) withDefaults() SyntheticConfig {
	if cfg.Levels <= 0 {
		cfg.Levels = 6
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 3
	}
	if cfg.ShareFrac <= 0 {
		cfg.ShareFrac = 0.31
	}
	if cfg.ValueCard <= 0 {
		cfg.ValueCard = cfg.NC / 50
		if cfg.ValueCard < 10 {
			cfg.ValueCard = 10
		}
	}
	if cfg.FilterSel <= 0 {
		cfg.FilterSel = 0.95
	}
	return cfg
}

// Synthetic bundles the §5 dataset: schema, DTD, ATG and a generated
// instance.
type Synthetic struct {
	Config SyntheticConfig
	Schema *relational.Schema
	DTD    *dtd.DTD
	ATG    *atg.Compiled
	DB     *relational.Database

	// Edges lists the generated H pairs (h1, h2) for workload construction.
	Edges [][2]int64
	// Roots lists the level-0 keys (published at the top level).
	Roots []int64
	// NextKey is the first unused C key; update workloads allocate fresh
	// keys from here (fresh keys exceed all existing ones, so the h1 < h2
	// invariant is preserved by construction).
	NextKey int64
	// Pass[key] reports whether the key's C row passes the c2=f2 ∧ c3=f3
	// join filter (unpassing keys are pruned from the view).
	Pass []bool
}

const syntheticFillerCols = 10 // c7..c16 / f7..f16, matching the 16-ary schema

// NewSynthetic generates the dataset.
func NewSynthetic(cfg SyntheticConfig) (*Synthetic, error) {
	cfg = cfg.withDefaults()
	if cfg.NC < cfg.Levels {
		return nil, fmt.Errorf("workload: NC=%d smaller than Levels=%d", cfg.NC, cfg.Levels)
	}
	schema, err := syntheticSchema()
	if err != nil {
		return nil, err
	}
	d, err := syntheticDTD()
	if err != nil {
		return nil, err
	}
	compiled, err := syntheticATG(d, schema)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	db := relational.NewDatabase(schema)
	s := &Synthetic{
		Config: cfg, Schema: schema, DTD: d, ATG: compiled, DB: db,
		NextKey: int64(cfg.NC) + 1,
	}

	// Assign keys 1..NC to levels by contiguous ranges, so level(l) keys
	// are all smaller than level(l+1) keys: every H edge goes one level
	// down and automatically satisfies h1 < h2. Level sizes grow
	// geometrically (ratio 2): with Fanout≈3 picks per parent this leaves
	// enough fresh children that the shared fraction lands near the
	// configured ShareFrac (the paper's 31.4%).
	bounds := make([]int64, cfg.Levels+1)
	bounds[0] = 1
	totalWeight := 0
	for l := 0; l < cfg.Levels; l++ {
		totalWeight += 1 << uint(l)
	}
	acc := int64(0)
	for l := 0; l < cfg.Levels; l++ {
		size := int64(cfg.NC * (1 << uint(l)) / totalWeight)
		if size < 1 {
			size = 1
		}
		acc += size
		bounds[l+1] = acc + 1
	}
	bounds[cfg.Levels] = int64(cfg.NC) + 1
	levelStart := func(l int) int64 { return bounds[l] }
	levelEnd := func(l int) int64 { return bounds[l+1] } // exclusive
	levelOf := func(key int64) int {
		for l := 0; l < cfg.Levels; l++ {
			if key < bounds[l+1] {
				return l
			}
		}
		return cfg.Levels - 1
	}

	cRel, fRel, hRel, cuRel := db.Rel("C"), db.Rel("F"), db.Rel("H"), db.Rel("CU")
	pass := make([]bool, cfg.NC+1)
	s.Pass = pass
	for key := int64(1); key <= int64(cfg.NC); key++ {
		level := levelOf(key)
		c2 := relational.Int(int64(rng.Intn(2)))
		c3 := relational.Int(int64(rng.Intn(2)))
		c5 := relational.Int(1)
		if level == 0 {
			c5 = relational.Int(0)
			s.Roots = append(s.Roots, key)
		}
		// Quadratically skewed value distribution: low-index values are
		// common, high-index ones rare — so the Fig.11(g) sweep can pick
		// values of any desired popularity.
		u := rng.Float64()
		c6 := relational.Str(fmt.Sprintf("v%d", int(u*u*float64(cfg.ValueCard))))
		row := relational.Tuple{
			relational.Int(key), c2, c3,
			relational.Int(int64(rng.Intn(1000))), c5, c6,
		}
		for i := 0; i < syntheticFillerCols; i++ {
			row = append(row, relational.Str("x"))
		}
		if err := cRel.Insert(row); err != nil {
			return nil, err
		}
		if err := cuRel.Insert(row.Clone()); err != nil {
			return nil, err
		}
		// F row: matches the C filter columns with probability FilterSel.
		f2, f3 := c2, c3
		pass[key] = true
		if rng.Float64() > cfg.FilterSel {
			f2 = relational.Int(1 - c2.I)
			pass[key] = false
		}
		fRow := relational.Tuple{
			relational.Int(key), f2, f3,
			relational.Int(int64(rng.Intn(1000))),
		}
		for i := 0; i < syntheticFillerCols+2; i++ {
			fRow = append(fRow, relational.Str("y"))
		}
		if err := fRel.Insert(fRow); err != nil {
			return nil, err
		}
	}

	// H edges: each key at level l links to ~Fanout children at level l+1;
	// a ShareFrac portion of picks reuses an already-linked child, creating
	// the shared subtrees the paper's view exhibits.
	seenEdge := map[[2]int64]bool{}
	for l := 0; l < cfg.Levels-1; l++ {
		lo, hi := levelStart(l+1), levelEnd(l+1)
		if hi <= lo {
			continue
		}
		var linked []int64
		var unlinked []int64
		for k := lo; k < hi; k++ {
			unlinked = append(unlinked, k)
		}
		rng.Shuffle(len(unlinked), func(i, j int) { unlinked[i], unlinked[j] = unlinked[j], unlinked[i] })
		for u := levelStart(l); u < levelEnd(l); u++ {
			for k := 0; k < cfg.Fanout; k++ {
				var child int64
				if len(linked) > 0 && (len(unlinked) == 0 || rng.Float64() < cfg.ShareFrac) {
					child = linked[rng.Intn(len(linked))]
				} else if len(unlinked) > 0 {
					child = unlinked[len(unlinked)-1]
					unlinked = unlinked[:len(unlinked)-1]
					linked = append(linked, child)
				} else {
					continue
				}
				e := [2]int64{u, child}
				if seenEdge[e] {
					continue
				}
				seenEdge[e] = true
				if err := hRel.Insert(relational.Tuple{relational.Int(u), relational.Int(child)}); err != nil {
					return nil, err
				}
				s.Edges = append(s.Edges, e)
			}
		}
	}
	return s, nil
}

// MustSynthetic is NewSynthetic that panics on error.
func MustSynthetic(cfg SyntheticConfig) *Synthetic {
	s, err := NewSynthetic(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

func syntheticSchema() (*relational.Schema, error) {
	intK, str := relational.KindInt, relational.KindString
	bit := []relational.Value{relational.Int(0), relational.Int(1)}
	cCols := []relational.Column{
		{Name: "c1", Type: intK},
		{Name: "c2", Type: intK, Domain: bit},
		{Name: "c3", Type: intK, Domain: bit},
		{Name: "c4", Type: intK},
		{Name: "c5", Type: intK, Domain: bit},
		{Name: "c6", Type: str},
	}
	fCols := []relational.Column{
		{Name: "f1", Type: intK},
		{Name: "f2", Type: intK, Domain: bit},
		{Name: "f3", Type: intK, Domain: bit},
		{Name: "f4", Type: intK},
	}
	for i := 0; i < syntheticFillerCols; i++ {
		cCols = append(cCols, relational.Column{Name: fmt.Sprintf("c%d", 7+i), Type: str})
	}
	for i := 0; i < syntheticFillerCols+2; i++ {
		fCols = append(fCols, relational.Column{Name: fmt.Sprintf("f%d", 5+i), Type: str})
	}
	cuCols := make([]relational.Column, len(cCols))
	copy(cuCols, cCols)

	c, err := relational.NewTableSchema("C", cCols, "c1")
	if err != nil {
		return nil, err
	}
	f, err := relational.NewTableSchema("F", fCols, "f1")
	if err != nil {
		return nil, err
	}
	h, err := relational.NewTableSchema("H", []relational.Column{
		{Name: "h1", Type: intK},
		{Name: "h2", Type: intK},
	}, "h1", "h2")
	if err != nil {
		return nil, err
	}
	cu, err := relational.NewTableSchema("CU", cuCols, "c1")
	if err != nil {
		return nil, err
	}
	return relational.NewSchema(c, f, h, cu)
}

func syntheticDTD() (*dtd.DTD, error) {
	return dtd.Parse(`
<!ELEMENT db (C*)>
<!ELEMENT C (key, val, sub, info)>
<!ELEMENT sub (C*)>
<!ELEMENT info (item*)>
<!ELEMENT key (#PCDATA)>
<!ELEMENT val (#PCDATA)>
<!ELEMENT item (#PCDATA)>
`)
}

// syntheticATG is the view of Fig.10(a): db publishes the level-0 C's; a
// C's recursive children are
// π_{cu.c1, cu.c6}(σ_{h1=$C ∧ h2=cu.c1 ∧ f1=cu.c1 ∧ cu.c2=f2 ∧ cu.c3=f3}(H × CU × F)),
// matching the paper's π(σ(C × F × H × CU)) recursion.
func syntheticATG(d *dtd.DTD, s *relational.Schema) (*atg.Compiled, error) {
	intK, str := relational.KindInt, relational.KindString
	qRoot := &relational.SPJ{
		Name: "Qdb_C",
		From: []relational.TableRef{{Table: "C"}},
		Where: []relational.EqPred{
			{Left: relational.Col(0, 4), Right: relational.Const(relational.Int(0))}, // c5 = 0
		},
		Selects: []relational.SelectItem{
			{As: "c1", Src: relational.Col(0, 0)},
			{As: "c6", Src: relational.Col(0, 5)},
		},
	}
	qSub := &relational.SPJ{
		Name:    "Qsub_C",
		NParams: 1,
		From: []relational.TableRef{
			{Table: "H"}, {Table: "CU"}, {Table: "F"},
		},
		Where: []relational.EqPred{
			{Left: relational.Col(0, 0), Right: relational.Param(0)},  // h1 = $sub
			{Left: relational.Col(0, 1), Right: relational.Col(1, 0)}, // h2 = cu.c1
			{Left: relational.Col(2, 0), Right: relational.Col(1, 0)}, // f1 = cu.c1
			{Left: relational.Col(1, 1), Right: relational.Col(2, 1)}, // cu.c2 = f2
			{Left: relational.Col(1, 2), Right: relational.Col(2, 2)}, // cu.c3 = f3
		},
		Selects: []relational.SelectItem{
			{As: "c1", Src: relational.Col(1, 0)},
			{As: "c6", Src: relational.Col(1, 5)},
		},
	}
	qInfo := &relational.SPJ{
		Name:    "Qinfo_item",
		NParams: 1,
		From:    []relational.TableRef{{Table: "F"}},
		Where: []relational.EqPred{
			{Left: relational.Col(0, 0), Right: relational.Param(0)}, // f1 = $info
		},
		Selects: []relational.SelectItem{
			{As: "f1", Src: relational.Col(0, 0)},
			{As: "f4", Src: relational.Col(0, 3)},
		},
	}
	return atg.NewBuilder(d, s).
		Attr("C", atg.Field("c1", intK), atg.Field("c6", str)).
		Attr("sub", atg.Field("c1", intK)).
		Attr("info", atg.Field("c1", intK)).
		Attr("key", atg.Field("v", intK)).
		Attr("val", atg.Field("v", str)).
		Attr("item", atg.Field("f1", intK), atg.Field("f4", intK)).
		Text("item", 1).
		QueryRule("db", "C", qRoot).
		ProjRule("C", "key", atg.FromParent(0)).
		ProjRule("C", "val", atg.FromParent(1)).
		ProjRule("C", "sub", atg.FromParent(0)).
		ProjRule("C", "info", atg.FromParent(0)).
		QueryRule("sub", "C", qSub).
		QueryRule("info", "item", qInfo).
		Build()
}
