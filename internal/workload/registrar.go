// Package workload builds the datasets and update workloads of the paper:
// the registrar database of Example 1 (with the σ0 ATG of Fig.2) and the
// synthetic C/F/H/CU dataset of the experimental study (§5, Fig.10), plus
// the W1/W2/W3 update workload classes.
package workload

import (
	"fmt"

	"rxview/internal/atg"
	"rxview/internal/dtd"
	"rxview/internal/relational"
)

// Registrar bundles the Example 1 fixture.
type Registrar struct {
	Schema *relational.Schema
	DTD    *dtd.DTD
	ATG    *atg.Compiled
	DB     *relational.Database
}

// NewRegistrar builds the registrar schema R0, the recursive DTD D0, the
// ATG σ0 of Fig.2 and the instance used throughout the paper's examples
// (courses CS650 → CS320 → CS240, students S01/S02).
func NewRegistrar() (*Registrar, error) {
	schema, err := registrarSchema()
	if err != nil {
		return nil, err
	}
	d, err := registrarDTD()
	if err != nil {
		return nil, err
	}
	compiled, err := registrarATG(d, schema)
	if err != nil {
		return nil, err
	}
	db := relational.NewDatabase(schema)
	if err := seedRegistrar(db); err != nil {
		return nil, err
	}
	return &Registrar{Schema: schema, DTD: d, ATG: compiled, DB: db}, nil
}

// MustRegistrar is NewRegistrar that panics on error.
func MustRegistrar() *Registrar {
	r, err := NewRegistrar()
	if err != nil {
		panic(err)
	}
	return r
}

func registrarSchema() (*relational.Schema, error) {
	str := relational.KindString
	course, err := relational.NewTableSchema("course", []relational.Column{
		{Name: "cno", Type: str},
		{Name: "title", Type: str},
		{Name: "dept", Type: str},
	}, "cno")
	if err != nil {
		return nil, err
	}
	student, err := relational.NewTableSchema("student", []relational.Column{
		{Name: "ssn", Type: str},
		{Name: "name", Type: str},
	}, "ssn")
	if err != nil {
		return nil, err
	}
	enroll, err := relational.NewTableSchema("enroll", []relational.Column{
		{Name: "ssn", Type: str},
		{Name: "cno", Type: str},
	}, "ssn", "cno")
	if err != nil {
		return nil, err
	}
	prereq, err := relational.NewTableSchema("prereq", []relational.Column{
		{Name: "cno1", Type: str},
		{Name: "cno2", Type: str},
	}, "cno1", "cno2")
	if err != nil {
		return nil, err
	}
	return relational.NewSchema(course, student, enroll, prereq)
}

func registrarDTD() (*dtd.DTD, error) {
	return dtd.Parse(`
<!ELEMENT db (course*)>
<!ELEMENT course (cno, title, prereq, takenBy)>
<!ELEMENT prereq (course*)>
<!ELEMENT takenBy (student*)>
<!ELEMENT student (ssn, name)>
<!ELEMENT cno (#PCDATA)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT ssn (#PCDATA)>
<!ELEMENT name (#PCDATA)>
`)
}

func registrarATG(d *dtd.DTD, s *relational.Schema) (*atg.Compiled, error) {
	str := relational.KindString
	qDBCourse := &relational.SPJ{
		Name: "Qdb_course",
		From: []relational.TableRef{{Table: "course"}},
		Where: []relational.EqPred{
			{Left: relational.Col(0, 2), Right: relational.Const(relational.Str("CS"))},
		},
		Selects: []relational.SelectItem{
			{As: "cno", Src: relational.Col(0, 0)},
			{As: "title", Src: relational.Col(0, 1)},
		},
	}
	qPrereqCourse := &relational.SPJ{
		Name:    "Qprereq_course",
		NParams: 1,
		From:    []relational.TableRef{{Table: "prereq"}, {Table: "course"}},
		Where: []relational.EqPred{
			{Left: relational.Col(0, 0), Right: relational.Param(0)},
			{Left: relational.Col(0, 1), Right: relational.Col(1, 0)},
		},
		Selects: []relational.SelectItem{
			{As: "cno", Src: relational.Col(1, 0)},
			{As: "title", Src: relational.Col(1, 1)},
		},
	}
	qTakenByStudent := &relational.SPJ{
		Name:    "QtakenBy_student",
		NParams: 1,
		From:    []relational.TableRef{{Table: "enroll"}, {Table: "student"}},
		Where: []relational.EqPred{
			{Left: relational.Col(0, 1), Right: relational.Param(0)},
			{Left: relational.Col(0, 0), Right: relational.Col(1, 0)},
		},
		Selects: []relational.SelectItem{
			{As: "ssn", Src: relational.Col(1, 0)},
			{As: "name", Src: relational.Col(1, 1)},
		},
	}
	return atg.NewBuilder(d, s).
		Attr("course", atg.Field("cno", str), atg.Field("title", str)).
		Attr("prereq", atg.Field("cno", str)).
		Attr("takenBy", atg.Field("cno", str)).
		Attr("student", atg.Field("ssn", str), atg.Field("name", str)).
		Attr("cno", atg.Field("v", str)).
		Attr("title", atg.Field("v", str)).
		Attr("ssn", atg.Field("v", str)).
		Attr("name", atg.Field("v", str)).
		QueryRule("db", "course", qDBCourse).
		ProjRule("course", "cno", atg.FromParent(0)).
		ProjRule("course", "title", atg.FromParent(1)).
		ProjRule("course", "prereq", atg.FromParent(0)).
		ProjRule("course", "takenBy", atg.FromParent(0)).
		QueryRule("prereq", "course", qPrereqCourse).
		QueryRule("takenBy", "student", qTakenByStudent).
		ProjRule("student", "ssn", atg.FromParent(0)).
		ProjRule("student", "name", atg.FromParent(1)).
		Build()
}

func seedRegistrar(db *relational.Database) error {
	str := relational.Str
	rows := []struct {
		table string
		vals  relational.Tuple
	}{
		{"course", relational.Tuple{str("CS650"), str("Advanced Topics"), str("CS")}},
		{"course", relational.Tuple{str("CS320"), str("Databases"), str("CS")}},
		{"course", relational.Tuple{str("CS240"), str("Algorithms"), str("CS")}},
		{"course", relational.Tuple{str("EE100"), str("Circuits"), str("EE")}},
		{"prereq", relational.Tuple{str("CS650"), str("CS320")}},
		{"prereq", relational.Tuple{str("CS320"), str("CS240")}},
		{"student", relational.Tuple{str("S01"), str("Ann")}},
		{"student", relational.Tuple{str("S02"), str("Bob")}},
		{"enroll", relational.Tuple{str("S01"), str("CS650")}},
		{"enroll", relational.Tuple{str("S02"), str("CS650")}},
		{"enroll", relational.Tuple{str("S02"), str("CS320")}},
	}
	for _, r := range rows {
		if err := db.Insert(r.table, r.vals); err != nil {
			return fmt.Errorf("workload: seed registrar: %w", err)
		}
	}
	return nil
}
