package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"rxview/internal/relational"
)

// Class identifies the update workload classes of §5: W1 uses "//" with
// value-based filters, W2 uses "/" with value-based filters, W3 uses "/"
// with both structural and value filters.
type Class int

// Workload classes.
const (
	W1 Class = iota + 1
	W2
	W3
)

func (c Class) String() string {
	switch c {
	case W1:
		return "W1"
	case W2:
		return "W2"
	case W3:
		return "W3"
	default:
		return fmt.Sprintf("W?%d", int(c))
	}
}

// Op is one update of a workload, as a textual statement for
// update.ParseStatement / core.System.Execute.
type Op struct {
	Class  Class
	Delete bool
	Stmt   string
}

// viewIndex caches which keys are published and one canonical root-to-key
// parent chain, for building child-axis (W2/W3) paths.
type viewIndex struct {
	published map[int64]bool
	parent    map[int64]int64 // canonical parent; roots map to 0
	vals      map[int64]string
	pubEdges  [][2]int64 // edges (u,c) with u published and c passing
	pubKeys   []int64
}

func (s *Synthetic) buildIndex() *viewIndex {
	ix := &viewIndex{
		published: map[int64]bool{},
		parent:    map[int64]int64{},
		vals:      map[int64]string{},
	}
	children := map[int64][]int64{}
	for _, e := range s.Edges {
		children[e[0]] = append(children[e[0]], e[1])
	}
	queue := []int64{}
	for _, r := range s.Roots {
		if !ix.published[r] {
			ix.published[r] = true
			ix.parent[r] = 0
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		ix.pubKeys = append(ix.pubKeys, u)
		for _, c := range children[u] {
			if !s.Pass[c] {
				continue
			}
			ix.pubEdges = append(ix.pubEdges, [2]int64{u, c})
			if !ix.published[c] {
				ix.published[c] = true
				ix.parent[c] = u
				queue = append(queue, c)
			}
		}
	}
	return ix
}

// chainPath renders the canonical root-to-key path with per-step key
// filters: C[key="k0"]/sub/C[key="k1"]/.../sub/C[key="kn"].
func (ix *viewIndex) chainPath(key int64, structural bool) string {
	var keys []int64
	for k := key; k != 0; k = ix.parent[k] {
		keys = append(keys, k)
	}
	// reverse
	for i, j := 0, len(keys)-1; i < j; i, j = i+1, j-1 {
		keys[i], keys[j] = keys[j], keys[i]
	}
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteString("/sub/")
		}
		if structural && i < len(keys)-1 {
			fmt.Fprintf(&b, `C[key="%d" and sub/C]`, k)
		} else if structural {
			fmt.Fprintf(&b, `C[key="%d" and info/item]`, k)
		} else {
			fmt.Fprintf(&b, `C[key="%d"]`, k)
		}
	}
	return b.String()
}

// DeleteWorkload generates n deletion statements of the given class over the
// current dataset. W1 deletes every occurrence of C's with a chosen value
// (recursive, no XML side effects); W2/W3 delete one edge addressed by an
// explicit chain (side effects possible on shared chains; run the system
// with ForceSideEffects).
func (s *Synthetic) DeleteWorkload(class Class, n int, seed int64) []Op {
	rng := rand.New(rand.NewSource(seed))
	ix := s.buildIndex()
	vals := s.valsFor(ix.pubKeys)
	var ops []Op
	usedVals := map[string]bool{}
	usedEdges := map[[2]int64]bool{}
	for len(ops) < n {
		switch class {
		case W1:
			if len(ix.pubKeys) == 0 {
				return ops
			}
			k := ix.pubKeys[rng.Intn(len(ix.pubKeys))]
			v := vals[k]
			if usedVals[v] {
				if len(usedVals) >= len(vals) {
					return ops
				}
				continue
			}
			usedVals[v] = true
			ops = append(ops, Op{Class: class, Delete: true,
				Stmt: fmt.Sprintf(`delete //C[val="%s"]`, v)})
		default:
			if len(ix.pubEdges) == 0 {
				return ops
			}
			e := ix.pubEdges[rng.Intn(len(ix.pubEdges))]
			if usedEdges[e] {
				if len(usedEdges) >= len(ix.pubEdges) {
					return ops
				}
				continue
			}
			usedEdges[e] = true
			chain := ix.chainPath(e[0], class == W3)
			var leaf string
			if class == W3 {
				leaf = fmt.Sprintf(`C[key="%d" and info/item]`, e[1])
			} else {
				leaf = fmt.Sprintf(`C[key="%d"]`, e[1])
			}
			ops = append(ops, Op{Class: class, Delete: true,
				Stmt: fmt.Sprintf("delete %s/sub/%s", chain, leaf)})
		}
	}
	return ops
}

// InsertWorkload generates n insertion statements: each inserts a fresh C
// subtree. W1 targets //C[val=...]/sub (every occurrence, no side effects);
// W2/W3 target a chain-addressed sub node.
func (s *Synthetic) InsertWorkload(class Class, n int, seed int64) []Op {
	rng := rand.New(rand.NewSource(seed))
	ix := s.buildIndex()
	vals := s.valsFor(ix.pubKeys)
	var ops []Op
	for len(ops) < n {
		key := s.NextKey
		s.NextKey++
		attr := fmt.Sprintf(`c1=%d, c6="w%d"`, key, key)
		switch class {
		case W1:
			if len(ix.pubKeys) == 0 {
				return ops
			}
			k := ix.pubKeys[rng.Intn(len(ix.pubKeys))]
			ops = append(ops, Op{Class: class,
				Stmt: fmt.Sprintf(`insert C(%s) into //C[val="%s"]/sub`, attr, vals[k])})
		default:
			if len(ix.pubKeys) == 0 {
				return ops
			}
			k := ix.pubKeys[rng.Intn(len(ix.pubKeys))]
			chain := ix.chainPath(k, class == W3)
			ops = append(ops, Op{Class: class,
				Stmt: fmt.Sprintf("insert C(%s) into %s/sub", attr, chain)})
		}
	}
	return ops
}

// valsFor returns the c6 value of each key.
func (s *Synthetic) valsFor(keys []int64) map[int64]string {
	out := make(map[int64]string, len(keys))
	rel := s.DB.Rel("C")
	for _, k := range keys {
		if row, ok := rel.LookupKey(relational.Tuple{relational.Int(k)}); ok {
			out[k] = row[5].S
		}
	}
	return out
}
