package workload

import (
	"strings"
	"testing"

	"rxview/internal/relational"
)

func TestRegistrarFixture(t *testing.T) {
	reg, err := NewRegistrar()
	if err != nil {
		t.Fatal(err)
	}
	if !reg.DTD.IsRecursive() {
		t.Error("registrar DTD must be recursive")
	}
	if reg.DB.Rel("course").Len() != 4 {
		t.Errorf("courses = %d", reg.DB.Rel("course").Len())
	}
	d, err := reg.ATG.PublishDAG(reg.DB)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d.NodesOfType("course")); got != 3 {
		t.Errorf("published courses = %d (EE filtered)", got)
	}
}

func TestSyntheticGeneratorInvariants(t *testing.T) {
	syn := MustSynthetic(SyntheticConfig{NC: 500, Seed: 9})
	// |F| = |C|, CU mirrors C, |H| ≈ Fanout · |C| (paper: |H| ≈ 3|C|).
	nc := syn.DB.Rel("C").Len()
	if nc != 500 {
		t.Errorf("|C| = %d", nc)
	}
	if syn.DB.Rel("F").Len() != nc || syn.DB.Rel("CU").Len() != nc {
		t.Error("|F| and |CU| must equal |C|")
	}
	nh := syn.DB.Rel("H").Len()
	if nh < nc || nh > 4*nc {
		t.Errorf("|H| = %d, want ≈ 3·|C|", nh)
	}
	// h1 < h2 invariant (guarantees acyclicity).
	syn.DB.Rel("H").Scan(func(tp relational.Tuple) bool {
		if tp[0].I >= tp[1].I {
			t.Errorf("H tuple violates h1 < h2: %v", tp)
			return false
		}
		return true
	})
	// Roots are exactly the c5=0 rows.
	roots := 0
	syn.DB.Rel("C").Scan(func(tp relational.Tuple) bool {
		if tp[4].I == 0 {
			roots++
		}
		return true
	})
	if roots != len(syn.Roots) {
		t.Errorf("roots: %d flagged vs %d recorded", roots, len(syn.Roots))
	}
	if syn.NextKey != int64(nc)+1 {
		t.Errorf("NextKey = %d", syn.NextKey)
	}
}

func TestSyntheticPublishes(t *testing.T) {
	syn := MustSynthetic(SyntheticConfig{NC: 200, Seed: 3})
	d, err := syn.ATG.PublishDAG(syn.DB)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CheckAcyclic(); err != nil {
		t.Fatal(err)
	}
	if len(d.Children(d.Root())) != len(syn.Roots) {
		t.Errorf("top-level C count = %d, want %d", len(d.Children(d.Root())), len(syn.Roots))
	}
	if d.SharedNodeCount() == 0 {
		t.Error("expected shared subtrees")
	}
}

func TestSyntheticConfigValidation(t *testing.T) {
	if _, err := NewSynthetic(SyntheticConfig{NC: 2, Levels: 6}); err == nil {
		t.Error("NC < Levels accepted")
	}
	cfg := SyntheticConfig{}.withDefaults()
	if cfg.Levels == 0 || cfg.Fanout == 0 || cfg.ShareFrac == 0 || cfg.FilterSel == 0 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestDeleteWorkloadShapes(t *testing.T) {
	syn := MustSynthetic(SyntheticConfig{NC: 300, Seed: 5})
	w1 := syn.DeleteWorkload(W1, 5, 1)
	if len(w1) == 0 {
		t.Fatal("empty W1")
	}
	for _, op := range w1 {
		if !op.Delete || !strings.HasPrefix(op.Stmt, "delete //C[val=") {
			t.Errorf("W1 op = %q", op.Stmt)
		}
	}
	w2 := syn.DeleteWorkload(W2, 5, 1)
	for _, op := range w2 {
		if strings.Contains(op.Stmt, "//") {
			t.Errorf("W2 op must use child axis only: %q", op.Stmt)
		}
		if !strings.Contains(op.Stmt, `C[key=`) {
			t.Errorf("W2 op = %q", op.Stmt)
		}
	}
	w3 := syn.DeleteWorkload(W3, 5, 1)
	for _, op := range w3 {
		if !strings.Contains(op.Stmt, "info/item") && !strings.Contains(op.Stmt, "sub/C") {
			t.Errorf("W3 op lacks structural filter: %q", op.Stmt)
		}
	}
}

func TestInsertWorkloadShapes(t *testing.T) {
	syn := MustSynthetic(SyntheticConfig{NC: 300, Seed: 6})
	before := syn.NextKey
	ops := syn.InsertWorkload(W1, 4, 2)
	if len(ops) != 4 {
		t.Fatalf("ops = %d", len(ops))
	}
	if syn.NextKey != before+4 {
		t.Errorf("NextKey advanced to %d, want %d", syn.NextKey, before+4)
	}
	for _, op := range ops {
		if op.Delete || !strings.HasPrefix(op.Stmt, "insert C(") || !strings.HasSuffix(op.Stmt, "/sub") {
			t.Errorf("W1 insert op = %q", op.Stmt)
		}
	}
	ops = syn.InsertWorkload(W3, 2, 2)
	for _, op := range ops {
		if !strings.Contains(op.Stmt, "and") {
			t.Errorf("W3 insert op lacks structural filter: %q", op.Stmt)
		}
	}
}

func TestClassString(t *testing.T) {
	if W1.String() != "W1" || W2.String() != "W2" || W3.String() != "W3" {
		t.Error("Class strings")
	}
	if Class(9).String() == "" {
		t.Error("unknown class string")
	}
}
