package dag

import (
	"fmt"
	"math/rand"
	"testing"

	"rxview/internal/relational"
)

// structureOf renders the full live structure — node identities with sibling
// order — so two states can be compared bit-for-bit.
func structureOf(d *DAG) string {
	out := ""
	for _, u := range d.Nodes() {
		out += fmt.Sprintf("%s(%s):", d.Type(u), d.Attr(u))
		for _, v := range d.Children(u) {
			out += fmt.Sprintf(" %s(%s)", d.Type(v), d.Attr(v))
		}
		out += "\n"
	}
	return out
}

func TestSavepointRollbackToRestoresMidpoint(t *testing.T) {
	d, c1, c2, sh := chainDAG(t)
	d.Begin()
	x, _ := d.AddNode("C", relational.Tuple{relational.Int(10)})
	d.AddEdge(c1, x)
	mid := structureOf(d)

	mark := d.Mark()
	y, _ := d.AddNode("C", relational.Tuple{relational.Int(11)})
	d.AddEdge(x, y)
	d.RemoveEdge(c2, sh)

	nodes, adds, dels := d.ChangesSince(mark)
	if len(nodes) != 1 || nodes[0] != y {
		t.Fatalf("ChangesSince nodes = %v, want [%d]", nodes, y)
	}
	if len(adds) != 1 || len(dels) != 1 {
		t.Fatalf("ChangesSince edges = %v / %v, want one add and one del", adds, dels)
	}

	d.RollbackTo(mark)
	if got := structureOf(d); got != mid {
		t.Fatalf("RollbackTo(mark) state:\n%s\nwant midpoint:\n%s", got, mid)
	}
	if d.Mark() != mark {
		t.Fatalf("journal not truncated to mark: %d != %d", d.Mark(), mark)
	}
	// The op before the mark is still undoable by the full Rollback.
	d.Rollback()
	if d.Alive(x) || d.HasEdge(c1, x) {
		t.Fatal("full Rollback after RollbackTo did not undo the pre-mark op")
	}
}

func TestSavepointRandomizedInterleavings(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		d := New("db")
		var ids []NodeID
		for i := 0; i < 8; i++ {
			id, _ := d.AddNode("C", relational.Tuple{relational.Int(int64(i))})
			ids = append(ids, id)
			d.AddEdge(d.Root(), id)
		}
		base := structureOf(d)
		d.Begin()
		var marks []int
		var states []string
		for step := 0; step < 12; step++ {
			if rng.Intn(3) == 0 {
				marks = append(marks, d.Mark())
				states = append(states, structureOf(d))
			}
			switch rng.Intn(3) {
			case 0:
				id, _ := d.AddNode("C", relational.Tuple{relational.Int(int64(100 + trial*20 + step))})
				d.AddEdge(ids[rng.Intn(len(ids))], id)
			case 1:
				u := ids[rng.Intn(len(ids))]
				if cs := d.Children(u); len(cs) > 0 {
					d.RemoveEdge(u, cs[rng.Intn(len(cs))])
				}
			case 2:
				d.AddEdge(ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))])
			}
		}
		// Unwind savepoints newest-first; each must restore its recorded state.
		for i := len(marks) - 1; i >= 0; i-- {
			d.RollbackTo(marks[i])
			if got := structureOf(d); got != states[i] {
				t.Fatalf("trial %d: RollbackTo(mark %d) diverged:\n%s\nwant:\n%s", trial, i, got, states[i])
			}
		}
		d.Rollback()
		if got := structureOf(d); got != base {
			t.Fatalf("trial %d: final Rollback diverged from base", trial)
		}
	}
}
