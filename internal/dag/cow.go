package dag

import (
	"sort"

	"rxview/internal/relational"
)

// Copy-on-write storage for the DAG's mutable per-node state.
//
// The serving layer publishes one immutable epoch per applied write (PR 3);
// cloning the whole DAG per epoch made publication O(n) regardless of update
// size, undoing the paper's everywhere-incremental design at the last step.
// The stores below make sealing an epoch O(Δ): per-node state lives in
// fixed-size chunks (256 rows), chunk pointers live in fixed-size spine
// blocks (256 chunks, so one block covers 65536 rows), and the writer
// copies a block, chunk, or row only the first time it touches it after a
// seal. Seal itself copies just the top-level block list — n/65536
// pointers, one or two words for any view under 131k nodes — so
// publication cost tracks the write that preceded it, not the view size.
//
// Safety argument for the sharing:
//   - sealed versions hold their own top-level block list, so the writer
//     may swap block pointers freely;
//   - a block or chunk reachable from any sealed version is never written:
//     the writer replaces it (ownChunk → ownBlock) before the first
//     post-seal write, except for slots at indexes ≥ the sealed length,
//     which no sealed reader accesses (node ids are never reused and
//     lengths only grow);
//   - a row slice reachable from a sealed chunk is never written: ownRow
//     copies it before the first post-seal mutation (rEpoch tracks backing
//     ownership, so in-epoch in-place appends/compactions stay cheap).

const (
	chunkBits = 8
	chunkSize = 1 << chunkBits
	chunkMask = chunkSize - 1
	blockBits = 8 // chunks per spine block
	blockSize = 1 << blockBits
	blockMask = blockSize - 1
	rowBlock  = chunkBits + blockBits // row index -> block index shift
)

// refChunk holds one chunk of adjacency rows; refBlock one spine block of
// chunk pointers.
type (
	refChunk [chunkSize][]NodeID
	refBlock [blockSize]*refChunk
)

// refStore is a chunked copy-on-write array of adjacency rows (children or
// parents), indexed by NodeID.
type refStore struct {
	blocks []*refBlock
	bEpoch []uint64 // per block: epoch its pointer was installed at
	cEpoch []uint64 // per chunk: epoch its pointer was installed at
	rEpoch []uint64 // per row: epoch its backing array was allocated at
	epoch  uint64   // bumped by seal; anything older is shared
	n      int
}

func (s *refStore) row(i NodeID) []NodeID {
	return s.blocks[i>>rowBlock][(i>>chunkBits)&blockMask][i&chunkMask]
}

// ownBlock makes spine block bi writable in the current epoch, copying it
// if a sealed version may still reference it.
//
// xviewlint:cow-primitive
func (s *refStore) ownBlock(bi int) *refBlock {
	if s.bEpoch[bi] != s.epoch {
		cp := *s.blocks[bi]
		s.blocks[bi] = &cp
		s.bEpoch[bi] = s.epoch
	}
	return s.blocks[bi]
}

// ownChunk makes chunk ci writable in the current epoch, copying it (and
// its spine block) if a sealed version may still reference it.
func (s *refStore) ownChunk(ci int) *refChunk {
	b := s.ownBlock(ci >> blockBits)
	if s.cEpoch[ci] != s.epoch {
		cp := *b[ci&blockMask]
		b[ci&blockMask] = &cp
		s.cEpoch[ci] = s.epoch
	}
	return b[ci&blockMask]
}

// ownRow returns row i with a backing array owned by the current epoch,
// copying it (with extraCap growth room) if it is shared with a sealed
// version. The caller may mutate the returned slice in place and must store
// the final header with setRow.
func (s *refStore) ownRow(i NodeID, extraCap int) []NodeID {
	ch := s.ownChunk(int(i) >> chunkBits)
	r := ch[i&chunkMask]
	if s.rEpoch[i] != s.epoch {
		nr := make([]NodeID, len(r), len(r)+extraCap)
		copy(nr, r)
		r = nr
		ch[i&chunkMask] = r
		s.rEpoch[i] = s.epoch
	}
	return r
}

// setRow stores a row header. The row's backing must be owned by the current
// epoch (came from ownRow, or is freshly allocated by the caller).
func (s *refStore) setRow(i NodeID, r []NodeID) {
	s.ownChunk(int(i) >> chunkBits)[i&chunkMask] = r
	s.rEpoch[i] = s.epoch
}

// grow appends an empty row. Fresh block, chunk, and row slots need no
// copy-on-write: their indexes are beyond every sealed length, so no sealed
// reader can see them.
//
// xviewlint:cow-primitive
func (s *refStore) grow() {
	ci := s.n >> chunkBits
	if bi := ci >> blockBits; bi == len(s.blocks) {
		s.blocks = append(s.blocks, &refBlock{})
		s.bEpoch = append(s.bEpoch, s.epoch)
	}
	if ci == len(s.cEpoch) {
		s.blocks[ci>>blockBits][ci&blockMask] = &refChunk{}
		s.cEpoch = append(s.cEpoch, s.epoch)
	}
	s.rEpoch = append(s.rEpoch, s.epoch)
	s.n++
}

// seal freezes the current contents into an immutable view and starts a new
// epoch. Only the top-level block list is copied — O(n / 65536) words.
func (s *refStore) seal() sealedRefs {
	s.epoch++
	return sealedRefs{blocks: append([]*refBlock(nil), s.blocks...), n: s.n}
}

// clone deep-copies the store (rows included) for the full-clone path.
func (s *refStore) clone() refStore {
	c := refStore{
		blocks: make([]*refBlock, len(s.blocks)),
		bEpoch: make([]uint64, len(s.bEpoch)),
		cEpoch: make([]uint64, len(s.cEpoch)),
		rEpoch: make([]uint64, len(s.rEpoch)),
		n:      s.n,
	}
	for bi := range s.blocks {
		nb := &refBlock{}
		for off, ch := range s.blocks[bi] {
			if ch == nil {
				continue
			}
			nc := &refChunk{}
			for j, r := range ch {
				if len(r) > 0 {
					nc[j] = append([]NodeID(nil), r...)
				}
			}
			nb[off] = nc
		}
		c.blocks[bi] = nb
	}
	return c
}

// sealedRefs is the immutable reader side of a refStore at one epoch.
type sealedRefs struct {
	blocks []*refBlock
	n      int
}

func (v sealedRefs) row(i NodeID) []NodeID {
	return v.blocks[i>>rowBlock][(i>>chunkBits)&blockMask][i&chunkMask]
}

// chunk returns the chunk pointer covering row index i (tests use it to
// assert sharing).
func (v sealedRefs) chunk(ci int) *refChunk {
	return v.blocks[ci>>blockBits][ci&blockMask]
}

// boolChunk holds one chunk of per-node flags; boolBlock one spine block.
type (
	boolChunk [chunkSize]bool
	boolBlock [blockSize]*boolChunk
)

// boolStore is a chunked copy-on-write array of flags (the alive set).
type boolStore struct {
	blocks []*boolBlock
	bEpoch []uint64
	cEpoch []uint64
	epoch  uint64
	n      int
}

func (s *boolStore) get(i NodeID) bool {
	return s.blocks[i>>rowBlock][(i>>chunkBits)&blockMask][i&chunkMask]
}

// ownChunk makes chunk ci (and its spine block) writable in the current
// epoch, copying shared nodes first.
//
// xviewlint:cow-primitive
func (s *boolStore) ownChunk(ci int) *boolChunk {
	bi := ci >> blockBits
	if s.bEpoch[bi] != s.epoch {
		cp := *s.blocks[bi]
		s.blocks[bi] = &cp
		s.bEpoch[bi] = s.epoch
	}
	b := s.blocks[bi]
	if s.cEpoch[ci] != s.epoch {
		cp := *b[ci&blockMask]
		b[ci&blockMask] = &cp
		s.cEpoch[ci] = s.epoch
	}
	return b[ci&blockMask]
}

func (s *boolStore) set(i NodeID, v bool) {
	s.ownChunk(int(i) >> chunkBits)[i&chunkMask] = v
}

// grow appends a fresh flag; like refStore.grow it writes fresh slots
// directly because they are beyond every sealed length.
//
// xviewlint:cow-primitive
func (s *boolStore) grow(v bool) {
	ci := s.n >> chunkBits
	if bi := ci >> blockBits; bi == len(s.blocks) {
		s.blocks = append(s.blocks, &boolBlock{})
		s.bEpoch = append(s.bEpoch, s.epoch)
	}
	if ci == len(s.cEpoch) {
		s.blocks[ci>>blockBits][ci&blockMask] = &boolChunk{}
		s.cEpoch = append(s.cEpoch, s.epoch)
	}
	s.blocks[ci>>blockBits][ci&blockMask][s.n&chunkMask] = v
	s.n++
}

func (s *boolStore) seal() sealedBools {
	s.epoch++
	return sealedBools{blocks: append([]*boolBlock(nil), s.blocks...), n: s.n}
}

func (s *boolStore) clone() boolStore {
	c := boolStore{
		blocks: make([]*boolBlock, len(s.blocks)),
		bEpoch: make([]uint64, len(s.bEpoch)),
		cEpoch: make([]uint64, len(s.cEpoch)),
		n:      s.n,
	}
	for bi := range s.blocks {
		nb := &boolBlock{}
		for off, ch := range s.blocks[bi] {
			if ch != nil {
				cp := *ch
				nb[off] = &cp
			}
		}
		c.blocks[bi] = nb
	}
	return c
}

// sealedBools is the immutable reader side of a boolStore at one epoch.
type sealedBools struct {
	blocks []*boolBlock
	n      int
}

func (v sealedBools) get(i NodeID) bool {
	return v.blocks[i>>rowBlock][(i>>chunkBits)&blockMask][i&chunkMask]
}

// Version is an immutable copy-on-write snapshot of a DAG, sealed by
// DAG.Seal. It shares every untouched block, chunk, row, and append-only
// prefix with the live DAG and with neighboring versions; only state the
// writer dirtied between seals is copied (by the writer, when it dirtied
// it). All methods are safe for concurrent use by any number of
// goroutines.
//
// A Version answers the whole read surface (Reader); mutation and the
// Skolem registry (AddNode/Lookup) are intentionally absent — versions are
// the epoch unit of the serving layer, not working state.
type Version struct {
	types     []string
	attrs     []relational.Tuple
	children  sealedRefs
	parents   sealedRefs
	alive     sealedBools
	byType    map[string][]NodeID
	root      NodeID
	edgeCount int
	liveCount int
}

// Seal freezes the current DAG state into an immutable Version in O(Δ):
// three top-level block lists (n/65536 words each) and the byType map
// header are copied; every block, chunk and row that did not change since
// the previous seal is shared, not copied. Like Clone, Seal panics inside
// a transaction: a snapshot of speculative, possibly rolled-back state is
// never meaningful.
func (d *DAG) Seal() *Version {
	if d.journal != nil {
		panic("dag: Seal inside a transaction")
	}
	byType := make(map[string][]NodeID, len(d.byType))
	for typ, ids := range d.byType {
		// Cap at the current length: the live list only ever appends (in
		// place, beyond this cap) or is wholesale replaced by compaction, so
		// the shared prefix is immutable.
		byType[typ] = ids[:len(ids):len(ids)]
	}
	return &Version{
		types:     d.types[:len(d.types):len(d.types)],
		attrs:     d.attrs[:len(d.attrs):len(d.attrs)],
		children:  d.children.seal(),
		parents:   d.parents.seal(),
		alive:     d.alive.seal(),
		byType:    byType,
		root:      d.root,
		edgeCount: d.edgeCount,
		liveCount: d.liveCount,
	}
}

// Root returns the root node id.
func (v *Version) Root() NodeID { return v.root }

// NumNodes returns the number of live nodes at the sealed epoch.
func (v *Version) NumNodes() int { return v.liveCount }

// NumEdges returns the number of live edges at the sealed epoch.
func (v *Version) NumEdges() int { return v.edgeCount }

// Cap returns the id upper bound at the sealed epoch.
func (v *Version) Cap() int { return len(v.types) }

// Alive reports whether the id refers to a node live at the sealed epoch.
func (v *Version) Alive(id NodeID) bool {
	return id >= 0 && int(id) < v.alive.n && v.alive.get(id)
}

// Type returns the element type of the node.
func (v *Version) Type(id NodeID) string { return v.types[id] }

// Attr returns the semantic attribute tuple $A of the node.
func (v *Version) Attr(id NodeID) relational.Tuple { return v.attrs[id] }

// Children returns the ordered child list at the sealed epoch. Callers must
// not mutate the returned slice.
func (v *Version) Children(id NodeID) []NodeID { return v.children.row(id) }

// Parents returns the parent list at the sealed epoch. Callers must not
// mutate the returned slice.
func (v *Version) Parents(id NodeID) []NodeID { return v.parents.row(id) }

// NodesOfType returns the live nodes of an element type in id order, like
// DAG.NodesOfType but without the live view's opportunistic compaction.
func (v *Version) NodesOfType(typ string) []NodeID {
	raw := v.byType[typ]
	out := make([]NodeID, 0, len(raw))
	for _, id := range raw {
		if v.Alive(id) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return dedupe(out)
}

// Nodes returns all live node ids in id order.
func (v *Version) Nodes() []NodeID {
	out := make([]NodeID, 0, v.liveCount)
	for id := 0; id < len(v.types); id++ {
		if v.alive.get(NodeID(id)) {
			out = append(out, NodeID(id))
		}
	}
	return out
}
