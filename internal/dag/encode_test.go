package dag

import (
	"reflect"
	"strings"
	"testing"

	"rxview/internal/relational"
)

// buildSample constructs a DAG with shared subtrees, a deletion, and a
// resurrection, so the identity table has dead entries and reused ids.
func buildSample(t *testing.T) *DAG {
	t.Helper()
	d := New("db")
	a, _ := d.AddNode("course", relational.Tuple{relational.Str("CS650")})
	b, _ := d.AddNode("course", relational.Tuple{relational.Str("CS550")})
	c, _ := d.AddNode("student", relational.Tuple{relational.Str("S1"), relational.Str("Ann")})
	d.AddEdge(d.Root(), a)
	d.AddEdge(d.Root(), b)
	d.AddEdge(a, c)
	d.AddEdge(b, c) // shared subtree
	d.RemoveEdge(b, c)
	d.RemoveNode(b) // dead identity stays in the table
	// Resurrect b's identity, then kill it again: the table keeps the id.
	id, created := d.AddNode("course", relational.Tuple{relational.Str("CS550")})
	if !created || id != b {
		t.Fatalf("resurrection allocated %d (created=%v), want %d", id, created, b)
	}
	d.RemoveNode(b)
	return d
}

// equalDAGsExact compares two DAGs including identity table, liveness,
// sibling order and the Skolem registry — the bit-for-bit contract replay
// and checkpoint reload must satisfy.
func equalDAGsExact(t *testing.T, a, b *DAG) {
	t.Helper()
	if a.Cap() != b.Cap() || a.Root() != b.Root() || a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape mismatch: cap %d/%d root %d/%d nodes %d/%d edges %d/%d",
			a.Cap(), b.Cap(), a.Root(), b.Root(), a.NumNodes(), b.NumNodes(), a.NumEdges(), b.NumEdges())
	}
	for id := NodeID(0); int(id) < a.Cap(); id++ {
		if a.Type(id) != b.Type(id) || !a.Attr(id).Equal(b.Attr(id)) || a.Alive(id) != b.Alive(id) {
			t.Fatalf("node %d: (%s%s alive=%v) vs (%s%s alive=%v)", id,
				a.Type(id), a.Attr(id), a.Alive(id), b.Type(id), b.Attr(id), b.Alive(id))
		}
		if !reflect.DeepEqual(append([]NodeID{}, a.Children(id)...), append([]NodeID{}, b.Children(id)...)) {
			t.Fatalf("node %d children: %v vs %v", id, a.Children(id), b.Children(id))
		}
	}
	// Skolem registry must cover dead identities so resurrection reuses ids.
	for _, id := range []NodeID{0, 1, 2, 3} {
		if int(id) >= a.Cap() {
			break
		}
		got, ok := b.gen[genKey(a.Type(id), a.Attr(id))]
		if !ok || got != id {
			t.Fatalf("gen registry: id %d maps to %d (ok=%v)", id, got, ok)
		}
	}
}

func TestStateCodecRoundTrip(t *testing.T) {
	d := buildSample(t)
	got, err := DecodeState(d.AppendState(nil))
	if err != nil {
		t.Fatal(err)
	}
	equalDAGsExact(t, d, got)

	// The reloaded DAG must behave identically going forward: resurrecting
	// the dead identity reuses its id.
	id, created := got.AddNode("course", relational.Tuple{relational.Str("CS550")})
	if !created || id != 2 {
		t.Fatalf("post-reload resurrection: id %d created %v", id, created)
	}
}

func TestStateCodecTruncated(t *testing.T) {
	full := buildSample(t).AppendState(nil)
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeState(full[:cut]); err == nil {
			// A shorter prefix can only be valid if the trailing check fails;
			// DecodeState demands exact consumption, so any cut must error.
			t.Fatalf("truncation at %d/%d decoded without error", cut, len(full))
		}
	}
}

func TestDeltaSinceChronological(t *testing.T) {
	d := New("db")
	a, _ := d.AddNode("course", relational.Tuple{relational.Str("CS650")})
	d.AddEdge(d.Root(), a)

	base, err := DecodeState(d.AppendState(nil))
	if err != nil {
		t.Fatal(err)
	}

	d.Begin()
	b, _ := d.AddNode("course", relational.Tuple{relational.Str("CS550")})
	d.AddEdge(d.Root(), b)
	d.AddEdge(a, b)
	d.RemoveEdge(a, b) // delete then...
	d.AddEdge(a, b)    // ...re-add: grouped changes would lose the order
	d.RemoveEdge(d.Root(), a)
	d.RemoveNode(a) // removes (a,b) too, then deadens a
	ops := d.DeltaSince(0)
	d.Commit()

	// Round-trip every op through the wire format.
	var buf []byte
	for _, op := range ops {
		buf = AppendDelta(buf, op)
	}
	var decoded []DeltaOp
	rest := buf
	for len(rest) > 0 {
		var op DeltaOp
		var err error
		op, rest, err = DecodeDelta(rest)
		if err != nil {
			t.Fatal(err)
		}
		decoded = append(decoded, op)
	}
	if len(decoded) != len(ops) {
		t.Fatalf("decoded %d ops, recorded %d", len(decoded), len(ops))
	}

	// Replay onto the pre-transaction state and compare exactly.
	for i, op := range decoded {
		if err := base.ApplyDelta(op); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	equalDAGsExact(t, d, base)
}

func TestDeltaIncludesNodeDeletions(t *testing.T) {
	d := New("db")
	a, _ := d.AddNode("course", relational.Tuple{relational.Str("CS650")})
	d.AddEdge(d.Root(), a)
	d.Begin()
	d.RemoveEdge(d.Root(), a)
	d.RemoveNode(a)
	ops := d.DeltaSince(0)
	d.Commit()
	var dels int
	for _, op := range ops {
		if op.Kind == DeltaNodeDel {
			dels++
		}
	}
	if dels != 1 {
		t.Fatalf("delta records %d node deletions, want 1 (ops: %v)", dels, ops)
	}
}

func TestApplyDeltaDivergence(t *testing.T) {
	d := New("db")
	a, _ := d.AddNode("course", relational.Tuple{relational.Str("CS650")})
	d.AddEdge(d.Root(), a)

	cases := []struct {
		name string
		op   DeltaOp
		want string
	}{
		{"node add existing", DeltaOp{Kind: DeltaNodeAdd, Node: 5, Type: "course", Attr: relational.Tuple{relational.Str("CS650")}}, "already alive"},
		{"node add wrong id", DeltaOp{Kind: DeltaNodeAdd, Node: 7, Type: "course", Attr: relational.Tuple{relational.Str("CS999")}}, "allocated id"},
		{"edge add duplicate", DeltaOp{Kind: DeltaEdgeAdd, Edge: Edge{Parent: d.Root(), Child: a}}, "not addable"},
		{"edge del absent", DeltaOp{Kind: DeltaEdgeDel, Edge: Edge{Parent: a, Child: d.Root()}}, "not present"},
		{"node del dead", DeltaOp{Kind: DeltaNodeDel, Node: 99}, "not alive"},
		{"node del with edges", DeltaOp{Kind: DeltaNodeDel, Node: a}, "incident edges"},
	}
	for _, tc := range cases {
		err := d.ApplyDelta(tc.op)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}
