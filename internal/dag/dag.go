// Package dag implements the DAG compression of XML views (§2.3 of the
// paper): every subtree ST(A, $A) shared by multiple nodes of the tree view
// is stored once. Nodes are identified by the Skolem function gen_id over
// (element type, semantic-attribute tuple); edges are grouped per
// (parent type, child type) pair, which is exactly the relational coding
// V_σ = { edge_A_B } of the view. The per-type node sets are the gen_A
// relations the paper maintains in the background.
//
// Per-node state is stored copy-on-write (see cow.go): DAG.Seal freezes the
// live view into an immutable Version in time proportional to what changed
// since the previous seal, which is what makes serving-layer snapshot
// publication O(Δ) instead of O(n).
package dag

import (
	"fmt"
	"sort"

	"rxview/internal/relational"
)

// NodeID identifies a node of the DAG. IDs are dense and never reused within
// one DAG, so slices indexed by NodeID serve as node-keyed maps.
type NodeID int32

// InvalidNode is returned by lookups that fail.
const InvalidNode NodeID = -1

// Edge is a parent→child edge; the tuple (gen_id($A), gen_id($B)) of an
// edge_A_B relation.
type Edge struct {
	Parent, Child NodeID
}

func (e Edge) String() string { return fmt.Sprintf("(%d→%d)", e.Parent, e.Child) }

// Reader is the read surface shared by the live DAG and its sealed
// Versions: everything query evaluation, XML serialization and statistics
// need, and nothing that mutates. Functions that only read a view should
// take a Reader so they serve both the live view and frozen epochs.
// (NodesOfType exists on both concrete types but is deliberately not part
// of the interface: the live DAG's implementation compacts its byType list
// opportunistically — a write, safe only on the single-writer view.)
type Reader interface {
	// Root returns the root node id.
	Root() NodeID
	// Cap returns the id upper bound: every live NodeID is < Cap.
	Cap() int
	// Alive reports whether the id refers to a live node.
	Alive(id NodeID) bool
	// Type returns the element type of the node.
	Type(id NodeID) string
	// Attr returns the semantic attribute tuple $A of the node.
	Attr(id NodeID) relational.Tuple
	// Children returns the ordered child list; callers must not mutate it.
	Children(id NodeID) []NodeID
	// Parents returns the parent list; callers must not mutate it.
	Parents(id NodeID) []NodeID
	// Nodes returns all live node ids in id order.
	Nodes() []NodeID
	// NumNodes returns the number of live nodes (n in the paper's analysis).
	NumNodes() int
	// NumEdges returns the number of live edges (|V| in the paper's
	// analysis: the size of the relational views).
	NumEdges() int
}

var (
	_ Reader = (*DAG)(nil)
	_ Reader = (*Version)(nil)
)

// DAG is the compressed XML view.
type DAG struct {
	types    []string           // node -> element type (append-only)
	attrs    []relational.Tuple // node -> semantic attribute $A (append-only)
	children refStore           // ordered adjacency, copy-on-write
	parents  refStore
	alive    boolStore
	root     NodeID

	gen       map[string]NodeID   // Skolem registry: (type, attr) -> id
	byType    map[string][]NodeID // gen_A sets (may contain dead ids; filtered on read)
	edgeCount int
	liveCount int

	journal *journal
}

// New creates an empty DAG and its root node of the given type. The root's
// semantic attribute is the empty tuple (the paper's $r is fixed).
func New(rootType string) *DAG {
	d := &DAG{
		gen:    make(map[string]NodeID),
		byType: make(map[string][]NodeID),
		root:   InvalidNode,
	}
	d.root, _ = d.AddNode(rootType, nil)
	return d
}

// Root returns the root node id.
func (d *DAG) Root() NodeID { return d.root }

// NumNodes returns the number of live nodes (n in the paper's analysis).
func (d *DAG) NumNodes() int { return d.liveCount }

// NumEdges returns the number of live edges (|V| in the paper's analysis:
// the size of the relational views).
func (d *DAG) NumEdges() int { return d.edgeCount }

// Cap returns the id upper bound: every live NodeID is < Cap. Use it to size
// node-indexed slices.
func (d *DAG) Cap() int { return len(d.types) }

// Alive reports whether the id refers to a live node.
func (d *DAG) Alive(id NodeID) bool {
	return id >= 0 && int(id) < d.alive.n && d.alive.get(id)
}

// Type returns the element type of the node.
func (d *DAG) Type(id NodeID) string { return d.types[id] }

// Attr returns the semantic attribute tuple $A of the node.
func (d *DAG) Attr(id NodeID) relational.Tuple { return d.attrs[id] }

// Children returns the ordered child list of the node. Callers must not
// mutate the returned slice.
func (d *DAG) Children(id NodeID) []NodeID { return d.children.row(id) }

// Parents returns the parent list of the node. Callers must not mutate it.
func (d *DAG) Parents(id NodeID) []NodeID { return d.parents.row(id) }

func genKey(typ string, attr relational.Tuple) string {
	return typ + "\x00" + attr.Encode()
}

// Lookup returns the node with the given type and attribute, if present and
// alive. This is gen_id as a partial lookup.
func (d *DAG) Lookup(typ string, attr relational.Tuple) (NodeID, bool) {
	id, ok := d.gen[genKey(typ, attr)]
	if !ok || !d.alive.get(id) {
		return InvalidNode, false
	}
	return id, true
}

// AddNode returns the node for (typ, attr), creating it if needed; created
// reports whether a new node was allocated. This is the Skolem function
// gen_id of §2.3: the id is unique per (type, attribute value).
func (d *DAG) AddNode(typ string, attr relational.Tuple) (id NodeID, created bool) {
	k := genKey(typ, attr)
	if id, ok := d.gen[k]; ok {
		if d.alive.get(id) {
			return id, false
		}
		// Resurrect a previously deleted identity, reusing its id so the
		// Skolem function stays a function.
		d.alive.set(id, true)
		d.liveCount++
		d.byType[typ] = append(d.byType[typ], id)
		d.logOp(jop{kind: jNodeAdd, node: id})
		return id, true
	}
	id = NodeID(len(d.types))
	d.types = append(d.types, typ)
	d.attrs = append(d.attrs, attr.Clone())
	d.children.grow()
	d.parents.grow()
	d.alive.grow(true)
	d.gen[k] = id
	d.byType[typ] = append(d.byType[typ], id)
	d.liveCount++
	d.logOp(jop{kind: jNodeAdd, node: id})
	return id, true
}

// HasEdge reports whether the edge (u,v) exists.
func (d *DAG) HasEdge(u, v NodeID) bool {
	for _, c := range d.children.row(u) {
		if c == v {
			return true
		}
	}
	return false
}

// AddEdge inserts the edge (u,v) at the end of u's child list (the paper's
// insertions add the new subtree as the rightmost child). It reports whether
// the edge was new; edge relations have set semantics, so duplicates are
// ignored.
func (d *DAG) AddEdge(u, v NodeID) bool {
	if !d.Alive(u) || !d.Alive(v) {
		return false
	}
	if d.HasEdge(u, v) {
		return false
	}
	d.children.setRow(u, append(d.children.ownRow(u, 1), v))
	d.parents.setRow(v, append(d.parents.ownRow(v, 1), u))
	d.edgeCount++
	d.logOp(jop{kind: jEdgeAdd, edge: Edge{u, v}})
	return true
}

// RemoveEdge deletes the edge (u,v); it reports whether the edge existed.
// The child node is not removed even if orphaned: garbage collection of
// unreachable nodes is the background maintenance step of §2.3.
func (d *DAG) RemoveEdge(u, v NodeID) bool {
	cpos := d.removeRef(&d.children, u, v)
	if cpos < 0 {
		return false
	}
	ppos := d.removeRef(&d.parents, v, u)
	d.edgeCount--
	d.logOp(jop{kind: jEdgeDel, edge: Edge{u, v}, childPos: cpos, parentPos: ppos})
	return true
}

// removeRef deletes x from row i of a store, compacting in place on a
// copy-on-write-owned row; it returns x's original position, or -1.
func (d *DAG) removeRef(s *refStore, i, x NodeID) int {
	pos := -1
	for j, v := range s.row(i) {
		if v == x {
			pos = j
			break
		}
	}
	if pos < 0 {
		return -1
	}
	r := s.ownRow(i, 0)
	copy(r[pos:], r[pos+1:])
	s.setRow(i, r[:len(r)-1])
	return pos
}

// insertRef re-inserts x into row i at pos (clamped), for journal undo.
func (d *DAG) insertRef(s *refStore, i NodeID, pos int, x NodeID) {
	r := s.ownRow(i, 1)
	if pos < 0 || pos > len(r) {
		pos = len(r)
	}
	r = append(r, 0)
	copy(r[pos+1:], r[pos:])
	r[pos] = x
	s.setRow(i, r)
}

// RemoveNode deletes a node and all its incident edges. Used by garbage
// collection when a node becomes unreachable from the root.
func (d *DAG) RemoveNode(id NodeID) {
	if !d.Alive(id) {
		return
	}
	for _, c := range append([]NodeID(nil), d.children.row(id)...) {
		d.RemoveEdge(id, c)
	}
	for _, p := range append([]NodeID(nil), d.parents.row(id)...) {
		d.RemoveEdge(p, id)
	}
	d.alive.set(id, false)
	d.liveCount--
	d.logOp(jop{kind: jNodeDel, node: id})
}

// NodesOfType returns the live nodes of an element type in id order: the
// gen_A relation of §2.3.
func (d *DAG) NodesOfType(typ string) []NodeID {
	raw := d.byType[typ]
	out := make([]NodeID, 0, len(raw))
	for _, id := range raw {
		if d.alive.get(id) {
			out = append(out, id)
		}
	}
	// The raw list can accumulate dead ids and duplicates after
	// resurrections; compact it opportunistically. The replacement is a
	// fresh array (never an in-place rewrite): sealed versions keep reading
	// the old one.
	if len(out) < len(raw) {
		d.byType[typ] = append([]NodeID(nil), out...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return dedupe(out)
}

func dedupe(ids []NodeID) []NodeID {
	out := ids[:0]
	var last NodeID = -1
	for _, id := range ids {
		if id != last {
			out = append(out, id)
			last = id
		}
	}
	return out
}

// Nodes returns all live node ids in id order.
func (d *DAG) Nodes() []NodeID {
	out := make([]NodeID, 0, d.liveCount)
	for id := range d.types {
		if d.alive.get(NodeID(id)) {
			out = append(out, NodeID(id))
		}
	}
	return out
}

// Edges returns all live edges grouped by (parent type, child type) — the
// edge_A_B relations of the relational coding V_σ. Keys are "A→B".
func (d *DAG) Edges() map[string][]Edge {
	out := make(map[string][]Edge)
	for _, u := range d.Nodes() {
		for _, v := range d.children.row(u) {
			k := d.types[u] + "→" + d.types[v]
			out[k] = append(out[k], Edge{u, v})
		}
	}
	return out
}

// EdgeRelationName returns the paper's edge_A_B relation name for an edge.
func (d *DAG) EdgeRelationName(e Edge) string {
	return "edge_" + d.types[e.Parent] + "_" + d.types[e.Child]
}
