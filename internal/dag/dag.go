// Package dag implements the DAG compression of XML views (§2.3 of the
// paper): every subtree ST(A, $A) shared by multiple nodes of the tree view
// is stored once. Nodes are identified by the Skolem function gen_id over
// (element type, semantic-attribute tuple); edges are grouped per
// (parent type, child type) pair, which is exactly the relational coding
// V_σ = { edge_A_B } of the view. The per-type node sets are the gen_A
// relations the paper maintains in the background.
package dag

import (
	"fmt"
	"sort"

	"rxview/internal/relational"
)

// NodeID identifies a node of the DAG. IDs are dense and never reused within
// one DAG, so slices indexed by NodeID serve as node-keyed maps.
type NodeID int32

// InvalidNode is returned by lookups that fail.
const InvalidNode NodeID = -1

// Edge is a parent→child edge; the tuple (gen_id($A), gen_id($B)) of an
// edge_A_B relation.
type Edge struct {
	Parent, Child NodeID
}

func (e Edge) String() string { return fmt.Sprintf("(%d→%d)", e.Parent, e.Child) }

// DAG is the compressed XML view.
type DAG struct {
	types    []string           // node -> element type
	attrs    []relational.Tuple // node -> semantic attribute $A
	children [][]NodeID         // ordered adjacency
	parents  [][]NodeID
	alive    []bool
	root     NodeID

	gen       map[string]NodeID   // Skolem registry: (type, attr) -> id
	byType    map[string][]NodeID // gen_A sets (may contain dead ids; filtered on read)
	edgeCount int
	liveCount int

	journal *journal
}

// New creates an empty DAG and its root node of the given type. The root's
// semantic attribute is the empty tuple (the paper's $r is fixed).
func New(rootType string) *DAG {
	d := &DAG{
		gen:    make(map[string]NodeID),
		byType: make(map[string][]NodeID),
		root:   InvalidNode,
	}
	d.root, _ = d.AddNode(rootType, nil)
	return d
}

// Root returns the root node id.
func (d *DAG) Root() NodeID { return d.root }

// NumNodes returns the number of live nodes (n in the paper's analysis).
func (d *DAG) NumNodes() int { return d.liveCount }

// NumEdges returns the number of live edges (|V| in the paper's analysis:
// the size of the relational views).
func (d *DAG) NumEdges() int { return d.edgeCount }

// Cap returns the id upper bound: every live NodeID is < Cap. Use it to size
// node-indexed slices.
func (d *DAG) Cap() int { return len(d.types) }

// Alive reports whether the id refers to a live node.
func (d *DAG) Alive(id NodeID) bool {
	return id >= 0 && int(id) < len(d.alive) && d.alive[id]
}

// Type returns the element type of the node.
func (d *DAG) Type(id NodeID) string { return d.types[id] }

// Attr returns the semantic attribute tuple $A of the node.
func (d *DAG) Attr(id NodeID) relational.Tuple { return d.attrs[id] }

// Children returns the ordered child list of the node. Callers must not
// mutate the returned slice.
func (d *DAG) Children(id NodeID) []NodeID { return d.children[id] }

// Parents returns the parent list of the node. Callers must not mutate it.
func (d *DAG) Parents(id NodeID) []NodeID { return d.parents[id] }

func genKey(typ string, attr relational.Tuple) string {
	return typ + "\x00" + attr.Encode()
}

// Lookup returns the node with the given type and attribute, if present and
// alive. This is gen_id as a partial lookup.
func (d *DAG) Lookup(typ string, attr relational.Tuple) (NodeID, bool) {
	id, ok := d.gen[genKey(typ, attr)]
	if !ok || !d.alive[id] {
		return InvalidNode, false
	}
	return id, true
}

// AddNode returns the node for (typ, attr), creating it if needed; created
// reports whether a new node was allocated. This is the Skolem function
// gen_id of §2.3: the id is unique per (type, attribute value).
func (d *DAG) AddNode(typ string, attr relational.Tuple) (id NodeID, created bool) {
	k := genKey(typ, attr)
	if id, ok := d.gen[k]; ok {
		if d.alive[id] {
			return id, false
		}
		// Resurrect a previously deleted identity, reusing its id so the
		// Skolem function stays a function.
		d.alive[id] = true
		d.liveCount++
		d.byType[typ] = append(d.byType[typ], id)
		d.logOp(jop{kind: jNodeAdd, node: id})
		return id, true
	}
	id = NodeID(len(d.types))
	d.types = append(d.types, typ)
	d.attrs = append(d.attrs, attr.Clone())
	d.children = append(d.children, nil)
	d.parents = append(d.parents, nil)
	d.alive = append(d.alive, true)
	d.gen[k] = id
	d.byType[typ] = append(d.byType[typ], id)
	d.liveCount++
	d.logOp(jop{kind: jNodeAdd, node: id})
	return id, true
}

// HasEdge reports whether the edge (u,v) exists.
func (d *DAG) HasEdge(u, v NodeID) bool {
	for _, c := range d.children[u] {
		if c == v {
			return true
		}
	}
	return false
}

// AddEdge inserts the edge (u,v) at the end of u's child list (the paper's
// insertions add the new subtree as the rightmost child). It reports whether
// the edge was new; edge relations have set semantics, so duplicates are
// ignored.
func (d *DAG) AddEdge(u, v NodeID) bool {
	if !d.Alive(u) || !d.Alive(v) {
		return false
	}
	if d.HasEdge(u, v) {
		return false
	}
	d.children[u] = append(d.children[u], v)
	d.parents[v] = append(d.parents[v], u)
	d.edgeCount++
	d.logOp(jop{kind: jEdgeAdd, edge: Edge{u, v}})
	return true
}

// RemoveEdge deletes the edge (u,v); it reports whether the edge existed.
// The child node is not removed even if orphaned: garbage collection of
// unreachable nodes is the background maintenance step of §2.3.
func (d *DAG) RemoveEdge(u, v NodeID) bool {
	cpos := removeFrom(&d.children[u], v)
	if cpos < 0 {
		return false
	}
	ppos := removeFrom(&d.parents[v], u)
	d.edgeCount--
	d.logOp(jop{kind: jEdgeDel, edge: Edge{u, v}, childPos: cpos, parentPos: ppos})
	return true
}

func removeFrom(list *[]NodeID, x NodeID) int {
	s := *list
	for i, v := range s {
		if v == x {
			copy(s[i:], s[i+1:])
			*list = s[:len(s)-1]
			return i
		}
	}
	return -1
}

func insertAt(list *[]NodeID, pos int, x NodeID) {
	s := *list
	if pos < 0 || pos > len(s) {
		pos = len(s)
	}
	s = append(s, 0)
	copy(s[pos+1:], s[pos:])
	s[pos] = x
	*list = s
}

// RemoveNode deletes a node and all its incident edges. Used by garbage
// collection when a node becomes unreachable from the root.
func (d *DAG) RemoveNode(id NodeID) {
	if !d.Alive(id) {
		return
	}
	for _, c := range append([]NodeID(nil), d.children[id]...) {
		d.RemoveEdge(id, c)
	}
	for _, p := range append([]NodeID(nil), d.parents[id]...) {
		d.RemoveEdge(p, id)
	}
	d.alive[id] = false
	d.liveCount--
	d.logOp(jop{kind: jNodeDel, node: id})
}

// NodesOfType returns the live nodes of an element type in id order: the
// gen_A relation of §2.3.
func (d *DAG) NodesOfType(typ string) []NodeID {
	raw := d.byType[typ]
	out := make([]NodeID, 0, len(raw))
	for _, id := range raw {
		if d.alive[id] {
			out = append(out, id)
		}
	}
	// The raw list can accumulate dead ids and duplicates after
	// resurrections; compact it opportunistically.
	if len(out) < len(raw) {
		d.byType[typ] = append([]NodeID(nil), out...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return dedupe(out)
}

func dedupe(ids []NodeID) []NodeID {
	out := ids[:0]
	var last NodeID = -1
	for _, id := range ids {
		if id != last {
			out = append(out, id)
			last = id
		}
	}
	return out
}

// Nodes returns all live node ids in id order.
func (d *DAG) Nodes() []NodeID {
	out := make([]NodeID, 0, d.liveCount)
	for id := range d.types {
		if d.alive[id] {
			out = append(out, NodeID(id))
		}
	}
	return out
}

// Edges returns all live edges grouped by (parent type, child type) — the
// edge_A_B relations of the relational coding V_σ. Keys are "A→B".
func (d *DAG) Edges() map[string][]Edge {
	out := make(map[string][]Edge)
	for _, u := range d.Nodes() {
		for _, v := range d.children[u] {
			k := d.types[u] + "→" + d.types[v]
			out[k] = append(out[k], Edge{u, v})
		}
	}
	return out
}

// EdgeRelationName returns the paper's edge_A_B relation name for an edge.
func (d *DAG) EdgeRelationName(e Edge) string {
	return "edge_" + d.types[e.Parent] + "_" + d.types[e.Child]
}
