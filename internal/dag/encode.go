package dag

import (
	"encoding/binary"
	"fmt"

	"rxview/internal/relational"
)

// Durability support: the chronological mutation delta of a committed
// transaction (the ΔV a write-ahead log record carries) and a full-state
// codec for checkpoints.
//
// Replay must reproduce node identities bit-for-bit, not just an isomorphic
// view: NodeIDs are the Skolem function gen_id and flow into the topological
// order, the reachability matrix and the translator's source index, and a
// dead identity must keep its id so a later resurrection reuses it. The
// delta is therefore the journal's exact chronological op sequence
// (including node deletions, which the grouped ChangesSince omits), and the
// checkpoint serializes the whole identity table — dead entries included —
// rather than the live node set.

// DeltaKind identifies one chronological DAG mutation.
type DeltaKind uint8

// Delta op kinds, in journal vocabulary.
const (
	DeltaNodeAdd DeltaKind = iota // node allocated or resurrected
	DeltaNodeDel                  // node deadened (incident edges removed separately)
	DeltaEdgeAdd
	DeltaEdgeDel
)

// DeltaOp is one mutation of a committed group, replayable in order.
// NodeAdd carries the Skolem inputs (Type, Attr) so replay re-derives — and
// verifies — the recorded id; edge ops carry only the edge.
type DeltaOp struct {
	Kind DeltaKind
	Node NodeID // NodeAdd / NodeDel
	Edge Edge   // EdgeAdd / EdgeDel
	Type string // NodeAdd only
	Attr relational.Tuple
}

func (op DeltaOp) String() string {
	switch op.Kind {
	case DeltaNodeAdd:
		return fmt.Sprintf("+node %d %s%s", op.Node, op.Type, op.Attr)
	case DeltaNodeDel:
		return fmt.Sprintf("-node %d", op.Node)
	case DeltaEdgeAdd:
		return "+edge " + op.Edge.String()
	default:
		return "-edge " + op.Edge.String()
	}
}

// DeltaSince returns the chronological mutation sequence recorded since the
// given journal savepoint — every op, in order, node deletions included.
// Unlike the grouped ChangesSince it is an exact replay script: applying the
// ops in order on an identical pre-state reproduces identical node ids,
// sibling order, and liveness. Valid only inside a transaction.
func (d *DAG) DeltaSince(mark int) []DeltaOp {
	if d.journal == nil {
		panic("dag: DeltaSince without Begin")
	}
	ops := d.journal.ops[mark:]
	if len(ops) == 0 {
		return nil
	}
	out := make([]DeltaOp, 0, len(ops))
	for _, op := range ops {
		switch op.kind {
		case jNodeAdd:
			// types/attrs are append-only, so the Skolem inputs are still
			// available even if the node has since died.
			out = append(out, DeltaOp{Kind: DeltaNodeAdd, Node: op.node, Type: d.types[op.node], Attr: d.attrs[op.node]})
		case jNodeDel:
			out = append(out, DeltaOp{Kind: DeltaNodeDel, Node: op.node})
		case jEdgeAdd:
			out = append(out, DeltaOp{Kind: DeltaEdgeAdd, Edge: op.edge})
		case jEdgeDel:
			out = append(out, DeltaOp{Kind: DeltaEdgeDel, Edge: op.edge})
		}
	}
	return out
}

// ApplyDelta replays one recorded mutation, verifying that the live DAG
// reacts exactly as the recording run did: a NodeAdd must allocate (or
// resurrect) the recorded id, an EdgeAdd must be new, removals must find
// their target. Any divergence means the log does not continue the state it
// is being replayed onto.
func (d *DAG) ApplyDelta(op DeltaOp) error {
	switch op.Kind {
	case DeltaNodeAdd:
		id, created := d.AddNode(op.Type, op.Attr)
		if !created {
			return fmt.Errorf("dag: replay %s: node already alive as %d", op, id)
		}
		if id != op.Node {
			return fmt.Errorf("dag: replay %s: allocated id %d", op, id)
		}
	case DeltaNodeDel:
		if !d.Alive(op.Node) {
			return fmt.Errorf("dag: replay %s: node not alive", op)
		}
		if len(d.Children(op.Node)) != 0 || len(d.Parents(op.Node)) != 0 {
			// The recording run removed incident edges (journaled before the
			// node deletion) first; leftovers mean the sequences diverged.
			return fmt.Errorf("dag: replay %s: node still has incident edges", op)
		}
		d.RemoveNode(op.Node)
	case DeltaEdgeAdd:
		if !d.AddEdge(op.Edge.Parent, op.Edge.Child) {
			return fmt.Errorf("dag: replay %s: edge not addable", op)
		}
	case DeltaEdgeDel:
		if !d.RemoveEdge(op.Edge.Parent, op.Edge.Child) {
			return fmt.Errorf("dag: replay %s: edge not present", op)
		}
	default:
		return fmt.Errorf("dag: replay: unknown delta kind %d", op.Kind)
	}
	return nil
}

// AppendDelta appends a binary encoding of one delta op to dst.
func AppendDelta(dst []byte, op DeltaOp) []byte {
	dst = append(dst, byte(op.Kind))
	switch op.Kind {
	case DeltaNodeAdd:
		dst = binary.AppendUvarint(dst, uint64(op.Node))
		dst = binary.AppendUvarint(dst, uint64(len(op.Type)))
		dst = append(dst, op.Type...)
		dst = relational.AppendTuple(dst, op.Attr)
	case DeltaNodeDel:
		dst = binary.AppendUvarint(dst, uint64(op.Node))
	default:
		dst = binary.AppendUvarint(dst, uint64(op.Edge.Parent))
		dst = binary.AppendUvarint(dst, uint64(op.Edge.Child))
	}
	return dst
}

// DecodeDelta decodes one delta op from the front of b.
func DecodeDelta(b []byte) (DeltaOp, []byte, error) {
	var op DeltaOp
	if len(b) == 0 {
		return op, nil, fmt.Errorf("dag: decode delta: empty input")
	}
	op.Kind = DeltaKind(b[0])
	b = b[1:]
	switch op.Kind {
	case DeltaNodeAdd:
		id, rest, err := decodeID(b)
		if err != nil {
			return op, nil, err
		}
		op.Node, b = id, rest
		n, w := binary.Uvarint(b)
		if w <= 0 || n > uint64(len(b)-w) {
			return op, nil, fmt.Errorf("dag: decode delta: bad type length")
		}
		b = b[w:]
		op.Type = string(b[:n])
		b = b[n:]
		attr, rest2, err := relational.DecodeTuple(b)
		if err != nil {
			return op, nil, fmt.Errorf("dag: decode delta attr: %w", err)
		}
		op.Attr, b = attr, rest2
	case DeltaNodeDel:
		id, rest, err := decodeID(b)
		if err != nil {
			return op, nil, err
		}
		op.Node, b = id, rest
	case DeltaEdgeAdd, DeltaEdgeDel:
		p, rest, err := decodeID(b)
		if err != nil {
			return op, nil, err
		}
		c, rest2, err := decodeID(rest)
		if err != nil {
			return op, nil, err
		}
		op.Edge, b = Edge{Parent: p, Child: c}, rest2
	default:
		return op, nil, fmt.Errorf("dag: decode delta: unknown kind %d", uint8(op.Kind))
	}
	return op, b, nil
}

func decodeID(b []byte) (NodeID, []byte, error) {
	u, w := binary.Uvarint(b)
	if w <= 0 || u > uint64(int32(^uint32(0)>>1)) {
		return InvalidNode, nil, fmt.Errorf("dag: decode delta: bad node id")
	}
	return NodeID(u), b[w:], nil
}

// AppendState appends a full serialization of the DAG to dst: the entire
// identity table (dead entries included, so resurrection reuses the same
// ids after a reload), the alive flags, and the ordered child lists.
// DecodeState is the inverse. Must not be called inside a transaction.
func (d *DAG) AppendState(dst []byte) []byte {
	if d.journal != nil {
		panic("dag: AppendState inside a transaction")
	}
	n := len(d.types)
	dst = binary.AppendUvarint(dst, uint64(n))
	dst = binary.AppendUvarint(dst, uint64(d.root))
	for id := 0; id < n; id++ {
		dst = binary.AppendUvarint(dst, uint64(len(d.types[id])))
		dst = append(dst, d.types[id]...)
		dst = relational.AppendTuple(dst, d.attrs[id])
		if d.alive.get(NodeID(id)) {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	for id := 0; id < n; id++ {
		row := d.children.row(NodeID(id))
		dst = binary.AppendUvarint(dst, uint64(len(row)))
		for _, c := range row {
			dst = binary.AppendUvarint(dst, uint64(c))
		}
	}
	return dst
}

// DecodeState reconstructs a DAG serialized by AppendState. The result is
// id-identical to the original: same identity table, same liveness, same
// sibling order (parent lists are rebuilt from the child lists in id order).
func DecodeState(b []byte) (*DAG, error) {
	nU, w := binary.Uvarint(b)
	if w <= 0 || nU > uint64(int32(^uint32(0)>>1)) {
		return nil, fmt.Errorf("dag: decode state: bad node count")
	}
	b = b[w:]
	rootU, w := binary.Uvarint(b)
	if w <= 0 {
		return nil, fmt.Errorf("dag: decode state: bad root")
	}
	b = b[w:]
	n := int(nU)
	if rootU >= nU && n > 0 {
		return nil, fmt.Errorf("dag: decode state: root %d out of range", rootU)
	}
	d := &DAG{
		gen:    make(map[string]NodeID, n),
		byType: make(map[string][]NodeID),
		root:   NodeID(rootU),
	}
	alive := make([]bool, n)
	for id := 0; id < n; id++ {
		tl, w := binary.Uvarint(b)
		if w <= 0 || tl > uint64(len(b)-w) {
			return nil, fmt.Errorf("dag: decode state: node %d: bad type", id)
		}
		b = b[w:]
		typ := string(b[:tl])
		b = b[tl:]
		attr, rest, err := relational.DecodeTuple(b)
		if err != nil {
			return nil, fmt.Errorf("dag: decode state: node %d attr: %w", id, err)
		}
		b = rest
		if len(b) == 0 {
			return nil, fmt.Errorf("dag: decode state: node %d: missing alive flag", id)
		}
		alive[id] = b[0] != 0
		b = b[1:]

		d.types = append(d.types, typ)
		d.attrs = append(d.attrs, attr)
		d.children.grow()
		d.parents.grow()
		d.alive.grow(alive[id])
		d.gen[genKey(typ, attr)] = NodeID(id)
		if alive[id] {
			d.byType[typ] = append(d.byType[typ], NodeID(id))
			d.liveCount++
		}
	}
	for id := 0; id < n; id++ {
		cl, w := binary.Uvarint(b)
		if w <= 0 {
			return nil, fmt.Errorf("dag: decode state: node %d: bad child count", id)
		}
		b = b[w:]
		if cl > uint64(len(b)) {
			return nil, fmt.Errorf("dag: decode state: node %d: child list exceeds input", id)
		}
		if cl == 0 {
			continue
		}
		row := make([]NodeID, 0, cl)
		for j := uint64(0); j < cl; j++ {
			c, rest, err := decodeID(b)
			if err != nil {
				return nil, fmt.Errorf("dag: decode state: node %d child %d: %w", id, j, err)
			}
			if int(c) >= n {
				return nil, fmt.Errorf("dag: decode state: node %d child id %d out of range", id, c)
			}
			row = append(row, c)
			b = rest
		}
		d.children.setRow(NodeID(id), row)
		d.edgeCount += len(row)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("dag: decode state: %d trailing bytes", len(b))
	}
	// Rebuild parent lists from the child lists. Parent-list order is not
	// semantically observable (sibling order lives in children), so the
	// deterministic id-order rebuild is sufficient.
	for id := 0; id < n; id++ {
		for _, c := range d.children.row(NodeID(id)) {
			d.parents.setRow(c, append(d.parents.ownRow(c, 1), NodeID(id)))
		}
	}
	return d, nil
}
