package dag

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"rxview/internal/relational"
)

// versionState renders everything a Version exposes into a comparable
// value, through the shared read surface so DAG clones and sealed versions
// render identically (NodesOfType sits outside Reader; see its comment).
func versionState(d interface {
	Reader
	NodesOfType(string) []NodeID
}) string {
	out := fmt.Sprintf("root=%d cap=%d nodes=%d edges=%d\n", d.Root(), d.Cap(), d.NumNodes(), d.NumEdges())
	for _, id := range d.Nodes() {
		out += fmt.Sprintf("%d %s(%s) ch=%v par=%v\n",
			id, d.Type(id), d.Attr(id), d.Children(id), d.Parents(id))
	}
	for _, typ := range []string{"db", "C", "D"} {
		out += fmt.Sprintf("%s: %v\n", typ, d.NodesOfType(typ))
	}
	return out
}

// TestSealAliasing drives a random mutation sequence, sealing a version
// and taking a deep clone at every step; at the end every sealed version
// must still render exactly like its clone — no later write may leak into
// a sealed epoch through shared chunks or rows.
func TestSealAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := New("db")
	var ids []NodeID
	ids = append(ids, d.Root())

	type pair struct {
		v      *Version
		oracle *DAG
		state  string
	}
	var pairs []pair

	for step := 0; step < 400; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // add node (+ sometimes resurrect an old identity)
			id, _ := d.AddNode("C", relational.Tuple{relational.Int(int64(rng.Intn(60)))})
			ids = append(ids, id)
		case op < 8: // add edge
			// Parent = larger id: ids are created in order, so these edges
			// can never close a cycle.
			u, v := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
			if u < v {
				d.AddEdge(v, u)
			} else if u != v {
				d.AddEdge(u, v)
			}
		case op < 9: // remove an edge: exercises the in-place row compaction
			u := ids[rng.Intn(len(ids))]
			if d.Alive(u) {
				if ch := d.Children(u); len(ch) > 0 {
					d.RemoveEdge(u, ch[rng.Intn(len(ch))])
				}
			}
		default: // remove a node: flips alive, clears rows, feeds resurrection
			u := ids[rng.Intn(len(ids))]
			if u != d.Root() {
				d.RemoveNode(u)
			}
		}
		if step%20 == 0 {
			v := d.Seal()
			pairs = append(pairs, pair{v: v, oracle: d.Clone(), state: versionState(v)})
		}
	}

	for i, p := range pairs {
		if got := versionState(p.v); got != p.state {
			t.Fatalf("sealed version %d drifted after later writes:\nat seal:\n%s\nnow:\n%s", i, p.state, got)
		}
		if want := versionState(p.oracle); want != p.state {
			t.Fatalf("sealed version %d disagrees with its deep clone:\nclone:\n%s\nversion:\n%s", i, want, p.state)
		}
	}
}

// TestSealResurrectByType pins the byType sharing case: sealing, killing a
// node, resurrecting it (which appends to the live byType list in place)
// must not grow any sealed version's type set.
func TestSealResurrectByType(t *testing.T) {
	d := New("db")
	c1, _ := d.AddNode("C", relational.Tuple{relational.Int(1)})
	c2, _ := d.AddNode("C", relational.Tuple{relational.Int(2)})
	d.AddEdge(d.Root(), c1)
	d.AddEdge(c1, c2)

	v1 := d.Seal()
	want1 := append([]NodeID(nil), v1.NodesOfType("C")...)

	d.RemoveNode(c2)
	v2 := d.Seal()
	want2 := append([]NodeID(nil), v2.NodesOfType("C")...)
	if len(want2) != len(want1)-1 {
		t.Fatalf("v2 should have lost a C node: %v vs %v", want2, want1)
	}

	// Resurrect: reuses c2's id, appends to the live byType list.
	r, created := d.AddNode("C", relational.Tuple{relational.Int(2)})
	if !created || r != c2 {
		t.Fatalf("resurrection should reuse id %d, got %d created=%v", c2, r, created)
	}
	d.AddEdge(c1, r)
	for i := 0; i < 40; i++ { // force byType growth past shared capacity
		id, _ := d.AddNode("C", relational.Tuple{relational.Int(int64(100 + i))})
		d.AddEdge(d.Root(), id)
	}

	if got := v1.NodesOfType("C"); !reflect.DeepEqual(got, want1) {
		t.Errorf("v1 type set changed: %v want %v", got, want1)
	}
	if got := v2.NodesOfType("C"); !reflect.DeepEqual(got, want2) {
		t.Errorf("v2 type set changed: %v want %v", got, want2)
	}
	if !v1.Alive(c2) || v2.Alive(c2) {
		t.Errorf("alive bits leaked across versions: v1=%v v2=%v", v1.Alive(c2), v2.Alive(c2))
	}
}

// TestSealSharesUntouchedChunks asserts the O(Δ) property structurally: a
// seal after one small write shares all but the dirtied chunks with the
// previous seal.
func TestSealSharesUntouchedChunks(t *testing.T) {
	d := New("db")
	var ids []NodeID
	for i := 0; i < 4*chunkSize; i++ {
		id, _ := d.AddNode("C", relational.Tuple{relational.Int(int64(i))})
		if len(ids) > 0 {
			d.AddEdge(ids[len(ids)-1], id)
		} else {
			d.AddEdge(d.Root(), id)
		}
		ids = append(ids, id)
	}
	v1 := d.Seal()
	// One edge removal touches two rows (child list of u, parent list of v).
	d.RemoveEdge(ids[0], ids[1])
	v2 := d.Seal()

	totalCh := (v1.children.n + chunkSize - 1) / chunkSize
	sharedCh := 0
	for ci := 0; ci < totalCh; ci++ {
		if v1.children.chunk(ci) == v2.children.chunk(ci) {
			sharedCh++
		}
	}
	if totalCh-sharedCh > 1 {
		t.Errorf("children: %d of %d chunks copied for a one-edge delete", totalCh-sharedCh, totalCh)
	}
	aliveChunks := (v1.alive.n + chunkSize - 1) / chunkSize
	shared := 0
	for ci := 0; ci < aliveChunks; ci++ {
		if v1.alive.blocks[ci>>blockBits][ci&blockMask] == v2.alive.blocks[ci>>blockBits][ci&blockMask] {
			shared++
		}
	}
	if shared != aliveChunks {
		t.Errorf("alive: %d chunks copied for an edge-only change", aliveChunks-shared)
	}
	// And the removed edge is visible only in v2.
	if !v1.hasEdgeIn(ids[0], ids[1]) {
		t.Error("v1 lost the removed edge")
	}
	if v2.hasEdgeIn(ids[0], ids[1]) {
		t.Error("v2 still has the removed edge")
	}
}

// hasEdgeIn is a test helper over a sealed version.
func (v *Version) hasEdgeIn(u, c NodeID) bool {
	for _, x := range v.Children(u) {
		if x == c {
			return true
		}
	}
	return false
}
