package dag

import (
	"errors"
	"fmt"
	"math"

	"rxview/internal/xtree"
)

// CheckAcyclic verifies the structure is a DAG (the h1 < h2 style constraint
// of the paper's dataset guarantees this by construction; publishing enforces
// it because gen_id memoization cannot create back edges to in-progress
// nodes only in acyclic inputs). Returns an error naming a cycle member.
func (d *DAG) CheckAcyclic() error {
	state := make([]int8, d.Cap()) // 0 unseen, 1 in-progress, 2 done
	var visit func(id NodeID) error
	visit = func(id NodeID) error {
		switch state[id] {
		case 1:
			return fmt.Errorf("dag: cycle through node %d (%s)", id, d.types[id])
		case 2:
			return nil
		}
		state[id] = 1
		for _, c := range d.Children(id) {
			if err := visit(c); err != nil {
				return err
			}
		}
		state[id] = 2
		return nil
	}
	for _, id := range d.Nodes() {
		if err := visit(id); err != nil {
			return err
		}
	}
	return nil
}

// Reachable returns a Cap()-sized bitmap marking nodes reachable from the
// root (including it). It works on any Reader — the live DAG or a sealed
// Version.
func Reachable(d Reader) []bool {
	seen := make([]bool, d.Cap())
	root := d.Root()
	if !d.Alive(root) {
		return seen
	}
	stack := []NodeID{root}
	seen[root] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range d.Children(u) {
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return seen
}

// Reachable returns a Cap()-sized bitmap marking nodes reachable from the
// root (including it).
func (d *DAG) Reachable() []bool { return Reachable(d) }

// GarbageCollect removes every node unreachable from the root, together with
// its edges, and returns the removed node ids. This is the background step
// of §2.3 that clears gen_B entries "no longer linked to any node".
func (d *DAG) GarbageCollect() []NodeID {
	seen := d.Reachable()
	var removed []NodeID
	for _, id := range d.Nodes() {
		if !seen[id] {
			removed = append(removed, id)
		}
	}
	for _, id := range removed {
		d.RemoveNode(id)
	}
	return removed
}

// OccurrenceCounts returns, per node, the number of occurrences the node has
// in the uncompressed tree view (the number of root-to-node paths). Counts
// saturate at MaxFloat64 scale via float64: recursive views can be
// exponentially larger than their DAG (§1), which is the point of the
// compression.
func OccurrenceCounts(d Reader) []float64 {
	occ := make([]float64, d.Cap())
	state := make([]int8, d.Cap())
	root := d.Root()
	var visit func(id NodeID) float64
	visit = func(id NodeID) float64 {
		if state[id] == 2 {
			return occ[id]
		}
		state[id] = 2
		var total float64
		if id == root {
			total = 1
		}
		for _, p := range d.Parents(id) {
			if d.Alive(p) {
				total += visit(p)
			}
		}
		occ[id] = total
		return total
	}
	for _, id := range d.Nodes() {
		visit(id)
	}
	return occ
}

// OccurrenceCounts returns the per-node occurrence counts of the live view.
func (d *DAG) OccurrenceCounts() []float64 { return OccurrenceCounts(d) }

// TreeSize returns the number of element nodes of the uncompressed tree view
// |T|. The compression ratio |T| / NumNodes is what Fig.10(b) reports.
func TreeSize(d Reader) float64 {
	var total float64
	for _, c := range OccurrenceCounts(d) {
		total += c
	}
	return total
}

// TreeSize returns |T| for the live view.
func (d *DAG) TreeSize() float64 { return TreeSize(d) }

// SharedNodeCount returns how many live nodes have more than one parent —
// the subtree-sharing statistic of §5 (31.4% of C instances in the paper's
// dataset).
func SharedNodeCount(d Reader) int {
	n := 0
	for _, id := range d.Nodes() {
		live := 0
		for _, p := range d.Parents(id) {
			if d.Alive(p) {
				live++
			}
		}
		if live > 1 {
			n++
		}
	}
	return n
}

// SharedNodeCount returns the sharing statistic for the live view.
func (d *DAG) SharedNodeCount() int { return SharedNodeCount(d) }

// ErrTreeTooLarge is returned by Unfold when the uncompressed tree exceeds
// the node budget.
var ErrTreeTooLarge = errors.New("dag: uncompressed tree exceeds node budget")

// Unfold materializes the uncompressed tree view rooted at id, formatting
// PCDATA content with textOf (nil means elements carry no text). maxNodes
// bounds the output size; recursive views can be exponentially larger than
// the DAG. It works on any Reader — the live DAG or a sealed Version.
func Unfold(d Reader, id NodeID, textOf func(NodeID) (string, bool), maxNodes int) (*xtree.Node, error) {
	if maxNodes <= 0 {
		maxNodes = math.MaxInt
	}
	budget := maxNodes
	var build func(id NodeID) (*xtree.Node, error)
	build = func(id NodeID) (*xtree.Node, error) {
		if budget <= 0 {
			return nil, ErrTreeTooLarge
		}
		budget--
		n := &xtree.Node{Type: d.Type(id)}
		if textOf != nil {
			if s, ok := textOf(id); ok {
				n.Text = s
			}
		}
		for _, c := range d.Children(id) {
			child, err := build(c)
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, child)
		}
		return n, nil
	}
	return build(id)
}

// Unfold materializes the uncompressed tree view of the live DAG.
func (d *DAG) Unfold(id NodeID, textOf func(NodeID) (string, bool), maxNodes int) (*xtree.Node, error) {
	return Unfold(d, id, textOf, maxNodes)
}
