package dag

// journal records DAG mutations so a speculative update (e.g. publishing a
// subtree ST(A,t) before the relational translation is accepted) can be
// rolled back if the update is rejected — the paper's framework rejects ΔX
// "as early as possible" and must leave the view untouched.
//
// Mutations are kept as a single chronological log and undone in reverse, so
// arbitrary interleavings of node/edge adds and removes restore exactly.
type journal struct {
	ops []jop
}

type jop struct {
	kind                jopKind
	node                NodeID
	edge                Edge
	childPos, parentPos int // original positions for jEdgeDel undo
}

type jopKind uint8

const (
	jNodeAdd jopKind = iota
	jNodeDel
	jEdgeAdd
	jEdgeDel
)

func (d *DAG) logOp(op jop) {
	if d.journal != nil {
		d.journal.ops = append(d.journal.ops, op)
	}
}

// Begin starts recording mutations. Nested transactions are not supported;
// Begin panics if one is already open (programming error).
func (d *DAG) Begin() {
	if d.journal != nil {
		panic("dag: nested Begin")
	}
	d.journal = &journal{}
}

// InTxn reports whether a journal is open.
func (d *DAG) InTxn() bool { return d.journal != nil }

// Commit discards the journal, keeping all mutations.
func (d *DAG) Commit() {
	if d.journal == nil {
		panic("dag: Commit without Begin")
	}
	d.journal = nil
}

// Changes returns the mutations recorded so far: added nodes, added edges and
// removed edges. Valid only inside a transaction.
func (d *DAG) Changes() (nodeAdds []NodeID, edgeAdds, edgeDels []Edge) {
	if d.journal == nil {
		panic("dag: Changes without Begin")
	}
	for _, op := range d.journal.ops {
		switch op.kind {
		case jNodeAdd:
			nodeAdds = append(nodeAdds, op.node)
		case jEdgeAdd:
			edgeAdds = append(edgeAdds, op.edge)
		case jEdgeDel:
			edgeDels = append(edgeDels, op.edge)
		}
	}
	return nodeAdds, edgeAdds, edgeDels
}

// Rollback undoes every mutation recorded since Begin, in reverse
// chronological order.
func (d *DAG) Rollback() {
	if d.journal == nil {
		panic("dag: Rollback without Begin")
	}
	ops := d.journal.ops
	d.journal = nil // avoid re-journaling the undo operations

	for i := len(ops) - 1; i >= 0; i-- {
		op := ops[i]
		switch op.kind {
		case jEdgeAdd:
			d.RemoveEdge(op.edge.Parent, op.edge.Child)
		case jEdgeDel:
			// Re-insert at the original positions so sibling order (which
			// the XML view semantics exposes) is restored exactly.
			d.insertRef(&d.children, op.edge.Parent, op.childPos, op.edge.Child)
			d.insertRef(&d.parents, op.edge.Child, op.parentPos, op.edge.Parent)
			d.edgeCount++
		case jNodeAdd:
			// Incident edges were necessarily added after the node and
			// have already been removed above.
			if d.alive.get(op.node) {
				d.alive.set(op.node, false)
				d.liveCount--
			}
		case jNodeDel:
			d.resurrect(op.node)
		}
	}
}

func (d *DAG) resurrect(id NodeID) {
	if d.alive.get(id) {
		return
	}
	d.alive.set(id, true)
	d.liveCount++
	d.byType[d.types[id]] = append(d.byType[d.types[id]], id)
}
