package dag

// journal records DAG mutations so a speculative update (e.g. publishing a
// subtree ST(A,t) before the relational translation is accepted) can be
// rolled back if the update is rejected — the paper's framework rejects ΔX
// "as early as possible" and must leave the view untouched.
//
// Mutations are kept as a single chronological log and undone in reverse, so
// arbitrary interleavings of node/edge adds and removes restore exactly.
type journal struct {
	ops []jop
}

type jop struct {
	kind                jopKind
	node                NodeID
	edge                Edge
	childPos, parentPos int // original positions for jEdgeDel undo
}

type jopKind uint8

const (
	jNodeAdd jopKind = iota
	jNodeDel
	jEdgeAdd
	jEdgeDel
)

func (d *DAG) logOp(op jop) {
	if d.journal != nil {
		d.journal.ops = append(d.journal.ops, op)
	}
}

// Begin starts recording mutations. Nested transactions are not supported;
// Begin panics if one is already open (programming error).
func (d *DAG) Begin() {
	if d.journal != nil {
		panic("dag: nested Begin")
	}
	d.journal = &journal{}
}

// InTxn reports whether a journal is open.
func (d *DAG) InTxn() bool { return d.journal != nil }

// Commit discards the journal, keeping all mutations.
func (d *DAG) Commit() {
	if d.journal == nil {
		panic("dag: Commit without Begin")
	}
	d.journal = nil
}

// Mark returns a savepoint inside the open journal: the point RollbackTo and
// ChangesSince measure from. A transaction that stages several updates over
// one long-lived journal gives each update its own mark, so a rejected update
// unwinds alone while the journal keeps covering the whole group.
func (d *DAG) Mark() int {
	if d.journal == nil {
		panic("dag: Mark without Begin")
	}
	return len(d.journal.ops)
}

// Changes returns the mutations recorded since Begin: added nodes, added
// edges and removed edges. Valid only inside a transaction.
func (d *DAG) Changes() (nodeAdds []NodeID, edgeAdds, edgeDels []Edge) {
	return d.ChangesSince(0)
}

// ChangesSince returns the mutations recorded since the given savepoint.
func (d *DAG) ChangesSince(mark int) (nodeAdds []NodeID, edgeAdds, edgeDels []Edge) {
	if d.journal == nil {
		panic("dag: ChangesSince without Begin")
	}
	for _, op := range d.journal.ops[mark:] {
		switch op.kind {
		case jNodeAdd:
			nodeAdds = append(nodeAdds, op.node)
		case jEdgeAdd:
			edgeAdds = append(edgeAdds, op.edge)
		case jEdgeDel:
			edgeDels = append(edgeDels, op.edge)
		}
	}
	return nodeAdds, edgeAdds, edgeDels
}

// Rollback undoes every mutation recorded since Begin, in reverse
// chronological order, and closes the journal.
func (d *DAG) Rollback() {
	if d.journal == nil {
		panic("dag: Rollback without Begin")
	}
	ops := d.journal.ops
	d.journal = nil // avoid re-journaling the undo operations
	d.undo(ops)
}

// RollbackTo undoes every mutation recorded after the given savepoint and
// truncates the journal back to it; the journal stays open, keeping the
// mutations before the mark. Everything before the savepoint can still be
// undone by a later Rollback (or RollbackTo an earlier mark).
func (d *DAG) RollbackTo(mark int) {
	j := d.journal
	if j == nil {
		panic("dag: RollbackTo without Begin")
	}
	if mark < 0 || mark > len(j.ops) {
		panic("dag: RollbackTo with invalid mark")
	}
	ops := j.ops[mark:]
	j.ops = j.ops[:mark]
	d.journal = nil // avoid re-journaling the undo operations
	d.undo(ops)
	d.journal = j
}

// undo reverses a suffix of journal operations, newest first. The journal
// must be detached while it runs so the inverse mutations are not recorded.
func (d *DAG) undo(ops []jop) {
	for i := len(ops) - 1; i >= 0; i-- {
		op := ops[i]
		switch op.kind {
		case jEdgeAdd:
			d.RemoveEdge(op.edge.Parent, op.edge.Child)
		case jEdgeDel:
			// Re-insert at the original positions so sibling order (which
			// the XML view semantics exposes) is restored exactly.
			d.insertRef(&d.children, op.edge.Parent, op.childPos, op.edge.Child)
			d.insertRef(&d.parents, op.edge.Child, op.parentPos, op.edge.Parent)
			d.edgeCount++
		case jNodeAdd:
			// Incident edges were necessarily added after the node and
			// have already been removed above.
			if d.alive.get(op.node) {
				d.alive.set(op.node, false)
				d.liveCount--
			}
		case jNodeDel:
			d.resurrect(op.node)
		}
	}
}

func (d *DAG) resurrect(id NodeID) {
	if d.alive.get(id) {
		return
	}
	d.alive.set(id, true)
	d.liveCount++
	d.byType[d.types[id]] = append(d.byType[d.types[id]], id)
}
