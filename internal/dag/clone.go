package dag

import (
	"maps"

	"rxview/internal/relational"
)

// Clone returns an independent structural copy of the DAG, for snapshot
// publication: the serving layer evaluates queries against the clone while
// the original keeps mutating under the writer. Every mutable structure is
// deep-copied — in particular the per-node adjacency slices, which
// RemoveEdge compacts in place, and the Skolem registry maps, which AddNode
// grows. Node attribute tuples and type strings are immutable once created
// and are shared.
//
// Clone panics inside a transaction: a snapshot of speculative, possibly
// rolled-back state is never meaningful.
func (d *DAG) Clone() *DAG {
	if d.journal != nil {
		panic("dag: Clone inside a transaction")
	}
	c := &DAG{
		types:     append([]string(nil), d.types...),
		attrs:     append([]relational.Tuple(nil), d.attrs...),
		children:  cloneAdjacency(d.children),
		parents:   cloneAdjacency(d.parents),
		alive:     append([]bool(nil), d.alive...),
		root:      d.root,
		gen:       maps.Clone(d.gen),
		byType:    make(map[string][]NodeID, len(d.byType)),
		edgeCount: d.edgeCount,
		liveCount: d.liveCount,
	}
	for typ, ids := range d.byType {
		c.byType[typ] = append([]NodeID(nil), ids...)
	}
	return c
}

func cloneAdjacency(adj [][]NodeID) [][]NodeID {
	out := make([][]NodeID, len(adj))
	for i, s := range adj {
		if len(s) > 0 {
			out[i] = append([]NodeID(nil), s...)
		}
	}
	return out
}
