package dag

import (
	"maps"

	"rxview/internal/relational"
)

// Clone returns an independent structural copy of the DAG. Every mutable
// structure is deep-copied — in particular the per-node adjacency rows and
// the Skolem registry maps. Node attribute tuples and type strings are
// immutable once created and are shared.
//
// Snapshot publication does NOT use Clone anymore: Seal produces an
// immutable copy-on-write Version in O(Δ). Clone remains the full-copy
// path — the differential baseline for the COW machinery, the oracle for
// aliasing tests, and the right tool when the copy must itself be mutable
// (it returns a live *DAG, not a frozen Version).
//
// Clone panics inside a transaction: a copy of speculative, possibly
// rolled-back state is never meaningful.
func (d *DAG) Clone() *DAG {
	if d.journal != nil {
		panic("dag: Clone inside a transaction")
	}
	c := &DAG{
		types:     append([]string(nil), d.types...),
		attrs:     append([]relational.Tuple(nil), d.attrs...),
		children:  d.children.clone(),
		parents:   d.parents.clone(),
		alive:     d.alive.clone(),
		root:      d.root,
		gen:       maps.Clone(d.gen),
		byType:    make(map[string][]NodeID, len(d.byType)),
		edgeCount: d.edgeCount,
		liveCount: d.liveCount,
	}
	for typ, ids := range d.byType {
		c.byType[typ] = append([]NodeID(nil), ids...)
	}
	return c
}
