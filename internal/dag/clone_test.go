package dag

import (
	"reflect"
	"testing"

	"rxview/internal/relational"
)

// TestCloneIndependence checks that a clone is structurally equal at the
// moment it is taken and stays untouched by every kind of mutation the
// original can undergo afterwards — the property snapshot publication relies
// on.
func TestCloneIndependence(t *testing.T) {
	d := New("r")
	a, _ := d.AddNode("A", relational.Tuple{relational.Int(1)})
	b, _ := d.AddNode("B", relational.Tuple{relational.Int(2)})
	c, _ := d.AddNode("B", relational.Tuple{relational.Int(3)})
	d.AddEdge(d.Root(), a)
	d.AddEdge(a, b)
	d.AddEdge(a, c)
	d.AddEdge(d.Root(), c)

	snap := d.Clone()
	wantNodes := snap.Nodes()
	wantChildren := append([]NodeID(nil), snap.Children(a)...)
	wantEdges := snap.NumEdges()

	if !reflect.DeepEqual(snap.Nodes(), d.Nodes()) {
		t.Fatalf("clone nodes %v != original %v", snap.Nodes(), d.Nodes())
	}
	if snap.NumEdges() != d.NumEdges() || snap.Root() != d.Root() {
		t.Fatalf("clone shape differs: edges %d vs %d", snap.NumEdges(), d.NumEdges())
	}

	// Mutate the original in every way the write path does: in-place edge
	// removal (compacts adjacency slices), node addition (grows the Skolem
	// maps), node removal (flips alive), resurrection.
	d.RemoveEdge(a, b)
	d.RemoveNode(b)
	e, _ := d.AddNode("B", relational.Tuple{relational.Int(4)})
	d.AddEdge(a, e)
	d.AddNode("B", relational.Tuple{relational.Int(2)}) // resurrect b's identity

	if !reflect.DeepEqual(snap.Nodes(), wantNodes) {
		t.Errorf("clone nodes changed under original mutation: %v != %v", snap.Nodes(), wantNodes)
	}
	if !reflect.DeepEqual(snap.Children(a), wantChildren) {
		t.Errorf("clone adjacency changed: %v != %v", snap.Children(a), wantChildren)
	}
	if snap.NumEdges() != wantEdges {
		t.Errorf("clone edge count changed: %d != %d", snap.NumEdges(), wantEdges)
	}
	if !snap.Alive(b) {
		t.Error("clone lost node removed only in the original")
	}
	if snap.Alive(e) {
		t.Error("clone sees node added after the snapshot")
	}
	if id, ok := snap.Lookup("B", relational.Tuple{relational.Int(4)}); ok {
		t.Errorf("clone Skolem registry sees post-snapshot node %d", id)
	}

	// And the mirror: mutating the clone must not leak into the original.
	snap.RemoveEdge(a, c)
	if !d.HasEdge(a, c) {
		t.Error("mutating the clone removed an edge from the original")
	}
}

// TestCloneInTxnPanics documents that snapshots of speculative state are
// rejected loudly.
func TestCloneInTxnPanics(t *testing.T) {
	d := New("r")
	d.Begin()
	defer d.Rollback()
	defer func() {
		if recover() == nil {
			t.Error("Clone inside a transaction did not panic")
		}
	}()
	d.Clone()
}
