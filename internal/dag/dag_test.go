package dag

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"rxview/internal/relational"
	"rxview/internal/xtree"
)

// chainDAG builds db -> c1 -> c2 -> shared; c1 -> shared (diamond).
func chainDAG(t *testing.T) (*DAG, NodeID, NodeID, NodeID) {
	t.Helper()
	d := New("db")
	c1, _ := d.AddNode("C", relational.Tuple{relational.Int(1)})
	c2, _ := d.AddNode("C", relational.Tuple{relational.Int(2)})
	sh, _ := d.AddNode("C", relational.Tuple{relational.Int(3)})
	d.AddEdge(d.Root(), c1)
	d.AddEdge(c1, c2)
	d.AddEdge(c2, sh)
	d.AddEdge(c1, sh)
	return d, c1, c2, sh
}

func TestSkolemIdentity(t *testing.T) {
	d := New("db")
	a1, created := d.AddNode("C", relational.Tuple{relational.Int(7)})
	if !created {
		t.Error("first AddNode should create")
	}
	a2, created := d.AddNode("C", relational.Tuple{relational.Int(7)})
	if created || a1 != a2 {
		t.Error("gen_id must be a function of (type, attr)")
	}
	b, created := d.AddNode("D", relational.Tuple{relational.Int(7)})
	if !created || b == a1 {
		t.Error("different types must get different ids")
	}
	if id, ok := d.Lookup("C", relational.Tuple{relational.Int(7)}); !ok || id != a1 {
		t.Error("Lookup")
	}
	if _, ok := d.Lookup("C", relational.Tuple{relational.Int(8)}); ok {
		t.Error("Lookup of absent node")
	}
}

func TestEdgesSetSemantics(t *testing.T) {
	d, c1, c2, _ := chainDAG(t)
	if d.AddEdge(c1, c2) {
		t.Error("duplicate edge accepted")
	}
	if got := d.NumEdges(); got != 4 {
		t.Errorf("NumEdges = %d", got)
	}
	if !d.HasEdge(c1, c2) || d.HasEdge(c2, c1) {
		t.Error("HasEdge")
	}
	if !d.RemoveEdge(c1, c2) {
		t.Error("RemoveEdge failed")
	}
	if d.RemoveEdge(c1, c2) {
		t.Error("double RemoveEdge succeeded")
	}
	if d.NumEdges() != 3 {
		t.Errorf("NumEdges after remove = %d", d.NumEdges())
	}
}

func TestChildOrderIsRightmostInsert(t *testing.T) {
	d := New("db")
	a, _ := d.AddNode("C", relational.Tuple{relational.Int(1)})
	b, _ := d.AddNode("C", relational.Tuple{relational.Int(2)})
	d.AddEdge(d.Root(), a)
	d.AddEdge(d.Root(), b)
	ch := d.Children(d.Root())
	if len(ch) != 2 || ch[0] != a || ch[1] != b {
		t.Errorf("children order = %v", ch)
	}
	if ps := d.Parents(a); len(ps) != 1 || ps[0] != d.Root() {
		t.Errorf("parents = %v", ps)
	}
}

func TestRemoveNodeAndGC(t *testing.T) {
	d, c1, c2, sh := chainDAG(t)
	// Cutting db->c1 strands c1, c2, sh.
	d.RemoveEdge(d.Root(), c1)
	removed := d.GarbageCollect()
	if len(removed) != 3 {
		t.Fatalf("GC removed %v", removed)
	}
	if d.NumNodes() != 1 || d.NumEdges() != 0 {
		t.Errorf("after GC: %d nodes %d edges", d.NumNodes(), d.NumEdges())
	}
	for _, id := range []NodeID{c1, c2, sh} {
		if d.Alive(id) {
			t.Errorf("node %d still alive", id)
		}
	}
	if got := d.NodesOfType("C"); len(got) != 0 {
		t.Errorf("NodesOfType after GC = %v", got)
	}
}

func TestSharedSubtreeSurvivesOneParentRemoval(t *testing.T) {
	d, _, c2, sh := chainDAG(t)
	// sh has parents c1 and c2; removing (c2, sh) must keep sh (it is
	// still referenced — the paper's CS320 example).
	d.RemoveEdge(c2, sh)
	if removed := d.GarbageCollect(); len(removed) != 0 {
		t.Errorf("GC removed %v", removed)
	}
	if !d.Alive(sh) {
		t.Error("shared node removed while still referenced")
	}
}

func TestNodesOfTypeAndResurrection(t *testing.T) {
	d, c1, _, _ := chainDAG(t)
	if got := d.NodesOfType("C"); len(got) != 3 {
		t.Errorf("NodesOfType(C) = %v", got)
	}
	d.RemoveEdge(d.Root(), c1)
	d.RemoveNode(c1)
	if got := d.NodesOfType("C"); len(got) != 2 {
		t.Errorf("after remove NodesOfType(C) = %v", got)
	}
	// Re-adding the same identity resurrects the same id.
	c1b, created := d.AddNode("C", relational.Tuple{relational.Int(1)})
	if !created || c1b != c1 {
		t.Errorf("resurrection: id %d created=%v, want %d", c1b, created, c1)
	}
	if got := d.NodesOfType("C"); len(got) != 3 {
		t.Errorf("after resurrect NodesOfType(C) = %v", got)
	}
}

func TestEdgesGroupedByRelation(t *testing.T) {
	d, c1, _, _ := chainDAG(t)
	rels := d.Edges()
	if len(rels["db→C"]) != 1 || len(rels["C→C"]) != 3 {
		t.Errorf("Edges() = %v", rels)
	}
	e := Edge{d.Root(), c1}
	if d.EdgeRelationName(e) != "edge_db_C" {
		t.Errorf("EdgeRelationName = %s", d.EdgeRelationName(e))
	}
	if e.String() != "(0→1)" {
		t.Errorf("Edge.String = %s", e.String())
	}
}

func TestCheckAcyclic(t *testing.T) {
	d, c1, c2, _ := chainDAG(t)
	if err := d.CheckAcyclic(); err != nil {
		t.Fatal(err)
	}
	// Force a cycle c2 -> c1 (bypassing publishing discipline).
	d.children.setRow(c2, append(d.children.ownRow(c2, 1), c1))
	d.parents.setRow(c1, append(d.parents.ownRow(c1, 1), c2))
	if err := d.CheckAcyclic(); err == nil {
		t.Error("cycle not detected")
	}
}

func TestOccurrenceCountsAndTreeSize(t *testing.T) {
	d, c1, c2, sh := chainDAG(t)
	occ := d.OccurrenceCounts()
	if occ[d.Root()] != 1 || occ[c1] != 1 || occ[c2] != 1 {
		t.Errorf("occ = %v", occ)
	}
	if occ[sh] != 2 { // two paths: via c1 and via c1->c2
		t.Errorf("occ(shared) = %v", occ[sh])
	}
	if ts := d.TreeSize(); ts != 5 {
		t.Errorf("TreeSize = %v", ts)
	}
	if n := d.SharedNodeCount(); n != 1 {
		t.Errorf("SharedNodeCount = %d", n)
	}
}

func TestExponentialCompression(t *testing.T) {
	// A ladder of diamonds: tree size 2^k, DAG size 2k+1.
	d := New("db")
	prev := d.Root()
	k := 30
	for i := 0; i < k; i++ {
		l, _ := d.AddNode("L", relational.Tuple{relational.Int(int64(i))})
		r, _ := d.AddNode("R", relational.Tuple{relational.Int(int64(i))})
		bot, _ := d.AddNode("B", relational.Tuple{relational.Int(int64(i))})
		d.AddEdge(prev, l)
		d.AddEdge(prev, r)
		d.AddEdge(l, bot)
		d.AddEdge(r, bot)
		prev = bot
	}
	if d.NumNodes() != 3*k+1 {
		t.Fatalf("NumNodes = %d", d.NumNodes())
	}
	if ts := d.TreeSize(); ts < float64(int64(1)<<uint(k)) {
		t.Errorf("TreeSize = %v, want ≥ 2^%d", ts, k)
	}
}

func TestUnfold(t *testing.T) {
	d, _, _, sh := chainDAG(t)
	text := func(id NodeID) (string, bool) {
		if id == sh {
			return "leaf", true
		}
		return "", false
	}
	tree, err := d.Unfold(d.Root(), text, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Size() != 5 {
		t.Errorf("unfolded size = %d", tree.Size())
	}
	// The shared node appears twice in the tree, carrying its text.
	count := 0
	tree.Walk(func(n *xtree.Node) bool {
		if n.Text == "leaf" {
			count++
		}
		return true
	})
	if count != 2 {
		t.Errorf("shared node occurrences = %d", count)
	}
	if _, err := d.Unfold(d.Root(), text, 3); err == nil {
		t.Error("budget not enforced")
	}
}

func TestJournalRollbackRestoresState(t *testing.T) {
	d, c1, c2, sh := chainDAG(t)
	before := snapshot(d)
	d.Begin()
	if !d.InTxn() {
		t.Fatal("InTxn")
	}
	n, _ := d.AddNode("C", relational.Tuple{relational.Int(99)})
	d.AddEdge(c1, n)
	d.RemoveEdge(c2, sh)
	d.RemoveNode(c2)
	adds, eAdds, eDels := d.Changes()
	if len(adds) != 1 || len(eAdds) != 1 || len(eDels) == 0 {
		t.Errorf("Changes = %v %v %v", adds, eAdds, eDels)
	}
	d.Rollback()
	if got := snapshot(d); got != before {
		t.Errorf("rollback mismatch:\n got %s\nwant %s", got, before)
	}
	if d.Alive(n) {
		t.Error("added node still alive after rollback")
	}
}

func TestJournalCommitKeepsState(t *testing.T) {
	d, c1, _, _ := chainDAG(t)
	d.Begin()
	n, _ := d.AddNode("C", relational.Tuple{relational.Int(99)})
	d.AddEdge(c1, n)
	d.Commit()
	if !d.Alive(n) || !d.HasEdge(c1, n) {
		t.Error("commit lost changes")
	}
}

func TestJournalPanics(t *testing.T) {
	d := New("db")
	mustPanic(t, func() { d.Commit() })
	mustPanic(t, func() { d.Rollback() })
	mustPanic(t, func() { d.Changes() })
	d.Begin()
	mustPanic(t, func() { d.Begin() })
	d.Commit()
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fn()
}

// snapshot serializes live structure for equality checks.
func snapshot(d *DAG) string {
	out := ""
	for _, id := range d.Nodes() {
		out += d.Type(id) + d.Attr(id).Encode() + ":"
		out += fmt.Sprint(d.Children(id))
		out += ";"
	}
	return out
}

// Property: random mutate inside txn + rollback always restores the exact
// structure.
func TestJournalRollbackProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := New("db")
		var ids []NodeID
		ids = append(ids, d.Root())
		for i := 0; i < 15; i++ {
			id, _ := d.AddNode("N", relational.Tuple{relational.Int(int64(i))})
			d.AddEdge(ids[rng.Intn(len(ids))], id)
			ids = append(ids, id)
		}
		before := snapshot(d)
		d.Begin()
		for op := 0; op < 25; op++ {
			switch rng.Intn(4) {
			case 0:
				id, _ := d.AddNode("N", relational.Tuple{relational.Int(int64(100 + op))})
				d.AddEdge(ids[rng.Intn(len(ids))], id)
			case 1:
				u := ids[rng.Intn(len(ids))]
				v := ids[rng.Intn(len(ids))]
				if u < v && d.Alive(u) && d.Alive(v) { // keep acyclic: ids increase downward
					d.AddEdge(u, v)
				}
			case 2:
				u := ids[rng.Intn(len(ids))]
				if d.Alive(u) && len(d.Children(u)) > 0 {
					d.RemoveEdge(u, d.Children(u)[0])
				}
			case 3:
				u := ids[rng.Intn(len(ids))]
				if u != d.Root() && d.Alive(u) {
					d.RemoveNode(u)
				}
			}
		}
		d.Rollback()
		return snapshot(d) == before
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNodeAccessors(t *testing.T) {
	d, c1, _, _ := chainDAG(t)
	if d.Type(c1) != "C" {
		t.Error("Type")
	}
	if d.Attr(c1)[0].I != 1 {
		t.Error("Attr")
	}
	if d.Alive(InvalidNode) || d.Alive(NodeID(d.Cap())) {
		t.Error("Alive bounds")
	}
	if d.Cap() < d.NumNodes() {
		t.Error("Cap < NumNodes")
	}
}
