package reach

// Clone returns an independent, mutable copy of the topological order. The
// entry chunks are deep-copied; snapshot publication uses Seal instead,
// which shares untouched blocks and chunks and costs O(n/65536).
func (t *Topo) Clone() *Topo {
	c := &Topo{
		blocks: make([]*idBlock, len(t.blocks)),
		bEpoch: make([]uint64, len(t.blocks)),
		cEpoch: make([]uint64, len(t.cEpoch)),
		n:      t.n,
		chunks: t.chunks,
		pos:    append([]int32(nil), t.pos...),
		holes:  t.holes,
	}
	for bi := range t.blocks {
		nb := &idBlock{}
		for off, ch := range t.blocks[bi] {
			if ch != nil {
				cp := *ch
				nb[off] = &cp
			}
		}
		c.blocks[bi] = nb
	}
	return c
}

// Clone returns an independent epoch copy of the matrix, for snapshot
// publication: the serving layer reads the clone's rows while the writer
// keeps maintaining the original in place. All row words are copied into a
// single contiguous arena (two allocations total instead of 2n), and each
// cloned row is capacity-capped at its own length so any later growth of a
// clone reallocates instead of stomping its arena neighbor.
func (m *Matrix) Clone() *Matrix {
	words := 0
	for _, r := range m.anc {
		words += len(r)
	}
	for _, r := range m.desc {
		words += len(r)
	}
	arena := make(Row, words)
	clone := func(rows []Row) []Row {
		out := make([]Row, len(rows))
		for i, r := range rows {
			if len(r) == 0 {
				continue // nil and empty rows read identically (all zero)
			}
			n := copy(arena, r)
			out[i] = arena[0:n:n]
			arena = arena[n:]
		}
		return out
	}
	return &Matrix{
		anc:   clone(m.anc),
		desc:  clone(m.desc),
		pairs: m.pairs,
	}
}

// Clone returns an independent copy of both auxiliary structures — the unit
// of snapshot publication: one epoch of (L, M) frozen together.
func (ix *Index) Clone() *Index {
	return &Index{Topo: ix.Topo.Clone(), Matrix: ix.Matrix.Clone()}
}
