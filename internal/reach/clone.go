package reach

import "rxview/internal/dag"

// Clone returns an independent copy of the topological order.
func (t *Topo) Clone() *Topo {
	return &Topo{
		list:  append([]dag.NodeID(nil), t.list...),
		pos:   append([]int32(nil), t.pos...),
		holes: t.holes,
	}
}

// Clone returns an independent epoch copy of the matrix, for snapshot
// publication: the serving layer reads the clone's rows while the writer
// keeps maintaining the original in place. All row words are copied into a
// single contiguous arena (two allocations total instead of 2n), and each
// cloned row is capacity-capped at its own length so any later growth of a
// clone reallocates instead of stomping its arena neighbor.
func (m *Matrix) Clone() *Matrix {
	words := 0
	for _, r := range m.anc {
		words += len(r)
	}
	for _, r := range m.desc {
		words += len(r)
	}
	arena := make(Row, words)
	clone := func(rows []Row) []Row {
		out := make([]Row, len(rows))
		for i, r := range rows {
			if len(r) == 0 {
				continue // nil and empty rows read identically (all zero)
			}
			n := copy(arena, r)
			out[i] = arena[0:n:n]
			arena = arena[n:]
		}
		return out
	}
	return &Matrix{
		anc:   clone(m.anc),
		desc:  clone(m.desc),
		pairs: m.pairs,
	}
}

// Clone returns an independent copy of both auxiliary structures — the unit
// of snapshot publication: one epoch of (L, M) frozen together.
func (ix *Index) Clone() *Index {
	return &Index{Topo: ix.Topo.Clone(), Matrix: ix.Matrix.Clone()}
}
