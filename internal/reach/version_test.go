package reach

import (
	"fmt"
	"math/rand"
	"testing"

	"rxview/internal/dag"
	"rxview/internal/relational"
)

// TestTopoSealStability drives random DAG growth and shrinkage through the
// incremental maintenance path, sealing a TopoVersion at every step; every
// sealed version must keep rendering the exact node sequence it was sealed
// with, across later appends, tombstones, window rewrites (FixEdge) and
// compactions.
func TestTopoSealStability(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := dag.New("db")
	ix := BuildIndex(d)

	var live []dag.NodeID
	live = append(live, d.Root())

	type sealed struct {
		tv   *TopoVersion
		want string
	}
	var seals []sealed
	render := func(o Order) string { return fmt.Sprint(o.Nodes(), o.Len()) }

	for step := 0; step < 1200; step++ {
		if rng.Intn(3) > 0 || len(live) < 3 {
			// Insert a fresh node under a random live parent.
			id, created := d.AddNode("C", relational.Tuple{relational.Int(int64(step))})
			if !created {
				continue
			}
			p := live[rng.Intn(len(live))]
			d.AddEdge(p, id)
			ix.InsertUpdate(d, []dag.NodeID{id}, []dag.Edge{{Parent: p, Child: id}})
			live = append(live, id)
		} else {
			// Delete a random leaf-ward edge through the maintenance path,
			// which tombstones unreachable nodes (and eventually compacts).
			v := live[1+rng.Intn(len(live)-1)]
			ps := d.Parents(v)
			if len(ps) == 0 {
				continue
			}
			p := ps[rng.Intn(len(ps))]
			d.RemoveEdge(p, v)
			_, removed := ix.DeleteUpdate(d, []dag.NodeID{v}, []dag.Edge{{Parent: p, Child: v}})
			if len(removed) > 0 {
				dead := map[dag.NodeID]bool{}
				for _, r := range removed {
					dead[r] = true
				}
				keep := live[:0]
				for _, id := range live {
					if !dead[id] {
						keep = append(keep, id)
					}
				}
				live = keep
			}
		}
		if step%17 == 0 {
			tv := ix.Topo.Seal()
			seals = append(seals, sealed{tv: tv, want: render(tv)})
		}
	}
	if err := ix.Topo.Validate(d); err != nil {
		t.Fatal(err)
	}
	for i, s := range seals {
		if got := render(s.tv); got != s.want {
			t.Fatalf("sealed topo %d drifted:\nat seal: %s\nnow:     %s", i, s.want, got)
		}
	}
}

// TestTopoSealMatchesClone checks Seal and Clone agree at the same instant.
func TestTopoSealMatchesClone(t *testing.T) {
	d := dag.New("db")
	prev := d.Root()
	ix := BuildIndex(d)
	for i := 0; i < 700; i++ {
		id, _ := d.AddNode("C", relational.Tuple{relational.Int(int64(i))})
		d.AddEdge(prev, id)
		ix.InsertUpdate(d, []dag.NodeID{id}, []dag.Edge{{Parent: prev, Child: id}})
		prev = id
	}
	tv := ix.Topo.Seal()
	cl := ix.Topo.Clone()
	if fmt.Sprint(tv.Nodes()) != fmt.Sprint(cl.Nodes()) || tv.Len() != cl.Len() {
		t.Fatalf("seal and clone disagree: %d vs %d entries", tv.Len(), cl.Len())
	}
}
