package reach

import (
	"fmt"
	"sort"

	"rxview/internal/dag"
)

// Sparse is the relation representation of the reachability matrix M — the
// map-of-maps layout the paper describes (M stored as a relation
// M(anc, desc) because |M| ≪ n² in practice). It was the production
// representation before the bitset Matrix replaced it; it is kept as the
// differential-test oracle and the memory-bound ablation baseline: per-pair
// storage wins when the view is huge and shallow (|M| ≪ n²/64 pairs), the
// dense rows win everywhere word-level algebra pays, which is every
// maintenance and // evaluation path this system has.
type Sparse struct {
	anc   []map[dag.NodeID]struct{} // node -> its ancestors
	desc  []map[dag.NodeID]struct{} // node -> its descendants
	pairs int
}

// NewSparse returns an empty sparse matrix sized for the DAG.
func NewSparse(capacity int) *Sparse {
	return &Sparse{
		anc:  make([]map[dag.NodeID]struct{}, capacity),
		desc: make([]map[dag.NodeID]struct{}, capacity),
	}
}

func (s *Sparse) ensure(id dag.NodeID) {
	for int(id) >= len(s.anc) {
		s.anc = append(s.anc, nil)
		s.desc = append(s.desc, nil)
	}
}

// Size returns |M|, the number of (anc, desc) pairs.
func (s *Sparse) Size() int { return s.pairs }

// IsAncestor reports whether a is a proper ancestor of d.
func (s *Sparse) IsAncestor(a, d dag.NodeID) bool {
	if d < 0 || int(d) >= len(s.anc) || s.anc[d] == nil {
		return false
	}
	_, ok := s.anc[d][a]
	return ok
}

// Ancestors returns the ancestor set of d. The returned map is live; callers
// must not mutate it.
func (s *Sparse) Ancestors(d dag.NodeID) map[dag.NodeID]struct{} {
	if d < 0 || int(d) >= len(s.anc) {
		return nil
	}
	return s.anc[d]
}

// Descendants returns the descendant set of a. The returned map is live;
// callers must not mutate it.
func (s *Sparse) Descendants(a dag.NodeID) map[dag.NodeID]struct{} {
	if a < 0 || int(a) >= len(s.desc) {
		return nil
	}
	return s.desc[a]
}

// AncestorList returns the ancestors of d as a sorted slice.
func (s *Sparse) AncestorList(d dag.NodeID) []dag.NodeID {
	return sortedKeys(s.Ancestors(d))
}

func sortedKeys(set map[dag.NodeID]struct{}) []dag.NodeID {
	out := make([]dag.NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddPair records that a is an ancestor of d.
func (s *Sparse) AddPair(a, d dag.NodeID) {
	if a == d {
		return
	}
	s.ensure(a)
	s.ensure(d)
	if s.anc[d] == nil {
		s.anc[d] = make(map[dag.NodeID]struct{})
	}
	if _, dup := s.anc[d][a]; dup {
		return
	}
	s.anc[d][a] = struct{}{}
	if s.desc[a] == nil {
		s.desc[a] = make(map[dag.NodeID]struct{})
	}
	s.desc[a][d] = struct{}{}
	s.pairs++
}

// RemovePair deletes the (a, d) pair if present.
func (s *Sparse) RemovePair(a, d dag.NodeID) {
	if d < 0 || int(d) >= len(s.anc) || s.anc[d] == nil {
		return
	}
	if _, ok := s.anc[d][a]; !ok {
		return
	}
	delete(s.anc[d], a)
	delete(s.desc[a], d)
	s.pairs--
}

// DropNode removes every pair mentioning the node.
func (s *Sparse) DropNode(id dag.NodeID) {
	if id < 0 || int(id) >= len(s.anc) {
		return
	}
	for a := range s.anc[id] {
		delete(s.desc[a], id)
		s.pairs--
	}
	s.anc[id] = nil
	for d := range s.desc[id] {
		delete(s.anc[d], id)
		s.pairs--
	}
	s.desc[id] = nil
}

// InsertEdgeClosure adds the pairs ({u} ∪ anc(u)) × ({v} ∪ desc(v)) for a
// new edge (u,v) — the per-pair formulation the bitset Matrix replaced with
// row unions. Kept for the maintenance benchmarks.
func (s *Sparse) InsertEdgeClosure(u, v dag.NodeID) {
	s.ensure(u)
	s.ensure(v)
	ancs := append(sortedKeys(s.Ancestors(u)), u)
	descs := append(sortedKeys(s.Descendants(v)), v)
	for _, a := range ancs {
		for _, d := range descs {
			s.AddPair(a, d)
		}
	}
}

// ComputeSparseReach is Algorithm Reach (Fig.4) over the sparse
// representation: the same dynamic program along the backward topological
// order as the bitset Compute, with per-pair map inserts in place of row
// unions — exactly the pre-bitset production code path. Benchmarks compare
// it against Compute to isolate what the representation change alone buys
// (same algorithm, same precomputed L).
func ComputeSparseReach(d *dag.DAG, topo *Topo) *Sparse {
	s := NewSparse(d.Cap())
	list := topo.Nodes()
	for k := len(list) - 1; k >= 0; k-- { // backward: ancestors first
		node := list[k]
		for _, p := range d.Parents(node) {
			if !d.Alive(p) {
				continue
			}
			s.AddPair(p, node)
			for a := range s.Ancestors(p) {
				s.AddPair(a, node)
			}
		}
	}
	return s
}

// ComputeSparse builds the sparse matrix by a full DFS from every node —
// deliberately independent of the bitset code paths, so differential tests
// compare two implementations that share nothing but the DAG.
func ComputeSparse(d *dag.DAG) *Sparse {
	s := NewSparse(d.Cap())
	for _, src := range d.Nodes() {
		stack := []dag.NodeID{src}
		seen := map[dag.NodeID]bool{src: true}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, c := range d.Children(x) {
				if !seen[c] {
					seen[c] = true
					s.AddPair(src, c)
					stack = append(stack, c)
				}
			}
		}
	}
	return s
}

// EqualSparse reports whether the bitset matrix and a sparse matrix contain
// exactly the same pairs — both directions, so a desc-row regression in the
// bitset mirror fails the oracle even when the anc rows are intact.
func (m *Matrix) EqualSparse(s *Sparse) bool {
	if m.pairs != s.pairs {
		return false
	}
	for d := range m.anc {
		for a := range m.anc[d].All() {
			if !s.IsAncestor(a, dag.NodeID(d)) {
				return false
			}
		}
	}
	for a := range m.desc {
		row := m.desc[a]
		if row.Count() != len(s.Descendants(dag.NodeID(a))) {
			return false
		}
		for d := range row.All() {
			if _, ok := s.Descendants(dag.NodeID(a))[d]; !ok {
				return false
			}
		}
	}
	return true
}

// DiffSparse describes the first few pair differences against a sparse
// matrix, for test failure messages.
func (m *Matrix) DiffSparse(s *Sparse) string {
	var out []string
	limit := 8
	for d := range m.anc {
		for a := range m.anc[d].All() {
			if !s.IsAncestor(a, dag.NodeID(d)) && len(out) < limit {
				out = append(out, fmt.Sprintf("-(%d,%d)", a, dag.NodeID(d)))
			}
		}
	}
	for d := range s.anc {
		for a := range s.anc[d] {
			if !m.IsAncestor(a, dag.NodeID(d)) && len(out) < limit {
				out = append(out, fmt.Sprintf("+(%d,%d)", a, dag.NodeID(d)))
			}
		}
	}
	return fmt.Sprintf("pairs %d vs %d: %v", m.pairs, s.pairs, out)
}
