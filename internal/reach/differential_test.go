package reach

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rxview/internal/dag"
	"rxview/internal/relational"
)

// checkAgainstOracles validates the incrementally maintained index two ways:
// Index.Validate (L invariants + M against the bitset recompute) and a
// comparison with the sparse map-of-maps oracle built by an independent
// per-node DFS — the two representations share nothing but the DAG.
func checkAgainstOracles(t testing.TB, d *dag.DAG, ix *Index) error {
	t.Helper()
	if err := ix.Validate(d); err != nil {
		return err
	}
	sp := ComputeSparse(d)
	if !ix.Matrix.EqualSparse(sp) {
		return errMatrix("sparse oracle: " + ix.Matrix.DiffSparse(sp))
	}
	return nil
}

// TestMatrixMatchesSparseOracle drives one Index through randomized
// insert/delete/batch sequences and, after every mutation, checks the bitset
// matrix against both oracles. This is the differential test for the bitset
// representation: every word-level op (row unions in Flush, the masked
// subtract of RetainAncestors, DropNode mirroring) must leave exactly the
// pair set the sparse relation representation would hold.
func TestMatrixMatchesSparseOracle(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDAG(t, rng, 20, 15)
		ix := BuildIndex(d)
		if err := checkAgainstOracles(t, d, ix); err != nil {
			t.Logf("seed %d initial: %v", seed, err)
			return false
		}
		next := int64(10_000)
		var pending Pending
		batched := 0
		flush := func() {
			ix.Flush(&pending)
			batched = 0
		}
		for round := 0; round < 12; round++ {
			switch rng.Intn(3) {
			case 0: // delete a random live edge (flush first: deletes read M)
				flush()
				nodes := d.Nodes()
				var u, v dag.NodeID = -1, -1
				for _, cand := range rng.Perm(len(nodes)) {
					if ch := d.Children(nodes[cand]); len(ch) > 0 {
						u, v = nodes[cand], ch[rng.Intn(len(ch))]
						break
					}
				}
				if u < 0 {
					continue
				}
				d.RemoveEdge(u, v)
				ix.DeleteUpdate(d, []dag.NodeID{v}, []dag.Edge{{Parent: u, Child: v}})
			case 1: // eager insert of a small fresh chain
				flush()
				nodes := d.Nodes()
				target := nodes[rng.Intn(len(nodes))]
				id, _ := d.AddNode("N", relational.Tuple{relational.Int(next)})
				next++
				d.AddEdge(target, id)
				ix.InsertUpdate(d, []dag.NodeID{id}, []dag.Edge{{Parent: target, Child: id}})
			default: // deferred (batched) insert; flushed later
				nodes := d.Nodes()
				target := nodes[rng.Intn(len(nodes))]
				id, _ := d.AddNode("N", relational.Tuple{relational.Int(next)})
				next++
				d.AddEdge(target, id)
				ix.DeferInsertUpdate(d, []dag.NodeID{id},
					[]dag.Edge{{Parent: target, Child: id}}, &pending)
				batched++
				if batched < 3 && round < 11 {
					continue // let the batch accumulate; M is a subset until flushed
				}
				flush()
			}
			if err := checkAgainstOracles(t, d, ix); err != nil {
				t.Logf("seed %d round %d: %v", seed, round, err)
				return false
			}
		}
		flush()
		return checkAgainstOracles(t, d, ix) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestComputeMatchesSparse pins the from-scratch builders to the sparse DFS
// oracle on random DAGs (Compute's row unions and ComputeNaive's bitset DFS
// against per-pair map inserts).
func TestComputeMatchesSparse(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDAG(t, rng, 30, 25)
		sp := ComputeSparse(d)
		m := Compute(d, ComputeTopo(d))
		if !m.EqualSparse(sp) {
			t.Logf("seed %d Compute: %s", seed, m.DiffSparse(sp))
			return false
		}
		nv := ComputeNaive(d)
		if !nv.EqualSparse(sp) {
			t.Logf("seed %d ComputeNaive: %s", seed, nv.DiffSparse(sp))
			return false
		}
		dp := ComputeSparseReach(d, ComputeTopo(d))
		if !m.EqualSparse(dp) {
			t.Logf("seed %d ComputeSparseReach: %s", seed, m.DiffSparse(dp))
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRowOps(t *testing.T) {
	var r Row
	if r.Contains(0) || !r.Empty() || r.Count() != 0 {
		t.Error("nil row is not empty")
	}
	if !r.Set(5) || r.Set(5) {
		t.Error("Set idempotence")
	}
	r.Set(64)
	r.Set(200)
	if r.Count() != 3 || !r.Contains(200) || r.Contains(199) {
		t.Errorf("row = %v", r.Slice())
	}
	if got := r.Slice(); len(got) != 3 || got[0] != 5 || got[2] != 200 {
		t.Errorf("Slice = %v", got)
	}
	var o Row
	o.Set(5)
	o.Set(63)
	if added := r.Or(o); added != 1 || r.Count() != 4 {
		t.Errorf("Or added %d, count %d", added, r.Count())
	}
	if !r.AnyNotIn(o) {
		t.Error("AnyNotIn: 64 and 200 are outside o")
	}
	mask := r.Clone()
	if r.AnyNotIn(mask) {
		t.Error("AnyNotIn against itself")
	}
	if removed := r.AndNot(o); removed != 2 || r.Contains(5) || r.Contains(63) {
		t.Errorf("AndNot removed %d", removed)
	}
	if !r.Unset(64) || r.Unset(64) {
		t.Error("Unset idempotence")
	}
	if r.Contains(-1) {
		t.Error("negative id")
	}
	r.Reset()
	if !r.Empty() {
		t.Error("Reset")
	}
	// Rows of different lengths compare correctly.
	a, b := NewRow(64), NewRow(512)
	a.Set(3)
	b.Set(3)
	if !a.EqualRow(b) || !b.EqualRow(a) {
		t.Error("EqualRow across lengths")
	}
	b.Set(400)
	if a.EqualRow(b) {
		t.Error("EqualRow must see the extra bit")
	}
}

// TestLocalTopoDeepChain stresses the iterative post-order of localTopo on a
// pathologically deep inserted subtree — a 200k-node chain would overflow
// the goroutine stack budget long before the recursive version finished
// growing it at a few more orders of magnitude; the iterative walk is flat.
func TestLocalTopoDeepChain(t *testing.T) {
	const depth = 200_000
	d := dag.New("db")
	nodes := make([]dag.NodeID, depth)
	prev := d.Root()
	for i := 0; i < depth; i++ {
		id, _ := d.AddNode("N", relational.Tuple{relational.Int(int64(i))})
		nodes[i] = id
		d.AddEdge(prev, id)
		prev = id
	}
	// Parents-first input order maximizes the walk depth from the first
	// start node.
	order := localTopo(d, nodes)
	if len(order) != depth {
		t.Fatalf("localTopo covered %d of %d nodes", len(order), depth)
	}
	pos := make(map[dag.NodeID]int, depth)
	for i, id := range order {
		pos[id] = i
	}
	for i := 1; i < depth; i++ {
		if pos[nodes[i]] >= pos[nodes[i-1]] {
			t.Fatalf("children-first violated at %d", i)
		}
	}
}

// TestInsertUpdateDeepChain exercises the full ∆(M,L)insert path on a deep
// chain (localTopo + FixEdge + closure flush) and validates the result.
func TestInsertUpdateDeepChain(t *testing.T) {
	const depth = 2_000
	d := dag.New("db")
	ix := BuildIndex(d)
	nodes := make([]dag.NodeID, 0, depth)
	edges := make([]dag.Edge, 0, depth)
	prev := d.Root()
	for i := 0; i < depth; i++ {
		id, _ := d.AddNode("N", relational.Tuple{relational.Int(int64(i))})
		d.AddEdge(prev, id)
		nodes = append(nodes, id)
		edges = append(edges, dag.Edge{Parent: prev, Child: id})
		prev = id
	}
	ix.InsertUpdate(d, nodes, edges)
	if err := ix.Validate(d); err != nil {
		t.Fatal(err)
	}
	if got := ix.Matrix.DescendantCount(d.Root()); got != depth {
		t.Errorf("|desc(root)| = %d, want %d", got, depth)
	}
}
