package reach

import "rxview/internal/dag"

// Index bundles the two auxiliary structures that are maintained together —
// the paper maintains M and L "at once" because each update needs the other
// (§3.4: "we follow a hybrid approach by maintaining both auxiliary
// structures at once").
type Index struct {
	Topo   *Topo
	Matrix *Matrix
}

// BuildIndex computes L and M from scratch (used at publish time; Table 1's
// "recomputation" column re-runs exactly this).
func BuildIndex(d *dag.DAG) *Index {
	t := ComputeTopo(d)
	return &Index{Topo: t, Matrix: Compute(d, t)}
}

// Validate checks both structures against the DAG: L is a topological order
// covering the live nodes, and M equals the recomputed transitive closure.
func (ix *Index) Validate(d *dag.DAG) error {
	if err := ix.Topo.Validate(d); err != nil {
		return err
	}
	want := Compute(d, ix.Topo)
	if !ix.Matrix.Equal(want) {
		return errMatrix(ix.Matrix.Diff(want))
	}
	return nil
}

type errMatrix string

func (e errMatrix) Error() string { return "reach: matrix mismatch: " + string(e) }

// InsertUpdate is Algorithm ∆(M,L)insert (Fig.7): it maintains L and M after
// an insertion that added newNodes (the fresh nodes of the published subtree
// ST(A,t), in creation order) and newEdges (the subtree's internal edges plus
// the connection edges (u_i, r_A) for u_i ∈ r[[p]]).
//
// The implementation composes the paper's primitives:
//   - new nodes are appended to L in children-first order (their local
//     topological order L_A), then every inserted edge is repaired with
//     swap(L, u, v) — the alignment of Fig.7 lines 6..14;
//   - M gains, per inserted edge (u,v), the pairs
//     ({u} ∪ anc(u)) × ({v} ∪ desc(v)) — for a fresh subtree this is
//     exactly Reach on ST(A,t) plus the anc(r[[p]]) × N_A pairs of
//     Fig.7 lines 3..5.
//
// Edges must already be present in the DAG. It is the batched primitive
// applied eagerly: defer the closure half, then flush it immediately.
func (ix *Index) InsertUpdate(d *dag.DAG, newNodes []dag.NodeID, newEdges []dag.Edge) {
	var p Pending
	ix.DeferInsertUpdate(d, newNodes, newEdges, &p)
	ix.Flush(&p)
}

// localTopo orders the given nodes children-first using only edges among
// them (the order L_A of Fig.7 line 2).
func localTopo(d *dag.DAG, nodes []dag.NodeID) []dag.NodeID {
	in := make(map[dag.NodeID]bool, len(nodes))
	for _, id := range nodes {
		in[id] = true
	}
	state := make(map[dag.NodeID]int8, len(nodes))
	out := make([]dag.NodeID, 0, len(nodes))
	var visit func(id dag.NodeID)
	visit = func(id dag.NodeID) {
		if state[id] != 0 {
			return
		}
		state[id] = 1
		for _, c := range d.Children(id) {
			if in[c] {
				visit(c)
			}
		}
		state[id] = 2
		out = append(out, id) // post-order: children before parents
	}
	for _, id := range nodes {
		visit(id)
	}
	return out
}

// DeleteUpdate is Algorithm ∆(M,L)delete (Fig.8): given the deletion targets
// rp = r[[p]] and the already-removed parent-child edges ep = Ep(r), it
// repairs M, removes newly unreachable nodes from L and the DAG (the paper's
// keep(d) := false path), and returns ∆'V — the cascade of edges removed
// from the view because their parent node died — plus the garbage-collected
// nodes themselves.
//
// The traversal works on L_R = desc(r[[p]]) sorted by L and walked backwards
// (ancestors first), so each node's surviving parents have final ancestor
// sets when it is processed.
func (ix *Index) DeleteUpdate(d *dag.DAG, rp []dag.NodeID, ep []dag.Edge) (cascade []dag.Edge, removed []dag.NodeID) {
	m, topo := ix.Matrix, ix.Topo

	// L_R: descendants-or-self of the deletion targets, per the (stale,
	// hence superset) matrix — exactly the nodes that can lose ancestors.
	seen := make(map[dag.NodeID]bool)
	var lr []dag.NodeID
	add := func(id dag.NodeID) {
		if !seen[id] {
			seen[id] = true
			lr = append(lr, id)
		}
	}
	for _, v := range rp {
		add(v)
		for dd := range m.Descendants(v) {
			add(dd)
		}
	}
	topo.SortDescending(lr) // backward traversal: ancestors first

	keep := make(map[dag.NodeID]bool, len(lr))
	for _, id := range lr {
		keep[id] = true
	}
	root := d.Root()

	for _, n := range lr {
		if !keep[n] {
			continue // already processed as dead via cascade bookkeeping
		}
		// P_d: surviving parents (edges in ep are already gone from the
		// DAG; parents killed earlier in this traversal had their child
		// edges removed too, so Parents() is already clean — but guard via
		// keep anyway, matching Fig.8 line 7).
		var pd []dag.NodeID
		for _, p := range d.Parents(n) {
			if d.Alive(p) && keepOf(keep, p) {
				pd = append(pd, p)
			}
		}
		if n == root {
			continue // the root needs no parents
		}
		if len(pd) == 0 {
			// keep(d) := false — the node is unreachable: drop it from L,
			// cascade-delete its outgoing edges (∆'V), clear its M pairs.
			keep[n] = false
			topo.Delete(n)
			for _, c := range append([]dag.NodeID(nil), d.Children(n)...) {
				d.RemoveEdge(n, c)
				cascade = append(cascade, dag.Edge{Parent: n, Child: c})
			}
			d.RemoveNode(n)
			m.DropNode(n)
			removed = append(removed, n)
			continue
		}
		// A_d = ⋃_{a ∈ P_d} ({a} ∪ anc(a)); remove anc(d) \ A_d from M.
		ad := make(map[dag.NodeID]struct{})
		for _, p := range pd {
			ad[p] = struct{}{}
			for a := range m.Ancestors(p) {
				ad[a] = struct{}{}
			}
		}
		for _, a := range m.AncestorList(n) {
			if _, ok := ad[a]; !ok {
				m.RemovePair(a, n)
			}
		}
	}
	return cascade, removed
}

func keepOf(keep map[dag.NodeID]bool, id dag.NodeID) bool {
	v, ok := keep[id]
	return !ok || v // nodes outside L_R are untouched, hence kept
}
