package reach

import "rxview/internal/dag"

// Index bundles the two auxiliary structures that are maintained together —
// the paper maintains M and L "at once" because each update needs the other
// (§3.4: "we follow a hybrid approach by maintaining both auxiliary
// structures at once").
type Index struct {
	Topo   *Topo
	Matrix *Matrix
}

// BuildIndex computes L and M from scratch (used at publish time; Table 1's
// "recomputation" column re-runs exactly this).
func BuildIndex(d *dag.DAG) *Index {
	t := ComputeTopo(d)
	return &Index{Topo: t, Matrix: Compute(d, t)}
}

// Validate checks both structures against the DAG: L is a topological order
// covering the live nodes, and M equals the recomputed transitive closure.
func (ix *Index) Validate(d *dag.DAG) error {
	if err := ix.Topo.Validate(d); err != nil {
		return err
	}
	if err := ix.Matrix.ValidateMirror(); err != nil {
		return err // desc rows must be the exact transpose of anc rows
	}
	want := Compute(d, ix.Topo)
	if !ix.Matrix.Equal(want) {
		return errMatrix(ix.Matrix.Diff(want))
	}
	return nil
}

type errMatrix string

func (e errMatrix) Error() string { return "reach: matrix mismatch: " + string(e) }

// InsertUpdate is Algorithm ∆(M,L)insert (Fig.7): it maintains L and M after
// an insertion that added newNodes (the fresh nodes of the published subtree
// ST(A,t), in creation order) and newEdges (the subtree's internal edges plus
// the connection edges (u_i, r_A) for u_i ∈ r[[p]]).
//
// The implementation composes the paper's primitives:
//   - new nodes are appended to L in children-first order (their local
//     topological order L_A), then every inserted edge is repaired with
//     swap(L, u, v) — the alignment of Fig.7 lines 6..14;
//   - M gains, per inserted edge (u,v), the pairs
//     ({u} ∪ anc(u)) × ({v} ∪ desc(v)) as row unions — for a fresh subtree
//     this is exactly Reach on ST(A,t) plus the anc(r[[p]]) × N_A pairs of
//     Fig.7 lines 3..5.
//
// Edges must already be present in the DAG. It is the batched primitive
// applied eagerly: defer the closure half, then flush it immediately.
func (ix *Index) InsertUpdate(d *dag.DAG, newNodes []dag.NodeID, newEdges []dag.Edge) {
	var p Pending
	ix.DeferInsertUpdate(d, newNodes, newEdges, &p)
	ix.Flush(&p)
}

// localTopo orders the given nodes children-first using only edges among
// them (the order L_A of Fig.7 line 2). The post-order DFS is iterative: the
// inserted subtree can be pathologically deep (a published chain), and a
// recursive walk would grow the goroutine stack with it.
func localTopo(d *dag.DAG, nodes []dag.NodeID) []dag.NodeID {
	in := make(map[dag.NodeID]bool, len(nodes))
	for _, id := range nodes {
		in[id] = true
	}
	const (
		visiting int8 = 1
		done     int8 = 2
	)
	state := make(map[dag.NodeID]int8, len(nodes))
	out := make([]dag.NodeID, 0, len(nodes))
	// Each frame revisits a node twice: first to push its children, then —
	// once they are all done — to emit it (post-order).
	type frame struct {
		id       dag.NodeID
		expanded bool
	}
	var stack []frame
	for _, start := range nodes {
		if state[start] != 0 {
			continue
		}
		stack = append(stack[:0], frame{id: start})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.expanded {
				if state[f.id] != done {
					state[f.id] = done
					out = append(out, f.id) // post-order: children before parents
				}
				stack = stack[:len(stack)-1]
				continue
			}
			f.expanded = true
			if state[f.id] != 0 {
				stack = stack[:len(stack)-1]
				continue
			}
			state[f.id] = visiting
			for _, c := range d.Children(f.id) {
				if in[c] && state[c] == 0 {
					stack = append(stack, frame{id: c})
				}
			}
		}
	}
	return out
}

// DeleteEdgeUpdate repairs M after the removal of one DAG edge that has
// already been applied to d — the replication replay primitive. It is
// ∆(M,L)delete's row algebra restricted to a single edge and stripped of
// garbage collection: a replayed journal carries cascade edge removals and
// node deaths as their own explicit ops, so repairing them here too would
// apply them twice. A node left without live parents simply has its
// ancestor row cleared; the ops that remove it follow in the journal.
func (ix *Index) DeleteEdgeUpdate(d *dag.DAG, e dag.Edge) {
	m, topo := ix.Matrix, ix.Topo

	// Only descendants-or-self of the child can lose ancestors; the stale
	// matrix row is a superset of the true set, which is all the traversal
	// needs.
	affRow := NewRow(d.Cap())
	affRow.Set(e.Child)
	affRow.Or(m.DescendantRow(e.Child))
	aff := affRow.Slice()
	topo.SortDescending(aff) // ancestors first: parents are final when read

	ad := NewRow(d.Cap())
	root := d.Root()
	for _, n := range aff {
		if n == root || !d.Alive(n) {
			continue
		}
		ad.Reset()
		for _, p := range d.Parents(n) {
			if d.Alive(p) {
				ad.Set(p)
				ad.Or(m.AncestorRow(p))
			}
		}
		m.RetainAncestors(n, ad)
	}
}

// DeleteUpdate is Algorithm ∆(M,L)delete (Fig.8): given the deletion targets
// rp = r[[p]] and the already-removed parent-child edges ep = Ep(r), it
// repairs M, removes newly unreachable nodes from L and the DAG (the paper's
// keep(d) := false path), and returns ∆'V — the cascade of edges removed
// from the view because their parent node died — plus the garbage-collected
// nodes themselves.
//
// The traversal works on L_R = desc(r[[p]]) sorted by L and walked backwards
// (ancestors first), so each node's surviving parents have final ancestor
// rows when it is processed. A_d and the anc(d) \ A_d subtraction are pure
// row algebra: one union over the surviving parents' rows, one masked
// subtract with mirrored descendant clearing.
func (ix *Index) DeleteUpdate(d *dag.DAG, rp []dag.NodeID, ep []dag.Edge) (cascade []dag.Edge, removed []dag.NodeID) {
	m, topo := ix.Matrix, ix.Topo

	// L_R: descendants-or-self of the deletion targets, per the (stale,
	// hence superset) matrix — exactly the nodes that can lose ancestors.
	lrRow := NewRow(d.Cap())
	for _, v := range rp {
		lrRow.Set(v)
		lrRow.Or(m.DescendantRow(v))
	}
	lr := lrRow.Slice()
	topo.SortDescending(lr) // backward traversal: ancestors first

	var dead Row // within L_R: nodes already garbage-collected this pass
	ad := NewRow(d.Cap())
	root := d.Root()

	for _, n := range lr {
		if dead.Contains(n) {
			continue // already processed as dead via cascade bookkeeping
		}
		// P_d: surviving parents (edges in ep are already gone from the
		// DAG; parents killed earlier in this traversal had their child
		// edges removed too, so Parents() is already clean — but guard via
		// dead anyway, matching Fig.8 line 7).
		var pd []dag.NodeID
		for _, p := range d.Parents(n) {
			if d.Alive(p) && !dead.Contains(p) {
				pd = append(pd, p)
			}
		}
		if n == root {
			continue // the root needs no parents
		}
		if len(pd) == 0 {
			// keep(d) := false — the node is unreachable: drop it from L,
			// cascade-delete its outgoing edges (∆'V), clear its M rows.
			dead.Set(n)
			topo.Delete(n)
			for _, c := range append([]dag.NodeID(nil), d.Children(n)...) {
				d.RemoveEdge(n, c)
				cascade = append(cascade, dag.Edge{Parent: n, Child: c})
			}
			d.RemoveNode(n)
			m.DropNode(n)
			removed = append(removed, n)
			continue
		}
		// A_d = ⋃_{a ∈ P_d} ({a} ∪ anc(a)); remove anc(d) \ A_d from M.
		ad.Reset()
		for _, p := range pd {
			ad.Set(p)
			ad.Or(m.AncestorRow(p))
		}
		m.RetainAncestors(n, ad)
	}
	return cascade, removed
}
