package reach

import (
	"testing"

	"rxview/internal/dag"
	"rxview/internal/relational"
)

func intTuple(n int) relational.Tuple {
	return relational.Tuple{relational.Int(int64(n))}
}

// buildCloneFixture publishes a small diamond-with-tail DAG and its index.
func buildCloneFixture(t *testing.T) (*dag.DAG, *Index) {
	t.Helper()
	d := dag.New("r")
	var ids []dag.NodeID
	for i := 0; i < 6; i++ {
		id, _ := d.AddNode("n", intTuple(i))
		ids = append(ids, id)
	}
	edges := [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}}
	d.AddEdge(d.Root(), ids[0])
	for _, e := range edges {
		d.AddEdge(ids[e[0]], ids[e[1]])
	}
	return d, BuildIndex(d)
}

// TestMatrixCloneIndependence checks that the epoch clone equals the
// original at clone time and that neither side's later mutations reach the
// other — including row growth on the clone, which must reallocate instead
// of overwriting its arena neighbors.
func TestMatrixCloneIndependence(t *testing.T) {
	d, ix := buildCloneFixture(t)
	snap := ix.Matrix.Clone()
	if !snap.Equal(ix.Matrix) {
		t.Fatalf("clone differs from original: %s", snap.Diff(ix.Matrix))
	}
	if err := snap.ValidateMirror(); err != nil {
		t.Fatal(err)
	}

	// Mutate the original through the real maintenance primitive.
	u, _ := d.AddNode("n", intTuple(100))
	d.AddEdge(d.Root(), u)
	ix.Matrix.ensure(u)
	ix.Matrix.InsertEdgeClosure(d.Root(), u)
	if snap.IsAncestor(d.Root(), u) {
		t.Error("clone observes a pair added to the original after cloning")
	}

	// Grow a clone row far past its arena slot; the words of the next row in
	// the arena must stay intact.
	before := snap.AncestorRow(5).Clone()
	snap.AddPair(dag.NodeID(400), 4) // forces anc(4) to grow well past its cap
	if !snap.AncestorRow(5).EqualRow(before) {
		t.Error("growing one cloned row corrupted its arena neighbor")
	}
	if ix.Matrix.IsAncestor(dag.NodeID(400), 4) {
		t.Error("mutating the clone leaked into the original")
	}
}

// TestTopoCloneIndependence checks the same property for L.
func TestTopoCloneIndependence(t *testing.T) {
	d, ix := buildCloneFixture(t)
	snap := ix.Topo.Clone()
	want := snap.Nodes()

	victim := want[0]
	ix.Topo.Delete(victim)
	if !snap.Contains(victim) {
		t.Error("deleting from the original removed the node from the clone")
	}
	if err := snap.Validate(d.Clone()); err == nil {
		// The original DAG still holds every node; validating the clone
		// against a DAG copy from before any node removal must pass.
	} else {
		t.Errorf("cloned order no longer validates: %v", err)
	}
	got := snap.Nodes()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("clone order changed at %d: %v vs %v", i, got, want)
		}
	}
}

// TestIndexCloneValidates checks the composite clone against a fresh
// recomputation on a cloned DAG.
func TestIndexCloneValidates(t *testing.T) {
	d, ix := buildCloneFixture(t)
	frozen := d.Clone()
	snap := ix.Clone()

	// Keep writing to the original: the frozen pair must stay exact.
	u, _ := d.AddNode("n", intTuple(200))
	d.AddEdge(d.Root(), u)
	ix.InsertUpdate(d, []dag.NodeID{u}, []dag.Edge{{Parent: d.Root(), Child: u}})

	if err := snap.Validate(frozen); err != nil {
		t.Errorf("cloned index no longer exact for its epoch: %v", err)
	}
	if err := ix.Validate(d); err != nil {
		t.Errorf("original index broken after cloning: %v", err)
	}
}
