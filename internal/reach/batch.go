package reach

import "rxview/internal/dag"

// Pending accumulates the matrix half of ∆(M,L)insert across a batch of
// insertions so it can be flushed in one pass. The topological order L is
// always maintained eagerly (XPath evaluation between the updates of a batch
// iterates L), but the transitive-closure pairs a new edge contributes to M
// can be deferred: while they are pending, M is a subset of the true closure,
// which no phase of insert processing reads. Deletions do read M (∆(M,L)delete
// walks desc(r[[p]]) through it and requires a superset), so a batch must
// Flush before processing a deletion.
type Pending struct {
	edges []dag.Edge
}

// Len reports the number of edges whose closure contribution is pending.
func (p *Pending) Len() int { return len(p.edges) }

// DeferInsertUpdate is ∆(M,L)insert (Fig.7) with the closure half postponed:
// it appends the fresh nodes of ST(A,t) to L in children-first order, repairs
// L for every inserted edge (swap alignment, Fig.7 lines 6..14), and queues
// the edges on p instead of updating M. A later Flush completes the
// maintenance.
func (ix *Index) DeferInsertUpdate(d *dag.DAG, newNodes []dag.NodeID, newEdges []dag.Edge, p *Pending) {
	la := localTopo(d, newNodes)
	for _, id := range la {
		ix.Topo.Append(id)
		ix.Matrix.ensure(id)
	}
	for _, e := range newEdges {
		ix.Topo.FixEdge(d, e.Parent, e.Child)
	}
	p.edges = append(p.edges, newEdges...)
}

// Flush applies the deferred closure updates for every pending edge and
// empties p.
//
// Correctness of reordering: with M = closure(G) and an edge (u,v) of the
// final (acyclic) DAG, the pairs the edge contributes are exactly
// ({u} ∪ anc(u)) × ({v} ∪ desc(v)) computed from M — a path through (u,v)
// cannot occur inside anc(u) or desc(v) without creating a cycle. Applying
// the pending edges one at a time therefore keeps M equal to the closure of
// the "already-flushed graph", and the final M is the closure of the full
// DAG regardless of the order the edges are processed in.
//
// The sparse representation exploited that freedom by grouping edges per
// parent to share one sorted ancestor list; with bitset rows the outer
// product is |anc(u)| + |desc(v)| row unions (InsertEdgeClosure) with no
// sorting or per-pair inserts at all, so the edges are simply applied in
// arrival order.
func (ix *Index) Flush(p *Pending) {
	if len(p.edges) == 0 {
		return
	}
	edges := p.edges
	p.edges = nil
	m := ix.Matrix
	for _, e := range edges {
		m.InsertEdgeClosure(e.Parent, e.Child)
	}
}
