package reach

import (
	"iter"
	"math/bits"

	"rxview/internal/dag"
)

// Row is a dense bitset over NodeIDs: bit i of word i/64 is set when node i
// is in the set. Rows are the storage unit of the reachability matrix M —
// one ancestor row and one descendant row per node — and the working sets of
// the maintenance and evaluation algorithms, which combine them with
// word-level union/subtract instead of per-pair map operations.
//
// A Row is truncated: it only holds words up to the highest one it has ever
// needed, and mutating methods grow it on demand. Absent words read as zero,
// so rows of different lengths compare and combine correctly.
type Row []uint64

// NewRow returns an empty row pre-sized for node ids < capacity.
func NewRow(capacity int) Row { return make(Row, (capacity+63)/64) }

// Contains reports whether the node is in the set.
func (r Row) Contains(id dag.NodeID) bool {
	w := int(id) >> 6
	return id >= 0 && w < len(r) && r[w]&(1<<(uint(id)&63)) != 0
}

func (r *Row) grow(words int) {
	if words > len(*r) {
		nr := make(Row, words)
		copy(nr, *r)
		*r = nr
	}
}

// Set adds the node and reports whether it was absent.
func (r *Row) Set(id dag.NodeID) bool {
	w, b := int(id)>>6, uint64(1)<<(uint(id)&63)
	r.grow(w + 1)
	if (*r)[w]&b != 0 {
		return false
	}
	(*r)[w] |= b
	return true
}

// Unset removes the node and reports whether it was present.
func (r *Row) Unset(id dag.NodeID) bool {
	w, b := int(id)>>6, uint64(1)<<(uint(id)&63)
	if w >= len(*r) || (*r)[w]&b == 0 {
		return false
	}
	(*r)[w] &^= b
	return true
}

// Or unions src into r word by word and returns the number of newly set
// bits.
func (r *Row) Or(src Row) int {
	n := len(src)
	for n > 0 && src[n-1] == 0 {
		n--
	}
	r.grow(n)
	added := 0
	dst := *r
	for i := 0; i < n; i++ {
		if nw := src[i] &^ dst[i]; nw != 0 {
			added += bits.OnesCount64(nw)
			dst[i] |= nw
		}
	}
	return added
}

// AndNot subtracts src from r word by word and returns the number of cleared
// bits.
func (r *Row) AndNot(src Row) int {
	dst := *r
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	removed := 0
	for i := 0; i < n; i++ {
		if rm := dst[i] & src[i]; rm != 0 {
			removed += bits.OnesCount64(rm)
			dst[i] &^= rm
		}
	}
	return removed
}

// Count returns the number of set bits (population count).
func (r Row) Count() int {
	n := 0
	for _, w := range r {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether no bit is set.
func (r Row) Empty() bool {
	for _, w := range r {
		if w != 0 {
			return false
		}
	}
	return true
}

// AnyNotIn reports whether r has a bit outside mask — one pass of
// word-level subtract with early exit, no iteration over members.
func (r Row) AnyNotIn(mask Row) bool {
	for i, w := range r {
		if w == 0 {
			continue
		}
		var m uint64
		if i < len(mask) {
			m = mask[i]
		}
		if w&^m != 0 {
			return true
		}
	}
	return false
}

// All iterates the members in ascending id order.
func (r Row) All() iter.Seq[dag.NodeID] {
	return func(yield func(dag.NodeID) bool) {
		for i, w := range r {
			for w != 0 {
				id := dag.NodeID(i<<6 + bits.TrailingZeros64(w))
				if !yield(id) {
					return
				}
				w &= w - 1
			}
		}
	}
}

// Slice returns the members as a sorted slice.
func (r Row) Slice() []dag.NodeID {
	out := make([]dag.NodeID, 0, r.Count())
	for id := range r.All() {
		out = append(out, id)
	}
	return out
}

// Reset clears every bit, keeping the allocation.
func (r Row) Reset() {
	for i := range r {
		r[i] = 0
	}
}

// Clone returns an independent copy.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// EqualRow reports whether two rows hold the same set, ignoring trailing
// zero words.
func (r Row) EqualRow(o Row) bool {
	n := len(r)
	if len(o) > n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(r) {
			a = r[i]
		}
		if i < len(o) {
			b = o[i]
		}
		if a != b {
			return false
		}
	}
	return true
}
