// Package reach implements the auxiliary structures of §3.1 of the paper —
// the topological order L and the reachability matrix M — plus Algorithm
// Reach (Fig.4) and the incremental maintenance algorithms ∆(M,L)insert and
// ∆(M,L)delete of §3.4 (Figs.7–8).
//
// Order convention (§3.1): "u precedes v in L only if u is not an ancestor of
// v". Descendants therefore come first; for every edge (parent u → child v),
// pos(v) < pos(u). Algorithm Reach walks L backwards (ancestors first), and
// the bottom-up XPath pass walks it forwards (children first).
package reach

import (
	"fmt"
	"sort"

	"rxview/internal/dag"
)

// Order is the read surface a query evaluator needs from the topological
// order: the live Topo and a sealed TopoVersion both provide it.
type Order interface {
	// Nodes returns the live entries in order (descendants first).
	Nodes() []dag.NodeID
	// Len returns the number of live entries.
	Len() int
}

var (
	_ Order = (*Topo)(nil)
	_ Order = (*TopoVersion)(nil)
)

// idChunk holds one chunk of the order's entry list; idBlock one spine
// block of chunk pointers (mirroring the dag package's two-level
// copy-on-write layout, so sealing copies only the top-level block list).
type (
	idChunk [chunkSize]dag.NodeID
	idBlock [blockSize]*idChunk
)

const (
	chunkBits = 8
	chunkSize = 1 << chunkBits
	chunkMask = chunkSize - 1
	blockBits = 8
	blockSize = 1 << blockBits
	blockMask = blockSize - 1
	rowBlock  = chunkBits + blockBits
)

// Topo is the topological order L over the live nodes of a DAG. Deletions
// leave tombstones that are compacted once they outnumber live entries;
// positions only ever shrink relative to each other during compaction, so
// callers must compare positions, not store them across mutations.
//
// The entry list is stored copy-on-write in fixed-size chunks behind a
// two-level spine: Seal freezes the current order into an immutable
// TopoVersion by copying only the top-level block list (n/65536 words),
// sharing every block and chunk the writer has not touched since the
// previous seal — the unchanged prefix (and any unchanged interior run)
// of L is shared between versions instead of copied. The pos index is
// writer-private and never sealed; sealed readers only iterate.
type Topo struct {
	blocks  []*idBlock
	bEpoch  []uint64 // per block: epoch its pointer was installed at
	cEpoch  []uint64 // per chunk: epoch its pointer was installed at
	epoch   uint64   // bumped by Seal; anything older is shared
	n       int      // entries, tombstones included
	chunks  int      // chunk slots ever allocated (n can shrink; this not)
	sealedN int      // max n ever sealed: slots below it may have readers
	pos     []int32  // node id -> index into the list; -1 when absent
	holes   int
}

// at returns entry i of the list.
func (t *Topo) at(i int) dag.NodeID {
	return t.blocks[i>>rowBlock][(i>>chunkBits)&blockMask][i&chunkMask]
}

// set overwrites entry i, copying the chunk (and its spine block) if a
// sealed version may still reference them.
//
// xviewlint:cow-primitive
func (t *Topo) set(i int, v dag.NodeID) {
	ci := i >> chunkBits
	bi := ci >> blockBits
	if t.bEpoch[bi] != t.epoch {
		cp := *t.blocks[bi]
		t.blocks[bi] = &cp
		t.bEpoch[bi] = t.epoch
	}
	b := t.blocks[bi]
	if t.cEpoch[ci] != t.epoch {
		cp := *b[ci&blockMask]
		b[ci&blockMask] = &cp
		t.cEpoch[ci] = t.epoch
	}
	b[ci&blockMask][i&chunkMask] = v
}

// push appends an entry. A fresh slot below sealedN can be visible to a
// sealed reader (compaction shrank the list since that seal), so it goes
// through the copy-on-write set; slots beyond every sealed length are
// written directly.
//
// xviewlint:cow-primitive
func (t *Topo) push(v dag.NodeID) {
	ci := t.n >> chunkBits
	if ci == t.chunks {
		if bi := ci >> blockBits; bi == len(t.blocks) {
			t.blocks = append(t.blocks, &idBlock{})
			t.bEpoch = append(t.bEpoch, t.epoch)
		}
		t.blocks[ci>>blockBits][ci&blockMask] = &idChunk{}
		t.cEpoch = append(t.cEpoch, t.epoch)
		t.chunks++
	}
	if t.n < t.sealedN {
		t.set(t.n, v)
	} else {
		t.blocks[ci>>blockBits][ci&blockMask][t.n&chunkMask] = v
	}
	t.n++
}

// ComputeTopo builds L for the DAG with Kahn's algorithm over reversed edges
// (leaves first), which directly yields the children-first order.
func ComputeTopo(d *dag.DAG) *Topo {
	t := &Topo{pos: make([]int32, d.Cap())}
	for i := range t.pos {
		t.pos[i] = -1
	}
	outdeg := make([]int32, d.Cap())
	var queue []dag.NodeID
	for _, id := range d.Nodes() {
		n := int32(len(d.Children(id)))
		outdeg[id] = n
		if n == 0 {
			queue = append(queue, id)
		}
	}
	sort.Slice(queue, func(i, j int) bool { return queue[i] < queue[j] })
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		t.pos[id] = int32(t.n)
		t.push(id)
		for _, p := range d.Parents(id) {
			outdeg[p]--
			if outdeg[p] == 0 {
				queue = append(queue, p)
			}
		}
	}
	if t.n != d.NumNodes() {
		// Impossible for acyclic input; surface loudly rather than return a
		// partial order.
		panic(fmt.Sprintf("reach: topological sort covered %d of %d nodes (cycle?)",
			t.n, d.NumNodes()))
	}
	return t
}

// RestoreTopo rebuilds a Topo from a serialized order (live entries,
// descendants first, as returned by Nodes) — the checkpoint-reload path.
// The restored order is tombstone-free; it validates against the DAG the
// order was serialized from.
func RestoreTopo(order []dag.NodeID) *Topo {
	t := &Topo{}
	maxID := dag.InvalidNode
	for _, id := range order {
		if id > maxID {
			maxID = id
		}
	}
	t.pos = make([]int32, int(maxID)+1)
	for i := range t.pos {
		t.pos[i] = -1
	}
	for _, id := range order {
		t.pos[id] = int32(t.n)
		t.push(id)
	}
	return t
}

// Len returns the number of live entries.
func (t *Topo) Len() int { return t.n - t.holes }

// Pos returns the position of a node, or -1 if absent. Positions order nodes
// (smaller = closer to the leaves); absolute values are meaningless.
func (t *Topo) Pos(id dag.NodeID) int32 {
	if int(id) >= len(t.pos) || id < 0 {
		return -1
	}
	return t.pos[id]
}

// Contains reports whether the node is in L.
func (t *Topo) Contains(id dag.NodeID) bool { return t.Pos(id) >= 0 }

// Nodes returns the live entries in order (descendants first).
func (t *Topo) Nodes() []dag.NodeID {
	out := make([]dag.NodeID, 0, t.Len())
	for i := 0; i < t.n; i++ {
		if id := t.at(i); id != dag.InvalidNode {
			out = append(out, id)
		}
	}
	return out
}

func (t *Topo) ensure(id dag.NodeID) {
	for int(id) >= len(t.pos) {
		t.pos = append(t.pos, -1)
	}
}

// Append places a (new) node at the end of L — the ancestor-most position,
// which is always safe for a node with no parents yet. Edge insertions then
// repair any violated constraints via FixEdge.
func (t *Topo) Append(id dag.NodeID) {
	t.ensure(id)
	if t.pos[id] >= 0 {
		return
	}
	t.pos[id] = int32(t.n)
	t.push(id)
}

// Delete tombstones a node. Per §3.4, "an element removal does not affect the
// topological order of the rest of its elements".
func (t *Topo) Delete(id dag.NodeID) {
	if !t.Contains(id) {
		return
	}
	t.set(int(t.pos[id]), dag.InvalidNode)
	t.pos[id] = -1
	t.holes++
	if t.holes > 64 && t.holes*2 > t.n {
		t.compact()
	}
}

func (t *Topo) compact() {
	w := 0
	for i := 0; i < t.n; i++ {
		if id := t.at(i); id != dag.InvalidNode {
			if w != i {
				t.pos[id] = int32(w)
				t.set(w, id)
			}
			w++
		}
	}
	t.n = w
	t.holes = 0
}

// FixEdge restores the order after inserting edge (u,v) into d: if v already
// precedes u nothing changes; otherwise the nodes of L[u:v] that are
// descendants-or-self of v are moved immediately in front of u — the
// procedure swap(L, u, v) of §3.4. The move preserves the relative order of
// both groups, which keeps every previously valid constraint valid.
func (t *Topo) FixEdge(d *dag.DAG, u, v dag.NodeID) {
	pu, pv := t.pos[u], t.pos[v]
	if pv < pu {
		return
	}
	lo, hi := pu, pv
	// Mark descendants-or-self of v that sit inside the window. The mark and
	// visited sets are bitset rows — FixEdge runs once per inserted edge, so
	// this walk is on the maintenance hot path.
	inWindow := func(id dag.NodeID) bool {
		p := t.pos[id]
		return p >= lo && p <= hi
	}
	var mark, seen Row
	stack := []dag.NodeID{v}
	seen.Set(v)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if inWindow(x) {
			mark.Set(x)
		}
		for _, c := range d.Children(x) {
			if seen.Set(c) {
				stack = append(stack, c)
			}
		}
	}
	// Rebuild the window: descendants of v first (in relative order), then
	// the rest (starting with u). Tombstones ride along with the rest.
	segment := make([]dag.NodeID, 0, hi-lo+1)
	var descs, others []dag.NodeID
	for i := lo; i <= hi; i++ {
		id := t.at(int(i))
		if id != dag.InvalidNode && mark.Contains(id) {
			descs = append(descs, id)
		} else {
			others = append(others, id)
		}
	}
	segment = append(segment, descs...)
	segment = append(segment, others...)
	for i, id := range segment {
		t.set(int(lo)+i, id)
		if id != dag.InvalidNode {
			t.pos[id] = lo + int32(i)
		}
	}
}

// Seal freezes the current order into an immutable TopoVersion in
// O(n/65536): only the top-level block list is copied; every block and
// chunk the writer did not touch since the previous seal is shared with
// it.
func (t *Topo) Seal() *TopoVersion {
	t.epoch++
	if t.n > t.sealedN {
		t.sealedN = t.n
	}
	return &TopoVersion{
		blocks: append([]*idBlock(nil), t.blocks...),
		n:      t.n,
		holes:  t.holes,
	}
}

// TopoVersion is an immutable snapshot of a topological order, sealed by
// Topo.Seal. Safe for concurrent use by any number of goroutines.
type TopoVersion struct {
	blocks []*idBlock
	n      int
	holes  int
}

// Len returns the number of live entries at the sealed epoch.
func (tv *TopoVersion) Len() int { return tv.n - tv.holes }

// Nodes returns the live entries in order (descendants first).
func (tv *TopoVersion) Nodes() []dag.NodeID {
	out := make([]dag.NodeID, 0, tv.Len())
	for i := 0; i < tv.n; i++ {
		if id := tv.blocks[i>>rowBlock][(i>>chunkBits)&blockMask][i&chunkMask]; id != dag.InvalidNode {
			out = append(out, id)
		}
	}
	return out
}

// Validate checks the order invariant against the DAG: every live node is
// present exactly once and every edge satisfies pos(child) < pos(parent).
func (t *Topo) Validate(d *dag.DAG) error {
	count := 0
	for i := 0; i < t.n; i++ {
		id := t.at(i)
		if id == dag.InvalidNode {
			continue
		}
		count++
		if t.pos[id] != int32(i) {
			return fmt.Errorf("reach: pos[%d]=%d but found at %d", id, t.pos[id], i)
		}
		if !d.Alive(id) {
			return fmt.Errorf("reach: dead node %d in L", id)
		}
	}
	if count != d.NumNodes() {
		return fmt.Errorf("reach: L has %d entries, DAG has %d nodes", count, d.NumNodes())
	}
	for _, u := range d.Nodes() {
		for _, v := range d.Children(u) {
			if t.pos[v] >= t.pos[u] {
				return fmt.Errorf("reach: edge (%d→%d) violates order: pos %d ≥ %d",
					u, v, t.pos[v], t.pos[u])
			}
		}
	}
	return nil
}

// SortDescending orders ids by position, ancestors first (the backward
// traversal order of Algorithm ∆(M,L)delete).
func (t *Topo) SortDescending(ids []dag.NodeID) {
	sort.Slice(ids, func(i, j int) bool { return t.pos[ids[i]] > t.pos[ids[j]] })
}

// SortAscending orders ids by position, descendants first.
func (t *Topo) SortAscending(ids []dag.NodeID) {
	sort.Slice(ids, func(i, j int) bool { return t.pos[ids[i]] < t.pos[ids[j]] })
}
