package reach

import (
	"fmt"
	"sort"

	"rxview/internal/dag"
)

// Matrix is the reachability matrix M of §3.1. Conceptually an n×n bit
// matrix, it is stored sparsely — the paper stores it as a relation
// M(anc, desc) because |M| ≪ n² in practice. Both directions are indexed so
// that anc(d) and desc(a) are O(1) set lookups, as the maintenance and
// evaluation algorithms require both.
//
// Self-pairs are not stored: M records proper ancestor/descendant pairs.
type Matrix struct {
	anc   []map[dag.NodeID]struct{} // node -> its ancestors
	desc  []map[dag.NodeID]struct{} // node -> its descendants
	pairs int
}

// NewMatrix returns an empty matrix sized for the DAG.
func NewMatrix(capacity int) *Matrix {
	return &Matrix{
		anc:  make([]map[dag.NodeID]struct{}, capacity),
		desc: make([]map[dag.NodeID]struct{}, capacity),
	}
}

func (m *Matrix) ensure(id dag.NodeID) {
	for int(id) >= len(m.anc) {
		m.anc = append(m.anc, nil)
		m.desc = append(m.desc, nil)
	}
}

// Size returns |M|, the number of (anc, desc) pairs.
func (m *Matrix) Size() int { return m.pairs }

// IsAncestor reports whether a is a proper ancestor of d.
func (m *Matrix) IsAncestor(a, d dag.NodeID) bool {
	if int(d) >= len(m.anc) || m.anc[d] == nil {
		return false
	}
	_, ok := m.anc[d][a]
	return ok
}

// Ancestors returns the ancestor set of d. The returned map is live; callers
// must not mutate it.
func (m *Matrix) Ancestors(d dag.NodeID) map[dag.NodeID]struct{} {
	if int(d) >= len(m.anc) {
		return nil
	}
	return m.anc[d]
}

// Descendants returns the descendant set of a. The returned map is live;
// callers must not mutate it.
func (m *Matrix) Descendants(a dag.NodeID) map[dag.NodeID]struct{} {
	if int(a) >= len(m.desc) {
		return nil
	}
	return m.desc[a]
}

// AncestorList returns the ancestors of d as a sorted slice (for
// deterministic iteration in tests and reports).
func (m *Matrix) AncestorList(d dag.NodeID) []dag.NodeID {
	return sortedKeys(m.Ancestors(d))
}

// DescendantList returns the descendants of a as a sorted slice.
func (m *Matrix) DescendantList(a dag.NodeID) []dag.NodeID {
	return sortedKeys(m.Descendants(a))
}

func sortedKeys(s map[dag.NodeID]struct{}) []dag.NodeID {
	out := make([]dag.NodeID, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddPair records that a is an ancestor of d.
func (m *Matrix) AddPair(a, d dag.NodeID) {
	if a == d {
		return
	}
	m.ensure(a)
	m.ensure(d)
	if m.anc[d] == nil {
		m.anc[d] = make(map[dag.NodeID]struct{})
	}
	if _, dup := m.anc[d][a]; dup {
		return
	}
	m.anc[d][a] = struct{}{}
	if m.desc[a] == nil {
		m.desc[a] = make(map[dag.NodeID]struct{})
	}
	m.desc[a][d] = struct{}{}
	m.pairs++
}

// RemovePair deletes the (a, d) pair if present.
func (m *Matrix) RemovePair(a, d dag.NodeID) {
	if int(d) >= len(m.anc) || m.anc[d] == nil {
		return
	}
	if _, ok := m.anc[d][a]; !ok {
		return
	}
	delete(m.anc[d], a)
	delete(m.desc[a], d)
	m.pairs--
}

// DropNode removes every pair mentioning the node (used when a node is
// garbage collected).
func (m *Matrix) DropNode(id dag.NodeID) {
	if int(id) >= len(m.anc) {
		return
	}
	for a := range m.anc[id] {
		delete(m.desc[a], id)
		m.pairs--
	}
	m.anc[id] = nil
	for d := range m.desc[id] {
		delete(m.anc[d], id)
		m.pairs--
	}
	m.desc[id] = nil
}

// Equal reports whether two matrices contain exactly the same pairs.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.pairs != o.pairs {
		return false
	}
	for d := range m.anc {
		for a := range m.anc[d] {
			if !o.IsAncestor(a, dag.NodeID(d)) {
				return false
			}
		}
	}
	return true
}

// Diff returns a short description of the first few pair differences, for
// test failure messages.
func (m *Matrix) Diff(o *Matrix) string {
	var out []string
	limit := 8
	for d := range m.anc {
		for a := range m.anc[d] {
			if !o.IsAncestor(a, dag.NodeID(d)) && len(out) < limit {
				out = append(out, fmt.Sprintf("-(%d,%d)", a, d))
			}
		}
	}
	for d := range o.anc {
		for a := range o.anc[d] {
			if !m.IsAncestor(a, dag.NodeID(d)) && len(out) < limit {
				out = append(out, fmt.Sprintf("+(%d,%d)", a, d))
			}
		}
	}
	return fmt.Sprintf("pairs %d vs %d: %v", m.pairs, o.pairs, out)
}

// Compute is Algorithm Reach (Fig.4 of the paper): it fills M from the edge
// relations in O(n·|V|) time by dynamic programming along the backward
// topological order — when node d is processed, the ancestor sets of all its
// parents are already complete, so anc(d) = ⋃_{p ∈ parent(d)} ({p} ∪ anc(p)).
//
// (Fig.4 line 4 as printed omits the parents themselves; including them is
// evidently intended, otherwise M would be empty. See DESIGN.md.)
func Compute(d *dag.DAG, topo *Topo) *Matrix {
	m := NewMatrix(d.Cap())
	list := topo.Nodes()
	for k := len(list) - 1; k >= 0; k-- { // backward: ancestors first
		node := list[k]
		for _, p := range d.Parents(node) {
			if !d.Alive(p) {
				continue
			}
			m.AddPair(p, node)
			for a := range m.Ancestors(p) {
				m.AddPair(a, node)
			}
		}
	}
	return m
}

// ComputeNaive builds M by a full DFS from every node — the O(n·|V|) bound
// is the same but without sharing ancestor sets, it re-walks overlapping
// regions and is slower in practice. Kept as the ablation baseline and as a
// test oracle for Compute.
func ComputeNaive(d *dag.DAG) *Matrix {
	m := NewMatrix(d.Cap())
	for _, src := range d.Nodes() {
		stack := []dag.NodeID{src}
		seen := map[dag.NodeID]bool{src: true}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, c := range d.Children(x) {
				if !seen[c] {
					seen[c] = true
					m.AddPair(src, c)
					stack = append(stack, c)
				}
			}
		}
	}
	return m
}
