package reach

import (
	"fmt"
	"iter"
	"math/bits"

	"rxview/internal/dag"
)

// Matrix is the reachability matrix M of §3.1, stored densely: per node, the
// ancestor set and the descendant set are bitset rows ([]uint64 words over
// the dense NodeID space). The paper stores M sparsely as a relation
// M(anc, desc); the dense layout trades the |M| ≪ n² memory advantage
// (worst case here is 2·n² bits = n²/4 bytes, rows are truncated at their
// highest set word) for word-level set algebra: the maintenance algorithms of §3.4 and
// the // expansion of §3.2 become row unions, subtracts and popcounts
// instead of per-pair map operations. NewSparse keeps the relation
// representation as the test oracle.
//
// Both directions are maintained so that anc(d) and desc(a) are O(1) row
// lookups, as the maintenance and evaluation algorithms require both.
// Self-pairs are not stored: M records proper ancestor/descendant pairs.
type Matrix struct {
	anc   []Row // node -> its ancestors
	desc  []Row // node -> its descendants
	pairs int
}

// NewMatrix returns an empty matrix sized for the DAG.
func NewMatrix(capacity int) *Matrix {
	return &Matrix{
		anc:  make([]Row, capacity),
		desc: make([]Row, capacity),
	}
}

func (m *Matrix) ensure(id dag.NodeID) {
	for int(id) >= len(m.anc) {
		m.anc = append(m.anc, nil)
		m.desc = append(m.desc, nil)
	}
}

// Size returns |M|, the number of (anc, desc) pairs.
func (m *Matrix) Size() int { return m.pairs }

// IsAncestor reports whether a is a proper ancestor of d.
func (m *Matrix) IsAncestor(a, d dag.NodeID) bool {
	return d >= 0 && int(d) < len(m.anc) && m.anc[d].Contains(a)
}

// AncestorRow returns the ancestor bitset of d. The row is live; callers
// must not mutate it. Out-of-range ids yield an empty row.
func (m *Matrix) AncestorRow(d dag.NodeID) Row {
	if d < 0 || int(d) >= len(m.anc) {
		return nil
	}
	return m.anc[d]
}

// DescendantRow returns the descendant bitset of a. The row is live; callers
// must not mutate it.
func (m *Matrix) DescendantRow(a dag.NodeID) Row {
	if a < 0 || int(a) >= len(m.desc) {
		return nil
	}
	return m.desc[a]
}

// Ancestors iterates the ancestors of d in ascending id order.
func (m *Matrix) Ancestors(d dag.NodeID) iter.Seq[dag.NodeID] {
	return m.AncestorRow(d).All()
}

// Descendants iterates the descendants of a in ascending id order.
func (m *Matrix) Descendants(a dag.NodeID) iter.Seq[dag.NodeID] {
	return m.DescendantRow(a).All()
}

// AncestorCount returns |anc(d)|.
func (m *Matrix) AncestorCount(d dag.NodeID) int { return m.AncestorRow(d).Count() }

// DescendantCount returns |desc(a)|.
func (m *Matrix) DescendantCount(a dag.NodeID) int { return m.DescendantRow(a).Count() }

// AncestorList returns the ancestors of d as a sorted slice (bitset
// iteration is ascending by construction).
func (m *Matrix) AncestorList(d dag.NodeID) []dag.NodeID {
	return m.AncestorRow(d).Slice()
}

// DescendantList returns the descendants of a as a sorted slice.
func (m *Matrix) DescendantList(a dag.NodeID) []dag.NodeID {
	return m.DescendantRow(a).Slice()
}

// AddPair records that a is an ancestor of d.
func (m *Matrix) AddPair(a, d dag.NodeID) {
	if a == d {
		return
	}
	m.ensure(a)
	m.ensure(d)
	if m.anc[d].Set(a) {
		m.desc[a].Set(d)
		m.pairs++
	}
}

// RemovePair deletes the (a, d) pair if present.
func (m *Matrix) RemovePair(a, d dag.NodeID) {
	if d < 0 || int(d) >= len(m.anc) || a < 0 || int(a) >= len(m.desc) {
		return
	}
	if m.anc[d].Unset(a) {
		m.desc[a].Unset(d)
		m.pairs--
	}
}

// InsertEdgeClosure adds, for a new DAG edge (u,v), the pairs
// ({u} ∪ anc(u)) × ({v} ∪ desc(v)) — the closure contribution of the edge
// per ∆(M,L)insert (Fig.7 lines 3..5). The outer product is applied as row
// unions: every descendant-or-self of v absorbs u's ancestor row, and every
// ancestor-or-self of u absorbs v's descendant row. No row aliases another
// during the sweep — that would require u ∈ desc(v) or v ∈ anc(u), a cycle —
// so the live rows can be combined without snapshots.
func (m *Matrix) InsertEdgeClosure(u, v dag.NodeID) {
	m.ensure(u)
	m.ensure(v)
	au := m.anc[u]  // stays constant: u ∉ {v} ∪ desc(v)
	dv := m.desc[v] // stays constant: v ∉ {u} ∪ anc(u)

	// Ancestor side, counting new pairs once.
	m.pairs += m.anc[v].Or(au)
	if m.anc[v].Set(u) {
		m.pairs++
	}
	for d := range dv.All() {
		m.pairs += m.anc[d].Or(au)
		if m.anc[d].Set(u) {
			m.pairs++
		}
	}
	// Descendant side mirrors without counting.
	m.desc[u].Or(dv)
	m.desc[u].Set(v)
	for a := range au.All() {
		m.desc[a].Or(dv)
		m.desc[a].Set(v)
	}
}

// RetainAncestors intersects anc(d) with keep, clearing the mirror
// descendant bits of every removed ancestor in the same pass — the
// anc(d) \ A_d removal of ∆(M,L)delete (Fig.8) as one word-level subtract.
// It returns the number of removed pairs.
func (m *Matrix) RetainAncestors(d dag.NodeID, keep Row) int {
	if d < 0 || int(d) >= len(m.anc) {
		return 0
	}
	row := m.anc[d]
	removed := 0
	for i, w := range row {
		var k uint64
		if i < len(keep) {
			k = keep[i]
		}
		rm := w &^ k
		if rm == 0 {
			continue
		}
		row[i] = w & k
		removed += bits.OnesCount64(rm)
		for rm != 0 {
			a := dag.NodeID(i<<6 + bits.TrailingZeros64(rm))
			rm &= rm - 1
			m.desc[a].Unset(d)
		}
	}
	m.pairs -= removed
	return removed
}

// DropNode removes every pair mentioning the node (used when a node is
// garbage collected).
func (m *Matrix) DropNode(id dag.NodeID) {
	if id < 0 || int(id) >= len(m.anc) {
		return
	}
	for a := range m.anc[id].All() {
		m.desc[a].Unset(id)
		m.pairs--
	}
	m.anc[id] = nil
	for d := range m.desc[id].All() {
		m.anc[d].Unset(id)
		m.pairs--
	}
	m.desc[id] = nil
}

// Equal reports whether two matrices contain exactly the same pairs, in
// both directions — the descendant rows are maintained as a mirror, so they
// are compared too rather than assumed consistent.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.pairs != o.pairs {
		return false
	}
	n := len(m.anc)
	if len(o.anc) > n {
		n = len(o.anc)
	}
	for d := 0; d < n; d++ {
		id := dag.NodeID(d)
		if !m.AncestorRow(id).EqualRow(o.AncestorRow(id)) {
			return false
		}
		if !m.DescendantRow(id).EqualRow(o.DescendantRow(id)) {
			return false
		}
	}
	return true
}

// ValidateMirror checks the internal invariant that the descendant rows are
// exactly the transpose of the ancestor rows and that the pair counter
// matches both: every anc bit must have its mirrored desc bit, and the total
// popcounts of both directions must equal Size(). The two checks together
// imply desc = ancᵀ exactly (a stray desc bit would push its popcount past
// the counter).
func (m *Matrix) ValidateMirror() error {
	ancPairs := 0
	for d := range m.anc {
		ancPairs += m.anc[d].Count()
		for a := range m.anc[d].All() {
			if !m.desc[a].Contains(dag.NodeID(d)) {
				return fmt.Errorf("reach: pair (%d,%d) present in anc but not mirrored in desc", a, d)
			}
		}
	}
	if ancPairs != m.pairs {
		return fmt.Errorf("reach: anc rows hold %d pairs, counter says %d", ancPairs, m.pairs)
	}
	descPairs := 0
	for a := range m.desc {
		descPairs += m.desc[a].Count()
	}
	if descPairs != m.pairs {
		return fmt.Errorf("reach: desc rows hold %d pairs, counter says %d", descPairs, m.pairs)
	}
	return nil
}

// Diff returns a short description of the first few pair differences, for
// test failure messages.
func (m *Matrix) Diff(o *Matrix) string {
	var out []string
	limit := 8
	for d := range m.anc {
		for a := range m.anc[d].All() {
			if !o.IsAncestor(a, dag.NodeID(d)) && len(out) < limit {
				out = append(out, fmt.Sprintf("-(%d,%d)", a, dag.NodeID(d)))
			}
		}
	}
	for d := range o.anc {
		for a := range o.anc[d].All() {
			if !m.IsAncestor(a, dag.NodeID(d)) && len(out) < limit {
				out = append(out, fmt.Sprintf("+(%d,%d)", a, dag.NodeID(d)))
			}
		}
	}
	return fmt.Sprintf("pairs %d vs %d: %v", m.pairs, o.pairs, out)
}

// Compute is Algorithm Reach (Fig.4 of the paper): it fills M from the edge
// relations by dynamic programming along the topological order — when node d
// is processed in the backward pass, the ancestor rows of all its parents
// are already complete, so anc(d) = ⋃_{p ∈ parent(d)} ({p} ∪ anc(p)), a row
// union per parent. The forward pass then builds the descendant rows the
// same way from the children (forward L is children-first), which yields the
// exact transpose without touching individual pairs.
//
// (Fig.4 line 4 as printed omits the parents themselves; including them is
// evidently intended, otherwise M would be empty. See DESIGN.md.)
func Compute(d *dag.DAG, topo *Topo) *Matrix {
	m := NewMatrix(d.Cap())
	list := topo.Nodes()
	for k := len(list) - 1; k >= 0; k-- { // backward: ancestors first
		node := list[k]
		var row Row
		for _, p := range d.Parents(node) {
			if !d.Alive(p) {
				continue
			}
			row.Or(m.anc[p])
			row.Set(p)
		}
		m.anc[node] = row
		m.pairs += row.Count()
	}
	for _, node := range list { // forward: descendants first
		var row Row
		for _, c := range d.Children(node) {
			if !d.Alive(c) {
				continue // same defensive filter as the parent-side pass
			}
			row.Or(m.desc[c])
			row.Set(c)
		}
		m.desc[node] = row
	}
	return m
}

// ComputeNaive builds M by a full DFS from every node — the asymptotic bound
// is the same but without sharing ancestor rows between nodes, it re-walks
// overlapping regions and is slower in practice. Kept as the ablation
// baseline and as a test oracle for Compute.
func ComputeNaive(d *dag.DAG) *Matrix {
	m := NewMatrix(d.Cap())
	seen := NewRow(d.Cap())
	for _, src := range d.Nodes() {
		seen.Reset()
		stack := []dag.NodeID{src}
		var row Row
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, c := range d.Children(x) {
				if seen.Set(c) {
					row.Set(c)
					stack = append(stack, c)
				}
			}
		}
		m.desc[src] = row
		m.pairs += row.Count()
		for c := range row.All() {
			m.anc[c].Set(src)
		}
	}
	return m
}
