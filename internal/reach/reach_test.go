package reach

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rxview/internal/dag"
	"rxview/internal/relational"
)

// buildDAG constructs a DAG from an edge list over integer-keyed nodes;
// node 0 is the root. Edges must point from smaller conceptual depth to
// larger, but ids are arbitrary as long as the graph is acyclic.
func buildDAG(t testing.TB, edges [][2]int) (*dag.DAG, map[int]dag.NodeID) {
	t.Helper()
	d := dag.New("db")
	ids := map[int]dag.NodeID{0: d.Root()}
	node := func(k int) dag.NodeID {
		if id, ok := ids[k]; ok {
			return id
		}
		id, _ := d.AddNode("N", relational.Tuple{relational.Int(int64(k))})
		ids[k] = id
		return id
	}
	for _, e := range edges {
		u, v := node(e[0]), node(e[1])
		d.AddEdge(u, v)
	}
	if err := d.CheckAcyclic(); err != nil {
		t.Fatal(err)
	}
	return d, ids
}

// randomDAG generates an acyclic graph: node i may point to nodes j > i.
func randomDAG(t testing.TB, rng *rand.Rand, n, extraEdges int) *dag.DAG {
	t.Helper()
	var edges [][2]int
	for i := 1; i < n; i++ {
		// Ensure connectivity: each node gets a parent among 0..i-1.
		edges = append(edges, [2]int{rng.Intn(i), i})
	}
	for k := 0; k < extraEdges; k++ {
		u := rng.Intn(n - 1)
		v := u + 1 + rng.Intn(n-u-1)
		edges = append(edges, [2]int{u, v})
	}
	d, _ := buildDAG(t, edges)
	return d
}

func TestComputeTopoOrder(t *testing.T) {
	d, _ := buildDAG(t, [][2]int{{0, 1}, {1, 2}, {1, 3}, {2, 4}, {3, 4}})
	topo := ComputeTopo(d)
	if err := topo.Validate(d); err != nil {
		t.Fatal(err)
	}
	if topo.Len() != 5 {
		t.Errorf("Len = %d", topo.Len())
	}
	// Descendants first: the diamond bottom (4) must precede 2, 3, 1, 0.
	nodes := topo.Nodes()
	if len(nodes) == 0 || d.Type(nodes[len(nodes)-1]) != "db" {
		t.Error("root must be last (ancestor-most)")
	}
}

func TestComputeMatchesNaive(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDAG(t, rng, 30, 25)
		topo := ComputeTopo(d)
		m := Compute(d, topo)
		return m.Equal(ComputeNaive(d))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMatrixBasics(t *testing.T) {
	d, ids := buildDAG(t, [][2]int{{0, 1}, {1, 2}, {1, 3}, {2, 4}, {3, 4}})
	m := Compute(d, ComputeTopo(d))
	root, n4 := ids[0], ids[4]
	if !m.IsAncestor(root, n4) {
		t.Error("root should be ancestor of 4")
	}
	if m.IsAncestor(n4, root) {
		t.Error("4 is not an ancestor of root")
	}
	if m.IsAncestor(root, root) {
		t.Error("self pairs are not stored")
	}
	// anc(4) = {0,1,2,3}, desc(0) = {1,2,3,4}
	if got := m.AncestorCount(n4); got != 4 {
		t.Errorf("|anc(4)| = %d", got)
	}
	if got := m.DescendantCount(root); got != 4 {
		t.Errorf("|desc(0)| = %d", got)
	}
	// |M|: anc sizes: n1:1, n2:2, n3:2, n4:4 => 9
	if m.Size() != 9 {
		t.Errorf("|M| = %d", m.Size())
	}
	if got := m.AncestorList(n4); len(got) != 4 || got[0] != root {
		t.Errorf("AncestorList = %v", got)
	}
}

func TestMatrixAddRemoveDrop(t *testing.T) {
	m := NewMatrix(4)
	m.AddPair(0, 1)
	m.AddPair(0, 1) // dup ignored
	m.AddPair(0, 2)
	m.AddPair(1, 2)
	if m.Size() != 3 {
		t.Errorf("Size = %d", m.Size())
	}
	m.RemovePair(0, 1)
	m.RemovePair(0, 1) // absent ignored
	if m.Size() != 2 || m.IsAncestor(0, 1) {
		t.Error("RemovePair")
	}
	m.AddPair(3, 3) // self ignored
	if m.Size() != 2 {
		t.Error("self pair stored")
	}
	m.DropNode(2)
	if m.Size() != 0 {
		t.Errorf("after DropNode Size = %d", m.Size())
	}
	// Out-of-range queries are safe.
	if m.IsAncestor(99, 98) {
		t.Error("out of range")
	}
	m.RemovePair(99, 98)
	m.DropNode(99)
}

func TestMatrixEqualAndDiff(t *testing.T) {
	a, b := NewMatrix(4), NewMatrix(4)
	a.AddPair(0, 1)
	b.AddPair(0, 1)
	if !a.Equal(b) {
		t.Error("equal matrices")
	}
	b.AddPair(0, 2)
	if a.Equal(b) || b.Equal(a) {
		t.Error("different matrices")
	}
	if b.Diff(a) == "" {
		t.Error("Diff should describe")
	}
}

func TestTopoAppendDeleteCompact(t *testing.T) {
	d, ids := buildDAG(t, [][2]int{{0, 1}, {1, 2}})
	topo := ComputeTopo(d)
	if !topo.Contains(ids[2]) {
		t.Error("Contains")
	}
	if topo.Pos(dag.NodeID(-5)) != -1 || topo.Pos(dag.NodeID(999)) != -1 {
		t.Error("Pos out of range")
	}
	// Delete and re-append many to force compaction.
	for i := 0; i < 200; i++ {
		id, _ := d.AddNode("N", relational.Tuple{relational.Int(int64(100 + i))})
		d.AddEdge(ids[2], id)
		topo.Append(id)
		topo.FixEdge(d, ids[2], id)
	}
	for _, id := range d.Nodes() {
		if d.Type(id) == "N" && len(d.Parents(id)) == 1 && d.Parents(id)[0] == ids[2] {
			d.RemoveEdge(ids[2], id)
			d.RemoveNode(id)
			topo.Delete(id)
		}
	}
	if err := topo.Validate(d); err != nil {
		t.Fatal(err)
	}
	if topo.Len() != 3 {
		t.Errorf("Len = %d", topo.Len())
	}
}

func TestFixEdgeRepairsOrder(t *testing.T) {
	// Build two chains and connect them so the order must be repaired.
	d, ids := buildDAG(t, [][2]int{{0, 1}, {1, 2}, {0, 3}, {3, 4}})
	topo := ComputeTopo(d)
	// New edge 2 -> 3 means 3's group must move before 2.
	d.AddEdge(ids[2], ids[3])
	if err := d.CheckAcyclic(); err != nil {
		t.Fatal(err)
	}
	topo.FixEdge(d, ids[2], ids[3])
	if err := topo.Validate(d); err != nil {
		t.Fatal(err)
	}
}

func TestSortHelpers(t *testing.T) {
	d, ids := buildDAG(t, [][2]int{{0, 1}, {1, 2}})
	topo := ComputeTopo(d)
	nodes := []dag.NodeID{ids[0], ids[2], ids[1]}
	topo.SortDescending(nodes)
	if nodes[0] != ids[0] || nodes[2] != ids[2] {
		t.Errorf("descending = %v", nodes)
	}
	topo.SortAscending(nodes)
	if nodes[0] != ids[2] || nodes[2] != ids[0] {
		t.Errorf("ascending = %v", nodes)
	}
}

func TestBuildIndexValidate(t *testing.T) {
	d, _ := buildDAG(t, [][2]int{{0, 1}, {1, 2}, {1, 3}, {2, 4}, {3, 4}})
	ix := BuildIndex(d)
	if err := ix.Validate(d); err != nil {
		t.Fatal(err)
	}
}

func TestInsertUpdateFreshSubtree(t *testing.T) {
	d, ids := buildDAG(t, [][2]int{{0, 1}, {1, 2}, {0, 3}})
	ix := BuildIndex(d)
	// Publish a fresh subtree {10 -> 11, 10 -> 12} and hang it under 2 and 3.
	n10, _ := d.AddNode("N", relational.Tuple{relational.Int(10)})
	n11, _ := d.AddNode("N", relational.Tuple{relational.Int(11)})
	n12, _ := d.AddNode("N", relational.Tuple{relational.Int(12)})
	newEdges := []dag.Edge{}
	for _, e := range [][2]dag.NodeID{{n10, n11}, {n10, n12}, {ids[2], n10}, {ids[3], n10}} {
		d.AddEdge(e[0], e[1])
		newEdges = append(newEdges, dag.Edge{Parent: e[0], Child: e[1]})
	}
	ix.InsertUpdate(d, []dag.NodeID{n10, n11, n12}, newEdges)
	if err := ix.Validate(d); err != nil {
		t.Fatal(err)
	}
	if !ix.Matrix.IsAncestor(ids[0], n11) {
		t.Error("root should reach new leaf")
	}
}

func TestInsertUpdateSharedRoot(t *testing.T) {
	// Inserting an edge to an existing shared node (the CS320-as-prereq
	// case): no new nodes, one new edge between existing nodes.
	d, ids := buildDAG(t, [][2]int{{0, 1}, {0, 2}, {2, 3}})
	ix := BuildIndex(d)
	d.AddEdge(ids[1], ids[3])
	ix.InsertUpdate(d, nil, []dag.Edge{{Parent: ids[1], Child: ids[3]}})
	if err := ix.Validate(d); err != nil {
		t.Fatal(err)
	}
	if !ix.Matrix.IsAncestor(ids[1], ids[3]) {
		t.Error("new ancestry missing")
	}
}

func TestDeleteUpdateSimple(t *testing.T) {
	// 0 -> 1 -> 2; 0 -> 3 -> 2. Delete edge (1,2): 2 keeps ancestor 0 via 3,
	// loses 1.
	d, ids := buildDAG(t, [][2]int{{0, 1}, {1, 2}, {0, 3}, {3, 2}})
	ix := BuildIndex(d)
	d.RemoveEdge(ids[1], ids[2])
	cascade, removed := ix.DeleteUpdate(d, []dag.NodeID{ids[2]},
		[]dag.Edge{{Parent: ids[1], Child: ids[2]}})
	if len(cascade) != 0 || len(removed) != 0 {
		t.Errorf("cascade=%v removed=%v", cascade, removed)
	}
	if err := ix.Validate(d); err != nil {
		t.Fatal(err)
	}
	if ix.Matrix.IsAncestor(ids[1], ids[2]) {
		t.Error("stale ancestor pair")
	}
	if !ix.Matrix.IsAncestor(ids[0], ids[2]) {
		t.Error("surviving ancestry removed")
	}
}

func TestDeleteUpdateCascade(t *testing.T) {
	// 0 -> 1 -> 2 -> 3, and 0 -> 4 -> 3. Deleting edge (0,1) strands 1, 2
	// (cascade) but 3 survives via 4.
	d, ids := buildDAG(t, [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 4}, {4, 3}})
	ix := BuildIndex(d)
	d.RemoveEdge(ids[0], ids[1])
	cascade, removed := ix.DeleteUpdate(d, []dag.NodeID{ids[1]},
		[]dag.Edge{{Parent: ids[0], Child: ids[1]}})
	if len(removed) != 2 {
		t.Errorf("removed = %v, want nodes 1 and 2", removed)
	}
	if len(cascade) != 2 { // (1,2) and (2,3)
		t.Errorf("cascade = %v", cascade)
	}
	if err := ix.Validate(d); err != nil {
		t.Fatal(err)
	}
	if !d.Alive(ids[3]) {
		t.Error("shared node 3 must survive")
	}
	if !ix.Matrix.IsAncestor(ids[4], ids[3]) {
		t.Error("surviving ancestry via 4 lost")
	}
}

// Property: random edge deletions maintained incrementally match a from-
// scratch rebuild (the paper's Table 1 comparison, as a correctness check).
func TestDeleteUpdateMatchesRebuild(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDAG(t, rng, 25, 20)
		ix := BuildIndex(d)
		for round := 0; round < 5; round++ {
			// Pick a random live edge.
			nodes := d.Nodes()
			var u, v dag.NodeID = -1, -1
			for _, cand := range rng.Perm(len(nodes)) {
				if ch := d.Children(nodes[cand]); len(ch) > 0 {
					u = nodes[cand]
					v = ch[rng.Intn(len(ch))]
					break
				}
			}
			if u < 0 {
				break
			}
			d.RemoveEdge(u, v)
			ix.DeleteUpdate(d, []dag.NodeID{v}, []dag.Edge{{Parent: u, Child: v}})
			if err := ix.Validate(d); err != nil {
				t.Logf("seed %d round %d: %v", seed, round, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: random subtree insertions maintained incrementally match a
// rebuild.
func TestInsertUpdateMatchesRebuild(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDAG(t, rng, 20, 10)
		ix := BuildIndex(d)
		next := int64(1000)
		for round := 0; round < 4; round++ {
			// Fresh chain of 3 nodes hung under a random existing node,
			// possibly also linking to an existing node as child.
			nodes := d.Nodes()
			target := nodes[rng.Intn(len(nodes))]
			var newNodes []dag.NodeID
			var newEdges []dag.Edge
			var prev dag.NodeID = -1
			for i := 0; i < 3; i++ {
				id, _ := d.AddNode("N", relational.Tuple{relational.Int(next)})
				next++
				newNodes = append(newNodes, id)
				if prev >= 0 {
					d.AddEdge(prev, id)
					newEdges = append(newEdges, dag.Edge{Parent: prev, Child: id})
				}
				prev = id
			}
			// Link the chain bottom to an existing node to create sharing,
			// but only if that node is not an ancestor of (or equal to)
			// the target — the connection edge target→chain would
			// otherwise close a cycle.
			exist := nodes[rng.Intn(len(nodes))]
			if exist != d.Root() && exist != target && !ix.Matrix.IsAncestor(exist, target) {
				if d.AddEdge(prev, exist) {
					newEdges = append(newEdges, dag.Edge{Parent: prev, Child: exist})
				}
			}
			// Connection edge last, as Xinsert produces.
			d.AddEdge(target, newNodes[0])
			newEdges = append(newEdges, dag.Edge{Parent: target, Child: newNodes[0]})
			if err := d.CheckAcyclic(); err != nil {
				t.Log(err)
				return false
			}
			ix.InsertUpdate(d, newNodes, newEdges)
			if err := ix.Validate(d); err != nil {
				t.Logf("seed %d round %d: %v", seed, round, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDeleteThenInsertInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	d := randomDAG(t, rng, 30, 25)
	ix := BuildIndex(d)
	next := int64(5000)
	for round := 0; round < 10; round++ {
		if round%2 == 0 {
			nodes := d.Nodes()
			for _, cand := range rng.Perm(len(nodes)) {
				if ch := d.Children(nodes[cand]); len(ch) > 0 {
					u, v := nodes[cand], ch[0]
					d.RemoveEdge(u, v)
					ix.DeleteUpdate(d, []dag.NodeID{v}, []dag.Edge{{Parent: u, Child: v}})
					break
				}
			}
		} else {
			nodes := d.Nodes()
			target := nodes[rng.Intn(len(nodes))]
			id, _ := d.AddNode("N", relational.Tuple{relational.Int(next)})
			next++
			d.AddEdge(target, id)
			ix.InsertUpdate(d, []dag.NodeID{id}, []dag.Edge{{Parent: target, Child: id}})
		}
		if err := ix.Validate(d); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}
