package reach

import (
	"math/rand"
	"testing"

	"rxview/internal/dag"
)

// benchDAG builds a connected random DAG with extra cross edges — the shape
// the synthetic workload produces (shared subtrees, moderate depth).
func benchDAG(b *testing.B, n, extra int) *dag.DAG {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	return randomDAG(b, rng, n, extra)
}

func cloneMatrix(m *Matrix) *Matrix { return m.Clone() }

func cloneSparse(s *Sparse) *Sparse {
	out := NewSparse(len(s.anc))
	for d := range s.anc {
		for a := range s.anc[d] {
			out.AddPair(a, dag.NodeID(d))
		}
	}
	return out
}

// BenchmarkMatrixCompute compares the from-scratch build of M under the
// same Algorithm Reach dynamic program over the same precomputed L: row
// unions (bitset) against per-pair map inserts (sparse) — the pure
// representation gap. The per-node DFS oracle is included as a third
// variant for reference (a different algorithm, not a fair comparison).
func BenchmarkMatrixCompute(b *testing.B) {
	d := benchDAG(b, 2000, 2000)
	topo := ComputeTopo(d)
	b.Run("bitset", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Compute(d, topo)
		}
	})
	b.Run("sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ComputeSparseReach(d, topo)
		}
	})
	b.Run("sparse-dfs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ComputeSparse(d)
		}
	})
}

// BenchmarkMatrixDescQuery measures the //-expansion kernel of the frontier
// evaluator: union the descendant sets of a 64-node frontier into one
// closure set, then test membership for every node — row unions + bit reads
// (bitset) against map iteration into a []bool (sparse).
func BenchmarkMatrixDescQuery(b *testing.B) {
	d := benchDAG(b, 2000, 2000)
	topo := ComputeTopo(d)
	m := Compute(d, topo)
	sp := ComputeSparse(d)
	frontier := d.Nodes()[:64]

	b.Run("bitset", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			closure := NewRow(d.Cap())
			for _, v := range frontier {
				closure.Set(v)
				closure.Or(m.DescendantRow(v))
			}
			if closure.Count() == 0 {
				b.Fatal("empty closure")
			}
		}
	})
	b.Run("sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			closure := make([]bool, d.Cap())
			count := 0
			for _, v := range frontier {
				if !closure[v] {
					closure[v] = true
					count++
				}
				for dd := range sp.Descendants(v) {
					if !closure[dd] {
						closure[dd] = true
						count++
					}
				}
			}
			if count == 0 {
				b.Fatal("empty closure")
			}
		}
	})
}

// benchNewEdges picks edges absent from the DAG that respect the topological
// order (parent later in L than child), so inserting them keeps it acyclic.
func benchNewEdges(d *dag.DAG, topo *Topo, k int) []dag.Edge {
	rng := rand.New(rand.NewSource(11))
	nodes := d.Nodes()
	var out []dag.Edge
	for len(out) < k {
		u := nodes[rng.Intn(len(nodes))]
		v := nodes[rng.Intn(len(nodes))]
		if u == v || topo.Pos(v) >= topo.Pos(u) || d.HasEdge(u, v) {
			continue
		}
		out = append(out, dag.Edge{Parent: u, Child: v})
	}
	return out
}

// BenchmarkMaintainInsertClosure times the matrix half of ∆(M,L)insert for a
// batch of 64 new edges: InsertEdgeClosure's row unions against the sparse
// representation's sorted-list × sorted-list per-pair inserts (the exact
// code the bitset Matrix replaced).
func BenchmarkMaintainInsertClosure(b *testing.B) {
	d := benchDAG(b, 2000, 2000)
	topo := ComputeTopo(d)
	base := Compute(d, topo)
	baseSparse := ComputeSparse(d)
	edges := benchNewEdges(d, topo, 64)

	b.Run("bitset", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			m := cloneMatrix(base)
			b.StartTimer()
			for _, e := range edges {
				m.InsertEdgeClosure(e.Parent, e.Child)
			}
		}
	})
	b.Run("sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s := cloneSparse(baseSparse)
			b.StartTimer()
			for _, e := range edges {
				s.InsertEdgeClosure(e.Parent, e.Child)
			}
		}
	})
}

// BenchmarkMaintainDelete times ∆(M,L)delete end to end (L_R collection, A_d
// row unions, RetainAncestors subtract) for one high-fanout edge removal.
func BenchmarkMaintainDelete(b *testing.B) {
	proto := benchDAG(b, 2000, 2000)
	// Pick the live edge whose child has the largest descendant set.
	ixp := BuildIndex(proto)
	var bu, bv dag.NodeID = -1, -1
	best := -1
	for _, u := range proto.Nodes() {
		for _, v := range proto.Children(u) {
			if c := ixp.Matrix.DescendantCount(v); c > best {
				best, bu, bv = c, u, v
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := benchDAG(b, 2000, 2000)
		ix := BuildIndex(d)
		d.RemoveEdge(bu, bv)
		b.StartTimer()
		ix.DeleteUpdate(d, []dag.NodeID{bv}, []dag.Edge{{Parent: bu, Child: bv}})
	}
}
