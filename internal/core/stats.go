package core

import (
	"fmt"

	"rxview/internal/dag"
)

// Stats summarizes the view and its auxiliary structures — the quantities of
// Fig.10(b) in the paper: DAG size, uncompressed tree size, sharing, |M|
// and |L|.
type Stats struct {
	BaseRows    int     // total tuples in the published database
	Nodes       int     // DAG nodes (n)
	Edges       int     // DAG edges (|V|, the size of the relational views)
	TreeSize    float64 // uncompressed |T|
	Compression float64 // TreeSize / Nodes
	SharedNodes int     // nodes with >1 parent
	SharedFrac  float64 // SharedNodes / Nodes
	TopoLen     int     // |L|
	MatrixPairs int     // |M|
}

// Stats computes current statistics.
func (s *System) Stats() Stats {
	return statsFor(s.DAG, s.Index.Topo.Len(), s.Index.Matrix.Size(), s.DB.TotalRows())
}

// statsFor renders the statistics of one view state — shared by the live
// System and its frozen Snapshots so the two can never diverge. L and M
// enter as their sizes, which is all Stats reports (and all a Snapshot
// retains of M).
func statsFor(d dag.Reader, topoLen, matrixPairs, baseRows int) Stats {
	n := d.NumNodes()
	ts := dag.TreeSize(d)
	shared := dag.SharedNodeCount(d)
	st := Stats{
		BaseRows:    baseRows,
		Nodes:       n,
		Edges:       d.NumEdges(),
		TreeSize:    ts,
		SharedNodes: shared,
		TopoLen:     topoLen,
		MatrixPairs: matrixPairs,
	}
	if n > 0 {
		st.Compression = ts / float64(n)
		st.SharedFrac = float64(shared) / float64(n)
	}
	return st
}

// String renders the statistics in a Fig.10(b)-style line.
func (st Stats) String() string {
	return fmt.Sprintf(
		"rows=%d nodes=%d edges=%d tree=%.0f compression=%.2fx shared=%.1f%% |L|=%d |M|=%d",
		st.BaseRows, st.Nodes, st.Edges, st.TreeSize, st.Compression,
		100*st.SharedFrac, st.TopoLen, st.MatrixPairs)
}
