package core

import "fmt"

// Stats summarizes the view and its auxiliary structures — the quantities of
// Fig.10(b) in the paper: DAG size, uncompressed tree size, sharing, |M|
// and |L|.
type Stats struct {
	BaseRows    int     // total tuples in the published database
	Nodes       int     // DAG nodes (n)
	Edges       int     // DAG edges (|V|, the size of the relational views)
	TreeSize    float64 // uncompressed |T|
	Compression float64 // TreeSize / Nodes
	SharedNodes int     // nodes with >1 parent
	SharedFrac  float64 // SharedNodes / Nodes
	TopoLen     int     // |L|
	MatrixPairs int     // |M|
}

// Stats computes current statistics.
func (s *System) Stats() Stats {
	n := s.DAG.NumNodes()
	ts := s.DAG.TreeSize()
	shared := s.DAG.SharedNodeCount()
	st := Stats{
		BaseRows:    s.DB.TotalRows(),
		Nodes:       n,
		Edges:       s.DAG.NumEdges(),
		TreeSize:    ts,
		SharedNodes: shared,
		TopoLen:     s.Index.Topo.Len(),
		MatrixPairs: s.Index.Matrix.Size(),
	}
	if n > 0 {
		st.Compression = ts / float64(n)
		st.SharedFrac = float64(shared) / float64(n)
	}
	return st
}

// String renders the statistics in a Fig.10(b)-style line.
func (st Stats) String() string {
	return fmt.Sprintf(
		"rows=%d nodes=%d edges=%d tree=%.0f compression=%.2fx shared=%.1f%% |L|=%d |M|=%d",
		st.BaseRows, st.Nodes, st.Edges, st.TreeSize, st.Compression,
		100*st.SharedFrac, st.TopoLen, st.MatrixPairs)
}
